#!/usr/bin/env python
"""A Science-DMZ bulk transfer, end to end, with iperf3-style logs.

Models the paper's motivating workload: two data-transfer nodes pushing
large science datasets across a WAN (the FABRIC dumbbell), orchestrated
the way the paper does it — iperf3 servers at TACC, multi-stream iperf3
clients at Clemson — and writes the raw per-run JSON logs the paper
publishes alongside its dataset, then parses them back into the
per-sender summary.

Run:  python examples/science_dmz_transfer.py [output_dir]
"""

import sys
from pathlib import Path

from repro.analysis.parse_iperf import summarize_docs
from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
from repro.traffic.iperf import Iperf3Client, Iperf3Server
from repro.traffic.logs import dump_iperf_json, load_iperf_json
from repro.units import format_rate, mbps, seconds


def main(out_dir: Path) -> None:
    # 100 Mbps tier scaled 5x down so the packet engine finishes in ~30 s
    # of wallclock; topology, RTT, and AQM are exactly the paper's.
    dumbbell = build_dumbbell(
        DumbbellConfig(
            bottleneck_bw_bps=mbps(100),
            scale=5.0,
            buffer_bdp=2.0,
            aqm="fq_codel",
            mss_bytes=1500,
            seed=42,
        )
    )
    print("topology up:", ", ".join(sorted(dumbbell.network.nodes)))
    print("bottleneck :", format_rate(dumbbell.bottleneck_link.rate_bps),
          f"({dumbbell.config.aqm}, {dumbbell.config.buffer_bytes} B buffer)")
    for cmd in dumbbell.tc.history:
        print("tc         :", cmd)

    # One iperf3 server per DTN at TACC; clients at Clemson with
    # 3 parallel streams each (a small Table-2-style complement).
    clients = []
    for i, congestion in enumerate(("bbrv2", "cubic")):
        Iperf3Server(dumbbell.servers[i])
        client = Iperf3Client(
            dumbbell.clients[i],
            dumbbell.servers[i],
            congestion=congestion,
            parallel=3,
            duration_s=20.0,
            mss=1500,
        )
        client.start()
        clients.append(client)

    print("\ntransferring (20 s of simulated time) ...")
    dumbbell.network.run(seconds(22))

    # Write and re-read the iperf3 JSON logs, as the paper's dataset does.
    out_dir.mkdir(parents=True, exist_ok=True)
    docs = []
    for i, client in enumerate(clients):
        path = out_dir / f"iperf3_{client.congestion}_node{i + 1}.json"
        dump_iperf_json(client.json_result(), path)
        docs.append(load_iperf_json(path))
        print(f"wrote {path}")

    print("\nper-sender summary (parsed back from the logs):")
    for host, agg in sorted(summarize_docs(docs).items()):
        print(
            f"  -> {host}: {format_rate(agg['throughput_bps']):>12s} over "
            f"{agg['streams']} streams, {agg['retransmits']} retransmits"
        )
    total = sum(a["throughput_bps"] for a in summarize_docs(docs).values())
    print(f"  combined: {format_rate(total)} "
          f"({total / dumbbell.bottleneck_link.rate_bps:.1%} of the bottleneck)")


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("iperf_logs")
    main(target)
