#!/usr/bin/env python
"""Quickstart: run one cell of the paper's study and print the outcome.

BBRv1 competes with CUBIC over the paper's dumbbell (62 ms RTT) through a
FIFO bottleneck sized at 2 x BDP — the configuration right around the
equilibrium point of Figure 2.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, run_experiment
from repro.units import format_rate, mbps


def main() -> None:
    config = ExperimentConfig(
        cca_pair=("bbrv1", "cubic"),
        aqm="fifo",
        buffer_bdp=2.0,
        bottleneck_bw_bps=mbps(100),
        scale=5.0,          # packet engine at 20 Mbps effective: runs in ~10 s
        duration_s=30.0,
        warmup_s=5.0,
        mss_bytes=1500,
        flows_per_node=1,
        seed=1,
    )
    print(f"running {config.label()} on the packet engine ...")
    result = run_experiment(config)

    print()
    print(f"engine            : {result.engine}")
    for sender in result.senders:
        print(
            f"  {sender.node} ({sender.cca:<5s}): "
            f"{format_rate(sender.throughput_bps):>12s}   retransmits={sender.retransmits}"
        )
    print(f"Jain fairness     : {result.jain_index:.3f}")
    print(f"link utilization  : {result.link_utilization:.3f}")
    print(f"bottleneck drops  : {result.bottleneck_drops}")
    print(f"simulated events  : {result.events_processed:,}")
    print(f"wallclock         : {result.wallclock_s:.1f} s")

    print()
    print("Try the same cell at 16 x BDP (CUBIC should take over),")
    print("or aqm='red' (CUBIC should starve) — see the paper's Figures 2-5.")


if __name__ == "__main__":
    main()
