#!/usr/bin/env python
"""Run a paper-scale campaign and render every table and figure.

This is the top of the reproduction pipeline: sweep a slice of the
810-configuration grid (fluid engine; pass ``--full`` for the complete
grid with 5 repetitions, ~hours), persist results to JSONL, then print
Table 3 (measured vs paper) and the Figure 2-8 series.

Run:  python examples/full_campaign.py [--full] [--jobs N] [--out results.jsonl]
"""

import argparse

from repro.analysis.aggregate import ResultSet
from repro.analysis.summary_report import full_report
from repro.experiments.campaign import print_progress, run_campaign
from repro.experiments.matrix import full_matrix
from repro.experiments.storage import ResultStore


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="all 810 cells x 5 reps at 200 s (hours!)")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--out", default="campaign_results.jsonl")
    args = parser.parse_args()

    if args.full:
        configs = full_matrix(engine="fluid", repetitions=5)
    else:
        # The spotlight slice: every pair and AQM, the two figure buffers,
        # all five tiers, shortened runs. ~300 runs, minutes.
        configs = full_matrix(
            engine="fluid",
            buffer_bdps=(0.5, 2.0, 16.0),
            duration_s=30.0,
            warmup_s=5.0,
        )
    print(f"campaign: {len(configs)} runs -> {args.out}")

    store = ResultStore(args.out)
    results = ResultSet(
        run_campaign(configs, store=store, jobs=args.jobs, progress=print_progress)
    )

    # Everything at once: Table 3 vs paper, claim validation verdicts,
    # equilibrium points, and every figure panel the slice covers.
    print("\n" + full_report(results))


if __name__ == "__main__":
    main()
