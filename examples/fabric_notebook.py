#!/usr/bin/env python
"""The paper's FABlib orchestration notebook, against the simulator.

The paper provisions its topology with a Jupyter notebook built on
FABlib: add six nodes across four sites, attach NICs, create five L2
network services, submit the slice, configure L3 + static routes, apply
`tc` at the bottleneck, and launch iperf3.  This script follows the same
structure against :mod:`repro.testbed.fablib`, demonstrating how the
orchestration layer maps one-to-one.

Run:  python examples/fabric_notebook.py
"""

from repro.net.address import Subnet
from repro.testbed.fablib import FablibManager
from repro.testbed.tc import TrafficControl
from repro.tcp.connection import open_connection
from repro.cca.registry import make_cca
from repro.units import bdp_bytes, format_rate, gbps, mbps, seconds

# --- 1. design the slice (paper Fig 1) ----------------------------------------

fablib = FablibManager()
slice_ = fablib.new_slice("tcp-conflict-study")

nodes = {
    "client1": slice_.add_node("client1", "CLEM", cores=26, ram=32),
    "client2": slice_.add_node("client2", "CLEM", cores=26, ram=32),
    "router1": slice_.add_node("router1", "WASH", cores=24, ram=32, routing=True),
    "router2": slice_.add_node("router2", "NCSA", cores=24, ram=32, routing=True),
    "server1": slice_.add_node("server1", "TACC", cores=26, ram=32),
    "server2": slice_.add_node("server2", "TACC", cores=26, ram=32),
}

# End hosts: one ConnectX-5 (25 GbE); routers: ConnectX-6 ports (100 GbE).
for name in ("client1", "client2", "server1", "server2"):
    nodes[name].add_component("NIC_ConnectX_5", "nic1", rate_bps=gbps(25))
for name in ("router1", "router2"):
    for nic in ("nic1", "nic2", "nic3"):
        nodes[name].add_component("NIC_ConnectX_6", nic, rate_bps=gbps(100))

# Five subnets over L2 services, exactly the paper's addressing plan.
slice_.add_l2network("net1", (("client1", "nic1"), ("router1", "nic1")), "10.0.1.0/24")
slice_.add_l2network("net2", (("client2", "nic1"), ("router1", "nic2")), "10.0.2.0/24")
slice_.add_l2network("net3", (("router1", "nic3"), ("router2", "nic1")), "10.0.3.0/24")
slice_.add_l2network("net4", (("router2", "nic2"), ("server1", "nic1")), "10.0.4.0/24")
slice_.add_l2network("net5", (("router2", "nic3"), ("server2", "nic1")), "10.0.5.0/24")

# --- 2. submit ---------------------------------------------------------------------

network = slice_.submit(seed=11)
print(f"slice '{slice_.name}' is up: {len(network.nodes)} nodes, {len(network.links)} links")

# --- 3. enable forwarding / static routes ("from and to all subnets") -----------------

r1, r2 = network.nodes["router1"], network.nodes["router2"]
subnets = {name: Subnet(f"10.0.{i + 1}.0/24") for i, name in
           enumerate(("net1", "net2", "net3", "net4", "net5"))}
r1.add_route(subnets["net1"], r1.interfaces["nic1"])
r1.add_route(subnets["net2"], r1.interfaces["nic2"])
for dst in ("net3", "net4", "net5"):
    r1.add_route(subnets[dst], r1.interfaces["nic3"])
r2.add_route(subnets["net4"], r2.interfaces["nic2"])
r2.add_route(subnets["net5"], r2.interfaces["nic3"])
for dst in ("net1", "net2", "net3"):
    r2.add_route(subnets[dst], r2.interfaces["nic1"])

# --- 4. shape the bottleneck with tc --------------------------------------------------

bottleneck_bw = mbps(20)  # a scaled tier so the packet engine runs quickly
rtt_ns = seconds(0.062)
buffer_bytes = 2 * bdp_bytes(bottleneck_bw, rtt_ns)

# Reduce the r1->r2 link to the experiment rate (the tbf/rate part of tc).
bottleneck = network.links["router1->router2"]
bottleneck.rate_bps = bottleneck_bw

tc = TrafficControl(rng=network.rng.stream("aqm"))
tc.qdisc_replace(r1.interfaces["nic3"], "fq_codel", limit_bytes=buffer_bytes, mtu_bytes=1500)
print(tc.history[-1])

# --- 5. run the transfer ----------------------------------------------------------------

conns = [
    open_connection(network.nodes["client1"], network.nodes["server1"],
                    make_cca("bbrv2", network.rng.stream("cca")), mss=1500),
    open_connection(network.nodes["client2"], network.nodes["server2"],
                    make_cca("cubic", network.rng.stream("cca")), mss=1500),
]
for conn in conns:
    conn.start()
network.run(seconds(20))

print("\nresults after 20 s:")
for conn, label in zip(conns, ("bbrv2 ", "cubic ")):
    rate = conn.receiver.bytes_received * 8 / 20
    print(f"  {label}: {format_rate(rate):>12s}  retransmits={conn.retransmits}")
total = sum(c.receiver.bytes_received for c in conns) * 8 / 20
print(f"  total : {format_rate(total)} of {format_rate(bottleneck_bw)}")
