#!/usr/bin/env python
"""Elephant-flow fairness sweep: who wins the bottleneck, and when?

Reproduces the core question of the paper's Figures 2-6 in one script:
for each challenger CCA competing against CUBIC, sweep the bottleneck
buffer from 0.5 to 16 x BDP under all three AQMs (fluid engine, 1 Gbps
tier) and print the per-sender shares plus Jain's index — revealing the
FIFO equilibrium point, RED's BBR bias, and FQ_CoDel's enforced fairness.

Run:  python examples/elephant_fairness.py
"""

from repro import ExperimentConfig, run_experiment
from repro.units import gbps

CHALLENGERS = ("bbrv1", "bbrv2", "htcp", "reno")
AQMS = ("fifo", "red", "fq_codel")
BUFFERS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0)
BW = gbps(1)


def main() -> None:
    for aqm in AQMS:
        print(f"\n=== AQM = {aqm.upper()} (1 Gbps, challenger vs CUBIC) ===")
        header = f"{'buffer':>8s} " + " ".join(
            f"{c + '/cubic':>16s}" for c in CHALLENGERS
        )
        print(header + f" {'':>4s}")
        for buf in BUFFERS:
            cells = []
            for challenger in CHALLENGERS:
                result = run_experiment(
                    ExperimentConfig(
                        cca_pair=(challenger, "cubic"),
                        aqm=aqm,
                        buffer_bdp=buf,
                        bottleneck_bw_bps=BW,
                        duration_s=30.0,
                        warmup_s=5.0,
                        engine="fluid",
                        seed=7,
                    )
                )
                s1 = result.senders[0].throughput_bps / 1e6
                s2 = result.senders[1].throughput_bps / 1e6
                cells.append(f"{s1:7.0f}/{s2:<5.0f}(J{result.jain_index:.2f})")
            print(f"{buf:>6.1f}x " + " ".join(f"{c:>16s}" for c in cells))

    print(
        "\nReading guide: under FIFO the BBRs win small buffers and lose"
        "\nbig ones (the equilibrium point); under RED they starve CUBIC"
        "\noutright; under FQ_CODEL everyone is forced to share equally."
    )


if __name__ == "__main__":
    main()
