#!/usr/bin/env python
"""Deterministic fault injection: a cable pull in the middle of a transfer.

Runs the same CUBIC-vs-CUBIC cell twice — once clean, once with a
``faults:`` block that pulls the bottleneck cable for one second at
t=10 s and layers a 1 % loss burst on the recovery — and prints the
per-interval goodput side by side so the outage and the slow-start
recovery are visible.  The fault timeline is seeded: rerunning this
script reproduces the exact same drop pattern, byte for byte.

Run:  python examples/fault_injection.py
"""

from repro import ExperimentConfig, run_experiment
from repro.analysis.sparkline import sparkline
from repro.units import format_rate, mbps

FAULTS = [
    dict(kind="link_flap", at_s=10.0, duration_s=1.0, flush=True),
    dict(kind="loss_burst", at_s=11.5, duration_s=3.0, loss_rate=0.01),
]


def run_one(faults):
    config = ExperimentConfig(
        cca_pair=("cubic", "cubic"),
        aqm="fifo",
        buffer_bdp=2.0,
        bottleneck_bw_bps=mbps(100),
        duration_s=20.0,
        mss_bytes=1500,
        scale=5.0,
        seed=7,
        sample_interval_s=0.5,
        faults=faults,
    )
    return run_experiment(config)


def main() -> None:
    clean = run_one([])
    faulty = run_one(FAULTS)

    for name, result in (("clean", clean), ("faulted", faulty)):
        series = result.extra["series_bps"]
        total = [sum(vals) for vals in zip(*series.values())]
        print(f"{name:>8s}  {sparkline(total)}")
        print(
            f"{'':>8s}  total={format_rate(result.total_throughput_bps)}"
            f"  retx={result.total_retransmits}"
            f"  jain={result.jain_index:.3f}"
        )

    audit = faulty.extra["faults"]
    print(f"\ninjected {audit['injected']} fault mutations:")
    for row in audit["applied"]:
        print(f"  t={row['time_ns'] / 1e9:6.2f}s  {row['action']:<13s} {row['target']}")


if __name__ == "__main__":
    main()
