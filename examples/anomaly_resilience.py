#!/usr/bin/env python
"""Riding out a loss anomaly: CCAs under a mid-transfer loss episode.

Covers two of the paper's future-work items at once: injecting variable
packet loss ("network anomalies") and capturing detailed router telemetry.
Each CCA transfers through the dumbbell while the trunk suffers a 3 %
random-loss episode; per-interval goodput and the bottleneck backlog are
rendered as sparklines.

Run:  python examples/anomaly_resilience.py
"""

from repro.analysis.sparkline import sparkline
from repro.cca.registry import make_cca
from repro.metrics.queue_monitor import QueueMonitor
from repro.tcp.connection import open_connection
from repro.testbed.anomalies import loss_episode
from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
from repro.units import mbps, seconds

DURATION_S = 24
EPISODE = (8, 16)
LOSS = 0.03


def run_one(cca_name: str):
    db = build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=mbps(20), buffer_bdp=2.0, mss_bytes=1500, seed=13)
    )
    conn = open_connection(
        db.clients[0], db.servers[0],
        make_cca(cca_name, db.network.rng.stream("cca")), mss=1500,
    )
    conn.start()
    loss_episode(
        db.sim, db.bottleneck_link,
        start_ns=seconds(EPISODE[0]), end_ns=seconds(EPISODE[1]),
        loss_rate=LOSS, rng=db.network.rng.stream("anomaly"),
    )
    monitor = QueueMonitor(db.sim, db.bottleneck_qdisc, seconds(1))
    monitor.start()

    marks = [0]

    def sample():
        marks.append(conn.receiver.bytes_received)
        db.sim.schedule(seconds(1), sample)

    db.sim.schedule(seconds(1), sample)
    db.network.run(seconds(DURATION_S))
    goodput = [(b - a) * 8 / 1e6 for a, b in zip(marks, marks[1:])]
    backlog = [s.backlog_packets for s in monitor.trace.samples]
    return goodput, backlog, conn.sender.retransmits, conn.sender.rto_count


def main() -> None:
    ruler = " " * 10 + "".join(
        "E" if EPISODE[0] <= t < EPISODE[1] else "." for t in range(DURATION_S)
    )
    print(f"3% loss episode between t={EPISODE[0]}s and t={EPISODE[1]}s (E):")
    print(ruler)
    for cca in ("cubic", "htcp", "bbrv1", "bbrv2"):
        goodput, backlog, retx, rtos = run_one(cca)
        print(f"{cca:>8s}  {sparkline(goodput, lo=0, hi=20)}  goodput 0-20 Mbps")
        print(f"{'':>8s}  {sparkline(backlog, lo=0)}  bottleneck backlog "
              f"(max {max(backlog)} pkts) retx={retx} rtos={rtos}")
    print(
        "\nLoss-blind BBRv1 sails through (its model ignores random drops);"
        "\nCUBIC/HTCP crater on every loss; BBRv2 backs off past its 2%"
        "\nthreshold and regrows along its probe-cycle bandwidth ratchet."
    )


if __name__ == "__main__":
    main()
