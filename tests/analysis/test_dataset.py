"""Unit tests for the ML dataset export."""

import csv

import pytest

from repro.analysis.aggregate import ResultSet
from repro.analysis.dataset import flows_table, intervals_table, runs_table, write_csv
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_packet_experiment
from repro.units import mbps
from tests.analysis.test_aggregate import make_result


def test_runs_table_columns():
    rows = runs_table(ResultSet([make_result(), make_result(seed=2)]))
    assert len(rows) == 2
    row = rows[0]
    assert row["cca1"] == "cubic" and row["cca2"] == "cubic"
    assert row["aqm"] == "fifo"
    assert "jain_index" in row and "link_utilization" in row
    assert all(not isinstance(v, (list, dict)) for v in row.values())


def test_flows_table_expands_per_flow():
    r = run_packet_experiment(
        ExperimentConfig(cca_pair=("cubic", "cubic"), bottleneck_bw_bps=mbps(10),
                         duration_s=4.0, mss_bytes=1500, flows_per_node=2, seed=5)
    )
    rows = flows_table(ResultSet([r]))
    assert len(rows) == 4
    assert {row["sender_node"] for row in rows} == {"client1", "client2"}


def test_intervals_table_requires_sampling():
    unsampled = run_packet_experiment(
        ExperimentConfig(cca_pair=("cubic", "cubic"), bottleneck_bw_bps=mbps(10),
                         duration_s=4.0, mss_bytes=1500, flows_per_node=1, seed=5)
    )
    assert intervals_table(ResultSet([unsampled])) == []
    sampled = run_packet_experiment(
        ExperimentConfig(cca_pair=("cubic", "cubic"), bottleneck_bw_bps=mbps(10),
                         duration_s=4.0, mss_bytes=1500, flows_per_node=1, seed=5,
                         sample_interval_s=1.0)
    )
    rows = intervals_table(ResultSet([sampled]))
    assert len(rows) == 2 * 4  # 2 flows x 4 intervals
    assert rows[0]["t_start_s"] == 0.0
    assert rows[3]["interval"] == 3


def test_write_csv_roundtrip(tmp_path):
    rows = runs_table(ResultSet([make_result(), make_result(seed=2)]))
    path = write_csv(rows, tmp_path / "runs.csv")
    with path.open() as fh:
        loaded = list(csv.DictReader(fh))
    assert len(loaded) == 2
    assert loaded[0]["cca1"] == "cubic"
    assert float(loaded[0]["jain_index"]) == pytest.approx(rows[0]["jain_index"])


def test_write_csv_rejects_empty(tmp_path):
    with pytest.raises(ValueError):
        write_csv([], tmp_path / "x.csv")
