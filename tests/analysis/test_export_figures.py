"""Unit tests for figure CSV export."""

import csv

from repro.analysis.aggregate import ResultSet
from repro.analysis.export_figures import export_all_figures
from tests.analysis.test_figures import _results


def _load(path):
    with path.open() as fh:
        return list(csv.DictReader(fh))


def test_exports_available_figures(tmp_path):
    written = export_all_figures(_results(), tmp_path)
    # Fixture has fifo + red only: fig6 (fq_codel) is skipped.
    assert set(written) == {"fig2", "fig3", "fig4", "fig5", "fig7", "fig8"}
    for path in written.values():
        assert path.exists()


def test_fig2_rows_long_format(tmp_path):
    written = export_all_figures(_results(), tmp_path)
    rows = _load(written["fig2"])
    assert {"cca1", "cca2", "bandwidth", "buffer_bdp", "cca1_bps", "cca2_bps"} <= set(rows[0])
    # 1 inter pair x 2 bandwidths x 2 buffers.
    assert len(rows) == 4
    assert all(r["cca1"] == "bbrv1" for r in rows)


def test_fig7_rows(tmp_path):
    written = export_all_figures(_results(), tmp_path)
    rows = _load(written["fig7"])
    aqms = {r["aqm"] for r in rows}
    assert aqms == {"fifo", "red"}
    for r in rows:
        v = float(r["link_utilization"])
        assert v != v or 0.0 <= v <= 1.1  # NaN allowed for missing cells


def test_jain_rows_cover_inter_and_intra(tmp_path):
    written = export_all_figures(_results(), tmp_path)
    rows = _load(written["fig3"])
    assert {r["kind"] for r in rows} == {"inter", "intra"}
