"""Unit tests for iperf3 JSON parsing against the simulator's own logs."""

import pytest

from repro.analysis.parse_iperf import parse_iperf_doc, summarize_docs
from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
from repro.traffic.iperf import Iperf3Client, Iperf3Server
from repro.units import mbps, seconds


def _run_clients():
    db = build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=mbps(20), buffer_bdp=2.0, mss_bytes=1500, seed=3)
    )
    docs = []
    clients = []
    for i in range(2):
        Iperf3Server(db.servers[i])
        clients.append(
            Iperf3Client(db.clients[i], db.servers[i], congestion="cubic",
                         parallel=2, duration_s=4.0, mss=1500)
        )
        clients[-1].start()
    db.network.run(seconds(5))
    return [c.json_result() for c in clients]


def test_parse_real_simulator_output():
    docs = _run_clients()
    summary = parse_iperf_doc(docs[0])
    assert summary.congestion == "cubic"
    assert summary.num_streams == 2
    assert summary.duration_s == 4.0
    assert summary.total_bytes > 0
    assert summary.throughput_bps == pytest.approx(summary.total_bytes * 8 / 4.0)
    assert len(summary.interval_bps) == 4


def test_summarize_per_host():
    docs = _run_clients()
    per_host = summarize_docs(docs)
    assert set(per_host) == {"server1", "server2"}
    for agg in per_host.values():
        assert agg["streams"] == 2
        assert agg["throughput_bps"] > 0


def test_malformed_document_rejected():
    with pytest.raises(ValueError):
        parse_iperf_doc({"start": {}})


def test_parse_minimal_real_iperf_shape():
    """A document shaped like genuine iperf3 output (no sim extras)."""
    doc = {
        "start": {"test_start": {"protocol": "TCP", "num_streams": 1, "duration": 10},
                  "connecting_to": {"host": "dtn01", "port": 5201}},
        "intervals": [
            {"sum": {"start": 0, "end": 1, "seconds": 1, "bytes": 125000,
                     "bits_per_second": 1e6}},
        ],
        "end": {
            "sum_sent": {"bytes": 1250000, "bits_per_second": 1e6, "retransmits": 17},
            "sum_received": {"bytes": 1250000, "bits_per_second": 1e6},
        },
    }
    s = parse_iperf_doc(doc)
    assert s.host == "dtn01"
    assert s.retransmits == 17
    assert s.interval_bps == [1e6]
