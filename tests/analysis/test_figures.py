"""Unit tests for the per-figure series builders."""

import math

from repro.analysis.aggregate import ResultSet
from repro.analysis.figures import (
    fig2_series,
    fig3_series,
    fig4_series,
    fig5_series,
    fig6_series,
    fig7_series,
    fig8_series,
)
from repro.units import mbps
from tests.analysis.test_aggregate import make_result


def _results():
    out = []
    seed = 0
    for pair in (("bbrv1", "cubic"), ("cubic", "cubic")):
        for aqm in ("fifo", "red"):
            for buf in (2.0, 16.0):
                for bw in (mbps(100), mbps(500)):
                    seed += 1
                    out.append(
                        make_result(pair=pair, aqm=aqm, buf=buf, bw=bw, seed=seed,
                                    s1=0.6 * bw, s2=0.4 * bw, retx=seed)
                    )
    return ResultSet(out)


def test_fig2_panels_inter_only():
    series = fig2_series(_results(), aqm="fifo")
    assert set(series) == {"bbrv1-vs-cubic"}  # intra pairs excluded
    panels = series["bbrv1-vs-cubic"]
    assert set(panels) == {"100 Mbps", "500 Mbps"}
    panel = panels["100 Mbps"]
    assert panel["buffers"] == [2.0, 16.0]
    assert len(panel["cca1_bps"]) == 2


def test_fig4_uses_red():
    series = fig4_series(_results())
    assert "bbrv1-vs-cubic" in series


def test_fig3_inter_intra_split():
    series = fig3_series(_results(), aqm="fifo")
    assert "bbrv1-vs-cubic" in series["inter"]["2bdp"]
    assert "cubic-vs-cubic" in series["intra"]["2bdp"]
    assert series["inter"]["2bdp"]["bandwidths"] == [mbps(100), mbps(500)]
    assert len(series["inter"]["16bdp"]["bbrv1-vs-cubic"]) == 2


def test_fig5_fig6_aqm_variants():
    assert fig5_series(_results())["inter"]  # RED exists in fixture
    fq = fig6_series(_results())
    # fq_codel absent from fixture -> series exist but values are NaN.
    for values in fq["inter"]["2bdp"].values():
        if isinstance(values, list) and values and isinstance(values[0], float):
            pass  # structure only


def test_fig7_intra_utilization():
    series = fig7_series(_results())
    assert set(series) == {"fifo", "red"}
    panel = series["fifo"]["2bdp"]
    assert "cubic" in panel
    assert len(panel["cubic"]) == 2
    assert all(0 <= v <= 1.1 for v in panel["cubic"] if not math.isnan(v))


def test_fig8_intra_retransmissions():
    series = fig8_series(_results())
    panel = series["red"]["16bdp"]
    assert "cubic" in panel
    assert all(v >= 0 for v in panel["cubic"] if not math.isnan(v))


def test_missing_cells_become_nan():
    rs = ResultSet([make_result(pair=("cubic", "cubic"), buf=2.0)])
    series = fig3_series(rs, buffers=(2.0, 16.0))
    missing = series["intra"]["16bdp"]["cubic-vs-cubic"]
    assert all(math.isnan(v) for v in missing)
