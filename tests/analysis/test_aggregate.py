"""Unit tests for result aggregation."""

import pytest

from repro.analysis.aggregate import ResultSet, cell_key
from repro.experiments.config import ExperimentConfig
from repro.metrics.summary import ExperimentResult, SenderStats
from repro.units import mbps


def make_result(pair=("cubic", "cubic"), aqm="fifo", buf=2.0, bw=mbps(100),
                seed=1, jain=1.0, util=0.9, retx=10, s1=50e6, s2=50e6):
    cfg = ExperimentConfig(cca_pair=pair, aqm=aqm, buffer_bdp=buf,
                           bottleneck_bw_bps=bw, seed=seed)
    return ExperimentResult(
        config=cfg.to_dict(),
        senders=[SenderStats("client1", pair[0], s1, retx // 2, 1),
                 SenderStats("client2", pair[1], s2, retx - retx // 2, 1)],
        flows=[],
        jain_index=jain,
        link_utilization=util,
        total_retransmits=retx,
        total_throughput_bps=s1 + s2,
        bottleneck_drops=retx,
        duration_s=10.0,
        engine="fluid",
    )


def test_cells_average_repetitions():
    rs = ResultSet([
        make_result(seed=1, jain=0.8, util=0.9, retx=10),
        make_result(seed=2, jain=1.0, util=0.7, retx=30),
    ])
    cells = rs.cells()
    assert len(cells) == 1
    stats = next(iter(cells.values()))
    assert stats.runs == 2
    assert stats.jain_index == pytest.approx(0.9)
    assert stats.link_utilization == pytest.approx(0.8)
    assert stats.total_retransmits == pytest.approx(20)


def test_filter_by_config_fields():
    rs = ResultSet([
        make_result(aqm="fifo"),
        make_result(aqm="red", seed=2),
        make_result(pair=("bbrv1", "cubic"), aqm="red", seed=3),
    ])
    assert len(rs.filter(aqm="red")) == 2
    assert len(rs.filter(aqm="red", cca_pair=("bbrv1", "cubic"))) == 1
    assert len(rs.filter(aqm="codel")) == 0


def test_mean_with_where():
    rs = ResultSet([
        make_result(buf=2.0, util=0.8),
        make_result(buf=16.0, util=0.4, seed=2),
    ])
    assert rs.mean(lambda c: c.link_utilization) == pytest.approx(0.6)
    assert rs.mean(lambda c: c.link_utilization,
                   where=lambda c: c.buffer_bdp == 2.0) == pytest.approx(0.8)


def test_mean_empty_raises():
    rs = ResultSet([make_result()])
    with pytest.raises(ValueError):
        rs.mean(lambda c: c.jain_index, where=lambda c: False)


def test_enumeration_helpers():
    rs = ResultSet([
        make_result(buf=2.0, bw=mbps(100)),
        make_result(buf=16.0, bw=mbps(500), aqm="red", pair=("reno", "cubic"), seed=2),
    ])
    assert rs.buffers() == [2.0, 16.0]
    assert rs.bandwidths() == [mbps(100), mbps(500)]
    assert rs.aqms() == ["fifo", "red"]
    assert ("reno", "cubic") in rs.pairs()


def test_cell_key_shape():
    r = make_result(pair=("htcp", "cubic"), aqm="red", buf=4.0, bw=mbps(500))
    assert cell_key(r) == (("htcp", "cubic"), "red", 4.0, mbps(500))
