"""Unit + integration tests for convergence analysis."""

import pytest

from repro.analysis.convergence import (
    convergence_time_s,
    fairness_half_life_s,
    jain_series,
    sender_interval_series,
    series_convergence_time_s,
    series_oscillation_count,
    series_sync_loss_times,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_packet_experiment
from repro.metrics.summary import ExperimentResult, FlowStats, SenderStats
from repro.units import mbps


def _synthetic(series, interval_s=1.0):
    """Two flows, one per sender, with prescribed per-interval series."""
    flows = [
        FlowStats(1, "client1", "a", 1.0, 0, 0, 0, 0, 0),
        FlowStats(2, "client2", "b", 1.0, 0, 0, 0, 0, 0),
    ]
    return ExperimentResult(
        config={"cca_pair": ["a", "b"], "aqm": "fifo", "buffer_bdp": 2.0,
                "bottleneck_bw_bps": 1e8, "seed": 1},
        senders=[SenderStats("client1", "a", 1.0, 0, 1), SenderStats("client2", "b", 1.0, 0, 1)],
        flows=flows,
        jain_index=1.0, link_utilization=1.0, total_retransmits=0,
        total_throughput_bps=2.0, bottleneck_drops=0, duration_s=10.0, engine="packet",
        extra={"interval_s": interval_s,
               "series_bps": {"flow1": series[0], "flow2": series[1]}},
    )


def test_sender_series_aggregates_flows():
    r = _synthetic(([10, 20], [30, 40]))
    per_sender = sender_interval_series(r)
    assert per_sender == {"client1": [10, 20], "client2": [30, 40]}


def test_jain_series_values():
    r = _synthetic(([10, 10, 10], [0, 10, 30]))
    series = jain_series(r)
    assert series[0] == pytest.approx(0.5)
    assert series[1] == pytest.approx(1.0)
    assert series[2] == pytest.approx((40) ** 2 / (2 * (100 + 900)))


def test_convergence_time():
    # J: 0.5, 0.5, 1.0, 1.0, 1.0 -> converges (hold=3) at interval 3 -> 3 s.
    r = _synthetic(([10, 10, 10, 10, 10], [0, 0, 10, 10, 10]))
    assert convergence_time_s(r, threshold=0.9, hold_intervals=3) == pytest.approx(3.0)


def test_never_converges():
    r = _synthetic(([10, 10, 10], [0, 0, 0]))
    assert convergence_time_s(r) is None


def test_half_life():
    # J0 = 0.5; target 0.75; reached at second interval -> 2 s.
    r = _synthetic(([10, 10, 10], [0, 4, 10]))
    assert fairness_half_life_s(r) == pytest.approx(2.0)


def test_validation_errors():
    r = _synthetic(([1], [1]))
    with pytest.raises(ValueError):
        convergence_time_s(r, threshold=0)
    with pytest.raises(ValueError):
        convergence_time_s(r, hold_intervals=0)
    bare = _synthetic(([1], [1]))
    bare.extra = {}
    with pytest.raises(ValueError):
        jain_series(bare)


def test_sender_series_raises_on_ragged_lengths():
    # flow1 has 3 intervals, flow2 only 2: summing would mis-attribute
    # the tail to flow1's sender, so this must be a hard error.
    r = _synthetic(([10, 20, 30], [30, 40]))
    with pytest.raises(ValueError, match="lengths differ"):
        sender_interval_series(r)


def test_series_convergence_empty():
    assert series_convergence_time_s([], []) is None


def test_series_convergence_never():
    times = [1.0, 2.0, 3.0, 4.0]
    assert series_convergence_time_s(times, [0.5, 0.6, 0.7, 0.8]) is None


def test_series_convergence_at_first_sample():
    # Converged from the very first sample: the window starts at t=0.5.
    times = [0.5, 1.0, 1.5, 2.0]
    t = series_convergence_time_s(times, [0.95, 0.96, 0.97, 0.98])
    assert t == pytest.approx(0.5)


def test_series_convergence_single_interval_hold():
    # hold_intervals=1: the first sample at threshold is the answer,
    # including for a single-sample series.
    assert series_convergence_time_s([2.5], [0.91], hold_intervals=1) == pytest.approx(2.5)
    assert series_convergence_time_s([2.5], [0.89], hold_intervals=1) is None


def test_series_convergence_interrupted_run_resets():
    # A dip inside the window restarts the hold count.
    times = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
    series = [0.95, 0.95, 0.5, 0.95, 0.95, 0.95]
    assert series_convergence_time_s(times, series) == pytest.approx(4.0)


def test_series_convergence_validation():
    with pytest.raises(ValueError):
        series_convergence_time_s([1.0], [0.5], threshold=0.0)
    with pytest.raises(ValueError):
        series_convergence_time_s([1.0], [0.5], hold_intervals=0)
    with pytest.raises(ValueError):
        series_convergence_time_s([1.0, 2.0], [0.5])


def test_series_oscillations():
    assert series_oscillation_count([]) == 0
    assert series_oscillation_count([0.95]) == 0
    # Two falls out of the fair regime.
    assert series_oscillation_count([0.95, 0.5, 0.95, 0.5, 0.6]) == 2
    # Never reaches, or never leaves: no oscillation.
    assert series_oscillation_count([0.5, 0.6, 0.7]) == 0
    assert series_oscillation_count([0.95, 0.96, 0.97]) == 0
    with pytest.raises(ValueError):
        series_oscillation_count([0.5], threshold=1.5)


def test_series_sync_loss_times():
    times = [1.0, 2.0, 3.0, 4.0]
    # 0.9 -> 0.4 is a 55% drop from above the floor: flagged at t=2.
    assert series_sync_loss_times(times, [0.9, 0.4, 0.9, 0.8]) == [2.0]
    # A crash from below the floor is startup noise, not synchronization.
    assert series_sync_loss_times(times, [0.3, 0.1, 0.3, 0.25]) == []
    assert series_sync_loss_times([], []) == []
    with pytest.raises(ValueError):
        series_sync_loss_times(times, [0.9, 0.4, 0.9, 0.8], drop_frac=1.0)
    with pytest.raises(ValueError):
        series_sync_loss_times([1.0], [0.9, 0.4])


def test_real_run_intra_cca_converges_quickly():
    r = run_packet_experiment(
        ExperimentConfig(cca_pair=("cubic", "cubic"), bottleneck_bw_bps=mbps(10),
                         duration_s=20.0, mss_bytes=1500, flows_per_node=1,
                         seed=29, sample_interval_s=1.0)
    )
    t = convergence_time_s(r, threshold=0.85, hold_intervals=3)
    assert t is not None
    assert t <= 15.0
