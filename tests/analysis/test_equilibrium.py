"""Unit tests for the Fig-2 equilibrium-point extractor."""

import math

import pytest

from repro.analysis.figures import equilibrium_points


def _series(buffers, gaps_by_bw):
    """Build a fig2-style series from per-bw (buffer -> gap) lists."""
    out = {"x-vs-cubic": {}}
    for bw, gaps in gaps_by_bw.items():
        out["x-vs-cubic"][bw] = {
            "buffers": list(buffers),
            "cca1_bps": [50 + g / 2 for g in gaps],
            "cca2_bps": [50 - g / 2 for g in gaps],
        }
    return out


def test_exact_crossing_interpolated():
    series = _series([1, 2, 4], {"1 Gbps": [10, -10, -30]})
    points = equilibrium_points(series, "x-vs-cubic")
    assert points["1 Gbps"] == pytest.approx(1.5)


def test_crossing_at_sample_point():
    series = _series([1, 2, 4], {"1 Gbps": [10, 0, -5]})
    points = equilibrium_points(series, "x-vs-cubic")
    assert points["1 Gbps"] == pytest.approx(2.0)


def test_never_loses_lead():
    series = _series([1, 2, 4], {"1 Gbps": [10, 8, 2]})
    assert equilibrium_points(series, "x-vs-cubic")["1 Gbps"] == math.inf


def test_never_leads():
    series = _series([1, 2, 4], {"1 Gbps": [-1, -5, -9]})
    assert equilibrium_points(series, "x-vs-cubic")["1 Gbps"] == 0.0


def test_multiple_bandwidths():
    series = _series([0.5, 2, 8], {"a": [5, -5, -10], "b": [5, 1, -1]})
    points = equilibrium_points(series, "x-vs-cubic")
    assert points["a"] == pytest.approx(1.25)
    assert points["b"] == pytest.approx(5.0)
