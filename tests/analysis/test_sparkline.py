"""Unit tests for sparkline rendering."""

import math

import pytest

from repro.analysis.sparkline import BARS, sparkline


def test_monotone_series_monotone_bars():
    s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    assert s == BARS
    assert len(s) == 8


def test_constant_series_flat():
    assert sparkline([5, 5, 5]) == BARS[0] * 3


def test_empty():
    assert sparkline([]) == ""


def test_nan_renders_space():
    s = sparkline([0.0, float("nan"), 1.0])
    assert s[1] == " "
    assert s[0] == BARS[0]
    assert s[2] == BARS[-1]


def test_all_nan():
    assert sparkline([float("nan")] * 4) == "    "


def test_pinned_scale():
    s = sparkline([5.0], lo=0.0, hi=10.0)
    assert s == BARS[4]  # midpoint


def test_downsampling_width():
    s = sparkline(list(range(100)), width=10)
    assert len(s) == 10
    # Still monotone after bucket-averaging.
    assert list(s) == sorted(s, key=BARS.index)


def test_width_validation():
    with pytest.raises(ValueError):
        sparkline([1, 2], width=0)


def test_short_series_not_padded():
    assert len(sparkline([1, 2, 3], width=10)) == 3


def test_aggregate_std_fields():
    from repro.analysis.aggregate import ResultSet
    from tests.analysis.test_aggregate import make_result

    rs = ResultSet([
        make_result(seed=1, jain=0.8, util=0.9, retx=10),
        make_result(seed=2, jain=1.0, util=0.7, retx=30),
    ])
    stats = next(iter(rs.cells().values()))
    assert stats.jain_index_std == pytest.approx(0.1414, rel=0.01)
    assert stats.total_retransmits_std == pytest.approx(14.14, rel=0.01)
    single = ResultSet([make_result(seed=3)]).cells()
    assert next(iter(single.values())).jain_index_std == 0.0
