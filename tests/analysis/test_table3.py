"""Unit tests for the Table 3 builder."""

import pytest

from repro.analysis.aggregate import ResultSet
from repro.analysis.table3 import PAPER_TABLE3, build_table3, render_table3
from repro.units import mbps
from tests.analysis.test_aggregate import make_result


def _grid():
    """A tiny grid: 2 pairs x 1 aqm x 2 buffers, with cubic baseline."""
    results = []
    seed = 0
    for pair, retx in ((("cubic", "cubic"), 10), (("bbrv1", "cubic"), 100)):
        for buf in (2.0, 16.0):
            seed += 1
            results.append(make_result(pair=pair, buf=buf, retx=retx, seed=seed,
                                       jain=0.9, util=0.95))
    return ResultSet(results)


def test_rr_normalized_against_cubic_baseline():
    rows = build_table3(_grid())
    by_key = {r.key: r for r in rows}
    assert by_key[("cubic", "cubic", "fifo")].avg_rr == pytest.approx(1.0)
    assert by_key[("bbrv1", "cubic", "fifo")].avg_rr == pytest.approx(10.0)


def test_averages_over_cells():
    rows = build_table3(_grid())
    row = next(r for r in rows if r.cca1 == "bbrv1")
    assert row.cells == 2
    assert row.avg_utilization == pytest.approx(0.95)
    assert row.avg_jain == pytest.approx(0.9)


def test_paper_reference_attached():
    rows = build_table3(_grid())
    row = next(r for r in rows if r.cca1 == "bbrv1")
    assert row.paper == PAPER_TABLE3[("bbrv1", "cubic", "fifo")]


def test_zero_baseline_falls_back():
    results = [
        make_result(pair=("cubic", "cubic"), retx=0, seed=1),
        make_result(pair=("reno", "cubic"), retx=5, seed=2),
    ]
    rows = build_table3(ResultSet(results))
    row = next(r for r in rows if r.cca1 == "reno")
    assert row.avg_rr == pytest.approx(5.0)


def test_paper_table_has_27_rows():
    assert len(PAPER_TABLE3) == 27
    aqms = {k[2] for k in PAPER_TABLE3}
    assert aqms == {"fifo", "red", "fq_codel"}


def test_render_includes_paper_columns():
    text = render_table3(build_table3(_grid()))
    assert "Avg(RR)" in text
    assert "paper" in text
    assert "bbrv1 vs cubic" in text


def test_render_without_paper():
    text = render_table3(build_table3(_grid()), show_paper=False)
    assert "paper" not in text
