"""Unit tests for the paper-claims validator."""

from repro.analysis.aggregate import ResultSet
from repro.analysis.validate import render_claims, validate_claims
from repro.units import gbps, mbps
from tests.analysis.test_aggregate import make_result


def _paper_consistent_results():
    """A synthetic result set crafted to satisfy every claim."""
    out = []
    seed = 0
    bandwidths = (mbps(100), gbps(10))
    for bw in bandwidths:
        hi = bw == gbps(10)
        for buf in (0.5, 16.0):
            seed += 10
            # BBRv1 vs CUBIC: wins small FIFO buffers, loses large ones;
            # dominates under RED; fair under FQ.
            s1, s2 = (0.9 * bw, 0.1 * bw) if buf == 0.5 else (0.2 * bw, 0.8 * bw)
            out.append(make_result(pair=("bbrv1", "cubic"), aqm="fifo", buf=buf, bw=bw,
                                   seed=seed + 1, s1=s1, s2=s2, jain=0.7, util=0.99,
                                   retx=5000 if hi else 500))
            out.append(make_result(pair=("bbrv1", "cubic"), aqm="red", buf=buf, bw=bw,
                                   seed=seed + 2, s1=0.9 * bw, s2=0.05 * bw, jain=0.53,
                                   util=0.9, retx=40000 if hi else 4000))
            out.append(make_result(pair=("bbrv1", "cubic"), aqm="fq_codel", buf=buf, bw=bw,
                                   seed=seed + 3, s1=0.5 * bw, s2=0.5 * bw, jain=0.99,
                                   util=0.95, retx=8000 if hi else 800))
            for cca, retx in (("bbrv1", 90000), ("bbrv2", 300), ("cubic", 100),
                              ("reno", 150), ("htcp", 200)):
                for aqm, util in (("fifo", 0.99), ("red", 0.7 if hi else 0.95),
                                  ("fq_codel", 0.96)):
                    seed += 1
                    out.append(make_result(pair=(cca, cca), aqm=aqm, buf=buf, bw=bw,
                                           seed=seed, jain=0.99, util=util,
                                           retx=retx * (10 if hi else 1),
                                           s1=util * bw / 2, s2=util * bw / 2))
    return ResultSet(out)


def test_all_claims_pass_on_consistent_data():
    claims = validate_claims(_paper_consistent_results())
    failed = [c for c in claims if c.passed is False]
    assert not failed, [c.claim_id + ": " + c.detail for c in failed]
    assert sum(1 for c in claims if c.passed) >= 8


def test_violation_detected():
    """Flip the FIFO large-buffer outcome: the equilibrium claim must fail."""
    results = _paper_consistent_results()
    for r in results.results:
        cfg = r.config
        if (tuple(cfg["cca_pair"]) == ("bbrv1", "cubic") and cfg["aqm"] == "fifo"
                and cfg["buffer_bdp"] == 16.0):
            r.senders[0].throughput_bps, r.senders[1].throughput_bps = (
                r.senders[1].throughput_bps, r.senders[0].throughput_bps,
            )
    claims = {c.claim_id: c for c in validate_claims(results)}
    assert claims["fifo-equilibrium"].passed is False


def test_insufficient_data_skips():
    rs = ResultSet([make_result(pair=("cubic", "cubic"), aqm="fifo", buf=2.0)])
    claims = validate_claims(rs)
    assert any(c.skipped for c in claims)
    assert not any(c.passed is False for c in claims)


def test_render_claims_text():
    text = render_claims(validate_claims(_paper_consistent_results()))
    assert "PASS" in text
    assert "fifo-equilibrium" in text
    assert "passed" in text
