"""Unit tests for text report rendering."""

from repro.analysis.aggregate import ResultSet
from repro.analysis.figures import fig2_series, fig3_series, fig7_series, fig8_series
from repro.analysis.report import (
    render_inter_panels,
    render_intra_metric_panels,
    render_jain_panels,
)
from tests.analysis.test_figures import _results


def test_render_inter_panels():
    text = render_inter_panels(fig2_series(_results(), aqm="fifo"))
    assert "[bbrv1-vs-cubic @ 100 Mbps]" in text
    assert "buffer" in text
    assert "Mbps" in text


def test_render_jain_panels():
    text = render_jain_panels(fig3_series(_results(), aqm="fifo"))
    assert "[inter-CCA, buffer=2bdp]" in text
    assert "[intra-CCA, buffer=16bdp]" in text
    assert "bbrv1-vs-cubic" in text


def test_render_intra_metric_panels():
    text = render_intra_metric_panels(fig7_series(_results()))
    assert "[fifo, buffer=2bdp]" in text
    assert "cubic" in text
    retx_text = render_intra_metric_panels(fig8_series(_results()), fmt="{:>10.0f}")
    assert "[red, buffer=16bdp]" in retx_text
