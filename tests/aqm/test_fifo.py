"""Unit tests for the drop-tail queue."""

import pytest

from repro.aqm.fifo import FifoQueue
from repro.net.packet import make_data_packet


def _pkt(seq=0, size=1000):
    return make_data_packet(1, "a", "b", seq=seq, mss=size, now=0)


def test_fifo_order():
    q = FifoQueue(10_000)
    for seq in range(5):
        assert q.enqueue(_pkt(seq=seq), now=seq)
    out = [q.dequeue(100).seq for _ in range(5)]
    assert out == [0, 1, 2, 3, 4]
    assert q.dequeue(100) is None


def test_byte_limit_enforced():
    q = FifoQueue(2500)
    assert q.enqueue(_pkt(seq=0), 0)
    assert q.enqueue(_pkt(seq=1), 0)
    assert not q.enqueue(_pkt(seq=2), 0)  # 3000 > 2500
    assert q.stats.dropped_enqueue == 1
    assert q.bytes_queued == 2000
    assert len(q) == 2


def test_enqueue_stamps_time():
    q = FifoQueue(10_000)
    pkt = _pkt()
    q.enqueue(pkt, now=1234)
    assert pkt.enqueue_time == 1234


def test_stats_accounting():
    q = FifoQueue(3000)
    for seq in range(5):
        q.enqueue(_pkt(seq=seq), 0)
    while q.dequeue(0):
        pass
    s = q.stats
    assert s.enqueued == 3
    assert s.dequeued == 3
    assert s.dropped_enqueue == 2
    assert s.bytes_dropped == 2000
    assert q.bytes_queued == 0 and q.packets_queued == 0


def test_invalid_limit_rejected():
    with pytest.raises(ValueError):
        FifoQueue(0)


def test_exact_fit_accepted():
    q = FifoQueue(1000)
    assert q.enqueue(_pkt(size=1000), 0)
    assert not q.enqueue(_pkt(size=1), 0)
