"""Unit tests for CoDel."""

from repro.aqm.codel import CoDelQueue
from repro.net.packet import make_data_packet
from repro.units import milliseconds


def _pkt(seq=0, size=1000):
    return make_data_packet(1, "a", "b", seq=seq, mss=size, now=0)


def test_low_sojourn_passes_through():
    q = CoDelQueue(10**6)
    for seq in range(10):
        q.enqueue(_pkt(seq=seq), now=0)
    out = []
    # Dequeue almost immediately: sojourn < 5 ms target.
    for _ in range(10):
        pkt = q.dequeue(milliseconds(1))
        out.append(pkt.seq)
    assert out == list(range(10))
    assert q.stats.dropped_dequeue == 0


def test_persistent_delay_triggers_drops():
    q = CoDelQueue(10**7)
    # A standing queue enqueued at t=0, dequeued very slowly.
    for seq in range(200):
        q.enqueue(_pkt(seq=seq), now=0)
    drops_before = q.stats.dropped_dequeue
    # Dequeue one packet every 20 ms: sojourn far above target for long.
    t = milliseconds(10)
    got = 0
    while True:
        pkt = q.dequeue(t)
        if pkt is None:
            break
        got += 1
        t += milliseconds(20)
    assert q.stats.dropped_dequeue > drops_before
    assert got + q.stats.dropped_dequeue == 200


def test_drop_rate_escalates():
    """The control-law spacing shrinks as count grows."""
    q = CoDelQueue(10**7)
    c = q.controller
    t0 = 1_000_000_000
    assert c.control_law(t0, 1) - t0 > c.control_law(t0, 16) - t0
    assert c.control_law(t0, 4) - t0 == (c.control_law(t0, 1) - t0) // 2


def test_byte_limit_tail_drop():
    q = CoDelQueue(2500)
    assert q.enqueue(_pkt(0), 0)
    assert q.enqueue(_pkt(1), 0)
    assert not q.enqueue(_pkt(2), 0)
    assert q.stats.dropped_enqueue == 1


def test_recovers_after_queue_drains():
    q = CoDelQueue(10**7)
    for seq in range(100):
        q.enqueue(_pkt(seq=seq), now=0)
    t = milliseconds(200)
    while q.dequeue(t) is not None:
        t += milliseconds(30)
    assert q.controller.dropping is False or q.packets_queued == 0
    # Fresh traffic with low latency passes untouched.
    q.enqueue(_pkt(seq=999), now=t)
    dropped_before = q.stats.dropped_dequeue
    assert q.dequeue(t + milliseconds(1)).seq == 999
    assert q.stats.dropped_dequeue == dropped_before
