"""Unit tests for FQ_CoDel."""

import numpy as np
import pytest

from repro.aqm.fq_codel import FqCoDelQueue
from repro.net.packet import make_data_packet
from repro.units import milliseconds


def _pkt(flow, seq=0, size=1000):
    return make_data_packet(flow, "a", "b", seq=seq, mss=size, now=0)


def test_round_robin_between_flows():
    q = FqCoDelQueue(10**7, quantum_bytes=1000)
    for seq in range(6):
        q.enqueue(_pkt(flow=1, seq=seq), 0)
        q.enqueue(_pkt(flow=2, seq=seq + 100), 0)
    order = [q.dequeue(0).flow_id for _ in range(12)]
    # Interleaved service: neither flow gets more than quantum ahead.
    ones = [i for i, f in enumerate(order) if f == 1]
    twos = [i for i, f in enumerate(order) if f == 2]
    assert len(ones) == len(twos) == 6
    # Max run length of the same flow is small (quantum = 1 packet).
    max_run = max(
        len(list(run))
        for run in [order[i:i + 3] for i in range(len(order) - 2)]
        if len(set(run)) == 1
    ) if any(len(set(order[i:i+3])) == 1 for i in range(len(order)-2)) else 1
    assert max_run <= 3


def test_fair_bytes_between_flows():
    q = FqCoDelQueue(10**8, quantum_bytes=1500)
    # Flow 1 sends big packets, flow 2 small ones.
    for seq in range(40):
        q.enqueue(_pkt(flow=1, seq=seq, size=1500), 0)
        q.enqueue(_pkt(flow=2, seq=seq, size=500), 0)
        q.enqueue(_pkt(flow=2, seq=seq + 1000, size=500), 0)
        q.enqueue(_pkt(flow=2, seq=seq + 2000, size=500), 0)
    bytes_out = {1: 0, 2: 0}
    for _ in range(60):
        pkt = q.dequeue(0)
        bytes_out[pkt.flow_id] += pkt.size
    # DRR with equal quanta: byte service within ~25% of equal.
    ratio = bytes_out[1] / bytes_out[2]
    assert 0.7 <= ratio <= 1.4


def test_sparse_flow_priority():
    """A new (sparse) flow is served before backlogged old flows."""
    q = FqCoDelQueue(10**7, quantum_bytes=1000)
    for seq in range(50):
        q.enqueue(_pkt(flow=1, seq=seq), 0)
    # Drain a few so flow 1 is an "old" queue.
    for _ in range(5):
        q.dequeue(0)
    q.enqueue(_pkt(flow=7, seq=0), 0)
    # The sparse flow's packet comes out within the next couple dequeues.
    flows = [q.dequeue(0).flow_id for _ in range(2)]
    assert 7 in flows


def test_memory_limit_evicts_from_fattest_flow():
    q = FqCoDelQueue(5_000, quantum_bytes=1000)
    for seq in range(10):
        q.enqueue(_pkt(flow=1, seq=seq), 0)  # fat flow
    q.enqueue(_pkt(flow=2, seq=0), 0)  # thin flow
    assert q.bytes_queued <= 5_000
    assert q.stats.dropped_enqueue > 0
    # Thin flow survived.
    flows_out = set()
    while True:
        pkt = q.dequeue(0)
        if pkt is None:
            break
        flows_out.add(pkt.flow_id)
    assert 2 in flows_out


def test_codel_applies_per_flow():
    q = FqCoDelQueue(10**8, quantum_bytes=1000)
    for seq in range(300):
        q.enqueue(_pkt(flow=1, seq=seq), 0)
    t = milliseconds(150)
    drained = 0
    while q.dequeue(t) is not None:
        drained += 1
        t += milliseconds(15)
    assert q.stats.dropped_dequeue > 0
    assert drained + q.stats.dropped_dequeue == 300


def test_hash_perturbation_depends_on_rng():
    q1 = FqCoDelQueue(10**6, np.random.default_rng(1))
    q2 = FqCoDelQueue(10**6, np.random.default_rng(2))
    pkt = _pkt(flow=123)
    assert isinstance(q1._bucket_id(pkt), int)
    # Different perturbations usually map the same flow differently.
    ids1 = {q1._bucket_id(_pkt(flow=f)) for f in range(50)}
    ids2 = {q2._bucket_id(_pkt(flow=f)) for f in range(50)}
    assert ids1 != ids2


def test_invalid_parameters():
    with pytest.raises(ValueError):
        FqCoDelQueue(10**6, flows=0)
    with pytest.raises(ValueError):
        FqCoDelQueue(10**6, quantum_bytes=0)


def test_empty_dequeue_returns_none():
    q = FqCoDelQueue(10**6)
    assert q.dequeue(0) is None
    q.enqueue(_pkt(flow=1), 0)
    assert q.dequeue(0) is not None
    assert q.dequeue(0) is None
