"""Unit tests for RED."""

import numpy as np
import pytest

from repro.aqm.red import RedQueue
from repro.net.packet import make_data_packet


def _pkt(seq=0, size=1000, ecn=False):
    return make_data_packet(1, "a", "b", seq=seq, mss=size, now=0, ecn_ect=ecn)


def _red(limit=100_000, **kw):
    kw.setdefault("avpkt", 1000)
    return RedQueue(limit, np.random.default_rng(7), **kw)


def test_no_drops_below_min_threshold():
    q = _red(min_th=50_000, max_th=80_000)
    for seq in range(10):
        assert q.enqueue(_pkt(seq=seq), 0)
    assert q.stats.dropped_enqueue == 0


def test_drop_probability_ramp():
    q = _red(min_th=10_000, max_th=20_000, max_p=0.1)
    q.avg = 5_000
    assert q._drop_probability() == 0.0
    q.avg = 15_000
    assert q._drop_probability() == pytest.approx(0.05)
    q.avg = 20_000  # gentle region starts
    assert q._drop_probability() == pytest.approx(0.1)
    q.avg = 30_000
    assert q._drop_probability() == pytest.approx(0.1 + 0.9 * 0.5)
    q.avg = 45_000  # beyond 2*max_th
    assert q._drop_probability() == 1.0


def test_probability_monotonic_in_avg():
    q = _red(min_th=10_000, max_th=20_000)
    probs = []
    for avg in range(0, 50_000, 1000):
        q.avg = avg
        probs.append(q._drop_probability())
    assert probs == sorted(probs)


def test_sustained_overload_produces_drops():
    q = _red(limit=50_000, min_th=5_000, max_th=15_000, max_p=0.1)
    # Enqueue a lot without dequeuing: avg climbs, drops must appear.
    accepted = sum(q.enqueue(_pkt(seq=i), i * 1000) for i in range(200))
    assert q.stats.dropped_total > 0
    assert accepted < 200


def test_hard_limit_tail_drop():
    q = _red(limit=3_000, min_th=1_000, max_th=2_900)
    for i in range(10):
        q.enqueue(_pkt(seq=i), 0)
    assert q.bytes_queued <= 3_000


def test_ewma_tracks_queue():
    """The average is of the queue as seen by each arriving packet."""
    q = _red(min_th=50_000, max_th=80_000, weight=0.5)
    q.enqueue(_pkt(), 0)
    assert q.avg == 0  # first packet saw an empty queue
    q.enqueue(_pkt(), 0)
    assert q.avg > 0
    first = q.avg
    q.enqueue(_pkt(), 0)
    assert q.avg > first


def test_idle_decay_reduces_average():
    q = _red(min_th=50_000, max_th=80_000, weight=0.1, bandwidth_bps=8e6)
    for i in range(20):
        q.enqueue(_pkt(seq=i), 0)
    while q.dequeue(100):
        pass
    high = q.avg
    # One second idle at 1000 B/ms drains many avpkt slots.
    q.enqueue(_pkt(seq=99), 1_000_000_000)
    assert q.avg < high


def test_ecn_marks_instead_of_dropping():
    q = RedQueue(100_000, np.random.default_rng(3), min_th=1_000, max_th=2_000,
                 max_p=1.0, avpkt=1000, ecn_mode=True)
    q.avg = 1_900  # nearly max -> certain mark
    marked_before = q.stats.ecn_marked
    for i in range(20):
        q.enqueue(_pkt(seq=i, ecn=True), 0)
        q.avg = 1_900
    assert q.stats.ecn_marked > marked_before
    assert q.stats.dropped_enqueue == 0


def test_rng_required():
    with pytest.raises(ValueError):
        RedQueue(100_000, None)


def test_threshold_validation():
    with pytest.raises(ValueError):
        _red(min_th=50_000, max_th=40_000)
    with pytest.raises(ValueError):
        _red(limit=10_000, min_th=5_000, max_th=20_000)  # max > limit
    with pytest.raises(ValueError):
        _red(max_p=0.0)
    with pytest.raises(ValueError):
        _red(weight=0.0)


def test_default_thresholds_fixed_not_scaled():
    """Defaults follow classic tc guidance (30/90 avpkt), not the buffer."""
    small = _red(limit=100_000)
    big = _red(limit=100_000_000)
    assert big.min_th == 30 * 1000
    assert big.max_th == 90 * 1000
    assert small.min_th <= big.min_th
