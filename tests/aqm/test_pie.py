"""Unit tests for the PIE AQM (RFC 8033)."""

import numpy as np
import pytest

from repro.aqm.pie import PieQueue
from repro.net.packet import make_data_packet
from repro.units import milliseconds, seconds


def _pkt(seq=0, size=1000, ecn=False):
    return make_data_packet(1, "a", "b", seq=seq, mss=size, now=0, ecn_ect=ecn)


def _pie(**kw):
    return PieQueue(10**7, np.random.default_rng(5), **kw)


def test_passes_traffic_below_target_delay():
    q = _pie()
    t = 0
    for seq in range(200):
        q.enqueue(_pkt(seq), t)
        assert q.dequeue(t + milliseconds(1)) is not None
        t += milliseconds(2)
    assert q.stats.dropped_enqueue == 0
    assert q.drop_prob == pytest.approx(0.0, abs=1e-6)


def test_burst_allowance_grace_period():
    q = _pie()
    # A burst right at the start: inside the 150 ms allowance, no drops.
    for seq in range(100):
        q.enqueue(_pkt(seq), milliseconds(1))
    assert q.stats.dropped_enqueue == 0


def test_sustained_overload_raises_drop_probability():
    q = _pie()
    t = 0
    # Feed 2x the drain rate for several seconds of simulated time.
    for step in range(4000):
        t += milliseconds(1)
        q.enqueue(_pkt(step * 2), t)
        q.enqueue(_pkt(step * 2 + 1), t)
        q.dequeue(t)  # drain slower than arrivals
    assert q.drop_prob > 0.0
    assert q.stats.dropped_enqueue > 0


def test_probability_decays_after_queue_empties():
    q = _pie()
    t = 0
    for step in range(4000):
        t += milliseconds(1)
        q.enqueue(_pkt(step * 2), t)
        q.enqueue(_pkt(step * 2 + 1), t)
        q.dequeue(t)
    high = q.drop_prob
    assert high > 0
    # Drain completely and give the controller idle time.
    while q.dequeue(t) is not None:
        t += milliseconds(1)
    for _ in range(3000):
        t += milliseconds(5)
        q.dequeue(t)
    assert q.drop_prob < high / 2


def test_hard_limit():
    q = PieQueue(2500, np.random.default_rng(0))
    assert q.enqueue(_pkt(0), 0)
    assert q.enqueue(_pkt(1), 0)
    assert not q.enqueue(_pkt(2), 0)


def test_ecn_marks_when_enabled():
    q = PieQueue(10**7, np.random.default_rng(1), ecn_mode=True,
                 burst_allowance_ns=0)
    q.drop_prob = 1.0
    q.qdelay_old_ns = seconds(1)
    for seq in range(10):
        q.enqueue(_pkt(seq, ecn=True), seconds(1))
    assert q.stats.ecn_marked > 0
    assert q.stats.dropped_enqueue == 0


def test_validation():
    with pytest.raises(ValueError):
        PieQueue(10**6, None)
    with pytest.raises(ValueError):
        _pie(target_ns=0)
    with pytest.raises(ValueError):
        _pie(t_update_ns=0)


def test_registry_integration():
    from repro.aqm.registry import make_aqm

    q = make_aqm("pie", 10**6, rng=np.random.default_rng(0))
    assert isinstance(q, PieQueue)
    with pytest.raises(ValueError):
        make_aqm("pie", 10**6)
