"""Unit tests for the AQM factory."""

import numpy as np
import pytest

from repro.aqm import CoDelQueue, FifoQueue, FqCoDelQueue, RedQueue, make_aqm


def test_factory_builds_each_discipline():
    rng = np.random.default_rng(0)
    assert isinstance(make_aqm("fifo", 10**6), FifoQueue)
    assert isinstance(make_aqm("red", 10**6, rng=rng), RedQueue)
    assert isinstance(make_aqm("fq_codel", 10**6, rng=rng), FqCoDelQueue)
    assert isinstance(make_aqm("codel", 10**6), CoDelQueue)


def test_factory_case_insensitive():
    assert isinstance(make_aqm("FIFO", 10**6), FifoQueue)


def test_red_requires_rng():
    with pytest.raises(ValueError):
        make_aqm("red", 10**6)


def test_unknown_name_rejected():
    with pytest.raises(ValueError):
        make_aqm("wred", 10**6)


def test_params_forwarded():
    rng = np.random.default_rng(0)
    red = make_aqm("red", 10**6, rng=rng, min_th=1111, max_th=2222, max_p=0.5)
    assert red.min_th == 1111
    assert red.max_th == 2222
    assert red.max_p == 0.5


def test_mtu_forwarded_to_fq_codel():
    q = make_aqm("fq_codel", 10**6, rng=np.random.default_rng(0), mtu_bytes=8900)
    assert q.quantum == 8900
