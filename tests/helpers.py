"""Shared test harnesses.

``LoopbackNet`` wires a TCP sender and receiver directly through the
simulator with a configurable one-way delay, an optional bottleneck rate,
and a programmable drop hook — the minimal environment for exercising the
sender/receiver state machines without standing up a full topology.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.cca.base import CongestionControl
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.units import milliseconds, tx_time_ns


class LoopbackNet:
    """Sender -> (drop hook, serialization, delay) -> receiver -> ACKs back."""

    def __init__(
        self,
        *,
        cca: CongestionControl,
        mss: int = 1500,
        one_way_delay_ns: int = milliseconds(10),
        data_rate_bps: Optional[float] = None,
        queue_limit_pkts: Optional[int] = None,
        drop_data: Optional[Callable[[Packet], bool]] = None,
        drop_ack: Optional[Callable[[Packet], bool]] = None,
        total_segments: Optional[int] = None,
        ack_every: int = 1,
    ):
        self.sim = Simulator()
        self.delay = one_way_delay_ns
        self.rate = data_rate_bps
        self.queue_limit = queue_limit_pkts
        self.drop_data = drop_data
        self.drop_ack = drop_ack
        self.data_drops = 0
        self.ack_drops = 0
        self.queue_drops = 0
        self._queue: deque = deque()
        self._busy = False

        self.sender = TcpSender(
            self.sim, 1, "10.0.0.1", "10.0.0.2", self._send_data, cca,
            mss=mss, total_segments=total_segments,
        )
        self.receiver = TcpReceiver(
            1, "10.0.0.2", "10.0.0.1", self._send_ack, lambda: self.sim.now,
            mss=mss, ack_every=ack_every,
        )

    # -- forward path (data) --------------------------------------------------------

    def _send_data(self, pkt: Packet) -> None:
        if self.drop_data is not None and self.drop_data(pkt):
            self.data_drops += 1
            return
        if self.rate is None:
            self.sim.schedule(self.delay, self.receiver.handle_packet, pkt)
            return
        if self.queue_limit is not None and len(self._queue) >= self.queue_limit and self._busy:
            self.queue_drops += 1
            return
        self._queue.append(pkt)
        if not self._busy:
            self._pump()

    def _pump(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        pkt = self._queue.popleft()
        tx = tx_time_ns(pkt.size, self.rate)
        self.sim.schedule(tx, self._tx_done, pkt)

    def _tx_done(self, pkt: Packet) -> None:
        self.sim.schedule(self.delay, self.receiver.handle_packet, pkt)
        self._pump()

    # -- reverse path (ACKs) ----------------------------------------------------------

    def _send_ack(self, pkt: Packet) -> None:
        if self.drop_ack is not None and self.drop_ack(pkt):
            self.ack_drops += 1
            return
        self.sim.schedule(self.delay, self.sender.handle_packet, pkt)

    # -- driving ---------------------------------------------------------------------

    def run(self, duration_ns: int) -> None:
        self.sim.run(self.sim.now + duration_ns)

    def start(self, delay_ns: int = 0) -> None:
        self.sender.start(delay_ns)


# --- golden-trace fixtures ---------------------------------------------------
#
# Pinned-seed configs whose full ExperimentResult dicts are frozen under
# tests/fixtures/golden/.  One per AQM on the packet engine plus one fluid
# run, so a hot-path "optimization" that changes any simulated outcome —
# a drop, a mark, one segment — fails the exact-match test.  Regenerate
# (only after an *intended* behavior change) with:
#
#     PYTHONPATH=src python tests/fixtures/golden/regen.py

GOLDEN_CONFIGS = {
    "packet_fifo": dict(
        cca_pair=("cubic", "reno"), aqm="fifo", engine="packet"),
    "packet_red": dict(
        cca_pair=("bbrv1", "cubic"), aqm="red", engine="packet"),
    "packet_codel": dict(
        cca_pair=("cubic", "cubic"), aqm="codel", engine="packet"),
    "packet_fq_codel": dict(
        cca_pair=("bbrv2", "cubic"), aqm="fq_codel", engine="packet"),
    "packet_pie": dict(
        cca_pair=("htcp", "cubic"), aqm="pie", engine="packet"),
    "fluid_fifo": dict(
        cca_pair=("cubic", "cubic"), aqm="fifo", engine="fluid",
        bottleneck_bw_bps=500e6, duration_s=10.0),
    # Batched fluid backend, one fixture per AQM family.  These must stay
    # bit-identical to the scalar fluid engine on the same config (the
    # cross-validation suite asserts it pairwise; the goldens pin the
    # absolute values so both engines can't drift together unnoticed).
    "batched_fifo": dict(
        cca_pair=("cubic", "cubic"), aqm="fifo", engine="fluid_batched",
        bottleneck_bw_bps=500e6, duration_s=10.0),
    "batched_red": dict(
        cca_pair=("bbrv1", "cubic"), aqm="red", engine="fluid_batched",
        bottleneck_bw_bps=500e6, duration_s=10.0),
    "batched_fq_codel": dict(
        cca_pair=("bbrv2", "cubic"), aqm="fq_codel", engine="fluid_batched",
        bottleneck_bw_bps=500e6, duration_s=10.0),
    "batched_pie": dict(
        cca_pair=("htcp", "reno"), aqm="pie", engine="fluid_batched",
        bottleneck_bw_bps=500e6, duration_s=10.0),
    # Pinned fault scenarios: the full result dict — including the fault
    # audit trail in extra["faults"] — must stay bit-identical, so any
    # change to fault compilation, firing order, or the drain-on-down
    # semantics fails the exact-match test.
    "packet_fault_flap": dict(
        cca_pair=("cubic", "cubic"), aqm="fifo", engine="packet",
        bottleneck_bw_bps=10e6, duration_s=15.0,
        faults=[dict(kind="link_flap", at_s=10.0, duration_s=1.0)]),
    "packet_fault_lossburst": dict(
        cca_pair=("cubic", "reno"), aqm="fifo", engine="packet",
        bottleneck_bw_bps=10e6, duration_s=15.0,
        faults=[dict(kind="loss_burst", at_s=5.0, duration_s=5.0, loss_rate=0.01)]),
}

GOLDEN_DEFAULTS = dict(
    bottleneck_bw_bps=50e6,
    buffer_bdp=2.0,
    duration_s=3.0,
    mss_bytes=1500,
    seed=7,
    flows_per_node=1,
)


def golden_config(name: str):
    """Build the pinned ExperimentConfig for one golden fixture."""
    from repro.experiments.config import ExperimentConfig

    params = {**GOLDEN_DEFAULTS, **GOLDEN_CONFIGS[name]}
    return ExperimentConfig(**params)


def golden_result_dict(name: str) -> dict:
    """Run one golden config and return its normalized result dict."""
    from repro.experiments.runner import run_experiment

    d = run_experiment(golden_config(name)).to_dict()
    d.pop("wallclock_s", None)  # host-dependent, never comparable
    return d


def drop_seqs(*seqs: int) -> Callable[[Packet], bool]:
    """Drop hook dropping the FIRST transmission of the given seqs."""
    pending = set(seqs)

    def hook(pkt: Packet) -> bool:
        if pkt.seq in pending and not pkt.is_retx:
            pending.discard(pkt.seq)
            return True
        return False

    return hook
