"""Unit tests for unit helpers (time, rate, BDP)."""

import pytest

from repro import units


def test_time_conversions():
    assert units.seconds(1.5) == 1_500_000_000
    assert units.milliseconds(62) == 62_000_000
    assert units.microseconds(3) == 3_000
    assert units.to_seconds(2_500_000_000) == pytest.approx(2.5)


def test_rate_conversions():
    assert units.mbps(100) == 100_000_000
    assert units.gbps(25) == 25_000_000_000


def test_tx_time():
    # 1500 bytes at 12 kbit/s -> 1 second.
    assert units.tx_time_ns(1500, 12_000) == units.seconds(1)
    assert units.tx_time_ns(1, 1e12) >= 1  # never zero


def test_tx_time_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        units.tx_time_ns(100, 0)


def test_bdp_matches_paper_equation():
    # Paper eq. 1: 100 Mbps * 62 ms / 8 = 775000 bytes.
    assert units.bdp_bytes(units.mbps(100), units.milliseconds(62)) == 775_000


def test_bdp_scales_linearly():
    base = units.bdp_bytes(units.mbps(100), units.milliseconds(62))
    assert units.bdp_bytes(units.mbps(500), units.milliseconds(62)) == 5 * base
    assert units.bdp_bytes(units.gbps(25), units.milliseconds(62)) == 250 * base


def test_bdp_packets():
    # 775000 bytes / 8900-byte jumbo packets = 87 packets.
    assert units.bdp_packets(units.mbps(100), units.milliseconds(62), 8900) == 87


def test_bdp_packets_at_least_one():
    assert units.bdp_packets(1000, units.milliseconds(1), 9000) == 1


def test_bdp_rejects_bad_inputs():
    with pytest.raises(ValueError):
        units.bdp_bytes(0, units.milliseconds(1))
    with pytest.raises(ValueError):
        units.bdp_bytes(1e6, 0)
    with pytest.raises(ValueError):
        units.bdp_packets(1e6, units.milliseconds(1), 0)


def test_format_rate():
    assert units.format_rate(units.mbps(100)) == "100 Mbps"
    assert units.format_rate(units.gbps(25)) == "25 Gbps"
    assert units.format_rate(units.mbps(0.5)) == "500 Kbps"
