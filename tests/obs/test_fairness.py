"""Unit + integration tests for the fairness observatory probe.

Covers the pure-Python :class:`FairnessProbe` math, the run-log /
registry / Chrome-trace integration, and the end-to-end contract on the
packet and fluid engines: sampling is opt-in and never perturbs
outcomes.  (Scalar-vs-batched bit-identity of the series lives in
``tests/fluid/test_batched_vs_scalar.py``.)
"""

import dataclasses

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_packet_experiment
from repro.obs.chrome_trace import build_chrome_trace, validate_chrome_trace
from repro.obs.fairness import (
    FairnessProbe,
    fairness_records,
    fairness_summary,
    fluid_sample_stride,
    instrument_packet_fairness,
    register_fairness_gauges,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.runlog import read_run_log, validate_run_log
from repro.obs.session import TelemetryOptions
from repro.units import mbps


def _cfg(**over):
    base = dict(
        cca_pair=("cubic", "cubic"),
        bottleneck_bw_bps=mbps(10),
        duration_s=3.0,
        mss_bytes=1500,
        flows_per_node=1,
        seed=5,
    )
    base.update(over)
    return ExperimentConfig(**base)


# --- probe math ----------------------------------------------------------------


def test_probe_series_math():
    probe = FairnessProbe(capacity_bps=100.0, node_of=[0, 0, 1], interval_s=1.0)
    # Node 0 carries flows of 30+30, node 1 one flow of 40.
    probe.sample(1.0, [30.0, 30.0, 40.0], queue_pkts=7.0)
    assert probe.t_s == [1.0]
    # Per-node rates (60, 40): Jain = 100^2 / (2 * (3600 + 1600)).
    assert probe.jain[0] == pytest.approx(10000 / (2 * 5200))
    # Per-flow rates (30, 30, 40): Jain = 100^2 / (3 * (900+900+1600)).
    assert probe.flow_jain[0] == pytest.approx(10000 / (3 * 3400))
    assert probe.phi[0] == pytest.approx(1.0)
    assert probe.queue_pkts == [7.0]
    assert probe.sender_bps == [[60.0], [40.0]]


def test_probe_derived_dynamics():
    probe = FairnessProbe(capacity_bps=100.0, node_of=[0, 1], interval_s=1.0)
    # Jain: 0.5, then perfectly fair for 3 samples, dip, fair again.
    plan = [
        (1.0, [100.0, 0.0]),
        (2.0, [50.0, 50.0]),
        (3.0, [50.0, 50.0]),
        (4.0, [50.0, 50.0]),
        (5.0, [100.0, 0.0]),  # oscillation + (phi stays 1.0, no sync loss)
        (6.0, [50.0, 50.0]),
    ]
    for t, rates in plan:
        probe.sample(t, rates)
    assert probe.convergence_time_s() == pytest.approx(2.0)
    assert probe.oscillations() == 1
    assert probe.sync_loss_times_s() == []
    d = probe.to_dict()
    assert d["samples"] == 6
    assert d["convergence_time_s"] == pytest.approx(2.0)
    assert d["oscillations"] == 1


def test_probe_detects_sync_loss():
    probe = FairnessProbe(capacity_bps=100.0, node_of=[0, 1], interval_s=1.0)
    probe.sample(1.0, [50.0, 50.0])
    probe.sample(2.0, [20.0, 20.0])  # phi 1.0 -> 0.4: synchronized back-off
    assert probe.sync_loss_times_s() == [2.0]


def test_probe_validation():
    with pytest.raises(ValueError):
        FairnessProbe(capacity_bps=0.0, node_of=[0], interval_s=1.0)
    with pytest.raises(ValueError):
        FairnessProbe(capacity_bps=1.0, node_of=[0], interval_s=0.0)
    with pytest.raises(ValueError):
        FairnessProbe(capacity_bps=1.0, node_of=[], interval_s=1.0)
    probe = FairnessProbe(capacity_bps=1.0, node_of=[0, 1], interval_s=1.0)
    with pytest.raises(ValueError):
        probe.sample(1.0, [1.0])  # wrong flow count


def test_fairness_records_and_summary():
    probe = FairnessProbe(capacity_bps=100.0, node_of=[0, 1], interval_s=0.5)
    probe.sample(0.5, [60.0, 40.0], queue_pkts=3.0)
    probe.sample(1.0, [50.0, 50.0], queue_pkts=1.0)
    d = probe.to_dict()
    recs = list(fairness_records(d))
    assert len(recs) == 2
    assert recs[0]["t_sim_s"] == 0.5
    assert recs[0]["sender_bps"] == [60.0, 40.0]
    assert recs[1]["jain"] == pytest.approx(1.0)
    assert recs[1]["queue_pkts"] == 1.0
    digest = fairness_summary(d)
    assert digest["samples"] == 2
    assert digest["interval_s"] == 0.5
    assert digest["oscillations"] == 0
    assert digest["sync_losses"] == 0


def test_register_fairness_gauges_snapshot():
    probe = FairnessProbe(capacity_bps=100.0, node_of=[0, 1], interval_s=1.0)
    probe.sample(1.0, [100.0, 0.0], queue_pkts=4.0)
    registry = MetricsRegistry(enabled=True)
    register_fairness_gauges(registry, probe.to_dict())
    snap = registry.snapshot()
    assert snap["gauges"]["fairness_jain"] == pytest.approx(0.5)
    assert snap["gauges"]["fairness_phi"] == pytest.approx(1.0)
    assert snap["gauges"]["fairness_queue_pkts"] == 4.0
    # Not converged: the sentinel is -1, not None (gauges are numeric).
    assert snap["gauges"]["fairness_convergence_time_s"] == -1.0
    assert snap["counters"]["fairness_samples_total"] == 1


def test_fluid_sample_stride():
    assert fluid_sample_stride(1.0, 0.01) == 100
    assert fluid_sample_stride(0.001, 0.01) == 1  # floor at one step


# --- packet engine end to end --------------------------------------------------


def test_disabled_instrumentation_returns_none():
    assert instrument_packet_fairness(None, None, 1.0, [], None) is None
    assert instrument_packet_fairness(None, None, 1.0, [], 0) is None


def test_packet_run_records_fairness():
    result = run_packet_experiment(_cfg(fairness_interval_s=1.0))
    f = result.extra["fairness"]
    assert f["engine"] == "packet"
    assert f["samples"] >= 3
    assert len(f["t_s"]) == f["samples"] == len(f["jain"]) == len(f["phi"])
    assert all(0.0 <= j <= 1.0 + 1e-9 for j in f["jain"])
    assert all(p >= 0.0 for p in f["phi"])
    # Two sender nodes, one series per node, one point per sample.
    assert len(f["sender_bps"]) == 2
    assert all(len(s) == f["samples"] for s in f["sender_bps"])


def test_packet_sampling_never_perturbs_outcomes():
    cfg = _cfg(seed=11, aqm="fq_codel", buffer_bdp=0.5)
    plain = run_packet_experiment(cfg)
    sampled = run_packet_experiment(
        dataclasses.replace(cfg, fairness_interval_s=0.5)
    )
    assert [f.__dict__ for f in plain.flows] == [f.__dict__ for f in sampled.flows]
    assert plain.jain_index == sampled.jain_index
    assert plain.bottleneck_drops == sampled.bottleneck_drops
    assert plain.total_retransmits == sampled.total_retransmits


def test_fairness_interval_validation():
    with pytest.raises(ValueError):
        _cfg(fairness_interval_s=-1.0)


def test_unsampled_config_dict_omits_fairness_key():
    # Compatibility contract: configs that never sampled serialize the
    # same bytes as before the knob existed (golden fixtures included).
    assert "fairness_interval_s" not in _cfg().to_dict()
    assert _cfg(fairness_interval_s=2.0).to_dict()["fairness_interval_s"] == 2.0


# --- fluid engine end to end ---------------------------------------------------


def test_fluid_run_records_fairness_without_perturbing():
    from repro.fluid.runner import run_fluid_experiment

    cfg = _cfg(engine="fluid", bottleneck_bw_bps=mbps(100), seed=3)
    plain = run_fluid_experiment(cfg)
    sampled = run_fluid_experiment(dataclasses.replace(cfg, fairness_interval_s=0.5))
    f = sampled.extra["fairness"]
    assert f["engine"] == "fluid"
    assert f["samples"] >= 3
    pd, sd = plain.to_dict(), sampled.to_dict()
    for d in (pd, sd):
        d.pop("wallclock_s")
        d.pop("extra", None)
        d["config"].pop("fairness_interval_s", None)
    assert pd == sd


# --- telemetry session / run log / trace export --------------------------------


def test_session_streams_fairness_records(tmp_path):
    cfg = _cfg(seed=8, fairness_interval_s=1.0)
    opts = TelemetryOptions(dir=str(tmp_path), spans=True)
    result = run_packet_experiment(cfg, opts)

    records = read_run_log(tmp_path / f"{cfg.label()}.jsonl")
    assert validate_run_log(records) == []
    fair = [r for r in records if r["record"] == "fairness"]
    assert len(fair) == result.extra["fairness"]["samples"]
    assert result.extra["obs"]["fairness_samples"] == len(fair)
    assert fair[0]["t_sim_s"] == pytest.approx(1.0)

    summary = records[-1]
    assert summary["fairness"]["samples"] == len(fair)

    metrics = [r for r in records if r["record"] == "metrics"][-1]
    assert metrics["gauges"]["fairness_jain"] == pytest.approx(
        result.extra["fairness"]["jain"][-1]
    )

    # Perfetto export: counter events for every sample x metric, valid.
    doc = build_chrome_trace([tmp_path / f"{cfg.label()}.jsonl"])
    assert validate_chrome_trace(doc) == []
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert len(counters) == 3 * len(fair)  # jain, phi, queue_pkts
    assert doc["otherData"]["fairness_samples"] == len(fair)
    names = {e["name"].split(" ")[0] for e in counters}
    assert names == {"jain", "phi", "queue_pkts"}


def test_validator_rejects_bad_fairness_record():
    records = [
        {"record": "manifest", "t_wall": 0.0, "schema": "repro-runlog/1",
         "label": "x", "config": {}, "config_hash": "0", "repro_version": "0",
         "seed": 1, "engine": "packet"},
        {"record": "fairness", "t_wall": 0.0, "t_sim_s": 1.0, "jain": 1.5,
         "phi": 0.9},
        {"record": "summary", "t_wall": 0.0, "status": "ok"},
    ]
    errors = validate_run_log(records)
    assert any("jain" in e for e in errors)
