"""Unit tests for the metrics registry and its instruments."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_push():
    c = Counter("pkts_total")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_pull():
    state = {"n": 7}
    c = Counter("pkts_total", fn=lambda: state["n"])
    assert c.value == 7
    state["n"] = 9
    assert c.value == 9
    with pytest.raises(RuntimeError):
        c.inc()


def test_gauge_push_and_pull():
    g = Gauge("depth")
    g.set(3.5)
    assert g.value == 3.5
    pulled = Gauge("depth", fn=lambda: 11)
    assert pulled.value == 11
    with pytest.raises(RuntimeError):
        pulled.set(1)


def test_key_renders_sorted_labels():
    c = Counter("drops_total", labels={"queue": "bottleneck", "aqm": "red"})
    assert c.key() == 'drops_total{aqm="red",queue="bottleneck"}'
    assert Counter("plain").key() == "plain"


def test_histogram_buckets_and_overflow():
    h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.0, 3.0, 100.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["buckets"] == [1.0, 2.0, 4.0]
    # (<=1): 0.5 and 1.0; (<=2): none; (<=4): 3.0; overflow: 100.0
    assert snap["counts"] == [2, 0, 1, 1]
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(104.5)
    assert h.mean == pytest.approx(104.5 / 4)


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("bad", buckets=())


def test_registry_snapshot_resolves_callbacks():
    reg = MetricsRegistry()
    state = {"n": 0}
    reg.counter("pulled_total", fn=lambda: state["n"])
    reg.gauge("depth").set(2.0)
    reg.histogram("lat", buckets=(1.0,)).observe(0.5)
    state["n"] = 42
    snap = reg.snapshot()
    assert snap["counters"]["pulled_total"] == 42
    assert snap["gauges"]["depth"] == 2.0
    assert snap["histograms"]["lat"]["count"] == 1


def test_registry_dedupes_same_key():
    reg = MetricsRegistry()
    a = reg.counter("x_total", labels={"q": "a"})
    b = reg.counter("x_total", labels={"q": "a"})
    assert a is b
    assert reg.counter("x_total", labels={"q": "b"}) is not a


def test_registry_rejects_kind_conflict():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x")


def test_disabled_registry_has_no_side_effects():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("x_total")
    g = reg.gauge("y")
    h = reg.histogram("z")
    assert c is NULL_INSTRUMENT and g is NULL_INSTRUMENT and h is NULL_INSTRUMENT
    # Mutators are accepted but leave no trace anywhere.
    c.inc(100)
    g.set(5.0)
    h.observe(1.0)
    assert NULL_INSTRUMENT.value == 0
    assert NULL_INSTRUMENT.count == 0
    assert reg.instruments == []
    assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
    # The shared null instrument holds no attribute-level state at all.
    assert not hasattr(NULL_INSTRUMENT, "__dict__")


def test_null_registry_is_disabled():
    assert not NULL_REGISTRY.enabled
    assert NULL_REGISTRY.counter("anything") is NULL_INSTRUMENT


def test_default_buckets_are_powers_of_two():
    assert DEFAULT_BUCKETS[0] == 1.0
    assert all(b == 2 * a for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]))
