"""Unit tests for the `repro obs` subcommand tree."""

from repro.cli import main
from repro.obs.cli import render_campaign_tail, render_summary
from repro.obs.runlog import RUN_LOG_SCHEMA


def _records():
    return [
        {"record": "manifest", "t_wall": 1.0, "schema": RUN_LOG_SCHEMA,
         "label": "cell-1", "config": {}, "config_hash": "abc", "repro_version": "1.0.0",
         "seed": 1, "engine": "packet"},
        {"record": "metrics", "t_wall": 2.0,
         "counters": {"sim_events_processed_total": 1234,
                      'queue_dropped_enqueue_total{queue="bottleneck"}': 7,
                      "tcp_retransmits_total": 3},
         "gauges": {}, "histograms": {"tcp_cwnd_segments":
                                      {"buckets": [1.0], "counts": [2, 0], "sum": 4.0, "count": 2}}},
        {"record": "summary", "t_wall": 3.0, "status": "ok", "wall_s": 2.0,
         "events": 1234, "events_per_sec": 617.0, "peak_rss_kb": 100,
         "jain_index": 0.99, "link_utilization": 0.95,
         "total_retransmits": 3, "bottleneck_drops": 7},
    ]


def test_render_summary_headline():
    text = render_summary(_records())
    assert "cell-1" in text
    assert "status      : ok" in text
    assert "J=0.9900" in text
    assert "drops (enqueue)" in text
    assert "retransmits" in text
    assert "1.2k" in text  # events formatted
    assert "tcp_cwnd_segments" in text


def test_render_summary_error_run():
    records = _records()
    records[-1].update(status="error", error="RuntimeError('x')",
                       trace_dump="t.trace.jsonl", trace_events_dumped=5)
    text = render_summary(records)
    assert "error       : RuntimeError('x')" in text
    assert "t.trace.jsonl" in text


def test_render_campaign_tail():
    records = [
        {"record": "campaign_progress", "t_wall": 1.0, "finished": i, "total": 4,
         "failed": 1 if i > 2 else 0, "label": f"cell-{i}", "eta_s": 10.0 - i,
         "events_per_sec": 100.0}
        for i in range(1, 4)
    ]
    text = render_campaign_tail(records)
    assert "3/4 done" in text
    assert "1 FAILED" in text
    assert "cell-3" in text
    assert render_campaign_tail([]) == "no campaign progress records"


def test_obs_validate_cli_roundtrip(tmp_path, capsys):
    from repro.obs.runlog import RunLogWriter

    log = tmp_path / "cell.jsonl"
    with RunLogWriter(log) as w:
        w.manifest(label="cell", config={}, config_hash="h",
                   repro_version="1", seed=1, engine="packet")
        w.metrics({"counters": {}, "gauges": {}, "histograms": {}})
        w.summary(status="ok", wall_s=1.0, events=10, events_per_sec=10.0, peak_rss_kb=5)
    assert main(["obs", "validate", str(log)]) == 0
    capsys.readouterr()
    assert main(["obs", "summary", str(tmp_path)]) == 0
    assert "cell" in capsys.readouterr().out
    assert main(["obs", "prom", str(log)]) == 0


def test_obs_validate_flags_bad_log(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"record": "summary", "t_wall": 1.0}\n')
    assert main(["obs", "validate", str(bad)]) == 1
    assert "manifest" in capsys.readouterr().err


def test_obs_prom_writes_file(tmp_path, capsys):
    from repro.obs.runlog import RunLogWriter

    log = tmp_path / "cell.jsonl"
    with RunLogWriter(log) as w:
        w.manifest(label="cell", config={}, config_hash="h",
                   repro_version="1", seed=1, engine="packet")
        w.metrics({"counters": {"x_total": 5}, "gauges": {}, "histograms": {}})
        w.summary(status="ok", wall_s=1.0, events=10, events_per_sec=10.0, peak_rss_kb=5)
    out = tmp_path / "metrics.prom"
    assert main(["obs", "prom", str(log), "--out", str(out)]) == 0
    assert "repro_x_total 5" in out.read_text()
    # A directory resolves to its newest run log.
    capsys.readouterr()
    assert main(["obs", "prom", str(tmp_path)]) == 0
    assert "repro_x_total 5" in capsys.readouterr().out


def test_obs_empty_dir(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["obs", "summary", str(empty)]) == 1


# -- trace / profile / diff / tail --follow / bench summary -----------------------


def _write_traced_log(path, label="cell", seed=1, base=100.0):
    from repro.obs.runlog import RunLogWriter

    with RunLogWriter(path) as w:
        w.manifest(label=label, config={}, config_hash="h",
                   repro_version="1", seed=seed, engine="packet")
        w.write("span", span_id=f"{label}.2", parent_id=f"{label}.1",
                name="transfer", cat="phase", t_start=base + 0.5,
                dur_s=1.0, pid=9, labels={})
        w.write("span", span_id=f"{label}.1", parent_id=None, name="run",
                cat="run", t_start=base, dur_s=2.0, pid=9,
                labels={"seed": seed})
        w.write("profile", kinds={"link_tx": {"self_s": 0.4, "events": 10},
                                  "ack_process": {"self_s": 0.5, "events": 5}},
                loop_wall_s=1.0, events=15, stride=1)
        w.summary(status="ok", wall_s=2.0, events=15, events_per_sec=7.5,
                  peak_rss_kb=1)


def test_obs_trace_exports_perfetto_json(tmp_path, capsys):
    import json

    from repro.obs.chrome_trace import validate_chrome_trace

    _write_traced_log(tmp_path / "cell.jsonl")
    assert main(["obs", "trace", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "trace.json" in out and "ui.perfetto.dev" in out
    doc = json.loads((tmp_path / "trace.json").read_text())
    assert validate_chrome_trace(doc) == []
    assert doc["otherData"]["spans"] == 2
    # Explicit output path.
    target = tmp_path / "custom.json"
    assert main(["obs", "trace", str(tmp_path / "cell.jsonl"),
                 "--out", str(target)]) == 0
    assert target.exists()


def test_obs_trace_warns_on_spanless_log(tmp_path, capsys):
    from repro.obs.runlog import RunLogWriter

    log = tmp_path / "plain.jsonl"
    with RunLogWriter(log) as w:
        w.manifest(label="plain", config={}, config_hash="h",
                   repro_version="1", seed=1, engine="packet")
        w.summary(status="ok", wall_s=1.0, events=1, events_per_sec=1.0,
                  peak_rss_kb=1)
    assert main(["obs", "trace", str(log)]) == 0
    assert "no span records" in capsys.readouterr().err


def test_obs_profile_table_and_missing_records(tmp_path, capsys):
    _write_traced_log(tmp_path / "cell.jsonl")
    assert main(["obs", "profile", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "link_tx" in out and "ack_process" in out
    assert main(["obs", "profile", str(tmp_path), "--top", "1"]) == 0
    top1 = capsys.readouterr().out
    assert "ack_process" in top1 and "link_tx" not in top1

    empty = tmp_path / "noprofile"
    empty.mkdir()
    from repro.obs.runlog import RunLogWriter

    with RunLogWriter(empty / "x.jsonl") as w:
        w.manifest(label="x", config={}, config_hash="h",
                   repro_version="1", seed=1, engine="packet")
        w.summary(status="ok", wall_s=1.0, events=1, events_per_sec=1.0,
                  peak_rss_kb=1)
    assert main(["obs", "profile", str(empty)]) == 1
    assert "no profile records" in capsys.readouterr().err


def test_obs_diff_renders_phase_and_kind_tables(tmp_path, capsys):
    a, b = tmp_path / "a", tmp_path / "b"
    a.mkdir(), b.mkdir()
    _write_traced_log(a / "cell.jsonl", base=100.0)
    _write_traced_log(b / "cell.jsonl", base=200.0)
    assert main(["obs", "diff", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "transfer" in out and "run" in out
    assert "link_tx" in out


def test_obs_tail_follow_renders_and_exits(tmp_path, capsys):
    from repro.obs.runlog import RunLogWriter

    log = tmp_path / "campaign.jsonl"
    with RunLogWriter(log) as w:
        w.write("campaign_progress", finished=2, total=4, failed=0,
                retried=0, label="cell-2", eta_s=5.0, events_per_sec=10.0)
    # One render then exit: the file is static, so a second update never
    # fires (renders happen only when the fingerprint changes).
    assert main(["obs", "tail", str(tmp_path), "--follow",
                 "--interval", "0.05", "--max-updates", "1"]) == 0
    out = capsys.readouterr().out
    assert "2/4 done" in out


def test_obs_summary_renders_bench_records(tmp_path, capsys):
    from repro.obs.runlog import RunLogWriter

    log = tmp_path / "bench.jsonl"
    with RunLogWriter(log) as w:
        w.manifest(label="bench_2026-08-06", config={}, config_hash="h",
                   repro_version="1", seed=0, engine="bench")
        w.write("bench", name="single_flow_datapath", wall_s=1.25,
                events=50_000, events_per_sec=40_000.0)
        w.summary(status="ok", wall_s=1.25, events=50_000,
                  events_per_sec=40_000.0, peak_rss_kb=1)
    assert main(["obs", "summary", str(log)]) == 0
    out = capsys.readouterr().out
    assert "single_flow_datapath" in out
    assert "bench" in out
    # A bench log has no fairness outcome — no J=nan junk line.
    assert "J=" not in out


def test_obs_validate_covers_campaign_log(tmp_path, capsys):
    from repro.obs.runlog import RunLogWriter

    log = tmp_path / "campaign.jsonl"
    with RunLogWriter(log) as w:
        w.write("campaign_progress", finished=1, total=1, failed=0,
                retried=0, label="cell-1", eta_s=0.0, events_per_sec=1.0)
        w.write("span", span_id="c.1", parent_id="ghost.7", name="campaign",
                cat="campaign", t_start=1.0, dur_s=1.0, pid=1, labels={})
    # The dangling parent_id must fail validation (span-tree integrity).
    assert main(["obs", "validate", str(log)]) == 1
    assert "does not resolve" in capsys.readouterr().err
