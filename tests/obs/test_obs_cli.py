"""Unit tests for the `repro obs` subcommand tree."""

from repro.cli import main
from repro.obs.cli import render_campaign_tail, render_summary
from repro.obs.runlog import RUN_LOG_SCHEMA


def _records():
    return [
        {"record": "manifest", "t_wall": 1.0, "schema": RUN_LOG_SCHEMA,
         "label": "cell-1", "config": {}, "config_hash": "abc", "repro_version": "1.0.0",
         "seed": 1, "engine": "packet"},
        {"record": "metrics", "t_wall": 2.0,
         "counters": {"sim_events_processed_total": 1234,
                      'queue_dropped_enqueue_total{queue="bottleneck"}': 7,
                      "tcp_retransmits_total": 3},
         "gauges": {}, "histograms": {"tcp_cwnd_segments":
                                      {"buckets": [1.0], "counts": [2, 0], "sum": 4.0, "count": 2}}},
        {"record": "summary", "t_wall": 3.0, "status": "ok", "wall_s": 2.0,
         "events": 1234, "events_per_sec": 617.0, "peak_rss_kb": 100,
         "jain_index": 0.99, "link_utilization": 0.95,
         "total_retransmits": 3, "bottleneck_drops": 7},
    ]


def test_render_summary_headline():
    text = render_summary(_records())
    assert "cell-1" in text
    assert "status      : ok" in text
    assert "J=0.9900" in text
    assert "drops (enqueue)" in text
    assert "retransmits" in text
    assert "1.2k" in text  # events formatted
    assert "tcp_cwnd_segments" in text


def test_render_summary_error_run():
    records = _records()
    records[-1].update(status="error", error="RuntimeError('x')",
                       trace_dump="t.trace.jsonl", trace_events_dumped=5)
    text = render_summary(records)
    assert "error       : RuntimeError('x')" in text
    assert "t.trace.jsonl" in text


def test_render_campaign_tail():
    records = [
        {"record": "campaign_progress", "t_wall": 1.0, "finished": i, "total": 4,
         "failed": 1 if i > 2 else 0, "label": f"cell-{i}", "eta_s": 10.0 - i,
         "events_per_sec": 100.0}
        for i in range(1, 4)
    ]
    text = render_campaign_tail(records)
    assert "3/4 done" in text
    assert "1 FAILED" in text
    assert "cell-3" in text
    assert render_campaign_tail([]) == "no campaign progress records"


def test_obs_validate_cli_roundtrip(tmp_path, capsys):
    from repro.obs.runlog import RunLogWriter

    log = tmp_path / "cell.jsonl"
    with RunLogWriter(log) as w:
        w.manifest(label="cell", config={}, config_hash="h",
                   repro_version="1", seed=1, engine="packet")
        w.metrics({"counters": {}, "gauges": {}, "histograms": {}})
        w.summary(status="ok", wall_s=1.0, events=10, events_per_sec=10.0, peak_rss_kb=5)
    assert main(["obs", "validate", str(log)]) == 0
    capsys.readouterr()
    assert main(["obs", "summary", str(tmp_path)]) == 0
    assert "cell" in capsys.readouterr().out
    assert main(["obs", "prom", str(log)]) == 0


def test_obs_validate_flags_bad_log(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"record": "summary", "t_wall": 1.0}\n')
    assert main(["obs", "validate", str(bad)]) == 1
    assert "manifest" in capsys.readouterr().err


def test_obs_prom_writes_file(tmp_path, capsys):
    from repro.obs.runlog import RunLogWriter

    log = tmp_path / "cell.jsonl"
    with RunLogWriter(log) as w:
        w.manifest(label="cell", config={}, config_hash="h",
                   repro_version="1", seed=1, engine="packet")
        w.metrics({"counters": {"x_total": 5}, "gauges": {}, "histograms": {}})
        w.summary(status="ok", wall_s=1.0, events=10, events_per_sec=10.0, peak_rss_kb=5)
    out = tmp_path / "metrics.prom"
    assert main(["obs", "prom", str(log), "--out", str(out)]) == 0
    assert "repro_x_total 5" in out.read_text()
    # A directory resolves to its newest run log.
    capsys.readouterr()
    assert main(["obs", "prom", str(tmp_path)]) == 0
    assert "repro_x_total 5" in capsys.readouterr().out


def test_obs_empty_dir(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["obs", "summary", str(empty)]) == 1
