"""Unit tests for the flight-recorder ring-buffer tracer."""

import io
import json

import pytest

from repro.obs.flight import FlightRecorder


def test_records_in_order_below_capacity():
    r = FlightRecorder(capacity=8)
    r.record("drop", 100, flow=1)
    r.record("retx", 200, flow=2, seq=5)
    assert r.events == [("drop", 100, {"flow": 1}), ("retx", 200, {"flow": 2, "seq": 5})]
    assert len(r) == 2
    assert r.total_recorded == 2
    assert r.dropped == 0
    assert r.counts["drop"] == 1


def test_overflow_wraps_and_keeps_newest():
    r = FlightRecorder(capacity=4)
    for i in range(10):
        r.record("ev", i)
    assert len(r) == 4
    assert r.total_recorded == 10
    assert r.dropped == 6
    # The window is the newest four, oldest to newest.
    assert [t for _, t, _ in r.events] == [6, 7, 8, 9]


def test_of_kind_after_wrap_prunes_evicted():
    r = FlightRecorder(capacity=4)
    r.record("a", 0)  # will be evicted
    for i in range(1, 5):
        r.record("b", i)
    assert r.of_kind("a") == []
    assert [t for _, t, _ in r.of_kind("b")] == [1, 2, 3, 4]
    # Counts still cover evicted events.
    assert r.counts["a"] == 1


def test_of_kind_interleaved_matches_events_order():
    r = FlightRecorder(capacity=100)
    for i in range(20):
        r.record("a" if i % 2 == 0 else "b", i)
    assert [t for _, t, _ in r.of_kind("a")] == list(range(0, 20, 2))
    assert r.of_kind("missing") == []


def test_clear_resets_everything():
    r = FlightRecorder(capacity=4)
    for i in range(6):
        r.record("x", i)
    r.clear()
    assert r.events == []
    assert r.total_recorded == 0
    assert r.dropped == 0
    assert r.of_kind("x") == []
    r.record("x", 1)
    assert len(r) == 1


def test_dump_jsonl_time_ordered_after_wrap(tmp_path):
    r = FlightRecorder(capacity=3)
    for i in range(7):
        r.record("ev", i * 10, flow=i)
    path = tmp_path / "trace.jsonl"
    written = r.dump_jsonl(str(path))
    assert written == 3
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert [row["time_ns"] for row in rows] == [40, 50, 60]
    assert rows[0] == {"kind": "ev", "time_ns": 40, "flow": 4}


def test_dump_jsonl_last_n_and_file_handle():
    r = FlightRecorder(capacity=10)
    for i in range(5):
        r.record("ev", i)
    buf = io.StringIO()
    assert r.dump_jsonl(buf, last=2) == 2
    rows = [json.loads(line) for line in buf.getvalue().splitlines()]
    assert [row["time_ns"] for row in rows] == [3, 4]
    assert r.dump_jsonl(io.StringIO(), last=0) == 0
    with pytest.raises(ValueError):
        r.dump_jsonl(io.StringIO(), last=-1)


def test_invalid_capacity():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_tracer_protocol_compatibility():
    # Any tracer-accepting hook can take a FlightRecorder.
    r = FlightRecorder()
    assert r.enabled
    r.record("queue_drop", 123, point="tail", flow=1, seq=9)
    (kind, t, fields), = r.of_kind("queue_drop")
    assert (kind, t, fields["point"]) == ("queue_drop", 123, "tail")
