"""Unit tests for the Prometheus text-format exporter."""

from repro.obs.export import snapshot_to_prometheus, to_prometheus
from repro.obs.metrics import MetricsRegistry


def _parse(text):
    """Parse exposition text into ({name_with_labels: value}, {family: type})."""
    samples, types = {}, {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, family, kind = line.split(" ")
            types[family] = kind
        elif line:
            name, _, value = line.rpartition(" ")
            samples[name] = value
    return samples, types


def test_counters_and_gauges_render():
    reg = MetricsRegistry()
    reg.counter("drops_total", labels={"queue": "bottleneck"}).inc(3)
    reg.gauge("depth").set(1.5)
    samples, types = _parse(to_prometheus(reg))
    assert types["repro_drops_total"] == "counter"
    assert types["repro_depth"] == "gauge"
    assert samples['repro_drops_total{queue="bottleneck"}'] == "3"
    assert samples["repro_depth"] == "1.5"


def test_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 0.6, 3.0, 99.0):
        h.observe(v)
    samples, types = _parse(to_prometheus(reg))
    assert types["repro_lat"] == "histogram"
    assert samples['repro_lat_bucket{le="1"}'] == "2"
    assert samples['repro_lat_bucket{le="2"}'] == "2"
    assert samples['repro_lat_bucket{le="4"}'] == "3"
    assert samples['repro_lat_bucket{le="+Inf"}'] == "4"
    assert samples["repro_lat_count"] == "4"
    assert float(samples["repro_lat_sum"]) == 103.1


def test_snapshot_export_accepts_run_log_record():
    # A metrics record carries envelope keys; the exporter must ignore them.
    record = {
        "record": "metrics",
        "t_wall": 1.0,
        "counters": {"x_total": 2},
        "gauges": {},
        "histograms": {},
    }
    samples, _ = _parse(snapshot_to_prometheus(record))
    assert samples["repro_x_total"] == "2"


def test_label_roundtrip_with_special_characters():
    reg = MetricsRegistry()
    reg.counter("x_total", labels={"name": 'quo"te'}).inc()
    text = to_prometheus(reg)
    assert 'name="quo\\"te"' in text


def test_empty_snapshot_renders_empty():
    assert snapshot_to_prometheus({"counters": {}, "gauges": {}, "histograms": {}}) == ""


def test_trailing_newline_present():
    reg = MetricsRegistry()
    reg.counter("x_total").inc()
    assert to_prometheus(reg).endswith("\n")


# -- exposition-page hardening ----------------------------------------------------


def test_help_lines_render_once_per_family():
    reg = MetricsRegistry()
    reg.counter("drops_total", help="Packets dropped.", labels={"q": "a"}).inc()
    reg.counter("drops_total", help="Packets dropped.", labels={"q": "b"}).inc()
    text = to_prometheus(reg)
    assert text.count("# HELP repro_drops_total Packets dropped.") == 1
    assert text.count("# TYPE repro_drops_total counter") == 1


def test_registries_share_family_single_header():
    from repro.obs.export import registries_to_prometheus

    regs = []
    for worker in ("w0", "w1"):
        reg = MetricsRegistry()
        reg.counter(
            "events_total", help="Events processed.", labels={"worker": worker}
        ).inc(5)
        regs.append(reg)
    text = registries_to_prometheus(regs)
    assert text.count("# HELP repro_events_total") == 1
    assert text.count("# TYPE repro_events_total counter") == 1
    assert 'repro_events_total{worker="w0"} 5' in text
    assert 'repro_events_total{worker="w1"} 5' in text


def test_registries_first_nonempty_help_wins():
    from repro.obs.export import registries_to_prometheus

    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("x_total", labels={"r": "a"}).inc()  # no help
    b.counter("x_total", help="Late help.", labels={"r": "b"}).inc()
    text = registries_to_prometheus([a, b])
    assert "# HELP repro_x_total Late help." in text


def test_registries_kind_conflict_raises():
    import pytest

    from repro.obs.export import registries_to_prometheus

    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("depth").inc()
    b.gauge("depth").set(1.0)
    with pytest.raises(ValueError, match="depth"):
        registries_to_prometheus([a, b])


def test_registries_duplicate_series_first_wins():
    from repro.obs.export import registries_to_prometheus

    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("x_total", labels={"q": "same"}).inc(1)
    b.counter("x_total", labels={"q": "same"}).inc(99)
    text = registries_to_prometheus([a, b])
    assert text.count('repro_x_total{q="same"}') == 1
    assert 'repro_x_total{q="same"} 1' in text


def test_help_text_escapes_backslash_and_newline():
    reg = MetricsRegistry()
    reg.counter("x_total", help='multi\nline \\ "quoted"').inc()
    text = to_prometheus(reg)
    # Newlines and backslashes escaped; quotes left alone (help, not label).
    assert '# HELP repro_x_total multi\\nline \\\\ "quoted"' in text
    assert all("\n" not in line or line == "" for line in text.split("\n"))


def test_label_roundtrip_trailing_backslash_and_newline():
    from repro.obs.export import _split_key

    reg = MetricsRegistry()
    gnarly = {"path": "a\\", "msg": "line1\nline2", "q": 'quo"te'}
    reg.counter("x_total", labels=gnarly).inc(7)
    snap = reg.snapshot()
    (key,) = snap["counters"]
    name, labels = _split_key(key)
    assert name == "x_total"
    assert labels == gnarly
    # And the rendered page keeps every series on one line (labels sorted).
    samples, _ = _parse(snapshot_to_prometheus(snap))
    assert samples['repro_x_total{msg="line1\\nline2",path="a\\\\",q="quo\\"te"}'] == "7"


def test_split_label_parts_handles_escaped_quote_before_comma():
    from repro.obs.export import _split_label_parts

    parts = _split_label_parts('a="x\\\\",b="y,z",c="w"')
    assert parts == ['a="x\\\\"', 'b="y,z"', 'c="w"']
