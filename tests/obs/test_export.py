"""Unit tests for the Prometheus text-format exporter."""

from repro.obs.export import snapshot_to_prometheus, to_prometheus
from repro.obs.metrics import MetricsRegistry


def _parse(text):
    """Parse exposition text into ({name_with_labels: value}, {family: type})."""
    samples, types = {}, {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, family, kind = line.split(" ")
            types[family] = kind
        elif line:
            name, _, value = line.rpartition(" ")
            samples[name] = value
    return samples, types


def test_counters_and_gauges_render():
    reg = MetricsRegistry()
    reg.counter("drops_total", labels={"queue": "bottleneck"}).inc(3)
    reg.gauge("depth").set(1.5)
    samples, types = _parse(to_prometheus(reg))
    assert types["repro_drops_total"] == "counter"
    assert types["repro_depth"] == "gauge"
    assert samples['repro_drops_total{queue="bottleneck"}'] == "3"
    assert samples["repro_depth"] == "1.5"


def test_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 0.6, 3.0, 99.0):
        h.observe(v)
    samples, types = _parse(to_prometheus(reg))
    assert types["repro_lat"] == "histogram"
    assert samples['repro_lat_bucket{le="1"}'] == "2"
    assert samples['repro_lat_bucket{le="2"}'] == "2"
    assert samples['repro_lat_bucket{le="4"}'] == "3"
    assert samples['repro_lat_bucket{le="+Inf"}'] == "4"
    assert samples["repro_lat_count"] == "4"
    assert float(samples["repro_lat_sum"]) == 103.1


def test_snapshot_export_accepts_run_log_record():
    # A metrics record carries envelope keys; the exporter must ignore them.
    record = {
        "record": "metrics",
        "t_wall": 1.0,
        "counters": {"x_total": 2},
        "gauges": {},
        "histograms": {},
    }
    samples, _ = _parse(snapshot_to_prometheus(record))
    assert samples["repro_x_total"] == "2"


def test_label_roundtrip_with_special_characters():
    reg = MetricsRegistry()
    reg.counter("x_total", labels={"name": 'quo"te'}).inc()
    text = to_prometheus(reg)
    assert 'name="quo\\"te"' in text


def test_empty_snapshot_renders_empty():
    assert snapshot_to_prometheus({"counters": {}, "gauges": {}, "histograms": {}}) == ""


def test_trailing_newline_present():
    reg = MetricsRegistry()
    reg.counter("x_total").inc()
    assert to_prometheus(reg).endswith("\n")
