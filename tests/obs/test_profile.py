"""Unit + integration tests for the event-loop self-profiler."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    ACK_KIND,
    EventLoopProfiler,
    classify,
    diff_profiles,
    render_profile,
    register_profiler_gauges,
)
from repro.sim.engine import Simulator
from repro.units import mbps, seconds


def _run_profiled_sim(stride=1, count=500):
    sim = Simulator()
    fired = {"n": 0}

    def tick():
        fired["n"] += 1

    for i in range(count):
        sim.schedule(i * 1000, tick)
    sim.profiler = EventLoopProfiler(stride=stride)
    sim.run()
    assert fired["n"] == count
    return sim


class _Owner:
    def cb(self):
        pass


class _Packet:
    def __init__(self, is_ack):
        self.is_ack = is_ack


def test_classify_bound_method_and_plain_function():
    owner = _Owner()
    assert classify(owner.cb, ()) == "_Owner.cb"

    def local_fn():
        pass

    assert classify(local_fn, ()) == "local_fn"


def test_classify_splits_ack_deliveries():
    class Link:
        def _deliver(self, pkt):
            pass

    link = Link()
    assert classify(link._deliver, (_Packet(is_ack=True),)) == ACK_KIND
    assert classify(link._deliver, (_Packet(is_ack=False),)) == "packet_deliver"


def test_stride_validation():
    with pytest.raises(ValueError):
        EventLoopProfiler(stride=0)


def test_profiled_loop_counts_every_event():
    sim = _run_profiled_sim(stride=1, count=500)
    prof = sim.profiler
    assert prof.events == 500
    assert prof.sampled == 500
    assert sim.events_processed == 500
    assert prof.loop_wall_s > 0
    assert prof.runs == 1
    assert sum(prof.event_counts.values()) == 500


def test_stride_one_coverage_is_near_total():
    sim = _run_profiled_sim(stride=1, count=2000)
    # Chained timestamps fold heap pops and loop bookkeeping into the
    # event they precede, so self-times sum to ~the whole loop wall.
    assert sim.profiler.coverage >= 0.95


def test_sampling_stride_scales_attribution():
    sim = _run_profiled_sim(stride=10, count=1000)
    prof = sim.profiler
    assert prof.events == 1000
    assert prof.sampled == pytest.approx(100, abs=1)
    snap = prof.snapshot()
    raw = sum(prof.self_time_s.values())
    assert prof.attributed_s == pytest.approx(raw * prof.events / prof.sampled)
    assert snap["stride"] == 10
    # Scaled per-kind event counts approximate the real totals.
    assert sum(k["events"] for k in snap["kinds"].values()) == pytest.approx(
        1000, rel=0.05
    )


def test_profiler_accumulates_across_run_segments():
    sim = Simulator()
    sim.profiler = EventLoopProfiler()

    def noop():
        pass

    for i in range(10):
        sim.schedule(i * 1000, noop)
    sim.run(seconds(0.5))
    sim.run()
    assert sim.profiler.runs == 2
    assert sim.profiler.events == 10


def test_snapshot_is_run_log_profile_record_shaped():
    sim = _run_profiled_sim()
    snap = sim.profiler.snapshot()
    for key in ("stride", "events", "sampled", "loop_wall_s", "attributed_s",
                "coverage", "sim_time_s", "skew", "kinds"):
        assert key in snap
    for row in snap["kinds"].values():
        assert {"self_s", "events"} <= set(row)


def test_outcomes_bit_identical_with_profiler_attached(tmp_path):
    cfg = ExperimentConfig(
        cca_pair=("bbrv1", "cubic"),
        bottleneck_bw_bps=mbps(20),
        duration_s=2.0,
        mss_bytes=1500,
        flows_per_node=1,
        seed=11,
    )
    from repro.experiments.runner import run_packet_experiment

    plain = run_packet_experiment(cfg)
    from repro.obs.session import TelemetryOptions

    profiled = run_packet_experiment(
        cfg, TelemetryOptions(dir=str(tmp_path), profile=True,
                              sample_interval_s=None)
    )
    assert profiled.jain_index == plain.jain_index
    assert profiled.total_throughput_bps == plain.total_throughput_bps
    assert profiled.total_retransmits == plain.total_retransmits
    assert profiled.bottleneck_drops == plain.bottleneck_drops
    assert [f.bytes_received for f in profiled.flows] == [
        f.bytes_received for f in plain.flows
    ]
    # Acceptance: per-kind self time explains >= 95% of the loop wall.
    assert profiled.extra["obs"]["profile_coverage"] >= 0.95


def test_real_datapath_kinds_are_classified():
    from repro.cca.registry import make_cca
    from repro.tcp.connection import open_connection
    from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell

    db = build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=mbps(10), buffer_bdp=2.0,
                       mss_bytes=1500, seed=1)
    )
    conn = open_connection(db.clients[0], db.servers[0], make_cca("cubic"),
                           mss=1500, flow_id=1)
    conn.start()
    db.sim.profiler = EventLoopProfiler()
    db.network.run(seconds(1.0))
    kinds = set(db.sim.profiler.self_time_s)
    assert "link_tx" in kinds
    assert ACK_KIND in kinds
    assert "packet_deliver" in kinds


def test_render_profile_table():
    profile = {
        "stride": 1, "events": 100, "loop_wall_s": 1.0, "coverage": 0.98,
        "skew": 25.0,
        "kinds": {"link_tx": {"self_s": 0.6, "events": 60},
                  "ack_process": {"self_s": 0.38, "events": 40}},
    }
    text = render_profile(profile, source="x.jsonl")
    assert "link_tx" in text and "ack_process" in text
    assert "98.0%" in text
    assert "x.jsonl" in text
    top1 = render_profile(profile, top=1)
    assert "ack_process" not in top1


def test_diff_profiles_union_and_order():
    a = {"kinds": {"x": {"self_s": 1.0}, "y": {"self_s": 0.1}}}
    b = {"kinds": {"y": {"self_s": 0.2}, "z": {"self_s": 3.0}}}
    rows = diff_profiles(a, b)
    assert rows[0] == ("z", 0.0, 3.0)
    assert set(r[0] for r in rows) == {"x", "y", "z"}


def test_register_profiler_gauges():
    reg = MetricsRegistry()
    prof = EventLoopProfiler()
    register_profiler_gauges(reg, prof)
    snap = reg.snapshot()
    assert "profile_sim_wall_skew" in snap["gauges"]
    assert "profile_coverage" in snap["gauges"]
