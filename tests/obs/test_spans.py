"""Unit tests for the hierarchical span tracer."""

import pytest

from repro.obs.runlog import RunLogWriter, read_run_log, validate_spans
from repro.obs.spans import (
    CAT_CAMPAIGN,
    CAT_RUN,
    NULL_SPAN,
    NULL_SPAN_TRACER,
    SpanTracer,
)


class _FakeClock:
    """Deterministic perf/wall clock for span timing assertions."""

    def __init__(self, start=100.0):
        self.t = start

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _tracer(clock=None):
    clock = clock or _FakeClock()
    return SpanTracer(clock=clock, wall_clock=clock), clock


def test_nested_spans_parent_resolve_and_close():
    tracer, clock = _tracer()
    run = tracer.start("run", CAT_RUN)
    with tracer.span("setup"):
        clock.advance(1.0)
    with tracer.span("transfer"):
        clock.advance(5.0)
    run.close()
    assert tracer.open_spans == 0
    assert [r["name"] for r in tracer.finished] == ["setup", "transfer", "run"]
    setup, transfer, run_rec = tracer.finished
    assert setup["parent_id"] == run_rec["span_id"]
    assert transfer["parent_id"] == run_rec["span_id"]
    assert run_rec["parent_id"] is None
    assert transfer["dur_s"] == pytest.approx(5.0)
    assert run_rec["dur_s"] == pytest.approx(6.0)
    assert validate_spans(tracer.finished) == []


def test_span_ids_unique_and_pid_scoped():
    tracer, _ = _tracer()
    a = tracer.start("a")
    b = tracer.start("b")
    assert a.span_id != b.span_id
    assert a.span_id.startswith(f"{tracer.pid:x}.")


def test_close_is_idempotent():
    tracer, clock = _tracer()
    span = tracer.start("x")
    clock.advance(1.0)
    span.close()
    clock.advance(9.0)
    span.close()
    assert len(tracer.finished) == 1
    assert tracer.finished[0]["dur_s"] == pytest.approx(1.0)


def test_exception_marks_status_error():
    tracer, _ = _tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    assert tracer.finished[0]["labels"]["status"] == "error"


def test_abandoned_child_does_not_wedge_stack():
    tracer, _ = _tracer()
    run = tracer.start("run", CAT_RUN)
    tracer.start("forgotten")  # never closed
    run.close()
    assert tracer.open_spans == 0
    # Only the explicitly closed span is emitted.
    assert [r["name"] for r in tracer.finished] == ["run"]


def test_close_open_merges_labels_innermost_first():
    tracer, _ = _tracer()
    tracer.start("outer")
    tracer.start("inner")
    assert tracer.close_open(status="error") == 2
    assert [r["name"] for r in tracer.finished] == ["inner", "outer"]
    assert all(r["labels"]["status"] == "error" for r in tracer.finished)


def test_detached_span_with_explicit_parent_and_lane():
    tracer, _ = _tracer()
    root = tracer.start("campaign", CAT_CAMPAIGN)
    worker = tracer.start("cell-1", parent=root, detached=True, lane=3)
    # Detached spans never join the stack.
    assert tracer.current is root
    worker.close()
    root.close()
    rec = tracer.finished[0]
    assert rec["parent_id"] == root.span_id
    assert rec["lane"] == 3
    assert "lane" not in tracer.finished[1]  # root has no lane
    assert validate_spans(tracer.finished) == []


def test_sequential_spans_on_one_lane_do_not_overlap():
    clock = _FakeClock()
    tracer = SpanTracer(lane=0, clock=clock, wall_clock=clock)
    for i in range(3):
        with tracer.span(f"run-{i}"):
            clock.advance(2.0)
    spans = sorted(tracer.finished, key=lambda s: s["t_start"])
    for prev, cur in zip(spans, spans[1:]):
        assert prev["lane"] == cur["lane"] == 0
        assert prev["t_start"] + prev["dur_s"] <= cur["t_start"]


def test_instant_emits_zero_duration_marker():
    tracer, _ = _tracer()
    tracer.instant("retry", label="cell-1", attempt=2)
    rec = tracer.finished[0]
    assert rec["dur_s"] == 0.0
    assert rec["labels"] == {"label": "cell-1", "attempt": 2}
    assert tracer.open_spans == 0


def test_annotate_returns_span_and_merges():
    tracer, _ = _tracer()
    span = tracer.start("run").annotate(seed=1)
    span.annotate(events=42)
    span.close()
    assert tracer.finished[0]["labels"] == {"seed": 1, "events": 42}


def test_spans_stream_to_run_log_writer(tmp_path):
    path = tmp_path / "log.jsonl"
    writer = RunLogWriter(path)
    tracer = SpanTracer(writer)
    with tracer.span("setup"):
        pass
    writer.close()
    records = read_run_log(path)
    assert records[0]["record"] == "span"
    assert records[0]["name"] == "setup"
    assert validate_spans(records) == []
    assert tracer.emitted == 1
    assert tracer.finished == []  # streamed, not retained


def test_null_tracer_is_inert():
    assert not NULL_SPAN_TRACER.enabled
    span = NULL_SPAN_TRACER.start("x")
    assert span is NULL_SPAN
    # The full real-tracer signature must be accepted (callers pass
    # lane/parent/detached unconditionally).
    assert NULL_SPAN_TRACER.start("w", parent=span, detached=True,
                                  lane=0, labels={"a": 1}) is NULL_SPAN
    with NULL_SPAN_TRACER.span("y", seed=1) as s:
        s.annotate(a=1)
    NULL_SPAN_TRACER.instant("z")
    assert NULL_SPAN_TRACER.current is None
    assert NULL_SPAN_TRACER.open_spans == 0
    assert NULL_SPAN_TRACER.close_open() == 0
    assert NULL_SPAN_TRACER.finished == []
