"""Unit tests for run-log writing, reading, and schema validation."""

import json

import pytest

from repro.obs.runlog import (
    RUN_LOG_SCHEMA,
    RunLogWriter,
    read_run_log,
    validate_run_log,
)


def _manifest_kwargs(**over):
    base = dict(
        label="cell-1",
        config={"seed": 1},
        config_hash="abc123",
        repro_version="1.0.0",
        seed=1,
        engine="packet",
    )
    base.update(over)
    return base


def _write_minimal(path):
    with RunLogWriter(path, clock=lambda: 42.0) as w:
        w.manifest(**_manifest_kwargs())
        w.progress(sim_time_s=1.0, events=100, events_per_sec=50.0)
        w.metrics({"counters": {"x": 1}, "gauges": {}, "histograms": {}})
        w.summary(status="ok", wall_s=2.0, events=100, events_per_sec=50.0, peak_rss_kb=1000)


def test_write_read_roundtrip(tmp_path):
    path = tmp_path / "run.jsonl"
    _write_minimal(path)
    records = read_run_log(path)
    assert [r["record"] for r in records] == ["manifest", "progress", "metrics", "summary"]
    assert records[0]["schema"] == RUN_LOG_SCHEMA
    assert all(r["t_wall"] == 42.0 for r in records)
    assert validate_run_log(records) == []


def test_writer_refuses_after_close(tmp_path):
    w = RunLogWriter(tmp_path / "run.jsonl")
    w.close()
    with pytest.raises(RuntimeError):
        w.write("progress", sim_time_s=0, events=0, events_per_sec=0)
    w.close()  # idempotent


def test_read_rejects_corrupt_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"record": "manifest"}\nnot json\n')
    with pytest.raises(ValueError):
        read_run_log(path)
    path.write_text("[1, 2]\n")
    with pytest.raises(ValueError):
        read_run_log(path)


def test_validate_empty_and_missing_manifest():
    assert validate_run_log([]) == ["run log is empty"]
    errors = validate_run_log(
        [{"record": "summary", "t_wall": 1.0, "status": "ok", "wall_s": 1.0,
          "events": 1, "events_per_sec": 1.0, "peak_rss_kb": 1}]
    )
    assert any("first record must be the manifest" in e for e in errors)


def test_validate_flags_schema_and_fields(tmp_path):
    path = tmp_path / "run.jsonl"
    _write_minimal(path)
    records = read_run_log(path)
    records[0]["schema"] = "repro-runlog/999"
    errors = validate_run_log(records)
    assert any("schema" in e for e in errors)

    del records[0]["schema"]
    errors = validate_run_log(records)
    assert any("missing fields" in e for e in errors)


def test_validate_requires_summary_and_traceback(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunLogWriter(path) as w:
        w.manifest(**_manifest_kwargs())
    errors = validate_run_log(read_run_log(path))
    assert any("no summary record" in e for e in errors)

    with RunLogWriter(path) as w:
        w.manifest(**_manifest_kwargs())
        w.summary(status="error", wall_s=1.0, events=0, events_per_sec=0.0, peak_rss_kb=0)
    errors = validate_run_log(read_run_log(path))
    assert any("traceback" in e for e in errors)


def test_validate_flags_malformed_metrics():
    records = [
        {"record": "manifest", "t_wall": 1.0, "schema": RUN_LOG_SCHEMA, "label": "x",
         "config": {}, "config_hash": "h", "repro_version": "1", "seed": 1, "engine": "packet"},
        {"record": "metrics", "t_wall": 1.0, "counters": {"x": "NaN-string"},
         "gauges": {}, "histograms": {"h": {"buckets": []}}},
        {"record": "summary", "t_wall": 1.0, "status": "ok", "wall_s": 1.0,
         "events": 1, "events_per_sec": 1.0, "peak_rss_kb": 1},
    ]
    errors = validate_run_log(records)
    assert any("counters must map names to numbers" in e for e in errors)
    assert any("histogram 'h' malformed" in e for e in errors)


def test_validate_flags_unknown_record_type():
    records = [{"record": "mystery", "t_wall": 1.0}]
    errors = validate_run_log(records)
    assert any("unknown record type" in e for e in errors)


def test_records_are_single_json_lines(tmp_path):
    path = tmp_path / "run.jsonl"
    _write_minimal(path)
    for line in path.read_text().splitlines():
        json.loads(line)  # every line independently parseable


def _span_rec(span_id="a.1", **over):
    rec = {"record": "span", "t_wall": 1.0, "span_id": span_id,
           "parent_id": None, "name": "x", "cat": "phase",
           "t_start": 1.0, "dur_s": 0.5, "pid": 1, "labels": {}}
    rec.update(over)
    return rec


def test_validate_spans_flags_broken_trees():
    from repro.obs.runlog import validate_spans

    assert validate_spans([_span_rec()]) == []
    errors = validate_spans([_span_rec(), _span_rec()])
    assert any("duplicate span_id" in e for e in errors)
    errors = validate_spans([_span_rec(dur_s=-1.0)])
    assert any("non-negative" in e for e in errors)
    errors = validate_spans([_span_rec(span_id=None)])
    assert any("bad span_id" in e for e in errors)
    errors = validate_spans([_span_rec(parent_id="ghost.9")])
    assert any("does not resolve" in e for e in errors)
    errors = validate_spans([_span_rec(labels=["not", "a", "dict"])])
    assert any("labels must be an object" in e for e in errors)
    errors = validate_spans([_span_rec(t_start="noon")])
    assert any("t_start must be numeric" in e for e in errors)


def test_validate_run_log_checks_span_and_profile_records(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunLogWriter(path) as w:
        w.manifest(**_manifest_kwargs())
        w.write("span", span_id="b.1", parent_id="missing.0", name="run",
                cat="run", t_start=1.0, dur_s=1.0, pid=2, labels={})
        w.write("profile", kinds={"link_tx": {"self_s": 0.1}},  # no 'events'
                loop_wall_s=0.2, events=10, stride=1)
        w.summary(status="ok", wall_s=1.0, events=10, events_per_sec=10.0,
                  peak_rss_kb=1)
    errors = validate_run_log(read_run_log(path))
    assert any("does not resolve" in e for e in errors)
    assert any("kind 'link_tx' malformed" in e for e in errors)


def test_validate_accepts_bench_records(tmp_path):
    path = tmp_path / "bench.jsonl"
    with RunLogWriter(path) as w:
        w.manifest(**_manifest_kwargs(engine="bench"))
        w.write("bench", name="single_flow_datapath", wall_s=1.5,
                events=1000, events_per_sec=666.7)
        w.summary(status="ok", wall_s=1.5, events=1000,
                  events_per_sec=666.7, peak_rss_kb=1)
    assert validate_run_log(read_run_log(path)) == []
    # A bench record missing its timing fields is flagged.
    records = read_run_log(path)
    del records[1]["wall_s"]
    errors = validate_run_log(records)
    assert any("missing fields" in e for e in errors)


def test_validate_campaign_log(tmp_path):
    from repro.obs.runlog import validate_campaign_log

    path = tmp_path / "campaign.jsonl"
    with RunLogWriter(path) as w:
        w.write("campaign_progress", finished=1, total=2, failed=0,
                retried=0, label="cell-1", eta_s=3.0, events_per_sec=10.0)
        w.write("campaign_retry", label="cell-2", attempt=1, delay_s=0.5,
                error="boom", kind="error")
        w.write("span", span_id="c.1", parent_id=None, name="campaign",
                cat="campaign", t_start=1.0, dur_s=2.0, pid=1, labels={})
    assert validate_campaign_log(read_run_log(path)) == []

    assert validate_campaign_log([]) == ["campaign log is empty"]
    errors = validate_campaign_log(
        [{"record": "summary", "t_wall": 1.0}]
    )
    assert any("does not belong in a campaign log" in e for e in errors)
    errors = validate_campaign_log(
        [{"record": "campaign_progress", "t_wall": 1.0, "finished": 1}]
    )
    assert any("missing fields" in e for e in errors)
