"""Integration tests: telemetry sessions around real experiment runs."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment, run_packet_experiment
from repro.obs.runlog import read_run_log, validate_run_log
from repro.obs.session import TelemetryOptions, TelemetrySession
from repro.units import mbps


def _cfg(**over):
    base = dict(
        cca_pair=("cubic", "cubic"),
        bottleneck_bw_bps=mbps(10),
        duration_s=3.0,
        mss_bytes=1500,
        flows_per_node=1,
        seed=5,
    )
    base.update(over)
    return ExperimentConfig(**base)


def test_session_none_when_options_none():
    assert TelemetrySession.start(_cfg(), None) is None


def test_packet_run_writes_valid_log(tmp_path):
    cfg = _cfg()
    opts = TelemetryOptions(dir=str(tmp_path), trace_dump=True)
    result = run_packet_experiment(cfg, opts)

    log = tmp_path / f"{cfg.label()}.jsonl"
    records = read_run_log(log)
    assert validate_run_log(records) == []
    kinds = [r["record"] for r in records]
    assert kinds[0] == "manifest"
    assert "progress" in kinds  # 3 s simulated at a 1 s cadence
    assert kinds[-1] == "summary"

    manifest = records[0]
    assert manifest["label"] == cfg.label()
    assert manifest["config"] == cfg.to_dict()
    summary = records[-1]
    assert summary["status"] == "ok"
    assert summary["events"] > 0
    assert summary["jain_index"] == pytest.approx(result.jain_index)

    obs = result.extra["obs"]
    assert obs["run_log"] == str(log)
    assert obs["events_per_sec"] > 0
    assert (tmp_path / f"{cfg.label()}.trace.jsonl").exists()


def test_metrics_snapshot_matches_datapath_counters(tmp_path):
    cfg = _cfg(seed=6)
    result = run_packet_experiment(cfg, TelemetryOptions(dir=str(tmp_path)))
    records = read_run_log(tmp_path / f"{cfg.label()}.jsonl")
    metrics = [r for r in records if r["record"] == "metrics"][-1]
    counters = metrics["counters"]
    segs = sum(f.segments_sent for f in result.flows)
    assert counters["tcp_segments_sent_total"] == segs
    assert counters["tcp_retransmits_total"] == result.total_retransmits
    assert (
        counters['queue_dropped_enqueue_total{queue="bottleneck"}']
        + counters['queue_dropped_dequeue_total{queue="bottleneck"}']
        == result.bottleneck_drops
    )
    # The cwnd sampler ran (default 0.1 s cadence over 3 s).
    assert metrics["histograms"]["tcp_cwnd_segments"]["count"] > 0


def test_telemetry_does_not_perturb_outcomes(tmp_path):
    cfg = _cfg(seed=7, aqm="fq_codel", buffer_bdp=0.5)
    plain = run_packet_experiment(cfg)
    observed = run_packet_experiment(cfg, TelemetryOptions(dir=str(tmp_path)))
    assert [f.__dict__ for f in plain.flows] == [f.__dict__ for f in observed.flows]
    assert plain.jain_index == observed.jain_index
    assert plain.bottleneck_drops == observed.bottleneck_drops
    assert plain.total_retransmits == observed.total_retransmits


def test_fluid_run_writes_manifest_and_summary(tmp_path):
    cfg = _cfg(engine="fluid", duration_s=5.0)
    run_experiment(cfg, TelemetryOptions(dir=str(tmp_path)))
    records = read_run_log(tmp_path / f"{cfg.label()}.jsonl")
    assert validate_run_log(records) == []
    assert records[0]["engine"] == "fluid"


def test_failure_writes_error_summary_and_trace_dump(tmp_path):
    cfg = _cfg()
    session = TelemetrySession.start(cfg, TelemetryOptions(dir=str(tmp_path)))
    session.recorder.record("queue_drop", 10, point="tail", flow=1, seq=2)
    try:
        raise RuntimeError("boom")
    except RuntimeError as exc:
        session.record_failure(exc)
    records = read_run_log(session.run_log_path)
    assert validate_run_log(records) == []
    summary = records[-1]
    assert summary["status"] == "error"
    assert "boom" in summary["error"]
    assert "RuntimeError" in summary["traceback"]
    assert summary["trace_events_dumped"] == 1
    assert session.trace_path.exists()


def test_options_roundtrip_picklable():
    import pickle

    opts = TelemetryOptions(dir="t", trace_capacity=16, trace_dump=True, sample_interval_s=None)
    assert TelemetryOptions.from_dict(opts.to_dict()) == opts
    assert pickle.loads(pickle.dumps(opts)) == opts
