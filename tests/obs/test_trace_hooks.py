"""Datapath trace hooks: drop/loss sites fire the attached tracer."""

import numpy as np

from repro.aqm.fifo import FifoQueue
from repro.aqm.red import RedQueue
from repro.net.packet import make_data_packet
from repro.obs.flight import FlightRecorder


def _pkt(seq, size=1000):
    return make_data_packet(1, "a", "b", seq=seq, mss=size, now=0)


def test_fifo_tail_drop_traced():
    q = FifoQueue(2_000)
    q.tracer = FlightRecorder(capacity=16)
    for seq in range(4):  # 2 fit, 2 tail-dropped
        q.enqueue(_pkt(seq), now=seq * 10)
    drops = q.tracer.of_kind("queue_drop")
    assert len(drops) == 2
    assert all(f["point"] == "tail" for _, _, f in drops)
    assert [f["seq"] for _, _, f in drops] == [2, 3]
    assert [t for _, t, _ in drops] == [20, 30]


def test_red_early_drop_traced():
    rng = np.random.default_rng(0)
    q = RedQueue(60_000, rng, min_th=2_000, max_th=10_000, max_p=1.0, avpkt=1000)
    q.tracer = FlightRecorder(capacity=256)
    for seq in range(60):
        q.enqueue(_pkt(seq), now=seq)
    points = {f["point"] for _, _, f in q.tracer.of_kind("queue_drop")}
    assert "early" in points
    traced = len(q.tracer.of_kind("queue_drop"))
    assert traced == q.stats.dropped_enqueue


def test_default_tracer_is_null_and_free():
    q = FifoQueue(1_000)
    assert not q.tracer.enabled
    q.enqueue(_pkt(0, size=2_000), now=0)  # drop with no tracer: no error
    assert q.stats.dropped_enqueue == 1


def test_link_loss_traced():
    from repro.net.link import Link
    from repro.sim.engine import Simulator

    sim = Simulator()
    rng = np.random.default_rng(1)
    got = []
    link = Link(sim, 8e6, 1000, got.append, name="lossy",
                loss_rate=0.5, loss_rng=rng)
    rec = FlightRecorder(capacity=64)
    link.tracer = rec

    def send(seq=0):
        if seq < 20:
            link.transmit(_pkt(seq), lambda: send(seq + 1))

    send()
    sim.run()
    losses = rec.of_kind("link_loss")
    assert len(losses) == link.packets_lost > 0
    assert all(f["link"] == "lossy" for _, _, f in losses)


def test_sender_retx_and_rto_traced():
    # A lossy bottleneck forces retransmissions and recovery episodes.
    from repro.cca.registry import make_cca
    from repro.tcp.connection import open_connection
    from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
    from repro.units import mbps, seconds

    db = build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=mbps(10), buffer_bdp=2.0,
                       mss_bytes=1500, seed=2, trunk_loss_rate=0.05)
    )
    conn = open_connection(db.clients[0], db.servers[0], make_cca("cubic"),
                           mss=1500, flow_id=1)
    rec = FlightRecorder(capacity=4096)
    conn.sender.tracer = rec
    conn.start()
    db.network.run(seconds(5))
    assert conn.sender.retransmits > 0
    assert len(rec.of_kind("retx")) == conn.sender.retransmits
    assert len(rec.of_kind("rto")) == conn.sender.rto_count
    assert len(rec.of_kind("recovery_enter")) == conn.sender.fast_recoveries
