"""Telemetry x faults: invariance, fault manifests, and fault metrics."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_packet_experiment
from repro.obs.runlog import read_run_log, validate_run_log
from repro.obs.session import TelemetryOptions
from repro.units import mbps

FAULTS = [
    dict(kind="link_flap", at_s=1.0, duration_s=0.3),
    dict(kind="loss_burst", at_s=1.5, duration_s=0.7, loss_rate=0.05),
]


def _cfg(**over):
    base = dict(
        cca_pair=("cubic", "cubic"),
        bottleneck_bw_bps=mbps(10),
        duration_s=3.0,
        mss_bytes=1500,
        flows_per_node=1,
        seed=5,
        faults=FAULTS,
    )
    base.update(over)
    return ExperimentConfig(**base)


def test_telemetry_does_not_perturb_faulted_outcomes(tmp_path):
    """The tentpole determinism claim: with faults active, every simulated
    outcome — flow counters, drops, and the fault audit trail itself —
    is bit-identical whether telemetry is on or off."""
    cfg = _cfg(seed=7, aqm="fq_codel", buffer_bdp=0.5)
    plain = run_packet_experiment(cfg)
    observed = run_packet_experiment(cfg, TelemetryOptions(dir=str(tmp_path)))
    assert [f.__dict__ for f in plain.flows] == [f.__dict__ for f in observed.flows]
    assert plain.jain_index == observed.jain_index
    assert plain.bottleneck_drops == observed.bottleneck_drops
    assert plain.total_retransmits == observed.total_retransmits
    assert plain.extra["faults"] == observed.extra["faults"]
    assert plain.extra["faults"]["injected"] == 4  # both faults fired fully


def test_run_log_carries_valid_fault_manifest(tmp_path):
    cfg = _cfg()
    run_packet_experiment(cfg, TelemetryOptions(dir=str(tmp_path)))
    records = read_run_log(tmp_path / f"{cfg.label()}.jsonl")
    assert validate_run_log(records) == []
    (manifest,) = [r for r in records if r["record"] == "fault_manifest"]
    assert [s["kind"] for s in manifest["specs"]] == ["link_flap", "loss_burst"]
    assert [e["action"] for e in manifest["events"]] == [
        "link_down", "link_up", "loss_set", "loss_restore",
    ]


def test_fault_metrics_exported(tmp_path):
    cfg = _cfg()
    result = run_packet_experiment(cfg, TelemetryOptions(dir=str(tmp_path)))
    records = read_run_log(tmp_path / f"{cfg.label()}.jsonl")
    metrics = [r for r in records if r["record"] == "metrics"][-1]
    assert metrics["counters"]["faults_injected_total"] == 4
    assert metrics["gauges"]["fault_events_compiled"] == 4
    assert result.extra["faults"]["injected"] == 4


def test_fault_firings_land_in_flight_recorder(tmp_path):
    cfg = _cfg()
    run_packet_experiment(cfg, TelemetryOptions(dir=str(tmp_path), trace_dump=True))
    import json

    trace = tmp_path / f"{cfg.label()}.trace.jsonl"
    events = [json.loads(line) for line in trace.read_text().splitlines()]
    fault_events = [e for e in events if e["kind"] == "fault"]
    assert [e["action"] for e in fault_events] == [
        "link_down", "link_up", "loss_set", "loss_restore",
    ]


def test_fault_free_run_log_has_no_fault_manifest(tmp_path):
    cfg = _cfg(faults=[])
    run_packet_experiment(cfg, TelemetryOptions(dir=str(tmp_path)))
    records = read_run_log(tmp_path / f"{cfg.label()}.jsonl")
    assert validate_run_log(records) == []
    assert not [r for r in records if r["record"] == "fault_manifest"]


def test_fault_manifest_schema_enforced():
    bad = [
        {"record": "manifest", "t_wall": 1.0, "schema": "repro-runlog/1",
         "label": "x", "config": {}, "config_hash": "h", "repro_version": "v",
         "seed": 0, "engine": "packet"},
        {"record": "fault_manifest", "t_wall": 1.0, "specs": []},  # missing events
        {"record": "summary", "t_wall": 1.0, "status": "ok", "wall_s": 1.0,
         "events": 1, "events_per_sec": 1.0, "peak_rss_kb": 0},
    ]
    problems = validate_run_log(bad)
    assert any("fault_manifest" in p and "events" in p for p in problems)


@pytest.mark.parametrize("engine", ["fluid"])
def test_faults_rejected_off_packet_engine(engine):
    with pytest.raises(ValueError, match="packet engine"):
        _cfg(engine=engine)
