"""Unit tests for campaign-level fairness drift detection."""

import json

import pytest

from repro.obs.drift import (
    DriftTolerance,
    cell_distributions,
    cell_key,
    detect_drift,
    render_drift_report,
    render_fairness_summary,
    result_rows,
    summarize_fairness,
)


def _row(seed=1, engine="fluid", jain=0.9, phi=0.95, rr=100, bw=1e8, fairness=None):
    config = {
        "cca_pair": ["bbrv1", "cubic"],
        "aqm": "fifo",
        "buffer_bdp": 2.0,
        "bottleneck_bw_bps": bw,
        "duration_s": 30.0,
        "mss_bytes": 1500,
        "seed": seed,
        "engine": engine,
        "flows_per_node": 1,
    }
    row = {
        "config": config,
        "jain_index": jain,
        "link_utilization": phi,
        "total_retransmits": rr,
    }
    if fairness is not None:
        row["extra"] = {"fairness": fairness}
    return row


def _store(path, rows):
    with open(path, "w", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
    return path


# --- cell identity -------------------------------------------------------------


def test_cell_key_ignores_seed_engine_and_cadences():
    a = _row(seed=1, engine="fluid")["config"]
    b = _row(seed=9, engine="fluid_batched")["config"]
    b["fairness_interval_s"] = 1.0
    b["sample_interval_s"] = 0.1
    assert cell_key(a) == cell_key(b)


def test_cell_key_distinguishes_science_knobs():
    a = _row(bw=1e8)["config"]
    b = _row(bw=1e9)["config"]
    assert cell_key(a) != cell_key(b)


def test_cell_distributions_pool_repetitions(tmp_path):
    store = _store(tmp_path / "r.jsonl", [
        _row(seed=1, jain=0.8), _row(seed=2, jain=1.0), _row(bw=1e9),
    ])
    cells = cell_distributions(store)
    assert len(cells) == 2
    pooled = cells[cell_key(_row()["config"])]
    assert sorted(pooled["jain"]) == [0.8, 1.0]


def test_result_rows_path_forms(tmp_path):
    rows = [_row(seed=1), _row(seed=2)]
    jsonl = _store(tmp_path / "store.jsonl", rows)
    assert len(list(result_rows(jsonl))) == 2
    single = tmp_path / "one.json"
    single.write_text(json.dumps(rows[0]), encoding="utf-8")
    assert len(list(result_rows(single))) == 1
    listfile = tmp_path / "many.json"
    listfile.write_text(json.dumps(rows), encoding="utf-8")
    assert len(list(result_rows(listfile))) == 2
    # A directory pools every result file under it.
    assert len(list(result_rows(tmp_path))) == 5
    with pytest.raises(ValueError):
        list(result_rows(tmp_path / "missing.jsonl"))
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(ValueError):
        list(result_rows(empty))


def test_corrupt_store_line_raises(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"config": {}}\nnot json\n', encoding="utf-8")
    with pytest.raises(ValueError, match="corrupt"):
        list(result_rows(path))


# --- drift detection -----------------------------------------------------------


def test_store_vs_itself_is_exactly_zero_drift(tmp_path):
    store = _store(tmp_path / "r.jsonl", [
        _row(seed=s, jain=0.81 + s / 100, rr=50 * s) for s in range(1, 6)
    ])
    report = detect_drift(store, store)
    assert report.clean
    assert report.checked == 1
    assert report.drifted == []
    assert report.missing_in_a == report.missing_in_b == []
    assert "no fairness drift" in render_drift_report(report)


def test_injected_jain_regression_is_flagged(tmp_path):
    a = _store(tmp_path / "a.jsonl", [_row(seed=s, jain=0.9) for s in (1, 2)])
    b = _store(tmp_path / "b.jsonl", [_row(seed=s, jain=0.7) for s in (1, 2)])
    report = detect_drift(a, b)
    assert not report.clean
    [d] = report.drifted
    assert d.metric == "jain"
    assert d.delta == pytest.approx(0.2)
    assert d.tolerance == 0.05
    text = render_drift_report(report)
    assert "DRIFT jain" in text and "bbrv1-vs-cubic" in text


def test_small_shift_within_tolerance_is_clean(tmp_path):
    a = _store(tmp_path / "a.jsonl", [_row(jain=0.90, phi=0.95)])
    b = _store(tmp_path / "b.jsonl", [_row(jain=0.93, phi=0.92)])
    assert detect_drift(a, b).clean


def test_rr_hybrid_tolerance(tmp_path):
    # Near-zero baseline: a +8 absolute move sits under the 10.0 floor.
    a = _store(tmp_path / "a.jsonl", [_row(rr=2)])
    b = _store(tmp_path / "b.jsonl", [_row(rr=10)])
    assert detect_drift(a, b).clean
    # Large baseline: 25% relative governs — 1000 -> 1200 is fine,
    # 1000 -> 1400 drifts.
    a2 = _store(tmp_path / "a2.jsonl", [_row(rr=1000)])
    ok = _store(tmp_path / "ok.jsonl", [_row(rr=1200)])
    bad = _store(tmp_path / "bad.jsonl", [_row(rr=1400)])
    assert detect_drift(a2, ok).clean
    report = detect_drift(a2, bad)
    [d] = report.drifted
    assert d.metric == "rr"
    assert d.tolerance == pytest.approx(250.0)


def test_custom_tolerance(tmp_path):
    a = _store(tmp_path / "a.jsonl", [_row(jain=0.90)])
    b = _store(tmp_path / "b.jsonl", [_row(jain=0.80)])
    assert not detect_drift(a, b).clean
    assert detect_drift(a, b, tolerance=DriftTolerance(jain=0.2)).clean


def test_missing_cells_warn_but_do_not_drift(tmp_path):
    a = _store(tmp_path / "a.jsonl", [_row(bw=1e8), _row(bw=1e9)])
    b = _store(tmp_path / "b.jsonl", [_row(bw=1e8)])
    report = detect_drift(a, b)
    assert report.clean
    assert report.checked == 1
    assert len(report.missing_in_b) == 1
    assert "only-in-a: 1" in render_drift_report(report)


def test_row_without_config_raises(tmp_path):
    path = tmp_path / "r.jsonl"
    path.write_text('{"jain_index": 1.0}\n', encoding="utf-8")
    with pytest.raises(ValueError, match="config"):
        cell_distributions(path)


# --- fairness summaries --------------------------------------------------------


def test_summarize_fairness_aggregates_dynamics(tmp_path):
    dyn = {
        "convergence_time_s": 4.0,
        "oscillations": 2,
        "sync_loss_t_s": [3.5],
    }
    never = {"convergence_time_s": None, "oscillations": 0, "sync_loss_t_s": []}
    store = _store(tmp_path / "r.jsonl", [
        _row(seed=1, jain=0.8, fairness=dyn),
        _row(seed=2, jain=1.0, fairness=never),
        _row(seed=3, jain=0.9),  # unsampled run still pools scalars
    ])
    [row] = summarize_fairness(store)
    assert row["runs"] == 3
    assert row["sampled"] == 2
    assert row["converged"] == 1
    assert row["convergence_time_s"] == pytest.approx(4.0)
    assert row["oscillations"] == 2
    assert row["sync_losses"] == 1
    assert row["jain_mean"] == pytest.approx(0.9)
    text = render_fairness_summary([row])
    assert "bbrv1-vs-cubic" in text and "1 cells" in text
