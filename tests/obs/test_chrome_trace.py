"""Unit tests for the Chrome Trace Format exporter."""

import json

from repro.obs.chrome_trace import (
    TRACE_PID,
    build_chrome_trace,
    spans_to_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.runlog import RunLogWriter
from repro.obs.spans import CAT_CAMPAIGN, CAT_RUN, CAT_WORKER


def _span(span_id, name, cat="phase", t_start=100.0, dur_s=1.0, parent=None,
          pid=10, lane=None, labels=None):
    rec = {"record": "span", "t_wall": t_start, "span_id": span_id,
           "parent_id": parent, "name": name, "cat": cat,
           "t_start": t_start, "dur_s": dur_s, "pid": pid,
           "labels": labels or {}}
    if lane is not None:
        rec["lane"] = lane
    return rec


def test_spans_become_complete_events_with_relative_ts():
    events = spans_to_events([
        _span("a.1", "run", CAT_RUN, t_start=100.0, dur_s=2.0),
        _span("a.2", "setup", parent="a.1", t_start=100.5, dur_s=0.5),
    ])
    xs = [e for e in events if e["ph"] == "X"]
    assert len(xs) == 2
    run = next(e for e in xs if e["name"] == "run")
    setup = next(e for e in xs if e["name"] == "setup")
    assert run["ts"] == 0.0  # relative to the earliest span
    assert setup["ts"] == 500_000.0  # 0.5 s in microseconds
    assert run["dur"] == 2_000_000.0
    assert setup["args"]["parent_id"] == "a.1"
    assert all(e["pid"] == TRACE_PID for e in xs)


def test_zero_duration_span_is_instant_event():
    events = spans_to_events([_span("a.1", "retry", CAT_WORKER, dur_s=0.0)])
    inst = next(e for e in events if e["name"] == "retry")
    assert inst["ph"] == "i"
    assert inst["s"] == "t"
    assert "dur" not in inst


def test_lane_assignment_worker_pid_and_campaign():
    spans = [
        # Campaign root emitted LAST in its file (children close first) —
        # the exporter must still label that pid lane "campaign".
        _span("c.2", "store", t_start=101.0, pid=1),
        _span("c.1", "campaign", CAT_CAMPAIGN, t_start=100.0, dur_s=5.0, pid=1),
        _span("w.1", "cell-a", CAT_WORKER, t_start=100.1, pid=1, lane=0),
        _span("w.2", "cell-b", CAT_WORKER, t_start=100.2, pid=1, lane=1),
        _span("r.1", "run", CAT_RUN, t_start=100.3, pid=77),
    ]
    events = spans_to_events(spans)
    names = {e["tid"]: e["args"]["name"]
             for e in events if e["ph"] == "M" and e["name"] == "thread_name"}
    assert "campaign" in names.values()
    assert "worker 0" in names.values()
    assert "worker 1" in names.values()
    assert any(n.startswith("runs pid=") for n in names.values())
    # Spans with an explicit lane land on the worker lanes, not the pid lane.
    cell_a = next(e for e in events if e.get("name") == "cell-a")
    assert names[cell_a["tid"]] == "worker 0"


def test_profile_renders_as_sequential_engine_slices():
    spans = [_span("a.1", "transfer", t_start=200.0, dur_s=1.0, pid=5)]
    profiles = [{
        "record": "profile", "kinds": {
            "link_tx": {"self_s": 0.4, "events": 100},
            "ack_process": {"self_s": 0.6, "events": 50},
        },
        "_pid": 5, "_label": "cell", "_t_anchor": 200.0,
    }]
    events = spans_to_events(spans, profiles)
    slices = [e for e in events if e.get("cat") == "engine-phase"]
    assert [s["name"] for s in slices] == ["ack_process", "link_tx"]  # by self_s
    assert slices[0]["ts"] == 0.0
    assert slices[1]["ts"] == slices[0]["dur"]  # laid end to end


def test_build_and_write_from_run_logs(tmp_path):
    log = tmp_path / "cell.jsonl"
    with RunLogWriter(log) as w:
        w.manifest(label="cell", config={}, config_hash="h",
                   repro_version="1", seed=1, engine="packet")
        w.write("span", span_id="x.2", parent_id="x.1", name="transfer",
                cat="phase", t_start=50.0, dur_s=1.5, pid=9, labels={})
        w.write("span", span_id="x.1", parent_id=None, name="run",
                cat="run", t_start=50.0, dur_s=2.0, pid=9,
                labels={"seed": 1})
        w.write("profile", kinds={"link_tx": {"self_s": 0.1, "events": 5}},
                loop_wall_s=0.1, events=5, stride=1)
        w.summary(status="ok", wall_s=2.0, events=5, events_per_sec=2.5,
                  peak_rss_kb=1)
    out = tmp_path / "trace.json"
    doc = write_chrome_trace([log], out)
    assert validate_chrome_trace(doc) == []
    loaded = json.loads(out.read_text())
    assert loaded["otherData"]["spans"] == 2
    assert loaded["otherData"]["profiles"] == 1
    assert loaded["otherData"]["sources"] == [str(log)]
    names = [e["name"] for e in loaded["traceEvents"]]
    assert "run" in names and "transfer" in names and "link_tx" in names


def test_build_chrome_trace_empty_inputs():
    doc = build_chrome_trace([])
    assert doc["traceEvents"] == []
    assert validate_chrome_trace(doc) == []


def test_validate_catches_malformed_events():
    assert validate_chrome_trace({"traceEvents": "nope"}) == [
        "traceEvents must be a list"
    ]
    errors = validate_chrome_trace({"traceEvents": [
        {"ph": "Q", "pid": 1},
        {"ph": "X", "pid": 1, "ts": -5.0, "dur": 1.0, "name": "x"},
        {"ph": "X", "pid": 1, "ts": 0.0, "name": "x"},  # missing dur
        {"ph": "M", "pid": 1, "name": "mystery_meta"},
    ]})
    assert any("unsupported ph" in e for e in errors)
    assert any("ts must be" in e for e in errors)
    assert any("needs a non-negative dur" in e for e in errors)
    assert any("unknown metadata" in e for e in errors)
