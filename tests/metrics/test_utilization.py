"""Unit tests for link utilization (paper eq. 3)."""

import pytest

from repro.metrics.utilization import link_utilization


def test_full_utilization():
    assert link_utilization([60e6, 40e6], 100e6) == pytest.approx(1.0)


def test_partial():
    assert link_utilization([25e6], 100e6) == pytest.approx(0.25)


def test_zero():
    assert link_utilization([], 100e6) == 0.0
    assert link_utilization([0.0, 0.0], 100e6) == 0.0


def test_invalid_inputs():
    with pytest.raises(ValueError):
        link_utilization([1.0], 0)
    with pytest.raises(ValueError):
        link_utilization([-1.0], 100e6)
