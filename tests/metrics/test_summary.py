"""Unit tests for result records (round-trips, derived properties)."""

from repro.metrics.summary import ExperimentResult, FlowStats, SenderStats


def _result():
    return ExperimentResult(
        config={"cca_pair": ["bbrv1", "cubic"], "aqm": "fifo", "buffer_bdp": 2.0,
                "bottleneck_bw_bps": 1e8, "seed": 1},
        senders=[
            SenderStats("client1", "bbrv1", 60e6, 100, 1),
            SenderStats("client2", "cubic", 40e6, 20, 1),
        ],
        flows=[
            FlowStats(1, "client1", "bbrv1", 60e6, 10**9, 1000, 100, 1, 2),
            FlowStats(2, "client2", "cubic", 40e6, 10**9, 900, 20, 0, 3),
        ],
        jain_index=0.96,
        link_utilization=1.0,
        total_retransmits=120,
        total_throughput_bps=100e6,
        bottleneck_drops=120,
        duration_s=30.0,
        engine="packet",
    )


def test_roundtrip_through_dict():
    r = _result()
    r2 = ExperimentResult.from_dict(r.to_dict())
    assert r2.to_dict() == r.to_dict()
    assert r2.senders[0].cca == "bbrv1"
    assert r2.flows[1].retransmits == 20


def test_sender_throughputs():
    r = _result()
    assert r.sender_throughputs == [60e6, 40e6]


def test_throughput_of_cca():
    r = _result()
    assert r.throughput_of("bbrv1") == 60e6
    assert r.throughput_of("cubic") == 40e6
    assert r.throughput_of("reno") == 0.0


def test_from_dict_tolerates_missing_optionals():
    d = _result().to_dict()
    del d["events_processed"]
    del d["wallclock_s"]
    del d["extra"]
    r = ExperimentResult.from_dict(d)
    assert r.events_processed == 0
    assert r.extra == {}
