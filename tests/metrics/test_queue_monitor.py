"""Unit tests for router queue telemetry."""

import math

import pytest

from repro.aqm.fifo import FifoQueue
from repro.metrics.queue_monitor import QueueMonitor, QueueTrace
from repro.net.packet import make_data_packet
from repro.sim.engine import Simulator
from repro.units import seconds


def _pkt(seq, size=1000):
    return make_data_packet(1, "a", "b", seq=seq, mss=size, now=0)


def test_monitor_samples_backlog_and_drops():
    sim = Simulator()
    q = FifoQueue(5_000)
    mon = QueueMonitor(sim, q, seconds(1))
    mon.start()

    def fill():
        for seq in range(10):  # 5 accepted, 5 dropped
            q.enqueue(_pkt(seq), sim.now)

    def drain():
        while q.dequeue(sim.now):
            pass

    sim.schedule(seconds(0.5), fill)
    sim.schedule(seconds(1.5), drain)
    sim.run(seconds(3))

    t = mon.trace
    assert len(t) == 3
    assert t.samples[0].backlog_packets == 5
    assert t.samples[0].drops_total == 5
    assert t.samples[1].backlog_packets == 0
    assert t.max_backlog_bytes == 5_000
    assert t.drop_intervals() == [5, 0, 0]


def test_occupancy():
    trace = QueueTrace()
    sim = Simulator()
    q = FifoQueue(10_000)
    mon = QueueMonitor(sim, q, seconds(1))
    mon.start()
    q.enqueue(_pkt(0, size=5000), 0)
    sim.run(seconds(2))
    assert mon.trace.occupancy(10_000) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        mon.trace.occupancy(0)


def test_red_average_captured():
    import numpy as np

    from repro.aqm.red import RedQueue

    sim = Simulator()
    q = RedQueue(100_000, np.random.default_rng(0), avpkt=1000)
    mon = QueueMonitor(sim, q, seconds(1))
    mon.start()
    for seq in range(5):
        q.enqueue(_pkt(seq), 0)
    sim.run(seconds(1))
    assert not math.isnan(mon.trace.samples[0].red_avg_bytes)


def test_fifo_average_is_nan():
    sim = Simulator()
    q = FifoQueue(10_000)
    mon = QueueMonitor(sim, q, seconds(1))
    mon.start()
    sim.run(seconds(1))
    assert math.isnan(mon.trace.samples[0].red_avg_bytes)


def test_to_dict_roundtrip_shape():
    sim = Simulator()
    q = FifoQueue(10_000)
    mon = QueueMonitor(sim, q, seconds(1))
    mon.start()
    sim.run(seconds(3))
    d = mon.trace.to_dict()
    assert set(d) == {"time_ns", "backlog_bytes", "backlog_packets",
                      "drops_total", "ecn_marks", "red_avg_bytes"}
    assert all(len(v) == 3 for v in d.values())


def test_validation():
    sim = Simulator()
    q = FifoQueue(10_000)
    with pytest.raises(ValueError):
        QueueMonitor(sim, q, 0)
    mon = QueueMonitor(sim, q, seconds(1))
    mon.start()
    with pytest.raises(RuntimeError):
        mon.start()


def test_ecn_marks_sampled():
    import numpy as np

    from repro.aqm.red import RedQueue

    sim = Simulator()
    q = RedQueue(60_000, np.random.default_rng(0), min_th=1_000, max_th=10_000,
                 max_p=1.0, avpkt=1000, ecn_mode=True)
    mon = QueueMonitor(sim, q, seconds(1))
    mon.start()

    def fill():
        for seq in range(50):
            pkt = _pkt(seq)
            pkt.ecn_ect = True
            q.enqueue(pkt, sim.now)

    sim.schedule(seconds(0.5), fill)
    sim.run(seconds(1))
    assert mon.trace.samples[0].ecn_marks == q.stats.ecn_marked > 0


def test_empty_trace_summaries():
    t = QueueTrace()
    assert len(t) == 0
    assert t.max_backlog_bytes == 0
    assert t.mean_backlog_bytes == 0.0
    assert t.drop_intervals() == []
    assert all(v == [] for v in t.to_dict().values())


def test_monitor_uses_dequeue_drops_too():
    # drops_total covers AQM (dequeue-time) drops, not just tail drops.
    from repro.aqm.codel import CoDelQueue

    sim = Simulator()
    q = CoDelQueue(1_000_000, target_ns=1, interval_ns=2)
    mon = QueueMonitor(sim, q, seconds(1))
    mon.start()
    for seq in range(40):
        q.enqueue(_pkt(seq), 0)

    def drain():
        while q.dequeue(sim.now):
            pass

    # First dequeue arms CoDel's first_above_time; draining the rest after
    # the (tiny) interval has elapsed puts it in the dropping state.
    sim.schedule(seconds(0.5), lambda: q.dequeue(sim.now))
    sim.schedule(seconds(0.6), drain)
    sim.run(seconds(1))
    assert q.stats.dropped_dequeue > 0
    assert mon.trace.samples[0].drops_total == q.stats.dropped_total


def test_runner_integration():
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_packet_experiment
    from repro.units import mbps

    r = run_packet_experiment(
        ExperimentConfig(
            cca_pair=("cubic", "cubic"), bottleneck_bw_bps=mbps(10),
            duration_s=6.0, mss_bytes=1500, flows_per_node=1, seed=3,
            queue_monitor_interval_s=1.0,
        )
    )
    trace = r.extra["queue_trace"]
    assert len(trace["backlog_bytes"]) == 6
    assert 0.0 <= r.extra["queue_occupancy"] <= 1.0
