"""Unit tests for the throughput sampler."""

import pytest

from repro.metrics.timeseries import ThroughputSampler
from repro.sim.engine import Simulator
from repro.units import seconds


def test_samples_rate_per_interval():
    sim = Simulator()
    counter = {"bytes": 0}
    sampler = ThroughputSampler(sim, seconds(1))
    sampler.track("flow", lambda: counter["bytes"])
    sampler.start()
    # 1000 bytes during second 1, 3000 during second 2.
    sim.schedule(seconds(0.5), lambda: counter.__setitem__("bytes", 1000))
    sim.schedule(seconds(1.5), lambda: counter.__setitem__("bytes", 4000))
    sim.run(seconds(2))
    assert sampler.series["flow"] == [pytest.approx(8000.0), pytest.approx(24000.0)]
    assert sampler.timestamps_ns == [seconds(1), seconds(2)]


def test_mean_with_warmup_skip():
    sim = Simulator()
    counter = {"bytes": 0}
    sampler = ThroughputSampler(sim, seconds(1))
    sampler.track("f", lambda: counter["bytes"])
    sampler.start()

    def add(n):
        counter["bytes"] += n

    for i, amount in enumerate([100, 1000, 1000, 1000]):
        sim.schedule(seconds(i + 0.5), add, amount)
    sim.run(seconds(4))
    assert sampler.mean_bps("f") == pytest.approx((100 + 3000) * 8 / 4)
    assert sampler.mean_bps("f", skip_intervals=1) == pytest.approx(8000.0)


def test_mean_empty_series():
    sim = Simulator()
    sampler = ThroughputSampler(sim, seconds(1))
    sampler.track("f", lambda: 0)
    assert sampler.mean_bps("f") == 0.0


def test_duplicate_name_rejected():
    sim = Simulator()
    sampler = ThroughputSampler(sim, seconds(1))
    sampler.track("f", lambda: 0)
    with pytest.raises(ValueError):
        sampler.track("f", lambda: 0)


def test_double_start_rejected():
    sim = Simulator()
    sampler = ThroughputSampler(sim, seconds(1))
    sampler.start()
    with pytest.raises(RuntimeError):
        sampler.start()


def test_invalid_interval():
    with pytest.raises(ValueError):
        ThroughputSampler(Simulator(), 0)


def test_stop_flushes_final_partial_interval():
    sim = Simulator()
    counter = {"bytes": 0}
    sampler = ThroughputSampler(sim, seconds(1))
    sampler.track("flow", lambda: counter["bytes"])
    sampler.start()
    # 1000 bytes during second 1, then 500 bytes in the trailing 0.5 s.
    sim.schedule(seconds(0.5), lambda: counter.__setitem__("bytes", 1000))
    sim.schedule(seconds(1.25), lambda: counter.__setitem__("bytes", 1500))
    sim.run(seconds(1.5))
    sampler.stop()
    # The flushed sample's rate is normalized to the 0.5 s it covers:
    # 500 bytes * 8 / 0.5 s = 8000 bps, same rate as the full interval.
    assert sampler.series["flow"] == [pytest.approx(8000.0), pytest.approx(8000.0)]
    assert sampler.timestamps_ns == [seconds(1), seconds(1.5)]


def test_stop_is_idempotent_and_skips_aligned_runs():
    sim = Simulator()
    counter = {"bytes": 0}
    sampler = ThroughputSampler(sim, seconds(1))
    sampler.track("flow", lambda: counter["bytes"])
    sampler.start()
    sim.schedule(seconds(0.5), lambda: counter.__setitem__("bytes", 1000))
    sim.run(seconds(2))
    sampler.stop()
    sampler.stop()  # second stop must be a no-op
    # Run ended exactly on a tick: no extra zero-span sample appears.
    assert sampler.series["flow"] == [pytest.approx(8000.0), pytest.approx(0.0)]
    assert sampler.timestamps_ns == [seconds(1), seconds(2)]


def test_on_sample_callback_sees_every_interval():
    sim = Simulator()
    counter = {"bytes": 0}
    sampler = ThroughputSampler(sim, seconds(1))
    sampler.track("flow", lambda: counter["bytes"])
    seen = []
    sampler.on_sample = lambda now_ns, rates: seen.append((now_ns, dict(rates)))
    sampler.start()
    sim.schedule(seconds(0.5), lambda: counter.__setitem__("bytes", 1000))
    sim.run(seconds(1.5))
    sampler.stop()  # flush fires the callback too
    assert [t for t, _ in seen] == [seconds(1), seconds(1.5)]
    assert seen[0][1]["flow"] == pytest.approx(8000.0)
    assert seen[1][1]["flow"] == pytest.approx(0.0)
