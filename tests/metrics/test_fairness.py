"""Unit tests for Jain's fairness index (paper eq. 2)."""

import pytest

from repro.metrics.fairness import jain_index


def test_equal_shares_is_one():
    assert jain_index([10.0, 10.0]) == pytest.approx(1.0)
    assert jain_index([3.0] * 7) == pytest.approx(1.0)


def test_total_starvation_is_half():
    assert jain_index([10.0, 0.0]) == pytest.approx(0.5)


def test_paper_n2_form():
    """Matches the explicit n=2 formula (S1+S2)^2 / (2(S1^2+S2^2))."""
    s1, s2 = 7.3, 2.1
    expected = (s1 + s2) ** 2 / (2 * (s1**2 + s2**2))
    assert jain_index([s1, s2]) == pytest.approx(expected)


def test_lower_bound_one_over_n():
    n = 5
    values = [1.0] + [0.0] * (n - 1)
    assert jain_index(values) == pytest.approx(1.0 / n)


def test_scale_invariance():
    assert jain_index([1, 2, 3]) == pytest.approx(jain_index([10, 20, 30]))


def test_empty_and_zero_inputs():
    assert jain_index([]) == 1.0
    assert jain_index([0.0, 0.0]) == 1.0


def test_negative_rejected():
    with pytest.raises(ValueError):
        jain_index([1.0, -0.1])
