"""Unit tests for the CCA registry."""

import pytest

from repro.cca import BbrV1, BbrV2, Cubic, HTcp, Reno, make_cca
from repro.cca.registry import canonical_cca_name


def test_factory_builds_each():
    assert isinstance(make_cca("reno"), Reno)
    assert isinstance(make_cca("cubic"), Cubic)
    assert isinstance(make_cca("htcp"), HTcp)
    assert isinstance(make_cca("bbrv1"), BbrV1)
    assert isinstance(make_cca("bbrv2"), BbrV2)


@pytest.mark.parametrize("alias,canon", [
    ("bbr", "bbrv1"), ("BBR1", "bbrv1"), ("bbrv1", "bbrv1"),
    ("bbr2", "bbrv2"), ("BBRv2", "bbrv2"),
    ("CUBIC", "cubic"), ("reno", "reno"), ("htcp", "htcp"),
])
def test_aliases(alias, canon):
    assert canonical_cca_name(alias) == canon


def test_unknown_rejected():
    with pytest.raises(ValueError):
        make_cca("vegas")
    with pytest.raises(ValueError):
        canonical_cca_name("westwood")


def test_instances_are_fresh():
    a, b = make_cca("cubic"), make_cca("cubic")
    assert a is not b
    a.cwnd = 999
    assert b.cwnd != 999
