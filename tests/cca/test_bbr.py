"""Unit tests for BBRv1/BBRv2 state machines and filters."""

import numpy as np
import pytest

from repro.cca.base import AckEvent
from repro.cca.bbr_common import WindowedMax, WindowedMin
from repro.cca.bbrv1 import BBR_HIGH_GAIN, BbrV1, DRAIN, PROBE_BW, PROBE_RTT, STARTUP
from repro.cca.bbrv2 import BbrV2
from repro.units import milliseconds, seconds


def ack(now_s, *, acked=1, lost=0, rtt_ms=50.0, rate=None, inflight=10,
        round_start=False, round_count=1, app_limited=False):
    rtt = milliseconds(rtt_ms)
    return AckEvent(
        now_ns=seconds(now_s),
        newly_acked=acked,
        newly_sacked=0,
        newly_lost=lost,
        rtt_ns=rtt,
        min_rtt_ns=rtt,
        srtt_ns=rtt,
        delivery_rate_pps=rate,
        is_app_limited=app_limited,
        inflight=inflight,
        round_start=round_start,
        round_count=round_count,
        in_recovery=False,
        total_delivered=0,
    )


# --- windowed filters --------------------------------------------------------------


def test_windowed_max_basic():
    f = WindowedMax(3)
    f.update(10.0, 1)
    f.update(5.0, 2)
    assert f.get() == 10.0
    f.update(3.0, 4)  # tick 1 expires (4 - 3 >= 1)
    assert f.get(4) == 5.0
    f.update(1.0, 7)
    assert f.get(7) == 1.0


def test_windowed_max_monotonic_replacement():
    f = WindowedMax(10)
    f.update(5.0, 1)
    f.update(9.0, 2)  # dominates earlier sample
    assert f.get() == 9.0


def test_windowed_min_basic():
    f = WindowedMin(100)
    f.update(50, 10)
    f.update(70, 20)
    assert f.get() == 50
    f.update(60, 150)  # the 50 at t=10 expired
    assert f.get(150) == 60


def test_windowed_min_keeps_last_sample():
    f = WindowedMin(100)
    f.update(50, 10)
    assert f.get(10_000) == 50  # never empty


def test_filter_validation():
    with pytest.raises(ValueError):
        WindowedMax(0)
    with pytest.raises(ValueError):
        WindowedMin(0)


# --- BBRv1 ---------------------------------------------------------------------------


def _drive_to_probe_bw(bbr, *, rate=1000.0, rtt_ms=50.0):
    """Feed a plateaued bandwidth so STARTUP exits, then drain."""
    t, rc = 0.1, 1
    for i in range(12):
        rc += 1
        bbr.on_ack(ack(t, rate=rate, rtt_ms=rtt_ms, round_start=True, round_count=rc,
                       inflight=int(rate * rtt_ms / 1000)))
        t += rtt_ms / 1000
    # In DRAIN (or past): deliver low-inflight acks to reach PROBE_BW.
    for i in range(5):
        bbr.on_ack(ack(t, rate=rate, rtt_ms=rtt_ms, round_count=rc, inflight=1))
        t += rtt_ms / 1000
    return t, rc


def test_bbrv1_startup_exits_on_plateau():
    bbr = BbrV1()
    assert bbr.state == STARTUP
    t, _ = _drive_to_probe_bw(bbr)
    assert bbr.state == PROBE_BW


def test_bbrv1_startup_gains():
    bbr = BbrV1()
    bbr.on_ack(ack(0.1, rate=1000.0, rtt_ms=50))
    assert bbr.pacing_gain == BBR_HIGH_GAIN
    assert bbr.pacing_rate_pps == pytest.approx(BBR_HIGH_GAIN * 1000.0)


def test_bbrv1_cwnd_capped_at_2bdp_in_probe_bw():
    bbr = BbrV1()
    t, rc = _drive_to_probe_bw(bbr, rate=1000.0, rtt_ms=50.0)
    # BDP = 1000 pps * 50 ms = 50 segments; cap = 2 * 50.  Stay under the
    # 10 s PROBE_RTT horizon.
    for _ in range(100):
        t += 0.05
        bbr.on_ack(ack(t, rate=1000.0, rtt_ms=50, acked=10, inflight=50))
    assert bbr.cwnd == pytest.approx(100.0, rel=0.3)


def test_bbrv1_ignores_loss_events():
    bbr = BbrV1()
    t, _ = _drive_to_probe_bw(bbr)
    cwnd = bbr.cwnd
    bbr.on_congestion_event(seconds(t))
    bbr.on_ecn(seconds(t))
    assert bbr.cwnd == cwnd


def test_bbrv1_rto_collapses_cwnd():
    bbr = BbrV1()
    _drive_to_probe_bw(bbr)
    bbr.on_rto(seconds(100))
    assert bbr.cwnd == 4.0


def test_bbrv1_app_limited_samples_do_not_raise_estimate():
    bbr = BbrV1()
    bbr.on_ack(ack(0.1, rate=1000.0, round_count=1))
    bbr.on_ack(ack(0.2, rate=100.0, round_count=2, app_limited=True))
    assert bbr.btlbw_pps == 1000.0
    # But an app-limited sample ABOVE the estimate counts.
    bbr.on_ack(ack(0.3, rate=2000.0, round_count=3, app_limited=True))
    assert bbr.btlbw_pps == 2000.0


def test_bbrv1_probe_rtt_after_10s():
    bbr = BbrV1()
    t, rc = _drive_to_probe_bw(bbr, rtt_ms=50.0)
    # 11 seconds with RTT never dipping below the initial estimate.
    for i in range(230):
        t += 0.05
        bbr.on_ack(ack(t, rate=1000.0, rtt_ms=60.0, inflight=50))
    assert bbr.state == PROBE_RTT
    assert bbr.cwnd == 4.0
    # Inflight falls to the floor; 200 ms later it exits.
    bbr.on_ack(ack(t + 0.01, rate=1000.0, rtt_ms=50.0, inflight=3))
    bbr.on_ack(ack(t + 0.5, rate=1000.0, rtt_ms=50.0, inflight=3))
    assert bbr.state == PROBE_BW


def test_bbrv1_pacing_cycle_advances():
    rng = np.random.default_rng(5)
    bbr = BbrV1(rng)
    t, rc = _drive_to_probe_bw(bbr)
    seen_gains = set()
    for i in range(40):
        t += 0.05
        bbr.on_ack(ack(t, rate=1000.0, rtt_ms=50.0, inflight=50))
        seen_gains.add(round(bbr.pacing_gain, 3))
    assert 1.25 in seen_gains
    assert 0.75 in seen_gains
    assert 1.0 in seen_gains


# --- BBRv2 ---------------------------------------------------------------------------


def _drive_v2_to_probe(bbr, *, rate=1000.0, rtt_ms=50.0):
    t, rc = 0.1, 1
    for i in range(12):
        rc += 1
        bbr.on_ack(ack(t, rate=rate, rtt_ms=rtt_ms, round_start=True, round_count=rc,
                       inflight=int(rate * rtt_ms / 1000)))
        t += rtt_ms / 1000
    for i in range(5):
        bbr.on_ack(ack(t, rate=rate, rtt_ms=rtt_ms, round_count=rc, inflight=1))
        t += rtt_ms / 1000
    return t, rc


def test_bbrv2_reaches_probe_bw_cycle():
    bbr = BbrV2()
    t, _ = _drive_v2_to_probe(bbr)
    assert bbr.state.startswith("PROBE_")


def test_bbrv2_high_loss_round_reduces_inflight_hi():
    bbr = BbrV2()
    t, rc = _drive_v2_to_probe(bbr)
    assert bbr.inflight_hi == float("inf")
    # A round with 10% loss (>= 2% threshold).
    rc += 1
    bbr.on_ack(ack(t, acked=90, lost=10, rate=1000.0, inflight=60, round_count=rc))
    rc += 1
    bbr.on_ack(ack(t + 0.05, acked=1, rate=1000.0, inflight=60,
                   round_start=True, round_count=rc))
    assert bbr.inflight_hi != float("inf")
    assert bbr.inflight_hi <= 60


def test_bbrv2_small_loss_ignored():
    bbr = BbrV2()
    t, rc = _drive_v2_to_probe(bbr)
    # 1% loss: below the 2% threshold.
    rc += 1
    bbr.on_ack(ack(t, acked=99, lost=1, rate=1000.0, inflight=50, round_count=rc))
    rc += 1
    bbr.on_ack(ack(t + 0.05, acked=1, rate=1000.0, inflight=50,
                   round_start=True, round_count=rc))
    assert bbr.inflight_hi == float("inf")


def test_bbrv2_startup_exits_on_sustained_loss():
    bbr = BbrV2()
    t, rc = 0.1, 1
    for i in range(6):
        rc += 1
        bbr.on_ack(ack(t, acked=80, lost=20, rate=1000.0 * (i + 1), inflight=100,
                       round_start=True, round_count=rc))
        t += 0.05
    assert bbr.state != "STARTUP"


def test_bbrv2_ecn_response_reduces_bound():
    bbr = BbrV2()
    t, _ = _drive_v2_to_probe(bbr)
    bbr.inflight_hi = 100.0
    for _ in range(40):
        bbr.on_ecn(seconds(t))
    assert bbr.inflight_hi < 100.0


def test_bbrv2_rto_resets_window():
    bbr = BbrV2()
    _drive_v2_to_probe(bbr)
    bbr.on_rto(seconds(50))
    assert bbr.cwnd == 4.0


def test_bbrv2_fewer_loss_reaction_than_reno():
    """v2 does not multiplicatively cut on a single congestion event."""
    bbr = BbrV2()
    t, _ = _drive_v2_to_probe(bbr)
    cwnd = bbr.cwnd
    bbr.on_congestion_event(seconds(t))
    assert bbr.cwnd == cwnd
