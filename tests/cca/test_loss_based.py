"""Unit tests for the loss-based CCAs: Reno, CUBIC, HTCP.

Driven directly through AckEvent objects — no network involved.
"""

import pytest

from repro.cca.base import AckEvent
from repro.cca.cubic import CUBIC_BETA, Cubic
from repro.cca.htcp import HTCP_BETA_MAX, HTCP_BETA_MIN, HTcp
from repro.cca.reno import Reno
from repro.units import milliseconds, seconds


def ack(now_s=1.0, acked=1, rtt_ms=50.0, lost=0, inflight=10, round_start=False,
        round_count=1, in_recovery=False, rate=None):
    rtt = milliseconds(rtt_ms)
    return AckEvent(
        now_ns=seconds(now_s),
        newly_acked=acked,
        newly_sacked=0,
        newly_lost=lost,
        rtt_ns=rtt,
        min_rtt_ns=rtt,
        srtt_ns=rtt,
        delivery_rate_pps=rate,
        is_app_limited=False,
        inflight=inflight,
        round_start=round_start,
        round_count=round_count,
        in_recovery=in_recovery,
        total_delivered=0,
    )


# --- Reno -----------------------------------------------------------------------


def test_reno_slow_start_growth():
    r = Reno()
    start = r.cwnd
    r.on_ack(ack(acked=5))
    assert r.cwnd == start + 5


def test_reno_congestion_avoidance_growth():
    r = Reno()
    r.ssthresh = 10
    r.cwnd = 20.0
    r.on_ack(ack(acked=20))  # one full window of ACKs
    assert r.cwnd == pytest.approx(21.0, rel=0.01)


def test_reno_halves_on_loss():
    r = Reno()
    r.cwnd = 100.0
    r.ssthresh = 50.0
    r.on_congestion_event(seconds(1))
    assert r.cwnd == 50.0
    assert r.ssthresh == 50.0


def test_reno_no_growth_in_recovery():
    r = Reno()
    before = r.cwnd
    r.on_ack(ack(acked=5, in_recovery=True))
    assert r.cwnd == before


def test_reno_rto_collapse_and_repeat():
    r = Reno()
    r.cwnd = 64.0
    r.on_rto(seconds(1))
    assert r.cwnd == 1.0
    assert r.ssthresh == 32.0
    r.cwnd = 1.0
    r.on_rto(seconds(2), first_timeout=False)
    assert r.ssthresh == 32.0  # unchanged on repeated timeout


# --- CUBIC ----------------------------------------------------------------------


def test_cubic_beta_is_07():
    c = Cubic()
    c.cwnd = 100.0
    c.ssthresh = 50.0
    c.on_congestion_event(seconds(1))
    assert c.cwnd == pytest.approx(100.0 * CUBIC_BETA)
    assert c.w_max == 100.0


def test_cubic_fast_convergence():
    c = Cubic()
    c.cwnd = 100.0
    c.ssthresh = 50.0
    c.on_congestion_event(seconds(1))
    # Second loss before regaining w_max -> w_max shrinks below cwnd.
    c.on_congestion_event(seconds(2))
    assert c.w_max == pytest.approx(70.0 * (2 - CUBIC_BETA) / 2)


def test_cubic_concave_recovery_toward_wmax():
    c = Cubic()
    c.cwnd = 70.0
    c.ssthresh = 70.0
    c.w_max = 100.0
    t = 1.0
    last = c.cwnd
    growths = []
    for i in range(400):
        t += 0.05
        c.on_ack(ack(now_s=t, acked=int(c.cwnd) // 2))
        growths.append(c.cwnd - last)
        last = c.cwnd
    # Monotone growth, approaching w_max region.
    assert c.cwnd > 70.0
    assert all(g >= -1e-9 for g in growths)


def test_cubic_growth_accelerates_past_wmax():
    """Convex region: growth rate increases with time beyond K."""
    c = Cubic()
    c.cwnd = 100.0
    c.ssthresh = 50.0
    c.w_max = 100.0
    samples = []
    t = 1.0
    for i in range(200):
        t += 0.05
        before = c.cwnd
        c.on_ack(ack(now_s=t, acked=10))
        samples.append(c.cwnd - before)
    assert samples[-1] > samples[0]


def test_cubic_hystart_exits_on_delay_increase():
    c = Cubic()
    c.cwnd = 64.0  # above HYSTART_LOW_WINDOW, still in slow start
    t = 1.0
    rc = 1
    # Round 1: baseline RTT 50 ms (>8 samples).
    c.on_ack(ack(now_s=t, rtt_ms=50, round_start=True, round_count=rc))
    for _ in range(10):
        t += 0.001
        c.on_ack(ack(now_s=t, rtt_ms=50, round_count=rc))
    # Round 2: RTT jumped to 80 ms.
    rc += 1
    c.on_ack(ack(now_s=t, rtt_ms=80, round_start=True, round_count=rc))
    for _ in range(10):
        t += 0.001
        c.on_ack(ack(now_s=t, rtt_ms=80, round_count=rc))
    assert c.hystart_exits >= 1
    assert c.ssthresh <= c.cwnd


def test_cubic_no_hystart_exit_on_flat_rtt():
    c = Cubic()
    c.cwnd = 64.0
    t, rc = 1.0, 1
    for rnd in range(5):
        rc += 1
        c.on_ack(ack(now_s=t, rtt_ms=50, round_start=True, round_count=rc))
        for _ in range(10):
            t += 0.001
            c.on_ack(ack(now_s=t, rtt_ms=50, round_count=rc))
    assert c.hystart_exits == 0
    assert c.ssthresh == float("inf")


def test_cubic_tcp_friendly_floor():
    """At small windows/short epochs CUBIC grows at least like Reno."""
    c = Cubic()
    c.cwnd = 10.0
    c.ssthresh = 10.0
    c.w_max = 10.0
    t = 1.0
    start = c.cwnd
    for _ in range(100):
        t += 0.05
        c.on_ack(ack(now_s=t, acked=10))
    assert c.cwnd > start


# --- HTCP -----------------------------------------------------------------------


def test_htcp_alpha_is_one_shortly_after_loss():
    h = HTcp()
    h.on_congestion_event(seconds(10))
    assert h._alpha(seconds(10.5)) == pytest.approx(2 * (1 - h.beta) * 1.0)


def test_htcp_alpha_grows_with_elapsed_time():
    h = HTcp()
    h.on_congestion_event(seconds(0))
    a1 = h._alpha(seconds(2))
    a2 = h._alpha(seconds(5))
    a3 = h._alpha(seconds(10))
    assert a1 < a2 < a3


def _htcp_in_steady_state(rtts, rate=1000.0):
    """Two stable loss epochs arm the mode switch (as in Linux); the third
    epoch, with the given RTT samples, then uses the adaptive ratio."""
    h = HTcp()
    h.ssthresh = 1.0  # force CA
    h.cwnd = 100.0
    for epoch in (1, 2):
        h.on_ack(ack(rtt_ms=50, rate=rate))
        h.on_congestion_event(seconds(epoch))
        h.cwnd = 100.0
    for rtt in rtts:
        h.on_ack(ack(rtt_ms=rtt, rate=rate))
    h.on_congestion_event(seconds(3))
    return h


def test_htcp_first_loss_uses_deep_beta():
    """Before the mode switch engages, H-TCP takes the safe 0.5 cut."""
    h = HTcp()
    h.ssthresh = 1.0
    h.cwnd = 100.0
    h.on_ack(ack(rtt_ms=50, rate=1000.0))
    h.on_congestion_event(seconds(1))
    assert h.beta == HTCP_BETA_MIN


def test_htcp_beta_adapts_to_rtt_ratio():
    h = _htcp_in_steady_state([50, 70])
    assert h.beta == pytest.approx(50 / 70)


def test_htcp_beta_clamped():
    assert _htcp_in_steady_state([10, 100]).beta == HTCP_BETA_MIN
    assert _htcp_in_steady_state([50, 50.1]).beta == pytest.approx(HTCP_BETA_MAX)


def test_htcp_bandwidth_switch_forces_deep_cut():
    """A >20% throughput change between epochs falls back to beta=0.5."""
    h = _htcp_in_steady_state([50, 70])
    assert h.beta == pytest.approx(50 / 70)  # stable bandwidth: ratio beta
    # Next epoch the measured bandwidth halves -> deep cut.
    h.on_ack(ack(rtt_ms=50, rate=500.0))
    h.on_ack(ack(rtt_ms=70, rate=500.0))
    h.on_congestion_event(seconds(4))
    assert h.beta == HTCP_BETA_MIN


def test_htcp_rtt_window_resets_after_congestion():
    h = HTcp()
    h.cwnd = 100.0
    h.ssthresh = 1.0
    h.on_ack(ack(rtt_ms=10))
    h.on_congestion_event(seconds(1))
    assert h._rtt_min_ns is None and h._rtt_max_ns is None
