"""The two engines must model the same algorithms: shared constants.

A divergence here means a calibration change was applied to one engine
but not the other — the exact failure mode that would silently invalidate
the fluid engine's high-tier results.
"""

import pytest

from repro.cca import bbrv2 as pkt_bbrv2
from repro.cca import cubic as pkt_cubic
from repro.cca import htcp as pkt_htcp
from repro.cca import reno as pkt_reno
from repro.fluid import cca_rules as fluid


def test_reno_beta():
    assert pkt_reno.RENO_BETA == fluid.FluidReno.BETA == 0.5


def test_cubic_constants():
    assert pkt_cubic.CUBIC_C == fluid.FluidCubic.C == 0.4
    assert pkt_cubic.CUBIC_BETA == fluid.FluidCubic.BETA == 0.7


def test_htcp_constants():
    assert pkt_htcp.HTCP_BETA_MIN == fluid.FluidHTcp.BETA_MIN == 0.5
    assert pkt_htcp.HTCP_BETA_MAX == fluid.FluidHTcp.BETA_MAX == 0.8
    assert pkt_htcp.HTCP_DELTA_L_S == fluid.FluidHTcp.DELTA_L_S == 1.0


def test_bbrv2_loss_model():
    assert pkt_bbrv2.LOSS_THRESH == fluid.FluidBbrV2.LOSS_THRESH == 0.02
    assert pkt_bbrv2.BETA == fluid.FluidBbrV2.BETA == 0.7
    assert pkt_bbrv2.HEADROOM == fluid.FluidBbrV2.HEADROOM == 0.15


def test_bbrv1_gains():
    from repro.cca import bbrv1 as pkt_bbrv1

    assert pkt_bbrv1.BBR_HIGH_GAIN == pytest.approx(fluid.FluidBbrV1.HIGH_GAIN)
    assert pkt_bbrv1.BBR_CWND_GAIN == fluid.FluidBbrV1.CWND_GAIN == 2.0
    assert tuple(pkt_bbrv1.BBR_PACING_CYCLE) == tuple(fluid.FluidBbrV1.CYCLE)


def test_red_defaults_consistent():
    """Both engines use the classic fixed 30/90 thresholds (in their units)."""
    import numpy as np

    from repro.aqm.red import RedQueue
    from repro.fluid.aqm_rules import FluidRed

    pkt = RedQueue(10**9, np.random.default_rng(0), avpkt=1500)
    assert pkt.min_th == 30 * 1500
    assert pkt.max_th == 90 * 1500
    fl = FluidRed(10**6, 1000.0, 1, np.random.default_rng(0))
    assert fl.min_th == 30.0
    assert fl.max_th == 90.0
    assert pkt.max_p == fl.max_p == 0.02


def test_codel_parameters_consistent():
    from repro.aqm.codel import DEFAULT_INTERVAL_NS, DEFAULT_TARGET_NS
    from repro.fluid.aqm_rules import FluidFqCodel

    assert DEFAULT_TARGET_NS / 1e9 == FluidFqCodel.TARGET_S == 0.005
    assert DEFAULT_INTERVAL_NS / 1e9 == FluidFqCodel.INTERVAL_S == 0.100


def test_pie_parameters_consistent():
    from repro.aqm import pie as pkt_pie
    from repro.fluid.aqm_rules import FluidPie

    assert pkt_pie.DEFAULT_TARGET_NS / 1e9 == FluidPie.TARGET_S
    assert pkt_pie.DEFAULT_T_UPDATE_NS / 1e9 == FluidPie.T_UPDATE_S
    assert pkt_pie.ALPHA == FluidPie.ALPHA
    assert pkt_pie.BETA == FluidPie.BETA


def test_cross_engine_jain_cubic_pair_100mbps():
    """Packet and fluid engines agree on CUBIC-vs-CUBIC fairness at 100 Mbps.

    The engines model at very different granularities (per-segment events
    vs per-RTT rate ODEs), so throughput numbers differ — but both must
    land in the same qualitative regime.  Intra-CCA CUBIC on a 2 BDP FIFO
    is the paper's canonical "fair" cell (Jain near 1); we assert each
    engine reports a high index and that they agree within 0.15, a
    tolerance chosen well above seed-to-seed noise (<0.05 for this cell)
    but tight enough to catch a calibration regression in either engine.
    """
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment
    from repro.units import mbps

    common = dict(
        cca_pair=("cubic", "cubic"),
        aqm="fifo",
        buffer_bdp=2.0,
        bottleneck_bw_bps=mbps(100),
        duration_s=30.0,
        seed=3,
        flows_per_node=1,
    )
    packet = run_experiment(ExperimentConfig(engine="packet", **common))
    fluid = run_experiment(ExperimentConfig(engine="fluid", **common))

    assert packet.jain_index > 0.8
    assert fluid.jain_index > 0.8
    assert abs(packet.jain_index - fluid.jain_index) < 0.15
    # Both engines should also see a well-utilized bottleneck.
    assert packet.link_utilization > 0.7
    assert fluid.link_utilization > 0.7
