"""Unit tests for the paper's dumbbell topology builder."""

import pytest

from repro.aqm.fifo import FifoQueue
from repro.aqm.fq_codel import FqCoDelQueue
from repro.aqm.red import RedQueue
from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
from repro.units import gbps, mbps, milliseconds


def test_node_inventory_matches_paper():
    db = build_dumbbell(DumbbellConfig(bottleneck_bw_bps=mbps(100)))
    assert {h.name for h in db.clients} == {"client1", "client2"}
    assert {h.name for h in db.servers} == {"server1", "server2"}
    assert db.router1.name == "router1"
    assert db.router2.name == "router2"
    assert len(db.network.nodes) == 6


def test_bottleneck_rate_and_buffer():
    cfg = DumbbellConfig(bottleneck_bw_bps=mbps(100), buffer_bdp=2.0)
    db = build_dumbbell(cfg)
    assert db.bottleneck_link.rate_bps == mbps(100)
    # BDP at 100 Mbps x 62 ms = 775000 B; buffer = 2x.
    assert db.bottleneck_qdisc.limit_bytes == 2 * 775_000


def test_rtt_property():
    cfg = DumbbellConfig(bottleneck_bw_bps=mbps(100))
    assert cfg.rtt_ns == milliseconds(62)
    stretched = DumbbellConfig(bottleneck_bw_bps=mbps(100), delay_multiplier=2.0)
    assert stretched.rtt_ns == milliseconds(124)


def test_scale_divides_rates_not_delays():
    cfg = DumbbellConfig(bottleneck_bw_bps=gbps(1), scale=100.0)
    db = build_dumbbell(cfg)
    assert db.bottleneck_link.rate_bps == pytest.approx(gbps(1) / 100)
    assert cfg.rtt_ns == milliseconds(62)
    # BDP shrinks with the scaled rate.
    assert cfg.bdp_bytes == pytest.approx(gbps(1) / 100 * 0.062 / 8, rel=0.01)


@pytest.mark.parametrize("aqm,cls", [("fifo", FifoQueue), ("red", RedQueue), ("fq_codel", FqCoDelQueue)])
def test_aqm_installed_on_bottleneck(aqm, cls):
    db = build_dumbbell(DumbbellConfig(bottleneck_bw_bps=mbps(100), aqm=aqm))
    assert isinstance(db.bottleneck_qdisc, cls)


def test_reverse_path_unshaped():
    db = build_dumbbell(DumbbellConfig(bottleneck_bw_bps=mbps(100)))
    reverse = db.network.links["router2->router1"]
    assert reverse.rate_bps == gbps(100)


def test_routing_reaches_all_subnets():
    db = build_dumbbell(DumbbellConfig(bottleneck_bw_bps=mbps(100)))
    assert len(db.router1.routing_table) == 5
    assert len(db.router2.routing_table) == 5


def test_tc_history_records_command():
    db = build_dumbbell(DumbbellConfig(bottleneck_bw_bps=mbps(100), aqm="red"))
    assert len(db.tc.history) == 1
    assert "red" in db.tc.history[0]


def test_buffer_at_least_one_packet():
    cfg = DumbbellConfig(bottleneck_bw_bps=mbps(1), buffer_bdp=0.5, mss_bytes=8900, scale=10)
    assert cfg.buffer_bytes >= 8900


@pytest.mark.parametrize("kwargs", [
    {"bottleneck_bw_bps": 0},
    {"bottleneck_bw_bps": 1e6, "buffer_bdp": 0},
    {"bottleneck_bw_bps": 1e6, "scale": 0},
    {"bottleneck_bw_bps": 1e6, "delay_multiplier": 0},
    {"bottleneck_bw_bps": 1e6, "client_delay_multipliers": (1.0,)},
    {"bottleneck_bw_bps": 1e6, "client_delay_multipliers": (1.0, 0.0)},
])
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        DumbbellConfig(**kwargs)


def test_client_delay_multipliers_stretch_one_access_link():
    db = build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=mbps(100), client_delay_multipliers=(1.0, 3.0))
    )
    d1 = db.network.links["client1->router1"].delay_ns
    d2 = db.network.links["client2->router1"].delay_ns
    assert d2 == 3 * d1
    # The trunk and server side are untouched.
    assert db.network.links["router1->router2"].delay_ns == milliseconds(9)
