"""Unit tests for FABRIC site metadata."""

import pytest

from repro.testbed.sites import (
    PAPER_PATH,
    PAPER_RTT_NS,
    SITES,
    hop_one_way_delay_ns,
    path_one_way_delay_ns,
)
from repro.units import milliseconds


def test_paper_rtt_is_62ms():
    assert PAPER_RTT_NS == milliseconds(62)


def test_paper_path_sites_exist():
    for code in PAPER_PATH:
        assert code in SITES


def test_hops_symmetric():
    assert hop_one_way_delay_ns("CLEM", "WASH") == hop_one_way_delay_ns("WASH", "CLEM")


def test_path_delay_is_sum_of_hops():
    total = path_one_way_delay_ns(PAPER_PATH)
    parts = sum(
        hop_one_way_delay_ns(a, b) for a, b in zip(PAPER_PATH, PAPER_PATH[1:])
    )
    assert total == parts == milliseconds(31)


def test_unknown_hop_rejected():
    with pytest.raises(ValueError):
        hop_one_way_delay_ns("CLEM", "TACC")  # not adjacent
