"""Unit tests for the tc facade."""

import numpy as np
import pytest

from repro.aqm.red import RedQueue
from repro.net.topology import Network
from repro.testbed.tc import TrafficControl
from repro.units import milliseconds


def _iface_pair():
    net = Network(seed=0)
    a = net.add_host("a").add_interface("eth0")
    b = net.add_host("b").add_interface("eth0")
    net.connect(a, b, rate_bps=1e8, delay_ns=milliseconds(1))
    return net, a


def test_qdisc_replace_swaps_discipline():
    net, iface = _iface_pair()
    tc = TrafficControl(rng=np.random.default_rng(0))
    tc.qdisc_replace(iface, "red", limit_bytes=100_000)
    assert isinstance(iface.qdisc, RedQueue)
    assert iface.qdisc.limit_bytes == 100_000
    # RED inherits the link rate for idle decay.
    assert iface.qdisc.bandwidth_bps == 1e8


def test_history_records_commands():
    net, iface = _iface_pair()
    tc = TrafficControl(rng=np.random.default_rng(0))
    tc.qdisc_replace(iface, "fifo", limit_bytes=50_000)
    tc.qdisc_replace(iface, "fq_codel", limit_bytes=60_000)
    assert len(tc.history) == 2
    assert "fifo" in tc.history[0]
    assert "fq_codel" in tc.history[1]


def test_params_forwarded():
    net, iface = _iface_pair()
    tc = TrafficControl(rng=np.random.default_rng(0))
    tc.qdisc_replace(iface, "red", limit_bytes=100_000, min_th=1234, max_th=4321)
    assert iface.qdisc.min_th == 1234
