"""Unit tests for the FABlib-style slice builder."""

import pytest

from repro.net.node import Host, Router
from repro.testbed.fablib import FablibManager
from repro.units import gbps, milliseconds


def _paper_like_slice(fablib):
    sl = fablib.new_slice("tcp-study")
    c1 = sl.add_node("client1", "CLEM")
    r1 = sl.add_node("router1", "WASH", cores=24, routing=True)
    c1.add_component("NIC_ConnectX_5", "nic1", rate_bps=gbps(25))
    r1.add_component("NIC_ConnectX_6", "nic1", rate_bps=gbps(100))
    sl.add_l2network("net1", (("client1", "nic1"), ("router1", "nic1")), "10.0.1.0/24")
    return sl


def test_slice_builds_network():
    fablib = FablibManager()
    sl = _paper_like_slice(fablib)
    net = sl.submit()
    assert isinstance(net.nodes["client1"], Host)
    assert isinstance(net.nodes["router1"], Router)
    link = net.links["client1->router1"]
    assert link.rate_bps == gbps(25)  # min of both NICs
    assert link.delay_ns == milliseconds(7)  # CLEM<->WASH


def test_addresses_assigned_from_subnet():
    fablib = FablibManager()
    net = _paper_like_slice(fablib).submit()
    assert str(net.nodes["client1"].interfaces["nic1"].address) == "10.0.1.1"
    assert str(net.nodes["router1"].interfaces["nic1"].address) == "10.0.1.2"


def test_same_site_zero_delay():
    fablib = FablibManager()
    sl = fablib.new_slice("local")
    a = sl.add_node("a", "TACC")
    b = sl.add_node("b", "TACC")
    a.add_component("NIC_ConnectX_5", "nic1")
    b.add_component("NIC_ConnectX_5", "nic1")
    sl.add_l2network("lan", (("a", "nic1"), ("b", "nic1")), "10.0.9.0/24")
    net = sl.submit()
    assert net.links["a->b"].delay_ns == 0


def test_validation_errors():
    fablib = FablibManager()
    sl = fablib.new_slice("s")
    with pytest.raises(ValueError):
        sl.add_node("x", "NOWHERE")
    sl.add_node("x", "CLEM")
    with pytest.raises(ValueError):
        sl.add_node("x", "CLEM")  # duplicate
    with pytest.raises(ValueError):
        sl.add_l2network("n", (("x", "nicX"), ("x", "nicY")), "10.0.0.0/24")
    with pytest.raises(ValueError):
        sl.add_l2network("n", (("ghost", "nic"), ("x", "nic")), "10.0.0.0/24")


def test_double_submit_rejected():
    fablib = FablibManager()
    sl = _paper_like_slice(fablib)
    sl.submit()
    with pytest.raises(RuntimeError):
        sl.submit()


def test_manager_slice_registry():
    fablib = FablibManager()
    sl = fablib.new_slice("a")
    assert fablib.get_slice("a") is sl
    with pytest.raises(ValueError):
        fablib.new_slice("a")
    with pytest.raises(KeyError):
        fablib.get_slice("missing")


def test_get_network_requires_submit():
    fablib = FablibManager()
    sl = _paper_like_slice(fablib)
    with pytest.raises(RuntimeError):
        sl.get_network()
    net = sl.submit()
    assert sl.get_network() is net
