"""Unit + integration tests for anomaly injection."""

import numpy as np
import pytest

from repro.cca.registry import make_cca
from repro.net.link import Link
from repro.net.packet import make_data_packet
from repro.sim.engine import Simulator
from repro.tcp.connection import open_connection
from repro.testbed.anomalies import LossSchedule, RateSchedule, Step, loss_episode
from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
from repro.units import mbps, seconds


def _link(sim, rng=None):
    return Link(sim, 1e9, 0, lambda p: None, loss_rng=rng,
                loss_rate=0.0 if rng is None else 0.0)


def test_loss_schedule_applies_steps_in_order():
    sim = Simulator()
    link = _link(sim, np.random.default_rng(0))
    sched = LossSchedule(sim, link, [Step(seconds(2), 0.0), Step(seconds(1), 0.1)])
    sim.run(seconds(3))
    assert [v for _, v in sched.applied] == [0.1, 0.0]
    assert link.loss_rate == 0.0


def test_loss_schedule_requires_rng_for_nonzero_loss():
    sim = Simulator()
    link = _link(sim)  # no rng attached
    with pytest.raises(ValueError):
        LossSchedule(sim, link, [Step(0, 0.5)])
    # Providing one at schedule time attaches it.
    LossSchedule(sim, link, [Step(0, 0.5)], rng=np.random.default_rng(1))
    sim.run(seconds(1))
    assert link.loss_rate == 0.5


def test_loss_rate_bounds():
    sim = Simulator()
    link = _link(sim, np.random.default_rng(0))
    with pytest.raises(ValueError):
        LossSchedule(sim, link, [Step(0, 1.0)])
    with pytest.raises(ValueError):
        LossSchedule(sim, link, [Step(0, -0.1)])
    with pytest.raises(ValueError):
        LossSchedule(sim, link, [Step(-5, 0.1)])


def test_rate_schedule():
    sim = Simulator()
    link = _link(sim)
    RateSchedule(sim, link, [Step(seconds(1), 5e8), Step(seconds(2), 1e9)])
    sim.run(seconds(1))
    assert link.rate_bps == 5e8
    sim.run(seconds(2))
    assert link.rate_bps == 1e9
    with pytest.raises(ValueError):
        RateSchedule(sim, link, [Step(0, 0)])


def test_loss_episode_convenience():
    sim = Simulator()
    link = _link(sim, np.random.default_rng(0))
    loss_episode(sim, link, start_ns=seconds(1), end_ns=seconds(2), loss_rate=0.2)
    sim.run(seconds(1.5))
    assert link.loss_rate == 0.2
    sim.run(seconds(3))
    assert link.loss_rate == 0.0
    with pytest.raises(ValueError):
        loss_episode(sim, link, start_ns=seconds(2), end_ns=seconds(1), loss_rate=0.1)


def test_loss_episode_depresses_throughput_end_to_end():
    """A mid-run loss episode visibly dents per-interval goodput."""
    db = build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=mbps(20), buffer_bdp=2.0, mss_bytes=1500, seed=9)
    )
    conn = open_connection(db.clients[0], db.servers[0], make_cca("cubic"), mss=1500)
    conn.start()
    trunk = db.bottleneck_link
    loss_episode(
        db.sim, trunk, start_ns=seconds(8), end_ns=seconds(12), loss_rate=0.05,
        rng=db.network.rng.stream("anomaly"),
    )
    marks = []

    def sample():
        marks.append(conn.receiver.bytes_received)
        db.sim.schedule(seconds(2), sample)

    db.sim.schedule(seconds(2), sample)
    db.network.run(seconds(20))
    rates = [(b - a) / 2 for a, b in zip(marks, marks[1:])]
    healthy_before = rates[2]  # 6-8 s
    during = min(rates[3], rates[4])  # 8-12 s window
    assert during < 0.85 * healthy_before
    assert trunk.packets_lost > 0
