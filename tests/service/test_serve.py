"""End-to-end smoke tests for ``repro serve``.

A real asyncio server on a loopback port, talked to over raw HTTP/1.1:
cold query schedules the engine, re-query is a cache hit with zero
recompute, malformed configs come back as clean 400s, and the cache
counters show up in the Prometheus exposition.
"""

import asyncio
import json

import pytest

import repro.service as service_mod
from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentConfig
from repro.metrics.summary import ExperimentResult, SenderStats
from repro.service import SweepService
from repro.units import mbps

CONFIG = {
    "cca_pair": ["cubic", "cubic"],
    "bottleneck_bw_bps": mbps(100),
    "duration_s": 5.0,
    "engine": "fluid",
    "seed": 3,
    "fairness_interval_s": 1.0,
}


def _fake_result(cfg):
    return ExperimentResult(
        config=cfg.to_dict(),
        senders=[SenderStats("client1", "cubic", 50e6, 0, 1)],
        flows=[],
        jain_index=0.97,
        link_utilization=1.0,
        total_retransmits=0,
        total_throughput_bps=100e6,
        bottleneck_drops=0,
        duration_s=cfg.duration_s,
        engine=cfg.engine,
        wallclock_s=0.01,
        extra={"fairness": {"samples": [{"t_s": 1.0, "jain": 0.97}],
                            "convergence_time_s": 1.0}},
    )


async def _request(port, method, path, body=None):
    """One raw HTTP/1.1 exchange; returns (status, parsed-or-text body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: localhost\r\nContent-Length: {len(payload)}\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head_part, _, body_part = raw.partition(b"\r\n\r\n")
    status = int(head_part.split(b" ")[1])
    text = body_part.decode()
    try:
        return status, json.loads(text)
    except json.JSONDecodeError:
        return status, text


def _serve(tmp_path, monkeypatch, coro_fn, *, engine_calls=None, **service_kw):
    """Run ``coro_fn(port, service)`` against a live service instance."""
    if engine_calls is not None:
        def counted_run(cfg):
            engine_calls.append(cfg.label())
            return _fake_result(cfg)
        monkeypatch.setattr(service_mod, "run_experiment", counted_run)

    async def driver():
        cache = ResultCache(tmp_path / "cache", worker="serve-test")
        service = SweepService(cache, **service_kw)
        server = await service.start(port=0)
        port = server.sockets[0].getsockname()[1]
        try:
            return await coro_fn(port, service)
        finally:
            server.close()
            await server.wait_closed()
            service.close()

    return asyncio.run(driver())


def test_cold_then_warm_query(tmp_path, monkeypatch):
    calls = []

    async def scenario(port, service):
        cold_status, cold = await _request(port, "POST", "/query", CONFIG)
        warm_status, warm = await _request(port, "POST", "/query", CONFIG)
        return cold_status, cold, warm_status, warm

    cold_status, cold, warm_status, warm = _serve(
        tmp_path, monkeypatch, scenario, engine_calls=calls
    )
    assert cold_status == 200 and warm_status == 200
    assert cold["cached"] is False and warm["cached"] is True
    assert len(calls) == 1  # the re-query never touched the engine
    assert cold["jain_index"] == warm["jain_index"] == 0.97
    assert warm["convergence_time_s"] == 1.0
    assert warm["fairness"]["samples"]
    assert cold["key"] == warm["key"] and len(cold["key"]) == 64


def test_full_flag_inlines_result(tmp_path, monkeypatch):
    async def scenario(port, service):
        _, brief = await _request(port, "POST", "/query", CONFIG)
        _, full = await _request(port, "POST", "/query", {**CONFIG, "full": True})
        return brief, full

    brief, full = _serve(tmp_path, monkeypatch, scenario, engine_calls=[])
    assert "result" not in brief
    assert full["result"]["config"]["seed"] == 3


def test_malformed_configs_get_clean_400s(tmp_path, monkeypatch):
    calls = []

    async def scenario(port, service):
        responses = {}
        responses["bad_cca"] = await _request(
            port, "POST", "/query", {**CONFIG, "cca_pair": ["cubic", "not-a-cca"]}
        )
        responses["missing"] = await _request(port, "POST", "/query", {"full": True})
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(b"POST /query HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!")
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        head, _, body = raw.partition(b"\r\n\r\n")
        responses["not_json"] = (int(head.split(b" ")[1]), json.loads(body))
        return responses

    r = _serve(tmp_path, monkeypatch, scenario, engine_calls=calls)
    assert calls == []  # nothing malformed ever reaches the engine
    status, body = r["bad_cca"]
    assert status == 400 and "invalid experiment config" in body["error"]
    status, body = r["missing"]
    assert status == 400 and "cca_pair" in body["error"]
    status, body = r["not_json"]
    assert status == 400 and "not valid JSON" in body["error"]


#: The same experiment as CONFIG, spoken in the scenario IR dialect
#: (docs/SCENARIO.md).  The service must key both onto one cache entry.
SCENARIO_BODY = {
    "scenario": {
        "topology": {"bottleneck_bw_bps": mbps(100)},
        "flows": [
            {"cca": "cubic", "node": 0},
            {"cca": "cubic", "node": 1},
        ],
        "duration_s": 5.0,
        "seed": 3,
        "sampling": {"fairness_interval_s": 1.0},
    },
    "engine": "fluid",
}


def test_legacy_and_ir_queries_share_one_cache_entry(tmp_path, monkeypatch):
    calls = []

    async def scenario(port, service):
        legacy_status, legacy = await _request(port, "POST", "/query", CONFIG)
        ir_status, ir = await _request(port, "POST", "/query", SCENARIO_BODY)
        return legacy_status, legacy, ir_status, ir

    legacy_status, legacy, ir_status, ir = _serve(
        tmp_path, monkeypatch, scenario, engine_calls=calls
    )
    assert legacy_status == 200 and ir_status == 200
    assert legacy["cached"] is False and ir["cached"] is True
    assert len(calls) == 1  # the IR dialect re-used the legacy run
    assert legacy["key"] == ir["key"]


def test_bare_ir_document_is_recognized(tmp_path, monkeypatch):
    """An IR body without the 'scenario' envelope still parses (detected
    by its topology/flows fields), with 'full'/'engine' as siblings."""
    body = {**SCENARIO_BODY["scenario"], "engine": "fluid", "full": True}

    async def scenario(port, service):
        return await _request(port, "POST", "/query", body)

    status, resp = _serve(tmp_path, monkeypatch, scenario, engine_calls=[])
    assert status == 200
    assert resp["engine"] == "fluid"
    assert resp["result"]["config"]["seed"] == 3


def test_ir_schema_errors_get_clean_400s(tmp_path, monkeypatch):
    calls = []

    async def scenario(port, service):
        responses = {}
        responses["bad_field"] = await _request(
            port, "POST", "/query",
            {"scenario": {**SCENARIO_BODY["scenario"], "nonsense": 1}},
        )
        bad_flow = {
            **SCENARIO_BODY["scenario"],
            "flows": [{"cca": "not-a-cca", "node": 0}, {"cca": "cubic", "node": 1}],
        }
        responses["bad_cca"] = await _request(
            port, "POST", "/query", {"scenario": bad_flow}
        )
        responses["bad_engine"] = await _request(
            port, "POST", "/query", {**SCENARIO_BODY, "engine": "ns3"}
        )
        responses["not_object"] = await _request(
            port, "POST", "/query", {"scenario": "cell.json"}
        )
        return responses

    r = _serve(tmp_path, monkeypatch, scenario, engine_calls=calls)
    assert calls == []  # nothing malformed ever reaches the engine
    status, body = r["bad_field"]
    assert status == 400 and "unknown field" in body["error"]
    status, body = r["bad_cca"]
    assert status == 400 and "flows[0].cca" in body["error"]
    status, body = r["bad_engine"]
    assert status == 400 and "ns3" in body["error"]
    status, body = r["not_object"]
    assert status == 400 and "scenario" in body["error"]


def test_unknown_route_is_404(tmp_path, monkeypatch):
    async def scenario(port, service):
        return await _request(port, "GET", "/nope")

    status, body = _serve(tmp_path, monkeypatch, scenario)
    assert status == 404 and "no route" in body["error"]


def test_healthz_and_stats(tmp_path, monkeypatch):
    async def scenario(port, service):
        _, health0 = await _request(port, "GET", "/healthz")
        await _request(port, "POST", "/query", CONFIG)
        _, health1 = await _request(port, "GET", "/healthz")
        _, stats = await _request(port, "GET", "/stats")
        return health0, health1, stats

    health0, health1, stats = _serve(tmp_path, monkeypatch, scenario, engine_calls=[])
    assert health0 == {"ok": True, "entries": 0, "salt": health0["salt"]}
    assert health1["entries"] == 1
    assert stats["scheduled_runs"] == 1
    assert stats["misses"] == 1 and stats["puts"] == 1
    assert stats["requests"] >= 3


def test_metrics_exposes_cache_counters(tmp_path, monkeypatch):
    async def scenario(port, service):
        await _request(port, "POST", "/query", CONFIG)  # miss + engine run
        await _request(port, "POST", "/query", CONFIG)  # hit
        await _request(port, "POST", "/query", {"full": True})  # 400
        _, text = await _request(port, "GET", "/metrics")
        return text

    text = _serve(tmp_path, monkeypatch, scenario, engine_calls=[])
    assert "repro_service_cache_hits_total 1" in text
    assert "repro_service_cache_misses_total 1" in text
    assert "repro_service_engine_runs_total 1" in text
    assert "repro_service_errors_total 1" in text
    assert "repro_service_cache_entries 1" in text
    assert "repro_service_request_latency_seconds_bucket" in text


def test_single_flight_dedups_concurrent_queries(tmp_path, monkeypatch):
    calls = []

    async def scenario(port, service):
        return await asyncio.gather(
            *[_request(port, "POST", "/query", CONFIG) for _ in range(4)]
        )

    responses = _serve(tmp_path, monkeypatch, scenario, engine_calls=calls, jobs=4)
    assert len(calls) == 1  # four concurrent identical asks, one engine run
    assert all(status == 200 for status, _ in responses)
    assert sum(1 for _, body in responses if body["cached"] is False) >= 1


def test_scheduled_runs_log_campaign_progress(tmp_path, monkeypatch):
    async def scenario(port, service):
        await _request(port, "POST", "/query", CONFIG)
        await _request(port, "POST", "/query", CONFIG)  # hit: no new record
        return None

    _serve(
        tmp_path,
        monkeypatch,
        scenario,
        engine_calls=[],
        telemetry_dir=str(tmp_path / "telemetry"),
    )
    lines = (tmp_path / "telemetry" / "campaign.jsonl").read_text().splitlines()
    records = [json.loads(l) for l in lines]
    progress = [r for r in records if r.get("record") == "campaign_progress"]
    assert len(progress) == 1  # one engine run → one record, the hit adds none


def test_service_persists_into_shared_cache(tmp_path, monkeypatch):
    """A result computed by the service is visible to later sweeps."""
    async def scenario(port, service):
        await _request(port, "POST", "/query", CONFIG)
        return None

    _serve(tmp_path, monkeypatch, scenario, engine_calls=[])
    cfg = ExperimentConfig.from_dict(dict(CONFIG))
    hit = ResultCache(tmp_path / "cache").get(cfg)
    assert hit is not None and hit.jain_index == 0.97


def test_real_engine_end_to_end(tmp_path):
    """No monkeypatching: a genuine fluid run through the full HTTP path."""
    async def scenario(port, service):
        _, cold = await _request(port, "POST", "/query", CONFIG)
        _, warm = await _request(port, "POST", "/query", CONFIG)
        return cold, warm

    cold, warm = _serve(tmp_path, pytest.MonkeyPatch(), scenario)
    assert cold["cached"] is False and warm["cached"] is True
    assert cold["engine"] == "fluid"
    assert warm["fairness"]["samples"], "fairness series served from cache"
    assert cold["jain_index"] == warm["jain_index"]
