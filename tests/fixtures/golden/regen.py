#!/usr/bin/env python
"""Regenerate the golden-trace fixtures.

Run from the repo root ONLY when a simulated-behavior change is intended
(new algorithm constant, different drop logic, ...) — never to paper over
a hot-path refactor that should have been behavior-preserving::

    PYTHONPATH=src python tests/fixtures/golden/regen.py

Each fixture is the full normalized ``ExperimentResult.to_dict()`` of one
pinned-seed config from ``tests/helpers.py``.
"""

import json
import sys
from pathlib import Path

_here = Path(__file__).resolve()
_repo = _here.parents[3]
sys.path.insert(0, str(_repo / "src"))
sys.path.insert(0, str(_repo / "tests"))

from helpers import GOLDEN_CONFIGS, golden_result_dict  # noqa: E402


def main() -> int:
    out_dir = _here.parent
    for name in GOLDEN_CONFIGS:
        d = golden_result_dict(name)
        path = out_dir / f"{name}.json"
        path.write_text(json.dumps(d, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        print(f"wrote {path} (events={d.get('events_processed')}, "
              f"jain={d.get('jain_index'):.4f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
