"""Documentation hygiene: every public module, class, and function is
documented.  A reproduction package lives or dies by whether a downstream
reader can navigate it."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their source
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if not inspect.isfunction(meth):
                    continue
                if meth.__doc__ and meth.__doc__.strip():
                    continue
                # Overrides inherit the base method's documentation.
                inherited = any(
                    getattr(getattr(base, meth_name, None), "__doc__", None)
                    for base in obj.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, f"{module.__name__}: {undocumented}"
