"""Scenario IR: schema validation, canonical form, and the legacy façade.

The load-bearing contract here is byte-compatibility: lowering a legacy
``ExperimentConfig`` through the IR and back must reproduce the *same
canonical JSON bytes* — that is what keeps cache keys, stored results,
and golden fixtures identical across the API redesign.
"""

import json

import pytest

from repro.experiments.cache import config_key
from repro.experiments.config import ExperimentConfig
from repro.experiments.presets import PRESETS
from repro.scenario import (
    SCENARIO_VERSION,
    AqmSpec,
    FlowSpec,
    SamplingSpec,
    Scenario,
    ScenarioError,
    TopologySpec,
)
from repro.units import mbps


def _cell(**overrides):
    base = dict(
        topology=TopologySpec(bottleneck_bw_bps=mbps(20), mss_bytes=1500),
        flows=(
            FlowSpec(cca="cubic", node=0, count=1),
            FlowSpec(cca="cubic", node=1, count=1),
        ),
        duration_s=40.0,
        warmup_s=5.0,
        seed=31,
    )
    base.update(overrides)
    return Scenario(**base)


# -- construction & validation ------------------------------------------------------


def test_defaults_build_a_valid_scenario():
    sc = Scenario()
    assert sc.version == SCENARIO_VERSION
    assert sc.topology.kind == "dumbbell"
    assert [f.cca for f in sc.flows] == ["bbrv1", "cubic"]


def test_cca_names_are_canonicalized():
    sc = _cell(flows=(FlowSpec(cca="BBR", node=0), FlowSpec(cca="CUBIC", node=1)))
    assert [f.cca for f in sc.flows] == ["bbrv1", "cubic"]


@pytest.mark.parametrize(
    "build, path",
    [
        (lambda: _cell(duration_s=0), "duration_s"),
        (lambda: _cell(warmup_s=50.0), "warmup_s"),
        (lambda: _cell(seed="x"), "seed"),
        (lambda: _cell(flows=()), "flows"),
        (lambda: TopologySpec(bottleneck_bw_bps=-1), "topology.bottleneck_bw_bps"),
        (lambda: TopologySpec(kind="parking_lot"), "topology.kind"),
        (lambda: AqmSpec(name="nope"), "aqm.name"),
        (lambda: SamplingSpec(fairness_interval_s=-1), "sampling.fairness_interval_s"),
        (lambda: _cell(faults=[{"kind": "bogus_fault"}]), "faults"),
        (lambda: _cell(version=99), "version"),
    ],
    ids=["duration", "warmup", "seed", "flows", "bw", "kind", "aqm",
         "sampling", "faults", "version"],
)
def test_invalid_fields_raise_with_dotted_path(build, path):
    with pytest.raises(ScenarioError, match=path.replace(".", r"\.")):
        build()


def test_flow_node_must_exist_on_dumbbell():
    with pytest.raises(ScenarioError, match=r"flows\[1\]\.node"):
        _cell(flows=(FlowSpec(cca="cubic", node=0), FlowSpec(cca="cubic", node=7)))


def test_unknown_document_fields_rejected():
    with pytest.raises(ScenarioError, match="unknown field"):
        Scenario.from_dict({"duration_s": 5.0, "nonsense": 1})
    with pytest.raises(ScenarioError, match="topology"):
        Scenario.from_dict({"topology": {"bandwidth": 1}})
    with pytest.raises(ScenarioError, match=r"flows\[0\]"):
        Scenario.from_dict({"flows": [{"node": 0}]})


def test_document_type_errors_are_scenario_errors():
    with pytest.raises(ScenarioError, match="expected a number"):
        Scenario.from_dict({"duration_s": "long"})
    with pytest.raises(ScenarioError, match="expected an object"):
        Scenario.from_dict({"topology": []})
    with pytest.raises(ScenarioError, match="list of flow specs"):
        Scenario.from_dict({"flows": "cubic"})


# -- canonical form -----------------------------------------------------------------


def test_dict_roundtrip_is_identity():
    sc = _cell(
        aqm=AqmSpec(name="red", ecn=True, params={"min_th_frac": 0.2}),
        sampling=SamplingSpec(fairness_interval_s=1.0),
        faults=[{"kind": "link_flap", "at_s": 10.0, "duration_s": 1.0}],
    )
    again = Scenario.from_dict(sc.to_dict())
    assert again == sc
    assert again.canonical_json() == sc.canonical_json()


def test_canonical_json_stable_under_field_reordering():
    doc = _cell().to_dict()
    reordered = {k: doc[k] for k in reversed(list(doc))}
    reordered["topology"] = {
        k: doc["topology"][k] for k in reversed(list(doc["topology"]))
    }
    assert (
        Scenario.from_dict(reordered).canonical_json()
        == Scenario.from_dict(doc).canonical_json()
    )


def test_canonical_json_omits_opt_in_fields_at_rest():
    doc = json.loads(_cell().canonical_json())
    assert "faults" not in doc and "sampling" not in doc
    assert "start_s" not in doc["flows"][0]


def test_numeric_types_survive_the_document_roundtrip():
    # mbps() yields ints; float-ifying them would silently change the
    # canonical bytes (and thus every cache key).
    sc = _cell()
    doc = json.loads(sc.canonical_json())
    assert isinstance(doc["topology"]["bottleneck_bw_bps"], int)
    assert Scenario.from_dict(doc).canonical_json() == sc.canonical_json()


# -- legacy façade ------------------------------------------------------------------


def test_facade_roundtrips_every_preset_byte_identically():
    checked = 0
    for preset in PRESETS.values():
        for cfg in preset.build()[:60]:
            sc = Scenario.from_experiment_config(cfg)
            back = sc.to_experiment_config(engine=cfg.engine)
            assert json.dumps(back.canonical_dict(), sort_keys=True) == json.dumps(
                cfg.canonical_dict(), sort_keys=True
            ), cfg.label()
            assert back.label() == cfg.label()
            checked += 1
    assert checked >= 100


def test_cache_key_collides_with_legacy_config_key():
    cfg = ExperimentConfig(cca_pair=("bbrv1", "cubic"), engine="fluid", seed=7)
    sc = Scenario.from_experiment_config(cfg)
    assert sc.cache_key(engine="fluid", salt="s") == config_key(cfg, "s")
    # Default salt on both sides as well.
    from repro.experiments.cache import default_salt

    assert sc.cache_key(engine="fluid") == config_key(cfg, default_salt())


def test_engine_is_runtime_not_identity():
    cfg_fluid = ExperimentConfig(cca_pair=("cubic", "cubic"), engine="fluid")
    cfg_packet = ExperimentConfig(cca_pair=("cubic", "cubic"), engine="packet")
    assert (
        Scenario.from_experiment_config(cfg_fluid)
        == Scenario.from_experiment_config(cfg_packet)
    )


def test_extension_points_fail_at_lowering_not_midrun():
    staggered = _cell(
        flows=(
            FlowSpec(cca="cubic", node=0, count=1, start_s=5.0),
            FlowSpec(cca="cubic", node=1, count=1),
        )
    )
    with pytest.raises(ScenarioError, match="staggered flow starts"):
        staggered.to_experiment_config()
    finite = _cell(
        flows=(
            FlowSpec(cca="cubic", node=0, count=1, size_bytes=10**9),
            FlowSpec(cca="cubic", node=1, count=1),
        )
    )
    with pytest.raises(ScenarioError, match="finite transfer sizes"):
        finite.to_experiment_config()


def test_lowering_rejects_bad_flow_layouts():
    one_node = _cell(flows=(FlowSpec(cca="cubic", node=0, count=1),))
    with pytest.raises(ScenarioError, match="one flow spec per sender node"):
        one_node.to_experiment_config()
    dup = _cell(
        flows=(FlowSpec(cca="cubic", node=0), FlowSpec(cca="reno", node=0))
    )
    with pytest.raises(ScenarioError, match="multiple flow specs"):
        dup.to_experiment_config()
    uneven = _cell(
        flows=(
            FlowSpec(cca="cubic", node=0, count=1),
            FlowSpec(cca="cubic", node=1, count=2),
        )
    )
    with pytest.raises(ScenarioError, match="counts must match"):
        uneven.to_experiment_config()


def test_lowering_surfaces_engine_capability_errors():
    chaotic = _cell(faults=[{"kind": "link_flap", "at_s": 1.0, "duration_s": 0.5}])
    with pytest.raises(ScenarioError, match="packet engine"):
        chaotic.to_experiment_config(engine="fluid")
    # The same scenario lowers fine for the engine that supports faults.
    assert chaotic.to_experiment_config(engine="packet").faults


def test_facade_construction_emits_no_deprecation_warnings(recwarn):
    import warnings

    sc = _cell(
        sampling=SamplingSpec(fairness_interval_s=1.0),
        faults=[{"kind": "link_flap", "at_s": 1.0, "duration_s": 0.5}],
    )
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        sc.to_experiment_config(engine="packet")
