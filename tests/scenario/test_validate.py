"""Cross-engine validation harness.

Unit layer: a fake runner exercises the tolerance policy (exact vs
cross-model, drift flagging, pair enumeration) without touching an
engine.  Integration layer: the fluid pair is genuinely bit-identical,
and the known packet-vs-fluid agreement cell validates clean under the
cross-model tolerances — the contract ``repro validate`` gates in CI.
"""

import dataclasses

import pytest

from repro.metrics.summary import ExperimentResult, SenderStats
from repro.scenario import (
    CROSS_MODEL,
    EXACT,
    FlowSpec,
    Scenario,
    ScenarioError,
    TopologySpec,
    compile_scenario,
    render_validation_report,
    tolerance_for,
    validate_scenario,
)
from repro.units import mbps


def _cell(**overrides):
    base = dict(
        topology=TopologySpec(bottleneck_bw_bps=mbps(20), mss_bytes=1500),
        flows=(
            FlowSpec(cca="cubic", node=0, count=1),
            FlowSpec(cca="cubic", node=1, count=1),
        ),
        duration_s=40.0,
        warmup_s=5.0,
        seed=31,
    )
    base.update(overrides)
    return Scenario(**base)


def _result(scenario, engine, jain=0.99, phi=0.98, rr=100, wallclock=0.1):
    cfg = compile_scenario(scenario, engine)
    return ExperimentResult(
        config=cfg.to_dict(),
        senders=[SenderStats("client1", "cubic", 10e6, rr, 1)],
        flows=[],
        jain_index=jain,
        link_utilization=phi,
        total_retransmits=rr,
        total_throughput_bps=20e6,
        bottleneck_drops=rr,
        duration_s=scenario.duration_s,
        engine=engine,
        wallclock_s=wallclock,
    )


# -- tolerance policy ---------------------------------------------------------------


def test_same_family_pairs_are_exact():
    assert tolerance_for("fluid", "fluid_batched") is EXACT
    assert tolerance_for("packet", "packet") is EXACT
    assert tolerance_for("packet", "fluid") is CROSS_MODEL
    assert tolerance_for("fluid_batched", "packet") is CROSS_MODEL


def test_engine_list_is_validated():
    with pytest.raises(ScenarioError, match="at least two"):
        validate_scenario(_cell(), engines=("fluid",))
    with pytest.raises(ScenarioError, match="unknown backend"):
        validate_scenario(_cell(), engines=("fluid", "ns3"))
    with pytest.raises(ScenarioError, match="duplicate"):
        validate_scenario(_cell(), engines=("fluid", "fluid"))


# -- fake-runner unit layer ---------------------------------------------------------


def test_cross_model_pair_within_tolerance_is_clean():
    def runner(scenario, engine):
        return _result(scenario, engine, jain=0.95 if engine == "packet" else 0.99)

    report = validate_scenario(_cell(), ("packet", "fluid"), runner=runner)
    assert report.clean
    (pair,) = report.pairs
    assert not pair.exact and pair.tolerance is CROSS_MODEL


def test_cross_model_drift_beyond_tolerance_is_flagged():
    def runner(scenario, engine):
        return _result(scenario, engine, jain=0.5 if engine == "packet" else 0.99)

    report = validate_scenario(_cell(), ("packet", "fluid"), runner=runner)
    assert not report.clean
    (pair,) = report.pairs
    assert [d.metric for d in pair.drift.drifted] == ["jain"]
    assert "DRIFT" in render_validation_report(report)


def test_rr_is_ungated_across_models():
    def runner(scenario, engine):
        return _result(scenario, engine, rr=10 if engine == "packet" else 100000)

    report = validate_scenario(_cell(), ("packet", "fluid"), runner=runner)
    assert report.clean  # retransmit accounting is model-specific


def test_exact_pair_catches_any_divergence():
    def runner(scenario, engine):
        jain = 0.99 if engine == "fluid" else 0.99000001
        return _result(scenario, engine, jain=jain)

    report = validate_scenario(_cell(), ("fluid", "fluid_batched"), runner=runner)
    assert not report.clean
    (pair,) = report.pairs
    assert pair.exact
    assert "jain_index" in pair.exact_mismatch


def test_exact_pair_ignores_wallclock_and_engine_tags():
    def runner(scenario, engine):
        return _result(scenario, engine, wallclock=1.0 if engine == "fluid" else 9.0)

    report = validate_scenario(_cell(), ("fluid", "fluid_batched"), runner=runner)
    assert report.clean


def test_explicit_tolerance_override():
    def runner(scenario, engine):
        return _result(scenario, engine, jain=0.5 if engine == "packet" else 0.99)

    from repro.obs.drift import DriftTolerance

    loose = DriftTolerance(jain=1.0, phi=1.0, rr_rel=1e9, rr_abs=1e9)
    report = validate_scenario(
        _cell(), ("packet", "fluid"), tolerances={("fluid", "packet"): loose},
        runner=runner,
    )
    assert report.clean


def test_pairs_cover_all_engine_combinations():
    def runner(scenario, engine):
        return _result(scenario, engine)

    report = validate_scenario(
        _cell(), ("packet", "fluid", "fluid_batched"), runner=runner
    )
    assert {(p.engine_a, p.engine_b) for p in report.pairs} == {
        ("packet", "fluid"),
        ("packet", "fluid_batched"),
        ("fluid", "fluid_batched"),
    }


# -- real engines -------------------------------------------------------------------


def test_fluid_pair_is_bit_identical_for_real():
    report = validate_scenario(
        _cell(duration_s=10.0, warmup_s=0.0), ("fluid", "fluid_batched")
    )
    assert report.clean
    (pair,) = report.pairs
    assert pair.exact and not pair.exact_mismatch


@pytest.mark.slow
def test_agreement_cell_validates_clean_across_all_engines():
    """The engine-agreement cell (cubic/cubic, FIFO, 20 Mbps) must report
    zero drift packet <-> fluid <-> fluid_batched — the same invariant CI
    gates via ``repro validate``."""
    report = validate_scenario(_cell(), ("packet", "fluid", "fluid_batched"))
    assert report.clean, render_validation_report(report)


@pytest.mark.slow
@pytest.mark.parametrize("cca", ["cubic", "reno"])
def test_smoke_subset_compiles_and_agrees_cross_model(cca):
    """Compile->run packet vs fluid stays inside the declared cross-model
    tolerances for a deterministic smoke subset of agreement cells."""
    sc = _cell(
        flows=(
            FlowSpec(cca=cca, node=0, count=1),
            FlowSpec(cca=cca, node=1, count=1),
        )
    )
    report = validate_scenario(sc, ("packet", "fluid"))
    assert report.clean, render_validation_report(report)
