"""Property tests over randomly generated valid scenarios.

The strategy builds structurally valid IR instances across the whole
document space (topology geometry, flow layouts including the
extension-point fields, AQM/ECN, faults, sampling cadences).  Properties
pinned:

- ``from_dict(to_dict(s)) == s`` — the document form is lossless;
- canonical JSON is byte-stable under arbitrary field reordering;
- for every engine-expressible scenario, lowering to a legacy config and
  lifting back is the identity, and the canonical config bytes (hence
  cache keys) are reproduced exactly.
"""

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.scenario import (
    AqmSpec,
    FlowSpec,
    SamplingSpec,
    Scenario,
    ScenarioError,
    TopologySpec,
)

_CCAS = ("cubic", "reno", "bbrv1", "bbrv2", "htcp")

_interval = st.one_of(
    st.none(), st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
)


def _topologies():
    return st.builds(
        TopologySpec,
        bottleneck_bw_bps=st.one_of(
            st.integers(min_value=10**6, max_value=25 * 10**9),
            st.floats(min_value=1e6, max_value=25e9, allow_nan=False),
        ),
        buffer_bdp=st.floats(min_value=0.1, max_value=32.0, allow_nan=False),
        mss_bytes=st.sampled_from((1500, 8900)),
        scale=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
        delay_multiplier=st.floats(min_value=0.5, max_value=4.0, allow_nan=False),
        client_delay_multipliers=st.tuples(
            st.floats(min_value=0.5, max_value=4.0, allow_nan=False),
            st.floats(min_value=0.5, max_value=4.0, allow_nan=False),
        ),
        trunk_loss_rate=st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
    )


def _flows(engine_expressible):
    count = st.one_of(st.none(), st.integers(min_value=1, max_value=50))
    if engine_expressible:
        # One spec per dumbbell sender node, shared count, elephants only.
        return count.flatmap(
            lambda c: st.tuples(
                st.builds(FlowSpec, cca=st.sampled_from(_CCAS), node=st.just(0), count=st.just(c)),
                st.builds(FlowSpec, cca=st.sampled_from(_CCAS), node=st.just(1), count=st.just(c)),
            )
        )
    return st.lists(
        st.builds(
            FlowSpec,
            cca=st.sampled_from(_CCAS),
            node=st.integers(min_value=0, max_value=1),
            count=count,
            start_s=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            size_bytes=st.one_of(st.none(), st.integers(min_value=1, max_value=10**12)),
        ),
        min_size=1,
        max_size=4,
    ).map(tuple)


def _scenarios(engine_expressible=False):
    duration = st.floats(min_value=1.0, max_value=300.0, allow_nan=False)
    return duration.flatmap(
        lambda d: st.builds(
            Scenario,
            topology=_topologies(),
            flows=_flows(engine_expressible),
            aqm=st.builds(
                AqmSpec,
                name=st.sampled_from(("fifo", "red", "fq_codel", "codel", "pie")),
                ecn=st.booleans(),
                params=st.dictionaries(
                    st.sampled_from(("min_th_frac", "max_th_frac", "target_ms")),
                    st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
                    max_size=2,
                ),
            ),
            faults=st.lists(
                st.builds(
                    lambda at, dur: {"kind": "link_flap", "at_s": at, "duration_s": dur},
                    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                    st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
                ),
                max_size=2,
            ).map(tuple),
            duration_s=st.just(d),
            warmup_s=st.floats(min_value=0.0, max_value=d * 0.9, allow_nan=False, exclude_max=True),
            seed=st.integers(min_value=0, max_value=2**31),
            sampling=st.builds(
                SamplingSpec,
                throughput_interval_s=_interval,
                queue_interval_s=_interval,
                fairness_interval_s=_interval,
            ),
        )
    )


def _shuffle_keys(doc, rnd):
    if isinstance(doc, dict):
        keys = list(doc)
        rnd.shuffle(keys)
        return {k: _shuffle_keys(doc[k], rnd) for k in keys}
    if isinstance(doc, list):
        return [_shuffle_keys(v, rnd) for v in doc]
    return doc


@settings(max_examples=60, deadline=None)
@given(_scenarios())
def test_document_roundtrip_is_identity(scenario):
    doc = scenario.to_dict()
    again = Scenario.from_dict(json.loads(json.dumps(doc)))
    assert again == scenario
    assert again.canonical_json() == scenario.canonical_json()


@settings(max_examples=60, deadline=None)
@given(_scenarios(), st.randoms(use_true_random=False))
def test_canonical_json_invariant_under_reordering(scenario, rnd):
    shuffled = _shuffle_keys(scenario.to_dict(), rnd)
    assert Scenario.from_dict(shuffled).canonical_json() == scenario.canonical_json()


@settings(max_examples=60, deadline=None)
@given(_scenarios(engine_expressible=True), st.sampled_from(("packet", "fluid", "fluid_batched")))
def test_lowering_roundtrip_preserves_canonical_config_bytes(scenario, engine):
    if scenario.faults and engine != "packet":
        engine = "packet"  # faults are packet-only; pick the lawful backend
    cfg = scenario.to_experiment_config(engine=engine)
    lifted = Scenario.from_experiment_config(cfg)
    assert lifted == scenario
    again = lifted.to_experiment_config(engine=engine)
    assert json.dumps(again.canonical_dict(), sort_keys=True) == json.dumps(
        cfg.canonical_dict(), sort_keys=True
    )


@settings(max_examples=40, deadline=None)
@given(_scenarios())
def test_arbitrary_scenarios_lower_or_fail_cleanly(scenario):
    """Every generated scenario either compiles or raises ScenarioError —
    never a bare TypeError/KeyError from engine internals."""
    try:
        cfg = scenario.to_experiment_config(engine="packet")
    except ScenarioError:
        return
    assert cfg.duration_s == scenario.duration_s
