"""Per-backend compilers and the run entry point."""

import pytest

from repro.scenario import (
    COMPILERS,
    ENGINES,
    FlowSpec,
    Scenario,
    ScenarioError,
    TopologySpec,
    compile_scenario,
    run_scenario,
)
from repro.units import mbps


def _cell(**overrides):
    base = dict(
        topology=TopologySpec(bottleneck_bw_bps=mbps(20), mss_bytes=1500),
        flows=(
            FlowSpec(cca="cubic", node=0, count=1),
            FlowSpec(cca="cubic", node=1, count=1),
        ),
        duration_s=5.0,
        seed=3,
    )
    base.update(overrides)
    return Scenario(**base)


def test_every_engine_has_a_compiler():
    assert set(COMPILERS) == set(ENGINES) == {"packet", "fluid", "fluid_batched"}


@pytest.mark.parametrize("engine", ENGINES)
def test_compile_targets_the_requested_engine(engine):
    cfg = compile_scenario(_cell(), engine)
    assert cfg.engine == engine
    assert cfg.cca_pair == ("cubic", "cubic")
    assert cfg.bottleneck_bw_bps == mbps(20)
    assert cfg.flows_per_node == 1


def test_unknown_engine_is_a_scenario_error():
    with pytest.raises(ScenarioError, match="unknown backend"):
        compile_scenario(_cell(), "ns3")


def test_compile_is_pure():
    sc = _cell()
    assert compile_scenario(sc, "fluid").to_dict() == compile_scenario(sc, "fluid").to_dict()
    assert sc == _cell()  # the scenario itself is untouched


def test_run_scenario_executes_the_chosen_backend():
    result = run_scenario(_cell(), "fluid")
    assert result.engine == "fluid"
    assert 0.5 <= result.jain_index <= 1.0
    assert result.config == compile_scenario(_cell(), "fluid").to_dict()
