"""Unit tests for fluid AQM drop laws."""

import numpy as np
import pytest

from repro.fluid.aqm_rules import (
    FluidFifo,
    FluidFqCodel,
    FluidRed,
    make_fluid_aqm,
    waterfill,
)


def test_waterfill_no_contention():
    supply = np.array([1.0, 2.0, 3.0])
    out = waterfill(supply, 10.0)
    assert np.allclose(out, supply)


def test_waterfill_equal_split():
    supply = np.array([10.0, 10.0, 10.0])
    out = waterfill(supply, 9.0)
    assert np.allclose(out, 3.0)


def test_waterfill_maxmin_fairness():
    supply = np.array([1.0, 5.0, 10.0])
    out = waterfill(supply, 9.0)
    # Small demand fully served; remainder split equally.
    assert out[0] == pytest.approx(1.0)
    assert out[1] == pytest.approx(4.0)
    assert out[2] == pytest.approx(4.0)
    assert out.sum() == pytest.approx(9.0)


def test_waterfill_conserves_capacity():
    rng = np.random.default_rng(0)
    for _ in range(20):
        supply = rng.uniform(0, 10, size=8)
        cap = rng.uniform(1, 40)
        out = waterfill(supply, cap)
        assert np.all(out <= supply + 1e-9)
        assert out.sum() <= max(cap, 0) + 1e-9


def test_fifo_serves_up_to_capacity():
    q = FluidFifo(limit_pkts=100, capacity_pps=1000, n_flows=2)
    arrivals = np.array([30.0, 10.0])
    delivered, dropped = q.step(arrivals, dt=0.01, now_s=0.0)  # cap 10 pkts
    assert delivered.sum() == pytest.approx(10.0)
    assert dropped.sum() == 0.0
    assert q.backlog.sum() == pytest.approx(30.0)


def test_fifo_tail_drops_over_limit():
    q = FluidFifo(limit_pkts=20, capacity_pps=1000, n_flows=2)
    arrivals = np.array([40.0, 0.0])
    delivered, dropped = q.step(arrivals, dt=0.01, now_s=0.0)
    assert q.backlog.sum() == pytest.approx(20.0)
    assert dropped[0] == pytest.approx(10.0)  # 40 - 10 served - 20 queued
    assert dropped[1] == 0.0


def test_fifo_processor_sharing_by_backlog():
    q = FluidFifo(limit_pkts=1000, capacity_pps=1000, n_flows=2)
    q.backlog = np.array([30.0, 10.0])
    delivered, _ = q.step(np.zeros(2), dt=0.01, now_s=0.0)
    assert delivered[0] / delivered[1] == pytest.approx(3.0)


def test_red_drops_grow_with_average_queue():
    rng = np.random.default_rng(2)
    q = FluidRed(limit_pkts=1000, capacity_pps=100, n_flows=1, rng=rng,
                 min_th=10, max_th=50, max_p=0.5)
    total_dropped_low = 0.0
    # Push hard: queue builds past min_th, drops must start.
    for i in range(200):
        _, dropped = q.step(np.array([5.0]), dt=0.01, now_s=i * 0.01)
        total_dropped_low += dropped.sum()
    assert q.avg > 10
    assert total_dropped_low > 0


def test_red_no_drops_below_min_th():
    rng = np.random.default_rng(2)
    q = FluidRed(limit_pkts=1000, capacity_pps=1000, n_flows=1, rng=rng,
                 min_th=100, max_th=500)
    for i in range(100):
        _, dropped = q.step(np.array([5.0]), dt=0.01, now_s=i * 0.01)
        assert dropped.sum() == 0.0


def test_fq_codel_equal_service_for_backlogged_flows():
    q = FluidFqCodel(limit_pkts=10_000, capacity_pps=1000, n_flows=2)
    q.backlog = np.array([500.0, 500.0])
    delivered, _ = q.step(np.zeros(2), dt=0.1, now_s=0.0)
    assert delivered[0] == pytest.approx(delivered[1])


def test_fq_codel_isolates_aggressive_flow():
    """An overloading flow cannot crowd out a modest one."""
    q = FluidFqCodel(limit_pkts=10_000, capacity_pps=1000, n_flows=2)
    served = np.zeros(2)
    for i in range(300):
        arrivals = np.array([20.0, 4.0])  # flow0 wants 2000 pps, flow1 400 pps
        d, _ = q.step(arrivals, dt=0.01, now_s=i * 0.01)
        served += d
    # Flow 1 gets essentially its full demand.
    assert served[1] == pytest.approx(300 * 4.0, rel=0.1)


def test_fq_codel_drop_rate_escalates_to_match_overload():
    """CoDel's sqrt control law ramps drops until they absorb the excess.

    A persistent 1.5x overload needs ~500 pps of drops; the escalation
    reaches that within ~10 s, after which the backlog stops growing.
    """
    q = FluidFqCodel(limit_pkts=1_000_000, capacity_pps=1000, n_flows=1)
    backlog_at = {}
    drops = 0.0
    drops_late = 0.0
    for i in range(2000):  # 20 s
        _, d = q.step(np.array([15.0]), dt=0.01, now_s=i * 0.01)
        drops += float(d.sum())
        if i >= 1500:
            drops_late += float(d.sum())
        if i in (1000, 1999):
            backlog_at[i] = float(q.backlog[0])
    assert drops > 0
    # Late drop rate approaches the 500 pps excess.
    assert drops_late / 5.0 > 250.0
    # Queue growth has (nearly) stopped.
    growth = backlog_at[1999] - backlog_at[1000]
    assert growth < 0.2 * backlog_at[1000]


def test_fq_codel_memory_limit():
    q = FluidFqCodel(limit_pkts=50, capacity_pps=10, n_flows=2)
    q.step(np.array([100.0, 1.0]), dt=0.01, now_s=0.0)
    assert q.backlog.sum() <= 50 + 1e-9
    assert q.backlog[1] > 0  # thin flow survives


def test_factory():
    rng = np.random.default_rng(0)
    assert isinstance(make_fluid_aqm("fifo", 10, 10, 1), FluidFifo)
    assert isinstance(make_fluid_aqm("red", 10, 10, 1, rng=rng), FluidRed)
    assert isinstance(make_fluid_aqm("fq_codel", 10, 10, 1), FluidFqCodel)
    with pytest.raises(ValueError):
        make_fluid_aqm("red", 10, 10, 1)  # no rng
    with pytest.raises(ValueError):
        make_fluid_aqm("nope", 10, 10, 1)


def test_validation():
    with pytest.raises(ValueError):
        FluidFifo(0, 10, 1)
    with pytest.raises(ValueError):
        FluidFifo(10, 0, 1)
    with pytest.raises(ValueError):
        FluidFifo(10, 10, 0)
