"""Unit tests for fluid CCA rules."""

import math

import numpy as np
import pytest

from repro.fluid.cca_rules import (
    FluidBbrV1,
    FluidBbrV2,
    FluidCubic,
    FluidHTcp,
    FluidReno,
    RoundInfo,
    make_fluid_cca,
)


def info(now=1.0, rtt=0.05, base=0.05, delivered=100, lost=0, rate=1000.0, inflight=50):
    return RoundInfo(now, rtt, base, delivered, lost, rate, inflight)


def test_factory_and_aliases():
    assert isinstance(make_fluid_cca("reno"), FluidReno)
    assert isinstance(make_fluid_cca("bbr"), FluidBbrV1)
    assert isinstance(make_fluid_cca("bbrv2"), FluidBbrV2)
    with pytest.raises(ValueError):
        make_fluid_cca("vegas")


def test_reno_slow_start_doubles():
    r = FluidReno()
    start = r.cwnd
    r.round_update(info())
    assert r.cwnd == 2 * start


def test_reno_additive_increase_after_ssthresh():
    r = FluidReno()
    r.ssthresh = 10.0
    r.cwnd = 20.0
    r.round_update(info())
    assert r.cwnd == 21.0


def test_reno_halves_on_loss():
    r = FluidReno()
    r.cwnd = 40.0
    r.round_update(info(lost=5))
    assert r.cwnd == 20.0


def test_cubic_loss_cut_and_regrowth():
    c = FluidCubic()
    c.cwnd = 100.0
    c.ssthresh = 100.0
    c.round_update(info(now=1.0, lost=3))
    assert c.cwnd == pytest.approx(70.0)
    before = c.cwnd
    t = 1.0
    for i in range(40):
        t += 0.05
        c.round_update(info(now=t))
    assert c.cwnd > before
    # K = cbrt(0.3*100/0.4) ~ 4.2 s: within 2 s we're still below w_max.
    assert c.cwnd <= 101.0


def test_cubic_hystart_exit():
    c = FluidCubic()
    c.cwnd = 64.0
    # Queueing delay far above base RTT.
    c.round_update(info(rtt=0.09, base=0.05))
    assert c.ssthresh == 64.0


def test_htcp_alpha_time_scaling():
    h = FluidHTcp()
    h.ssthresh = 1.0
    h.cwnd = 10.0
    h.last_congestion_s = 0.0
    h.round_update(info(now=0.5))
    small = h.cwnd - 10.0
    h2 = FluidHTcp()
    h2.ssthresh = 1.0
    h2.cwnd = 10.0
    h2.last_congestion_s = 0.0
    h2.round_update(info(now=8.0))
    big = h2.cwnd - 10.0
    assert big > small


def test_htcp_adaptive_beta():
    h = FluidHTcp()
    h.cwnd = 100.0
    h.ssthresh = 1.0
    # Two stable loss epochs arm the mode switch; the third uses the ratio.
    for t in (1.0, 2.0):
        h.round_update(info(now=t, rtt=0.05, rate=1000.0))
        h.round_update(info(now=t + 0.1, rtt=0.05, lost=2, rate=1000.0))
    h.round_update(info(now=3.0, rtt=0.05, rate=1000.0))
    h.round_update(info(now=3.1, rtt=0.08, rate=1000.0))
    h.round_update(info(now=3.2, rtt=0.07, lost=2, rate=1000.0))
    assert h.beta == pytest.approx(0.05 / 0.08)


def test_htcp_fluid_bandwidth_switch():
    h = FluidHTcp()
    h.cwnd = 100.0
    h.ssthresh = 1.0
    for t in (1.0, 2.0, 3.0):
        h.round_update(info(now=t, rtt=0.05, rate=1000.0))
        h.round_update(info(now=t + 0.1, rtt=0.07, lost=2, rate=1000.0))
    assert h.beta == pytest.approx(0.05 / 0.07)
    # Bandwidth halves -> deep cut.
    h.round_update(info(now=4.0, rtt=0.05, rate=400.0))
    h.round_update(info(now=4.1, rtt=0.06, lost=2, rate=400.0))
    assert h.beta == pytest.approx(0.5)


def test_bbrv1_startup_exit_and_rate():
    b = FluidBbrV1(np.random.default_rng(0))
    t = 0.1
    for i in range(10):
        b.round_update(info(now=t, rate=1000.0, inflight=50))
        t += 0.05
    assert b.state in ("DRAIN", "PROBE_BW")
    b.round_update(info(now=t, rate=1000.0, inflight=10))
    assert b.state == "PROBE_BW"
    assert b.pacing_pps is not None
    assert b.inflight_cap == pytest.approx(2.0 * 1000.0 * b.min_rtt_s, rel=0.01)


def test_bbrv1_collapse_resets_to_startup():
    b = FluidBbrV1(np.random.default_rng(0))
    b.state = "PROBE_BW"
    b.bw_filter.update(5000.0)
    b.on_rto_like_collapse(10.0)
    assert b.state == "STARTUP"
    assert b.bw_filter.get() == b.rate_floor_pps


def test_bbrv2_loss_threshold_sets_inflight_hi():
    b = FluidBbrV2(np.random.default_rng(0))
    t = 0.1
    for i in range(10):
        b.round_update(info(now=t, rate=1000.0, inflight=50))
        t += 0.05
    assert b.inflight_hi == float("inf")
    b.round_update(info(now=t, delivered=90, lost=10, rate=1000.0, inflight=80))
    assert math.isfinite(b.inflight_hi)
    assert b.inflight_hi <= 80


def test_bbrv2_below_threshold_no_reaction():
    b = FluidBbrV2(np.random.default_rng(0))
    t = 0.1
    for i in range(10):
        b.round_update(info(now=t, rate=1000.0, inflight=50))
        t += 0.05
    b.round_update(info(now=t, delivered=99, lost=1, rate=1000.0, inflight=80))
    assert b.inflight_hi == float("inf")


def test_loss_rate_property():
    assert info(delivered=98, lost=2).loss_rate == pytest.approx(0.02)
    assert info(delivered=0, lost=0).loss_rate == 0.0
