"""Cross-validation: the batched fluid backend against the scalar oracle.

The batched integrator (:mod:`repro.fluid.batched`) is a performance
backend, not a second model: in unpadded mode it must reproduce the
scalar :class:`repro.fluid.model.FluidSimulation` results *bit for bit* —
every float in the result dict, not approximately.  These tests sweep
every CCA x AQM pair through both paths and compare the full normalized
``ExperimentResult`` dicts with ``==``; any divergence (a different drop
round, one ulp in a throughput) is a failure.

Normalization removes only fields that legitimately differ between the
two paths: ``wallclock_s`` (host timing) and the ``engine`` tag (the
whole point is running the same config on both engines).
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.fluid.batched import run_fluid_batch, run_fluid_single
from repro.fluid.runner import run_fluid_experiment

CCAS = ("reno", "cubic", "htcp", "bbrv1", "bbrv2")
AQMS = ("fifo", "red", "fq_codel", "pie")


def _config(cca: str, aqm: str, **overrides) -> ExperimentConfig:
    params = dict(
        cca_pair=(cca, "cubic"),
        aqm=aqm,
        buffer_bdp=1.0,
        bottleneck_bw_bps=100e6,
        duration_s=8.0,
        warmup_s=2.0,
        mss_bytes=8900,
        seed=1234,
        flows_per_node=3,
        engine="fluid_batched",
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def _norm(result) -> dict:
    d = result.to_dict()
    d.pop("wallclock_s", None)
    d.pop("engine", None)
    d["config"].pop("engine", None)
    return d


@pytest.mark.parametrize("aqm", AQMS)
def test_batched_matches_scalar_oracle(aqm):
    """One shard of all five CCAs vs the scalar oracle, bitwise, per AQM."""
    configs = [_config(cca, aqm) for cca in CCAS]
    batched = run_fluid_batch(configs)
    assert len(batched) == len(configs)
    for config, batch_result in zip(configs, batched):
        scalar = run_fluid_experiment(config)
        assert batch_result.engine == "fluid_batched"
        assert _norm(batch_result) == _norm(scalar), (
            f"batched != scalar for {config.cca_pair} over {aqm}"
        )


def test_whole_grid_single_batch():
    """All 20 CCA x AQM cells through ONE run_fluid_batch call.

    Exercises the shard planner (four shards, one per AQM family) and the
    result re-ordering: each member must be bit-identical to the same
    config run as a one-config shard.  Together with the per-AQM oracle
    tests above this closes the loop grid -> shard -> single -> scalar.
    """
    configs = [_config(cca, aqm) for cca in CCAS for aqm in AQMS]
    batched = run_fluid_batch(configs)
    assert len(batched) == len(configs)
    for config, batch_result in zip(configs, batched):
        single = run_fluid_single(config)
        assert _norm(batch_result) == _norm(single), (
            f"grid batch != single shard for {config.cca_pair} over {config.aqm}"
        )


def test_batched_result_is_tagged():
    """The engine tag distinguishes the backend; everything else matches."""
    config = _config("cubic", "fifo", duration_s=4.0, warmup_s=1.0)
    result = run_fluid_single(config)
    assert result.engine == "fluid_batched"
    assert result.config["engine"] == "fluid_batched"
