"""Cross-validation: the batched fluid backend against the scalar oracle.

The batched integrator (:mod:`repro.fluid.batched`) is a performance
backend, not a second model: in unpadded mode it must reproduce the
scalar :class:`repro.fluid.model.FluidSimulation` results *bit for bit* —
every float in the result dict, not approximately.  These tests sweep
every CCA x AQM pair through both paths and compare the full normalized
``ExperimentResult`` dicts with ``==``; any divergence (a different drop
round, one ulp in a throughput) is a failure.

Normalization removes only fields that legitimately differ between the
two paths: ``wallclock_s`` (host timing) and the ``engine`` tag (the
whole point is running the same config on both engines).
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.fluid.batched import run_fluid_batch, run_fluid_single
from repro.fluid.runner import run_fluid_experiment

CCAS = ("reno", "cubic", "htcp", "bbrv1", "bbrv2")
AQMS = ("fifo", "red", "fq_codel", "pie")


def _config(cca: str, aqm: str, **overrides) -> ExperimentConfig:
    params = dict(
        cca_pair=(cca, "cubic"),
        aqm=aqm,
        buffer_bdp=1.0,
        bottleneck_bw_bps=100e6,
        duration_s=8.0,
        warmup_s=2.0,
        mss_bytes=8900,
        seed=1234,
        flows_per_node=3,
        engine="fluid_batched",
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def _norm(result) -> dict:
    d = result.to_dict()
    d.pop("wallclock_s", None)
    d.pop("engine", None)
    d["config"].pop("engine", None)
    return d


@pytest.mark.parametrize("aqm", AQMS)
def test_batched_matches_scalar_oracle(aqm):
    """One shard of all five CCAs vs the scalar oracle, bitwise, per AQM."""
    configs = [_config(cca, aqm) for cca in CCAS]
    batched = run_fluid_batch(configs)
    assert len(batched) == len(configs)
    for config, batch_result in zip(configs, batched):
        scalar = run_fluid_experiment(config)
        assert batch_result.engine == "fluid_batched"
        assert _norm(batch_result) == _norm(scalar), (
            f"batched != scalar for {config.cca_pair} over {aqm}"
        )


def test_whole_grid_single_batch():
    """All 20 CCA x AQM cells through ONE run_fluid_batch call.

    Exercises the shard planner (four shards, one per AQM family) and the
    result re-ordering: each member must be bit-identical to the same
    config run as a one-config shard.  Together with the per-AQM oracle
    tests above this closes the loop grid -> shard -> single -> scalar.
    """
    configs = [_config(cca, aqm) for cca in CCAS for aqm in AQMS]
    batched = run_fluid_batch(configs)
    assert len(batched) == len(configs)
    for config, batch_result in zip(configs, batched):
        single = run_fluid_single(config)
        assert _norm(batch_result) == _norm(single), (
            f"grid batch != single shard for {config.cca_pair} over {config.aqm}"
        )


def test_batched_result_is_tagged():
    """The engine tag distinguishes the backend; everything else matches."""
    config = _config("cubic", "fifo", duration_s=4.0, warmup_s=1.0)
    result = run_fluid_single(config)
    assert result.engine == "fluid_batched"
    assert result.config["engine"] == "fluid_batched"


#: Fairness-series fields that must agree bitwise between the engines
#: (``engine`` differs by construction — it is the config's own tag).
FAIRNESS_SERIES_KEYS = (
    "t_s", "jain", "flow_jain", "phi", "queue_pkts", "sender_bps",
    "samples", "interval_s", "convergence_time_s", "oscillations",
    "sync_loss_t_s",
)


@pytest.mark.parametrize("cca", ("cubic", "bbrv1"))
def test_fairness_series_bitwise_scalar_vs_batched(cca):
    """The fairness probe's series are bit-for-bit equal across backends.

    The batched hook samples row slices of the stacked delivery/backlog
    arrays; the scalar hook samples the oracle's ``(n_flows,)`` arrays.
    Bit-identity of the underlying state plus the shared pure-Python
    probe math means every recorded float must match exactly — ``==`` on
    the raw lists, no tolerance.
    """
    scalar_cfg = _config(cca, "fifo", engine="fluid", fairness_interval_s=1.0)
    batched_cfg = _config(cca, "fifo", fairness_interval_s=1.0)
    scalar = run_fluid_experiment(scalar_cfg).extra["fairness"]
    single = run_fluid_single(batched_cfg).extra["fairness"]
    assert scalar["samples"] > 0
    for key in FAIRNESS_SERIES_KEYS:
        assert scalar[key] == single[key], f"fairness[{key}] diverges"


def test_fairness_series_survive_shared_shard():
    """Probes attached to a multi-config shard equal their solo runs.

    Batch-composition invariance must extend to the sampling hook: a
    config's fairness series cannot depend on its shard-mates.
    """
    configs = [
        _config(cca, "fifo", fairness_interval_s=1.0)
        for cca in ("reno", "cubic", "htcp")
    ]
    batched = run_fluid_batch(configs)
    for config, shard_result in zip(configs, batched):
        solo = run_fluid_single(config)
        assert (
            shard_result.extra["fairness"] == solo.extra["fairness"]
        ), f"shard fairness != solo for {config.cca_pair}"


def test_unsampled_batched_results_unchanged_by_knob():
    """fairness_interval_s=None is byte-compatible with the pre-knob world."""
    config = _config("cubic", "fifo", duration_s=4.0, warmup_s=1.0)
    result = run_fluid_single(config)
    assert "fairness" not in result.extra
    assert "fairness_interval_s" not in result.config
