"""Unit tests for the fluid integrator."""

import numpy as np
import pytest

from repro.fluid.aqm_rules import FluidFifo
from repro.fluid.cca_rules import FluidReno, make_fluid_cca
from repro.fluid.model import FluidSimulation


def _sim(n=2, capacity=1000.0, rtt=0.05, limit=100.0, flows=None, starts=None):
    flows = flows or [FluidReno() for _ in range(n)]
    aqm = FluidFifo(limit_pkts=limit, capacity_pps=capacity, n_flows=len(flows))
    return FluidSimulation(
        capacity_pps=capacity, base_rtt_s=rtt, aqm=aqm, flows=flows,
        start_times_s=starts,
    )


def test_single_flow_saturates_link():
    sim = _sim(n=1)
    sim.run(20.0)
    util = sim.delivered_total[0] / (1000.0 * 20.0)
    assert util > 0.85


def test_two_reno_flows_fair_share():
    sim = _sim(n=2)
    sim.run(30.0)
    a, b = sim.delivered_total
    assert a + b > 0.85 * 1000 * 30
    assert min(a, b) / max(a, b) > 0.6


def test_delivery_never_exceeds_capacity():
    sim = _sim(n=3)
    sim.run(10.0)
    assert sim.delivered_total.sum() <= 1000.0 * 10.0 * 1.001


def test_start_times_stagger_flows():
    sim = _sim(n=2, starts=[0.0, 5.0])
    sim.run(4.0)
    assert sim.delivered_total[0] > 0
    assert sim.delivered_total[1] == 0.0
    sim.run(6.0)
    assert sim.delivered_total[1] > 0


def test_drops_accounted_under_small_buffer():
    sim = _sim(n=2, limit=5.0)
    sim.run(20.0)
    assert sim.dropped_total.sum() > 0


def test_flow_count_mismatch_rejected():
    aqm = FluidFifo(10, 1000, 2)
    with pytest.raises(ValueError):
        FluidSimulation(capacity_pps=1000, base_rtt_s=0.05, aqm=aqm, flows=[FluidReno()])


def test_parameter_validation():
    aqm = FluidFifo(10, 1000, 1)
    with pytest.raises(ValueError):
        FluidSimulation(capacity_pps=0, base_rtt_s=0.05, aqm=aqm, flows=[FluidReno()])
    with pytest.raises(ValueError):
        FluidSimulation(capacity_pps=10, base_rtt_s=0, aqm=aqm, flows=[FluidReno()])
    with pytest.raises(ValueError):
        FluidSimulation(capacity_pps=10, base_rtt_s=0.05, aqm=aqm, flows=[])
    with pytest.raises(ValueError):
        FluidSimulation(capacity_pps=10, base_rtt_s=0.05, aqm=aqm,
                        flows=[FluidReno()], start_times_s=[0.0, 1.0])


def test_bbr_flow_converges():
    flows = [make_fluid_cca("bbrv1", np.random.default_rng(1))]
    sim = _sim(n=1, flows=flows)
    sim.run(20.0)
    util = sim.delivered_total[0] / (1000.0 * 20.0)
    assert util > 0.7


def test_rounds_advance_with_rtt():
    sim = _sim(n=1)
    sim.run(1.0)
    # ~20 rounds in 1 s at 50 ms RTT (fewer with queueing).
    assert 5 <= sim.flows[0].cwnd  # slow start ran several rounds


def test_measurement_window_excludes_warmup():
    """measured_throughput_pps counts only post-begin_measurement delivery;
    throughput_pps over the full duration dilutes it with warmup."""
    sim = _sim(n=2)
    sim.run(5.0)
    warmup_delivered = sim.delivered_total.copy()
    sim.begin_measurement()
    t0 = sim.now
    assert np.array_equal(sim.measured_delivered, np.zeros(2))
    sim.run(10.0)

    window = sim.measured_delivered
    assert np.array_equal(window, sim.delivered_total - warmup_delivered)
    assert np.array_equal(sim.measured_throughput_pps(), window / (sim.now - t0))
    # Slow start means the first 5 s deliver less than steady state, so
    # full-duration averaging understates the measured-window rate.
    assert sim.throughput_pps(15.0).sum() < sim.measured_throughput_pps().sum()


def test_measurement_window_defaults_to_whole_run():
    """Without begin_measurement, measured_* falls back to run totals."""
    sim = _sim(n=1)
    sim.run(3.0)
    assert np.array_equal(sim.measured_delivered, sim.delivered_total)
    assert np.array_equal(sim.measured_throughput_pps(), sim.delivered_total / sim.now)
