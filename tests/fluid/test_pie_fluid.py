"""Unit tests for the fluid PIE controller."""

import numpy as np
import pytest

from repro.fluid.aqm_rules import FluidPie, make_fluid_aqm


def _pie(capacity=1000.0, limit=10_000.0):
    return FluidPie(limit, capacity, 1, np.random.default_rng(2))


def test_no_drops_when_underloaded():
    q = _pie()
    total = 0.0
    for i in range(500):
        _, dropped = q.step(np.array([5.0]), dt=0.01, now_s=i * 0.01)  # 500 pps vs 1000
        total += dropped.sum()
    assert total == 0.0
    assert q.drop_prob == pytest.approx(0.0, abs=1e-9)


def test_overload_raises_probability_and_drops():
    q = _pie()
    total = 0.0
    for i in range(2000):
        _, dropped = q.step(np.array([20.0]), dt=0.01, now_s=i * 0.01)  # 2x capacity
        total += dropped.sum()
    assert q.drop_prob > 0.0
    assert total > 0.0


def test_probability_decays_when_idle():
    q = _pie()
    for i in range(2000):
        q.step(np.array([20.0]), dt=0.01, now_s=i * 0.01)
    high = q.drop_prob
    for i in range(3000):
        q.step(np.array([0.0]), dt=0.01, now_s=20 + i * 0.01)
    assert q.drop_prob < high / 2


def test_controller_bounds_queue_delay():
    """PIE holds the standing queue near its 15 ms target under overload."""
    q = _pie(capacity=1000.0, limit=1_000_000.0)
    for i in range(6000):  # 60 s
        q.step(np.array([15.0]), dt=0.01, now_s=i * 0.01)
    sojourn_s = q.backlog.sum() / 1000.0
    assert sojourn_s < 0.2  # far below the (huge) hard limit


def test_factory_and_validation():
    assert isinstance(
        make_fluid_aqm("pie", 100, 100, 2, rng=np.random.default_rng(0)), FluidPie
    )
    with pytest.raises(ValueError):
        make_fluid_aqm("pie", 100, 100, 2)
