"""Unit tests for the fluid experiment runner."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.fluid.runner import run_fluid_experiment
from repro.units import mbps


def _cfg(**kw):
    base = dict(
        cca_pair=("cubic", "cubic"),
        aqm="fifo",
        buffer_bdp=2.0,
        bottleneck_bw_bps=mbps(100),
        duration_s=20.0,
        engine="fluid",
        seed=5,
    )
    base.update(kw)
    return ExperimentConfig(**base)


def test_result_structure():
    r = run_fluid_experiment(_cfg())
    assert r.engine == "fluid"
    assert len(r.senders) == 2
    assert r.senders[0].node == "client1"
    assert r.senders[1].node == "client2"
    assert len(r.flows) == 2  # Table 2: 1 flow/node at 100 Mbps
    assert 0 < r.link_utilization <= 1.05
    assert 0.5 <= r.jain_index <= 1.0


def test_flow_plan_scales_with_bandwidth():
    r = run_fluid_experiment(_cfg(bottleneck_bw_bps=mbps(500), duration_s=10.0))
    assert len(r.flows) == 10  # 5 processes/node x 1 stream


def test_deterministic_given_seed():
    a = run_fluid_experiment(_cfg())
    b = run_fluid_experiment(_cfg())
    assert a.jain_index == b.jain_index
    assert a.total_retransmits == b.total_retransmits


def test_different_seeds_differ():
    a = run_fluid_experiment(_cfg(seed=1, aqm="red"))
    b = run_fluid_experiment(_cfg(seed=2, aqm="red"))
    # Start jitter, arrival noise, and the RED lottery all differ.
    assert (a.total_throughput_bps, a.jain_index) != (b.total_throughput_bps, b.jain_index)


def test_intra_cca_roughly_fair():
    r = run_fluid_experiment(_cfg(duration_s=30.0))
    assert r.jain_index > 0.9


def test_utilization_high_with_fifo():
    r = run_fluid_experiment(_cfg(duration_s=30.0))
    assert r.link_utilization > 0.85


def test_flows_per_node_override():
    r = run_fluid_experiment(_cfg(flows_per_node=3, duration_s=5.0))
    assert len(r.flows) == 6
