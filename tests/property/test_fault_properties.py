"""Chaos property tests: packet conservation under faults.

Two layers of the same invariant:

- every queue discipline conserves packets when administrative flushes
  are interleaved with random enqueue/dequeue traffic
  (``enqueued == dequeued + dropped_dequeue + queued``), and
- a link conserves packets under every fault kind with random loss
  (``tx == delivered + lost + dropped_down + in_flight``), driven through
  the real :class:`~repro.faults.schedule.FaultSchedule` machinery.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aqm.registry import make_aqm
from repro.faults.schedule import FaultSchedule, FaultTarget
from repro.faults.spec import FAULT_KINDS, FaultSpec
from repro.net.packet import make_data_packet
from repro.net.topology import Network
from repro.units import milliseconds

AQM_NAMES = ("fifo", "red", "codel", "fq_codel", "pie")

# (flow, size, op) streams; op 0 = enqueue, 1 = dequeue, 2 = flush.
OPS = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=64, max_value=9000),
        st.integers(min_value=0, max_value=2),
    ),
    max_size=120,
)


def _qdisc(name):
    return make_aqm(name, 60_000, rng=np.random.default_rng(7))


@given(st.sampled_from(AQM_NAMES), OPS)
@settings(max_examples=60, deadline=None)
def test_qdisc_conservation_with_flushes(name, ops):
    q = _qdisc(name)
    now = 0
    seq = 0
    for flow, size, op in ops:
        now += 1_000_000
        if op == 0:
            seq += 1
            q.enqueue(make_data_packet(flow, "a", "b", seq=seq, mss=size, now=now), now)
        elif op == 1:
            q.dequeue(now)
        else:
            q.flush(now)
    stats = q.stats
    # Every accepted packet is either out (dequeued), dropped after
    # acceptance (dequeue drops, incl. flushes), or still queued.
    assert stats.enqueued == stats.dequeued + stats.dropped_dequeue + q.packets_queued
    assert stats.flushed <= stats.dropped_dequeue
    assert q.packets_queued >= 0 and q.bytes_queued >= 0
    # A final flush always empties the queue exactly.
    drained = q.flush(now + 1)
    assert drained >= 0
    assert q.packets_queued == 0 and q.bytes_queued == 0
    assert stats.enqueued == stats.dequeued + stats.dropped_dequeue


def _spec_for(kind, at_s, duration_s, magnitude):
    if kind == "link_flap":
        return FaultSpec(kind=kind, at_s=at_s, duration_s=duration_s)
    if kind == "loss_burst":
        return FaultSpec(kind=kind, at_s=at_s, duration_s=duration_s,
                         loss_rate=0.05 + 0.9 * magnitude)
    if kind == "rate_drop":
        return FaultSpec(kind=kind, at_s=at_s, duration_s=duration_s,
                         rate_factor=0.05 + 0.95 * magnitude)
    if kind == "delay_spike":
        return FaultSpec(kind=kind, at_s=at_s, duration_s=duration_s,
                         delay_factor=1.0 + 9.0 * magnitude)
    return FaultSpec(kind=kind, at_s=at_s)  # queue_flush


@given(
    kind=st.sampled_from(FAULT_KINDS),
    at_ms=st.integers(min_value=0, max_value=40),
    dur_ms=st.integers(min_value=1, max_value=40),
    magnitude=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    base_loss=st.floats(min_value=0.0, max_value=0.4, allow_nan=False),
    npackets=st.integers(min_value=1, max_value=120),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=120, deadline=None)
def test_link_conservation_under_every_fault_kind(
    kind, at_ms, dur_ms, magnitude, base_loss, npackets, seed
):
    net = Network(seed=seed)
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    i1 = h1.add_interface("eth0", None)
    i2 = h2.add_interface("eth0", None)
    net.connect(i1, i2, rate_bps=2e6, delay_ns=milliseconds(3))
    link = i1.link
    if base_loss > 0:
        link.set_loss_rate(base_loss, rng=net.rng.stream("base-loss"))

    spec = _spec_for(kind, at_ms / 1000.0, dur_ms / 1000.0, magnitude)
    sched = FaultSchedule.compile([spec], rng=net.rng.stream("faults"))
    sched.arm_with(
        net.sim, lambda target: FaultTarget(link, i1), rng_streams=net.rng
    )

    send_rng = np.random.default_rng(seed)
    t = 0
    for i in range(npackets):
        t += int(send_rng.integers(10_000, 2_000_000))
        net.sim.schedule(t, i1.send, make_data_packet(1, "a", "b", seq=i, mss=1500, now=0))
    net.run()

    assert link.packets_in_flight == 0  # the sim ran to quiescence
    assert link.packets_tx == (
        link.packets_delivered + link.packets_lost + link.packets_dropped_down
    )
    # The qdisc balances too, even when the fault flushed it.
    stats = i1.qdisc.stats
    assert stats.enqueued == stats.dequeued + stats.dropped_dequeue + i1.qdisc.packets_queued
    # Everything the qdisc handed to the link was transmitted.
    assert link.packets_tx == stats.dequeued
    assert sched.injected == len(sched.applied) <= len(sched.events)
