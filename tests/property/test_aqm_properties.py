"""Property-based tests over the AQM disciplines."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aqm.codel import CoDelController
from repro.aqm.fifo import FifoQueue
from repro.aqm.fq_codel import FqCoDelQueue
from repro.aqm.pie import PieQueue
from repro.aqm.red import RedQueue
from repro.net.packet import make_data_packet
from repro.units import milliseconds

# (flow, size, enqueue-or-dequeue) operation streams
OPS = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=5),      # flow id
        st.integers(min_value=64, max_value=9000),  # size
        st.booleans(),                              # True = enqueue
    ),
    max_size=150,
)


def _drive(q, ops):
    """Apply an op stream; return (enqueued_accepted, dequeued)."""
    accepted = 0
    dequeued = 0
    now = 0
    seq = 0
    for flow, size, is_enq in ops:
        now += 1_000_000  # 1 ms per op
        if is_enq:
            seq += 1
            pkt = make_data_packet(flow, "a", "b", seq=seq, mss=size, now=now)
            if q.enqueue(pkt, now):
                accepted += 1
        else:
            if q.dequeue(now) is not None:
                dequeued += 1
    return accepted, dequeued


@given(OPS, st.integers(min_value=2_000, max_value=200_000))
@settings(max_examples=60)
def test_fifo_conservation_under_random_ops(ops, limit):
    q = FifoQueue(limit)
    accepted, dequeued = _drive(q, ops)
    # accepted = dequeued + still queued (+ nothing else).
    assert accepted == dequeued + q.packets_queued
    assert q.bytes_queued <= limit
    assert q.bytes_queued >= 0 and q.packets_queued >= 0


@given(OPS, st.integers(min_value=20_000, max_value=500_000))
@settings(max_examples=40)
def test_fq_codel_conservation_under_random_ops(ops, limit):
    q = FqCoDelQueue(limit, np.random.default_rng(0), quantum_bytes=1500)
    accepted, dequeued = _drive(q, ops)
    # CoDel/limit drops at dequeue/enqueue are in stats; everything balances.
    assert accepted == dequeued + q.packets_queued + q.stats.dropped_dequeue + (
        q.stats.dropped_enqueue - (len([o for o in ops if o[2]]) - accepted)
    )
    assert q.bytes_queued <= limit
    assert q.packets_queued >= 0


@given(OPS)
@settings(max_examples=40)
def test_red_never_exceeds_limit(ops):
    q = RedQueue(50_000, np.random.default_rng(3), avpkt=1000)
    _drive(q, ops)
    assert 0 <= q.bytes_queued <= 50_000
    assert q.avg >= 0


@given(OPS)
@settings(max_examples=40)
def test_pie_never_exceeds_limit_and_prob_bounded(ops):
    q = PieQueue(50_000, np.random.default_rng(3))
    _drive(q, ops)
    assert 0 <= q.bytes_queued <= 50_000
    assert 0.0 <= q.drop_prob <= 1.0


@given(st.integers(min_value=1, max_value=10_000))
def test_codel_control_law_monotone_in_count(count):
    c = CoDelController()
    t = 10**9
    gap_now = c.control_law(t, count) - t
    gap_next = c.control_law(t, count + 1) - t
    assert gap_next <= gap_now
    assert gap_now >= 0


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=50))
@settings(max_examples=40)
def test_fifo_preserves_order(seqs):
    q = FifoQueue(10**9)
    for i, flow in enumerate(seqs):
        q.enqueue(make_data_packet(flow, "a", "b", seq=i, mss=100, now=0), 0)
    out = []
    while True:
        pkt = q.dequeue(0)
        if pkt is None:
            break
        out.append(pkt.seq)
    assert out == sorted(out)
