"""Property-based tests over the batched fluid backend.

Four invariants the batched integrator promises:

- **Batch-composition invariance** — a config's result is a function of
  the config alone, never of its shard-mates or its position in the
  batch (the campaign fast path reorders and regroups freely).
- **Padding no-leak** — in ``pad=True`` mode, masked padding lanes never
  perturb real lanes.  Below numpy's pairwise-sum regrouping threshold
  (rows of < 8 elements stay sequential) the padded run is bit-identical
  to the unpadded one, so the property is testable exactly.
- **Conservation** — per integration step and per config, packets in =
  packets out: ``backlog_before + arrivals == served + dropped +
  backlog_after`` for every batched AQM law.
- **Poisson transform equivalence** — the scalar reference loop
  ``_poisson_small`` and the vectorized ``_poisson_vector`` implement
  the same function, elementwise and bit-for-bit, across the
  small/big-lambda switch.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import ExperimentConfig
from repro.fluid.batched import BatchedFluidSimulation, run_fluid_batch, run_fluid_single
from repro.fluid.noise import LAM_SWITCH, _poisson_small, _poisson_vector

CCAS = ("reno", "cubic", "htcp", "bbrv1", "bbrv2")
AQMS = ("fifo", "red", "fq_codel", "pie")


def _config(cca: str, aqm: str, seed: int, flows_per_node: int = 2,
            duration_s: float = 1.0) -> ExperimentConfig:
    return ExperimentConfig(
        cca_pair=(cca, "cubic"),
        aqm=aqm,
        buffer_bdp=1.0,
        bottleneck_bw_bps=100e6,
        duration_s=duration_s,
        warmup_s=0.0,
        mss_bytes=8900,
        seed=seed,
        flows_per_node=flows_per_node,
        engine="fluid_batched",
    )


def _norm(result) -> dict:
    d = result.to_dict()
    d.pop("wallclock_s", None)
    return d


@settings(max_examples=5, deadline=None)
@given(
    picks=st.lists(
        st.tuples(st.sampled_from(CCAS), st.integers(min_value=1, max_value=10_000)),
        min_size=2, max_size=6, unique=True,
    ),
    aqm=st.sampled_from(AQMS),
    shuffle=st.randoms(use_true_random=False),
)
def test_batch_composition_invariance(picks, aqm, shuffle):
    """alone == in-batch == in-shuffled-batch, bitwise."""
    configs = [_config(cca, aqm, seed) for cca, seed in picks]
    alone = {id(c): _norm(run_fluid_single(c)) for c in configs}

    batched = run_fluid_batch(configs)
    for c, r in zip(configs, batched):
        assert _norm(r) == alone[id(c)]

    shuffled = list(configs)
    shuffle.shuffle(shuffled)
    for c, r in zip(shuffled, run_fluid_batch(shuffled)):
        assert _norm(r) == alone[id(c)]


@settings(max_examples=5, deadline=None)
@given(
    widths=st.lists(st.integers(min_value=1, max_value=3), min_size=2, max_size=5),
    aqm=st.sampled_from(AQMS),
    seed=st.integers(min_value=1, max_value=10_000),
)
def test_padding_never_leaks(widths, aqm, seed):
    """pad=True with heterogeneous widths == each config unpadded.

    Widths are capped at 3 flows per node (rows of <= 6 lanes) so every
    row sum stays below numpy's pairwise regrouping threshold and the
    comparison can be exact — any difference is a genuine leak from a
    padding lane into a real one, not float reassociation.
    """
    configs = [
        _config(CCAS[i % len(CCAS)], aqm, seed + i, flows_per_node=w)
        for i, w in enumerate(widths)
    ]
    padded = run_fluid_batch(configs, pad=True)
    for c, r in zip(configs, padded):
        assert _norm(r) == _norm(run_fluid_single(c)), (
            f"padding leak: {c.cca_pair} over {aqm} at width {c.plan.flows_per_node}"
        )


@settings(max_examples=4, deadline=None)
@given(
    aqm=st.sampled_from(AQMS),
    seed=st.integers(min_value=1, max_value=10_000),
)
def test_step_conservation(aqm, seed):
    """Per step and per config: backlog_in + arrivals == served + dropped + backlog_out."""
    configs = [_config(cca, aqm, seed + i) for i, cca in enumerate(("cubic", "bbrv1", "htcp"))]
    sim = BatchedFluidSimulation(configs)
    aqm_obj = sim.aqm
    orig_step = aqm_obj.step
    worst = [0.0]

    def checked_step(arrivals, dt, now_s):
        before = aqm_obj.backlog.sum(axis=1).copy()
        served, dropped = orig_step(arrivals, dt, now_s)
        after = aqm_obj.backlog.sum(axis=1)
        residual = before + arrivals.sum(axis=1) - served.sum(axis=1) - dropped.sum(axis=1) - after
        worst[0] = max(worst[0], float(np.abs(residual).max()))
        return served, dropped

    aqm_obj.step = checked_step
    sim.run(1.0)
    # Residual is pure float reassociation noise; scale tolerance to the
    # largest per-step packet volume involved.
    scale = max(1.0, float(np.max(aqm_obj.capacity)) * sim.dt)
    assert worst[0] <= 1e-9 * scale, f"conservation violated by {worst[0]} pkts"


@settings(max_examples=50, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=2 * LAM_SWITCH, allow_nan=False),
            st.floats(min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False),
        ),
        min_size=1, max_size=64,
    )
)
def test_poisson_small_equals_vector(pairs):
    """The reference loop and the vector path are the same function, bitwise."""
    lam = np.array([p[0] for p in pairs])
    u = np.array([p[1] for p in pairs])
    a = _poisson_small(lam, u)
    b = _poisson_vector(lam, u)
    assert np.array_equal(a, b), (lam, u, a, b)


def test_poisson_switch_boundary():
    """Exactly LAM_SWITCH uses the exact loop; just above uses the approximation
    — and both paths agree on either side of the boundary."""
    lam = np.array([LAM_SWITCH, np.nextafter(LAM_SWITCH, np.inf), 0.0, 1e-12])
    u = np.array([0.5, 0.5, 0.999, 0.999])
    assert np.array_equal(_poisson_small(lam, u), _poisson_vector(lam, u))
