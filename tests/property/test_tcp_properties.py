"""Property-based tests over the TCP machinery end to end.

The heavyweight invariant: for ANY pattern of data/ACK drops, a finite
transfer over the loopback harness eventually completes, delivers every
byte exactly once, and never violates pipe accounting.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent))

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import LoopbackNet
from repro.cca.reno import Reno
from repro.cca.cubic import Cubic
from repro.units import milliseconds, seconds


@given(
    st.sets(st.integers(min_value=0, max_value=59), max_size=12),
    st.sampled_from([Reno, Cubic]),
)
@settings(max_examples=25, deadline=None)
def test_transfer_completes_under_any_single_drop_pattern(drop_set, cca_cls):
    """Drop any subset of first transmissions: the transfer still finishes."""
    pending = set(drop_set)

    def drop(pkt):
        if pkt.seq in pending and not pkt.is_retx:
            pending.discard(pkt.seq)
            return True
        return False

    net = LoopbackNet(
        cca=cca_cls(), total_segments=60, drop_data=drop,
        one_way_delay_ns=milliseconds(5),
    )
    net.start()
    net.run(seconds(30))
    assert net.sender.done
    assert net.receiver.bytes_received == 60 * 1500
    # Exactly the dropped first-transmissions needed retransmitting
    # (plus possibly a timeout-driven re-send of the tail).
    assert net.sender.retransmits >= len(drop_set)
    assert net.sender.scoreboard.pipe == 0


@given(st.floats(min_value=0.0, max_value=0.3), st.integers(min_value=0, max_value=2**31))
@settings(max_examples=15, deadline=None)
def test_transfer_completes_under_random_loss(loss_rate, seed):
    """Bernoulli data loss at up to 30%: completion and exactly-once delivery."""
    import numpy as np

    rng = np.random.default_rng(seed)

    def drop(pkt):
        return rng.random() < loss_rate

    net = LoopbackNet(
        cca=Reno(), total_segments=40, drop_data=drop,
        one_way_delay_ns=milliseconds(5),
    )
    net.start()
    net.run(seconds(120))
    assert net.sender.done
    assert net.receiver.bytes_received == 40 * 1500


@given(st.integers(min_value=1, max_value=64))
@settings(max_examples=20, deadline=None)
def test_inflight_never_exceeds_window(cwnd):
    from tests.tcp.test_sender import FixedWindow

    net = LoopbackNet(cca=FixedWindow(float(cwnd)), one_way_delay_ns=milliseconds(20))
    worst = {"max": 0}
    original = net.sender._transmit

    def spy(seq, *, is_retx):
        original(seq, is_retx=is_retx)
        worst["max"] = max(worst["max"], net.sender.scoreboard.pipe)

    net.sender._transmit = spy
    net.start()
    net.run(seconds(2))
    assert worst["max"] <= cwnd
