"""Property-based tests on core data structures and invariants."""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.aqm.fifo import FifoQueue
from repro.cca.bbr_common import WindowedMax, WindowedMin
from repro.metrics.fairness import jain_index
from repro.net.packet import make_data_packet
from repro.sim.engine import Simulator
from repro.tcp.intervals import IntervalSet
from repro.tcp.rate_sample import SegmentSendState
from repro.tcp.rtt import MAX_RTO_NS, MIN_RTO_NS, RttEstimator
from repro.fluid.aqm_rules import waterfill


# --- Jain index -------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e12), min_size=1, max_size=20))
def test_jain_bounds(values):
    j = jain_index(values)
    assert 1.0 / len(values) - 1e-9 <= j <= 1.0 + 1e-9


@given(st.lists(st.floats(min_value=1e-6, max_value=1e9), min_size=1, max_size=20),
       st.floats(min_value=1e-6, max_value=1e6))
def test_jain_scale_invariant(values, k):
    assume(all(math.isfinite(v * k) for v in values))
    assert jain_index(values) == pytest.approx(jain_index([v * k for v in values]), rel=1e-9)


@given(st.floats(min_value=1e-3, max_value=1e9), st.integers(min_value=1, max_value=20))
def test_jain_equal_shares_perfect(value, n):
    assert jain_index([value] * n) == pytest.approx(1.0, rel=1e-12)


# --- IntervalSet -------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=200), max_size=100))
def test_intervalset_matches_python_set(values):
    s = IntervalSet()
    ref = set()
    for v in values:
        s.add(v)
        ref.add(v)
    assert s.total == len(ref)
    for v in range(-1, 202):
        assert (v in s) == (v in ref)
    # Ranges are disjoint, sorted, and non-empty.
    prev_end = None
    for start, end in s:
        assert start < end
        if prev_end is not None:
            assert start > prev_end  # coalesced: no touching ranges
        prev_end = end


@given(st.lists(st.tuples(st.integers(0, 100), st.integers(1, 20)), max_size=40))
def test_intervalset_range_inserts(ranges):
    s = IntervalSet()
    ref = set()
    for start, length in ranges:
        s.add_range(start, start + length)
        ref.update(range(start, start + length))
    assert s.total == len(ref)


# --- Scoreboard pipe invariant -------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=60),
    st.lists(st.tuples(st.integers(0, 59), st.integers(1, 10)), max_size=10),
    st.integers(min_value=0, max_value=60),
)
@settings(max_examples=60)
def test_scoreboard_pipe_invariant(n_sent, sack_blocks, ack_to):
    """pipe == sum of live copies, and never negative."""
    from repro.tcp.sack import Scoreboard

    sb = Scoreboard()
    for seq in range(n_sent):
        sb.register_send(seq, SegmentSendState(0, 0, 0, 0, False))
    snd_una = 0
    sacks = tuple((s, min(n_sent, s + l)) for s, l in sack_blocks)
    sb.apply_sacks(sacks, snd_una, n_sent)
    sb.mark_losses(snd_una)
    for _ in range(5):
        seq = sb.next_retx(snd_una)
        if seq is None:
            break
        sb.register_retx(seq, SegmentSendState(0, 0, 0, 0, False))
    ack_to = min(ack_to, n_sent)
    sb.cumulative_ack(snd_una, ack_to)
    assert sb.pipe >= 0
    expected = sum(e.copies for e in sb.entries.values())
    assert sb.pipe == expected


# --- windowed filters ---------------------------------------------------------------


@given(st.lists(st.tuples(st.integers(0, 1000), st.floats(0, 1e6)), min_size=1, max_size=100))
def test_windowed_max_correct(samples):
    samples = sorted(samples, key=lambda x: x[0])
    f = WindowedMax(10)
    inserted = []
    for tick, value in samples:
        f.update(value, tick)
        inserted.append((tick, value))
        expected = max(v for t, v in inserted if t > tick - 10)
        assert f.get(tick) == expected


@given(st.lists(st.tuples(st.integers(0, 10_000), st.integers(1, 10**9)),
                min_size=1, max_size=100))
def test_windowed_min_lower_bound(samples):
    samples = sorted(samples, key=lambda x: x[0])
    f = WindowedMin(1000)
    for t, v in samples:
        f.update(v, t)
    t_last = samples[-1][0]
    got = f.get(t_last)
    window_vals = [v for t, v in samples if t > t_last - 1000]
    assert got <= min(window_vals)
    assert got >= min(v for _, v in samples)


# --- RTO bounds ----------------------------------------------------------------------


@given(st.lists(st.integers(min_value=1, max_value=10**10), min_size=1, max_size=50))
def test_rto_always_bounded(samples):
    est = RttEstimator()
    for s in samples:
        est.on_sample(s)
        assert MIN_RTO_NS <= est.rto_ns <= MAX_RTO_NS
    est.on_backoff()
    assert est.rto_ns <= MAX_RTO_NS


# --- FIFO conservation ------------------------------------------------------------------


@given(st.lists(st.integers(min_value=1, max_value=9000), min_size=1, max_size=60),
       st.integers(min_value=1000, max_value=100_000))
def test_fifo_conservation(sizes, limit):
    q = FifoQueue(limit)
    accepted = 0
    for i, size in enumerate(sizes):
        if q.enqueue(make_data_packet(1, "a", "b", seq=i, mss=size, now=0), 0):
            accepted += 1
    drained = 0
    while q.dequeue(0) is not None:
        drained += 1
    assert accepted == drained
    assert accepted + q.stats.dropped_enqueue == len(sizes)
    assert q.bytes_queued == 0


# --- simulator ordering -------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=80))
def test_simulator_global_order(delays):
    sim = Simulator()
    fired = []
    for i, d in enumerate(delays):
        sim.schedule(d, fired.append, (d, i))
    sim.run()
    assert fired == sorted(fired)  # time, then insertion order


# --- waterfill ---------------------------------------------------------------------------


@given(
    st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30),
    st.floats(min_value=0.01, max_value=1e7),
)
def test_waterfill_properties(supply, cap):
    supply_arr = np.array(supply)
    out = waterfill(supply_arr, cap)
    assert np.all(out >= -1e-9)
    assert np.all(out <= supply_arr + 1e-6)
    total = float(out.sum())
    assert total <= cap + 1e-6 or total <= supply_arr.sum() + 1e-6
    if supply_arr.sum() <= cap:
        assert np.allclose(out, supply_arr)
    else:
        assert total == pytest.approx(cap, rel=1e-6, abs=1e-6)


import pytest  # noqa: E402  (used by approx above)
