"""Property-based invariants over full experiment runs.

Random draws across the configuration space (CCA pair, AQM, buffer
depth, seed) must always produce results satisfying the physical
invariants of the model, regardless of which cell of the grid was hit:

- Jain's index lies in [0, 1] (it is a normalized ratio),
- bottleneck utilization lies in [0, 1.01] (a link cannot carry more
  than line rate; 1% slack for edge-of-window rounding),
- no flow delivers more bytes than its sender transmitted,
- the bottleneck FIFO backlog never exceeds its byte limit, and
- the congestion window never collapses below one MSS (senders must
  always be able to make forward progress).

These are deliberately run on short, small-bandwidth configs so
hypothesis can afford several full simulations per test.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent))

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import LoopbackNet
from repro.cca.cubic import Cubic
from repro.cca.reno import Reno
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.testbed.dumbbell import DumbbellConfig
from repro.units import mbps, milliseconds, seconds

CCA_NAMES = ("reno", "cubic", "bbrv1", "bbrv2", "htcp")
AQM_NAMES = ("fifo", "red", "codel", "fq_codel", "pie")


@given(
    cca_a=st.sampled_from(CCA_NAMES),
    cca_b=st.sampled_from(CCA_NAMES),
    aqm=st.sampled_from(AQM_NAMES),
    buffer_bdp=st.sampled_from((0.5, 1.0, 2.0, 4.0)),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=10, deadline=None)
def test_result_invariants_across_config_space(cca_a, cca_b, aqm, buffer_bdp, seed):
    """Any (CCA pair, AQM, buffer, seed) cell yields physically sane results."""
    config = ExperimentConfig(
        cca_pair=(cca_a, cca_b),
        aqm=aqm,
        buffer_bdp=buffer_bdp,
        bottleneck_bw_bps=mbps(20),
        duration_s=1.5,
        mss_bytes=1500,
        seed=seed,
        flows_per_node=1,
    )
    result = run_experiment(config)

    assert 0.0 <= result.jain_index <= 1.0
    assert 0.0 <= result.link_utilization <= 1.01
    assert result.total_retransmits >= 0
    assert result.bottleneck_drops >= 0
    assert result.total_throughput_bps >= 0.0
    for flow in result.flows:
        # Exactly-once delivery: the receiver can never report more
        # unique bytes than the sender ever put on the wire.
        assert flow.bytes_received <= flow.segments_sent * config.mss_bytes
        assert flow.retransmits <= flow.segments_sent


@given(
    aqm=st.sampled_from(AQM_NAMES),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=5, deadline=None)
def test_fluid_engine_result_invariants(aqm, seed):
    """The fluid engine obeys the same result-level invariants."""
    config = ExperimentConfig(
        cca_pair=("cubic", "cubic"),
        aqm=aqm,
        buffer_bdp=2.0,
        bottleneck_bw_bps=mbps(100),
        duration_s=5.0,
        seed=seed,
        engine="fluid",
        flows_per_node=1,
    )
    result = run_experiment(config)
    assert 0.0 <= result.jain_index <= 1.0
    assert 0.0 <= result.link_utilization <= 1.01
    for flow in result.flows:
        assert flow.bytes_received >= 0


@given(
    drop_set=st.sets(st.integers(min_value=0, max_value=119), max_size=30),
    cca_cls=st.sampled_from([Reno, Cubic]),
)
@settings(max_examples=15, deadline=None)
def test_cwnd_never_below_one_mss(drop_set, cca_cls):
    """Under any drop pattern, cwnd stays >= 1 MSS at every sampled instant."""
    pending = set(drop_set)

    def drop(pkt):
        if pkt.seq in pending and not pkt.is_retx:
            pending.discard(pkt.seq)
            return True
        return False

    net = LoopbackNet(
        cca=cca_cls(), total_segments=120, drop_data=drop,
        one_way_delay_ns=milliseconds(5),
    )
    samples = []

    def sample():
        samples.append(net.sender.cca.cwnd)
        if not net.sender.done:
            net.sim.schedule(milliseconds(20), sample)

    net.start()
    net.sim.schedule(milliseconds(1), sample)
    net.run(seconds(30))
    assert net.sender.done
    # cwnd is tracked in segments; one segment == one MSS.
    assert samples and min(samples) >= 1.0
    assert net.sender.cca.cwnd >= 1.0


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    buffer_bdp=st.sampled_from((0.25, 0.5, 1.0, 2.0)),
)
@settings(max_examples=8, deadline=None)
def test_bottleneck_fifo_backlog_bounded(seed, buffer_bdp):
    """The bottleneck FIFO backlog respects its byte limit throughout a run."""
    config = ExperimentConfig(
        cca_pair=("cubic", "reno"),
        aqm="fifo",
        buffer_bdp=buffer_bdp,
        bottleneck_bw_bps=mbps(20),
        duration_s=1.5,
        mss_bytes=1500,
        seed=seed,
        flows_per_node=1,
        queue_monitor_interval_s=0.01,
    )
    result = run_experiment(config)
    trace = result.extra.get("queue_trace")
    assert trace and trace["backlog_bytes"], "queue monitor produced no samples"
    # Same limit derivation the runner uses when it builds the topology.
    limit_bytes = DumbbellConfig(
        bottleneck_bw_bps=config.bottleneck_bw_bps,
        buffer_bdp=config.buffer_bdp,
        aqm=config.aqm,
        mss_bytes=config.mss_bytes,
        seed=config.seed,
    ).buffer_bytes
    # Drop-tail admits only up to limit_bytes, so the sampled backlog can
    # never exceed it.
    for backlog in trace["backlog_bytes"]:
        assert 0 <= backlog <= limit_bytes
