"""Shared pytest configuration."""

import sys
from pathlib import Path

import pytest

# Make tests/helpers.py importable as `helpers` from any test package.
sys.path.insert(0, str(Path(__file__).parent))

from repro.traffic.iperf import Iperf3Server


@pytest.fixture(autouse=True)
def _reset_iperf_server_registry():
    """The server registry is process-global; isolate tests."""
    Iperf3Server.reset_registry()
    yield
    Iperf3Server.reset_registry()
