"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, parse_rate


def test_parse_rate():
    assert parse_rate("100M") == 100e6
    assert parse_rate("25G") == 25e9
    assert parse_rate("64k") == 64e3
    assert parse_rate("123456") == 123456.0
    import argparse

    with pytest.raises(argparse.ArgumentTypeError):
        parse_rate("fast")


def test_matrix_command(capsys):
    assert main(["matrix"]) == 0
    out = capsys.readouterr().out
    assert "810" in out
    assert "paper-fluid" in out


def test_run_command_fluid(capsys):
    rc = main([
        "run", "--cca1", "cubic", "--cca2", "cubic", "--aqm", "fifo",
        "--bw", "100M", "--duration", "5", "--engine", "fluid", "--seed", "3",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "jain index" in out
    assert "utilization" in out
    assert "engine      : fluid" in out


def test_run_command_packet(capsys):
    rc = main([
        "run", "--cca1", "reno", "--cca2", "cubic", "--aqm", "fifo",
        "--bw", "10M", "--duration", "4", "--mss", "1500", "--flows", "1",
    ])
    assert rc == 0
    assert "client1 (reno)" in capsys.readouterr().out


def test_run_with_telemetry_writes_valid_log(tmp_path, capsys):
    tel_dir = str(tmp_path / "telemetry")
    rc = main([
        "run", "--cca1", "cubic", "--cca2", "cubic", "--aqm", "fifo",
        "--bw", "10M", "--duration", "3", "--mss", "1500", "--flows", "1",
        "--telemetry", "--telemetry-dir", tel_dir, "--trace-dump",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "run log     :" in out
    logs = list((tmp_path / "telemetry").glob("*.jsonl"))
    assert any(p.name.endswith(".trace.jsonl") for p in logs)
    assert main(["obs", "validate", tel_dir]) == 0
    capsys.readouterr()
    assert main(["obs", "summary", tel_dir]) == 0
    summary = capsys.readouterr().out
    assert "status      : ok" in summary
    assert "retransmits" in summary


def test_sweep_with_telemetry_writes_campaign_log(tmp_path, capsys):
    out_file = str(tmp_path / "results.jsonl")
    tel_dir = str(tmp_path / "telemetry")
    rc = main([
        "sweep", "--preset", "smoke", "--out", out_file, "--quiet",
        "--telemetry", "--telemetry-dir", tel_dir,
    ])
    assert rc == 0
    capsys.readouterr()
    assert main(["obs", "tail", tel_dir]) == 0
    assert "done" in capsys.readouterr().out
    assert main(["obs", "validate", tel_dir]) == 0


def test_sweep_and_report_roundtrip(tmp_path, capsys):
    out_file = str(tmp_path / "results.jsonl")
    rc = main(["sweep", "--preset", "smoke", "--out", out_file, "--quiet"])
    assert rc == 0
    capsys.readouterr()
    rc = main(["report", "--results", out_file, "--what", "table3"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "Avg(phi)" in text
    rc = main(["report", "--results", out_file, "--what", "fig2"])
    assert rc == 0
    assert "bbrv1-vs-cubic" in capsys.readouterr().out


def test_report_missing_results(tmp_path, capsys):
    rc = main(["report", "--results", str(tmp_path / "none.jsonl")])
    assert rc == 1


def test_claims_report(tmp_path, capsys):
    out_file = str(tmp_path / "results.jsonl")
    main(["sweep", "--preset", "smoke", "--out", out_file, "--quiet"])
    capsys.readouterr()
    rc = main(["report", "--results", out_file, "--what", "claims"])
    text = capsys.readouterr().out
    assert rc in (0, 2)
    assert "passed" in text
    # The smoke preset is tiny: most claims should be skipped, none crash.
    assert "SKIP" in text


def test_export_command(tmp_path, capsys):
    out_file = str(tmp_path / "results.jsonl")
    main(["sweep", "--preset", "smoke", "--out", out_file, "--quiet"])
    capsys.readouterr()
    csv_file = str(tmp_path / "runs.csv")
    rc = main(["export", "--results", out_file, "--table", "runs", "--out", csv_file])
    assert rc == 0
    assert "wrote" in capsys.readouterr().out
    header = open(csv_file).readline()
    assert "jain_index" in header


def test_export_missing_results(tmp_path):
    rc = main(["export", "--results", str(tmp_path / "none.jsonl")])
    assert rc == 1


def test_export_figures_command(tmp_path, capsys):
    out_file = str(tmp_path / "results.jsonl")
    main(["sweep", "--preset", "smoke", "--out", out_file, "--quiet"])
    capsys.readouterr()
    rc = main(["export-figures", "--results", out_file, "--out-dir", str(tmp_path / "figs")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fig2" in out
    assert (tmp_path / "figs" / "fig7.csv").exists()


def test_parser_rejects_unknown_choices():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--aqm", "wred"])
    with pytest.raises(SystemExit):
        parser.parse_args(["sweep", "--preset", "everything"])


def test_sweep_with_cache_warm_second_pass(tmp_path, capsys):
    """The cache: line is the CI cache-smoke contract — a second sweep
    against the same cache (fresh store, so resume can't mask it) must
    report zero engine runs."""
    cache_dir = str(tmp_path / "cache")
    rc = main(["sweep", "--preset", "smoke", "--out", str(tmp_path / "a.jsonl"),
               "--quiet", "--cache", cache_dir])
    assert rc == 0
    first = capsys.readouterr().out
    assert "cache: 0 hits, 2 engine runs, 2 entries" in first

    rc = main(["sweep", "--preset", "smoke", "--out", str(tmp_path / "b.jsonl"),
               "--quiet", "--cache", cache_dir])
    assert rc == 0
    second = capsys.readouterr().out
    assert "cache: 2 hits, 0 engine runs, 2 entries" in second
    # The warm pass still produced a full result store.
    from repro.experiments.storage import ResultStore

    assert len(ResultStore(tmp_path / "b.jsonl").load()) == 2


def test_cache_stats_and_merge_commands(tmp_path, capsys):
    import json

    cache_dir = str(tmp_path / "cache")
    main(["sweep", "--preset", "smoke", "--out", str(tmp_path / "a.jsonl"),
          "--quiet", "--cache", cache_dir, "--no-cache-merge"])
    capsys.readouterr()

    assert main(["cache", "stats", cache_dir]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] == 2
    assert stats["shards"] == 1  # --no-cache-merge left the shard in place

    assert main(["cache", "merge", cache_dir]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary == {"entries": 2, "shards_folded": 1, "duplicates": 0}

    assert main(["cache", "stats", cache_dir]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["shards"] == 0 and stats["canonical_exists"] is True


def test_sweep_queue_mode(tmp_path, capsys):
    queue_dir = str(tmp_path / "queue")
    cache_dir = str(tmp_path / "cache")
    rc = main(["sweep", "--preset", "smoke", "--out", str(tmp_path / "r.jsonl"),
               "--quiet", "--queue", queue_dir, "--cache", cache_dir])
    assert rc == 0
    out = capsys.readouterr().out
    assert "completed 2 runs" in out
    assert "2/2 tasks done" in out
    from repro.experiments.queue import WorkQueue

    assert WorkQueue.open(queue_dir).drained
    # Rejoining the drained queue is a no-op sweep answered by the cache.
    rc = main(["sweep", "--preset", "smoke", "--out", str(tmp_path / "r.jsonl"),
               "--quiet", "--queue", queue_dir, "--cache", cache_dir])
    assert rc == 0
    assert "completed 0 runs" in capsys.readouterr().out


def test_serve_help_via_predispatch(capsys):
    """``repro serve --help`` must reach repro.service despite REMAINDER
    (python/cpython#61252 pre-dispatch, same as bench)."""
    with pytest.raises(SystemExit) as exc:
        main(["serve", "--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert "--cache" in out and "fairness" in out


# -- scenario IR surface (docs/SCENARIO.md) -----------------------------------------


def _write_cell(tmp_path, **overrides):
    """A small fluid-friendly scenario document on disk."""
    import json

    doc = {
        "topology": {"bottleneck_bw_bps": 20_000_000, "mss_bytes": 1500},
        "flows": [
            {"cca": "cubic", "node": 0, "count": 1},
            {"cca": "cubic", "node": 1, "count": 1},
        ],
        "duration_s": 5.0,
        "seed": 3,
    }
    doc.update(overrides)
    path = tmp_path / "cell.json"
    path.write_text(json.dumps(doc))
    return str(path)


def test_run_from_scenario_document(tmp_path, capsys):
    cell = _write_cell(tmp_path)
    rc = main(["run", "--scenario", cell, "--engine", "fluid"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "engine      : fluid" in out
    assert "cubic-vs-cubic_fifo_2bdp_20Mbps_seed3" in out


def test_run_flags_and_scenario_document_share_one_path(tmp_path, capsys):
    """Flags parse into the same IR, so both spellings produce the same
    config label (and thus the same cache key)."""
    cell = _write_cell(tmp_path)
    assert main(["run", "--scenario", cell, "--engine", "fluid"]) == 0
    from_doc = capsys.readouterr().out.splitlines()[0]
    assert main([
        "run", "--cca1", "cubic", "--cca2", "cubic", "--bw", "20M",
        "--mss", "1500", "--flows", "1", "--duration", "5", "--seed", "3",
        "--engine", "fluid",
    ]) == 0
    from_flags = capsys.readouterr().out.splitlines()[0]
    assert from_doc == from_flags


def test_run_rejects_bad_scenario_document(tmp_path, capsys):
    import json

    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"flows": [{"cca": "cubic", "node": 0}], "nonsense": 1}))
    with pytest.raises(SystemExit) as exc:
        main(["run", "--scenario", str(path)])
    assert "unknown field" in str(exc.value)


def test_scenario_show_prints_canonical_form_and_cache_key(tmp_path, capsys):
    cell = _write_cell(tmp_path)
    rc = main(["scenario", "show", cell, "--engine", "fluid"])
    assert rc == 0
    out = capsys.readouterr().out
    assert '"version": 1' in out
    assert "cubic-vs-cubic_fifo_2bdp_20Mbps_seed3" in out
    import re

    key = re.search(r"cache key : ([0-9a-f]{64})", out)
    assert key, out
    # The printed key is the legacy cache's content address.
    from repro.experiments.cache import config_key, default_salt
    from repro.experiments.config import ExperimentConfig

    cfg = ExperimentConfig(
        cca_pair=("cubic", "cubic"), bottleneck_bw_bps=20_000_000, mss_bytes=1500,
        flows_per_node=1, duration_s=5.0, seed=3, engine="fluid",
    )
    assert key.group(1) == config_key(cfg, default_salt())


def test_validate_command_fluid_pair(tmp_path, capsys):
    cell = _write_cell(tmp_path)
    rc = main(["validate", "--scenario", cell, "--engines", "fluid,fluid-batched"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "OK    fluid vs fluid_batched [exact]" in out
    assert "cross-engine agreement: clean" in out


def test_sweep_scenario_document_with_seeds(tmp_path, capsys):
    cell = _write_cell(tmp_path)
    out_path = tmp_path / "results.jsonl"
    rc = main([
        "sweep", "--scenario", cell, "--seeds", "1,2", "--engine", "fluid",
        "--out", str(out_path), "--quiet",
    ])
    assert rc == 0
    assert "completed 2 runs" in capsys.readouterr().out
    from repro.experiments.storage import ResultStore

    seeds = {r.config["seed"] for r in ResultStore(out_path).load()}
    assert seeds == {1, 2}
