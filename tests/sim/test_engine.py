"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(300, fired.append, "c")
    sim.schedule(100, fired.append, "a")
    sim.schedule(200, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(50, fired.append, tag)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_now_tracks_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(123, lambda: seen.append(sim.now))
    sim.schedule(456, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [123, 456]
    assert sim.now == 456


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, 1)
    sim.schedule(900, fired.append, 2)
    sim.run(until_ns=500)
    assert fired == [1]
    assert sim.now == 500
    sim.run(until_ns=1000)
    assert fired == [1, 2]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 30


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule(100, fired.append, "x")
    sim.schedule(50, ev.cancel)
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    ev = sim.schedule(10, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()
    assert sim.events_processed == 0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(50, lambda: None)


def test_step_executes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, 1)
    sim.schedule(20, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert fired == [1, 2]
    assert not sim.step()


def test_peek_time_skips_cancelled():
    sim = Simulator()
    ev = sim.schedule(10, lambda: None)
    sim.schedule(30, lambda: None)
    ev.cancel()
    assert sim.peek_time() == 30


def test_events_processed_counter():
    sim = Simulator()
    for i in range(7):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.events_processed == 7


def test_reentrant_run_rejected():
    sim = Simulator()

    def bad():
        sim.run()

    sim.schedule(1, bad)
    with pytest.raises(RuntimeError):
        sim.run()


def test_run_until_does_not_move_clock_backwards():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run(until_ns=200)
    assert sim.now == 200
    sim.run(until_ns=150)  # already past: no-op
    assert sim.now == 200
