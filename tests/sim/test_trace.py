"""Unit tests for tracing hooks."""

from repro.sim.trace import NullTracer, Tracer


def test_null_tracer_discards():
    t = NullTracer()
    t.record("drop", 100, flow=1)  # must not raise
    assert not t.enabled


def test_tracer_records_events_in_order():
    t = Tracer()
    t.record("drop", 100, flow=1)
    t.record("retx", 200, flow=2, seq=5)
    assert t.events == [("drop", 100, {"flow": 1}), ("retx", 200, {"flow": 2, "seq": 5})]
    assert t.counts["drop"] == 1
    assert t.counts["retx"] == 1


def test_of_kind_filters():
    t = Tracer()
    t.record("a", 1)
    t.record("b", 2)
    t.record("a", 3)
    assert [e[1] for e in t.of_kind("a")] == [1, 3]


def test_clear():
    t = Tracer()
    t.record("a", 1)
    t.clear()
    assert t.events == []
    assert t.counts["a"] == 0
