"""Unit tests for tracing hooks."""

from repro.sim.trace import NullTracer, Tracer


def test_null_tracer_discards():
    t = NullTracer()
    t.record("drop", 100, flow=1)  # must not raise
    assert not t.enabled


def test_tracer_records_events_in_order():
    t = Tracer()
    t.record("drop", 100, flow=1)
    t.record("retx", 200, flow=2, seq=5)
    assert t.events == [("drop", 100, {"flow": 1}), ("retx", 200, {"flow": 2, "seq": 5})]
    assert t.counts["drop"] == 1
    assert t.counts["retx"] == 1


def test_of_kind_filters():
    t = Tracer()
    t.record("a", 1)
    t.record("b", 2)
    t.record("a", 3)
    assert [e[1] for e in t.of_kind("a")] == [1, 3]


def test_clear():
    t = Tracer()
    t.record("a", 1)
    t.clear()
    assert t.events == []
    assert t.counts["a"] == 0
    assert t.of_kind("a") == []


def test_of_kind_is_indexed_not_scanned():
    # of_kind must serve from the per-kind index: the identical event
    # tuples, in record order, without touching other kinds.
    t = Tracer()
    for i in range(1000):
        t.record("common", i)
    t.record("rare", 5000, flow=9)
    rare = t.of_kind("rare")
    assert rare == [("rare", 5000, {"flow": 9})]
    assert rare[0] is t.events[-1]  # same tuple object, no copy
    assert t.of_kind("absent") == []


def test_of_kind_returns_fresh_list():
    t = Tracer()
    t.record("a", 1)
    first = t.of_kind("a")
    first.append("junk")
    assert t.of_kind("a") == [("a", 1, {})]


def test_events_ordering_with_index():
    t = Tracer()
    kinds = ["a", "b", "a", "c", "b", "a"]
    for i, k in enumerate(kinds):
        t.record(k, i)
    assert [k for k, _, _ in t.events] == kinds
    assert [i for _, i, _ in t.of_kind("a")] == [0, 2, 5]
    assert [i for _, i, _ in t.of_kind("b")] == [1, 4]
