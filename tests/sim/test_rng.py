"""Unit tests for seeded RNG streams."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams


def test_same_seed_same_stream():
    a = RngStreams(42).stream("red").random(10)
    b = RngStreams(42).stream("red").random(10)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngStreams(1).stream("red").random(10)
    b = RngStreams(2).stream("red").random(10)
    assert not np.array_equal(a, b)


def test_streams_are_independent():
    """Drawing from one stream must not perturb another."""
    ref = RngStreams(7)
    expected = ref.stream("b").random(5)

    mixed = RngStreams(7)
    mixed.stream("a").random(1000)  # interleaved consumption
    got = mixed.stream("b").random(5)
    assert np.array_equal(expected, got)


def test_stream_is_cached():
    rngs = RngStreams(3)
    assert rngs.stream("x") is rngs.stream("x")


def test_different_names_different_draws():
    rngs = RngStreams(5)
    a = rngs.stream("alpha").random(8)
    b = rngs.stream("beta").random(8)
    assert not np.array_equal(a, b)


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RngStreams(-1)
