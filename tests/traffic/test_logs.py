"""Unit tests for iperf3 JSON log I/O."""

import json

import pytest

from repro.traffic.logs import dump_iperf_json, load_iperf_json


def _doc():
    return {
        "start": {"test_start": {"congestion": "cubic"}},
        "intervals": [],
        "end": {"sum_received": {"bytes": 0, "bits_per_second": 0.0}},
    }


def test_roundtrip(tmp_path):
    path = dump_iperf_json(_doc(), tmp_path / "logs" / "run1.json")
    assert path.exists()
    assert load_iperf_json(path) == _doc()


def test_creates_parent_dirs(tmp_path):
    path = dump_iperf_json(_doc(), tmp_path / "a" / "b" / "c.json")
    assert path.exists()


def test_rejects_non_iperf_documents(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text(json.dumps({"foo": 1}))
    with pytest.raises(ValueError):
        load_iperf_json(p)


def test_output_is_sorted_and_indented(tmp_path):
    path = dump_iperf_json(_doc(), tmp_path / "x.json")
    text = path.read_text()
    assert text.index('"end"') < text.index('"intervals"') < text.index('"start"')
