"""Unit tests for the iperf3-style traffic generator."""

import pytest

from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
from repro.traffic.iperf import Iperf3Client, Iperf3Server
from repro.units import mbps, seconds


def _setup(parallel=2, duration=4.0, congestion="cubic"):
    db = build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=mbps(20), buffer_bdp=2.0, mss_bytes=1500, seed=1)
    )
    server = Iperf3Server(db.servers[0])
    client = Iperf3Client(
        db.clients[0], db.servers[0],
        congestion=congestion, parallel=parallel, duration_s=duration, mss=1500,
    )
    return db, server, client


def test_requires_listening_server():
    db = build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=mbps(20), buffer_bdp=2.0, mss_bytes=1500, seed=1)
    )
    with pytest.raises(ConnectionRefusedError):
        Iperf3Client(db.clients[0], db.servers[0])


def test_duplicate_server_rejected():
    db = build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=mbps(20), buffer_bdp=2.0, mss_bytes=1500, seed=1)
    )
    Iperf3Server(db.servers[0])
    with pytest.raises(RuntimeError):
        Iperf3Server(db.servers[0])
    # Different port is fine.
    Iperf3Server(db.servers[0], port=5202)


def test_parallel_streams_created_and_run():
    db, server, client = _setup(parallel=3)
    client.start()
    db.network.run(seconds(5))
    results = client.stream_results()
    assert len(results) == 3
    for r in results:
        assert r.bytes_received > 0
    total_bps = sum(r.throughput_bps for r in results)
    assert total_bps <= mbps(22)  # can't exceed bottleneck (+rounding)
    assert total_bps > mbps(10)


def test_client_stops_at_duration():
    db, server, client = _setup(parallel=1, duration=2.0)
    client.start()
    db.network.run(seconds(6))
    conn = client.connections[0]
    sent_at_stop = conn.sender.segments_sent
    db.network.run(seconds(8))
    assert conn.sender.segments_sent == sent_at_stop


def test_json_result_shape():
    db, server, client = _setup(parallel=2, duration=3.0)
    client.start()
    db.network.run(seconds(4))
    doc = client.json_result()
    assert set(doc) == {"start", "intervals", "end"}
    assert doc["start"]["test_start"]["num_streams"] == 2
    assert doc["start"]["test_start"]["congestion"] == "cubic"
    assert len(doc["intervals"]) == 3
    for iv in doc["intervals"]:
        assert len(iv["streams"]) == 2
        assert iv["sum"]["bits_per_second"] == pytest.approx(
            sum(s["bits_per_second"] for s in iv["streams"])
        )
    end = doc["end"]
    assert len(end["streams"]) == 2
    assert end["sum_received"]["bytes"] == sum(
        s["receiver"]["bytes"] for s in end["streams"]
    )


def test_double_start_rejected():
    db, server, client = _setup()
    client.start()
    with pytest.raises(RuntimeError):
        client.start()


def test_invalid_parameters():
    db, server, _ = _setup()
    with pytest.raises(ValueError):
        Iperf3Client(db.clients[0], db.servers[0], parallel=0)
    with pytest.raises(ValueError):
        Iperf3Client(db.clients[0], db.servers[0], duration_s=0)


def test_congestion_alias_canonicalized():
    db, server, _ = _setup()
    client = Iperf3Client(db.clients[1], db.servers[0], congestion="bbr")
    assert client.congestion == "bbrv1"
