"""Unit + integration tests for the short-flow (mice) generator."""

import pytest

from repro.cca.registry import make_cca
from repro.tcp.connection import open_connection
from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
from repro.traffic.mice import PoissonMice
from repro.units import mbps, seconds


def _dumbbell(aqm="fq_codel"):
    return build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=mbps(20), buffer_bdp=2.0, aqm=aqm,
                       mss_bytes=1500, seed=11)
    )


def _mice(db, rate=20.0, size=10, max_flows=None):
    return PoissonMice(
        db.clients[1], db.servers[1],
        rate_per_s=rate, size_segments=size, mss=1500,
        rng=db.network.rng.stream("mice"), max_flows=max_flows,
    )


def test_mice_spawn_and_complete():
    db = _dumbbell()
    mice = _mice(db, rate=10.0, size=5)
    mice.start()
    db.network.run(seconds(10))
    mice.stop()
    assert len(mice.records) > 30  # ~100 expected at 10/s
    done = mice.completed
    assert len(done) >= 0.9 * len(mice.records)
    for r in done:
        assert r.fct_ns > 0


def test_max_flows_cap():
    db = _dumbbell()
    mice = _mice(db, rate=100.0, size=3, max_flows=7)
    mice.start()
    db.network.run(seconds(5))
    assert len(mice.records) == 7


def test_fct_stats():
    db = _dumbbell()
    mice = _mice(db, rate=10.0, size=5)
    mice.start()
    db.network.run(seconds(8))
    stats = mice.fct_stats_ns()
    assert stats["count"] > 0
    assert stats["p50"] <= stats["p95"] <= stats["max"]
    # A 5-segment mouse needs >= 2 RTTs (SYN-less model: 1 RTT data + drain).
    assert stats["p50"] >= seconds(0.062)


def test_validation():
    db = _dumbbell()
    with pytest.raises(ValueError):
        PoissonMice(db.clients[0], db.servers[0], rate_per_s=0, size_segments=5,
                    mss=1500, rng=db.network.rng.stream("m"))
    with pytest.raises(ValueError):
        PoissonMice(db.clients[0], db.servers[0], rate_per_s=1, size_segments=0,
                    mss=1500, rng=db.network.rng.stream("m"))


def test_fq_codel_protects_mice_from_elephant():
    """Sparse-flow priority: mice finish fast despite a buffer-filling
    elephant under FQ_CoDel; under FIFO they queue behind it."""
    fcts = {}
    for aqm in ("fifo", "fq_codel"):
        db = _dumbbell(aqm=aqm)
        elephant = open_connection(
            db.clients[0], db.servers[0],
            make_cca("cubic", db.network.rng.stream("cca")), mss=1500,
        )
        elephant.start()
        mice = _mice(db, rate=5.0, size=5)
        # Let the elephant fill the buffer first.
        db.network.run(seconds(5))
        mice.start()
        db.network.run(seconds(25))
        mice.stop()
        stats = mice.fct_stats_ns()
        assert stats["count"] > 10, aqm
        fcts[aqm] = stats["p50"]
    assert fcts["fq_codel"] < 0.7 * fcts["fifo"], fcts