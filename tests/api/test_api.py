"""The stable top-level API (``repro.api``) and the deprecation policy.

Pins three things: the advertised surface exists under ``__all__``; the
IR-superseded ``ExperimentConfig`` knobs warn on *direct* construction
(pointing at the IR equivalent) while internal re-materialization paths
stay silent; and the convenience entry points actually run experiments.
"""

import warnings

import pytest

import repro
import repro.api as api
from repro.experiments.config import ExperimentConfig, legacy_construction
from repro.scenario import FlowSpec, Scenario, TopologySpec
from repro.units import mbps


def _tiny_scenario(seed=3):
    return Scenario(
        topology=TopologySpec(bottleneck_bw_bps=mbps(20), mss_bytes=1500),
        flows=(
            FlowSpec(cca="cubic", node=0, count=1),
            FlowSpec(cca="cubic", node=1, count=1),
        ),
        duration_s=5.0,
        seed=seed,
    )


# -- surface ------------------------------------------------------------------------


def test_advertised_surface_exists():
    for name in api.__all__:
        assert getattr(api, name) is not None, name
    # The package root re-exports the IR-era verbs alongside the legacy ones.
    for name in ("Scenario", "run", "sweep", "validate", "load_store",
                 "ExperimentConfig", "run_experiment"):
        assert name in repro.__all__
        assert getattr(repro, name) is not None


def test_run_executes_a_scenario():
    result = api.run(_tiny_scenario(), engine="fluid")
    assert result.engine == "fluid"
    assert 0.5 <= result.jain_index <= 1.0


def test_sweep_runs_seeds_and_persists(tmp_path):
    store = tmp_path / "results.jsonl"
    results = api.sweep(
        [_tiny_scenario()], engine="fluid", seeds=(1, 2), store=store
    )
    assert len(results) == 2
    assert {r.config["seed"] for r in results} == {1, 2}
    loaded = api.load_store(store)
    assert len(loaded) == 2


def test_validate_diffs_engines():
    report = api.validate(_tiny_scenario(), engines=("fluid", "fluid_batched"))
    assert report.clean


# -- deprecation policy -------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs, ir_equivalent",
    [
        (dict(faults=[{"kind": "link_flap", "at_s": 1.0, "duration_s": 0.5}]),
         "Scenario.faults"),
        (dict(fairness_interval_s=1.0), "Scenario.sampling.fairness_interval_s"),
        (dict(sample_interval_s=1.0), "Scenario.sampling.throughput_interval_s"),
        (dict(queue_monitor_interval_s=1.0), "Scenario.sampling.queue_interval_s"),
    ],
)
def test_direct_engine_knobs_warn_and_point_at_the_ir(kwargs, ir_equivalent):
    with pytest.warns(DeprecationWarning, match=ir_equivalent.replace(".", r"\.")):
        ExperimentConfig(cca_pair=("cubic", "cubic"), **kwargs)


def test_plain_construction_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        ExperimentConfig(cca_pair=("bbrv1", "cubic"), aqm="red", seed=5)


def test_internal_rematerialization_paths_do_not_warn():
    cfg = ExperimentConfig(
        cca_pair=("cubic", "cubic"),
        fairness_interval_s=1.0,
        faults=[{"kind": "link_flap", "at_s": 1.0, "duration_s": 0.5}],
    )
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        # from_dict (stored results, cache index, campaign workers)...
        ExperimentConfig.from_dict(cfg.to_dict())
        # ...the IR compilers...
        Scenario.from_experiment_config(cfg).to_experiment_config()
        # ...and explicit legacy_construction sites.
        with legacy_construction():
            ExperimentConfig(cca_pair=("cubic", "cubic"), fairness_interval_s=1.0)


def test_legacy_construction_nesting_restores_warnings():
    with legacy_construction():
        with legacy_construction():
            pass
    with pytest.warns(DeprecationWarning):
        ExperimentConfig(cca_pair=("cubic", "cubic"), fairness_interval_s=1.0)
