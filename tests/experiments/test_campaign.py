"""Unit tests for the campaign driver (serial + parallel + resume)."""

import pytest

from repro.experiments.campaign import run_campaign
from repro.experiments.config import ExperimentConfig
from repro.experiments.storage import ResultStore
from repro.units import mbps


def _configs(n=3, engine="fluid"):
    return [
        ExperimentConfig(
            cca_pair=("cubic", "cubic"),
            bottleneck_bw_bps=mbps(100),
            duration_s=5.0,
            engine=engine,
            seed=100 + i,
        )
        for i in range(n)
    ]


def test_serial_campaign_runs_all(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    results = run_campaign(_configs(3), store=store, jobs=1)
    assert len(results) == 3
    assert len(store) == 3


def test_resume_skips_completed(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    configs = _configs(3)
    run_campaign(configs[:2], store=store, jobs=1)
    progress_calls = []
    results = run_campaign(
        configs, store=store, jobs=1,
        progress=lambda done, total, r: progress_calls.append((done, total)),
    )
    # All three results returned, but only one actually ran.
    assert len(results) == 3
    assert progress_calls == [(1, 1)]
    assert len(store) == 3


def test_no_resume_reruns(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    configs = _configs(2)
    run_campaign(configs, store=store, jobs=1)
    run_campaign(configs, store=store, jobs=1, resume=False)
    assert len(store) == 4


def test_parallel_campaign(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    results = run_campaign(_configs(4), store=store, jobs=2)
    assert len(results) == 4
    seeds = sorted(r.config["seed"] for r in results)
    assert seeds == [100, 101, 102, 103]


def test_invalid_jobs():
    with pytest.raises(ValueError):
        run_campaign(_configs(1), jobs=0)


def test_campaign_without_store():
    results = run_campaign(_configs(2), jobs=1)
    assert len(results) == 2
