"""Unit tests for the campaign driver (serial + parallel + resume)."""

import pytest

from repro.experiments.campaign import (
    CampaignProgress,
    FailedRun,
    failures_path,
    load_failures,
    run_campaign,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.storage import ResultStore
from repro.units import mbps


def _configs(n=3, engine="fluid"):
    return [
        ExperimentConfig(
            cca_pair=("cubic", "cubic"),
            bottleneck_bw_bps=mbps(100),
            duration_s=5.0,
            engine=engine,
            seed=100 + i,
        )
        for i in range(n)
    ]


def test_serial_campaign_runs_all(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    results = run_campaign(_configs(3), store=store, jobs=1)
    assert len(results) == 3
    assert len(store) == 3


def test_resume_skips_completed(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    configs = _configs(3)
    run_campaign(configs[:2], store=store, jobs=1)
    progress_calls = []
    results = run_campaign(
        configs, store=store, jobs=1,
        progress=lambda done, total, r: progress_calls.append((done, total)),
    )
    # All three results returned, but only one actually ran.
    assert len(results) == 3
    assert progress_calls == [(1, 1)]
    assert len(store) == 3


def test_no_resume_reruns(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    configs = _configs(2)
    run_campaign(configs, store=store, jobs=1)
    run_campaign(configs, store=store, jobs=1, resume=False)
    assert len(store) == 4


def test_parallel_campaign(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    results = run_campaign(_configs(4), store=store, jobs=2)
    assert len(results) == 4
    seeds = sorted(r.config["seed"] for r in results)
    assert seeds == [100, 101, 102, 103]


def test_invalid_jobs():
    with pytest.raises(ValueError):
        run_campaign(_configs(1), jobs=0)


def test_campaign_without_store():
    results = run_campaign(_configs(2), jobs=1)
    assert len(results) == 2


def _poisoned_config(seed=999):
    # aqm_params are forwarded to the AQM constructor inside the worker,
    # not validated at config construction — a bogus knob makes the run
    # itself raise (TypeError) without failing up front.
    return ExperimentConfig(
        cca_pair=("cubic", "cubic"),
        aqm="red",
        bottleneck_bw_bps=mbps(100),
        duration_s=5.0,
        engine="fluid",
        seed=seed,
        aqm_params={"bogus_knob": 1},
    )


def test_serial_failure_becomes_row_not_abort(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    configs = _configs(2) + [_poisoned_config()]
    failures = []
    results = run_campaign(
        configs, store=store, jobs=1,
        on_failure=lambda done, total, f: failures.append((done, total, f)),
    )
    assert len(results) == 2  # good configs still completed
    assert results.summary() == {"ok": 2, "failed": 1, "retried": 0, "total": 3}
    (row,) = results.failures
    assert row.label == _poisoned_config().label()
    assert "bogus_knob" in row.error
    assert "Traceback" in row.traceback
    # The shared finished counter covers both outcomes.
    assert failures[0][0] == 3 and failures[0][1] == 3
    # Failure row went to the sibling file, not the result store.
    assert len(store) == 2
    assert [f.label for f in load_failures(store)] == [row.label]
    assert failures_path(store).name == "r.failures.jsonl"


def test_parallel_failure_does_not_abort_pool(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    configs = [_poisoned_config()] + _configs(3)
    results = run_campaign(configs, store=store, jobs=2)
    assert len(results) == 3
    assert len(results.failures) == 1
    assert results.failures[0].config["aqm_params"] == {"bogus_knob": 1}
    assert len(store) == 3


def test_failed_configs_retried_on_resume(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    configs = _configs(1) + [_poisoned_config()]
    run_campaign(configs, store=store, jobs=1)
    # Resume skips the stored success but re-attempts the failure.
    results = run_campaign(configs, store=store, jobs=1)
    assert len(results) == 1
    assert len(results.failures) == 1


def test_failed_run_roundtrip():
    row = FailedRun(config={"seed": 1}, label="x", error="E", traceback="tb")
    assert FailedRun.from_dict(row.to_dict()) == row


def test_campaign_with_cache_skips_warm_configs(tmp_path, monkeypatch):
    from repro.experiments.cache import ResultCache
    import repro.experiments.campaign as campaign_mod

    store1 = ResultStore(tmp_path / "a.jsonl")
    cache = ResultCache(tmp_path / "cache", worker="w1")
    configs = _configs(3)
    first = run_campaign(configs, store=store1, jobs=1, cache=cache)
    assert first.cache_hits == 0 and first.engine_runs == 3

    calls = []
    real_run = campaign_mod.run_experiment

    def counting_run(cfg, telemetry=None):
        calls.append(cfg.label())
        return real_run(cfg, telemetry)

    monkeypatch.setattr(campaign_mod, "run_experiment", counting_run)
    # Fresh store: resume can't mask the cache; every answer must come
    # from the cache with zero engine invocations.
    store2 = ResultStore(tmp_path / "b.jsonl")
    second = run_campaign(configs, store=store2, jobs=1, cache=cache)
    assert calls == []
    assert second.cache_hits == 3 and second.engine_runs == 0
    assert len(second) == 3
    # Cache hits still flow into the store, like real runs.
    assert len(store2.load()) == 3
    # summary() stays exactly as the pre-cache world knew it.
    assert second.summary() == {"ok": 3, "failed": 0, "retried": 0, "total": 3}


def test_campaign_partial_cache(tmp_path, monkeypatch):
    from repro.experiments.cache import ResultCache
    import repro.experiments.campaign as campaign_mod

    cache = ResultCache(tmp_path / "cache", worker="w1")
    configs = _configs(3)
    run_campaign(configs[:2], jobs=1, cache=cache)  # warm 2 of 3

    calls = []
    real_run = campaign_mod.run_experiment
    monkeypatch.setattr(
        campaign_mod,
        "run_experiment",
        lambda cfg, telemetry=None: (calls.append(cfg.seed), real_run(cfg, telemetry))[1],
    )
    progress = []
    results = run_campaign(
        configs, jobs=1, cache=cache,
        progress=lambda done, total, r: progress.append((done, total)),
    )
    assert calls == [102]  # only the cold config ran
    assert results.cache_hits == 2 and results.engine_runs == 1
    # Progress counts hits and runs against the same total.
    assert progress == [(1, 3), (2, 3), (3, 3)]


def test_campaign_cache_disabled_under_telemetry(tmp_path):
    from repro.experiments.cache import ResultCache
    from repro.obs.session import TelemetryOptions

    cache = ResultCache(tmp_path / "cache", worker="w1")
    configs = _configs(1)
    run_campaign(configs, jobs=1, cache=cache)
    # Telemetry runs bypass the cache wholesale: results carry run-log
    # pointers that are not content-addressed.
    telemetry = TelemetryOptions(dir=str(tmp_path / "obs"))
    results = run_campaign(configs, jobs=1, cache=cache, telemetry=telemetry)
    assert results.cache_hits == 0 and results.engine_runs == 1


def test_campaign_progress_tracker(tmp_path, capsys):
    from repro.obs.runlog import read_run_log

    log = tmp_path / "campaign.jsonl"
    tracker = CampaignProgress(log)
    results = run_campaign(
        _configs(2) + [_poisoned_config()],
        jobs=1, progress=tracker, on_failure=tracker.failure,
    )
    tracker.close()
    out = capsys.readouterr()
    assert "FAILED" in out.err
    records = read_run_log(log)
    assert [r["record"] for r in records] == ["campaign_progress"] * 3
    assert records[-1]["finished"] == 3
    assert records[-1]["failed"] == 1
    assert records[-1]["eta_s"] == 0.0
    assert results.summary()["failed"] == 1
