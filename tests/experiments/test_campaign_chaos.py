"""Chaos tests for the hardened campaign executor.

Misbehaving workers are injected through the ``worker_fn`` seam: a hang
(to be killed by the watchdog), a silent death (``os._exit``), and a
fail-once-then-succeed worker (to prove retry-with-backoff).  The custom
workers interpret the ``telemetry_dict`` half of their payload as a
scratch directory for cross-process bookkeeping.
"""

import os
import time

import pytest

from repro.experiments.campaign import (
    CampaignProgress,
    _backoff_delay,
    load_failures,
    run_campaign,
)
from repro.experiments.campaign import _run_one_safe
from repro.experiments.config import ExperimentConfig
from repro.experiments.storage import ResultStore
from repro.units import mbps

HANG_SEED = 101
CRASH_SEED = 102


def _configs(n=1, base_seed=100):
    return [
        ExperimentConfig(
            cca_pair=("cubic", "cubic"),
            bottleneck_bw_bps=mbps(100),
            duration_s=5.0,
            engine="fluid",
            seed=base_seed + i,
        )
        for i in range(n)
    ]


# -- module-level worker functions (must survive the process boundary) ------------


def _hang_worker(payload):
    time.sleep(60)
    return _run_one_safe(payload)


def _crash_worker(payload):
    os._exit(13)


def _raising_worker(payload):
    raise RuntimeError("worker exploded")


def _fail_once_worker(payload):
    """Fail the first attempt per label; succeed afterwards (flag files)."""
    config_dict, scratch = payload
    label = ExperimentConfig.from_dict(config_dict).label()
    flag = os.path.join(scratch["dir"], f"{label}.attempted")
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("1")
        raise RuntimeError("transient failure")
    return _run_one_safe((config_dict, None))


def _chaos_worker(payload):
    """Hang on one seed, crash on another, run everything else normally."""
    config_dict, _ = payload
    if config_dict["seed"] == HANG_SEED:
        time.sleep(60)
    if config_dict["seed"] == CRASH_SEED:
        os._exit(13)
    return _run_one_safe((config_dict, None))


def _counting_worker(payload):
    """Log which labels actually executed, then run normally."""
    config_dict, scratch = payload
    label = ExperimentConfig.from_dict(config_dict).label()
    with open(os.path.join(scratch["dir"], "ran.log"), "a") as fh:
        fh.write(label + "\n")
    return _run_one_safe((config_dict, None))


class _Scratch(dict):
    """Duck-types TelemetryOptions just enough to ride the telemetry slot."""

    def to_dict(self):
        return dict(self)


# -- watchdog ---------------------------------------------------------------------


def test_hung_worker_is_killed_and_recorded_as_timeout(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    start = time.monotonic()
    results = run_campaign(
        _configs(1), store=store, worker_fn=_hang_worker, timeout_s=0.3
    )
    assert time.monotonic() - start < 30  # nowhere near the 60 s sleep
    assert results.summary() == {"ok": 0, "failed": 1, "retried": 0, "total": 1}
    (row,) = results.failures
    assert row.kind == "timeout"
    assert "watchdog" in row.error
    # Persisted to the sibling failures file with its kind intact.
    assert load_failures(store)[0].kind == "timeout"


def test_crashed_worker_recorded_as_crash(tmp_path):
    results = run_campaign(_configs(1), worker_fn=_crash_worker, timeout_s=30)
    (row,) = results.failures
    assert row.kind == "crash"
    assert "exitcode" in row.error


def test_raising_worker_recorded_as_error():
    results = run_campaign(_configs(1), worker_fn=_raising_worker)
    (row,) = results.failures
    assert row.kind == "error"
    assert "worker exploded" in row.error
    assert "Traceback" in row.traceback


def test_timeout_and_retry_validation():
    with pytest.raises(ValueError, match="timeout_s"):
        run_campaign(_configs(1), timeout_s=0)
    with pytest.raises(ValueError, match="retries"):
        run_campaign(_configs(1), retries=-1)


# -- retry with backoff -----------------------------------------------------------


def test_retry_succeeds_on_second_attempt(tmp_path):
    retries_seen = []
    results = run_campaign(
        _configs(1),
        worker_fn=_fail_once_worker,
        telemetry=_Scratch(dir=str(tmp_path)),
        retries=2,
        backoff_s=0.01,
        on_retry=lambda label, attempt, delay, failure: retries_seen.append(
            (label, attempt, failure.kind)
        ),
    )
    assert results.summary() == {"ok": 1, "failed": 0, "retried": 1, "total": 1}
    assert retries_seen == [(_configs(1)[0].label(), 1, "error")]


def test_retries_exhausted_reports_attempts():
    results = run_campaign(_configs(1), worker_fn=_raising_worker, retries=2, backoff_s=0.01)
    assert results.summary() == {"ok": 0, "failed": 1, "retried": 2, "total": 1}
    assert results.failures[0].attempts == 3  # initial try + 2 retries


def test_backoff_delay_is_deterministic_and_exponential():
    d1 = _backoff_delay("some-label", 1, 0.5)
    d2 = _backoff_delay("some-label", 2, 0.5)
    d3 = _backoff_delay("some-label", 3, 0.5)
    assert d1 == _backoff_delay("some-label", 1, 0.5)  # seeded jitter
    assert 0.5 <= d1 <= 0.5 * 1.25
    assert 1.0 <= d2 <= 1.0 * 1.25
    assert 2.0 <= d3 <= 2.0 * 1.25
    assert d1 != _backoff_delay("other-label", 1, 0.5)


# -- the acceptance scenario ------------------------------------------------------


def test_campaign_survives_hang_and_crash_then_retry_pass_clears(tmp_path):
    """One hang + one crash: the rest completes, both are FailedRun rows,
    and a follow-up resume pass re-runs exactly the two failures."""
    store = ResultStore(tmp_path / "r.jsonl")
    configs = _configs(4, base_seed=100)  # seeds 100..103; 101 hangs, 102 crashes
    results = run_campaign(
        configs, store=store, jobs=2, worker_fn=_chaos_worker, timeout_s=5.0
    )
    assert results.summary() == {"ok": 2, "failed": 2, "retried": 0, "total": 4}
    kinds = {f.config["seed"]: f.kind for f in results.failures}
    assert kinds == {HANG_SEED: "timeout", CRASH_SEED: "crash"}
    assert sorted(r.config["seed"] for r in results) == [100, 103]
    assert len(store) == 2

    # Retry pass: resume re-runs only the failed/missing configs.
    scratch = tmp_path / "pass2"
    scratch.mkdir()
    second = run_campaign(
        configs,
        store=store,
        worker_fn=_counting_worker,
        telemetry=_Scratch(dir=str(scratch)),
    )
    assert second.summary() == {"ok": 4, "failed": 0, "retried": 0, "total": 4}
    assert len(store) == 4
    ran = sorted((scratch / "ran.log").read_text().splitlines())
    assert ran == sorted(c.label() for c in configs if c.seed in (HANG_SEED, CRASH_SEED))


def test_retry_records_flow_into_campaign_log(tmp_path):
    from repro.obs.runlog import read_run_log

    log = tmp_path / "campaign.jsonl"
    tracker = CampaignProgress(log, quiet=True)
    run_campaign(
        _configs(1),
        worker_fn=_raising_worker,
        retries=1,
        backoff_s=0.01,
        progress=tracker,
        on_failure=tracker.failure,
        on_retry=tracker.retry,
    )
    tracker.close()
    records = read_run_log(log)
    kinds = [r["record"] for r in records]
    assert kinds == ["campaign_retry", "campaign_progress"]
    retry = records[0]
    assert retry["attempt"] == 1
    assert "worker exploded" in retry["error"]
    assert records[1]["retried"] == 1
    assert records[1]["failed"] == 1
