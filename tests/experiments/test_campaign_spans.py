"""Campaign-side span tracing: serial and hardened executors.

Spans stream into the same ``campaign.jsonl`` as the progress records;
these tests check the timeline a ``repro obs trace`` export would see —
a ``campaign`` root, per-attempt ``worker`` spans with stable lane
numbers, ``store`` spans, and ``retry`` instant markers.
"""

import os

from repro.experiments.campaign import CampaignProgress, run_campaign
from repro.experiments.campaign import _run_one_safe
from repro.experiments.config import ExperimentConfig
from repro.experiments.storage import ResultStore
from repro.obs.runlog import read_run_log, validate_spans
from repro.obs.spans import CAT_CAMPAIGN, CAT_WORKER
from repro.units import mbps


def _configs(n=2, base_seed=300):
    return [
        ExperimentConfig(
            cca_pair=("cubic", "cubic"),
            bottleneck_bw_bps=mbps(100),
            duration_s=5.0,
            engine="fluid",
            seed=base_seed + i,
        )
        for i in range(n)
    ]


def _fail_once_worker(payload):
    """Fail each label's first attempt; succeed afterwards (flag files)."""
    config_dict, scratch = payload
    label = ExperimentConfig.from_dict(config_dict).label()
    flag = os.path.join(scratch["dir"], f"{label}.attempted")
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("1")
        raise RuntimeError("transient failure")
    return _run_one_safe((config_dict, None))


class _Scratch(dict):
    def to_dict(self):
        return dict(self)


def _spans_from(log_path):
    records = [r for r in read_run_log(log_path) if r["record"] == "span"]
    assert validate_spans(records) == []
    return records


def test_serial_campaign_emits_root_worker_and_store_spans(tmp_path):
    log = tmp_path / "campaign.jsonl"
    store = ResultStore(tmp_path / "results.jsonl")
    tracker = CampaignProgress(log, quiet=True, spans=True)
    configs = _configs(2)
    run_campaign(
        configs, store=store, progress=tracker, span_tracer=tracker.spans
    )
    tracker.close()

    spans = _spans_from(log)
    by_name = {s["name"]: s for s in spans}

    root = next(s for s in spans if s["cat"] == CAT_CAMPAIGN)
    assert root["name"] == "campaign"
    assert root["parent_id"] is None
    assert root["labels"]["mode"] == "serial"
    assert root["labels"]["configs"] == 2
    assert root["labels"]["ok"] == 2
    assert root["labels"]["failed"] == 0

    workers = sorted(
        (s for s in spans if s["cat"] == CAT_WORKER), key=lambda s: s["t_start"]
    )
    assert [w["name"] for w in workers] == [c.label() for c in configs]
    assert all(w["lane"] == 0 for w in workers)
    assert all(w["parent_id"] == root["span_id"] for w in workers)
    # One lane means strictly sequential execution.
    for prev, cur in zip(workers, workers[1:]):
        assert prev["t_start"] + prev["dur_s"] <= cur["t_start"]

    stores = [s for s in spans if s["name"] == "store"]
    assert len(stores) == 2
    assert "store" in by_name


def test_hardened_campaign_lanes_retries_and_outcomes(tmp_path):
    log = tmp_path / "campaign.jsonl"
    tracker = CampaignProgress(log, quiet=True, spans=True)
    jobs = 2
    results = run_campaign(
        _configs(3),
        jobs=jobs,
        worker_fn=_fail_once_worker,
        telemetry=_Scratch(dir=str(tmp_path)),
        retries=2,
        backoff_s=0.01,
        progress=tracker,
        on_failure=tracker.failure,
        on_retry=tracker.retry,
        span_tracer=tracker.spans,
    )
    tracker.close()
    assert results.summary() == {"ok": 3, "failed": 0, "retried": 3, "total": 3}

    spans = _spans_from(log)
    root = next(s for s in spans if s["cat"] == CAT_CAMPAIGN)
    assert root["labels"]["mode"] == "hardened"
    assert root["labels"]["ok"] == 3
    assert root["labels"]["retried"] == 3

    attempts = [
        s for s in spans if s["cat"] == CAT_WORKER and s["dur_s"] > 0.0
    ]
    # 3 failing first attempts + 3 successful second attempts.
    assert len(attempts) == 6
    assert all(a["parent_id"] == root["span_id"] for a in attempts)
    # Worker-slot lanes are reused, so the trace never shows more than
    # ``jobs`` lanes.
    assert {a["lane"] for a in attempts} <= set(range(jobs))
    assert sorted(a["labels"]["outcome"] for a in attempts) == [
        "error", "error", "error", "ok", "ok", "ok"
    ]
    assert {a["labels"]["attempt"] for a in attempts} == {1, 2}

    # Spans sharing a lane never overlap (slot freed before reuse).
    for lane in {a["lane"] for a in attempts}:
        on_lane = sorted(
            (a for a in attempts if a["lane"] == lane),
            key=lambda s: s["t_start"],
        )
        for prev, cur in zip(on_lane, on_lane[1:]):
            assert prev["t_start"] + prev["dur_s"] <= cur["t_start"]

    retries = [s for s in spans if s["name"] == "retry"]
    assert len(retries) == 3
    assert all(r["dur_s"] == 0.0 for r in retries)
    assert all(r["labels"]["kind"] == "error" for r in retries)
    assert all(r["labels"]["attempt"] == 1 for r in retries)
