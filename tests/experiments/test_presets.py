"""Unit tests for run presets."""

import pytest

from repro.experiments.presets import PRESETS, get_preset


def test_presets_listed():
    assert {"paper-fluid", "scaled-des", "smoke"} <= set(PRESETS)


def test_paper_fluid_preset():
    configs = get_preset("paper-fluid")
    assert len(configs) == 810 * 5
    assert all(c.engine == "fluid" for c in configs[:20])


def test_scaled_des_preset():
    configs = get_preset("scaled-des")
    assert len(configs) == 810
    sample = configs[0]
    assert sample.engine == "packet"
    assert sample.scale > 1
    assert sample.duration_s < 200


def test_smoke_preset_is_small():
    configs = get_preset("smoke")
    assert 1 <= len(configs) <= 10
    assert all(c.duration_s <= 10 for c in configs)


def test_claims_preset_shape():
    configs = get_preset("claims")
    assert len(configs) == 6 * 3 * 3 * 3  # pairs x AQMs x buffers x tiers
    assert all(c.engine == "fluid" for c in configs)
    pairs = {c.cca_pair for c in configs}
    assert ("bbrv1", "cubic") in pairs
    assert ("cubic", "cubic") in pairs


def test_unknown_preset():
    with pytest.raises(ValueError):
        get_preset("huge")
