"""Multi-process queue tests: disjoint work, no lost results, SIGKILL resume.

Workers are real forked processes sharing one queue directory, one
ResultStore, and one ResultCache root — the deployment shape the sweep
service promises to make safe.
"""

import json
import multiprocessing
import os
import signal
import time

from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentConfig
from repro.experiments.queue import WorkQueue, run_queue_worker
from repro.experiments.storage import ResultStore
from repro.metrics.summary import ExperimentResult, SenderStats
from repro.units import mbps

N_CONFIGS = 12


def _configs():
    return [
        ExperimentConfig(
            cca_pair=("cubic", "cubic"),
            bottleneck_bw_bps=mbps(100),
            duration_s=5.0,
            engine="fluid",
            seed=s,
        )
        for s in range(N_CONFIGS)
    ]


def _fake_run(cfg):
    return ExperimentResult(
        config=cfg.to_dict(),
        senders=[SenderStats("client1", "cubic", 50e6, 0, 1)],
        flows=[],
        jain_index=1.0,
        link_utilization=1.0,
        total_retransmits=0,
        total_throughput_bps=100e6,
        bottleneck_drops=0,
        duration_s=cfg.duration_s,
        engine=cfg.engine,
        wallclock_s=0.01,
    )


def _worker(queue_dir, store_path, cache_root, call_log, worker_name):
    """One campaign worker process draining the shared queue."""

    def logged_run(cfg):
        # O_APPEND line per engine invocation → cross-process call count.
        with open(call_log, "a") as fh:
            fh.write(f"{worker_name} {cfg.seed}\n")
        time.sleep(0.01)  # widen the interleaving window
        return _fake_run(cfg)

    queue = WorkQueue.create(queue_dir, _configs())  # join
    store = ResultStore(store_path)
    cache = ResultCache(cache_root, worker=worker_name)
    run_queue_worker(queue, store=store, cache=cache, run_fn=logged_run)
    store.close()
    cache.close()


def test_two_workers_share_queue_without_duplication(tmp_path):
    queue_dir = tmp_path / "q"
    store_path = tmp_path / "results.jsonl"
    cache_root = tmp_path / "cache"
    call_log = tmp_path / "calls.log"
    call_log.touch()
    WorkQueue.create(queue_dir, _configs())

    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(
            target=_worker,
            args=(queue_dir, store_path, cache_root, call_log, f"w{i}"),
        )
        for i in range(2)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0

    queue = WorkQueue.open(queue_dir)
    assert queue.drained

    # No lost results: every config persisted exactly once.
    rows = ResultStore(store_path).load()
    assert sorted(r.config["seed"] for r in rows) == list(range(N_CONFIGS))

    # No duplicate computation: exactly one engine invocation per config.
    calls = call_log.read_text().splitlines()
    assert len(calls) == N_CONFIGS
    assert sorted(int(line.split()[1]) for line in calls) == list(range(N_CONFIGS))

    # Both worker cache shards fold into one canonical store.
    merged = ResultCache(cache_root).merge()
    assert merged["entries"] == N_CONFIGS and merged["duplicates"] == 0


def _slow_worker(queue_dir, store_path, fast_seeds):
    """Worker that persists ``fast_seeds`` quickly, then stalls forever."""

    def gated_run(cfg):
        if cfg.seed not in fast_seeds:
            time.sleep(600)
        return _fake_run(cfg)

    queue = WorkQueue.create(queue_dir, _configs())
    store = ResultStore(store_path)
    run_queue_worker(queue, store=store, run_fn=gated_run)


def test_sigkill_mid_sweep_reruns_only_incomplete_configs(tmp_path):
    queue_dir = tmp_path / "q"
    store_path = tmp_path / "results.jsonl"
    WorkQueue.create(queue_dir, _configs())
    fast = {0, 1, 2}

    ctx = multiprocessing.get_context("fork")
    victim = ctx.Process(target=_slow_worker, args=(queue_dir, store_path, fast))
    victim.start()

    # Wait until the victim has persisted the fast configs and is wedged
    # inside the next task, then SIGKILL it mid-claim.
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            if len(ResultStore(store_path).load()) >= len(fast):
                break
        except (ValueError, FileNotFoundError):
            pass
        time.sleep(0.05)
    else:  # pragma: no cover - only on runaway hosts
        raise AssertionError("victim never persisted the fast configs")
    time.sleep(0.2)  # let it enter (and claim) the stalled task
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(timeout=10)  # reap: the stale-pid check needs a truly dead pid
    assert victim.exitcode == -signal.SIGKILL

    stored_after_kill = {r.config["seed"] for r in ResultStore(store_path).load()}
    assert fast <= stored_after_kill
    leftover_claims = list((queue_dir / "claims").glob("*.json"))
    assert leftover_claims, "victim should die holding a claim"

    calls = []

    def counting_run(cfg):
        calls.append(cfg.seed)
        return _fake_run(cfg)

    queue = WorkQueue.open(queue_dir)
    result = run_queue_worker(queue, store=ResultStore(store_path), run_fn=counting_run)
    assert queue.drained

    # Only the configs the dead worker never persisted were re-run.
    assert sorted(calls) == sorted(set(range(N_CONFIGS)) - stored_after_kill)
    assert result.summary()["failed"] == 0

    # The final store is complete with no duplicate rows.
    seeds = sorted(r.config["seed"] for r in ResultStore(store_path).load())
    assert seeds == list(range(N_CONFIGS))
