"""Cache-equivalence harness: a cache hit must be byte-identical to a
fresh recompute, for every engine, including the fairness time series.

This is the contract that makes the sweep service trustworthy — serving
from the cache is indistinguishable (modulo ``wallclock_s``) from
re-running the experiment.
"""

import json

import pytest

from repro.experiments.cache import ResultCache, canonical_result_dict
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.units import mbps

ENGINE_CONFIGS = {
    "packet": dict(
        cca_pair=("cubic", "reno"),
        bottleneck_bw_bps=mbps(10),
        duration_s=3.0,
        engine="packet",
        seed=7,
        fairness_interval_s=1.0,
    ),
    "fluid": dict(
        cca_pair=("cubic", "cubic"),
        bottleneck_bw_bps=mbps(200),
        duration_s=8.0,
        engine="fluid",
        seed=7,
        fairness_interval_s=1.0,
    ),
    "fluid_batched": dict(
        cca_pair=("bbrv1", "cubic"),
        bottleneck_bw_bps=mbps(200),
        duration_s=8.0,
        engine="fluid_batched",
        seed=7,
        fairness_interval_s=1.0,
    ),
}


def _canon_json(result) -> str:
    return json.dumps(canonical_result_dict(result.to_dict()), sort_keys=True)


@pytest.mark.parametrize("engine", sorted(ENGINE_CONFIGS))
def test_cache_hit_is_byte_identical_to_recompute(engine, tmp_path):
    cfg = ExperimentConfig(**ENGINE_CONFIGS[engine])
    first = run_experiment(cfg)
    assert first.extra and "fairness" in first.extra, "config must exercise fairness series"

    cache = ResultCache(tmp_path / "cache", worker="w1")
    assert cache.put(first) is True

    # Fresh instance: hit must come from disk, not the in-process object.
    reader = ResultCache(tmp_path / "cache", worker="w2")
    hit = reader.get(cfg)
    assert hit is not None

    recomputed = run_experiment(cfg)
    assert _canon_json(hit) == _canon_json(recomputed)
    # The fairness series itself is part of the identity.
    assert hit.extra["fairness"] == recomputed.extra["fairness"]
    assert hit.extra["fairness"]["samples"], "series must be non-empty"


@pytest.mark.parametrize("engine", sorted(ENGINE_CONFIGS))
def test_cache_survives_merge_byte_identical(engine, tmp_path):
    """The hit is equally faithful after shards fold into canonical."""
    cfg = ExperimentConfig(**ENGINE_CONFIGS[engine])
    result = run_experiment(cfg)
    cache = ResultCache(tmp_path / "cache", worker="w1")
    cache.put(result)
    cache.close()
    cache.merge()

    hit = ResultCache(tmp_path / "cache").get(cfg)
    assert hit is not None
    assert _canon_json(hit) == _canon_json(result)


def test_cache_get_misses_on_config_drift(tmp_path):
    """Any config change — even just the seed — is a different cache key."""
    base = ExperimentConfig(**ENGINE_CONFIGS["fluid"])
    cache = ResultCache(tmp_path / "cache", worker="w1")
    cache.put(run_experiment(base))
    drifted = ExperimentConfig(**{**ENGINE_CONFIGS["fluid"], "seed": 8})
    assert cache.get(drifted) is None
    assert cache.get(base) is not None
