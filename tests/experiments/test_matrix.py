"""Unit tests for the experiment grid (Table 1)."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.matrix import full_matrix, iter_cells
from repro.units import mbps


def test_full_grid_is_810():
    """9 CCA pairs x 3 AQMs x 6 buffers x 5 bandwidths = 810 (paper §4.1)."""
    assert len(full_matrix()) == 810
    assert sum(1 for _ in iter_cells()) == 810


def test_repetitions_multiply():
    assert len(full_matrix(repetitions=5)) == 810 * 5


def test_seeds_unique():
    configs = full_matrix(repetitions=3)
    seeds = {c.seed for c in configs}
    assert len(seeds) == len(configs)


def test_where_filter():
    configs = full_matrix(where=lambda c: c.aqm == "red" and c.is_intra_cca)
    assert len(configs) == 5 * 6 * 5  # 5 intra pairs x 6 buffers x 5 bws
    assert all(c.aqm == "red" for c in configs)


def test_overrides_propagate():
    configs = full_matrix(
        cca_pairs=(("cubic", "cubic"),),
        aqms=("fifo",),
        buffer_bdps=(2.0,),
        bandwidths_bps=(mbps(100),),
        engine="fluid",
        scale=10.0,
        duration_s=12.0,
    )
    assert len(configs) == 1
    cfg = configs[0]
    assert cfg.engine == "fluid"
    assert cfg.scale == 10.0
    assert cfg.duration_s == 12.0


def test_configs_are_valid():
    for cfg in full_matrix()[:50]:
        assert isinstance(cfg, ExperimentConfig)
        assert cfg.label()
