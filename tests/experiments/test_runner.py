"""Unit tests for the packet-engine experiment runner."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment, run_packet_experiment
from repro.units import mbps


def _cfg(**kw):
    base = dict(
        cca_pair=("cubic", "cubic"),
        aqm="fifo",
        buffer_bdp=2.0,
        bottleneck_bw_bps=mbps(10),
        duration_s=8.0,
        mss_bytes=1500,
        flows_per_node=1,
        seed=11,
    )
    base.update(kw)
    return ExperimentConfig(**base)


def test_packet_result_structure():
    r = run_packet_experiment(_cfg())
    assert r.engine == "packet"
    assert len(r.senders) == 2
    assert len(r.flows) == 2
    assert r.events_processed > 0
    assert r.duration_s == 8.0
    assert 0.5 < r.link_utilization <= 1.02
    assert 0.5 <= r.jain_index <= 1.0


def test_dispatch_by_engine_field():
    packet = run_experiment(_cfg())
    fluid = run_experiment(_cfg(engine="fluid"))
    assert packet.engine == "packet"
    assert fluid.engine == "fluid"


def test_deterministic_given_seed():
    a = run_packet_experiment(_cfg())
    b = run_packet_experiment(_cfg())
    assert a.total_throughput_bps == b.total_throughput_bps
    assert a.total_retransmits == b.total_retransmits
    assert a.events_processed == b.events_processed


def test_seed_changes_outcome():
    a = run_packet_experiment(_cfg(seed=1))
    b = run_packet_experiment(_cfg(seed=2))
    # Start jitter differs; exact byte counts will differ.
    assert a.total_throughput_bps != b.total_throughput_bps


def test_warmup_excluded_from_average():
    full = run_packet_experiment(_cfg())
    warm = run_packet_experiment(_cfg(warmup_s=4.0))
    assert warm.duration_s == 4.0
    # Slow start depressed the early average: warm-up-excluded is higher.
    assert warm.total_throughput_bps > 0.9 * full.total_throughput_bps


def test_sampler_series_recorded():
    r = run_packet_experiment(_cfg(sample_interval_s=1.0))
    assert "series_bps" in r.extra
    series = r.extra["series_bps"]
    assert len(series) == 2  # one per flow
    for values in series.values():
        assert len(values) == 8


def test_config_embedded_in_result():
    cfg = _cfg()
    r = run_packet_experiment(cfg)
    assert ExperimentConfig.from_dict(r.config) == cfg
