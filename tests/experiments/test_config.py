"""Unit tests for experiment configuration (Tables 1 & 2)."""

import pytest

from repro.experiments.config import (
    PAPER_BANDWIDTHS_BPS,
    PAPER_CCA_PAIRS,
    PAPER_FLOW_PLANS,
    ExperimentConfig,
    flow_plan,
)
from repro.units import gbps, mbps


def test_table2_flow_plans():
    assert flow_plan(mbps(100)).total_flows == 2
    assert flow_plan(mbps(500)).total_flows == 10
    assert flow_plan(gbps(1)).total_flows == 20
    assert flow_plan(gbps(10)).total_flows == 200
    assert flow_plan(gbps(25)).total_flows == 500


def test_table2_process_stream_split():
    plan = flow_plan(gbps(10))
    assert plan.processes_per_node == 10
    assert plan.streams_per_process == 10
    plan25 = flow_plan(gbps(25))
    assert plan25.processes_per_node == 25
    assert plan25.streams_per_process == 10


def test_off_grid_bandwidth_uses_nearest_tier():
    assert flow_plan(mbps(120)) == PAPER_FLOW_PLANS[mbps(100)]
    assert flow_plan(gbps(20)) == PAPER_FLOW_PLANS[gbps(25)]


def test_flow_plan_rejects_nonpositive():
    with pytest.raises(ValueError):
        flow_plan(0)


def test_config_canonicalizes_cca_names():
    cfg = ExperimentConfig(cca_pair=("bbr", "CUBIC"))
    assert cfg.cca_pair == ("bbrv1", "cubic")


def test_intra_cca_detection():
    assert ExperimentConfig(cca_pair=("reno", "reno")).is_intra_cca
    assert not ExperimentConfig(cca_pair=("reno", "cubic")).is_intra_cca


def test_plan_override():
    cfg = ExperimentConfig(cca_pair=("cubic", "cubic"), flows_per_node=7)
    assert cfg.plan.flows_per_node == 7


def test_label_stable_and_distinct():
    a = ExperimentConfig(cca_pair=("bbrv1", "cubic"), aqm="fifo", buffer_bdp=2.0,
                         bottleneck_bw_bps=mbps(100), seed=1)
    b = ExperimentConfig(cca_pair=("bbrv1", "cubic"), aqm="fifo", buffer_bdp=2.0,
                         bottleneck_bw_bps=mbps(100), seed=2)
    assert a.label() != b.label()
    assert a.label() == ExperimentConfig.from_dict(a.to_dict()).label()


def test_roundtrip_through_dict():
    cfg = ExperimentConfig(cca_pair=("htcp", "cubic"), aqm="red", buffer_bdp=8.0,
                           bottleneck_bw_bps=gbps(10), engine="fluid", seed=9)
    cfg2 = ExperimentConfig.from_dict(cfg.to_dict())
    assert cfg2 == cfg


@pytest.mark.parametrize("kwargs", [
    {"aqm": "wred"},
    {"engine": "ns3"},
    {"duration_s": 0},
    {"warmup_s": -1},
    {"warmup_s": 300},
    {"flows_per_node": 0},
])
def test_validation(kwargs):
    base = dict(cca_pair=("cubic", "cubic"))
    base.update(kwargs)
    with pytest.raises(ValueError):
        ExperimentConfig(**base)


def test_paper_constants():
    assert len(PAPER_CCA_PAIRS) == 9
    assert len(PAPER_BANDWIDTHS_BPS) == 5


def test_canonical_dict_is_the_single_identity_form():
    """``to_dict`` (stored results), the cache key, and the scenario IR
    façade all derive from one ``canonical_dict()``: empty faults and an
    unset fairness cadence are omitted, set values are kept."""
    bare = ExperimentConfig(cca_pair=("cubic", "cubic"))
    d = bare.canonical_dict()
    assert d == bare.to_dict()
    assert "faults" not in d and "fairness_interval_s" not in d

    loud = ExperimentConfig.from_dict(
        {
            "cca_pair": ["cubic", "cubic"],
            "fairness_interval_s": 1.0,
            "faults": [{"kind": "link_flap", "at_s": 1.0, "duration_s": 0.5}],
        }
    )
    d = loud.canonical_dict()
    assert d["fairness_interval_s"] == 1.0 and d["faults"]


def test_canonical_dict_roundtrips_every_preset():
    import json

    from repro.experiments.presets import PRESETS

    for preset in PRESETS.values():
        for cfg in preset.build()[:60]:
            blob = json.dumps(cfg.canonical_dict(), sort_keys=True)
            again = ExperimentConfig.from_dict(json.loads(blob))
            assert json.dumps(again.canonical_dict(), sort_keys=True) == blob
