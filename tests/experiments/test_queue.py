"""Unit tests for the filesystem work queue and its claim protocol."""

import json
import os

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentConfig
from repro.experiments.queue import (
    QueueTask,
    WorkQueue,
    plan_tasks,
    run_queue_worker,
    task_id_for,
)
from repro.experiments.storage import ResultStore
from repro.metrics.summary import ExperimentResult, SenderStats
from repro.units import mbps


def _config(seed=1, engine="fluid", **kw):
    return ExperimentConfig(
        cca_pair=("cubic", "cubic"),
        bottleneck_bw_bps=mbps(100),
        duration_s=5.0,
        engine=engine,
        seed=seed,
        **kw,
    )


def _fake_run(cfg):
    return ExperimentResult(
        config=cfg.to_dict(),
        senders=[SenderStats("client1", "cubic", 50e6, 0, 1)],
        flows=[],
        jain_index=1.0,
        link_utilization=1.0,
        total_retransmits=0,
        total_throughput_bps=100e6,
        bottleneck_drops=0,
        duration_s=cfg.duration_s,
        engine=cfg.engine,
        wallclock_s=0.01,
    )


# -- task planning ------------------------------------------------------------------


def test_task_ids_are_content_addressed():
    a = task_id_for([_config(1).to_dict()])
    assert a == task_id_for([_config(1).to_dict()])
    assert a != task_id_for([_config(2).to_dict()])
    assert len(a) == 20


def test_plan_tasks_singles():
    tasks = plan_tasks([_config(1), _config(2)])
    assert [t.kind for t in tasks] == ["one", "one"]
    assert all(len(t.configs) == 1 for t in tasks)


def test_plan_tasks_groups_batched_shards():
    configs = [_config(s, engine="fluid_batched") for s in (1, 2)] + [_config(3)]
    tasks = plan_tasks(configs)
    kinds = sorted(t.kind for t in tasks)
    assert "shard" in kinds and "one" in kinds
    shard_cfgs = [c for t in tasks if t.kind == "shard" for c in t.configs]
    assert {c["seed"] for c in shard_cfgs} == {1, 2}


# -- create / open / join -----------------------------------------------------------


def test_create_then_join_same_configs(tmp_path):
    configs = [_config(1), _config(2)]
    q1 = WorkQueue.create(tmp_path / "q", configs)
    q2 = WorkQueue.create(tmp_path / "q", configs)  # join, not overwrite
    assert {t.task_id for t in q1.tasks} == {t.task_id for t in q2.tasks}
    assert (tmp_path / "q" / "tasks.jsonl").exists()


def test_join_with_different_configs_raises(tmp_path):
    WorkQueue.create(tmp_path / "q", [_config(1)])
    with pytest.raises(ValueError, match="frozen sweep"):
        WorkQueue.create(tmp_path / "q", [_config(99)])


def test_open_missing_queue_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        WorkQueue.open(tmp_path / "nope")


# -- claim protocol -----------------------------------------------------------------


def test_claim_is_exclusive(tmp_path):
    q1 = WorkQueue.create(tmp_path / "q", [_config(1)])
    q2 = WorkQueue.open(tmp_path / "q")
    task = q1.claim()
    assert task is not None
    assert q2.claim() is None  # live claim from q1 blocks it
    q1.release(task.task_id)
    assert q2.claim() is not None  # released claim is takeable again


def test_done_tasks_are_skipped(tmp_path):
    q = WorkQueue.create(tmp_path / "q", [_config(1), _config(2)])
    first = q.claim()
    q.complete(first.task_id, results=1)
    assert q.is_done(first.task_id)
    second = q.claim()
    assert second is not None and second.task_id != first.task_id
    q.complete(second.task_id, results=1)
    assert q.claim() is None
    assert q.drained


def test_stale_claim_from_dead_pid_is_reclaimed(tmp_path):
    q = WorkQueue.create(tmp_path / "q", [_config(1)])
    task = q.tasks[0]
    # Forge a claim owned by a dead process on this host.
    dead_pid = 2**22 - 1  # beyond default pid_max: guaranteed dead
    q._claim_path(task.task_id).write_text(
        json.dumps({"pid": dead_pid, "host": __import__("socket").gethostname()})
    )
    claimed = q.claim()
    assert claimed is not None and claimed.task_id == task.task_id
    assert task.task_id in q.reclaimed


def test_live_claim_is_not_stolen(tmp_path):
    q = WorkQueue.create(tmp_path / "q", [_config(1)])
    task = q.tasks[0]
    q._claim_path(task.task_id).write_text(
        json.dumps({"pid": os.getpid(), "host": __import__("socket").gethostname()})
    )
    assert q.claim() is None
    assert q.reclaimed == set()


def test_cross_host_claim_is_never_stale(tmp_path):
    q = WorkQueue.create(tmp_path / "q", [_config(1)])
    task = q.tasks[0]
    q._claim_path(task.task_id).write_text(
        json.dumps({"pid": 1, "host": "some-other-host"})
    )
    assert q.claim() is None


def test_counts(tmp_path):
    q = WorkQueue.create(tmp_path / "q", [_config(s) for s in (1, 2, 3)])
    assert q.counts() == {"tasks": 3, "configs": 3, "done": 0, "claimed": 0, "pending": 3}
    t = q.claim()
    assert q.counts()["claimed"] == 1
    q.complete(t.task_id, results=1)
    c = q.counts()
    assert c["done"] == 1 and c["pending"] == 2
    assert not q.drained


# -- worker loop --------------------------------------------------------------------


def test_run_queue_worker_drains_and_persists(tmp_path):
    configs = [_config(s) for s in (1, 2, 3)]
    q = WorkQueue.create(tmp_path / "q", configs)
    store = ResultStore(tmp_path / "r.jsonl")
    seen = []
    result = run_queue_worker(
        q,
        store=store,
        run_fn=_fake_run,
        progress=lambda i, total, r: seen.append((i, total)),
    )
    assert result.summary()["ok"] == 3
    assert result.engine_runs == 3 and result.cache_hits == 0
    assert q.drained
    assert len(store.load()) == 3
    assert seen == [(1, 3), (2, 3), (3, 3)]


def test_run_queue_worker_uses_cache(tmp_path):
    configs = [_config(s) for s in (1, 2)]
    cache = ResultCache(tmp_path / "cache", worker="warmup")
    for cfg in configs:
        cache.put(_fake_run(cfg))
    cache.close()

    q = WorkQueue.create(tmp_path / "q", configs)
    calls = []

    def counting_run(cfg):
        calls.append(cfg.label())
        return _fake_run(cfg)

    worker_cache = ResultCache(tmp_path / "cache", worker="w1")
    result = run_queue_worker(q, cache=worker_cache, run_fn=counting_run)
    assert calls == []  # warm cache: zero engine invocations
    assert result.cache_hits == 2 and result.engine_runs == 0
    assert q.drained


def test_run_queue_worker_records_failures(tmp_path):
    q = WorkQueue.create(tmp_path / "q", [_config(1), _config(2)])
    store = ResultStore(tmp_path / "r.jsonl")

    def flaky(cfg):
        if cfg.seed == 1:
            raise RuntimeError("boom")
        return _fake_run(cfg)

    result = run_queue_worker(q, store=store, run_fn=flaky)
    assert result.summary()["ok"] == 1 and result.summary()["failed"] == 1
    assert q.drained  # failed tasks still complete (recorded, not retried forever)
    failures = (tmp_path / "r.failures.jsonl")
    assert failures.exists() and "boom" in failures.read_text()


def test_reclaimed_task_skips_persisted_configs(tmp_path):
    """After a SIGKILL the new owner re-runs only what the store lacks."""
    import socket

    configs = [_config(s) for s in (1, 2)]
    store = ResultStore(tmp_path / "r.jsonl")
    # The dead worker persisted seed 1, then died before complete().
    store.append(_fake_run(configs[0]))
    store.close()
    q = WorkQueue.create(tmp_path / "q", configs)
    for task in q.tasks:
        if task.configs[0]["seed"] == 1:
            q._claim_path(task.task_id).write_text(
                json.dumps({"pid": 2**22 - 1, "host": socket.gethostname()})
            )
    calls = []

    def counting_run(cfg):
        calls.append(cfg.seed)
        return _fake_run(cfg)

    result = run_queue_worker(q, store=ResultStore(tmp_path / "r.jsonl"), run_fn=counting_run)
    assert calls == [2]  # seed 1 recovered from the store, not recomputed
    assert q.drained
    rows = ResultStore(tmp_path / "r.jsonl").load()
    assert sorted(r.config["seed"] for r in rows) == [1, 2]  # no duplicate line
    assert result.summary()["ok"] == 2


def test_queue_task_roundtrip():
    t = QueueTask("abc", "one", [_config(1).to_dict()])
    assert QueueTask.from_dict(t.to_dict()) == t
