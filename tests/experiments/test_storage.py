"""Unit tests for the JSONL result store."""

import warnings

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.storage import ResultStore, TornWriteWarning
from repro.metrics.summary import ExperimentResult, SenderStats
from repro.units import mbps


def _result(seed=1):
    cfg = ExperimentConfig(cca_pair=("cubic", "cubic"), bottleneck_bw_bps=mbps(100), seed=seed)
    return ExperimentResult(
        config=cfg.to_dict(),
        senders=[SenderStats("client1", "cubic", 50e6, 5, 1),
                 SenderStats("client2", "cubic", 50e6, 3, 1)],
        flows=[],
        jain_index=1.0,
        link_utilization=1.0,
        total_retransmits=8,
        total_throughput_bps=100e6,
        bottleneck_drops=8,
        duration_s=10.0,
        engine="packet",
    )


def test_append_and_load_roundtrip(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    store.append(_result(1))
    store.append(_result(2))
    loaded = store.load()
    assert len(loaded) == 2
    assert loaded[0].config["seed"] == 1
    assert loaded[1].config["seed"] == 2
    assert len(store) == 2


def test_empty_store(tmp_path):
    store = ResultStore(tmp_path / "missing.jsonl")
    assert store.load() == []
    assert store.completed_labels() == set()


def test_completed_labels(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    store.append(_result(7))
    labels = store.completed_labels()
    cfg = ExperimentConfig(cca_pair=("cubic", "cubic"), bottleneck_bw_bps=mbps(100), seed=7)
    assert cfg.label() in labels


def test_corrupt_line_raises(tmp_path):
    path = tmp_path / "r.jsonl"
    path.write_text('{"not": "a result"}\n')
    store = ResultStore(path)
    with pytest.raises(ValueError):
        store.load()


def test_blank_lines_skipped(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    store.append(_result())
    with store.path.open("a") as fh:
        fh.write("\n\n")
    assert len(store.load()) == 1


def test_creates_parent_dir(tmp_path):
    store = ResultStore(tmp_path / "deep" / "dir" / "r.jsonl")
    store.append(_result())
    assert store.path.exists()


def test_append_reuses_one_handle(tmp_path):
    """The write handle is opened once and reused across appends."""
    store = ResultStore(tmp_path / "r.jsonl")
    assert store._fh is None
    store.append(_result(1))
    fh = store._fh
    assert fh is not None
    store.append(_result(2))
    assert store._fh is fh
    store.close()
    assert store._fh is None
    # Reopens transparently after close.
    store.append(_result(3))
    assert len(store.load()) == 3


def test_store_context_manager_closes(tmp_path):
    with ResultStore(tmp_path / "r.jsonl") as store:
        store.append(_result(1))
        assert store._fh is not None
    assert store._fh is None
    assert len(store.load()) == 1


def _tear_last_line(path, keep_bytes=37):
    """Simulate a crash mid-append: truncate the final line partway."""
    data = path.read_bytes()
    assert data.endswith(b"\n")
    cut = data.rstrip(b"\n").rfind(b"\n") + 1  # start of the last line
    assert len(data) - cut > keep_bytes, "line too short to tear"
    path.write_bytes(data[: cut + keep_bytes])


def test_torn_trailing_line_skipped_with_warning(tmp_path):
    """A partial final line (SIGKILL mid-append) must not brick resume."""
    store = ResultStore(tmp_path / "r.jsonl")
    store.append(_result(1))
    store.append(_result(2))
    store.close()
    _tear_last_line(store.path)
    with pytest.warns(TornWriteWarning, match="torn write"):
        loaded = ResultStore(store.path).load()
    assert [r.config["seed"] for r in loaded] == [1]
    with pytest.warns(TornWriteWarning):
        labels = ResultStore(store.path).completed_labels()
    survivor = ExperimentConfig(
        cca_pair=("cubic", "cubic"), bottleneck_bw_bps=mbps(100), seed=1
    )
    assert labels == {survivor.label()}


def test_torn_line_followed_by_blanks_still_skipped(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    store.append(_result(1))
    store.append(_result(2))
    store.close()
    _tear_last_line(store.path)
    with store.path.open("a") as fh:
        fh.write("\n\n")
    with pytest.warns(TornWriteWarning):
        assert len(ResultStore(store.path).load()) == 1


def test_corruption_mid_file_still_raises(tmp_path):
    """Only the *trailing* line gets the torn-write pardon."""
    store = ResultStore(tmp_path / "r.jsonl")
    store.append(_result(1))
    store.append(_result(2))
    store.close()
    data = store.path.read_bytes().splitlines(keepends=True)
    data[0] = data[0][:40] + b"\n"  # truncate the FIRST line instead
    store.path.write_bytes(b"".join(data))
    with pytest.raises(ValueError, match="not a torn trailing write"):
        ResultStore(store.path).load()


def test_append_after_torn_tail_repairs_file(tmp_path):
    """Appending to a torn store must not glue a new record onto the
    fragment (which would turn a recoverable tail into mid-file
    corruption): the fragment is truncated into a .torn.jsonl sidecar."""
    store = ResultStore(tmp_path / "r.jsonl")
    store.append(_result(1))
    store.append(_result(2))
    store.close()
    _tear_last_line(store.path)
    fresh = ResultStore(store.path)
    with pytest.warns(TornWriteWarning, match="repaired"):
        fresh.append(_result(3))
    fresh.close()
    # No warning on read now: the file is whole again.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        loaded = ResultStore(store.path).load()
    assert [r.config["seed"] for r in loaded] == [1, 3]
    sidecar = store.path.with_suffix(".torn.jsonl")
    assert sidecar.exists() and sidecar.read_bytes().strip()


def test_whole_file_is_one_fragment(tmp_path):
    """A store torn inside its very first line repairs to empty."""
    store = ResultStore(tmp_path / "r.jsonl")
    store.append(_result(1))
    store.close()
    data = store.path.read_bytes()
    store.path.write_bytes(data[:25])  # no newline anywhere
    fresh = ResultStore(store.path)
    with pytest.warns(TornWriteWarning):
        fresh.append(_result(2))
    fresh.close()
    assert [r.config["seed"] for r in ResultStore(store.path).load()] == [2]


def test_schema_violation_raises_even_as_final_line(tmp_path):
    """Valid JSON that is not a result record is corruption, not a torn
    write — it must raise wherever it sits."""
    store = ResultStore(tmp_path / "r.jsonl")
    store.append(_result(1))
    store.close()
    with store.path.open("a") as fh:
        fh.write('{"not": "a result"}\n')
    with pytest.raises(ValueError, match="corrupt result line"):
        ResultStore(store.path).load()


def _append_worker(path, seed_base, count):
    store = ResultStore(path)
    for i in range(count):
        store.append(_result(seed_base + i))
    store.close()


def test_concurrent_appends_from_processes(tmp_path):
    """Several processes appending to one file never corrupt a line.

    Each store holds its own O_APPEND handle and writes whole flushed
    lines, so interleaved appends from concurrent campaign shards must
    all survive and parse.
    """
    import multiprocessing

    path = tmp_path / "shared.jsonl"
    workers, per_worker = 4, 25
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=_append_worker, args=(path, w * 1000, per_worker))
        for w in range(workers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join()
        assert p.exitcode == 0

    loaded = ResultStore(path).load()  # raises on any corrupt line
    assert len(loaded) == workers * per_worker
    seeds = sorted(r.config["seed"] for r in loaded)
    assert seeds == sorted(w * 1000 + i for w in range(workers) for i in range(per_worker))
