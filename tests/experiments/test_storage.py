"""Unit tests for the JSONL result store."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.storage import ResultStore
from repro.metrics.summary import ExperimentResult, SenderStats
from repro.units import mbps


def _result(seed=1):
    cfg = ExperimentConfig(cca_pair=("cubic", "cubic"), bottleneck_bw_bps=mbps(100), seed=seed)
    return ExperimentResult(
        config=cfg.to_dict(),
        senders=[SenderStats("client1", "cubic", 50e6, 5, 1),
                 SenderStats("client2", "cubic", 50e6, 3, 1)],
        flows=[],
        jain_index=1.0,
        link_utilization=1.0,
        total_retransmits=8,
        total_throughput_bps=100e6,
        bottleneck_drops=8,
        duration_s=10.0,
        engine="packet",
    )


def test_append_and_load_roundtrip(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    store.append(_result(1))
    store.append(_result(2))
    loaded = store.load()
    assert len(loaded) == 2
    assert loaded[0].config["seed"] == 1
    assert loaded[1].config["seed"] == 2
    assert len(store) == 2


def test_empty_store(tmp_path):
    store = ResultStore(tmp_path / "missing.jsonl")
    assert store.load() == []
    assert store.completed_labels() == set()


def test_completed_labels(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    store.append(_result(7))
    labels = store.completed_labels()
    cfg = ExperimentConfig(cca_pair=("cubic", "cubic"), bottleneck_bw_bps=mbps(100), seed=7)
    assert cfg.label() in labels


def test_corrupt_line_raises(tmp_path):
    path = tmp_path / "r.jsonl"
    path.write_text('{"not": "a result"}\n')
    store = ResultStore(path)
    with pytest.raises(ValueError):
        store.load()


def test_blank_lines_skipped(tmp_path):
    store = ResultStore(tmp_path / "r.jsonl")
    store.append(_result())
    with store.path.open("a") as fh:
        fh.write("\n\n")
    assert len(store.load()) == 1


def test_creates_parent_dir(tmp_path):
    store = ResultStore(tmp_path / "deep" / "dir" / "r.jsonl")
    store.append(_result())
    assert store.path.exists()


def test_append_reuses_one_handle(tmp_path):
    """The write handle is opened once and reused across appends."""
    store = ResultStore(tmp_path / "r.jsonl")
    assert store._fh is None
    store.append(_result(1))
    fh = store._fh
    assert fh is not None
    store.append(_result(2))
    assert store._fh is fh
    store.close()
    assert store._fh is None
    # Reopens transparently after close.
    store.append(_result(3))
    assert len(store.load()) == 3


def test_store_context_manager_closes(tmp_path):
    with ResultStore(tmp_path / "r.jsonl") as store:
        store.append(_result(1))
        assert store._fh is not None
    assert store._fh is None
    assert len(store.load()) == 1


def _append_worker(path, seed_base, count):
    store = ResultStore(path)
    for i in range(count):
        store.append(_result(seed_base + i))
    store.close()


def test_concurrent_appends_from_processes(tmp_path):
    """Several processes appending to one file never corrupt a line.

    Each store holds its own O_APPEND handle and writes whole flushed
    lines, so interleaved appends from concurrent campaign shards must
    all survive and parse.
    """
    import multiprocessing

    path = tmp_path / "shared.jsonl"
    workers, per_worker = 4, 25
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=_append_worker, args=(path, w * 1000, per_worker))
        for w in range(workers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join()
        assert p.exitcode == 0

    loaded = ResultStore(path).load()  # raises on any corrupt line
    assert len(loaded) == workers * per_worker
    seeds = sorted(r.config["seed"] for r in loaded)
    assert seeds == sorted(w * 1000 + i for w in range(workers) for i in range(per_worker))
