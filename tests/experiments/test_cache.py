"""Unit + property tests for the content-addressed result cache."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.cache import (
    CacheConflictError,
    ResultCache,
    canonical_result_dict,
    config_key,
    default_salt,
    results_equivalent,
    salt_slug,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.storage import ResultStore
from repro.metrics.summary import ExperimentResult, SenderStats
from repro.units import mbps


def _config(seed=1, engine="fluid", **kw):
    return ExperimentConfig(
        cca_pair=("cubic", "cubic"),
        bottleneck_bw_bps=mbps(100),
        duration_s=5.0,
        engine=engine,
        seed=seed,
        **kw,
    )


def _result(seed=1, *, jain=1.0, wallclock=0.5, engine="fluid"):
    cfg = _config(seed, engine=engine)
    return ExperimentResult(
        config=cfg.to_dict(),
        senders=[
            SenderStats("client1", "cubic", 50e6, 5, 1),
            SenderStats("client2", "cubic", 50e6, 3, 1),
        ],
        flows=[],
        jain_index=jain,
        link_utilization=1.0,
        total_retransmits=8,
        total_throughput_bps=100e6,
        bottleneck_drops=8,
        duration_s=5.0,
        engine=engine,
        wallclock_s=wallclock,
    )


# -- keys and identity --------------------------------------------------------------


def test_config_key_is_stable_and_engine_sensitive():
    k1 = config_key(_config(1), "salt")
    assert k1 == config_key(_config(1), "salt")
    assert k1 != config_key(_config(2), "salt")
    assert k1 != config_key(_config(1, engine="packet"), "salt")
    assert k1 != config_key(_config(1), "other-salt")
    assert len(k1) == 64 and int(k1, 16) >= 0


def test_default_salt_carries_version():
    from repro._version import __version__

    assert __version__ in default_salt()


def test_salt_slug_is_filesystem_safe():
    assert "/" not in salt_slug("a/b c:d")
    assert salt_slug("repro-1.0.0") == "repro-1.0.0"
    assert salt_slug("") == "default"


def test_canonical_form_strips_only_wallclock():
    d = _result(wallclock=1.23).to_dict()
    canon = canonical_result_dict(d)
    assert "wallclock_s" not in canon
    assert d["wallclock_s"] == 1.23  # input untouched
    assert canon["jain_index"] == d["jain_index"]
    assert results_equivalent(_result(wallclock=0.1).to_dict(), _result(wallclock=9.9).to_dict())
    assert not results_equivalent(_result(jain=1.0).to_dict(), _result(jain=0.5).to_dict())


# -- get / put / stats --------------------------------------------------------------


def test_put_then_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path, worker="w1")
    assert cache.get(_config(1)) is None  # miss
    assert cache.put(_result(1)) is True
    hit = cache.get(_config(1))
    assert hit is not None
    assert hit.to_dict() == _result(1).to_dict()
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1
    assert cache.stats()["puts"] == 1
    assert cache.stats()["entries"] == 1


def test_shard_layout_is_salt_namespaced(tmp_path):
    cache = ResultCache(tmp_path, salt="s1", worker="w1")
    cache.put(_result(1))
    assert (tmp_path / salt_slug("s1") / "shards" / "w1.jsonl").exists()
    # A different salt sees a cold cache over the same root.
    other = ResultCache(tmp_path, salt="s2", worker="w1")
    assert other.get(_config(1)) is None


def test_shard_files_are_plain_result_stores(tmp_path):
    cache = ResultCache(tmp_path, worker="w1")
    cache.put(_result(1))
    cache.close()
    rows = ResultStore(cache.shard_path).load()
    assert len(rows) == 1 and rows[0].config["seed"] == 1


def test_duplicate_put_dedups(tmp_path):
    cache = ResultCache(tmp_path, worker="w1")
    assert cache.put(_result(1)) is True
    assert cache.put(_result(1, wallclock=9.0)) is False  # equivalent: skipped
    cache.close()
    assert len(ResultStore(cache.shard_path).load()) == 1


def test_conflicting_put_raises(tmp_path):
    cache = ResultCache(tmp_path, worker="w1")
    cache.put(_result(1, jain=1.0))
    with pytest.raises(CacheConflictError, match="jain_index"):
        cache.put(_result(1, jain=0.5))


def test_telemetry_results_are_not_cacheable(tmp_path):
    cache = ResultCache(tmp_path, worker="w1")
    r = _result(1)
    r.extra = {"obs": {"run_log": "/tmp/x.jsonl"}}
    assert cache.put(r) is False
    assert cache.get(_config(1)) is None


def test_cross_instance_visibility_via_refresh(tmp_path):
    w1 = ResultCache(tmp_path, worker="w1")
    w2 = ResultCache(tmp_path, worker="w2")
    w1.put(_result(1))
    assert w2.get(_config(1)) is None  # index built before the put
    w2.refresh()
    assert w2.get(_config(1)) is not None


# -- merge / compact ----------------------------------------------------------------


def test_merge_folds_shards_into_canonical(tmp_path):
    for w, seeds in (("w1", [1, 2]), ("w2", [3])):
        cache = ResultCache(tmp_path, worker=w)
        for s in seeds:
            cache.put(_result(s))
        cache.close()
    # A racing worker that never refreshed writes seed 2 again, raw.
    w3 = ResultCache(tmp_path, worker="w3")
    ResultStore(w3.shard_path).append(_result(2))
    merger = ResultCache(tmp_path, worker="merger")
    summary = merger.merge()
    assert summary == {"entries": 3, "shards_folded": 3, "duplicates": 1}
    assert merger.shard_paths() == []  # shards deleted
    rows = ResultStore(merger.canonical.path).load()
    assert sorted(r.config["seed"] for r in rows) == [1, 2, 3]
    # Canonical is sorted by key → deterministic bytes.
    lines = merger.canonical.path.read_text().splitlines()
    keys = [config_key(ExperimentConfig.from_dict(json.loads(l)["config"]), merger.salt)
            for l in lines]
    assert keys == sorted(keys)


def test_merge_is_idempotent_and_last_write_wins(tmp_path):
    cache = ResultCache(tmp_path, worker="w1")
    cache.put(_result(1, wallclock=0.1))
    cache.close()
    merger = ResultCache(tmp_path)
    merger.merge()
    first = merger.canonical.path.read_bytes()
    # Re-merging with no shards is a no-op byte-wise.
    merger.merge()
    assert merger.canonical.path.read_bytes() == first
    # An equivalent later write (different wallclock) replaces the entry.
    late = ResultCache(tmp_path, worker="w9")
    late.refresh()
    assert late.put(_result(1, wallclock=7.0)) is False  # deduped against index
    # Force a raw duplicate row as a crashed worker would leave it:
    ResultStore(late.shard_path).append(_result(1, wallclock=7.0))
    merged = ResultCache(tmp_path).merge()
    assert merged["duplicates"] == 1
    rows = ResultStore(merger.canonical.path).load()
    assert rows[0].wallclock_s == 7.0  # last write won


def test_merge_detects_conflicts(tmp_path):
    a = ResultCache(tmp_path, worker="w1")
    a.put(_result(1, jain=1.0))
    a.close()
    # A second worker that never saw w1's shard computes a different result.
    b = ResultCache(tmp_path, worker="w2")
    ResultStore(b.shard_path).append(_result(1, jain=0.25))
    with pytest.raises(CacheConflictError, match="bit-identical"):
        ResultCache(tmp_path).merge()


def test_merge_preserves_canonical_entries(tmp_path):
    cache = ResultCache(tmp_path, worker="w1")
    cache.put(_result(1))
    cache.close()
    ResultCache(tmp_path).merge()
    cache2 = ResultCache(tmp_path, worker="w2")
    cache2.put(_result(2))
    cache2.close()
    summary = ResultCache(tmp_path).merge()
    assert summary["entries"] == 2


# -- the sharding property ----------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    seeds=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=12),
    assignment=st.lists(st.integers(min_value=0, max_value=3), min_size=12, max_size=12),
)
def test_merge_of_random_sharding_equals_unsharded_store(tmp_path_factory, seeds, assignment):
    """However results are scattered over worker shards — duplicates
    included — merge/compact produces exactly the store a single
    unsharded worker would have written."""
    tmp = tmp_path_factory.mktemp("cache")
    unique = sorted(set(seeds))

    # Reference: one worker, no sharding, one put per distinct config.
    ref = ResultCache(tmp / "ref", worker="solo")
    for s in unique:
        ref.put(_result(s))
    ref.close()
    ResultCache(tmp / "ref").merge()
    reference = (tmp / "ref" / salt_slug(default_salt()) / "canonical.jsonl").read_bytes()

    # Candidate: scatter the same results (with repeats) over 4 shards.
    shards = {}
    for s, w in zip(seeds, assignment):
        shards.setdefault(f"w{w}", []).append(s)
    root = tmp / "sharded"
    for worker, worker_seeds in shards.items():
        cache = ResultCache(root, worker=worker)
        for s in worker_seeds:
            ResultStore(cache.shard_path).append(_result(s))
        cache.close()
    ResultCache(root).merge()
    candidate = (root / salt_slug(default_salt()) / "canonical.jsonl").read_bytes()
    assert candidate == reference
