"""Unit tests for the benchmark harness and its regression gate."""

import json
from pathlib import Path

import pytest

from repro.bench.harness import (
    DEFAULT_TOLERANCE,
    compare_reports,
    config_hash,
    find_baseline,
    main,
    run_benches,
    write_report,
)
from repro.bench.workloads import WORKLOADS, WORKLOADS_BY_NAME


def _report(benches, *, quick=False, date="2026-01-01", tag=""):
    return {
        "schema": 1,
        "date": date,
        "timestamp": f"{date}T00:00:00",
        "tag": tag,
        "quick": quick,
        "host": {},
        "benches": benches,
    }


def _bench(eps, config_hash="abc"):
    return {
        "events": 1000,
        "checksum": 42,
        "wall_s": 1000 / eps,
        "events_per_sec": eps,
        "peak_rss_kb": 1,
        "config_hash": config_hash,
        "repeats": 1,
    }


# --- comparison / gate logic -------------------------------------------------


def test_compare_flags_synthetic_regression():
    baseline = _report({"w": _bench(100_000.0)})
    regressed = _report({"w": _bench(80_000.0)})
    regressions, lines = compare_reports(regressed, baseline, tolerance=0.10)
    assert len(regressions) == 1 and "w" in regressions[0]
    assert any("REGRESSION" in line for line in lines)


def test_compare_passes_within_tolerance():
    baseline = _report({"w": _bench(100_000.0)})
    slightly_slower = _report({"w": _bench(95_000.0)})
    regressions, _ = compare_reports(slightly_slower, baseline, tolerance=0.10)
    assert regressions == []


def test_compare_speedup_is_never_a_regression():
    baseline = _report({"w": _bench(100_000.0)})
    faster = _report({"w": _bench(150_000.0)})
    regressions, _ = compare_reports(faster, baseline)
    assert regressions == []


def test_compare_skips_mismatched_config_hash():
    baseline = _report({"w": _bench(100_000.0, config_hash="old")})
    new = _report({"w": _bench(10_000.0, config_hash="new")})
    regressions, lines = compare_reports(new, baseline)
    assert regressions == []
    assert any("not comparable" in line for line in lines)


def test_compare_skips_quick_vs_full():
    baseline = _report({"w": _bench(100_000.0)}, quick=False)
    new = _report({"w": _bench(10.0)}, quick=True)
    regressions, lines = compare_reports(new, baseline)
    assert regressions == []
    assert any("mismatch" in line for line in lines)


def test_compare_reports_new_and_missing_benches():
    baseline = _report({"gone": _bench(1.0)})
    new = _report({"fresh": _bench(1.0)})
    regressions, lines = compare_reports(new, baseline)
    assert regressions == []
    assert any("new bench" in line for line in lines)
    assert any("not in this run" in line for line in lines)


def test_compare_rejects_bad_tolerance():
    with pytest.raises(ValueError):
        compare_reports(_report({}), _report({}), tolerance=1.0)


# --- report files ------------------------------------------------------------


def test_write_and_find_baseline(tmp_path):
    p1 = write_report(_report({}, date="2026-01-01"), tmp_path)
    p2 = write_report(_report({}, date="2026-01-02"), tmp_path, tag="opt")
    assert p1.name == "BENCH_2026-01-01.json"
    assert p2.name == "BENCH_2026-01-02_opt.json"
    # Newest by mtime wins; exclude lets a fresh report find its predecessor.
    assert find_baseline(tmp_path) == p2
    assert find_baseline(tmp_path, exclude=p2) == p1
    assert find_baseline(tmp_path / "nope") is None


def test_config_hash_stability():
    cfg = {"events": 100, "seed": 1}
    assert config_hash(cfg) == config_hash(dict(reversed(list(cfg.items()))))
    assert config_hash(cfg) != config_hash({"events": 101, "seed": 1})


# --- end-to-end: main() exit codes -------------------------------------------


def test_main_exits_nonzero_on_synthetic_regression(tmp_path, capsys):
    """The committed acceptance check: a regressed run must gate (exit 1).

    Run one real quick workload, then plant a baseline claiming the same
    config hash ran 100x faster — main() must detect the regression.
    """
    out = tmp_path / "results"
    rc = main(["--quick", "--only", "event_loop", "--repeats", "1",
               "--out-dir", str(out), "--tag", "real"])
    assert rc == 0  # no baseline yet: no gate
    real = json.loads(find_baseline(out).read_text())
    inflated = {
        name: dict(b, events_per_sec=b["events_per_sec"] * 100)
        for name, b in real["benches"].items()
    }
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(_report(inflated, quick=True)))

    rc = main(["--quick", "--only", "event_loop", "--repeats", "1",
               "--no-write", "--baseline", str(baseline_path)])
    assert rc == 1
    assert "REGRESSION" in capsys.readouterr().out

    # --no-gate reports but never fails.
    rc = main(["--quick", "--only", "event_loop", "--repeats", "1",
               "--no-gate", "--no-write", "--baseline", str(baseline_path)])
    assert rc == 0


def test_main_passes_against_honest_baseline(tmp_path):
    out = tmp_path / "results"
    assert main(["--quick", "--only", "timer_churn", "--repeats", "1",
                 "--out-dir", str(out), "--tag", "a"]) == 0
    # Second run compares against the first; same machine, generous budget.
    assert main(["--quick", "--only", "timer_churn", "--repeats", "1",
                 "--out-dir", str(out), "--tag", "b", "--tolerance", "0.9"]) == 0


def test_main_rejects_unknown_workload(tmp_path):
    assert main(["--only", "no_such_bench", "--no-write",
                 "--out-dir", str(tmp_path)]) == 2


def test_main_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for spec in WORKLOADS:
        assert spec.name in out


# --- workload determinism ----------------------------------------------------


def test_workloads_are_deterministic_quick():
    """Same seed => same (events, checksum) on back-to-back runs."""
    for name in ("event_loop", "timer_churn"):
        spec = WORKLOADS_BY_NAME[name]
        assert spec.run(quick=True) == spec.run(quick=True)


# --- bench run logs + span-overhead workload ---------------------------------


def test_datapath_spans_disabled_registered_and_deterministic():
    """The NULL-tracer datapath workload must exist and stay deterministic."""
    spec = WORKLOADS_BY_NAME["datapath_spans_disabled"]
    assert spec.run(quick=True) == spec.run(quick=True)


def test_datapath_spans_disabled_matches_plain_datapath_outcomes():
    """NULL spans are free: same events/checksum as the obs-disabled twin."""
    plain = WORKLOADS_BY_NAME["datapath_obs_disabled"].run(quick=True)
    spanned = WORKLOADS_BY_NAME["datapath_spans_disabled"].run(quick=True)
    assert spanned == plain


def test_write_bench_runlog_is_valid_and_summarizable(tmp_path, capsys):
    from repro.bench.harness import write_bench_runlog
    from repro.obs.runlog import read_run_log, validate_run_log

    report = _report(
        {"event_loop": _bench(120_000.0), "timer_churn": _bench(80_000.0)},
        quick=True, tag="ci",
    )
    log = tmp_path / "bench.jsonl"
    write_bench_runlog(report, log)
    records = read_run_log(log)
    assert validate_run_log(records) == []
    benches = [r for r in records if r["record"] == "bench"]
    assert sorted(b["name"] for b in benches) == ["event_loop", "timer_churn"]
    assert all(b["config_hash"] == "abc" for b in benches)
    summary = records[-1]
    assert summary["record"] == "summary"
    assert summary["events"] == 2000  # totals across workloads

    # `repro obs summary` digests the bench log.
    from repro.cli import main as repro_main

    assert repro_main(["obs", "summary", str(log)]) == 0
    assert "event_loop" in capsys.readouterr().out


def test_main_runlog_flag_writes_bench_log(tmp_path):
    from repro.obs.runlog import read_run_log, validate_run_log

    out = tmp_path / "results"
    log = tmp_path / "bench.jsonl"
    rc = main(["--quick", "--only", "event_loop", "--repeats", "1",
               "--out-dir", str(out), "--runlog", str(log)])
    assert rc == 0
    records = read_run_log(log)
    assert validate_run_log(records) == []
    assert any(r["record"] == "bench" and r["name"] == "event_loop"
               for r in records)
