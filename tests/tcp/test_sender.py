"""Behavioural tests for the TCP sender over the loopback harness."""

import pytest

from helpers import LoopbackNet, drop_seqs
from repro.cca.base import CongestionControl
from repro.cca.reno import Reno
from repro.cca.cubic import Cubic
from repro.units import milliseconds, seconds


class FixedWindow(CongestionControl):
    """A CCA pinned at a constant window — isolates sender mechanics."""

    def __init__(self, cwnd=8.0):
        super().__init__()
        self.cwnd = cwnd
        self.events = []

    def on_congestion_event(self, now_ns):
        self.events.append(("loss", now_ns))

    def on_rto(self, now_ns, first_timeout=True):
        self.events.append(("rto", now_ns, first_timeout))


def test_clean_transfer_completes():
    net = LoopbackNet(cca=FixedWindow(8), total_segments=100)
    net.start()
    net.run(seconds(5))
    assert net.sender.done
    assert net.receiver.bytes_received == 100 * 1500
    assert net.sender.retransmits == 0
    assert net.sender.rto_count == 0


def test_window_limits_inflight():
    net = LoopbackNet(cca=FixedWindow(4), one_way_delay_ns=milliseconds(50))
    net.start()
    net.run(milliseconds(40))  # less than one RTT: initial burst only
    assert net.sender.segments_sent == 4
    assert net.sender.inflight == 4


def test_ack_clocking_advances_window():
    net = LoopbackNet(cca=FixedWindow(4), one_way_delay_ns=milliseconds(10))
    net.start()
    net.run(milliseconds(25))  # one RTT in: first ACKs arrived
    assert net.sender.segments_sent > 4
    assert net.sender.inflight <= 4


def test_single_loss_fast_retransmit():
    cca = FixedWindow(16)
    net = LoopbackNet(cca=cca, total_segments=100, drop_data=drop_seqs(10))
    net.start()
    net.run(seconds(5))
    assert net.sender.done
    assert net.sender.retransmits == 1
    assert net.sender.rto_count == 0
    assert [e[0] for e in cca.events] == ["loss"]
    assert net.receiver.bytes_received == 100 * 1500


def test_burst_loss_single_congestion_event():
    cca = FixedWindow(32)
    net = LoopbackNet(cca=cca, total_segments=200, drop_data=drop_seqs(10, 11, 12, 13, 14))
    net.start()
    net.run(seconds(5))
    assert net.sender.done
    assert net.sender.retransmits == 5
    # All five drops fall in one window -> exactly one congestion event.
    assert [e[0] for e in cca.events] == ["loss"]


def test_tail_loss_recovered_by_rto():
    cca = FixedWindow(8)
    # Drop the very last segment: no SACKs can follow -> RTO path.
    net = LoopbackNet(cca=cca, total_segments=50, drop_data=drop_seqs(49))
    net.start()
    net.run(seconds(10))
    assert net.sender.done
    assert net.sender.rto_count == 1
    assert ("rto", pytest.approx(0, abs=10**12), True)[0] in [e[0] for e in cca.events][-1]


def test_lost_retransmission_needs_rto():
    dropped = {"count": 0}

    def drop(pkt):
        if pkt.seq == 5 and dropped["count"] < 2:  # original + first retx
            dropped["count"] += 1
            return True
        return False

    cca = FixedWindow(16)
    net = LoopbackNet(cca=cca, total_segments=60, drop_data=drop)
    net.start()
    net.run(seconds(10))
    assert net.sender.done
    assert net.sender.rto_count >= 1
    assert net.receiver.bytes_received == 60 * 1500


def test_ack_loss_tolerated_by_cumulative_acks():
    drop_every_other = {"n": 0}

    def drop_ack(pkt):
        drop_every_other["n"] += 1
        return drop_every_other["n"] % 2 == 0

    net = LoopbackNet(cca=FixedWindow(8), total_segments=100, drop_ack=drop_ack)
    net.start()
    net.run(seconds(10))
    assert net.sender.done
    # Cumulative ACKs cover mid-stream gaps; only the very last ACK being
    # dropped can force a (single) timeout retransmission.
    assert net.sender.retransmits <= 1


def test_rtt_measured_from_ts_echo():
    net = LoopbackNet(cca=FixedWindow(4), one_way_delay_ns=milliseconds(30))
    net.start()
    net.run(seconds(1))
    assert net.sender.rtt.min_rtt_ns == pytest.approx(milliseconds(60), rel=0.01)


def test_reno_slow_start_doubles_per_rtt():
    reno = Reno()
    net = LoopbackNet(cca=reno, one_way_delay_ns=milliseconds(50))
    net.start()
    net.run(milliseconds(90))
    assert net.sender.segments_sent == 10  # initial window
    # One RTT later the whole flight is ACKed at once (instant sends),
    # the window has doubled to 20, and a fresh 20-segment flight leaves.
    net.run(milliseconds(70))  # t=160ms
    assert net.sender.cca.cwnd == pytest.approx(20.0)
    assert net.sender.segments_sent == 30


def test_stop_halts_transmission():
    net = LoopbackNet(cca=FixedWindow(4))
    net.start()
    net.run(milliseconds(100))
    sent = net.sender.segments_sent
    net.sender.stop()
    net.run(seconds(1))
    assert net.sender.segments_sent == sent


def test_pacing_spreads_transmissions():
    cca = FixedWindow(100)
    cca.pacing_rate_pps = 1000.0  # 1 packet per ms
    net = LoopbackNet(cca=cca, one_way_delay_ns=milliseconds(200))
    net.start()
    net.run(milliseconds(50))
    # Unpaced, all 100 would leave instantly; paced, ~50 in 50 ms.
    assert 40 <= net.sender.segments_sent <= 62


def test_double_start_rejected():
    net = LoopbackNet(cca=FixedWindow(4))
    net.start()
    with pytest.raises(RuntimeError):
        net.start()


def test_cubic_transfer_with_bottleneck_completes():
    net = LoopbackNet(
        cca=Cubic(),
        total_segments=500,
        data_rate_bps=20e6,
        queue_limit_pkts=30,
        one_way_delay_ns=milliseconds(10),
    )
    net.start()
    net.run(seconds(20))
    assert net.sender.done
    assert net.receiver.bytes_received == 500 * 1500


def test_bytes_and_segments_accounting():
    net = LoopbackNet(cca=FixedWindow(8), total_segments=64)
    net.start()
    net.run(seconds(5))
    assert net.sender.bytes_sent == net.sender.segments_sent * 1500
    assert net.sender.segments_sent == 64  # no losses -> no retx
