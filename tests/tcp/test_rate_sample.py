"""Unit tests for BBR delivery-rate sampling."""

import pytest

from repro.tcp.rate_sample import RateSampler
from repro.units import milliseconds, seconds


def test_steady_rate_measured():
    """A pipelined flow at one packet per 10 ms measures ~100 pps."""
    s = RateSampler()
    gap = milliseconds(10)
    rtt = milliseconds(100)
    sample = None
    pending = []
    for i in range(60):
        t_send = i * gap
        pending.append((t_send + rtt, s.on_send(t_send, inflight=min(i, 10), app_limited=False)))
        # Deliver (and sample) everything whose ACK time has come.
        while pending and pending[0][0] <= t_send:
            t_ack, st = pending.pop(0)
            s.on_segment_delivered(t_ack, st)
            sample = s.finish_ack(t_ack)
    assert sample is not None
    assert sample.delivery_rate_pps == pytest.approx(100.0, rel=0.25)


def test_no_delivery_no_sample():
    s = RateSampler()
    assert s.finish_ack(1000) is None


def test_app_limited_flag_propagates():
    s = RateSampler()
    st = s.on_send(0, inflight=0, app_limited=True)
    # The packet snapshot taken at the app-limited transition itself
    # is not yet limited; the NEXT sends are.
    st2 = s.on_send(100, inflight=1, app_limited=False)
    assert st2.app_limited  # delivered(0) < app_limited_until
    s.on_segment_delivered(seconds(1), st)
    s.on_segment_delivered(seconds(1), st2)
    sample = s.finish_ack(seconds(1))
    assert sample.is_app_limited


def test_delivered_counter_accumulates():
    s = RateSampler()
    st1 = s.on_send(0, 0, False)
    st2 = s.on_send(10, 1, False)
    s.on_segment_delivered(1000, st1)
    s.on_segment_delivered(1000, st2)
    assert s.delivered == 2


def test_rate_uses_most_recent_delivered_packet():
    s = RateSampler()
    old = s.on_send(0, 0, False)
    s.on_segment_delivered(milliseconds(100), old)
    s.finish_ack(milliseconds(100))
    # Second flight: 5 packets in 5 ms.
    states = [s.on_send(milliseconds(100) + i * milliseconds(1), i, False) for i in range(5)]
    t = milliseconds(200)
    for st in states:
        s.on_segment_delivered(t, st)
        t += milliseconds(1)
    sample = s.finish_ack(t - milliseconds(1))
    assert sample.delivered - sample.prior_delivered == 5


def test_idle_restart_resets_timestamps():
    s = RateSampler()
    st = s.on_send(0, 0, False)
    s.on_segment_delivered(milliseconds(50), st)
    s.finish_ack(milliseconds(50))
    # Idle gap, then inflight==0 send resets first_sent/delivered time.
    st2 = s.on_send(seconds(10), 0, False)
    assert st2.delivered_time == seconds(10)
    assert st2.first_sent_time == seconds(10)
