"""Unit tests for the connection facade."""

import pytest

from repro.cca.registry import make_cca
from repro.tcp.connection import next_flow_id, open_connection
from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
from repro.units import mbps, seconds


def _dumbbell():
    return build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=mbps(20), buffer_bdp=2.0, mss_bytes=1500, seed=1)
    )


def test_flow_ids_unique():
    ids = {next_flow_id() for _ in range(100)}
    assert len(ids) == 100


def test_connection_transfers_data():
    db = _dumbbell()
    conn = open_connection(db.clients[0], db.servers[0], make_cca("reno"), mss=1500,
                           total_segments=50)
    conn.start()
    db.network.run(seconds(10))
    assert conn.sender.done
    assert conn.bytes_received == 50 * 1500
    assert conn.retransmits == 0


def test_multiple_connections_share_flow_dispatch():
    db = _dumbbell()
    conns = [
        open_connection(db.clients[0], db.servers[0], make_cca("reno"), mss=1500,
                        total_segments=20)
        for _ in range(3)
    ]
    for c in conns:
        c.start()
    db.network.run(seconds(10))
    for c in conns:
        assert c.sender.done
        assert c.bytes_received == 20 * 1500


def test_requires_shared_simulator():
    db1 = _dumbbell()
    db2 = _dumbbell()
    with pytest.raises(ValueError):
        open_connection(db1.clients[0], db2.servers[0], make_cca("reno"), mss=1500)


def test_explicit_flow_id():
    db = _dumbbell()
    conn = open_connection(db.clients[0], db.servers[0], make_cca("cubic"), mss=1500,
                           flow_id=424242)
    assert conn.flow_id == 424242


def test_stop_prevents_further_sending():
    db = _dumbbell()
    conn = open_connection(db.clients[0], db.servers[0], make_cca("cubic"), mss=1500)
    conn.start()
    db.network.run(seconds(2))
    conn.stop()
    sent = conn.sender.segments_sent
    db.network.run(seconds(4))
    assert conn.sender.segments_sent == sent
