"""Unit tests for the TCP receiver (reassembly + ACK generation)."""

import pytest

from repro.net.packet import make_data_packet
from repro.tcp.receiver import TcpReceiver


class _Harness:
    def __init__(self, ack_every=1):
        self.acks = []
        self.now = 0
        self.rx = TcpReceiver(
            1, "b", "a", self.acks.append, lambda: self.now, mss=1500, ack_every=ack_every
        )

    def data(self, seq, *, ce=False, t=None):
        if t is not None:
            self.now = t
        pkt = make_data_packet(1, "a", "b", seq=seq, mss=1500, now=self.now)
        pkt.ecn_ce = ce
        self.rx.handle_packet(pkt)


def test_in_order_delivery_acks_cumulative():
    h = _Harness()
    for seq in range(5):
        h.data(seq)
    assert [a.ack for a in h.acks] == [1, 2, 3, 4, 5]
    assert h.rx.bytes_received == 5 * 1500
    assert all(a.sacks == () for a in h.acks)


def test_out_of_order_generates_sack():
    h = _Harness()
    h.data(0)
    h.data(2)  # gap at 1
    last = h.acks[-1]
    assert last.ack == 1
    assert last.sacks == ((2, 3),)
    h.data(1)  # fill the hole
    assert h.acks[-1].ack == 3
    assert h.rx.out_of_order_segments == 0


def test_sack_blocks_most_recent_first():
    h = _Harness()
    h.data(0)
    h.data(5)
    h.data(10)
    h.data(15)
    last = h.acks[-1]
    assert last.sacks[0] == (15, 16)
    assert len(last.sacks) == 3  # capped at 3 blocks


def test_duplicate_data_counted_not_delivered():
    h = _Harness()
    h.data(0)
    h.data(0)
    assert h.rx.duplicate_segments == 1
    assert h.rx.bytes_received == 1500
    h.data(3)
    h.data(3)
    assert h.rx.duplicate_segments == 2


def test_ts_echo_carries_send_time():
    h = _Harness()
    h.now = 12345
    h.data(0)
    assert h.acks[-1].ts_echo == 12345


def test_ecn_ce_echoed():
    h = _Harness()
    h.data(0, ce=True)
    assert h.acks[-1].ecn_echo
    h.data(1)
    assert not h.acks[-1].ecn_echo


def test_delayed_ack_coalesces():
    h = _Harness(ack_every=2)
    h.data(0)
    assert len(h.acks) == 0  # waiting for the second segment
    h.data(1)
    assert len(h.acks) == 1
    assert h.acks[-1].ack == 2


def test_delayed_ack_fires_immediately_on_gap():
    h = _Harness(ack_every=4)
    h.data(1)  # out of order -> immediate dup-ACK
    assert len(h.acks) == 1


def test_ignores_stray_acks():
    h = _Harness()
    from repro.net.packet import make_ack_packet

    h.rx.handle_packet(make_ack_packet(1, "a", "b", ack=5, now=0))
    assert h.rx.segments_received == 0


def test_invalid_ack_every():
    with pytest.raises(ValueError):
        _Harness(ack_every=0)


def test_retransmission_fills_hole_and_drains_run():
    h = _Harness()
    h.data(0)
    for seq in (2, 3, 4):
        h.data(seq)
    assert h.acks[-1].ack == 1
    h.data(1)
    assert h.acks[-1].ack == 5
    assert h.rx.bytes_received == 5 * 1500
