"""Unit tests for the RTT estimator / RTO computation."""

import pytest

from repro.tcp.rtt import MAX_RTO_NS, MIN_RTO_NS, RttEstimator
from repro.units import milliseconds, seconds


def test_first_sample_initializes():
    est = RttEstimator()
    est.on_sample(milliseconds(100))
    assert est.srtt_ns == milliseconds(100)
    assert est.rttvar_ns == milliseconds(50)
    assert est.min_rtt_ns == milliseconds(100)
    # RTO = srtt + 4*rttvar = 300 ms
    assert est.rto_ns == milliseconds(300)


def test_smoothing_converges():
    est = RttEstimator()
    for _ in range(100):
        est.on_sample(milliseconds(50))
    assert est.srtt_ns == pytest.approx(milliseconds(50), rel=0.02)
    assert est.rto_ns == MIN_RTO_NS  # variance collapsed -> floor


def test_min_rtt_tracks_smallest():
    est = RttEstimator()
    est.on_sample(milliseconds(80))
    est.on_sample(milliseconds(60))
    est.on_sample(milliseconds(90))
    assert est.min_rtt_ns == milliseconds(60)


def test_rto_floor():
    est = RttEstimator()
    est.on_sample(milliseconds(1))
    assert est.rto_ns >= MIN_RTO_NS


def test_backoff_doubles_and_caps():
    est = RttEstimator()
    est.on_sample(milliseconds(100))
    before = est.rto_ns
    est.on_backoff()
    assert est.rto_ns == 2 * before
    for _ in range(20):
        est.on_backoff()
    assert est.rto_ns == MAX_RTO_NS


def test_initial_rto_default():
    est = RttEstimator()
    assert est.rto_ns == seconds(1)
    assert est.srtt_ns is None


def test_rejects_nonpositive_sample():
    est = RttEstimator()
    with pytest.raises(ValueError):
        est.on_sample(0)


def test_sample_counter():
    est = RttEstimator()
    for i in range(5):
        est.on_sample(milliseconds(10 + i))
    assert est.samples == 5
    assert est.latest_rtt_ns == milliseconds(14)
