"""Unit tests for the coalescing interval set."""

import pytest

from repro.tcp.intervals import IntervalSet


def test_empty():
    s = IntervalSet()
    assert not s
    assert len(s) == 0
    assert s.total == 0
    assert 5 not in s
    assert s.first() is None


def test_single_add():
    s = IntervalSet()
    assert s.add(5) == (5, 6)
    assert 5 in s and 4 not in s and 6 not in s
    assert s.total == 1


def test_adjacent_values_merge():
    s = IntervalSet()
    s.add(5)
    s.add(6)
    assert list(s) == [(5, 7)]
    s.add(4)
    assert list(s) == [(4, 7)]


def test_gap_then_bridge():
    s = IntervalSet()
    s.add(1)
    s.add(3)
    assert list(s) == [(1, 2), (3, 4)]
    assert s.add(2) == (1, 4)
    assert list(s) == [(1, 4)]


def test_add_range_merges_multiple():
    s = IntervalSet()
    s.add_range(0, 2)
    s.add_range(4, 6)
    s.add_range(8, 10)
    assert s.add_range(1, 9) == (0, 10)
    assert list(s) == [(0, 10)]
    assert s.total == 10


def test_duplicate_add_is_stable():
    s = IntervalSet()
    s.add(5)
    s.add(5)
    assert list(s) == [(5, 6)]


def test_empty_range_rejected():
    s = IntervalSet()
    with pytest.raises(ValueError):
        s.add_range(5, 5)


def test_pop_first_if_starts_at():
    s = IntervalSet()
    s.add_range(10, 15)
    s.add_range(20, 22)
    assert s.pop_first_if_starts_at(9) is None
    assert s.pop_first_if_starts_at(10) == (10, 15)
    assert list(s) == [(20, 22)]


def test_range_containing():
    s = IntervalSet()
    s.add_range(10, 15)
    assert s.range_containing(12) == (10, 15)
    assert s.range_containing(15) is None
    assert s.range_containing(9) is None


def test_many_disjoint_ranges_sorted():
    s = IntervalSet()
    for start in (50, 10, 30, 70):
        s.add_range(start, start + 2)
    assert list(s) == [(10, 12), (30, 32), (50, 52), (70, 72)]
