"""Unit tests for the SACK scoreboard and pipe accounting."""

import pytest

from repro.tcp.rate_sample import SegmentSendState
from repro.tcp.sack import Scoreboard


def _state(t=0):
    return SegmentSendState(t, 0, 0, 0, False)


def _send_range(sb, start, end):
    for seq in range(start, end):
        sb.register_send(seq, _state())


def test_pipe_counts_sends():
    sb = Scoreboard()
    _send_range(sb, 0, 5)
    assert sb.pipe == 5
    assert sb.outstanding == 5


def test_cumulative_ack_clears_and_returns_delivered():
    sb = Scoreboard()
    _send_range(sb, 0, 5)
    delivered = sb.cumulative_ack(0, 3)
    assert len(delivered) == 3
    assert sb.pipe == 2
    assert sb.outstanding == 2


def test_duplicate_registration_rejected():
    sb = Scoreboard()
    sb.register_send(0, _state())
    with pytest.raises(ValueError):
        sb.register_send(0, _state())


def test_sack_reduces_pipe_once():
    sb = Scoreboard()
    _send_range(sb, 0, 10)
    newly = sb.apply_sacks(((4, 7),), snd_una=0, snd_nxt=10)
    assert len(newly) == 3
    assert sb.pipe == 7
    # Re-SACKing the same range is a no-op.
    again = sb.apply_sacks(((4, 7),), snd_una=0, snd_nxt=10)
    assert again == []
    assert sb.pipe == 7
    assert sb.high_sacked == 6


def test_sack_clamped_to_window():
    sb = Scoreboard()
    _send_range(sb, 5, 10)
    newly = sb.apply_sacks(((0, 100),), snd_una=5, snd_nxt=10)
    assert len(newly) == 5


def test_loss_marking_dupthresh():
    sb = Scoreboard(dupthresh=3)
    _send_range(sb, 0, 10)
    sb.apply_sacks(((5, 8),), 0, 10)  # high_sacked = 7
    lost = sb.mark_losses(snd_una=0)
    # Segments <= 7-3 = 4 (i.e., 0..4) are lost.
    assert lost == 5
    assert sb.pipe == 10 - 3 - 5
    # Rescanning marks nothing new.
    assert sb.mark_losses(0) == 0


def test_loss_scan_does_not_remark_after_higher_sack():
    sb = Scoreboard()
    _send_range(sb, 0, 20)
    sb.apply_sacks(((5, 8),), 0, 20)
    assert sb.mark_losses(0) == 5
    sb.apply_sacks(((10, 12),), 0, 20)  # high_sacked = 11
    # Candidates are seqs <= 11-3 = 8; of those, 5..7 are SACKed and
    # 0..4 already lost, leaving exactly segment 8.
    lost = sb.mark_losses(0)
    assert lost == 1


def test_retx_queue_ordering_and_validity():
    sb = Scoreboard()
    _send_range(sb, 0, 10)
    sb.apply_sacks(((6, 9),), 0, 10)
    sb.mark_losses(0)
    first = sb.next_retx(0)
    assert first == 0
    sb.register_retx(0, _state())
    assert sb.pipe == 10 - 3 - 6 + 1  # 3 sacked, 6 lost (excl 0 retx), 1 retx copy
    second = sb.next_retx(0)
    assert second == 1


def test_next_retx_skips_sacked_and_acked():
    sb = Scoreboard()
    _send_range(sb, 0, 10)
    sb.apply_sacks(((6, 9),), 0, 10)
    sb.mark_losses(0)  # 0..5 lost
    sb.apply_sacks(((1, 2),), 0, 10)  # 1 gets sacked after being marked lost
    sb.cumulative_ack(0, 1)  # 0 acked
    nxt = sb.next_retx(1)
    assert nxt == 2


def test_requeue_retx():
    sb = Scoreboard()
    _send_range(sb, 0, 5)
    sb.apply_sacks(((3, 5),), 0, 5)
    sb.mark_losses(0)
    seq = sb.next_retx(0)
    sb.requeue_retx(seq)
    assert sb.next_retx(0) == seq


def test_rto_marks_everything_lost():
    sb = Scoreboard()
    _send_range(sb, 0, 8)
    sb.apply_sacks(((5, 6),), 0, 8)
    sb.on_rto(0, 8)
    assert sb.pipe == 0
    # Retransmission order is sequential, skipping the SACKed segment.
    order = []
    while True:
        seq = sb.next_retx(0)
        if seq is None:
            break
        order.append(seq)
        sb.register_retx(seq, _state())
    assert order == [0, 1, 2, 3, 4, 6, 7]


def test_cumulative_ack_of_sacked_segment_not_double_delivered():
    sb = Scoreboard()
    _send_range(sb, 0, 4)
    sb.apply_sacks(((1, 3),), 0, 4)
    delivered = sb.cumulative_ack(0, 4)
    # 1 and 2 were already delivered via SACK.
    assert len(delivered) == 2
    assert sb.pipe == 0
    assert sb.outstanding == 0


def test_pipe_never_negative_under_mixed_operations():
    sb = Scoreboard()
    _send_range(sb, 0, 30)
    sb.apply_sacks(((10, 20),), 0, 30)
    sb.mark_losses(0)
    for _ in range(5):
        seq = sb.next_retx(0)
        if seq is not None:
            sb.register_retx(seq, _state())
    sb.cumulative_ack(0, 25)
    assert sb.pipe >= 0


def test_invalid_dupthresh():
    with pytest.raises(ValueError):
        Scoreboard(dupthresh=0)
