"""Golden-trace regression tests.

Each pinned-seed config's full ``ExperimentResult`` is frozen as JSON
under ``tests/fixtures/golden/``; the simulator must reproduce it **bit
for bit**.  This is the contract that lets the packet-engine hot path be
refactored aggressively: any change to what is simulated — one extra
drop, a different ECN mark, a reordered event — fails here, while pure
speedups pass untouched.

Regenerate (only for intended behavior changes):

    PYTHONPATH=src python tests/fixtures/golden/regen.py
"""

import json
from pathlib import Path

import pytest

from helpers import GOLDEN_CONFIGS, golden_result_dict

FIXTURE_DIR = Path(__file__).resolve().parents[1] / "fixtures" / "golden"


@pytest.mark.parametrize("name", sorted(GOLDEN_CONFIGS))
def test_golden_trace_exact_match(name):
    fixture_path = FIXTURE_DIR / f"{name}.json"
    assert fixture_path.exists(), (
        f"missing golden fixture {fixture_path}; run "
        "`PYTHONPATH=src python tests/fixtures/golden/regen.py`"
    )
    expected = json.loads(fixture_path.read_text(encoding="utf-8"))
    actual = golden_result_dict(name)
    # json round-trip the actual dict so tuples/lists and int/float
    # representations are compared in their serialized form.
    actual = json.loads(json.dumps(actual))
    assert actual == expected, (
        f"golden trace {name!r} diverged — a supposedly behavior-preserving "
        "change altered simulation results"
    )
