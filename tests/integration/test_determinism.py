"""Reproducibility guarantees: identical seeds, identical results.

The paper's reproducibility contribution hinges on deterministic reruns;
these tests pin that property across both engines and the iperf layer.
"""

import json

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
from repro.traffic.iperf import Iperf3Client, Iperf3Server
from repro.units import mbps, seconds


def _packet_cfg(seed):
    return ExperimentConfig(
        cca_pair=("bbrv1", "cubic"), aqm="red", buffer_bdp=2.0,
        bottleneck_bw_bps=mbps(10), duration_s=6.0, mss_bytes=1500,
        flows_per_node=1, seed=seed,
    )


def _normalize(d):
    """Strip run-local identifiers (wallclock, process-global flow ids)."""
    d.pop("wallclock_s", None)
    for i, f in enumerate(d.get("flows", [])):
        f["flow_id"] = i
    return d


def test_packet_engine_bitwise_deterministic():
    a = _normalize(run_experiment(_packet_cfg(77)).to_dict())
    b = _normalize(run_experiment(_packet_cfg(77)).to_dict())
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_fluid_engine_bitwise_deterministic():
    cfg = ExperimentConfig(
        cca_pair=("bbrv2", "cubic"), aqm="fq_codel", buffer_bdp=2.0,
        bottleneck_bw_bps=mbps(500), duration_s=10.0, engine="fluid", seed=78,
    )
    a = _normalize(run_experiment(cfg).to_dict())
    b = _normalize(run_experiment(cfg).to_dict())
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_iperf_logs_deterministic():
    docs = []
    for _ in range(2):
        Iperf3Server.reset_registry()
        db = build_dumbbell(
            DumbbellConfig(bottleneck_bw_bps=mbps(20), buffer_bdp=2.0,
                           mss_bytes=1500, seed=31)
        )
        Iperf3Server(db.servers[0])
        client = Iperf3Client(db.clients[0], db.servers[0], congestion="cubic",
                              parallel=2, duration_s=4.0, mss=1500)
        client.start()
        db.network.run(seconds(5))
        doc = client.json_result()
        # Flow ids come from a process-global counter: normalize them.
        for iv in doc["intervals"]:
            for s in iv["streams"]:
                s["socket"] = 0
        for s in doc["end"]["streams"]:
            s["sender"]["socket"] = s["receiver"]["socket"] = 0
        docs.append(json.dumps(doc, sort_keys=True))
    assert docs[0] == docs[1]
