"""Paper-shape regression tests at full scale (fluid engine).

Each test pins one of the qualitative findings listed in DESIGN.md §4
at the paper's actual bandwidth tiers — these are the claims the
benchmark harness regenerates in full.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.units import gbps, mbps


def _run(pair, aqm, buf, bw, *, seed=41, duration=60.0):
    return run_experiment(
        ExperimentConfig(
            cca_pair=pair, aqm=aqm, buffer_bdp=buf, bottleneck_bw_bps=bw,
            duration_s=duration, warmup_s=10.0, engine="fluid", seed=seed,
        )
    )


def test_fifo_equilibrium_shifts_with_buffer():
    """Fig 2: BBRv1 wins below the equilibrium buffer, CUBIC above it."""
    small = _run(("bbrv1", "cubic"), "fifo", 0.5, gbps(1))
    large = _run(("bbrv1", "cubic"), "fifo", 16.0, gbps(1))
    assert small.throughput_of("bbrv1") > small.throughput_of("cubic")
    assert large.throughput_of("cubic") > large.throughput_of("bbrv1")


def test_fig3_16bdp_fairness_dip_at_mid_bandwidths():
    """Fig 3(b): at 16 BDP fairness is poor for 1-10 Gbps BBRv1 vs CUBIC."""
    r = _run(("bbrv1", "cubic"), "fifo", 16.0, gbps(1))
    assert r.jain_index < 0.85


def test_red_worst_fairness_for_bbr_pairs():
    """Fig 5 / Table 3: RED gives the worst inter-CCA fairness (~0.52)."""
    r = _run(("bbrv1", "cubic"), "red", 2.0, gbps(1))
    assert r.jain_index < 0.65


def test_red_utilization_degrades_beyond_1g():
    """Fig 7(c-d): RED under-utilizes at >= 1 Gbps (loss-based CCAs)."""
    low = _run(("reno", "reno"), "red", 2.0, mbps(100))
    high = _run(("reno", "reno"), "red", 2.0, gbps(25))
    assert high.link_utilization < low.link_utilization
    assert high.link_utilization < 0.92


def test_fifo_full_utilization_at_all_tiers():
    """Fig 7(a-b): FIFO reaches ~full utilization everywhere."""
    for bw in (mbps(100), gbps(1), gbps(25)):
        r = _run(("cubic", "cubic"), "fifo", 2.0, bw)
        assert r.link_utilization > 0.9, f"{bw/1e9} Gbps"


def test_fq_codel_fair_at_25g_with_slight_util_shortfall():
    """Fig 6 + §5.3: FQ_CODEL: J ~ 1; utilization below FIFO's at 25G."""
    fq = _run(("bbrv2", "cubic"), "fq_codel", 2.0, gbps(25))
    fifo = _run(("cubic", "cubic"), "fifo", 2.0, gbps(25))
    assert fq.jain_index > 0.9
    assert fq.link_utilization < fifo.link_utilization + 0.02


def test_retransmissions_grow_with_bandwidth_under_red():
    """Fig 8(c-d): RED retransmissions scale up with bandwidth."""
    low = _run(("cubic", "cubic"), "red", 2.0, mbps(100))
    high = _run(("cubic", "cubic"), "red", 2.0, gbps(10))
    assert high.total_retransmits > 3 * max(1, low.total_retransmits)


def test_fifo_retransmissions_fall_with_buffer_size():
    """Fig 8(a-b) + §5.4: FIFO retransmissions fall as the buffer grows.

    The paper highlights this most strongly for the BBR family: their
    2 x BDP inflight cap leaves large buffers untouched ("significantly
    low intermittent retransmissions for BBRv1 and BBRv2 ... restricting
    them from occupying the entire buffer").
    """
    small = _run(("bbrv2", "bbrv2"), "fifo", 0.5, mbps(500))
    large = _run(("bbrv2", "bbrv2"), "fifo", 8.0, mbps(500))
    assert small.total_retransmits > 3 * max(1, large.total_retransmits)
    # Loss-based CCAs stay "almost in the same range" (paper's words).
    c_small = _run(("cubic", "cubic"), "fifo", 0.5, mbps(500))
    c_large = _run(("cubic", "cubic"), "fifo", 8.0, mbps(500))
    assert c_large.total_retransmits < 10 * max(1, c_small.total_retransmits)


def test_bbrv1_retx_order_of_magnitude_above_bbrv2():
    """Fig 8 / Table 3: BBRv1 >> BBRv2 in retransmissions."""
    v1 = _run(("bbrv1", "bbrv1"), "red", 2.0, gbps(1))
    v2 = _run(("bbrv2", "bbrv2"), "red", 2.0, gbps(1))
    assert v1.total_retransmits > 10 * max(1, v2.total_retransmits)


def test_bbrv1_vs_cubic_fairer_at_25g_than_10g_with_16bdp():
    """§5.1: the 25 Gbps / 16 BDP gap is smaller than at 1-10 Gbps."""
    mid = _run(("bbrv1", "cubic"), "fifo", 16.0, gbps(10))
    top = _run(("bbrv1", "cubic"), "fifo", 16.0, gbps(25))
    assert top.jain_index >= mid.jain_index - 0.05
