"""Integration: two-sender competition through the experiment runner.

Each test pins one qualitative claim from the paper's results section at
a small scaled bandwidth where the packet engine runs in ~1s.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_packet_experiment
from repro.units import mbps


def _run(pair, aqm="fifo", buffer_bdp=2.0, duration=15.0, seed=21, bw=mbps(20)):
    return run_packet_experiment(
        ExperimentConfig(
            cca_pair=pair, aqm=aqm, buffer_bdp=buffer_bdp,
            bottleneck_bw_bps=bw, duration_s=duration, mss_bytes=1500,
            flows_per_node=1, seed=seed,
        )
    )


@pytest.mark.parametrize("cca", ["reno", "cubic", "htcp", "bbrv2"])
def test_intra_cca_is_fair(cca):
    """Paper: every CCA shares fairly against itself (J ~ 1) under FIFO."""
    r = _run((cca, cca))
    assert r.jain_index > 0.85, f"{cca} intra-CCA J={r.jain_index:.3f}"


def test_fifo_small_buffer_bbrv1_beats_cubic():
    """Paper Fig 2(a): below the equilibrium point BBRv1 dominates."""
    r = _run(("bbrv1", "cubic"), buffer_bdp=0.5)
    assert r.throughput_of("bbrv1") > 2 * r.throughput_of("cubic")


def test_fifo_large_buffer_cubic_beats_bbrv1():
    """Paper Fig 2: past the equilibrium point CUBIC overtakes."""
    r = _run(("bbrv1", "cubic"), buffer_bdp=16.0)
    assert r.throughput_of("cubic") > 1.5 * r.throughput_of("bbrv1")


def test_fifo_large_buffer_cubic_beats_bbrv2():
    """Paper: BBRv2's inflight_hi response makes big-buffer FIFO worse."""
    r = _run(("bbrv2", "cubic"), buffer_bdp=16.0)
    assert r.throughput_of("cubic") > r.throughput_of("bbrv2")


def test_red_bbrv1_starves_cubic():
    """Paper Fig 4(a-e): under RED, CUBIC is crushed (J ~ 0.52)."""
    r = _run(("bbrv1", "cubic"), aqm="red")
    assert r.throughput_of("bbrv1") > 5 * r.throughput_of("cubic")
    assert r.jain_index < 0.7


def test_red_reno_balanced_with_cubic():
    """Paper: Reno vs CUBIC under RED is nearly equal."""
    r = _run(("reno", "cubic"), aqm="red")
    assert r.jain_index > 0.9


def test_fq_codel_equalizes_everyone():
    """Paper Fig 6: FQ_CODEL yields J ~ 1 even for BBRv1 vs CUBIC."""
    r = _run(("bbrv1", "cubic"), aqm="fq_codel")
    assert r.jain_index > 0.95


def test_fifo_utilization_near_full():
    """Paper Fig 7(a-b): FIFO lets every CCA fill the link."""
    for pair in (("cubic", "cubic"), ("bbrv1", "bbrv1")):
        r = _run(pair, duration=12.0)
        assert r.link_utilization > 0.85


def test_bbrv1_retransmits_dwarf_cubic():
    """Paper Table 3: BBRv1's RR is an order of magnitude above CUBIC's."""
    r_bbr = _run(("bbrv1", "bbrv1"), aqm="red", duration=12.0)
    r_cubic = _run(("cubic", "cubic"), aqm="red", duration=12.0)
    assert r_bbr.total_retransmits > 5 * max(1, r_cubic.total_retransmits)


def test_reno_loses_to_cubic_in_big_buffers():
    """Paper Fig 2(p-t): Reno gradually loses share as buffers grow.

    "Gradually" is real: convergence takes many cubic epochs, so this runs
    100 s of model time (paper runs are 200 s) with the startup transient
    excluded.
    """
    r = run_packet_experiment(
        ExperimentConfig(
            cca_pair=("reno", "cubic"), aqm="fifo", buffer_bdp=8.0,
            bottleneck_bw_bps=mbps(10), duration_s=100.0, warmup_s=30.0,
            mss_bytes=1500, flows_per_node=1, seed=21,
        )
    )
    assert r.throughput_of("cubic") > 1.5 * r.throughput_of("reno")
