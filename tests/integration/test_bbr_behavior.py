"""End-to-end behavioural checks of the BBR family over the dumbbell."""

import pytest

from repro.cca.registry import make_cca
from repro.tcp.connection import open_connection
from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
from repro.units import mbps, milliseconds, seconds


def _setup(cca_name, *, buffer_bdp=4.0, bw=mbps(20), seed=19):
    db = build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=bw, buffer_bdp=buffer_bdp,
                       mss_bytes=1500, seed=seed)
    )
    cca = make_cca(cca_name, db.network.rng.stream("cca"))
    conn = open_connection(db.clients[0], db.servers[0], cca, mss=1500)
    conn.start()
    return db, conn, cca


def test_bbrv1_model_converges_to_path_properties():
    db, conn, cca = _setup("bbrv1")
    db.network.run(seconds(10))
    # Bottleneck bandwidth in segments/s: 20 Mbps / (1500 B * 8).
    true_bw_pps = mbps(20) / (1500 * 8)
    assert cca.btlbw_pps == pytest.approx(true_bw_pps, rel=0.15)
    assert cca.min_rtt_ns == pytest.approx(db.config.rtt_ns, rel=0.1)


def test_bbrv1_inflight_respects_2bdp_cap():
    db, conn, cca = _setup("bbrv1", buffer_bdp=8.0)
    peak = {"pipe": 0}

    def watch():
        peak["pipe"] = max(peak["pipe"], conn.sender.scoreboard.pipe)
        db.sim.schedule(milliseconds(100), watch)

    db.sim.schedule(seconds(3), watch)  # after startup/drain
    db.network.run(seconds(12))
    bdp_segments = mbps(20) * 0.062 / 8 / 1500
    assert peak["pipe"] <= 2.6 * bdp_segments  # 2x cap + probe headroom


def test_bbrv1_probe_rtt_periodically_drains():
    db, conn, cca = _setup("bbrv1")
    seen_probe_rtt = {"yes": False}

    def watch():
        if cca.state == "PROBE_RTT":
            seen_probe_rtt["yes"] = True
        db.sim.schedule(milliseconds(20), watch)

    db.sim.schedule(seconds(1), watch)
    db.network.run(seconds(25))  # > 2 PROBE_RTT horizons
    assert seen_probe_rtt["yes"]


def test_bbrv2_keeps_shallow_queue_vs_cubic():
    """BBR's raison d'etre: high throughput at a fraction of the delay."""
    results = {}
    for cca_name in ("bbrv2", "cubic"):
        db, conn, cca = _setup(cca_name, buffer_bdp=8.0)
        peak = {"q": 0}

        def watch():
            peak["q"] = max(peak["q"], db.bottleneck_qdisc.bytes_queued)
            db.sim.schedule(milliseconds(100), watch)

        db.sim.schedule(seconds(4), watch)
        db.network.run(seconds(15))
        thr = conn.receiver.bytes_received * 8 / 15
        results[cca_name] = (thr, peak["q"])
    assert results["bbrv2"][0] > 0.75 * results["cubic"][0]  # comparable rate
    assert results["bbrv2"][1] < 0.5 * results["cubic"][1]  # way less queue


def test_bbrv2_paced_smoother_than_cubic():
    """Pacing spreads transmissions: no full-window bursts."""
    db, conn, cca = _setup("bbrv2")
    db.network.run(seconds(5))
    assert cca.pacing_rate_pps is not None
    # Paced rate sits near the true bottleneck rate.
    true_bw_pps = mbps(20) / (1500 * 8)
    assert cca.pacing_rate_pps == pytest.approx(true_bw_pps, rel=0.4)


def test_ecn_marking_reaches_bbrv2():
    """With an ECN-marking AQM, BBRv2 receives CE echoes end to end."""
    # Buffer 4 BDP: BBRv2's 2xBDP inflight fits, so the only congestion
    # signal left is RED's (marked, not dropped) early decisions.
    db = build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=mbps(20), buffer_bdp=4.0, aqm="red",
                       mss_bytes=1500, seed=3, ecn_mode=True)
    )
    cca = make_cca("bbrv2", db.network.rng.stream("cca"))
    conn = open_connection(db.clients[0], db.servers[0], cca, mss=1500, ecn_enabled=True)
    conn.start()
    db.network.run(seconds(12))
    assert db.bottleneck_qdisc.stats.ecn_marked > 0
    assert cca.ecn_alpha > 0 or cca.inflight_hi != float("inf")
    # Marking replaced dropping entirely.
    assert conn.sender.retransmits == 0
