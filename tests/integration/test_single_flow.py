"""Integration: one flow over the full dumbbell, per CCA.

These exercise the complete stack (topology, routing, qdisc, TCP, CCA)
at small scaled rates so the whole module runs in seconds.
"""

import pytest

from repro.cca.registry import make_cca
from repro.tcp.connection import open_connection
from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
from repro.units import mbps, seconds


def _run_one(cca_name, *, aqm="fifo", bw=mbps(20), buffer_bdp=2.0, duration=12.0):
    db = build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=bw, buffer_bdp=buffer_bdp, aqm=aqm,
                       mss_bytes=1500, seed=7)
    )
    conn = open_connection(
        db.clients[0], db.servers[0],
        make_cca(cca_name, db.network.rng.stream("cca")), mss=1500,
    )
    conn.start()
    db.network.run(seconds(duration))
    thr = conn.receiver.bytes_received * 8 / duration
    return db, conn, thr


@pytest.mark.parametrize("cca", ["reno", "cubic", "htcp", "bbrv1", "bbrv2"])
def test_each_cca_achieves_high_utilization(cca):
    db, conn, thr = _run_one(cca)
    assert thr > 0.80 * mbps(20), f"{cca} reached only {thr/1e6:.1f} Mbps"


@pytest.mark.parametrize("cca", ["reno", "cubic"])
def test_loss_based_ccas_fill_the_buffer(cca):
    db, conn, thr = _run_one(cca)
    # Loss-based CCAs must have experienced drops (they probe past BDP+buf).
    assert conn.sender.retransmits > 0


def test_bbrv1_keeps_low_queue_and_no_loss():
    db, conn, thr = _run_one("bbrv1", buffer_bdp=4.0)
    # With 2BDP inflight cap and a 4BDP buffer, BBR shouldn't overflow it.
    assert conn.sender.retransmits == 0
    assert thr > 0.8 * mbps(20)


def test_no_packets_lost_in_transit_accounting():
    """Conservation: after draining, sent = received + dropped exactly."""
    db, conn, thr = _run_one("cubic")
    conn.stop()
    db.network.run(db.sim.now + seconds(3))  # drain everything in flight
    delivered = conn.receiver.segments_received
    dropped = db.bottleneck_qdisc.stats.dropped_total
    assert conn.sender.segments_sent == delivered + dropped


def test_rtt_floor_matches_topology():
    db, conn, _ = _run_one("bbrv2")
    assert conn.sender.rtt.min_rtt_ns >= db.config.rtt_ns
    # Within a couple serialization delays of the propagation floor.
    assert conn.sender.rtt.min_rtt_ns < db.config.rtt_ns * 1.2


def test_throughput_bounded_by_bottleneck():
    db, conn, thr = _run_one("cubic")
    assert thr <= mbps(20) * 1.01


@pytest.mark.parametrize("aqm", ["red", "fq_codel"])
def test_single_flow_with_aqm(aqm):
    db, conn, thr = _run_one("cubic", aqm=aqm)
    assert thr > 0.6 * mbps(20)
