"""Cross-validation: the three engines against each other.

The fluid engine exists to cover the paper's high-bandwidth tiers, so on
the low tier (where the packet engine is ground truth) both fluid paths
must agree with it on the *qualitative* outcomes: who wins, roughly by
how much, and the utilization/fairness regimes.  The batched fluid
backend is held to a much stronger bar against the scalar fluid engine —
**bit-for-bit** equality of the full result (it is a vectorization of
the same integrator, not a second model; see
``tests/fluid/test_batched_vs_scalar.py`` for the exhaustive CCA x AQM
sweep).
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.units import mbps

ENGINES = ("packet", "fluid", "fluid_batched")


def _results(pair, aqm, buffer_bdp, *, duration=40.0, seed=31):
    out = {}
    for engine in ENGINES:
        out[engine] = run_experiment(
            ExperimentConfig(
                cca_pair=pair, aqm=aqm, buffer_bdp=buffer_bdp,
                bottleneck_bw_bps=mbps(20), duration_s=duration, warmup_s=5.0,
                mss_bytes=1500, flows_per_node=1, seed=seed, engine=engine,
            )
        )
    _assert_fluid_paths_identical(out["fluid"], out["fluid_batched"])
    return out


def _assert_fluid_paths_identical(fluid, batched):
    """Scalar vs batched fluid: the full result dict, exactly."""
    a, b = fluid.to_dict(), batched.to_dict()
    for d in (a, b):
        d.pop("wallclock_s", None)
        d.pop("engine", None)
        d["config"].pop("engine", None)
    assert a == b, "batched fluid backend diverged from the scalar oracle"


def _pair(pair, aqm, buffer_bdp, **kw):
    out = _results(pair, aqm, buffer_bdp, **kw)
    return out["packet"], out["fluid"], out["fluid_batched"]


def test_fifo_intra_cubic_agreement():
    for r in _pair(("cubic", "cubic"), "fifo", 2.0):
        assert r.jain_index > 0.9, r.engine
        assert r.link_utilization > 0.9, r.engine


def test_fifo_small_buffer_bbr_dominance_agreement():
    for r in _pair(("bbrv1", "cubic"), "fifo", 0.5):
        assert r.throughput_of("bbrv1") > r.throughput_of("cubic"), r.engine


def test_fifo_large_buffer_cubic_dominance_agreement():
    for r in _pair(("bbrv1", "cubic"), "fifo", 16.0, duration=60.0):
        assert r.throughput_of("cubic") > r.throughput_of("bbrv1"), r.engine


def test_red_bbr_starves_cubic_agreement():
    for r in _pair(("bbrv1", "cubic"), "red", 2.0):
        assert r.throughput_of("bbrv1") > 3 * r.throughput_of("cubic"), r.engine
        assert r.jain_index < 0.75, r.engine


def test_fq_codel_fairness_agreement():
    for r in _pair(("bbrv1", "cubic"), "fq_codel", 2.0):
        assert r.jain_index > 0.9, r.engine


def test_utilization_within_band():
    packet, fluid, batched = _pair(("cubic", "cubic"), "fifo", 2.0)
    assert fluid.link_utilization == pytest.approx(packet.link_utilization, abs=0.15)
    assert batched.link_utilization == fluid.link_utilization
