"""Cross-validation: the fluid engine against the packet engine.

The fluid engine exists to cover the paper's high-bandwidth tiers, so on
the low tier (where the packet engine is ground truth) both engines must
agree on the *qualitative* outcomes: who wins, roughly by how much, and
the utilization/fairness regimes.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.units import mbps


def _pair(pair, aqm, buffer_bdp, *, duration=40.0, seed=31):
    out = {}
    for engine in ("packet", "fluid"):
        out[engine] = run_experiment(
            ExperimentConfig(
                cca_pair=pair, aqm=aqm, buffer_bdp=buffer_bdp,
                bottleneck_bw_bps=mbps(20), duration_s=duration, warmup_s=5.0,
                mss_bytes=1500, flows_per_node=1, seed=seed, engine=engine,
            )
        )
    return out["packet"], out["fluid"]


def test_fifo_intra_cubic_agreement():
    packet, fluid = _pair(("cubic", "cubic"), "fifo", 2.0)
    assert packet.jain_index > 0.9 and fluid.jain_index > 0.9
    assert packet.link_utilization > 0.9 and fluid.link_utilization > 0.9


def test_fifo_small_buffer_bbr_dominance_agreement():
    packet, fluid = _pair(("bbrv1", "cubic"), "fifo", 0.5)
    for r in (packet, fluid):
        assert r.throughput_of("bbrv1") > r.throughput_of("cubic"), r.engine


def test_fifo_large_buffer_cubic_dominance_agreement():
    packet, fluid = _pair(("bbrv1", "cubic"), "fifo", 16.0, duration=60.0)
    for r in (packet, fluid):
        assert r.throughput_of("cubic") > r.throughput_of("bbrv1"), r.engine


def test_red_bbr_starves_cubic_agreement():
    packet, fluid = _pair(("bbrv1", "cubic"), "red", 2.0)
    for r in (packet, fluid):
        assert r.throughput_of("bbrv1") > 3 * r.throughput_of("cubic"), r.engine
        assert r.jain_index < 0.75, r.engine


def test_fq_codel_fairness_agreement():
    packet, fluid = _pair(("bbrv1", "cubic"), "fq_codel", 2.0)
    for r in (packet, fluid):
        assert r.jain_index > 0.9, r.engine


def test_utilization_within_band():
    packet, fluid = _pair(("cubic", "cubic"), "fifo", 2.0)
    assert fluid.link_utilization == pytest.approx(packet.link_utilization, abs=0.15)
