"""End-to-end pipeline test: sweep -> store -> report -> validate -> export.

Runs a small fluid slice through every stage the CLI chains together,
asserting each stage consumes the previous one's output intact.
"""

from repro.analysis.aggregate import ResultSet
from repro.analysis.dataset import runs_table, write_csv
from repro.analysis.export_figures import export_all_figures
from repro.analysis.summary_report import full_report
from repro.analysis.table3 import build_table3
from repro.analysis.validate import validate_claims
from repro.experiments.campaign import run_campaign
from repro.experiments.matrix import full_matrix
from repro.experiments.storage import ResultStore
from repro.units import gbps, mbps


def _slice_configs():
    return full_matrix(
        cca_pairs=(("bbrv1", "cubic"), ("cubic", "cubic")),
        aqms=("fifo", "red"),
        buffer_bdps=(0.5, 16.0),
        bandwidths_bps=(mbps(100), gbps(1)),
        engine="fluid",
        duration_s=15.0,
        warmup_s=3.0,
    )


def test_full_pipeline(tmp_path):
    store = ResultStore(tmp_path / "results.jsonl")
    run_campaign(_slice_configs(), store=store, jobs=1)

    # Reload from disk (the report stage never touches live objects).
    results = ResultSet(store.load())
    assert len(results) == 16

    rows = build_table3(results)
    keys = {r.key for r in rows}
    assert ("bbrv1", "cubic", "fifo") in keys
    assert ("cubic", "cubic", "red") in keys

    claims = validate_claims(results)
    failed = [c.claim_id for c in claims if c.passed is False]
    assert not failed, failed

    report = full_report(results)
    assert "TABLE 3" in report
    assert "PAPER CLAIMS" in report
    assert "equilibrium" in report

    written = export_all_figures(results, tmp_path / "figs")
    assert (tmp_path / "figs" / "fig2.csv").exists()
    assert "fig6" not in written  # no fq_codel in the slice

    csv_path = write_csv(runs_table(results), tmp_path / "runs.csv")
    assert csv_path.read_text().count("\n") == 17  # header + 16 rows
