"""Unit tests for packet construction."""

from repro.net.packet import ACK_SIZE_BYTES, MAX_SACK_BLOCKS, make_ack_packet, make_data_packet


def test_data_packet_fields():
    pkt = make_data_packet(7, "a", "b", seq=42, mss=8900, now=1000)
    assert pkt.flow_id == 7
    assert pkt.seq == 42
    assert pkt.size == 8900
    assert pkt.send_time == 1000
    assert not pkt.is_ack
    assert not pkt.is_retx
    assert not pkt.ecn_ect


def test_retx_flag():
    pkt = make_data_packet(1, "a", "b", seq=5, mss=1500, now=0, is_retx=True)
    assert pkt.is_retx


def test_ack_packet_fields():
    ack = make_ack_packet(3, "b", "a", ack=17, now=500, sacks=((20, 25),), ts_echo=123)
    assert ack.is_ack
    assert ack.ack == 17
    assert ack.size == ACK_SIZE_BYTES
    assert ack.sacks == ((20, 25),)
    assert ack.ts_echo == 123
    assert not ack.ecn_echo


def test_ack_sack_blocks_truncated():
    blocks = tuple((i * 10, i * 10 + 5) for i in range(6))
    ack = make_ack_packet(1, "b", "a", ack=0, now=0, sacks=blocks)
    assert len(ack.sacks) == MAX_SACK_BLOCKS


def test_ecn_fields():
    pkt = make_data_packet(1, "a", "b", seq=0, mss=1500, now=0, ecn_ect=True)
    assert pkt.ecn_ect and not pkt.ecn_ce
    pkt.ecn_ce = True
    ack = make_ack_packet(1, "b", "a", ack=1, now=0, ecn_echo=pkt.ecn_ce)
    assert ack.ecn_echo
