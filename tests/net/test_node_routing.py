"""Unit tests for hosts, routers, and static routing."""

import pytest

from repro.net.address import IPv4Address, Subnet
from repro.net.node import Host
from repro.net.packet import make_data_packet
from repro.net.routing import RoutingTable
from repro.net.topology import Network
from repro.units import milliseconds


class _Sink:
    def __init__(self):
        self.packets = []

    def handle_packet(self, pkt):
        self.packets.append(pkt)


def test_host_dispatches_by_flow_id():
    net = Network()
    h = net.add_host("h")
    sink = _Sink()
    h.register_endpoint(5, sink)
    pkt = make_data_packet(5, "a", "b", seq=0, mss=100, now=0)
    h.receive(pkt, None)
    assert sink.packets == [pkt]
    assert h.packets_received == 1


def test_host_counts_unroutable_flows():
    net = Network()
    h = net.add_host("h")
    h.receive(make_data_packet(99, "a", "b", seq=0, mss=100, now=0), None)
    assert h.packets_unroutable == 1


def test_duplicate_flow_registration_rejected():
    net = Network()
    h = net.add_host("h")
    h.register_endpoint(1, _Sink())
    with pytest.raises(ValueError):
        h.register_endpoint(1, _Sink())
    h.unregister_endpoint(1)
    h.register_endpoint(1, _Sink())  # fine after unregister


def test_primary_interface_requires_exactly_one():
    net = Network()
    h = net.add_host("h")
    with pytest.raises(RuntimeError):
        h.primary_interface()
    iface = h.add_interface("eth0")
    assert h.primary_interface() is iface
    h.add_interface("eth1")
    with pytest.raises(RuntimeError):
        h.primary_interface()


def test_routing_table_longest_prefix_match():
    net = Network()
    r = net.add_router("r")
    wide = r.add_interface("eth0")
    narrow = r.add_interface("eth1")
    table = RoutingTable()
    table.add_route(Subnet("10.0.0.0/8"), wide)
    table.add_route(Subnet("10.0.5.0/24"), narrow)
    assert table.lookup(IPv4Address("10.0.5.7")) is narrow
    assert table.lookup(IPv4Address("10.9.9.9")) is wide
    assert table.lookup(IPv4Address("192.168.1.1")) is None


def test_routing_table_replaces_duplicate_subnet():
    net = Network()
    r = net.add_router("r")
    a = r.add_interface("eth0")
    b = r.add_interface("eth1")
    table = RoutingTable()
    table.add_route(Subnet("10.0.1.0/24"), a)
    table.add_route(Subnet("10.0.1.0/24"), b)
    assert len(table) == 1
    assert table.lookup(IPv4Address("10.0.1.1")) is b


def test_router_forwards_between_hosts():
    net = Network()
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    r = net.add_router("r")
    s1, s2 = Subnet("10.0.1.0/24"), Subnet("10.0.2.0/24")
    i_h1 = h1.add_interface("eth0", s1.address(1))
    i_h2 = h2.add_interface("eth0", s2.address(1))
    i_r1 = r.add_interface("eth0", s1.address(2))
    i_r2 = r.add_interface("eth1", s2.address(2))
    net.connect(i_h1, i_r1, rate_bps=1e9, delay_ns=milliseconds(1))
    net.connect(i_r2, i_h2, rate_bps=1e9, delay_ns=milliseconds(1))
    r.add_route(s2, i_r2)
    r.add_route(s1, i_r1)

    sink = _Sink()
    h2.register_endpoint(1, sink)
    i_h1.send(make_data_packet(1, i_h1.address, i_h2.address, seq=0, mss=1500, now=0))
    net.run()
    assert len(sink.packets) == 1
    assert r.packets_forwarded == 1


def test_router_counts_unroutable():
    net = Network()
    r = net.add_router("r")
    r.receive(make_data_packet(1, "10.0.1.1", IPv4Address("99.0.0.1"), seq=0, mss=100, now=0), None)
    assert r.packets_unroutable == 1


def test_route_must_use_local_interface():
    net = Network()
    r1 = net.add_router("r1")
    r2 = net.add_router("r2")
    foreign = r2.add_interface("eth0")
    with pytest.raises(ValueError):
        r1.add_route(Subnet("10.0.0.0/8"), foreign)


def test_duplicate_node_names_rejected():
    net = Network()
    net.add_host("x")
    with pytest.raises(ValueError):
        net.add_router("x")


def test_duplicate_interface_names_rejected():
    net = Network()
    h = net.add_host("h")
    h.add_interface("eth0")
    with pytest.raises(ValueError):
        h.add_interface("eth0")
