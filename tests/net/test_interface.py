"""Unit tests for interfaces: qdisc pump, busy handling, reconfiguration."""

import pytest

from repro.aqm.fifo import FifoQueue
from repro.net.packet import make_data_packet
from repro.net.topology import Network
from repro.units import milliseconds


def _build_pair(rate=12e6, qdisc=None):
    net = Network(seed=0)
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    i1 = h1.add_interface("eth0", None)
    i2 = h2.add_interface("eth0", None)
    net.connect(i1, i2, rate_bps=rate, delay_ns=milliseconds(1), qdisc_a=qdisc)
    return net, h1, h2, i1, i2


def test_send_requires_attachment():
    net = Network()
    h = net.add_host("h")
    iface = h.add_interface("eth0")
    with pytest.raises(RuntimeError):
        iface.send(make_data_packet(1, "a", "b", seq=0, mss=100, now=0))


def test_packets_flow_through_queue_in_order():
    qdisc = FifoQueue(10**9)
    net, h1, h2, i1, i2 = _build_pair(qdisc=qdisc)
    got = []
    h2.receive = lambda pkt, iface: got.append(pkt.seq)  # type: ignore[assignment]
    for seq in range(5):
        i1.send(make_data_packet(1, "a", "b", seq=seq, mss=1500, now=0))
    assert i1.is_busy
    net.run()
    assert got == [0, 1, 2, 3, 4]
    assert qdisc.is_empty
    assert not i1.is_busy


def test_queue_drops_when_full():
    qdisc = FifoQueue(3 * 1500)  # room for 3 packets
    net, h1, h2, i1, i2 = _build_pair(rate=1e6, qdisc=qdisc)
    got = []
    h2.receive = lambda pkt, iface: got.append(pkt.seq)  # type: ignore[assignment]
    for seq in range(10):
        i1.send(make_data_packet(1, "a", "b", seq=seq, mss=1500, now=0))
    net.run()
    # One in flight immediately + 3 queued = 4 delivered, 6 dropped.
    assert len(got) == 4
    assert qdisc.stats.dropped_enqueue == 6


def test_set_qdisc_rejects_nonempty_replacement():
    qdisc = FifoQueue(10**9)
    net, h1, h2, i1, i2 = _build_pair(rate=1e3, qdisc=qdisc)  # very slow: stays queued
    for seq in range(3):
        i1.send(make_data_packet(1, "a", "b", seq=seq, mss=1500, now=0))
    assert not qdisc.is_empty
    with pytest.raises(RuntimeError):
        i1.set_qdisc(FifoQueue(10**9))


def test_set_qdisc_allows_idle_replacement():
    net, h1, h2, i1, i2 = _build_pair()
    replacement = FifoQueue(5000)
    i1.set_qdisc(replacement)
    assert i1.qdisc is replacement
