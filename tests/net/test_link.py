"""Unit tests for links: serialization, propagation, loss injection."""

import numpy as np
import pytest

from repro.net.link import Link
from repro.net.packet import make_data_packet
from repro.sim.engine import Simulator
from repro.units import milliseconds, seconds


def _pkt(size=1500, seq=0):
    return make_data_packet(1, "a", "b", seq=seq, mss=size, now=0)


def test_serialization_then_propagation():
    sim = Simulator()
    arrived = []
    # 1500 B at 12 Mbps -> 1 ms serialization; 5 ms propagation.
    link = Link(sim, 12e6, milliseconds(5), arrived.append)
    tx_done = []
    link.transmit(_pkt(), lambda: tx_done.append(sim.now))
    sim.run()
    assert tx_done == [milliseconds(1)]
    assert len(arrived) == 1
    assert sim.now == milliseconds(6)


def test_delivery_counters():
    sim = Simulator()
    sink = []
    link = Link(sim, 1e9, 0, sink.append)
    for i in range(4):
        sim.schedule(i * 1000000, link.transmit, _pkt(seq=i), lambda: None)
    sim.run()
    assert link.packets_delivered == 4
    assert link.bytes_delivered == 4 * 1500


def test_loss_rate_drops_packets():
    sim = Simulator()
    sink = []
    rng = np.random.default_rng(1)
    link = Link(sim, 1e9, 0, sink.append, loss_rate=0.5, loss_rng=rng)
    t = 0
    for i in range(400):
        t += 100_000
        sim.schedule(t, link.transmit, _pkt(seq=i), lambda: None)
    sim.run()
    assert link.packets_lost + link.packets_delivered == 400
    # Should be near half with a wide margin.
    assert 120 <= link.packets_lost <= 280


def test_loss_requires_rng():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, 1e9, 0, lambda p: None, loss_rate=0.1)


@pytest.mark.parametrize("kwargs", [
    {"rate_bps": 0},
    {"rate_bps": -5},
    {"delay_ns": -1},
    {"loss_rate": 1.0, "loss_rng": np.random.default_rng(0)},
])
def test_invalid_parameters_rejected(kwargs):
    sim = Simulator()
    params = {"rate_bps": 1e6, "delay_ns": 0, "loss_rate": 0.0, "loss_rng": None}
    params.update(kwargs)
    with pytest.raises(ValueError):
        Link(sim, params["rate_bps"], params["delay_ns"], lambda p: None,
             loss_rate=params["loss_rate"], loss_rng=params["loss_rng"])


def test_tx_time_scales_with_size():
    sim = Simulator()
    link = Link(sim, 8e6, 0, lambda p: None)  # 1 byte/us
    assert link.tx_time(_pkt(size=1000)) == seconds(0.001)
    assert link.tx_time(_pkt(size=2000)) == seconds(0.002)
