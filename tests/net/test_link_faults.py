"""Link mutation hooks: down-drain semantics, validated setters, conservation."""

import numpy as np
import pytest

from repro.aqm.fifo import FifoQueue
from repro.net.link import Link
from repro.net.packet import make_data_packet
from repro.sim.engine import Simulator
from repro.units import milliseconds


def _pkt(size=1500, seq=0):
    return make_data_packet(1, "a", "b", seq=seq, mss=size, now=0)


def _link(sim, sink, rate=12e6, delay=milliseconds(5), **kw):
    # 1500 B at 12 Mbps -> 1 ms serialization; 5 ms propagation.
    return Link(sim, rate, delay, sink.append, **kw)


def _conserved(link):
    return link.packets_tx == (
        link.packets_delivered
        + link.packets_lost
        + link.packets_dropped_down
        + link.packets_in_flight
    )


# -- down/up drain semantics ------------------------------------------------------


def test_down_drops_at_serialization_hop():
    sim = Simulator()
    sink = []
    link = _link(sim, sink)
    link.transmit(_pkt(), lambda: None)
    link.set_down()  # before the 1 ms tx-done timer fires
    sim.run()
    assert sink == []
    assert link.packets_dropped_down == 1
    assert link.packets_in_flight == 0
    assert _conserved(link)


def test_down_drops_at_propagation_hop():
    sim = Simulator()
    sink = []
    link = _link(sim, sink)
    link.transmit(_pkt(), lambda: None)
    # Down strictly between tx-done (1 ms) and arrival (6 ms).
    sim.schedule(milliseconds(2), link.set_down)
    sim.run()
    assert sink == []
    assert link.packets_dropped_down == 1
    assert _conserved(link)


def test_short_flap_does_not_claw_back_delivered_packets():
    """A flap shorter than the propagation delay misses packets already
    past both timer hops — the cable-pull analogy."""
    sim = Simulator()
    sink = []
    link = _link(sim, sink)
    link.transmit(_pkt(seq=0), lambda: None)
    # Flap while the packet is propagating, but back up before arrival.
    sim.schedule(milliseconds(2), link.set_down)
    sim.schedule(milliseconds(3), link.set_up)
    sim.run()
    assert len(sink) == 1
    assert link.packets_dropped_down == 0
    assert _conserved(link)


def test_set_down_is_idempotent_and_forwarding_resumes():
    sim = Simulator()
    sink = []
    link = _link(sim, sink)
    link.set_down()
    link.set_down()
    link.transmit(_pkt(seq=0), lambda: None)
    sim.run()
    assert sink == []
    link.set_up()
    link.transmit(_pkt(seq=1), lambda: None)
    sim.run()
    assert [p.seq for p in sink] == [1]
    assert _conserved(link)


def test_down_drop_traced_with_hop_point():
    from repro.obs.flight import FlightRecorder

    sim = Simulator()
    link = _link(sim, [])
    link.tracer = recorder = FlightRecorder(capacity=8)
    link.transmit(_pkt(), lambda: None)
    link.set_down()
    sim.run()
    drops = recorder.of_kind("link_down_drop")
    assert len(drops) == 1
    assert drops[0][2]["point"] == "serialize"


# -- validated setters ------------------------------------------------------------


def test_set_rate_invalidates_tx_cache():
    sim = Simulator()
    sink = []
    link = _link(sim, sink, rate=12e6, delay=0)
    done = []
    link.transmit(_pkt(), lambda: done.append(sim.now))
    sim.run()
    assert done == [milliseconds(1)]
    link.set_rate(6e6)  # half the rate -> double the serialization time
    start = sim.now
    link.transmit(_pkt(seq=1), lambda: done.append(sim.now - start))
    sim.run()
    assert done[1] == milliseconds(2)


def test_set_rate_rejects_nonpositive():
    link = _link(Simulator(), [])
    with pytest.raises(ValueError):
        link.set_rate(0)
    with pytest.raises(ValueError):
        link.set_rate(-1e6)


def test_set_delay_applies_to_new_packets_only():
    sim = Simulator()
    sink = []
    link = _link(sim, sink)
    link.transmit(_pkt(seq=0), lambda: None)
    # Delay triples at 2 ms: seq 0 is already on the wire (arrives 6 ms).
    sim.schedule(milliseconds(2), link.set_delay, milliseconds(15))
    sim.run()
    assert sim.now == milliseconds(6)
    with pytest.raises(ValueError):
        link.set_delay(-1)


def test_set_loss_rate_validates_bounds():
    link = _link(Simulator(), [])
    for bad in (1.0, 1.5, -0.1):
        with pytest.raises(ValueError):
            link.set_loss_rate(bad)


def test_set_loss_rate_requires_rng():
    link = _link(Simulator(), [])
    with pytest.raises(ValueError, match="rng"):
        link.set_loss_rate(0.1)
    link.set_loss_rate(0.1, rng=np.random.default_rng(1))
    assert link.loss_rate == 0.1
    # Disabling and re-enabling reuses the installed stream.
    link.set_loss_rate(0.0)
    link.set_loss_rate(0.2)
    assert link.loss_rate == 0.2


def test_conservation_under_mixed_loss_and_flaps():
    sim = Simulator()
    sink = []
    link = _link(
        sim, sink, rate=1e9, delay=milliseconds(1),
        loss_rate=0.3, loss_rng=np.random.default_rng(5),
    )
    t = 0
    for i in range(300):
        t += 50_000
        sim.schedule(t, link.transmit, _pkt(seq=i), lambda: None)
    sim.schedule(milliseconds(5), link.set_down)
    sim.schedule(milliseconds(9), link.set_up)
    sim.run()
    assert link.packets_tx == 300
    assert link.packets_in_flight == 0
    assert link.packets_dropped_down > 0
    assert link.packets_lost > 0
    assert _conserved(link)
    assert len(sink) == link.packets_delivered


# -- interface-level hooks --------------------------------------------------------


def _iface_pair():
    from repro.net.topology import Network

    net = Network(seed=0)
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    i1 = h1.add_interface("eth0", None)
    h2.add_interface("eth0", None)
    net.connect(
        i1, h2.interfaces["eth0"], rate_bps=1e6, delay_ns=milliseconds(1),
        qdisc_a=FifoQueue(10 * 1500),
    )
    return net, i1, i1.link


def test_interface_set_down_keeps_queue_by_default():
    net, iface, link = _iface_pair()
    for i in range(5):
        iface.send(_pkt(seq=i))
    iface.set_down()
    assert link.up is False
    # Cable pull: the backlog stays queued and drains into the dead link.
    assert iface.qdisc.stats.flushed == 0
    net.run()
    assert link.packets_dropped_down > 0
    iface.set_up()
    assert link.up is True


def test_interface_set_down_flush_discards_backlog():
    net, iface, link = _iface_pair()
    for i in range(5):
        iface.send(_pkt(seq=i))
    queued_before = iface.qdisc.packets_queued
    assert queued_before > 0
    iface.set_down(flush_queue=True)
    assert iface.qdisc.packets_queued == 0
    assert iface.qdisc.stats.flushed == queued_before
    stats = iface.qdisc.stats
    assert stats.enqueued == stats.dequeued + stats.dropped_dequeue + iface.qdisc.packets_queued


def test_unattached_interface_hooks_raise():
    from repro.net.topology import Network

    iface = Network(seed=0).add_host("h").add_interface("eth0", None)
    with pytest.raises(RuntimeError, match="not attached"):
        iface.set_down()
    with pytest.raises(RuntimeError, match="not attached"):
        iface.set_up()
