"""Unit tests for IPv4-lite addressing."""

import pytest

from repro.net.address import IPv4Address, Subnet


def test_parse_and_format_roundtrip():
    for text in ("0.0.0.0", "10.0.1.2", "255.255.255.255", "192.168.100.1"):
        assert str(IPv4Address(text)) == text


def test_int_roundtrip():
    a = IPv4Address("10.0.3.1")
    assert IPv4Address(int(a)) == a


def test_equality_with_string():
    assert IPv4Address("10.0.1.1") == "10.0.1.1"
    assert IPv4Address("10.0.1.1") != IPv4Address("10.0.1.2")


def test_hashable():
    assert len({IPv4Address("1.2.3.4"), IPv4Address("1.2.3.4")}) == 1


def test_ordering_and_addition():
    a = IPv4Address("10.0.0.1")
    assert a + 1 == IPv4Address("10.0.0.2")
    assert a < a + 1


@pytest.mark.parametrize("bad", ["10.0.1", "10.0.1.256", "a.b.c.d", "1.2.3.4.5", ""])
def test_malformed_addresses_rejected(bad):
    with pytest.raises(ValueError):
        IPv4Address(bad)


def test_address_out_of_range():
    with pytest.raises(ValueError):
        IPv4Address(2**32)
    with pytest.raises(TypeError):
        IPv4Address(3.14)


def test_subnet_contains():
    net = Subnet("10.0.1.0/24")
    assert "10.0.1.1" in net
    assert IPv4Address("10.0.1.254") in net
    assert "10.0.2.1" not in net


def test_subnet_normalizes_host_bits():
    assert Subnet("10.0.1.77/24") == Subnet("10.0.1.0/24")


def test_subnet_address_allocation():
    net = Subnet("10.0.4.0/24")
    assert str(net.address(1)) == "10.0.4.1"
    assert str(net.address(2)) == "10.0.4.2"
    with pytest.raises(ValueError):
        net.address(0)
    with pytest.raises(ValueError):
        net.address(255)  # broadcast


def test_subnet_hosts_iteration():
    hosts = list(Subnet("10.0.0.0/30").hosts())
    assert [str(h) for h in hosts] == ["10.0.0.1", "10.0.0.2"]


def test_subnet_str():
    assert str(Subnet("10.0.3.0/24")) == "10.0.3.0/24"


@pytest.mark.parametrize("bad", ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "x/24"])
def test_malformed_subnets_rejected(bad):
    with pytest.raises(ValueError):
        Subnet(bad)
