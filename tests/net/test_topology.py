"""Unit tests for the Network topology builder."""

import pytest

from repro.aqm.fifo import FifoQueue
from repro.net.packet import make_data_packet
from repro.net.topology import DEFAULT_IFACE_BUFFER_BYTES, Network
from repro.units import milliseconds


def _pair(net, **connect_kw):
    a = net.add_host("a").add_interface("eth0")
    b = net.add_host("b").add_interface("eth0")
    connect_kw.setdefault("rate_bps", 1e8)
    connect_kw.setdefault("delay_ns", milliseconds(1))
    net.connect(a, b, **connect_kw)
    return a, b


def test_links_registered_by_direction():
    net = Network()
    _pair(net)
    assert set(net.links) == {"a->b", "b->a"}


def test_symmetric_rates_by_default():
    net = Network()
    _pair(net, rate_bps=5e7)
    assert net.links["a->b"].rate_bps == 5e7
    assert net.links["b->a"].rate_bps == 5e7


def test_asymmetric_return_rate():
    net = Network()
    _pair(net, rate_bps=2e7, rate_ba_bps=1e9)
    assert net.links["a->b"].rate_bps == 2e7
    assert net.links["b->a"].rate_bps == 1e9


def test_default_qdiscs_are_deep_fifos():
    net = Network()
    a, b = _pair(net)
    assert isinstance(a.qdisc, FifoQueue)
    assert a.qdisc.limit_bytes == DEFAULT_IFACE_BUFFER_BYTES
    assert isinstance(b.qdisc, FifoQueue)


def test_custom_qdisc_only_on_requested_side():
    net = Network()
    custom = FifoQueue(1234)
    a, b = _pair(net, qdisc_a=custom)
    assert a.qdisc is custom
    assert b.qdisc is not custom


def test_lossy_connect_gets_seeded_rng():
    net = Network(seed=5)
    a, b = _pair(net, loss_rate=0.5)
    link = net.links["a->b"]
    assert link.loss_rate == 0.5
    assert link._loss_rng is not None
    # End to end: with 50% loss, many of 100 packets vanish.
    got = []
    b.node.receive = lambda pkt, iface: got.append(pkt)  # type: ignore[assignment]
    for seq in range(100):
        a.send(make_data_packet(1, "x", "y", seq=seq, mss=1000, now=0))
    net.run()
    assert 20 <= len(got) <= 80


def test_same_seed_same_loss_pattern():
    outcomes = []
    for _ in range(2):
        net = Network(seed=9)
        a, b = _pair(net, loss_rate=0.3)
        got = []
        b.node.receive = lambda pkt, iface: got.append(pkt.seq)  # type: ignore[assignment]
        for seq in range(50):
            a.send(make_data_packet(1, "x", "y", seq=seq, mss=1000, now=0))
        net.run()
        outcomes.append(tuple(got))
    assert outcomes[0] == outcomes[1]


def test_getitem_returns_node():
    net = Network()
    h = net.add_host("h")
    assert net["h"] is h
    with pytest.raises(KeyError):
        net["ghost"]
