"""FaultSchedule: compilation, arming on a dumbbell, firing semantics."""

import pytest

from repro.faults.schedule import FaultSchedule, resolve_dumbbell_target
from repro.faults.spec import FaultSpec
from repro.sim.rng import RngStreams
from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
from repro.units import mbps, seconds


def _dumbbell(**over):
    params = dict(bottleneck_bw_bps=mbps(10), buffer_bdp=2.0, mss_bytes=1500, seed=11)
    params.update(over)
    return build_dumbbell(DumbbellConfig(**params))


# -- compilation ------------------------------------------------------------------


def test_compile_expands_onset_and_restore_pairs():
    sched = FaultSchedule.compile(
        [FaultSpec(kind="link_flap", at_s=10.0, duration_s=2.0)]
    )
    assert [(e.time_ns, e.action) for e in sched.events] == [
        (seconds(10), "link_down"),
        (seconds(12), "link_up"),
    ]


def test_compile_queue_flush_is_single_event():
    sched = FaultSchedule.compile([FaultSpec(kind="queue_flush", at_s=8.0)])
    assert [(e.time_ns, e.action) for e in sched.events] == [(seconds(8), "queue_flush")]


def test_compile_sorts_by_time_with_stable_ties():
    sched = FaultSchedule.compile(
        [
            FaultSpec(kind="rate_drop", at_s=5.0, duration_s=5.0, rate_factor=0.5),
            FaultSpec(kind="loss_burst", at_s=2.0, duration_s=3.0, loss_rate=0.1),
            FaultSpec(kind="queue_flush", at_s=5.0),
        ]
    )
    assert [(e.time_ns, e.action, e.spec_index) for e in sched.events] == [
        (seconds(2), "loss_set", 1),
        (seconds(5), "rate_scale", 0),  # declaration order wins the t=5 tie
        (seconds(5), "loss_restore", 1),
        (seconds(5), "queue_flush", 2),
        (seconds(10), "rate_restore", 0),
    ]


def test_compile_jitter_needs_rng():
    spec = FaultSpec(kind="queue_flush", at_s=1.0, jitter_s=0.5)
    with pytest.raises(ValueError, match="jitter"):
        FaultSchedule.compile([spec])


def test_compile_jitter_is_seed_deterministic():
    spec = FaultSpec(kind="link_flap", at_s=1.0, duration_s=1.0, jitter_s=0.5)
    a = FaultSchedule.compile([spec], rng=RngStreams(3).stream("faults"))
    b = FaultSchedule.compile([spec], rng=RngStreams(3).stream("faults"))
    c = FaultSchedule.compile([spec], rng=RngStreams(4).stream("faults"))
    assert a.manifest() == b.manifest()
    assert a.manifest() != c.manifest()
    onset = a.events[0].time_ns
    assert seconds(1) <= onset <= seconds(1.5)
    # Jittered or not, the flap keeps its configured duration.
    assert a.events[1].time_ns - onset == seconds(1)


def test_from_config_none_when_empty():
    class Cfg:
        faults = []

    assert FaultSchedule.from_config(Cfg()) is None


# -- target resolution ------------------------------------------------------------


def test_resolve_symbolic_and_raw_targets():
    db = _dumbbell()
    sym = resolve_dumbbell_target(db, "bottleneck")
    raw = resolve_dumbbell_target(db, "router1->router2")
    assert sym.link is raw.link is db.bottleneck_link
    assert sym.iface is not None
    assert sym.iface.link is db.bottleneck_link


def test_resolve_unknown_target_raises():
    with pytest.raises(ValueError, match="does not resolve"):
        resolve_dumbbell_target(_dumbbell(), "backbone42")


def test_arm_fails_fast_on_bad_target():
    db = _dumbbell()
    sched = FaultSchedule.compile(
        [FaultSpec(kind="queue_flush", at_s=1.0, target="nope")]
    )
    with pytest.raises(ValueError, match="does not resolve"):
        sched.arm(db.sim, db)


# -- firing -----------------------------------------------------------------------


def test_flap_downs_then_restores_link():
    db = _dumbbell()
    sched = FaultSchedule.compile(
        [FaultSpec(kind="link_flap", at_s=1.0, duration_s=1.0)]
    )
    sched.arm(db.sim, db)
    db.sim.run(seconds(1.5))
    assert db.bottleneck_link.up is False
    db.sim.run(seconds(3))
    assert db.bottleneck_link.up is True
    assert [row["action"] for row in sched.applied] == ["link_down", "link_up"]
    assert sched.injected == 2


def test_rate_drop_scales_then_restores():
    db = _dumbbell()
    base_rate = db.bottleneck_link.rate_bps
    sched = FaultSchedule.compile(
        [FaultSpec(kind="rate_drop", at_s=1.0, duration_s=1.0, rate_factor=0.25)]
    )
    sched.arm(db.sim, db)
    db.sim.run(seconds(1.5))
    assert db.bottleneck_link.rate_bps == pytest.approx(base_rate * 0.25)
    db.sim.run(seconds(3))
    assert db.bottleneck_link.rate_bps == pytest.approx(base_rate)


def test_delay_spike_scales_then_restores():
    db = _dumbbell()
    base_delay = db.bottleneck_link.delay_ns
    sched = FaultSchedule.compile(
        [FaultSpec(kind="delay_spike", at_s=1.0, duration_s=1.0, delay_factor=3.0)]
    )
    sched.arm(db.sim, db)
    db.sim.run(seconds(1.5))
    assert db.bottleneck_link.delay_ns == int(base_delay * 3.0)
    db.sim.run(seconds(3))
    assert db.bottleneck_link.delay_ns == base_delay


def test_loss_burst_sets_and_restores_with_lazy_stream():
    db = _dumbbell()
    link = db.bottleneck_link
    assert link.loss_rate == 0.0 and link._loss_rng is None
    sched = FaultSchedule.compile(
        [FaultSpec(kind="loss_burst", at_s=1.0, duration_s=1.0, loss_rate=0.3)]
    )
    sched.arm(db.sim, db)
    db.sim.run(seconds(1.5))
    assert link.loss_rate == 0.3
    # The burst created the per-link stream it needed.
    assert link._loss_rng is not None
    db.sim.run(seconds(3))
    assert link.loss_rate == 0.0


def test_loss_restore_returns_preexisting_rate():
    db = _dumbbell(trunk_loss_rate=0.05)
    link = db.bottleneck_link
    sched = FaultSchedule.compile(
        [FaultSpec(kind="loss_burst", at_s=1.0, duration_s=1.0, loss_rate=0.5)]
    )
    sched.arm(db.sim, db)
    db.sim.run(seconds(1.5))
    assert link.loss_rate == 0.5
    db.sim.run(seconds(3))
    assert link.loss_rate == pytest.approx(0.05)


def test_queue_flush_discards_backlog():
    db = _dumbbell()
    target = resolve_dumbbell_target(db, "bottleneck")
    qdisc = target.iface.qdisc
    from repro.net.packet import make_data_packet

    for i in range(5):
        qdisc.enqueue(make_data_packet(1, "a", "b", seq=i, mss=1500, now=0), 0)
    assert qdisc.packets_queued == 5
    sched = FaultSchedule.compile([FaultSpec(kind="queue_flush", at_s=1.0)])
    sched.arm(db.sim, db)
    db.sim.run(seconds(2))
    assert qdisc.packets_queued == 0
    assert qdisc.stats.flushed == 5
    assert sched.applied[0]["value"] == 5.0


def test_flap_with_flush_discards_backlog_on_down():
    db = _dumbbell()
    target = resolve_dumbbell_target(db, "bottleneck")
    qdisc = target.iface.qdisc
    from repro.net.packet import make_data_packet

    for i in range(3):
        qdisc.enqueue(make_data_packet(1, "a", "b", seq=i, mss=1500, now=0), 0)
    sched = FaultSchedule.compile(
        [FaultSpec(kind="link_flap", at_s=1.0, duration_s=1.0, flush=True)]
    )
    sched.arm(db.sim, db)
    db.sim.run(seconds(1.5))
    assert db.bottleneck_link.up is False
    assert qdisc.stats.flushed == 3


def test_manifest_is_json_ready():
    import json

    sched = FaultSchedule.compile(
        [FaultSpec(kind="loss_burst", at_s=5.0, duration_s=5.0, loss_rate=0.01)]
    )
    manifest = sched.manifest()
    assert set(manifest) == {"specs", "events"}
    json.dumps(manifest)  # must not raise
    assert manifest["specs"][0]["kind"] == "loss_burst"
    assert len(manifest["events"]) == 2


def test_tracer_sees_fired_faults():
    from repro.obs.flight import FlightRecorder

    db = _dumbbell()
    sched = FaultSchedule.compile([FaultSpec(kind="queue_flush", at_s=1.0)])
    sched.arm(db.sim, db)
    recorder = FlightRecorder(capacity=16)
    sched.tracer = recorder  # attached *after* arming, like the session does
    db.sim.run(seconds(2))
    events = recorder.of_kind("fault")
    assert len(events) == 1
    assert events[0][2]["action"] == "queue_flush"
