"""Acceptance: identical seeds yield bit-identical faulted runs.

Two independent invocations of the same faulted config must produce the
same compiled FaultSchedule and the same full ExperimentResult dict —
including the fault audit trail — down to the last bit.
"""

import json

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults.schedule import FaultSchedule
from repro.faults.spec import FaultSpec
from repro.sim.rng import RngStreams
from repro.units import mbps

FAULTS = [
    dict(kind="link_flap", at_s=2.0, duration_s=0.5, flush=True),
    dict(kind="loss_burst", at_s=3.0, duration_s=1.5, loss_rate=0.02),
    dict(kind="rate_drop", at_s=4.0, duration_s=1.0, rate_factor=0.5),
]


def _cfg(seed=9):
    return ExperimentConfig(
        cca_pair=("cubic", "reno"),
        aqm="fifo",
        buffer_bdp=2.0,
        bottleneck_bw_bps=mbps(100),
        duration_s=6.0,
        mss_bytes=1500,
        scale=10.0,
        seed=seed,
        faults=FAULTS,
    )


def _norm(result) -> str:
    d = result.to_dict()
    d.pop("wallclock_s", None)  # host timing, never comparable
    return json.dumps(d, sort_keys=True)


def test_same_seed_same_schedule_even_with_jitter():
    specs = [FaultSpec(kind="link_flap", at_s=1.0, duration_s=1.0, jitter_s=2.0)]
    a = FaultSchedule.compile(specs, rng=RngStreams(9).stream("faults"))
    b = FaultSchedule.compile(specs, rng=RngStreams(9).stream("faults"))
    assert a.manifest() == b.manifest()


def test_same_seed_bit_identical_run_summaries():
    first = run_experiment(_cfg())
    second = run_experiment(_cfg())
    assert _norm(first) == _norm(second)
    # The faults actually did something in both runs.
    assert first.extra["faults"]["injected"] == len(first.extra["faults"]["applied"]) > 0


def test_different_seed_changes_outcome():
    # Loss-burst draws come from the seeded per-link stream, so a
    # different seed must reshuffle the drop pattern.
    a = run_experiment(_cfg(seed=9))
    b = run_experiment(_cfg(seed=10))
    assert _norm(a) != _norm(b)


def test_fault_free_config_unchanged_by_subsystem():
    """A config without faults round-trips exactly as before the fault era."""
    cfg = ExperimentConfig(cca_pair=("cubic", "cubic"), duration_s=1.0, mss_bytes=1500)
    assert "faults" not in cfg.to_dict()
    assert "_faults" not in cfg.label()
