"""Unit tests for FaultSpec: validation, parsing, normalization."""

import pytest

from repro.faults.spec import FAULT_KINDS, FaultSpec, normalize_faults


def test_defaults_and_fields():
    spec = FaultSpec(kind="link_flap", at_s=10.0, duration_s=1.0)
    assert spec.target == "bottleneck"
    assert spec.flush is False
    assert spec.jitter_s == 0.0


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(kind="meteor_strike", at_s=1.0)


@pytest.mark.parametrize(
    "over",
    [
        dict(at_s=-1.0),
        dict(duration_s=-0.5),
        dict(jitter_s=-0.1),
        dict(target=""),
    ],
)
def test_bad_scalars_rejected(over):
    base = dict(kind="link_flap", at_s=1.0, duration_s=1.0)
    base.update(over)
    with pytest.raises(ValueError):
        FaultSpec(**base)


@pytest.mark.parametrize("loss", [0.0, 1.0, 1.5, -0.1])
def test_loss_burst_rate_bounds(loss):
    with pytest.raises(ValueError):
        FaultSpec(kind="loss_burst", at_s=1.0, duration_s=1.0, loss_rate=loss)


def test_loss_burst_needs_duration():
    with pytest.raises(ValueError, match="positive duration"):
        FaultSpec(kind="loss_burst", at_s=1.0, loss_rate=0.1)


@pytest.mark.parametrize("factor", [0.0, 1.5, -0.5])
def test_rate_drop_factor_bounds(factor):
    with pytest.raises(ValueError):
        FaultSpec(kind="rate_drop", at_s=1.0, duration_s=1.0, rate_factor=factor)


def test_delay_spike_factor_must_stretch():
    with pytest.raises(ValueError):
        FaultSpec(kind="delay_spike", at_s=1.0, duration_s=1.0, delay_factor=0.5)


def test_link_flap_needs_duration():
    with pytest.raises(ValueError):
        FaultSpec(kind="link_flap", at_s=1.0)


def test_queue_flush_is_instantaneous():
    spec = FaultSpec(kind="queue_flush", at_s=8.0)
    assert spec.duration_s == 0.0


def test_roundtrip_dict():
    spec = FaultSpec(kind="loss_burst", at_s=5.0, duration_s=5.0, loss_rate=0.01)
    d = spec.to_dict()
    # Stable full key set: every field present even at its default.
    assert set(d) == set(FaultSpec.__dataclass_fields__)
    assert FaultSpec.from_dict(d) == spec


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown fault spec fields"):
        FaultSpec.from_dict(dict(kind="link_flap", at_s=1.0, duration_s=1.0, blast_radius=3))


def test_parse_with_aliases():
    spec = FaultSpec.parse("loss_burst,at=5,dur=5,rate=0.01,target=reverse")
    assert spec == FaultSpec(
        kind="loss_burst", at_s=5.0, duration_s=5.0, loss_rate=0.01, target="reverse"
    )


def test_parse_flush_and_jitter():
    spec = FaultSpec.parse("link_flap,at=10,dur=2,flush=true,jitter=0.5")
    assert spec.flush is True
    assert spec.jitter_s == 0.5
    assert FaultSpec.parse("link_flap,at=10,dur=2,flush=no").flush is False


@pytest.mark.parametrize("text", ["", "link_flap,dur=2", "link_flap,at=10,dur"])
def test_parse_rejects_malformed(text):
    with pytest.raises(ValueError):
        FaultSpec.parse(text)


def test_every_kind_has_a_valid_example():
    examples = {
        "link_flap": FaultSpec(kind="link_flap", at_s=1, duration_s=1),
        "loss_burst": FaultSpec(kind="loss_burst", at_s=1, duration_s=1, loss_rate=0.1),
        "rate_drop": FaultSpec(kind="rate_drop", at_s=1, duration_s=1, rate_factor=0.5),
        "delay_spike": FaultSpec(kind="delay_spike", at_s=1, duration_s=1, delay_factor=2.0),
        "queue_flush": FaultSpec(kind="queue_flush", at_s=1),
    }
    assert set(examples) == set(FAULT_KINDS)


def test_normalize_accepts_mixed_forms():
    out = normalize_faults(
        [
            dict(kind="queue_flush", at_s=8.0),
            FaultSpec(kind="link_flap", at_s=1.0, duration_s=1.0),
            "rate_drop,at=5,dur=5,factor=0.5",
        ]
    )
    assert [d["kind"] for d in out] == ["queue_flush", "link_flap", "rate_drop"]
    # Idempotent: normalizing the output changes nothing.
    assert normalize_faults(out) == out


def test_normalize_rejects_garbage():
    with pytest.raises(ValueError):
        normalize_faults([42])
