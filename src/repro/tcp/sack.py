"""The SACK scoreboard (RFC 6675-style).

Tracks, per outstanding segment: the rate-sampling snapshot taken at send
time, whether it has been SACKed, whether it is deemed lost, and how many
copies are in flight.  ``pipe`` (the estimate of data outstanding in the
network) is maintained incrementally as the sum of in-flight copies — the
invariant the property-based tests in ``tests/tcp/test_sack.py`` hammer.

Loss marking uses the classic duplicate threshold: a segment is lost once
``dupthresh`` (3) segments above it have been SACKed.  A scan pointer
guarantees each sequence number is classified at most once per epoch, so
per-ACK work stays proportional to what the ACK actually acknowledged.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.tcp.rate_sample import SegmentSendState

DUPTHRESH = 3


class SegEntry:
    """Scoreboard state for one outstanding segment."""

    __slots__ = ("send_state", "sacked", "lost", "retx_count", "copies")

    def __init__(self, send_state: SegmentSendState):
        self.send_state = send_state
        self.sacked = False
        self.lost = False
        self.retx_count = 0
        self.copies = 1  # transmissions currently presumed in flight


class Scoreboard:
    """Per-connection retransmission bookkeeping."""

    def __init__(self, dupthresh: int = DUPTHRESH):
        if dupthresh < 1:
            raise ValueError(f"dupthresh must be >= 1, got {dupthresh}")
        self.dupthresh = dupthresh
        self.entries: Dict[int, SegEntry] = {}
        self.pipe = 0  # segments in flight (sum of copies)
        self.high_sacked = -1
        self.sacked_count = 0
        self._loss_scan = 0
        self._retx_queue: Deque[int] = deque()
        # Disjoint sorted coverage of seq ranges already processed by
        # apply_sacks (parallel start/end lists, ranges half-open).  SACK
        # blocks repeat the same ranges on every ACK until the hole fills
        # (RFC 2018); per-ACK work must only touch the *new* parts.  A
        # covered seq can never need re-processing: only apply_sacks sets
        # ``sacked``, cumulative removal never resurrects an entry, and new
        # segments are always registered at/above snd_nxt, which bounds all
        # prior coverage.
        self._cov_starts: List[int] = []
        self._cov_ends: List[int] = []

    # -- transmission ------------------------------------------------------------

    def register_send(self, seq: int, send_state: SegmentSendState) -> None:
        """A brand-new segment entered the network."""
        if seq in self.entries:
            raise ValueError(f"segment {seq} already registered")
        self.entries[seq] = SegEntry(send_state)
        self.pipe += 1

    def register_retx(self, seq: int, send_state: SegmentSendState) -> None:
        """A lost segment was retransmitted (one more copy in flight)."""
        entry = self.entries[seq]
        entry.copies += 1
        entry.retx_count += 1
        entry.send_state = send_state
        self.pipe += 1

    # -- acknowledgement ------------------------------------------------------------

    def cumulative_ack(self, old_una: int, new_una: int) -> List[SegmentSendState]:
        """Remove segments below ``new_una``; return newly delivered send-states."""
        delivered: List[SegmentSendState] = []
        for seq in range(old_una, new_una):
            entry = self.entries.pop(seq, None)
            if entry is None:
                continue
            if entry.sacked:
                self.sacked_count -= 1
            else:
                delivered.append(entry.send_state)
            self.pipe -= entry.copies
        if self._loss_scan < new_una:
            self._loss_scan = new_una
        # Coverage below the new cumulative ack can never be consulted
        # again (blocks are clamped to snd_una); prune to keep the bisects
        # over a handful of ranges.
        ends = self._cov_ends
        if ends and ends[0] <= new_una:
            starts = self._cov_starts
            while ends and ends[0] <= new_una:
                del starts[0]
                del ends[0]
        return delivered

    def _cover_add(self, lo: int, hi: int) -> None:
        """Merge the half-open range [lo, hi) into the processed coverage."""
        starts, ends = self._cov_starts, self._cov_ends
        i = bisect_left(starts, lo)
        if i > 0 and ends[i - 1] >= lo:
            i -= 1
            lo = starts[i]
            if ends[i] > hi:
                hi = ends[i]
        j = i
        n = len(starts)
        while j < n and starts[j] <= hi:
            if ends[j] > hi:
                hi = ends[j]
            j += 1
        starts[i:j] = [lo]
        ends[i:j] = [hi]

    def apply_sacks(
        self, sacks: Tuple[Tuple[int, int], ...], snd_una: int, snd_nxt: int
    ) -> List[SegmentSendState]:
        """Process SACK blocks; return send-states of newly SACKed segments."""
        delivered: List[SegmentSendState] = []
        if not sacks:
            return delivered
        entries_get = self.entries.get
        starts, ends = self._cov_starts, self._cov_ends
        for start, end in sacks:
            lo = start if start > snd_una else snd_una
            hi = end if end < snd_nxt else snd_nxt
            if lo >= hi:
                continue
            # Walk only the uncovered gaps of [lo, hi); ascending order, so
            # newly SACKed segments are delivered exactly as a full scan
            # would produce them.
            pos = lo
            i = bisect_right(starts, pos) - 1
            if i >= 0 and ends[i] > pos:
                pos = ends[i]
            i += 1
            n = len(starts)
            while pos < hi:
                gap_end = starts[i] if i < n and starts[i] < hi else hi
                for seq in range(pos, gap_end):
                    entry = entries_get(seq)
                    if entry is None or entry.sacked:
                        continue
                    entry.sacked = True
                    self.sacked_count += 1
                    self.pipe -= entry.copies
                    entry.copies = 0
                    delivered.append(entry.send_state)
                    if seq > self.high_sacked:
                        self.high_sacked = seq
                if i < n and starts[i] < hi:
                    pos = ends[i]
                    i += 1
                else:
                    break
            self._cover_add(lo, hi)
        return delivered

    # -- loss detection ------------------------------------------------------------

    def mark_losses(self, snd_una: int) -> int:
        """Classify segments below ``high_sacked - dupthresh + 1`` as lost.

        Returns the number of segments newly marked lost.
        """
        limit = self.high_sacked - self.dupthresh + 1  # seqs < limit+... seq <= high_sacked - dupthresh
        newly_lost = 0
        scan_from = max(self._loss_scan, snd_una)
        for seq in range(scan_from, limit):
            entry = self.entries.get(seq)
            if entry is None or entry.sacked or entry.lost:
                continue
            entry.lost = True
            self.pipe -= entry.copies
            entry.copies = 0
            self._retx_queue.append(seq)
            newly_lost += 1
        if limit > self._loss_scan:
            self._loss_scan = limit
        return newly_lost

    def on_rto(self, snd_una: int, snd_nxt: int) -> None:
        """Everything un-SACKed is presumed lost; nothing is in flight."""
        self._retx_queue.clear()
        for seq in range(snd_una, snd_nxt):
            entry = self.entries.get(seq)
            if entry is None or entry.sacked:
                continue
            entry.lost = True
            entry.copies = 0
            self._retx_queue.append(seq)
        self.pipe = 0
        self._loss_scan = snd_una

    # -- retransmission scheduling ------------------------------------------------------

    def next_retx(self, snd_una: int) -> Optional[int]:
        """Pop the lowest lost segment that still needs a retransmission."""
        queue = self._retx_queue
        while queue:
            seq = queue[0]
            entry = self.entries.get(seq)
            if seq < snd_una or entry is None or entry.sacked or not entry.lost or entry.copies > 0:
                queue.popleft()
                continue
            queue.popleft()
            return seq
        return None

    def requeue_retx(self, seq: int) -> None:
        """Put back a retransmission candidate obtained from :meth:`next_retx`."""
        self._retx_queue.appendleft(seq)

    def has_retx_pending(self, snd_una: int) -> bool:
        """True if some lost segment still awaits retransmission."""
        queue = self._retx_queue
        while queue:
            seq = queue[0]
            entry = self.entries.get(seq)
            if seq < snd_una or entry is None or entry.sacked or not entry.lost or entry.copies > 0:
                queue.popleft()
                continue
            return True
        return False

    @property
    def outstanding(self) -> int:
        """Number of scoreboard entries (segments not yet cumulatively acked)."""
        return len(self.entries)
