"""Delivery-rate estimation (the BBR rate-sampling draft).

Each transmitted segment snapshots the connection's ``delivered`` counter
and timestamps; when the segment is (s)acked, the delivered delta over the
elapsed interval gives an unbiased per-ACK bandwidth sample.  Samples taken
while the sender was application-limited are flagged so BBR's max filter
can ignore them.

Rates are expressed in **segments per second** — with fixed-MSS flows this
is bandwidth divided by a constant, and it keeps the BBR arithmetic in the
same unit as cwnd.
"""

from __future__ import annotations

from typing import Optional


class SegmentSendState:
    """Per-segment snapshot taken at transmission time."""

    __slots__ = ("sent_time", "delivered", "delivered_time", "first_sent_time", "app_limited")

    def __init__(self, sent_time: int, delivered: int, delivered_time: int, first_sent_time: int, app_limited: bool):
        self.sent_time = sent_time
        self.delivered = delivered
        self.delivered_time = delivered_time
        self.first_sent_time = first_sent_time
        self.app_limited = app_limited


class RateSample:
    """The per-ACK outcome handed to the congestion controller."""

    __slots__ = ("delivery_rate_pps", "is_app_limited", "interval_ns", "delivered", "prior_delivered")

    def __init__(self, delivery_rate_pps: float, is_app_limited: bool, interval_ns: int, delivered: int, prior_delivered: int):
        self.delivery_rate_pps = delivery_rate_pps
        self.is_app_limited = is_app_limited
        self.interval_ns = interval_ns
        self.delivered = delivered
        self.prior_delivered = prior_delivered


class RateSampler:
    """Connection-level delivery accounting."""

    __slots__ = (
        "delivered",
        "delivered_time",
        "first_sent_time",
        "app_limited_until",
        "_best",
    )

    def __init__(self) -> None:
        self.delivered = 0  # total segments delivered (cumulative + SACK)
        self.delivered_time = 0
        self.first_sent_time = 0
        # delivered-count watermark below which samples are app-limited
        self.app_limited_until = 0
        self._best: Optional[SegmentSendState] = None

    def on_send(self, now: int, inflight: int, app_limited: bool) -> SegmentSendState:
        """Snapshot state onto an outgoing segment."""
        if inflight == 0:
            self.first_sent_time = now
            self.delivered_time = now
        if app_limited:
            self.app_limited_until = self.delivered + inflight + 1
        return SegmentSendState(
            sent_time=now,
            delivered=self.delivered,
            delivered_time=self.delivered_time,
            first_sent_time=self.first_sent_time,
            app_limited=self.delivered < self.app_limited_until,
        )

    def on_segment_delivered(self, now: int, seg: SegmentSendState) -> None:
        """Account one newly delivered segment (called per seg, before finish)."""
        self.delivered += 1
        self.delivered_time = now
        # Track the most-recently-sent delivered segment for this ACK.
        if self._best is None or seg.delivered > self._best.delivered:
            self._best = seg

    def finish_ack(self, now: int) -> Optional[RateSample]:
        """Produce the rate sample for the ACK just processed (if any)."""
        seg = self._best
        self._best = None
        if seg is None:
            return None
        self.first_sent_time = seg.sent_time
        send_elapsed = seg.sent_time - seg.first_sent_time
        ack_elapsed = now - seg.delivered_time
        interval = max(send_elapsed, ack_elapsed)
        delivered_delta = self.delivered - seg.delivered
        if interval <= 0 or delivered_delta <= 0:
            return None
        rate = delivered_delta * 1e9 / interval
        return RateSample(
            delivery_rate_pps=rate,
            is_app_limited=seg.app_limited,
            interval_ns=interval,
            delivered=self.delivered,
            prior_delivered=seg.delivered,
        )
