"""Connection facade: wire a sender and a receiver across the network.

``open_connection`` registers a :class:`~repro.tcp.sender.TcpSender` on the
source host and a :class:`~repro.tcp.receiver.TcpReceiver` on the
destination host under the same flow id, each transmitting through its
host's primary interface — the simulator analogue of an iperf3
client/server pair establishing one stream.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.cca.base import CongestionControl
from repro.net.node import Host
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender

_flow_ids = itertools.count(1)


def next_flow_id() -> int:
    """Globally unique flow id (process-wide counter)."""
    return next(_flow_ids)


class Connection:
    """A unidirectional data transfer: sender host -> receiver host."""

    def __init__(self, flow_id: int, sender: TcpSender, receiver: TcpReceiver):
        self.flow_id = flow_id
        self.sender = sender
        self.receiver = receiver

    def start(self, delay_ns: int = 0) -> None:
        """Begin transmitting ``delay_ns`` from now."""
        self.sender.start(delay_ns)

    def stop(self) -> None:
        """Stop the sender (in-flight data may still drain)."""
        self.sender.stop()

    @property
    def bytes_received(self) -> int:
        return self.receiver.bytes_received

    @property
    def retransmits(self) -> int:
        return self.sender.retransmits

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Connection flow={self.flow_id}>"


def open_connection(
    src: Host,
    dst: Host,
    cca: CongestionControl,
    *,
    mss: int,
    flow_id: Optional[int] = None,
    total_segments: Optional[int] = None,
    ecn_enabled: bool = False,
    ack_every: int = 1,
) -> Connection:
    """Create and register a sender/receiver pair between two hosts."""
    if src.sim is not dst.sim:
        raise ValueError("source and destination must share a simulator")
    fid = flow_id if flow_id is not None else next_flow_id()
    src_iface = src.primary_interface()
    dst_iface = dst.primary_interface()
    if src_iface.address is None or dst_iface.address is None:
        raise ValueError("both endpoints need addressed interfaces")

    sender = TcpSender(
        src.sim,
        fid,
        src_iface.address,
        dst_iface.address,
        src_iface.send,
        cca,
        mss=mss,
        total_segments=total_segments,
        ecn_enabled=ecn_enabled,
    )
    receiver = TcpReceiver(
        fid,
        dst_iface.address,
        src_iface.address,
        dst_iface.send,
        lambda: dst.sim.now,
        mss=mss,
        ack_every=ack_every,
    )
    src.register_endpoint(fid, sender)
    dst.register_endpoint(fid, receiver)
    return Connection(fid, sender, receiver)
