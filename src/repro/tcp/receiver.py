"""The TCP receiver: reassembly and acknowledgement generation.

Sends one ACK per arriving data segment (the high-throughput behaviour:
Linux effectively quick-acks bulk flows when SACK blocks are present; a
``ack_every`` knob provides classic delayed ACKs).  Each ACK carries:

- the cumulative acknowledgement (next expected segment),
- up to 3 SACK blocks, most recently touched ranges first (RFC 2018),
- a timestamp echo of the data segment's send time (RTT sampling), and
- the ECN echo when the segment arrived CE-marked.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.net.packet import MAX_SACK_BLOCKS, Packet, make_ack_packet
from repro.tcp.intervals import IntervalSet


class TcpReceiver:
    """One flow's receive side."""

    def __init__(
        self,
        flow_id: int,
        local_addr,
        remote_addr,
        send_fn: Callable[[Packet], None],
        clock: Callable[[], int],
        *,
        mss: int,
        ack_every: int = 1,
    ):
        if ack_every < 1:
            raise ValueError(f"ack_every must be >= 1, got {ack_every}")
        self.flow_id = flow_id
        self.local_addr = local_addr
        self.remote_addr = remote_addr
        self.send_fn = send_fn
        self.clock = clock
        self.mss = mss
        self.ack_every = ack_every

        self.rcv_nxt = 0
        self._ooo = IntervalSet()
        # Ranges ordered by recency for SACK block selection.
        self._recent_ranges: List[Tuple[int, int]] = []
        self._unacked_segments = 0

        # Counters for metrics / iperf-style reporting.
        self.segments_received = 0
        self.bytes_received = 0  # unique goodput bytes
        self.duplicate_segments = 0
        self.acks_sent = 0

    # -- ingress -----------------------------------------------------------------

    def handle_packet(self, pkt: Packet) -> None:
        """Consume one arriving data segment and emit the matching ACK."""
        if pkt.is_ack:
            return  # receivers only consume data
        self.segments_received += 1
        seq = pkt.seq
        new_data = False
        if seq == self.rcv_nxt:
            new_data = True
            self.rcv_nxt += 1
            # Drain any contiguous out-of-order run (skip the call entirely
            # in the common hole-free case).
            if self._ooo:
                drained = self._ooo.pop_first_if_starts_at(self.rcv_nxt)
                if drained is not None:
                    self.rcv_nxt = drained[1]
                    self._forget_range(drained)
        elif seq > self.rcv_nxt:
            if seq in self._ooo:
                self.duplicate_segments += 1
            else:
                new_data = True
                merged = self._ooo.add(seq)
                self._remember_range(merged)
        else:
            self.duplicate_segments += 1

        if new_data:
            self.bytes_received += pkt.size

        self._unacked_segments += 1
        # Always ACK immediately on out-of-order data (fast-retransmit food)
        # or when the delayed-ACK quota is reached.
        if seq != self.rcv_nxt - 1 or self._ooo or self._unacked_segments >= self.ack_every:
            self._send_ack(pkt)

    # -- SACK block bookkeeping -----------------------------------------------------

    def _remember_range(self, rng: Tuple[int, int]) -> None:
        # Drop stale versions of overlapping ranges, then push to front.
        self._recent_ranges = [
            r for r in self._recent_ranges if r[1] < rng[0] or r[0] > rng[1]
        ]
        self._recent_ranges.insert(0, rng)
        del self._recent_ranges[8:]  # keep a short history

    def _forget_range(self, rng: Tuple[int, int]) -> None:
        self._recent_ranges = [
            r for r in self._recent_ranges if not (rng[0] <= r[0] and r[1] <= rng[1])
        ]

    def _sack_blocks(self) -> Tuple[Tuple[int, int], ...]:
        blocks: List[Tuple[int, int]] = []
        for rng in self._recent_ranges:
            live = self._ooo.range_containing(rng[0])
            if live is not None and live not in blocks:
                blocks.append(live)
            if len(blocks) >= MAX_SACK_BLOCKS:
                break
        return tuple(blocks)

    # -- egress ------------------------------------------------------------------

    def _send_ack(self, data_pkt: Packet) -> None:
        self._unacked_segments = 0
        ack = make_ack_packet(
            self.flow_id,
            self.local_addr,
            self.remote_addr,
            self.rcv_nxt,
            self.clock(),
            sacks=self._sack_blocks() if self._recent_ranges else (),
            ts_echo=data_pkt.send_time,
            ecn_echo=data_pkt.ecn_ce,
        )
        self.acks_sent += 1
        self.send_fn(ack)

    @property
    def out_of_order_segments(self) -> int:
        return self._ooo.total
