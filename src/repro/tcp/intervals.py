"""Sorted, coalescing integer interval set.

Used by the TCP receiver to track out-of-order segments: each arriving
segment either extends an existing ``[start, end)`` range or opens a new
one, and ranges merge automatically.  Lookups and insertions are
O(log n) via :mod:`bisect` over the sorted start list.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple


class IntervalSet:
    """A set of disjoint half-open integer ranges ``[start, end)``."""

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []

    def __len__(self) -> int:
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(zip(self._starts, self._ends))

    @property
    def total(self) -> int:
        """Total integers covered."""
        return sum(e - s for s, e in self)

    def __contains__(self, value: int) -> bool:
        idx = bisect.bisect_right(self._starts, value) - 1
        return idx >= 0 and value < self._ends[idx]

    def add(self, value: int) -> Tuple[int, int]:
        """Insert a single integer; returns the (possibly merged) range it landed in."""
        return self.add_range(value, value + 1)

    def add_range(self, start: int, end: int) -> Tuple[int, int]:
        """Insert ``[start, end)``; returns the containing coalesced range."""
        if start >= end:
            raise ValueError(f"empty range [{start}, {end})")
        starts, ends = self._starts, self._ends
        # Find all existing ranges overlapping or adjacent to [start, end).
        lo = bisect.bisect_left(ends, start)  # first range with end >= start
        hi = bisect.bisect_right(starts, end)  # first range with start > end
        if lo < hi:
            start = min(start, starts[lo])
            end = max(end, ends[hi - 1])
            del starts[lo:hi]
            del ends[lo:hi]
        starts.insert(lo, start)
        ends.insert(lo, end)
        return (start, end)

    def first(self) -> Optional[Tuple[int, int]]:
        """The lowest range, or None if empty."""
        if not self._starts:
            return None
        return (self._starts[0], self._ends[0])

    def pop_first_if_starts_at(self, value: int) -> Optional[Tuple[int, int]]:
        """Remove and return the first range iff it starts exactly at ``value``."""
        if self._starts and self._starts[0] == value:
            return (self._starts.pop(0), self._ends.pop(0))
        return None

    def range_containing(self, value: int) -> Optional[Tuple[int, int]]:
        """The range covering ``value``, or None."""
        idx = bisect.bisect_right(self._starts, value) - 1
        if idx >= 0 and value < self._ends[idx]:
            return (self._starts[idx], self._ends[idx])
        return None
