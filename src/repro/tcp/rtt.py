"""Round-trip-time estimation and RTO computation (RFC 6298).

RTT samples come from the timestamp echo on every ACK (the simulator's
equivalent of TCP timestamps), so even retransmitted segments yield valid
samples — Karn's problem does not arise.
"""

from __future__ import annotations

from typing import Optional

from repro.units import milliseconds, seconds

DEFAULT_INITIAL_RTO_NS = seconds(1)
MIN_RTO_NS = milliseconds(200)  # Linux TCP_RTO_MIN
MAX_RTO_NS = seconds(120)


class RttEstimator:
    """SRTT/RTTVAR smoothing plus the running minimum RTT."""

    __slots__ = ("srtt_ns", "rttvar_ns", "rto_ns", "min_rtt_ns", "latest_rtt_ns", "samples")

    def __init__(self, initial_rto_ns: int = DEFAULT_INITIAL_RTO_NS):
        self.srtt_ns: Optional[int] = None
        self.rttvar_ns: int = 0
        self.rto_ns: int = initial_rto_ns
        self.min_rtt_ns: Optional[int] = None
        self.latest_rtt_ns: Optional[int] = None
        self.samples: int = 0

    def on_sample(self, rtt_ns: int) -> None:
        """Fold one RTT measurement into the estimator."""
        if rtt_ns <= 0:
            raise ValueError(f"RTT sample must be positive, got {rtt_ns}")
        self.latest_rtt_ns = rtt_ns
        self.samples += 1
        if self.min_rtt_ns is None or rtt_ns < self.min_rtt_ns:
            self.min_rtt_ns = rtt_ns
        if self.srtt_ns is None:
            self.srtt_ns = rtt_ns
            self.rttvar_ns = rtt_ns // 2
        else:
            err = rtt_ns - self.srtt_ns
            # RTTVAR <- 3/4 RTTVAR + 1/4 |err|; SRTT <- 7/8 SRTT + 1/8 err
            self.rttvar_ns += (abs(err) - self.rttvar_ns) // 4
            self.srtt_ns += err // 8
        self.rto_ns = self._clamp(self.srtt_ns + max(4 * self.rttvar_ns, milliseconds(1)))

    def on_backoff(self) -> None:
        """Double the RTO after a retransmission timeout (Karn's backoff)."""
        self.rto_ns = self._clamp(self.rto_ns * 2)

    @staticmethod
    def _clamp(rto_ns: int) -> int:
        return max(MIN_RTO_NS, min(MAX_RTO_NS, rto_ns))
