"""From-scratch TCP data-transfer machinery.

Sequencing is in segments (fixed-MSS jumbo packets, per the paper), with
cumulative + selective acknowledgements, SACK-based loss recovery
(RFC 6675-style pipe accounting), RFC 6298 RTO estimation with exponential
backoff, BBR-style delivery-rate sampling, and optional packet pacing.
Congestion control is pluggable via :mod:`repro.cca`.
"""

from repro.tcp.connection import Connection, open_connection
from repro.tcp.receiver import TcpReceiver
from repro.tcp.rtt import RttEstimator
from repro.tcp.sender import TcpSender

__all__ = ["Connection", "open_connection", "TcpSender", "TcpReceiver", "RttEstimator"]
