"""The TCP sender: window management, loss recovery, pacing, retransmission.

State machine (Linux naming): OPEN -> RECOVERY on SACK-detected loss (one
congestion event per episode, RFC 6675 pipe-gated (re)transmissions) and
-> LOSS on retransmission timeout (everything un-SACKed presumed lost,
exponential RTO backoff).  Both exit once the pre-episode ``snd_nxt`` is
cumulatively acknowledged.

Transmission gate: ``scoreboard.pipe < floor(cca.cwnd)``, plus a pacing
release clock when the congestion controller requests pacing (BBR).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cca.base import AckEvent, CongestionControl
from repro.net.packet import Packet, make_data_packet
from repro.sim.engine import Event, Simulator
from repro.sim.trace import NULL_TRACER
from repro.tcp.rate_sample import RateSampler
from repro.tcp.rtt import RttEstimator
from repro.tcp.sack import Scoreboard

OPEN, RECOVERY, LOSS = "OPEN", "RECOVERY", "LOSS"


class TcpSender:
    """One flow's send side, pumping an unbounded (iperf-style) byte source."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        local_addr,
        remote_addr,
        send_fn: Callable[[Packet], None],
        cca: CongestionControl,
        *,
        mss: int,
        total_segments: Optional[int] = None,
        ecn_enabled: bool = False,
    ):
        if mss <= 0:
            raise ValueError(f"mss must be positive, got {mss}")
        self.sim = sim
        self.flow_id = flow_id
        self.local_addr = local_addr
        self.remote_addr = remote_addr
        self.send_fn = send_fn
        self.cca = cca
        self.mss = mss
        self.total_segments = total_segments
        self.ecn_enabled = ecn_enabled

        self.snd_una = 0
        self.snd_nxt = 0
        self.state = OPEN
        self.recovery_point = -1

        self.scoreboard = Scoreboard()
        self.rtt = RttEstimator()
        self.rate_sampler = RateSampler()

        # Packet-timed round trips (BBR's clock).
        self.round_count = 0
        self._round_end_seq = 0

        # Pacing release clock.
        self._pacing_next_ns = 0
        self._pacing_event: Optional[Event] = None

        self._rto_event: Optional[Event] = None
        self._started = False
        self._stopped = False

        # Counters surfaced to metrics / iperf logs.
        self.segments_sent = 0
        self.retransmits = 0
        self.rto_count = 0
        self.fast_recoveries = 0
        self.bytes_sent = 0

        # Flight-recorder hook; consulted only on loss-recovery paths
        # (retransmit, RTO, recovery entry), never per segment or per ACK.
        self.tracer = NULL_TRACER

    # -- lifecycle ---------------------------------------------------------------

    def start(self, delay_ns: int = 0) -> None:
        """Begin transmitting ``delay_ns`` from now."""
        if self._started:
            raise RuntimeError(f"flow {self.flow_id} already started")
        self._started = True
        self.sim.schedule(delay_ns, self._begin)

    def _begin(self) -> None:
        if not self._stopped:
            self.try_send()

    def stop(self) -> None:
        """Stop sending new data (in-flight data may still be acked)."""
        self._stopped = True
        if self._pacing_event is not None:
            self._pacing_event.cancel()
            self._pacing_event = None
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    @property
    def done(self) -> bool:
        """All requested data acknowledged (finite transfers only)."""
        return self.total_segments is not None and self.snd_una >= self.total_segments

    # -- ACK ingestion ------------------------------------------------------------

    def handle_packet(self, pkt: Packet) -> None:
        """Process one arriving ACK: scoreboard, RTT, CCA, transmission."""
        if not pkt.is_ack or self._stopped:
            return
        now = self.sim.now
        sampler = self.rate_sampler
        newly_acked = 0

        if pkt.ack > self.snd_una:
            delivered_states = self.scoreboard.cumulative_ack(self.snd_una, pkt.ack)
            newly_acked = pkt.ack - self.snd_una
            for st in delivered_states:
                sampler.on_segment_delivered(now, st)
            self.snd_una = pkt.ack
            self._restart_rto()
            if self.state != OPEN and self.snd_una >= self.recovery_point:
                self.state = OPEN

        newly_sacked_states = self.scoreboard.apply_sacks(pkt.sacks, self.snd_una, self.snd_nxt)
        for st in newly_sacked_states:
            sampler.on_segment_delivered(now, st)
        newly_sacked = len(newly_sacked_states)

        if pkt.ts_echo >= 0:
            rtt_sample = now - pkt.ts_echo
            if rtt_sample > 0:
                self.rtt.on_sample(rtt_sample)

        newly_lost = self.scoreboard.mark_losses(self.snd_una)
        if newly_lost and self.state == OPEN:
            self.state = RECOVERY
            self.recovery_point = self.snd_nxt
            self.fast_recoveries += 1
            self.cca.on_congestion_event(now)
            if self.tracer.enabled:
                self.tracer.record(
                    "recovery_enter", now, flow=self.flow_id,
                    lost=newly_lost, recovery_point=self.recovery_point,
                    cwnd=self.cca.cwnd,
                )

        round_start = False
        if self.snd_una >= self._round_end_seq:
            self.round_count += 1
            self._round_end_seq = self.snd_nxt
            round_start = True

        sample = sampler.finish_ack(now)
        rtt = self.rtt
        # Positional construction (fields in AckEvent declaration order);
        # in_recovery is RECOVERY only — LOSS (post-RTO) slow start must
        # still grow the window.
        ev = AckEvent(
            now,
            newly_acked,
            newly_sacked,
            newly_lost,
            rtt.latest_rtt_ns,
            rtt.min_rtt_ns,
            rtt.srtt_ns,
            sample.delivery_rate_pps if sample else None,
            sample.is_app_limited if sample else False,
            self.scoreboard.pipe,
            round_start,
            self.round_count,
            self.state == RECOVERY,
            sampler.delivered,
        )
        self.cca.on_ack(ev)
        if pkt.ecn_echo:
            self.cca.on_ecn(now)

        if self.scoreboard.pipe == 0 and self.snd_una >= self.snd_nxt and self._rto_event is not None:
            # Nothing outstanding: quiesce the timer.
            self._rto_event.cancel()
            self._rto_event = None
        self.try_send()

    # -- transmission ------------------------------------------------------------

    def _cwnd_limit(self) -> int:
        return max(1, int(self.cca.cwnd))

    def _has_new_data(self) -> bool:
        if self._stopped:
            return False
        if self.total_segments is None:
            return True
        return self.snd_nxt < self.total_segments

    def try_send(self) -> None:
        """Transmit while the window (and pacing clock) allow."""
        if self._stopped:
            return
        now = self.sim.now
        pacing_rate = self.cca.pacing_rate_pps
        scoreboard = self.scoreboard
        total_segments = self.total_segments
        # _cwnd_limit() and _has_new_data() inlined: this loop gates every
        # single transmission.
        cwnd = self.cca.cwnd
        cwnd_limit = 1 if cwnd < 1 else int(cwnd)
        while True:
            if scoreboard.pipe >= cwnd_limit:
                return
            retx_seq = scoreboard.next_retx(self.snd_una)
            if retx_seq is None and (
                total_segments is not None and self.snd_nxt >= total_segments
            ):
                return
            if pacing_rate is not None and pacing_rate > 0:
                if now < self._pacing_next_ns:
                    self._arm_pacing_timer()
                    # Re-queue the retransmission we peeled off.
                    if retx_seq is not None:
                        self.scoreboard.requeue_retx(retx_seq)
                    return
                gap_ns = int(1e9 / pacing_rate)
                base = self._pacing_next_ns if self._pacing_next_ns > now - gap_ns else now
                self._pacing_next_ns = base + gap_ns
            if retx_seq is not None:
                self._transmit(retx_seq, is_retx=True)
            else:
                self._transmit(self.snd_nxt, is_retx=False)
                self.snd_nxt += 1

    def _transmit(self, seq: int, *, is_retx: bool) -> None:
        now = self.sim.now
        app_limited = (
            self.total_segments is not None
            and not is_retx
            and seq >= self.total_segments - 1
        )
        send_state = self.rate_sampler.on_send(now, self.scoreboard.pipe, app_limited)
        if is_retx:
            self.scoreboard.register_retx(seq, send_state)
            self.retransmits += 1
            if self.tracer.enabled:
                self.tracer.record(
                    "retx", now, flow=self.flow_id, seq=seq, state=self.state
                )
        else:
            self.scoreboard.register_send(seq, send_state)
        pkt = make_data_packet(
            self.flow_id,
            self.local_addr,
            self.remote_addr,
            seq,
            self.mss,
            now,
            is_retx=is_retx,
            ecn_ect=self.ecn_enabled,
        )
        self.segments_sent += 1
        self.bytes_sent += self.mss
        if self._rto_event is None:
            self._restart_rto()
        self.cca.on_sent(now, self.scoreboard.pipe)
        self.send_fn(pkt)

    def _arm_pacing_timer(self) -> None:
        if self._pacing_event is not None and not self._pacing_event.cancelled:
            return
        delay = max(0, self._pacing_next_ns - self.sim.now)
        self._pacing_event = self.sim.schedule(delay, self._pacing_fire)

    def _pacing_fire(self) -> None:
        self._pacing_event = None
        self.try_send()

    # -- RTO ---------------------------------------------------------------------

    def _restart_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        self._rto_event = self.sim.schedule(self.rtt.rto_ns, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_event = None
        if self._stopped or (self.scoreboard.pipe == 0 and self.snd_una >= self.snd_nxt):
            return
        self.rto_count += 1
        self.rtt.on_backoff()
        self.scoreboard.on_rto(self.snd_una, self.snd_nxt)
        if self.tracer.enabled:
            self.tracer.record(
                "rto", self.sim.now, flow=self.flow_id,
                snd_una=self.snd_una, snd_nxt=self.snd_nxt,
                rto_ns=self.rtt.rto_ns,
            )
        first_timeout = self.state != LOSS
        self.state = LOSS
        self.recovery_point = self.snd_nxt
        self.cca.on_rto(self.sim.now, first_timeout)
        # Reset the pacing clock so the retransmission goes out now.
        self._pacing_next_ns = self.sim.now
        self._restart_rto()
        self.try_send()

    # -- introspection ----------------------------------------------------------

    @property
    def inflight(self) -> int:
        return self.scoreboard.pipe

    def telemetry(self) -> dict:
        """Flow-health snapshot for the observability layer (pull-based)."""
        return {
            "flow_id": self.flow_id,
            "state": self.state,
            "cwnd": self.cca.cwnd,
            "pipe": self.scoreboard.pipe,
            "snd_una": self.snd_una,
            "snd_nxt": self.snd_nxt,
            "segments_sent": self.segments_sent,
            "retransmits": self.retransmits,
            "rto_count": self.rto_count,
            "fast_recoveries": self.fast_recoveries,
            "srtt_ns": self.rtt.srtt_ns,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<TcpSender flow={self.flow_id} una={self.snd_una} nxt={self.snd_nxt} "
            f"pipe={self.scoreboard.pipe} cwnd={self.cca.cwnd:.1f} {self.state}>"
        )
