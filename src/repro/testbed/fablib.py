"""A FABlib-style slice builder.

The paper provisions its topology with FABRIC's FABlib Python API
("everywhere programmability": nodes, NICs and L2 networks as Python
objects, then ``slice.submit()``).  This module mirrors that workflow on
top of the simulator, so the orchestration notebook's structure carries
over almost line for line — see ``examples/fabric_notebook.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.address import IPv4Address, Subnet
from repro.net.node import Host, Router
from repro.net.topology import Network
from repro.testbed.sites import SITES, hop_one_way_delay_ns
from repro.units import gbps


@dataclass
class NicSpec:
    """A requested NIC component (e.g. ConnectX-5 at 25 Gbps)."""

    name: str
    model: str = "NIC_ConnectX_5"
    rate_bps: float = gbps(25)


@dataclass
class NodeSpec:
    """A requested VM."""

    name: str
    site: str
    cores: int = 26
    ram_gb: int = 32
    disk_gb: int = 100
    routing: bool = False
    nics: List[NicSpec] = field(default_factory=list)

    def add_component(self, model: str, name: str, rate_bps: float = gbps(25)) -> NicSpec:
        """Attach a NIC component (FABlib naming)."""
        nic = NicSpec(name=name, model=model, rate_bps=rate_bps)
        self.nics.append(nic)
        return nic


@dataclass
class NetworkServiceSpec:
    """An L2 point-to-point service between two node NICs."""

    name: str
    endpoints: Tuple[Tuple[str, str], Tuple[str, str]]  # ((node, nic), (node, nic))
    subnet: Optional[Subnet] = None


class Slice:
    """A FABRIC slice under construction."""

    def __init__(self, name: str):
        self.name = name
        self.nodes: Dict[str, NodeSpec] = {}
        self.services: List[NetworkServiceSpec] = []
        self._submitted: Optional[Network] = None

    # -- FABlib-style builder API ---------------------------------------------------

    def add_node(self, name: str, site: str, *, cores: int = 26, ram: int = 32, disk: int = 100, routing: bool = False) -> NodeSpec:
        """Request a VM at a FABRIC site."""
        if site not in SITES:
            raise ValueError(f"unknown FABRIC site {site!r}; have {sorted(SITES)}")
        if name in self.nodes:
            raise ValueError(f"duplicate node {name!r}")
        spec = NodeSpec(name=name, site=site, cores=cores, ram_gb=ram, disk_gb=disk, routing=routing)
        self.nodes[name] = spec
        return spec

    def add_l2network(self, name: str, endpoints: Tuple[Tuple[str, str], Tuple[str, str]], subnet: str) -> NetworkServiceSpec:
        """Request an L2 point-to-point service between two NICs."""
        for node_name, nic_name in endpoints:
            spec = self.nodes.get(node_name)
            if spec is None:
                raise ValueError(f"service {name!r} references unknown node {node_name!r}")
            if not any(nic.name == nic_name for nic in spec.nics):
                raise ValueError(f"node {node_name!r} has no NIC {nic_name!r}")
        service = NetworkServiceSpec(name=name, endpoints=endpoints, subnet=Subnet(subnet))
        self.services.append(service)
        return service

    # -- materialization --------------------------------------------------------------

    def submit(self, *, seed: int = 0) -> Network:
        """Instantiate the slice as a simulated network.

        Each L2 service becomes a duplex link whose propagation delay is
        the inter-site distance of its endpoints; endpoint addresses are
        assigned from the service subnet in declaration order.
        """
        if self._submitted is not None:
            raise RuntimeError(f"slice {self.name!r} was already submitted")
        net = Network(seed=seed)
        built: Dict[str, object] = {}
        for spec in self.nodes.values():
            node = net.add_router(spec.name) if spec.routing else net.add_host(spec.name)
            built[spec.name] = node
        for service in self.services:
            (n1, nic1), (n2, nic2) = service.endpoints
            spec1, spec2 = self.nodes[n1], self.nodes[n2]
            rate = min(
                next(n.rate_bps for n in spec1.nics if n.name == nic1),
                next(n.rate_bps for n in spec2.nics if n.name == nic2),
            )
            if spec1.site == spec2.site:
                delay = 0
            else:
                delay = hop_one_way_delay_ns(spec1.site, spec2.site)
            iface1 = built[n1].add_interface(nic1, service.subnet.address(1))
            iface2 = built[n2].add_interface(nic2, service.subnet.address(2))
            net.connect(iface1, iface2, rate_bps=rate, delay_ns=delay)
        self._submitted = net
        return net

    def get_network(self) -> Network:
        """The materialized network (submit() must have run)."""
        if self._submitted is None:
            raise RuntimeError("slice has not been submitted yet")
        return self._submitted


class FablibManager:
    """Entry point, as in `fablib = FablibManager()`."""

    def __init__(self) -> None:
        self.slices: Dict[str, Slice] = {}

    def new_slice(self, name: str) -> Slice:
        """Create a slice under construction."""
        if name in self.slices:
            raise ValueError(f"slice {name!r} already exists")
        sl = Slice(name)
        self.slices[name] = sl
        return sl

    def get_slice(self, name: str) -> Slice:
        """Look up a previously created slice."""
        try:
            return self.slices[name]
        except KeyError:
            raise KeyError(f"no slice named {name!r}") from None
