"""The paper's dumbbell topology (Figure 1).

Six nodes over four sites: two traffic-generating clients at Clemson, a
router in Washington, a router at NCSA, and two servers at TACC.  Five
/24 subnets, static routes on both routers, 25 Gbps NICs on the end
hosts, 100 Gbps on the router trunk — and the bottleneck (rate, AQM,
queue length) configured on router1's egress toward router2, exactly
where the paper applies `tc`.

``scale`` divides every link rate (not delays), which shrinks
BDP-in-packets proportionally across all tiers — the knob the scaled DES
presets use to keep packet-level runs tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.aqm.base import QueueDiscipline
from repro.net.address import Subnet
from repro.net.node import Host, Router
from repro.net.topology import Network
from repro.testbed.sites import hop_one_way_delay_ns
from repro.testbed.tc import TrafficControl
from repro.units import bdp_bytes, gbps

#: The paper's jumbo-frame packet size.
PAPER_MSS_BYTES = 8900
#: End-host NIC (Mellanox ConnectX-5, 25 GbE) and router trunk (ConnectX-6, 100 GbE).
NIC_RATE_BPS = gbps(25)
TRUNK_RATE_BPS = gbps(100)

SUBNETS = {
    "client1-r1": Subnet("10.0.1.0/24"),
    "client2-r1": Subnet("10.0.2.0/24"),
    "r1-r2": Subnet("10.0.3.0/24"),
    "r2-server1": Subnet("10.0.4.0/24"),
    "r2-server2": Subnet("10.0.5.0/24"),
}


@dataclass
class DumbbellConfig:
    """Everything needed to stand up one experiment topology."""

    bottleneck_bw_bps: float
    buffer_bdp: float = 2.0
    aqm: str = "fifo"
    mss_bytes: int = PAPER_MSS_BYTES
    scale: float = 1.0
    seed: int = 0
    ecn_mode: bool = False
    aqm_params: Dict[str, Any] = field(default_factory=dict)
    #: Extra propagation stretch applied to every hop (RTT ablation).
    delay_multiplier: float = 1.0
    #: Per-client stretch of the access-link delay only — gives the two
    #: sender nodes different end-to-end RTTs (RTT-unfairness ablation).
    client_delay_multipliers: Tuple[float, float] = (1.0, 1.0)
    #: Random loss on the trunk (anomaly-injection ablation).
    trunk_loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.bottleneck_bw_bps <= 0:
            raise ValueError("bottleneck bandwidth must be positive")
        if self.buffer_bdp <= 0:
            raise ValueError("buffer size (in BDP) must be positive")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.delay_multiplier <= 0:
            raise ValueError("delay multiplier must be positive")
        if len(self.client_delay_multipliers) != 2 or any(
            m <= 0 for m in self.client_delay_multipliers
        ):
            raise ValueError("client delay multipliers must be two positive factors")

    @property
    def scaled_bottleneck_bps(self) -> float:
        return self.bottleneck_bw_bps / self.scale

    @property
    def rtt_ns(self) -> int:
        base = 2 * (
            hop_one_way_delay_ns("CLEM", "WASH")
            + hop_one_way_delay_ns("WASH", "NCSA")
            + hop_one_way_delay_ns("NCSA", "TACC")
        )
        return int(base * self.delay_multiplier)

    @property
    def bdp_bytes(self) -> int:
        """BDP of the (scaled) bottleneck over the full-path RTT (paper eq. 1)."""
        return bdp_bytes(self.scaled_bottleneck_bps, self.rtt_ns)

    @property
    def buffer_bytes(self) -> int:
        return max(self.mss_bytes, int(self.buffer_bdp * self.bdp_bytes))


@dataclass
class Dumbbell:
    """The built topology plus handles the runner needs."""

    config: DumbbellConfig
    network: Network
    clients: List[Host]
    servers: List[Host]
    router1: Router
    router2: Router
    bottleneck_qdisc: QueueDiscipline
    tc: TrafficControl

    @property
    def sim(self):
        return self.network.sim

    @property
    def bottleneck_link(self):
        return self.network.links["router1->router2"]


def build_dumbbell(config: DumbbellConfig) -> Dumbbell:
    """Stand up the 6-node topology with the bottleneck configured."""
    net = Network(seed=config.seed)
    client1 = net.add_host("client1")
    client2 = net.add_host("client2")
    server1 = net.add_host("server1")
    server2 = net.add_host("server2")
    r1 = net.add_router("router1")
    r2 = net.add_router("router2")

    s = SUBNETS
    ifaces = {
        "client1": client1.add_interface("eth0", s["client1-r1"].address(1)),
        "client2": client2.add_interface("eth0", s["client2-r1"].address(1)),
        "server1": server1.add_interface("eth0", s["r2-server1"].address(1)),
        "server2": server2.add_interface("eth0", s["r2-server2"].address(1)),
        "r1-c1": r1.add_interface("eth1", s["client1-r1"].address(2)),
        "r1-c2": r1.add_interface("eth2", s["client2-r1"].address(2)),
        "r1-r2": r1.add_interface("eth0", s["r1-r2"].address(1)),
        "r2-r1": r2.add_interface("eth0", s["r1-r2"].address(2)),
        "r2-s1": r2.add_interface("eth1", s["r2-server1"].address(2)),
        "r2-s2": r2.add_interface("eth2", s["r2-server2"].address(2)),
    }

    scale = config.scale
    mult = config.delay_multiplier
    d_cw = int(hop_one_way_delay_ns("CLEM", "WASH") * mult)
    d_wn = int(hop_one_way_delay_ns("WASH", "NCSA") * mult)
    d_nt = int(hop_one_way_delay_ns("NCSA", "TACC") * mult)

    # Access links: client NICs into router1 (per-client delay stretch
    # implements the RTT-unfairness ablation).
    m1, m2 = config.client_delay_multipliers
    net.connect(ifaces["client1"], ifaces["r1-c1"], rate_bps=NIC_RATE_BPS / scale,
                delay_ns=int(d_cw * m1))
    net.connect(ifaces["client2"], ifaces["r1-c2"], rate_bps=NIC_RATE_BPS / scale,
                delay_ns=int(d_cw * m2))
    # The trunk: shaped to the bottleneck rate in the data direction,
    # full 100G on the (ACK) return path.
    net.connect(
        ifaces["r1-r2"],
        ifaces["r2-r1"],
        rate_bps=config.scaled_bottleneck_bps,
        rate_ba_bps=TRUNK_RATE_BPS / scale,
        delay_ns=d_wn,
        loss_rate=config.trunk_loss_rate,
    )
    # Server side.
    net.connect(ifaces["r2-s1"], ifaces["server1"], rate_bps=NIC_RATE_BPS / scale, delay_ns=d_nt)
    net.connect(ifaces["r2-s2"], ifaces["server2"], rate_bps=NIC_RATE_BPS / scale, delay_ns=d_nt)

    # Static routes ("from and to all subnets").
    r1.add_route(s["client1-r1"], ifaces["r1-c1"])
    r1.add_route(s["client2-r1"], ifaces["r1-c2"])
    r1.add_route(s["r2-server1"], ifaces["r1-r2"])
    r1.add_route(s["r2-server2"], ifaces["r1-r2"])
    r1.add_route(s["r1-r2"], ifaces["r1-r2"])
    r2.add_route(s["r2-server1"], ifaces["r2-s1"])
    r2.add_route(s["r2-server2"], ifaces["r2-s2"])
    r2.add_route(s["client1-r1"], ifaces["r2-r1"])
    r2.add_route(s["client2-r1"], ifaces["r2-r1"])
    r2.add_route(s["r1-r2"], ifaces["r2-r1"])

    # Bottleneck AQM on router1's egress toward router2 (where the paper
    # applies `tc`).
    tc = TrafficControl(rng=net.rng.stream("aqm"))
    tc.qdisc_replace(
        ifaces["r1-r2"],
        config.aqm,
        limit_bytes=config.buffer_bytes,
        mtu_bytes=config.mss_bytes,
        ecn_mode=config.ecn_mode,
        **config.aqm_params,
    )

    return Dumbbell(
        config=config,
        network=net,
        clients=[client1, client2],
        servers=[server1, server2],
        router1=r1,
        router2=r2,
        bottleneck_qdisc=ifaces["r1-r2"].qdisc,
        tc=tc,
    )
