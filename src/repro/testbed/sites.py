"""FABRIC site metadata for the paper's topology.

The experiment spans four FABRIC sites — Clemson (CLEM), Washington
(WASH), NCSA, and TACC — with a measured end-to-end RTT of ~62 ms.  The
per-hop one-way delays below are chosen to sum to 31 ms one-way over the
CLEM->WASH->NCSA->TACC path while roughly matching geography; the
end-to-end RTT (the only quantity the paper reports) is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.units import microseconds


@dataclass(frozen=True)
class Site:
    """One FABRIC site."""

    code: str
    name: str


SITES: Dict[str, Site] = {
    "CLEM": Site("CLEM", "Clemson University"),
    "WASH": Site("WASH", "Washington DC"),
    "NCSA": Site("NCSA", "National Center for Supercomputing Applications"),
    "TACC": Site("TACC", "Texas Advanced Computing Center"),
}

# One-way propagation delay per adjacent hop (ns).  Sums to 31 ms.
HOP_DELAYS_NS: Dict[Tuple[str, str], int] = {
    ("CLEM", "WASH"): microseconds(7_000),
    ("WASH", "NCSA"): microseconds(9_000),
    ("NCSA", "TACC"): microseconds(15_000),
}
# Symmetric.
HOP_DELAYS_NS.update({(b, a): d for (a, b), d in list(HOP_DELAYS_NS.items())})


def hop_one_way_delay_ns(a: str, b: str) -> int:
    """One-way delay of the direct hop a<->b."""
    try:
        return HOP_DELAYS_NS[(a, b)]
    except KeyError:
        raise ValueError(f"no direct hop between {a} and {b}") from None


def path_one_way_delay_ns(path: Sequence[str]) -> int:
    """One-way delay along a multi-hop site path."""
    return sum(hop_one_way_delay_ns(a, b) for a, b in zip(path, path[1:]))


#: The paper's path and its end-to-end RTT (~62 ms).
PAPER_PATH = ("CLEM", "WASH", "NCSA", "TACC")
PAPER_RTT_NS = 2 * path_one_way_delay_ns(PAPER_PATH)
