"""`tc`-style traffic-control facade.

The paper configures the bottleneck with the Linux Traffic Control tool:
AQM type, queue length, and transmission rate on router1's interface
toward router2.  :class:`TrafficControl` mirrors that workflow against a
simulated interface: ``qdisc_replace`` swaps the queue discipline and
records the textual command an operator would have run (handy in logs and
tests).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.aqm.registry import make_aqm
from repro.net.interface import Interface
from repro.units import format_rate


class TrafficControl:
    """Apply qdisc configurations to simulated interfaces, tc-style."""

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self.rng = rng
        self.history: List[str] = []

    def qdisc_replace(
        self,
        iface: Interface,
        aqm: str,
        *,
        limit_bytes: int,
        mtu_bytes: int = 1500,
        ecn_mode: bool = False,
        **aqm_params,
    ) -> None:
        """The `tc qdisc replace dev <iface> root <aqm> ...` analogue."""
        bandwidth = iface.link.rate_bps if iface.link is not None else None
        qdisc = make_aqm(
            aqm,
            limit_bytes,
            rng=self.rng,
            mtu_bytes=mtu_bytes,
            bandwidth_bps=bandwidth,
            ecn_mode=ecn_mode,
            **aqm_params,
        )
        iface.set_qdisc(qdisc)
        rate = format_rate(bandwidth) if bandwidth else "?"
        self.history.append(
            f"tc qdisc replace dev {iface.node.name}:{iface.name} root "
            f"{aqm} limit {limit_bytes}b  # link rate {rate}"
        )
