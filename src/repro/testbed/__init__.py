"""FABRIC-testbed facade: sites, the paper's dumbbell, tc-style config."""

from repro.testbed.dumbbell import Dumbbell, DumbbellConfig, build_dumbbell
from repro.testbed.fablib import FablibManager, Slice
from repro.testbed.sites import SITES, Site, path_one_way_delay_ns
from repro.testbed.tc import TrafficControl

__all__ = [
    "Site",
    "SITES",
    "path_one_way_delay_ns",
    "Dumbbell",
    "DumbbellConfig",
    "build_dumbbell",
    "TrafficControl",
    "FablibManager",
    "Slice",
]
