"""Network anomaly injection.

The paper's future work includes observing "performance under network
anomalies (e.g. variable rates of packet loss)".  This module schedules
time-varying impairments on simulated links:

- :class:`LossSchedule` — step changes to a link's random loss rate
  (e.g. a 1 % loss episode between t=30 s and t=60 s);
- :class:`RateSchedule` — step changes to a link's rate (e.g. a capacity
  degradation when a LAG member fails).

Both mutate live :class:`~repro.net.link.Link` parameters at their
scheduled instants; packets already serialized are unaffected, exactly
as with a real `tc netem`/`tc tbf` change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.net.link import Link
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class Step:
    """One scheduled change: at ``time_ns``, apply ``value``."""

    time_ns: int
    value: float


def _validate_steps(steps: Sequence[Step]) -> List[Step]:
    ordered = sorted(steps, key=lambda s: s.time_ns)
    for step in ordered:
        if step.time_ns < 0:
            raise ValueError(f"step time must be >= 0, got {step.time_ns}")
    return ordered


class LossSchedule:
    """Drive a link's random loss rate through scheduled episodes."""

    def __init__(self, sim: Simulator, link: Link, steps: Sequence[Step], rng: Optional[np.random.Generator] = None):
        for step in steps:
            if not 0.0 <= step.value < 1.0:
                raise ValueError(f"loss rate must be in [0, 1), got {step.value}")
        self.sim = sim
        self.link = link
        self.steps = _validate_steps(steps)
        self.applied: List[Tuple[int, float]] = []
        if rng is not None and link._loss_rng is None:
            link._loss_rng = rng
        if any(s.value > 0 for s in self.steps) and link._loss_rng is None:
            raise ValueError("link has no loss RNG; pass rng=...")
        for step in self.steps:
            sim.schedule_at(max(step.time_ns, sim.now), self._apply, step.value)

    def _apply(self, loss_rate: float) -> None:
        # set_loss_rate re-validates the [0, 1) bound at fire time — the
        # one sanctioned mutation path (see repro.net.link.Link).
        self.link.set_loss_rate(loss_rate)
        self.applied.append((self.sim.now, loss_rate))


class RateSchedule:
    """Drive a link's rate through scheduled capacity changes."""

    def __init__(self, sim: Simulator, link: Link, steps: Sequence[Step]):
        for step in steps:
            if step.value <= 0:
                raise ValueError(f"rate must be positive, got {step.value}")
        self.sim = sim
        self.link = link
        self.steps = _validate_steps(steps)
        self.applied: List[Tuple[int, float]] = []
        for step in self.steps:
            sim.schedule_at(max(step.time_ns, sim.now), self._apply, step.value)

    def _apply(self, rate_bps: float) -> None:
        # set_rate invalidates the memoized serialization delays; bare
        # assignment would keep serializing at the old rate.
        self.link.set_rate(rate_bps)
        self.applied.append((self.sim.now, rate_bps))


def loss_episode(
    sim: Simulator,
    link: Link,
    *,
    start_ns: int,
    end_ns: int,
    loss_rate: float,
    rng: Optional[np.random.Generator] = None,
) -> LossSchedule:
    """Convenience: one loss episode of ``loss_rate`` over [start, end)."""
    if end_ns <= start_ns:
        raise ValueError("episode end must come after its start")
    return LossSchedule(
        sim,
        link,
        [Step(start_ns, loss_rate), Step(end_ns, 0.0)],
        rng=rng,
    )
