"""Fluid-model engine.

A per-RTT difference-equation integrator over flow send rates and the
bottleneck queue.  It applies the same congestion-control decision rules
(slow start, CUBIC curve, HTCP alpha/beta, BBR state machines with the
2xBDP inflight cap and BBRv2's 2 % loss threshold) and the same AQM drop
laws (tail drop, RED's EWMA ramp, FQ_CoDel's per-flow CoDel) as the
packet engine, but at mean-field granularity — which makes the paper's
10/25 Gbps tiers (tens of millions of packets per run) tractable in pure
Python/NumPy.

Cross-validated against the packet engine on the low-bandwidth tiers in
``tests/integration/test_engine_agreement.py``.
"""

from repro.fluid.batched import BatchedFluidSimulation, run_fluid_batch, run_fluid_single
from repro.fluid.model import FluidSimulation
from repro.fluid.runner import run_fluid_experiment
from repro.fluid.state import plan_shards, shard_key

__all__ = [
    "BatchedFluidSimulation",
    "FluidSimulation",
    "plan_shards",
    "run_fluid_batch",
    "run_fluid_experiment",
    "run_fluid_single",
    "shard_key",
]
