"""Shared stochastic machinery for the scalar and batched fluid paths.

Both fluid backends draw their packet-level randomness — Poisson burst
arrivals and the RED/PIE drop lotteries — from **positionally consumed
uniform tables**: each simulation step consumes exactly one uniform per
flow from a per-config stream, whether or not the value ends up used.
The uniform is turned into a Poisson variate by the inverse-CDF
transform in :func:`poisson_from_uniform`.

This layout is what makes the batched backend bit-for-bit reproducible
against the scalar oracle *and* independent of batch composition: a
config's uniform sequence depends only on its own seed and the step
index, never on which other configs share the batch, how wide the batch
is, or how the table is chunked in memory.

Bitwise ground rules (verified on this numpy build, enforced by the
cross-validation suite):

- ``+ - * /`` and comparisons are IEEE-exact and therefore identical
  between python floats and numpy element-wise ops;
- ``np.exp/np.log/np.sqrt/np.cbrt/np.power`` are positionally
  consistent between scalar and array calls;
- python ``**`` is NOT bit-identical to numpy array ``**`` — neither
  path may use it where cross-path equality matters.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

#: Above this rate the inverse-CDF counting loop is replaced by the
#: normal approximation (both paths, so they stay bit-identical).  Real
#: per-flow-per-step burst rates sit around 1-10; only the unmodelled
#: BBR cwnd-doubling transient ever exceeds this.
LAM_SWITCH = 32.0

#: Hard cap on the counting loop, shared by both implementations so a
#: pathological ``u`` ~ 1 resolves to the same value everywhere.
MAX_K = 1024.0

_SMALL_N = 16

# Acklam's rational approximation of the inverse normal CDF.
_A = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
      1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
_B = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
      6.680131188771972e+01, -1.328068155288572e+01)
_C = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
      -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
_D = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
      3.754408661907416e+00)
_P_LOW = 0.02425


def norm_ppf(u: np.ndarray) -> np.ndarray:
    """Inverse standard-normal CDF (Acklam), numpy ops only."""
    u = np.asarray(u, dtype=np.float64)
    q = u - 0.5
    r = q * q
    central = (
        (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5]) * q
        / (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1.0)
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        ul = np.where(u > 0.0, u, 1.0)
        ql = np.sqrt(-2.0 * np.log(ul))
        low = (
            ((((_C[0] * ql + _C[1]) * ql + _C[2]) * ql + _C[3]) * ql + _C[4]) * ql + _C[5]
        ) / ((((_D[0] * ql + _D[1]) * ql + _D[2]) * ql + _D[3]) * ql + 1.0)
        uh = 1.0 - u
        uhg = np.where(uh > 0.0, uh, 1.0)
        qh = np.sqrt(-2.0 * np.log(uhg))
        high = -(
            ((((_C[0] * qh + _C[1]) * qh + _C[2]) * qh + _C[3]) * qh + _C[4]) * qh + _C[5]
        ) / ((((_D[0] * qh + _D[1]) * qh + _D[2]) * qh + _D[3]) * qh + 1.0)
    out = np.where(u < _P_LOW, low, np.where(u > 1.0 - _P_LOW, high, central))
    return np.where(u <= 0.0, -np.inf, out)


def _count_loop(lam: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Vectorized inverse-CDF Poisson for ``lam <= LAM_SWITCH``."""
    p = np.exp(-lam)
    cum = p.copy()
    k = np.zeros(lam.shape)
    kk = 0.0
    # Dense phase: full-array updates while most lanes are still counting.
    while kk < MAX_K:
        active = u >= cum
        n_act = np.count_nonzero(active)
        if n_act == 0:
            return k
        if n_act * 4 < active.size:
            break
        k += active
        kk += 1.0
        p *= lam / kk
        cum += p
    # Sparse tail: most lanes converged; finish the stragglers compacted.
    # Each lane sees the identical p/cum/k update sequence it would in the
    # dense loop, so results stay bit-for-bit the same.
    kf = k.ravel()
    idx = np.nonzero((u >= cum).ravel())[0]
    if idx.size == 0:
        return k
    lam_a = lam.ravel()[idx]
    u_a = u.ravel()[idx]
    p_a = p.ravel()[idx]
    cum_a = cum.ravel()[idx]
    k_a = kf[idx]
    while idx.size and kk < MAX_K:
        k_a += 1.0
        kk += 1.0
        p_a *= lam_a / kk
        cum_a += p_a
        still = u_a >= cum_a
        if not still.all():
            done = ~still
            kf[idx[done]] = k_a[done]
            idx = idx[still]
            lam_a = lam_a[still]
            u_a = u_a[still]
            p_a = p_a[still]
            cum_a = cum_a[still]
            k_a = k_a[still]
    if idx.size:
        kf[idx] = k_a
    return k


def _poisson_big(lam: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Normal approximation for the rare huge-rate lanes."""
    z = norm_ppf(u)
    return np.maximum(0.0, np.floor(lam + np.sqrt(lam) * z))


def _poisson_vector(lam: np.ndarray, u: np.ndarray) -> np.ndarray:
    lam_f = lam.ravel()
    u_f = u.ravel()
    bi = np.nonzero(lam_f > LAM_SWITCH)[0]
    if bi.size:
        # Big lanes are rare (BBR slow-start transients).  Run the count
        # loop on the full array with those lanes zeroed — lam == 0 makes
        # them retire on the first compare, and per-lane sequences do not
        # depend on array composition — then overwrite them with the
        # normal approximation.  This avoids gathering the ~full-size
        # small-lane complement through a boolean mask every step.
        lam_z = lam_f.copy()
        lam_z[bi] = 0.0
        out = _count_loop(lam_z, u_f)
        out[bi] = _poisson_big(lam_f[bi], u_f[bi])
        return out.reshape(lam.shape)
    return _count_loop(lam_f, u_f).reshape(lam.shape)


def _poisson_small(lam: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Per-element python loop — bit-identical to :func:`_poisson_vector`.

    The loop body uses only exact IEEE ops (``* / + >=``); the two
    transcendental seeds (``exp``, and ``norm_ppf`` for big lanes) go
    through the same numpy kernels the vector path uses.
    """
    p0 = np.exp(-lam)
    fl, fu, fp = lam.ravel(), u.ravel(), p0.ravel()
    out = np.empty(lam.size)
    for i in range(lam.size):
        l = float(fl[i])
        if l > LAM_SWITCH:
            out[i] = float(_poisson_big(fl[i : i + 1], fu[i : i + 1])[0])
            continue
        uu = float(fu[i])
        p = float(fp[i])
        cum = p
        k = 0.0
        while uu >= cum and k < MAX_K:
            k += 1.0
            p *= l / k
            cum += p
        out[i] = k
    return out.reshape(lam.shape)


def poisson_from_uniform(lam, u) -> np.ndarray:
    """Map uniforms in [0, 1) to Poisson(lam) variates, elementwise.

    Exact inverse-CDF for ``lam <= LAM_SWITCH``; a floor-of-normal
    approximation above (consistently in both fluid paths, which is
    what matters — the transform defines the model).  ``lam == 0``
    maps to 0 without consuming anything but the positional uniform.
    """
    lam = np.asarray(lam, dtype=np.float64)
    u = np.asarray(u, dtype=np.float64)
    if lam.size <= _SMALL_N:
        return _poisson_small(lam, u)
    return _poisson_vector(lam, u)


class UniformTable:
    """Chunked per-step uniform rows for one config.

    ``next_row()`` returns the ``(width,)`` row for the current step and
    advances.  Values at (step, flow) depend only on the generator's
    seed — the chunk size is a pure performance knob: refilling in
    blocks of ``chunk`` steps yields the same row-major sequence as any
    other chunking.
    """

    def __init__(self, rng: np.random.Generator, width: int, chunk_steps: int = 512):
        if width <= 0 or chunk_steps <= 0:
            raise ValueError("width and chunk_steps must be positive")
        self.rng = rng
        self.width = width
        self.chunk = chunk_steps
        self._buf: Optional[np.ndarray] = None
        self._i = chunk_steps

    def next_row(self) -> np.ndarray:
        """The next step's ``(width,)`` row of uniforms, in table order."""
        if self._i >= self.chunk:
            self._buf = self.rng.random((self.chunk, self.width))
            self._i = 0
        row = self._buf[self._i]
        self._i += 1
        return row


class BatchUniformTable:
    """Stacked uniform tables for a shard of configs.

    Lane ``c`` of the ``(n_configs, width)`` block returned by
    :meth:`next_block` is filled from config ``c``'s own generator over
    its own real flow count — bitwise the same rows
    :class:`UniformTable` would hand the scalar path.  Padded columns
    stay 0.0 and are only ever consumed against ``lam == 0``.
    """

    def __init__(
        self,
        rngs: Sequence[np.random.Generator],
        widths: Sequence[int],
        pad_width: int,
        chunk_steps: int = 128,
    ):
        self.rngs: List[np.random.Generator] = list(rngs)
        self.widths = [int(w) for w in widths]
        if any(w <= 0 or w > pad_width for w in self.widths):
            raise ValueError("flow widths must be in [1, pad_width]")
        self.pad_width = int(pad_width)
        self.chunk = int(chunk_steps)
        self._buf = np.zeros((len(self.rngs), self.chunk, self.pad_width))
        self._i = self.chunk

    def next_block(self) -> np.ndarray:
        """The next step's ``(n_configs, pad_width)`` block of uniforms."""
        if self._i >= self.chunk:
            for c, (rng, w) in enumerate(zip(self.rngs, self.widths)):
                self._buf[c, :, :w] = rng.random((self.chunk, w))
            self._i = 0
        block = self._buf[:, self._i, :]
        self._i += 1
        return block
