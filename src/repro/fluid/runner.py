"""Run an :class:`~repro.experiments.config.ExperimentConfig` on the fluid engine.

Produces the same :class:`~repro.metrics.summary.ExperimentResult` record
as the packet runner, so the analysis layer is engine-agnostic.

The geometry/flow/result helpers here are shared with the batched
backend (:mod:`repro.fluid.batched`), which must assemble bit-identical
inputs and outputs for every config in a shard.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.fluid.aqm_rules import make_fluid_aqm
from repro.fluid.cca_rules import FLUID_CCAS, FluidCca, make_fluid_cca
from repro.fluid.model import FluidSimulation
from repro.metrics.fairness import jain_index
from repro.metrics.summary import ExperimentResult, FlowStats, SenderStats
from repro.metrics.utilization import link_utilization
from repro.sim.rng import RngStreams
from repro.testbed.sites import PAPER_RTT_NS
from repro.units import bdp_bytes


@dataclass(frozen=True)
class FluidGeometry:
    """Bottleneck numbers both fluid backends derive from a config."""

    base_rtt_s: float
    capacity_bps: float
    capacity_pps: float
    limit_pkts: float
    n_flows: int

    @property
    def node_of(self) -> np.ndarray:
        return np.repeat([0, 1], self.n_flows // 2)


def fluid_geometry(config: ExperimentConfig) -> FluidGeometry:
    """Compute the bottleneck geometry (same numbers the dumbbell builder uses)."""
    rtt_ns = int(PAPER_RTT_NS * config.delay_multiplier)
    capacity_bps = config.bottleneck_bw_bps / config.scale
    bdp_b = bdp_bytes(capacity_bps, rtt_ns)
    return FluidGeometry(
        base_rtt_s=rtt_ns / 1e9,
        capacity_bps=capacity_bps,
        capacity_pps=capacity_bps / (8 * config.mss_bytes),
        limit_pkts=max(1.0, config.buffer_bdp * bdp_b / config.mss_bytes),
        n_flows=2 * config.plan.flows_per_node,
    )


def flow_cca_names(config: ExperimentConfig, n_flows: int) -> List[str]:
    """Per-flow CCA name (first half node 1, second half node 2)."""
    per_node = n_flows // 2
    return [config.cca_pair[0]] * per_node + [config.cca_pair[1]] * per_node


def make_fluid_flows(config: ExperimentConfig, rngs: RngStreams, n_flows: int) -> List[FluidCca]:
    """Instantiate per-flow rule objects with per-flow RNG streams.

    Only rate-based (BBR-family) rules draw randomness, and each gets
    its **own** named stream — so a flow's draw sequence depends only on
    the config seed and its flow index, never on what other flows did.
    That is what lets the batched backend interleave round updates from
    many configs and still reproduce the scalar oracle bit-for-bit.
    """
    from repro.cca.registry import canonical_cca_name

    flows: List[FluidCca] = []
    for i, name in enumerate(flow_cca_names(config, n_flows)):
        cls = FLUID_CCAS[canonical_cca_name(name)]
        rng = rngs.stream(f"cca-flow{i}") if cls.rate_based else None
        flows.append(make_fluid_cca(name, rng))
    return flows


def flow_start_times(rngs: RngStreams, n_flows: int) -> np.ndarray:
    """Staggered flow start times from the config's flow-start stream."""
    return rngs.stream("flow-start").uniform(0.0, 0.1, size=n_flows)


def build_fluid_result(
    config: ExperimentConfig,
    geom: FluidGeometry,
    *,
    delivered_window: np.ndarray,
    delivered_total: np.ndarray,
    dropped_total: np.ndarray,
    aqm_dropped: float,
    engine: str,
    wallclock_s: float,
    fairness: Optional[Dict[str, Any]] = None,
) -> ExperimentResult:
    """Assemble the ExperimentResult record (shared by both fluid backends)."""
    measured_s = config.duration_s - config.warmup_s
    thr_pps = delivered_window / measured_s
    thr_bps = thr_pps * 8 * config.mss_bytes
    retx = dropped_total  # every dropped segment is retransmitted once
    node_of = geom.node_of

    # List-form per-flow fields (identical values; avoids per-element
    # numpy scalar indexing, which dominates wide-shard result assembly).
    node_list = node_of.tolist()
    thr_list = thr_bps.tolist()
    bytes_list = (delivered_window * config.mss_bytes).tolist()
    seg_list = (delivered_total + dropped_total).tolist()
    retx_list = retx.tolist()

    flow_stats: List[FlowStats] = []
    senders: List[SenderStats] = []
    for node_idx in range(2):
        mask = node_of == node_idx
        node_name = f"client{node_idx + 1}"
        cca_name = config.cca_pair[node_idx]
        for i, nd in enumerate(node_list):
            if nd != node_idx:
                continue
            flow_stats.append(
                FlowStats(
                    flow_id=i,
                    sender_node=node_name,
                    cca=cca_name,
                    throughput_bps=thr_list[i],
                    bytes_received=int(bytes_list[i]),
                    segments_sent=int(seg_list[i]),
                    retransmits=int(round(retx_list[i])),
                    rto_count=0,
                    fast_recoveries=0,
                )
            )
        senders.append(
            SenderStats(
                node=node_name,
                cca=cca_name,
                throughput_bps=float(thr_bps[mask].sum()),
                retransmits=int(round(retx[mask].sum())),
                flows=int(mask.sum()),
            )
        )

    throughputs = [s.throughput_bps for s in senders]
    extra = {"flow_jain_index": jain_index([f.throughput_bps for f in flow_stats])}
    if fairness is not None:
        extra["fairness"] = fairness
    return ExperimentResult(
        config=config.to_dict(),
        senders=senders,
        flows=flow_stats,
        jain_index=jain_index(throughputs),
        link_utilization=link_utilization(throughputs, geom.capacity_bps),
        total_retransmits=sum(s.retransmits for s in senders),
        total_throughput_bps=sum(throughputs),
        bottleneck_drops=int(round(aqm_dropped)),
        duration_s=measured_s,
        engine=engine,
        events_processed=0,
        wallclock_s=wallclock_s,
        extra=extra,
    )


def run_fluid_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Execute one configuration on the (scalar) fluid engine."""
    wall_start = time.perf_counter()
    rngs = RngStreams(config.seed)
    geom = fluid_geometry(config)

    flows = make_fluid_flows(config, rngs, geom.n_flows)
    starts = flow_start_times(rngs, geom.n_flows)
    aqm = make_fluid_aqm(
        config.aqm,
        geom.limit_pkts,
        geom.capacity_pps,
        geom.n_flows,
        rng=rngs.stream("aqm"),
        **config.aqm_params,
    )
    sim = FluidSimulation(
        capacity_pps=geom.capacity_pps,
        base_rtt_s=geom.base_rtt_s,
        aqm=aqm,
        flows=flows,
        start_times_s=starts,
        arrival_rng=rngs.stream("arrivals"),
    )
    probe = None
    if config.fairness_interval_s:
        from repro.obs.fairness import attach_fluid_fairness

        probe = attach_fluid_fairness(sim, geom, config)
    if config.warmup_s > 0:
        sim.run(config.warmup_s)
        sim.begin_measurement()
        sim.run(config.duration_s - config.warmup_s)
    else:
        sim.begin_measurement()
        sim.run(config.duration_s)

    return build_fluid_result(
        config,
        geom,
        delivered_window=sim.measured_delivered,
        delivered_total=sim.delivered_total,
        dropped_total=sim.dropped_total,
        aqm_dropped=aqm.total_dropped,
        engine="fluid",
        wallclock_s=time.perf_counter() - wall_start,
        fairness=probe.to_dict() if probe is not None else None,
    )
