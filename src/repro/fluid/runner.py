"""Run an :class:`~repro.experiments.config.ExperimentConfig` on the fluid engine.

Produces the same :class:`~repro.metrics.summary.ExperimentResult` record
as the packet runner, so the analysis layer is engine-agnostic.
"""

from __future__ import annotations

import time
from typing import List

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.fluid.aqm_rules import make_fluid_aqm
from repro.fluid.cca_rules import make_fluid_cca
from repro.fluid.model import FluidSimulation
from repro.metrics.fairness import jain_index
from repro.metrics.summary import ExperimentResult, FlowStats, SenderStats
from repro.metrics.utilization import link_utilization
from repro.sim.rng import RngStreams
from repro.testbed.sites import PAPER_RTT_NS
from repro.units import bdp_bytes


def run_fluid_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Execute one configuration on the fluid engine."""
    wall_start = time.perf_counter()
    rngs = RngStreams(config.seed)

    # Geometry (same numbers the dumbbell builder computes).
    rtt_ns = int(PAPER_RTT_NS * config.delay_multiplier)
    base_rtt_s = rtt_ns / 1e9
    capacity_bps = config.bottleneck_bw_bps / config.scale
    capacity_pps = capacity_bps / (8 * config.mss_bytes)
    bdp_b = bdp_bytes(capacity_bps, rtt_ns)
    limit_pkts = max(1.0, config.buffer_bdp * bdp_b / config.mss_bytes)

    plan = config.plan
    per_node = plan.flows_per_node
    n_flows = 2 * per_node
    node_of = np.repeat([0, 1], per_node)

    cca_rng = rngs.stream("cca")
    flows = [
        make_fluid_cca(config.cca_pair[node_of[i]], cca_rng) for i in range(n_flows)
    ]
    start_rng = rngs.stream("flow-start")
    starts = start_rng.uniform(0.0, 0.1, size=n_flows)

    aqm = make_fluid_aqm(
        config.aqm,
        limit_pkts,
        capacity_pps,
        n_flows,
        rng=rngs.stream("aqm"),
        **config.aqm_params,
    )
    sim = FluidSimulation(
        capacity_pps=capacity_pps,
        base_rtt_s=base_rtt_s,
        aqm=aqm,
        flows=flows,
        start_times_s=starts,
        arrival_rng=rngs.stream("arrivals"),
    )
    if config.warmup_s > 0:
        sim.run(config.warmup_s)
        warmup_delivered = sim.delivered_total.copy()
        sim.run(config.duration_s - config.warmup_s)
    else:
        warmup_delivered = np.zeros(n_flows)
        sim.run(config.duration_s)

    measured_s = config.duration_s - config.warmup_s
    delivered_window = sim.delivered_total - warmup_delivered
    thr_pps = delivered_window / measured_s
    thr_bps = thr_pps * 8 * config.mss_bytes
    retx = sim.dropped_total  # every dropped segment is retransmitted once

    flow_stats: List[FlowStats] = []
    senders: List[SenderStats] = []
    for node_idx in range(2):
        mask = node_of == node_idx
        node_name = f"client{node_idx + 1}"
        cca_name = config.cca_pair[node_idx]
        for i in np.nonzero(mask)[0]:
            flow_stats.append(
                FlowStats(
                    flow_id=int(i),
                    sender_node=node_name,
                    cca=cca_name,
                    throughput_bps=float(thr_bps[i]),
                    bytes_received=int(delivered_window[i] * config.mss_bytes),
                    segments_sent=int(sim.delivered_total[i] + sim.dropped_total[i]),
                    retransmits=int(round(retx[i])),
                    rto_count=0,
                    fast_recoveries=0,
                )
            )
        senders.append(
            SenderStats(
                node=node_name,
                cca=cca_name,
                throughput_bps=float(thr_bps[mask].sum()),
                retransmits=int(round(retx[mask].sum())),
                flows=int(mask.sum()),
            )
        )

    throughputs = [s.throughput_bps for s in senders]
    extra = {"flow_jain_index": jain_index([f.throughput_bps for f in flow_stats])}
    return ExperimentResult(
        config=config.to_dict(),
        senders=senders,
        flows=flow_stats,
        jain_index=jain_index(throughputs),
        link_utilization=link_utilization(throughputs, capacity_bps),
        total_retransmits=sum(s.retransmits for s in senders),
        total_throughput_bps=sum(throughputs),
        bottleneck_drops=int(round(aqm.total_dropped)),
        duration_s=measured_s,
        engine="fluid",
        events_processed=0,
        wallclock_s=time.perf_counter() - wall_start,
        extra=extra,
    )
