"""AQM drop laws for the fluid engine.

Each discipline advances one integration step at a time: it takes the
per-flow arrival vector (packets, may be fractional), applies its drop
law, serves up to ``capacity * dt`` packets, and returns what each flow
had delivered and dropped.  Backlogs are per-flow even for the shared
FIFO/RED queue (processor-sharing approximation of FIFO order, the
standard fluid treatment), which is what lets a buffer-filling CUBIC
crowd out an inflight-capped BBR exactly as in the paper.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def waterfill(supply: np.ndarray, cap: float) -> np.ndarray:
    """Max-min fair allocation of ``cap`` across ``supply`` demands."""
    total = float(supply.sum())
    if total <= cap:
        return supply.copy()
    order = np.sort(supply)
    n = len(order)
    csum = np.concatenate(([0.0], np.cumsum(order)))
    remaining = n - np.arange(n)
    theta = (cap - csum[:-1]) / remaining
    ok = theta <= order
    if not ok.any():
        theta_star = theta[-1]
    else:
        theta_star = theta[np.argmax(ok)]
    return np.minimum(supply, theta_star)


class FluidAqm:
    """Base: byte/packet accounting shared by all disciplines."""

    def __init__(self, limit_pkts: float, capacity_pps: float, n_flows: int):
        if limit_pkts <= 0 or capacity_pps <= 0 or n_flows <= 0:
            raise ValueError("limit, capacity, and flow count must be positive")
        self.limit = float(limit_pkts)
        self.capacity = float(capacity_pps)
        self.n = n_flows
        self.backlog = np.zeros(n_flows)
        self.total_dropped = 0.0

    def step(self, arrivals: np.ndarray, dt: float, now_s: float) -> Tuple[np.ndarray, np.ndarray]:
        """Advance one dt: returns (delivered, dropped) per flow."""
        raise NotImplementedError

    def flow_delay_s(self) -> np.ndarray:
        """Queueing delay currently experienced by each flow's packets."""
        raise NotImplementedError

    # -- shared single-queue service -----------------------------------------------

    def _serve_shared(self, accepted: np.ndarray, dt: float) -> Tuple[np.ndarray, np.ndarray]:
        """Processor-sharing service + tail drop to the shared limit."""
        supply = self.backlog + accepted
        total = float(supply.sum())
        serve = min(total, self.capacity * dt)
        served = supply * (serve / total) if total > 0 else np.zeros(self.n)
        backlog = supply - served
        excess = float(backlog.sum()) - self.limit
        tail_drops = np.zeros(self.n)
        if excess > 1e-12:
            # Tail drop hits the newest arrivals, proportionally.
            weights = np.minimum(accepted, backlog)
            wsum = float(weights.sum())
            if wsum > 0:
                tail_drops = np.minimum(backlog, excess * weights / wsum)
            else:
                tail_drops = backlog * (excess / float(backlog.sum()))
            backlog = backlog - tail_drops
        self.backlog = backlog
        self.total_dropped += float(tail_drops.sum())
        return served, tail_drops


class FluidFifo(FluidAqm):
    """Drop-tail: no early drops; overflow is tail-dropped."""

    def step(self, arrivals: np.ndarray, dt: float, now_s: float) -> Tuple[np.ndarray, np.ndarray]:
        return self._serve_shared(arrivals, dt)

    def flow_delay_s(self) -> np.ndarray:
        delay = float(self.backlog.sum()) / self.capacity
        return np.full(self.n, delay)


class FluidRed(FluidAqm):
    """RED's EWMA ramp applied to (Poisson-sampled) early drops."""

    def __init__(
        self,
        limit_pkts: float,
        capacity_pps: float,
        n_flows: int,
        rng: np.random.Generator,
        *,
        min_th: Optional[float] = None,
        max_th: Optional[float] = None,
        max_p: float = 0.02,
        weight: float = 0.002,
        gentle: bool = True,
    ):
        super().__init__(limit_pkts, capacity_pps, n_flows)
        self.rng = rng
        # Fixed classic-tc thresholds (30/90 packets), clamped to the buffer
        # — matching repro.aqm.red.RedQueue (see the note there).
        if min_th is not None:
            self.min_th = float(min_th)
        else:
            self.min_th = max(1.0, min(30.0, limit_pkts / 3.0))
        if max_th is not None:
            self.max_th = float(max_th)
        else:
            self.max_th = max(self.min_th + 1.0, min(90.0, limit_pkts * 0.75))
        self.max_p = max_p
        self.weight = weight
        self.gentle = gentle
        self.avg = 0.0

    def _drop_probability(self) -> float:
        if self.avg < self.min_th:
            return 0.0
        if self.avg < self.max_th:
            return self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th)
        if self.gentle and self.avg < 2 * self.max_th:
            return self.max_p + (1 - self.max_p) * (self.avg - self.max_th) / self.max_th
        return 1.0

    def step(self, arrivals: np.ndarray, dt: float, now_s: float) -> Tuple[np.ndarray, np.ndarray]:
        n_arr = float(arrivals.sum())
        # Per-packet EWMA folded over this step's arrivals.
        if n_arr > 0:
            w_eff = 1.0 - (1.0 - self.weight) ** n_arr
            self.avg += w_eff * (float(self.backlog.sum()) - self.avg)
        else:
            # Idle decay toward the (empty) instantaneous queue.
            decay = 1.0 - (1.0 - self.weight) ** (self.capacity * dt)
            self.avg += decay * (float(self.backlog.sum()) - self.avg)
        p = self._drop_probability()
        if p > 0:
            # Floyd/Jacobson count-uniformization spaces drops uniformly over
            # [1, 1/p_b] packets, i.e. an effective rate of ~2*p_b.
            p_eff = min(1.0, 2.0 * p)
            early = np.minimum(arrivals, self.rng.poisson(arrivals * p_eff).astype(float))
        else:
            early = np.zeros(self.n)
        self.total_dropped += float(early.sum())
        served, tail = self._serve_shared(arrivals - early, dt)
        return served, early + tail

    def flow_delay_s(self) -> np.ndarray:
        delay = float(self.backlog.sum()) / self.capacity
        return np.full(self.n, delay)


class FluidFqCodel(FluidAqm):
    """Per-flow fair queueing with an approximate CoDel controller per flow.

    Service is max-min fair (the DRR fluid limit).  Each flow's sojourn is
    its backlog over its fair-share rate; once it has exceeded ``target``
    for ``interval``, the flow enters dropping mode and sheds packets at
    the CoDel control-law rate sqrt(count)/interval, escalating while the
    sojourn stays high.
    """

    TARGET_S = 0.005
    INTERVAL_S = 0.100

    def __init__(self, limit_pkts: float, capacity_pps: float, n_flows: int, rng=None):
        super().__init__(limit_pkts, capacity_pps, n_flows)
        self.above_since = np.full(n_flows, -1.0)
        self.count = np.zeros(n_flows)
        self.drop_credit = np.zeros(n_flows)

    def step(self, arrivals: np.ndarray, dt: float, now_s: float) -> Tuple[np.ndarray, np.ndarray]:
        supply = self.backlog + arrivals
        served = waterfill(supply, self.capacity * dt)
        backlog = supply - served

        active = backlog > 1e-9
        n_active = max(1, int(active.sum()))
        share_pps = self.capacity / n_active
        sojourn = backlog / share_pps

        above = (sojourn > self.TARGET_S) & (backlog > 1.0)
        fresh = above & (self.above_since < 0)
        self.above_since[fresh] = now_s
        self.above_since[~above] = -1.0
        # CoDel count relaxes when the queue comes back under target.
        self.count[~above] = np.floor(self.count[~above] / 2.0)
        self.drop_credit[~above] = 0.0

        dropping = above & (now_s - self.above_since >= self.INTERVAL_S)
        drops = np.zeros(self.n)
        if dropping.any():
            rate = np.sqrt(self.count[dropping] + 1.0) / self.INTERVAL_S
            self.drop_credit[dropping] += rate * dt
            d = np.floor(self.drop_credit[dropping])
            self.drop_credit[dropping] -= d
            d = np.minimum(d, backlog[dropping])
            drops[dropping] = d
            self.count[dropping] += d
            backlog[dropping] -= d

        # Shared memory limit: evict from the fattest flows.
        excess = float(backlog.sum()) - self.limit
        if excess > 1e-12:
            order = np.argsort(backlog)[::-1]
            for idx in order:
                take = min(backlog[idx] - self.limit / self.n, excess)
                if take <= 0:
                    break
                take = min(take, backlog[idx])
                backlog[idx] -= take
                drops[idx] += take
                excess -= take
                if excess <= 1e-12:
                    break

        self.backlog = backlog
        self.total_dropped += float(drops.sum())
        return served, drops

    def flow_delay_s(self) -> np.ndarray:
        active = self.backlog > 1e-9
        n_active = max(1, int(active.sum()))
        share_pps = self.capacity / n_active
        return self.backlog / share_pps


class FluidPie(FluidAqm):
    """PIE's PI controller over the shared queue (mean-field form).

    The drop probability integrates the queueing-delay error at the RFC's
    15 ms cadence with the same magnitude-scaled gains as
    :class:`repro.aqm.pie.PieQueue`.
    """

    TARGET_S = 0.015
    T_UPDATE_S = 0.015
    ALPHA = 0.125
    BETA = 1.25

    def __init__(self, limit_pkts: float, capacity_pps: float, n_flows: int, rng: np.random.Generator):
        super().__init__(limit_pkts, capacity_pps, n_flows)
        if rng is None:
            raise ValueError("fluid PIE needs an rng")
        self.rng = rng
        self.drop_prob = 0.0
        self.qdelay_old_s = 0.0
        self._since_update_s = 0.0

    def _scale(self) -> float:
        p = self.drop_prob
        for threshold, scale in (
            (0.000001, 1 / 2048), (0.00001, 1 / 512), (0.0001, 1 / 128),
            (0.001, 1 / 32), (0.01, 1 / 8), (0.1, 1 / 2),
        ):
            if p < threshold:
                return scale
        return 1.0

    def _update(self) -> None:
        qdelay = float(self.backlog.sum()) / self.capacity
        delta = self._scale() * (
            self.ALPHA * (qdelay - self.TARGET_S)
            + self.BETA * (qdelay - self.qdelay_old_s)
        )
        self.drop_prob = min(1.0, max(0.0, self.drop_prob + delta))
        if qdelay == 0.0 and self.qdelay_old_s == 0.0:
            self.drop_prob *= 0.98
        self.qdelay_old_s = qdelay

    def step(self, arrivals: np.ndarray, dt: float, now_s: float) -> Tuple[np.ndarray, np.ndarray]:
        self._since_update_s += dt
        while self._since_update_s >= self.T_UPDATE_S:
            self._since_update_s -= self.T_UPDATE_S
            self._update()
        if self.drop_prob > 0:
            early = np.minimum(arrivals, self.rng.poisson(arrivals * self.drop_prob).astype(float))
        else:
            early = np.zeros(self.n)
        self.total_dropped += float(early.sum())
        served, tail = self._serve_shared(arrivals - early, dt)
        return served, early + tail

    def flow_delay_s(self) -> np.ndarray:
        delay = float(self.backlog.sum()) / self.capacity
        return np.full(self.n, delay)


def make_fluid_aqm(
    name: str,
    limit_pkts: float,
    capacity_pps: float,
    n_flows: int,
    rng: Optional[np.random.Generator] = None,
    **params,
) -> FluidAqm:
    """Factory mirroring :func:`repro.aqm.registry.make_aqm`."""
    key = name.lower()
    if key == "fifo":
        return FluidFifo(limit_pkts, capacity_pps, n_flows)
    if key == "red":
        if rng is None:
            raise ValueError("fluid RED needs an rng")
        return FluidRed(limit_pkts, capacity_pps, n_flows, rng, **params)
    if key in ("fq_codel", "codel"):
        return FluidFqCodel(limit_pkts, capacity_pps, n_flows, rng)
    if key == "pie":
        if rng is None:
            raise ValueError("fluid PIE needs an rng")
        return FluidPie(limit_pkts, capacity_pps, n_flows, rng)
    raise ValueError(f"unknown AQM {name!r}")
