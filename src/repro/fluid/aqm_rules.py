"""AQM drop laws for the fluid engine.

Each discipline advances one integration step at a time: it takes the
per-flow arrival vector (packets, may be fractional), applies its drop
law, serves up to ``capacity * dt`` packets, and returns what each flow
had delivered and dropped.  Backlogs are per-flow even for the shared
FIFO/RED queue (processor-sharing approximation of FIFO order, the
standard fluid treatment), which is what lets a buffer-filling CUBIC
crowd out an inflight-capped BBR exactly as in the paper.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.fluid.noise import UniformTable, poisson_from_uniform

# --- pure drop/serve laws ----------------------------------------------------
#
# Rows-form (one row per config) element-wise laws shared by the scalar
# classes below (which pass a single row) and the batched backend in
# repro.fluid.batched (which passes a whole (n_configs, n_flows) block).
# Padded columns carry zero backlog/arrivals and provably do not change
# any real column's result (see docs/FLUID.md).


def waterfill_rows(supply: np.ndarray, cap: np.ndarray) -> np.ndarray:
    """Max-min fair allocation of ``cap[c]`` across each row of demands."""
    totals = supply.sum(axis=1)
    under = totals <= cap
    if under.all():
        return supply.copy()
    n_rows, width = supply.shape
    order = np.sort(supply, axis=1)
    csum = np.cumsum(order, axis=1)
    prefix = np.concatenate([np.zeros((n_rows, 1)), csum[:, :-1]], axis=1)
    remaining = width - np.arange(width)
    theta = (cap[:, None] - prefix) / remaining
    ok = theta <= order
    any_ok = ok.any(axis=1)
    idx = np.where(any_ok, np.argmax(ok, axis=1), width - 1)
    theta_star = theta[np.arange(n_rows), idx]
    return np.where(under[:, None], supply, np.minimum(supply, theta_star[:, None]))


def waterfill(supply: np.ndarray, cap: float) -> np.ndarray:
    """Max-min fair allocation of ``cap`` across ``supply`` demands."""
    return waterfill_rows(supply[None, :], np.asarray([float(cap)]))[0]


def shared_queue_serve(
    backlog: np.ndarray,
    accepted: np.ndarray,
    serve_cap: np.ndarray,
    limit: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Processor-sharing service + tail drop, rows form.

    Returns ``(served, new_backlog, tail_drops)`` for per-row service
    budget ``serve_cap`` (capacity*dt) and shared limit ``limit``.
    """
    supply = backlog + accepted
    totals = supply.sum(axis=1)
    serve = np.minimum(totals, serve_cap)
    ratio = np.divide(serve, totals, out=np.zeros_like(serve), where=totals > 0)
    served = supply * ratio[:, None]
    new_backlog = supply - served
    bsum = new_backlog.sum(axis=1)
    excess = bsum - limit
    need = excess > 1e-12
    tail = np.zeros_like(supply)
    if need.any():
        # Tail drop hits the newest arrivals, proportionally.  Computed
        # only for overflowing rows (element-wise ops are positionally
        # consistent, and non-overflowing rows drop exactly 0.0 either
        # way, so the row-compacted form is bit-identical).
        rows = np.nonzero(need)[0]
        acc_r = accepted[rows]
        nb_r = new_backlog[rows]
        exc_r = excess[rows]
        bsum_r = bsum[rows]
        weights = np.minimum(acc_r, nb_r)
        wsum = weights.sum(axis=1)
        num = exc_r[:, None] * weights
        prop = np.divide(
            num, wsum[:, None], out=np.zeros_like(num), where=(wsum > 0)[:, None]
        )
        tail_prop = np.minimum(nb_r, prop)
        flat_ratio = np.divide(
            exc_r, bsum_r, out=np.zeros_like(exc_r), where=bsum_r > 0
        )
        tail_flat = nb_r * flat_ratio[:, None]
        chosen = np.where((wsum > 0)[:, None], tail_prop, tail_flat)
        tail[rows] = chosen
        new_backlog[rows] = nb_r - chosen
    return served, new_backlog, tail


def red_ewma_gain(weight, exponent):
    """Effective EWMA gain after folding ``exponent`` per-packet updates."""
    return 1.0 - np.power(1.0 - weight, exponent)


def red_drop_probability(avg, min_th, max_th, max_p, gentle):
    """RED (gentle) drop-probability ramp from the averaged queue."""
    ramp = max_p * (avg - min_th) / (max_th - min_th)
    gentle_ramp = max_p + (1 - max_p) * (avg - max_th) / max_th
    return np.where(
        avg < min_th,
        0.0,
        np.where(
            avg < max_th,
            ramp,
            np.where(gentle & (avg < 2 * max_th), gentle_ramp, 1.0),
        ),
    )


def pie_scale(p):
    """PIE auto-tuning gain scale from the current drop probability."""
    return np.where(
        p < 0.000001, 1 / 2048,
        np.where(
            p < 0.00001, 1 / 512,
            np.where(
                p < 0.0001, 1 / 128,
                np.where(
                    p < 0.001, 1 / 32,
                    np.where(p < 0.01, 1 / 8, np.where(p < 0.1, 1 / 2, 1.0)),
                ),
            ),
        ),
    )


def pie_probability_step(p, qdelay, qdelay_old, target, alpha, beta):
    """One PI controller update of the PIE drop probability."""
    delta = pie_scale(p) * (alpha * (qdelay - target) + beta * (qdelay - qdelay_old))
    p_new = np.minimum(1.0, np.maximum(0.0, p + delta))
    return np.where((qdelay == 0.0) & (qdelay_old == 0.0), p_new * 0.98, p_new)


def evict_fattest(backlog: np.ndarray, drops: np.ndarray, limit: float, excess: float, n_flows: int) -> None:
    """Shed a shared-limit overflow from the fattest flows (in place, 1D)."""
    order = np.argsort(backlog)[::-1]
    for idx in order:
        take = min(backlog[idx] - limit / n_flows, excess)
        if take <= 0:
            break
        take = min(take, backlog[idx])
        backlog[idx] -= take
        drops[idx] += take
        excess -= take
        if excess <= 1e-12:
            break


class FluidAqm:
    """Base: byte/packet accounting shared by all disciplines."""

    def __init__(self, limit_pkts: float, capacity_pps: float, n_flows: int):
        if limit_pkts <= 0 or capacity_pps <= 0 or n_flows <= 0:
            raise ValueError("limit, capacity, and flow count must be positive")
        self.limit = float(limit_pkts)
        self.capacity = float(capacity_pps)
        self.n = n_flows
        self.backlog = np.zeros(n_flows)
        self.total_dropped = 0.0

    def step(self, arrivals: np.ndarray, dt: float, now_s: float) -> Tuple[np.ndarray, np.ndarray]:
        """Advance one dt: returns (delivered, dropped) per flow."""
        raise NotImplementedError

    def flow_delay_s(self) -> np.ndarray:
        """Queueing delay currently experienced by each flow's packets."""
        raise NotImplementedError

    # -- shared single-queue service -----------------------------------------------

    def _serve_shared(self, accepted: np.ndarray, dt: float) -> Tuple[np.ndarray, np.ndarray]:
        """Processor-sharing service + tail drop to the shared limit."""
        served, backlog, tail_drops = shared_queue_serve(
            self.backlog[None, :],
            accepted[None, :],
            np.asarray([self.capacity * dt]),
            np.asarray([self.limit]),
        )
        self.backlog = backlog[0]
        self.total_dropped += float(tail_drops[0].sum())
        return served[0], tail_drops[0]


class FluidFifo(FluidAqm):
    """Drop-tail: no early drops; overflow is tail-dropped."""

    def step(self, arrivals: np.ndarray, dt: float, now_s: float) -> Tuple[np.ndarray, np.ndarray]:
        return self._serve_shared(arrivals, dt)

    def flow_delay_s(self) -> np.ndarray:
        delay = float(self.backlog.sum()) / self.capacity
        return np.full(self.n, delay)


class FluidRed(FluidAqm):
    """RED's EWMA ramp applied to (Poisson-sampled) early drops."""

    def __init__(
        self,
        limit_pkts: float,
        capacity_pps: float,
        n_flows: int,
        rng: np.random.Generator,
        *,
        min_th: Optional[float] = None,
        max_th: Optional[float] = None,
        max_p: float = 0.02,
        weight: float = 0.002,
        gentle: bool = True,
    ):
        super().__init__(limit_pkts, capacity_pps, n_flows)
        self.rng = rng
        # Drop-lottery uniforms: one row per step, consumed positionally
        # whether or not the ramp is active (see repro.fluid.noise).
        self._lottery = UniformTable(rng, n_flows)
        # Fixed classic-tc thresholds (30/90 packets), clamped to the buffer
        # — matching repro.aqm.red.RedQueue (see the note there).
        if min_th is not None:
            self.min_th = float(min_th)
        else:
            self.min_th = max(1.0, min(30.0, limit_pkts / 3.0))
        if max_th is not None:
            self.max_th = float(max_th)
        else:
            self.max_th = max(self.min_th + 1.0, min(90.0, limit_pkts * 0.75))
        self.max_p = max_p
        self.weight = weight
        self.gentle = gentle
        self.avg = 0.0

    def _drop_probability(self) -> float:
        return float(
            red_drop_probability(self.avg, self.min_th, self.max_th, self.max_p, self.gentle)
        )

    def step(self, arrivals: np.ndarray, dt: float, now_s: float) -> Tuple[np.ndarray, np.ndarray]:
        u = self._lottery.next_row()
        n_arr = float(arrivals.sum())
        # Per-packet EWMA folded over this step's arrivals; when idle the
        # average decays toward the (empty) instantaneous queue instead.
        exponent = n_arr if n_arr > 0 else self.capacity * dt
        w_eff = float(red_ewma_gain(self.weight, exponent))
        self.avg += w_eff * (float(self.backlog.sum()) - self.avg)
        p = self._drop_probability()
        if p > 0:
            # Floyd/Jacobson count-uniformization spaces drops uniformly over
            # [1, 1/p_b] packets, i.e. an effective rate of ~2*p_b.
            p_eff = min(1.0, 2.0 * p)
            early = np.minimum(arrivals, poisson_from_uniform(arrivals * p_eff, u))
        else:
            early = np.zeros(self.n)
        self.total_dropped += float(early.sum())
        served, tail = self._serve_shared(arrivals - early, dt)
        return served, early + tail

    def flow_delay_s(self) -> np.ndarray:
        delay = float(self.backlog.sum()) / self.capacity
        return np.full(self.n, delay)


class FluidFqCodel(FluidAqm):
    """Per-flow fair queueing with an approximate CoDel controller per flow.

    Service is max-min fair (the DRR fluid limit).  Each flow's sojourn is
    its backlog over its fair-share rate; once it has exceeded ``target``
    for ``interval``, the flow enters dropping mode and sheds packets at
    the CoDel control-law rate sqrt(count)/interval, escalating while the
    sojourn stays high.
    """

    TARGET_S = 0.005
    INTERVAL_S = 0.100

    def __init__(self, limit_pkts: float, capacity_pps: float, n_flows: int, rng=None):
        super().__init__(limit_pkts, capacity_pps, n_flows)
        self.above_since = np.full(n_flows, -1.0)
        self.count = np.zeros(n_flows)
        self.drop_credit = np.zeros(n_flows)

    def step(self, arrivals: np.ndarray, dt: float, now_s: float) -> Tuple[np.ndarray, np.ndarray]:
        supply = self.backlog + arrivals
        served = waterfill(supply, self.capacity * dt)
        backlog = supply - served

        active = backlog > 1e-9
        n_active = max(1, int(active.sum()))
        share_pps = self.capacity / n_active
        sojourn = backlog / share_pps

        above = (sojourn > self.TARGET_S) & (backlog > 1.0)
        fresh = above & (self.above_since < 0)
        self.above_since[fresh] = now_s
        self.above_since[~above] = -1.0
        # CoDel count relaxes when the queue comes back under target.
        self.count[~above] = np.floor(self.count[~above] / 2.0)
        self.drop_credit[~above] = 0.0

        dropping = above & (now_s - self.above_since >= self.INTERVAL_S)
        drops = np.zeros(self.n)
        if dropping.any():
            rate = np.sqrt(self.count[dropping] + 1.0) / self.INTERVAL_S
            self.drop_credit[dropping] += rate * dt
            d = np.floor(self.drop_credit[dropping])
            self.drop_credit[dropping] -= d
            d = np.minimum(d, backlog[dropping])
            drops[dropping] = d
            self.count[dropping] += d
            backlog[dropping] -= d

        # Shared memory limit: evict from the fattest flows.
        excess = float(backlog.sum()) - self.limit
        if excess > 1e-12:
            evict_fattest(backlog, drops, self.limit, excess, self.n)

        self.backlog = backlog
        self.total_dropped += float(drops.sum())
        return served, drops

    def flow_delay_s(self) -> np.ndarray:
        active = self.backlog > 1e-9
        n_active = max(1, int(active.sum()))
        share_pps = self.capacity / n_active
        return self.backlog / share_pps


class FluidPie(FluidAqm):
    """PIE's PI controller over the shared queue (mean-field form).

    The drop probability integrates the queueing-delay error at the RFC's
    15 ms cadence with the same magnitude-scaled gains as
    :class:`repro.aqm.pie.PieQueue`.
    """

    TARGET_S = 0.015
    T_UPDATE_S = 0.015
    ALPHA = 0.125
    BETA = 1.25

    def __init__(self, limit_pkts: float, capacity_pps: float, n_flows: int, rng: np.random.Generator):
        super().__init__(limit_pkts, capacity_pps, n_flows)
        if rng is None:
            raise ValueError("fluid PIE needs an rng")
        self.rng = rng
        self._lottery = UniformTable(rng, n_flows)
        self.drop_prob = 0.0
        self.qdelay_old_s = 0.0
        self._since_update_s = 0.0

    def _scale(self) -> float:
        return float(pie_scale(self.drop_prob))

    def _update(self) -> None:
        qdelay = float(self.backlog.sum()) / self.capacity
        self.drop_prob = float(
            pie_probability_step(
                self.drop_prob, qdelay, self.qdelay_old_s,
                self.TARGET_S, self.ALPHA, self.BETA,
            )
        )
        self.qdelay_old_s = qdelay

    def step(self, arrivals: np.ndarray, dt: float, now_s: float) -> Tuple[np.ndarray, np.ndarray]:
        u = self._lottery.next_row()
        self._since_update_s += dt
        while self._since_update_s >= self.T_UPDATE_S:
            self._since_update_s -= self.T_UPDATE_S
            self._update()
        if self.drop_prob > 0:
            early = np.minimum(arrivals, poisson_from_uniform(arrivals * self.drop_prob, u))
        else:
            early = np.zeros(self.n)
        self.total_dropped += float(early.sum())
        served, tail = self._serve_shared(arrivals - early, dt)
        return served, early + tail

    def flow_delay_s(self) -> np.ndarray:
        delay = float(self.backlog.sum()) / self.capacity
        return np.full(self.n, delay)


def make_fluid_aqm(
    name: str,
    limit_pkts: float,
    capacity_pps: float,
    n_flows: int,
    rng: Optional[np.random.Generator] = None,
    **params,
) -> FluidAqm:
    """Factory mirroring :func:`repro.aqm.registry.make_aqm`."""
    key = name.lower()
    if key == "fifo":
        return FluidFifo(limit_pkts, capacity_pps, n_flows)
    if key == "red":
        if rng is None:
            raise ValueError("fluid RED needs an rng")
        return FluidRed(limit_pkts, capacity_pps, n_flows, rng, **params)
    if key in ("fq_codel", "codel"):
        return FluidFqCodel(limit_pkts, capacity_pps, n_flows, rng)
    if key == "pie":
        if rng is None:
            raise ValueError("fluid PIE needs an rng")
        return FluidPie(limit_pkts, capacity_pps, n_flows, rng)
    raise ValueError(f"unknown AQM {name!r}")
