"""Per-flow congestion-control rules for the fluid engine.

Each flow owns one rule object.  The engine calls
:meth:`FluidCca.round_update` once per (effective) RTT with what happened
during that round — segments delivered, segments dropped, the measured
round RTT — and the rule updates the flow's *window* (segments) or
*pacing rate + inflight cap* (BBR family).  The engine converts windows
to send rates each integration step.

The constants match the packet-engine implementations in
:mod:`repro.cca` so the two engines model the same algorithms.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

INIT_CWND = 10.0
MIN_CWND = 2.0

# Algorithm constants, shared between the per-flow rule objects below and
# the vectorized kernels in repro.fluid.batched.
CUBIC_C = 0.4
CUBIC_BETA = 0.7
CUBIC_FRIENDLY_INC = 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA)
HYSTART_ETA_MIN_S = 0.004
HYSTART_ETA_MAX_S = 0.016
HTCP_DELTA_L_S = 1.0
HTCP_BETA_MIN = 0.5
HTCP_BETA_MAX = 0.8
BBR_HIGH_GAIN = 2.885
BBR_DRAIN_GAIN = 1.0 / BBR_HIGH_GAIN
BBR_CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
BBR_CWND_GAIN = 2.0
BBR_RING = 10
RATE_FLOOR_PPS = INIT_CWND / 0.1
BBR2_STARTUP_GAIN = 2.77
BBR2_DRAIN_GAIN = 1.0 / 2.77
BBR2_LOSS_THRESH = 0.02
BBR2_BETA = 0.7
BBR2_HEADROOM = 0.15


# --- pure per-round laws -----------------------------------------------------
#
# Element-wise numpy functions shared by the scalar rule objects (cold
# paths) and the batched kernels (whole (config, flow) blocks).  Hot
# scalar paths that cannot afford a numpy call keep a literal python
# mirror of the same expression — `+ - * /` and comparisons are IEEE-
# exact, so mirrors stay bit-identical; anything transcendental must go
# through the numpy kernel in BOTH paths (python `**` is not
# bit-identical to numpy array `**` and is banned here).


def slow_start_next(cwnd, ssthresh):
    """Classic slow-start doubling, clamped to ssthresh."""
    nxt = np.minimum(cwnd * 2.0, np.maximum(ssthresh, cwnd))
    return np.where(nxt > ssthresh, ssthresh, nxt)


def aimd_backoff(cwnd, beta):
    """Multiplicative decrease with the global cwnd floor."""
    return np.maximum(cwnd * beta, MIN_CWND)


def hystart_exit_eta(base_rtt_s: float) -> float:
    """HyStart delay threshold for leaving slow start."""
    return min(HYSTART_ETA_MAX_S, max(HYSTART_ETA_MIN_S, base_rtt_s / 8))


def cubic_wmax_after_loss(cwnd, w_max):
    """Fast-convergence w_max update on a loss round."""
    return np.where(cwnd < w_max, cwnd * (2.0 - CUBIC_BETA) / 2.0, cwnd)


def cubic_epoch_k(cwnd, w_max):
    """Time-to-origin K at the start of a cubic epoch."""
    diff = np.where(cwnd < w_max, (w_max - cwnd) / CUBIC_C, 0.0)
    return np.cbrt(diff)


def cubic_epoch_origin(cwnd, w_max):
    """Plateau the cubic curve aims for this epoch."""
    return np.where(cwnd < w_max, w_max, cwnd)


def cubic_target(origin, k, t):
    """Cubic window target at epoch time ``t`` (exact ops only)."""
    d = t - k
    return origin + CUBIC_C * (d * d * d)


def htcp_alpha(elapsed_s, beta):
    """H-TCP per-round additive increase from time since congestion.

    ``elapsed_s`` may be NaN (no congestion event yet) — that lane gets
    the pre-threshold increase of 1.0.
    """
    x = np.maximum(np.asarray(elapsed_s, dtype=np.float64) - HTCP_DELTA_L_S, 0.0)
    xh = x / 2.0
    grown = 2.0 * (1.0 - beta) * (1.0 + 10.0 * x + xh * xh)
    return np.where(x > 0.0, grown, 1.0)


def htcp_bw_stable(max_bw, old_max_bw):
    """Linux H-TCP bandwidth switch: throughput within [-20%, +25%]."""
    return (4.0 * old_max_bw <= 5.0 * max_bw) & (5.0 * max_bw <= 6.0 * old_max_bw)


def htcp_adaptive_beta(rtt_min_s, rtt_max_s):
    """Adaptive backoff factor rtt_min/rtt_max clamped to [0.5, 0.8].

    Caller guards ``rtt_max_s > 0`` and finite ``rtt_min_s``; unguarded
    lanes produce NaN and must be discarded by the caller's mask.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.asarray(rtt_min_s, dtype=np.float64) / rtt_max_s
    return np.minimum(HTCP_BETA_MAX, np.maximum(HTCP_BETA_MIN, ratio))


def bbr_bdp(bw, min_rtt_s):
    """BDP estimate; INIT_CWND until both bw and min_rtt are modelled."""
    have = (np.asarray(bw, dtype=np.float64) > 0.0) & np.isfinite(min_rtt_s)
    safe_rtt = np.where(np.isfinite(min_rtt_s), min_rtt_s, 0.0)
    return np.where(have, bw * safe_rtt, INIT_CWND)


class RoundInfo:
    """What one flow experienced during one RTT-long round."""

    __slots__ = ("now_s", "rtt_s", "base_rtt_s", "delivered", "lost", "delivery_rate_pps", "inflight")

    def __init__(self, now_s, rtt_s, base_rtt_s, delivered, lost, delivery_rate_pps, inflight):
        self.now_s = now_s
        self.rtt_s = rtt_s
        self.base_rtt_s = base_rtt_s
        self.delivered = delivered
        self.lost = lost
        self.delivery_rate_pps = delivery_rate_pps
        self.inflight = inflight

    @property
    def loss_rate(self) -> float:
        total = self.delivered + self.lost
        return self.lost / total if total > 0 else 0.0


class FluidCca:
    """Base class: a window-based flow with slow start."""

    name = "base"
    #: BBR-family rules pace instead of being window-limited.
    rate_based = False

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self.cwnd = INIT_CWND
        self.ssthresh = float("inf")
        self.pacing_pps: Optional[float] = None
        self.inflight_cap = float("inf")
        self.rng = rng

    # -- hooks ---------------------------------------------------------------------

    def round_update(self, info: RoundInfo) -> None:
        """Fold one RTT-long round's outcome into the flow state."""
        raise NotImplementedError

    # -- helpers -------------------------------------------------------------------

    def _slow_start_round(self, info: RoundInfo) -> None:
        """Double per round up to ssthresh (classic slow start)."""
        self.cwnd = float(slow_start_next(self.cwnd, self.ssthresh))

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh


class FluidReno(FluidCca):
    """AIMD: slow-start doubling, +1/round, halve on loss."""

    name = "reno"
    BETA = 0.5

    def round_update(self, info: RoundInfo) -> None:
        if info.lost > 0:
            self.ssthresh = float(aimd_backoff(self.cwnd, self.BETA))
            self.cwnd = self.ssthresh
        elif self.in_slow_start:
            self._slow_start_round(info)
        else:
            self.cwnd += 1.0


class FluidCubic(FluidCca):
    """Cubic curve with fast convergence and a HyStart-style exit."""

    name = "cubic"
    C = CUBIC_C
    BETA = CUBIC_BETA
    HYSTART_ETA_MIN_S = HYSTART_ETA_MIN_S
    HYSTART_ETA_MAX_S = HYSTART_ETA_MAX_S

    def __init__(self, rng=None):
        super().__init__(rng)
        self.w_max = 0.0
        self.epoch_start_s: Optional[float] = None
        self.k = 0.0
        self.origin = 0.0
        self.w_est = 0.0

    def round_update(self, info: RoundInfo) -> None:
        if info.lost > 0:
            self.w_max = float(cubic_wmax_after_loss(self.cwnd, self.w_max))
            self.ssthresh = float(aimd_backoff(self.cwnd, self.BETA))
            self.cwnd = self.ssthresh
            self.epoch_start_s = None
            return
        if self.in_slow_start:
            # HyStart: leave slow start once queueing delay builds.
            eta = hystart_exit_eta(info.base_rtt_s)
            if info.rtt_s >= info.base_rtt_s + eta and self.cwnd >= 16:
                self.ssthresh = self.cwnd
            else:
                self._slow_start_round(info)
                return
        if self.epoch_start_s is None:
            self.epoch_start_s = info.now_s
            self.k = float(cubic_epoch_k(self.cwnd, self.w_max))
            self.origin = float(cubic_epoch_origin(self.cwnd, self.w_max))
            self.w_est = self.cwnd
        t = info.now_s - self.epoch_start_s + info.rtt_s
        target = cubic_target(self.origin, self.k, t)
        if target > self.cwnd:
            # Converge toward the cubic target over roughly one RTT.
            self.cwnd += (target - self.cwnd)
        else:
            self.cwnd += 0.01
        # TCP-friendly floor.
        self.w_est += CUBIC_FRIENDLY_INC
        if self.w_est > self.cwnd:
            self.cwnd = self.w_est


class FluidHTcp(FluidCca):
    """Elapsed-time alpha, adaptive beta, Linux bandwidth switch."""

    name = "htcp"
    DELTA_L_S = HTCP_DELTA_L_S
    BETA_MIN, BETA_MAX = HTCP_BETA_MIN, HTCP_BETA_MAX

    def __init__(self, rng=None):
        super().__init__(rng)
        self.last_congestion_s: Optional[float] = None
        self.rtt_min_s = float("inf")
        self.rtt_max_s = 0.0
        self.beta = self.BETA_MIN
        # Bandwidth switch (Linux default), as in repro.cca.htcp.
        self.max_bw = 0.0
        self.old_max_bw = 0.0
        self.modeswitch = False

    def _alpha(self, now_s: float) -> float:
        # Hot-path python mirror of htcp_alpha() — exact ops only.
        if self.last_congestion_s is None:
            return 1.0
        dt = now_s - self.last_congestion_s
        if dt <= HTCP_DELTA_L_S:
            return 1.0
        x = dt - HTCP_DELTA_L_S
        xh = x / 2.0
        return 2.0 * (1.0 - self.beta) * (1.0 + 10.0 * x + xh * xh)

    def _update_beta(self) -> None:
        max_bw, old_max_bw = self.max_bw, self.old_max_bw
        self.old_max_bw = max_bw
        self.max_bw = 0.0
        if not bool(htcp_bw_stable(max_bw, old_max_bw)):
            self.beta = HTCP_BETA_MIN
            self.modeswitch = False
            return
        if self.modeswitch and self.rtt_max_s > 0 and math.isfinite(self.rtt_min_s):
            self.beta = float(htcp_adaptive_beta(self.rtt_min_s, self.rtt_max_s))
        else:
            self.beta = HTCP_BETA_MIN
            self.modeswitch = True

    def round_update(self, info: RoundInfo) -> None:
        self.rtt_min_s = min(self.rtt_min_s, info.rtt_s)
        self.rtt_max_s = max(self.rtt_max_s, info.rtt_s)
        self.max_bw = max(self.max_bw, info.delivery_rate_pps)
        if info.lost > 0:
            self._update_beta()
            self.ssthresh = float(aimd_backoff(self.cwnd, self.beta))
            self.cwnd = self.ssthresh
            self.last_congestion_s = info.now_s
            self.rtt_min_s = float("inf")
            self.rtt_max_s = 0.0
        elif self.in_slow_start:
            self._slow_start_round(info)
        else:
            self.cwnd += self._alpha(info.now_s)


class _BwMaxFilter:
    """Windowed max over the last N rounds (list-based; N is small)."""

    def __init__(self, window_rounds: int = 10):
        self.window = window_rounds
        self.samples: list = []  # (round_idx, value)
        self.round_idx = 0

    def update(self, value: float) -> None:
        self.round_idx += 1
        self.samples.append((self.round_idx, value))
        self.samples = [(r, v) for r, v in self.samples if r > self.round_idx - self.window]

    def get(self) -> float:
        return max((v for _, v in self.samples), default=0.0)


class FluidBbrV1(FluidCca):
    """BBRv1 mean-field rules: bw max-filter, gain cycle, 2xBDP cap."""

    name = "bbrv1"
    rate_based = True
    HIGH_GAIN = BBR_HIGH_GAIN
    CYCLE = BBR_CYCLE
    CWND_GAIN = BBR_CWND_GAIN
    PROBE_RTT_INTERVAL_S = 10.0
    PROBE_RTT_DURATION_S = 0.2

    def __init__(self, rng=None):
        super().__init__(rng)
        self.state = "STARTUP"
        self.bw_filter = _BwMaxFilter()
        self.min_rtt_s = float("inf")
        self.min_rtt_stamp_s = 0.0
        self.full_bw = 0.0
        self.full_bw_count = 0
        self.cycle_index = 2
        self.cycle_stamp_s = 0.0
        self.probe_rtt_until_s: Optional[float] = None
        self.pacing_pps = None  # engine treats None as "unmodelled yet"
        self.rate_floor_pps = RATE_FLOOR_PPS

    def _bdp(self) -> float:
        bw = self.bw_filter.get()
        if bw <= 0 or not math.isfinite(self.min_rtt_s):
            return INIT_CWND
        return bw * self.min_rtt_s

    def round_update(self, info: RoundInfo) -> None:
        now = info.now_s
        # Rigid loss response: sustained heavy loss occasionally drives real
        # BBRv1 into retransmission timeouts that crater its rate (paper
        # §5.2, RED intra-CCA).  Model as a rare collapse under heavy loss.
        if (
            info.loss_rate > 0.4
            and self.rng is not None
            and self.rng.random() < 0.03
        ):
            self.on_rto_like_collapse(now)
        if info.rtt_s < self.min_rtt_s:
            self.min_rtt_s = info.rtt_s
            self.min_rtt_stamp_s = now
        if info.delivery_rate_pps > 0:
            self.bw_filter.update(info.delivery_rate_pps)
        bw = self.bw_filter.get()

        if self.state == "STARTUP":
            if bw >= self.full_bw * 1.25:
                self.full_bw = bw
                self.full_bw_count = 0
            else:
                self.full_bw_count += 1
            if self.full_bw_count >= 3:
                self.state = "DRAIN"
        if self.state == "DRAIN":
            if info.inflight <= self._bdp():
                self.state = "PROBE_BW"
                self.cycle_index = int(self.rng.integers(2, 8)) if self.rng is not None else 2
                self.cycle_stamp_s = now
        if self.state == "PROBE_BW":
            if now - self.cycle_stamp_s > max(self.min_rtt_s, 1e-3):
                self.cycle_index = (self.cycle_index + 1) % len(self.CYCLE)
                self.cycle_stamp_s = now
            if now - self.min_rtt_stamp_s > self.PROBE_RTT_INTERVAL_S:
                self.state = "PROBE_RTT"
                self.probe_rtt_until_s = now + self.PROBE_RTT_DURATION_S
        if self.state == "PROBE_RTT":
            if self.probe_rtt_until_s is not None and now >= self.probe_rtt_until_s:
                self.min_rtt_stamp_s = now
                self.state = "PROBE_BW"
                self.cycle_stamp_s = now

        # Outputs.
        if self.state == "STARTUP":
            gain, cap_gain = BBR_HIGH_GAIN, BBR_HIGH_GAIN
        elif self.state == "DRAIN":
            gain, cap_gain = BBR_DRAIN_GAIN, BBR_HIGH_GAIN
        elif self.state == "PROBE_RTT":
            gain, cap_gain = 1.0, 0.5
        else:
            gain, cap_gain = self.CYCLE[self.cycle_index], self.CWND_GAIN
        if bw > 0:
            self.pacing_pps = max(self.rate_floor_pps, gain * bw)
            self.inflight_cap = max(4.0, cap_gain * self._bdp())
        else:
            # No model yet: keep ramping like slow start.
            self.pacing_pps = None
            self.cwnd = min(self.cwnd * 2.0, 1e9)

    def on_rto_like_collapse(self, now_s: float) -> None:
        """Model the paper's intermittent BBRv1 RTO crashes under RED.

        The rate craters, then recovers through a fresh STARTUP (slow-start
        restart), as after a real retransmission timeout.
        """
        self.full_bw = 0.0
        self.full_bw_count = 0
        self.bw_filter.samples = [(self.bw_filter.round_idx, self.rate_floor_pps)]
        self.pacing_pps = self.rate_floor_pps
        self.state = "STARTUP"


class FluidBbrV2(FluidBbrV1):
    """BBRv2 rules: inflight_hi with the 2% loss threshold + probe cycle."""

    name = "bbrv2"
    LOSS_THRESH = BBR2_LOSS_THRESH
    BETA = BBR2_BETA
    HEADROOM = BBR2_HEADROOM
    PROBE_RTT_INTERVAL_S = 5.0
    CRUISE_S = 2.5

    def __init__(self, rng=None):
        super().__init__(rng)
        self.inflight_hi = float("inf")
        self.phase = "DOWN"
        self.phase_stamp_s = 0.0

    def round_update(self, info: RoundInfo) -> None:
        now = info.now_s
        if info.rtt_s < self.min_rtt_s:
            self.min_rtt_s = info.rtt_s
            self.min_rtt_stamp_s = now
        if info.delivery_rate_pps > 0:
            self.bw_filter.update(info.delivery_rate_pps)
        bw = self.bw_filter.get()
        bdp = self._bdp()

        high_loss = info.loss_rate >= self.LOSS_THRESH and info.lost >= 2
        if high_loss:
            base = self.inflight_hi if math.isfinite(self.inflight_hi) else max(info.inflight, bdp)
            self.inflight_hi = max(4.0, min(base, max(info.inflight, 4.0)) * self.BETA)

        if self.state == "STARTUP":
            if bw >= self.full_bw * 1.25:
                self.full_bw = bw
                self.full_bw_count = 0
            else:
                self.full_bw_count += 1
            if self.full_bw_count >= 3 or high_loss:
                self.state = "DRAIN"
        if self.state == "DRAIN":
            if info.inflight <= bdp:
                self.state = "PROBE_BW"
                self.phase = "DOWN"
                self.phase_stamp_s = now
        if self.state == "PROBE_BW":
            if self.phase == "DOWN":
                bound = self.inflight_hi * (1 - self.HEADROOM) if math.isfinite(self.inflight_hi) else float("inf")
                if info.inflight <= max(4.0, min(bdp, bound)):
                    self.phase = "CRUISE"
                    self.phase_stamp_s = now + (
                        float(self.rng.uniform(-0.5, 0.5)) if self.rng is not None else 0.0
                    )
            elif self.phase == "CRUISE":
                if now - self.phase_stamp_s > self.CRUISE_S:
                    self.phase = "UP"
                    self.phase_stamp_s = now
            elif self.phase == "UP":
                if math.isfinite(self.inflight_hi) and not high_loss:
                    # Slow-start-pace bound growth, as in the packet engine.
                    self.inflight_hi += max(1.0, info.delivered)
                if high_loss or now - self.phase_stamp_s > 4 * max(self.min_rtt_s, 1e-3):
                    self.phase = "DOWN"
                    self.phase_stamp_s = now
            if now - self.min_rtt_stamp_s > self.PROBE_RTT_INTERVAL_S:
                self.state = "PROBE_RTT"
                self.probe_rtt_until_s = now + self.PROBE_RTT_DURATION_S
        if self.state == "PROBE_RTT":
            if self.probe_rtt_until_s is not None and now >= self.probe_rtt_until_s:
                self.min_rtt_stamp_s = now
                self.state = "PROBE_BW"
                self.phase = "DOWN"
                self.phase_stamp_s = now

        if self.state == "STARTUP":
            gain, cap_gain = BBR2_STARTUP_GAIN, 2.0
        elif self.state == "DRAIN":
            gain, cap_gain = BBR2_DRAIN_GAIN, 2.0
        elif self.state == "PROBE_RTT":
            gain, cap_gain = 1.0, 0.5
        elif self.phase == "DOWN":
            gain, cap_gain = 0.9, 2.0
        elif self.phase == "UP":
            gain, cap_gain = 1.25, 2.0
        else:
            gain, cap_gain = 1.0, 2.0

        if bw > 0:
            self.pacing_pps = max(self.rate_floor_pps, gain * bw)
            cap = max(4.0, cap_gain * bdp)
            if math.isfinite(self.inflight_hi):
                hi = self.inflight_hi
                if self.phase == "CRUISE" and self.state == "PROBE_BW":
                    hi *= 1 - self.HEADROOM
                cap = min(cap, max(4.0, hi))
            self.inflight_cap = cap
        else:
            self.pacing_pps = None
            self.cwnd = min(self.cwnd * 2.0, 1e9)


FLUID_CCAS = {
    "reno": FluidReno,
    "cubic": FluidCubic,
    "htcp": FluidHTcp,
    "bbrv1": FluidBbrV1,
    "bbrv2": FluidBbrV2,
}


def make_fluid_cca(name: str, rng: Optional[np.random.Generator] = None) -> FluidCca:
    """Instantiate the fluid rule set for the CCA called ``name``."""
    from repro.cca.registry import canonical_cca_name

    return FLUID_CCAS[canonical_cca_name(name)](rng)
