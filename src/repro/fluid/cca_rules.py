"""Per-flow congestion-control rules for the fluid engine.

Each flow owns one rule object.  The engine calls
:meth:`FluidCca.round_update` once per (effective) RTT with what happened
during that round — segments delivered, segments dropped, the measured
round RTT — and the rule updates the flow's *window* (segments) or
*pacing rate + inflight cap* (BBR family).  The engine converts windows
to send rates each integration step.

The constants match the packet-engine implementations in
:mod:`repro.cca` so the two engines model the same algorithms.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

INIT_CWND = 10.0
MIN_CWND = 2.0


class RoundInfo:
    """What one flow experienced during one RTT-long round."""

    __slots__ = ("now_s", "rtt_s", "base_rtt_s", "delivered", "lost", "delivery_rate_pps", "inflight")

    def __init__(self, now_s, rtt_s, base_rtt_s, delivered, lost, delivery_rate_pps, inflight):
        self.now_s = now_s
        self.rtt_s = rtt_s
        self.base_rtt_s = base_rtt_s
        self.delivered = delivered
        self.lost = lost
        self.delivery_rate_pps = delivery_rate_pps
        self.inflight = inflight

    @property
    def loss_rate(self) -> float:
        total = self.delivered + self.lost
        return self.lost / total if total > 0 else 0.0


class FluidCca:
    """Base class: a window-based flow with slow start."""

    name = "base"
    #: BBR-family rules pace instead of being window-limited.
    rate_based = False

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self.cwnd = INIT_CWND
        self.ssthresh = float("inf")
        self.pacing_pps: Optional[float] = None
        self.inflight_cap = float("inf")
        self.rng = rng

    # -- hooks ---------------------------------------------------------------------

    def round_update(self, info: RoundInfo) -> None:
        """Fold one RTT-long round's outcome into the flow state."""
        raise NotImplementedError

    # -- helpers -------------------------------------------------------------------

    def _slow_start_round(self, info: RoundInfo) -> None:
        """Double per round up to ssthresh (classic slow start)."""
        self.cwnd = min(self.cwnd * 2.0, max(self.ssthresh, self.cwnd))
        if self.cwnd > self.ssthresh:
            self.cwnd = self.ssthresh

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh


class FluidReno(FluidCca):
    """AIMD: slow-start doubling, +1/round, halve on loss."""

    name = "reno"
    BETA = 0.5

    def round_update(self, info: RoundInfo) -> None:
        if info.lost > 0:
            self.ssthresh = max(self.cwnd * self.BETA, MIN_CWND)
            self.cwnd = self.ssthresh
        elif self.in_slow_start:
            self._slow_start_round(info)
        else:
            self.cwnd += 1.0


class FluidCubic(FluidCca):
    """Cubic curve with fast convergence and a HyStart-style exit."""

    name = "cubic"
    C = 0.4
    BETA = 0.7
    HYSTART_ETA_MIN_S = 0.004
    HYSTART_ETA_MAX_S = 0.016

    def __init__(self, rng=None):
        super().__init__(rng)
        self.w_max = 0.0
        self.epoch_start_s: Optional[float] = None
        self.k = 0.0
        self.origin = 0.0
        self.w_est = 0.0

    def round_update(self, info: RoundInfo) -> None:
        if info.lost > 0:
            if self.cwnd < self.w_max:
                self.w_max = self.cwnd * (2.0 - self.BETA) / 2.0
            else:
                self.w_max = self.cwnd
            self.ssthresh = max(self.cwnd * self.BETA, MIN_CWND)
            self.cwnd = self.ssthresh
            self.epoch_start_s = None
            return
        if self.in_slow_start:
            # HyStart: leave slow start once queueing delay builds.
            eta = min(self.HYSTART_ETA_MAX_S, max(self.HYSTART_ETA_MIN_S, info.base_rtt_s / 8))
            if info.rtt_s >= info.base_rtt_s + eta and self.cwnd >= 16:
                self.ssthresh = self.cwnd
            else:
                self._slow_start_round(info)
                return
        if self.epoch_start_s is None:
            self.epoch_start_s = info.now_s
            if self.cwnd < self.w_max:
                self.k = ((self.w_max - self.cwnd) / self.C) ** (1.0 / 3.0)
                self.origin = self.w_max
            else:
                self.k = 0.0
                self.origin = self.cwnd
            self.w_est = self.cwnd
        t = info.now_s - self.epoch_start_s + info.rtt_s
        target = self.origin + self.C * (t - self.k) ** 3
        if target > self.cwnd:
            # Converge toward the cubic target over roughly one RTT.
            self.cwnd += (target - self.cwnd)
        else:
            self.cwnd += 0.01
        # TCP-friendly floor.
        self.w_est += 3.0 * (1.0 - self.BETA) / (1.0 + self.BETA)
        if self.w_est > self.cwnd:
            self.cwnd = self.w_est


class FluidHTcp(FluidCca):
    """Elapsed-time alpha, adaptive beta, Linux bandwidth switch."""

    name = "htcp"
    DELTA_L_S = 1.0
    BETA_MIN, BETA_MAX = 0.5, 0.8

    def __init__(self, rng=None):
        super().__init__(rng)
        self.last_congestion_s: Optional[float] = None
        self.rtt_min_s = float("inf")
        self.rtt_max_s = 0.0
        self.beta = self.BETA_MIN
        # Bandwidth switch (Linux default), as in repro.cca.htcp.
        self.max_bw = 0.0
        self.old_max_bw = 0.0
        self.modeswitch = False

    def _alpha(self, now_s: float) -> float:
        if self.last_congestion_s is None:
            return 1.0
        dt = now_s - self.last_congestion_s
        if dt <= self.DELTA_L_S:
            return 1.0
        x = dt - self.DELTA_L_S
        return 2.0 * (1.0 - self.beta) * (1.0 + 10.0 * x + (x / 2.0) ** 2)

    def _update_beta(self) -> None:
        max_bw, old_max_bw = self.max_bw, self.old_max_bw
        self.old_max_bw = max_bw
        self.max_bw = 0.0
        if not (4 * old_max_bw <= 5 * max_bw <= 6 * old_max_bw):
            self.beta = self.BETA_MIN
            self.modeswitch = False
            return
        if self.modeswitch and self.rtt_max_s > 0 and math.isfinite(self.rtt_min_s):
            self.beta = min(self.BETA_MAX, max(self.BETA_MIN, self.rtt_min_s / self.rtt_max_s))
        else:
            self.beta = self.BETA_MIN
            self.modeswitch = True

    def round_update(self, info: RoundInfo) -> None:
        self.rtt_min_s = min(self.rtt_min_s, info.rtt_s)
        self.rtt_max_s = max(self.rtt_max_s, info.rtt_s)
        self.max_bw = max(self.max_bw, info.delivery_rate_pps)
        if info.lost > 0:
            self._update_beta()
            self.ssthresh = max(self.cwnd * self.beta, MIN_CWND)
            self.cwnd = self.ssthresh
            self.last_congestion_s = info.now_s
            self.rtt_min_s = float("inf")
            self.rtt_max_s = 0.0
        elif self.in_slow_start:
            self._slow_start_round(info)
        else:
            self.cwnd += self._alpha(info.now_s)


class _BwMaxFilter:
    """Windowed max over the last N rounds (list-based; N is small)."""

    def __init__(self, window_rounds: int = 10):
        self.window = window_rounds
        self.samples: list = []  # (round_idx, value)
        self.round_idx = 0

    def update(self, value: float) -> None:
        self.round_idx += 1
        self.samples.append((self.round_idx, value))
        self.samples = [(r, v) for r, v in self.samples if r > self.round_idx - self.window]

    def get(self) -> float:
        return max((v for _, v in self.samples), default=0.0)


class FluidBbrV1(FluidCca):
    """BBRv1 mean-field rules: bw max-filter, gain cycle, 2xBDP cap."""

    name = "bbrv1"
    rate_based = True
    HIGH_GAIN = 2.885
    CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    CWND_GAIN = 2.0
    PROBE_RTT_INTERVAL_S = 10.0
    PROBE_RTT_DURATION_S = 0.2

    def __init__(self, rng=None):
        super().__init__(rng)
        self.state = "STARTUP"
        self.bw_filter = _BwMaxFilter()
        self.min_rtt_s = float("inf")
        self.min_rtt_stamp_s = 0.0
        self.full_bw = 0.0
        self.full_bw_count = 0
        self.cycle_index = 2
        self.cycle_stamp_s = 0.0
        self.probe_rtt_until_s: Optional[float] = None
        self.pacing_pps = None  # engine treats None as "unmodelled yet"
        self.rate_floor_pps = INIT_CWND / 0.1

    def _bdp(self) -> float:
        bw = self.bw_filter.get()
        if bw <= 0 or not math.isfinite(self.min_rtt_s):
            return INIT_CWND
        return bw * self.min_rtt_s

    def round_update(self, info: RoundInfo) -> None:
        now = info.now_s
        # Rigid loss response: sustained heavy loss occasionally drives real
        # BBRv1 into retransmission timeouts that crater its rate (paper
        # §5.2, RED intra-CCA).  Model as a rare collapse under heavy loss.
        if (
            info.loss_rate > 0.4
            and self.rng is not None
            and self.rng.random() < 0.03
        ):
            self.on_rto_like_collapse(now)
        if info.rtt_s < self.min_rtt_s:
            self.min_rtt_s = info.rtt_s
            self.min_rtt_stamp_s = now
        if info.delivery_rate_pps > 0:
            self.bw_filter.update(info.delivery_rate_pps)
        bw = self.bw_filter.get()

        if self.state == "STARTUP":
            if bw >= self.full_bw * 1.25:
                self.full_bw = bw
                self.full_bw_count = 0
            else:
                self.full_bw_count += 1
            if self.full_bw_count >= 3:
                self.state = "DRAIN"
        if self.state == "DRAIN":
            if info.inflight <= self._bdp():
                self.state = "PROBE_BW"
                self.cycle_index = int(self.rng.integers(2, 8)) if self.rng is not None else 2
                self.cycle_stamp_s = now
        if self.state == "PROBE_BW":
            if now - self.cycle_stamp_s > max(self.min_rtt_s, 1e-3):
                self.cycle_index = (self.cycle_index + 1) % len(self.CYCLE)
                self.cycle_stamp_s = now
            if now - self.min_rtt_stamp_s > self.PROBE_RTT_INTERVAL_S:
                self.state = "PROBE_RTT"
                self.probe_rtt_until_s = now + self.PROBE_RTT_DURATION_S
        if self.state == "PROBE_RTT":
            if self.probe_rtt_until_s is not None and now >= self.probe_rtt_until_s:
                self.min_rtt_stamp_s = now
                self.state = "PROBE_BW"
                self.cycle_stamp_s = now

        # Outputs.
        if self.state == "STARTUP":
            gain, cap_gain = self.HIGH_GAIN, self.HIGH_GAIN
        elif self.state == "DRAIN":
            gain, cap_gain = 1.0 / self.HIGH_GAIN, self.HIGH_GAIN
        elif self.state == "PROBE_RTT":
            gain, cap_gain = 1.0, 0.5
        else:
            gain, cap_gain = self.CYCLE[self.cycle_index], self.CWND_GAIN
        if bw > 0:
            self.pacing_pps = max(self.rate_floor_pps, gain * bw)
            self.inflight_cap = max(4.0, cap_gain * self._bdp())
        else:
            # No model yet: keep ramping like slow start.
            self.pacing_pps = None
            self.cwnd = min(self.cwnd * 2.0, 1e9)

    def on_rto_like_collapse(self, now_s: float) -> None:
        """Model the paper's intermittent BBRv1 RTO crashes under RED.

        The rate craters, then recovers through a fresh STARTUP (slow-start
        restart), as after a real retransmission timeout.
        """
        self.full_bw = 0.0
        self.full_bw_count = 0
        self.bw_filter.samples = [(self.bw_filter.round_idx, self.rate_floor_pps)]
        self.pacing_pps = self.rate_floor_pps
        self.state = "STARTUP"


class FluidBbrV2(FluidBbrV1):
    """BBRv2 rules: inflight_hi with the 2% loss threshold + probe cycle."""

    name = "bbrv2"
    LOSS_THRESH = 0.02
    BETA = 0.7
    HEADROOM = 0.15
    PROBE_RTT_INTERVAL_S = 5.0
    CRUISE_S = 2.5

    def __init__(self, rng=None):
        super().__init__(rng)
        self.inflight_hi = float("inf")
        self.phase = "DOWN"
        self.phase_stamp_s = 0.0

    def round_update(self, info: RoundInfo) -> None:
        now = info.now_s
        if info.rtt_s < self.min_rtt_s:
            self.min_rtt_s = info.rtt_s
            self.min_rtt_stamp_s = now
        if info.delivery_rate_pps > 0:
            self.bw_filter.update(info.delivery_rate_pps)
        bw = self.bw_filter.get()
        bdp = self._bdp()

        high_loss = info.loss_rate >= self.LOSS_THRESH and info.lost >= 2
        if high_loss:
            base = self.inflight_hi if math.isfinite(self.inflight_hi) else max(info.inflight, bdp)
            self.inflight_hi = max(4.0, min(base, max(info.inflight, 4.0)) * self.BETA)

        if self.state == "STARTUP":
            if bw >= self.full_bw * 1.25:
                self.full_bw = bw
                self.full_bw_count = 0
            else:
                self.full_bw_count += 1
            if self.full_bw_count >= 3 or high_loss:
                self.state = "DRAIN"
        if self.state == "DRAIN":
            if info.inflight <= bdp:
                self.state = "PROBE_BW"
                self.phase = "DOWN"
                self.phase_stamp_s = now
        if self.state == "PROBE_BW":
            if self.phase == "DOWN":
                bound = self.inflight_hi * (1 - self.HEADROOM) if math.isfinite(self.inflight_hi) else float("inf")
                if info.inflight <= max(4.0, min(bdp, bound)):
                    self.phase = "CRUISE"
                    self.phase_stamp_s = now + (
                        float(self.rng.uniform(-0.5, 0.5)) if self.rng is not None else 0.0
                    )
            elif self.phase == "CRUISE":
                if now - self.phase_stamp_s > self.CRUISE_S:
                    self.phase = "UP"
                    self.phase_stamp_s = now
            elif self.phase == "UP":
                if math.isfinite(self.inflight_hi) and not high_loss:
                    # Slow-start-pace bound growth, as in the packet engine.
                    self.inflight_hi += max(1.0, info.delivered)
                if high_loss or now - self.phase_stamp_s > 4 * max(self.min_rtt_s, 1e-3):
                    self.phase = "DOWN"
                    self.phase_stamp_s = now
            if now - self.min_rtt_stamp_s > self.PROBE_RTT_INTERVAL_S:
                self.state = "PROBE_RTT"
                self.probe_rtt_until_s = now + self.PROBE_RTT_DURATION_S
        if self.state == "PROBE_RTT":
            if self.probe_rtt_until_s is not None and now >= self.probe_rtt_until_s:
                self.min_rtt_stamp_s = now
                self.state = "PROBE_BW"
                self.phase = "DOWN"
                self.phase_stamp_s = now

        if self.state == "STARTUP":
            gain, cap_gain = 2.77, 2.0
        elif self.state == "DRAIN":
            gain, cap_gain = 1.0 / 2.77, 2.0
        elif self.state == "PROBE_RTT":
            gain, cap_gain = 1.0, 0.5
        elif self.phase == "DOWN":
            gain, cap_gain = 0.9, 2.0
        elif self.phase == "UP":
            gain, cap_gain = 1.25, 2.0
        else:
            gain, cap_gain = 1.0, 2.0

        if bw > 0:
            self.pacing_pps = max(self.rate_floor_pps, gain * bw)
            cap = max(4.0, cap_gain * bdp)
            if math.isfinite(self.inflight_hi):
                hi = self.inflight_hi
                if self.phase == "CRUISE" and self.state == "PROBE_BW":
                    hi *= 1 - self.HEADROOM
                cap = min(cap, max(4.0, hi))
            self.inflight_cap = cap
        else:
            self.pacing_pps = None
            self.cwnd = min(self.cwnd * 2.0, 1e9)


FLUID_CCAS = {
    "reno": FluidReno,
    "cubic": FluidCubic,
    "htcp": FluidHTcp,
    "bbrv1": FluidBbrV1,
    "bbrv2": FluidBbrV2,
}


def make_fluid_cca(name: str, rng: Optional[np.random.Generator] = None) -> FluidCca:
    """Instantiate the fluid rule set for the CCA called ``name``."""
    from repro.cca.registry import canonical_cca_name

    return FLUID_CCAS[canonical_cca_name(name)](rng)
