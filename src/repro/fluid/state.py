"""Shard planning and state-layout constants for the batched fluid backend.

A *shard* is a set of configs the batched integrator can advance in
lock-step: they must share the integration geometry (base RTT and
therefore dt, duration, warmup) and the AQM family (so one vectorized
drop law covers the whole block).  Everything else — bandwidth tier,
buffer size, CCA pair, seed, RED knobs — varies per config and lives in
per-config arrays.

Two width policies:

- ``pad=False`` (default): flow count is part of the shard key, every
  row has the same width, and results are **bit-for-bit** identical to
  the scalar oracle.
- ``pad=True``: configs with different flow counts share a shard; rows
  are padded to the widest config and masked.  Padding perturbs numpy's
  pairwise row-sum grouping once a row exceeds ~8 elements, so this
  mode is held to a documented tolerance instead of exact equality
  (see docs/FLUID.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig

#: Integer lane codes for the vectorized CCA kernels.
CCA_CODE: Dict[str, int] = {
    "reno": 0,
    "cubic": 1,
    "htcp": 2,
    "bbrv1": 3,
    "bbrv2": 4,
}

#: Codes whose kernels pace (BBR family) and own a per-lane RNG stream.
RATE_BASED_CODES = frozenset({CCA_CODE["bbrv1"], CCA_CODE["bbrv2"]})


def canonical_aqm_family(name: str) -> str:
    """AQM family implementing ``name`` (codel is served by fq_codel)."""
    key = name.lower()
    return "fq_codel" if key == "codel" else key


@dataclass(frozen=True)
class ShardKey:
    """Lock-step compatibility key: configs in one shard share these."""

    aqm_family: str
    n_flows: int  # 0 in pad mode (width handled by padding)
    base_rtt_ns: int
    duration_s: float
    warmup_s: float
    #: Fairness-sampling cadence: one shard-wide hook drives every row's
    #: probe, so shard members must agree on it (None = not sampled).
    fairness_interval_s: Optional[float] = None


def shard_key(config: ExperimentConfig, *, pad: bool = False) -> ShardKey:
    """Compute the lock-step compatibility key for one config."""
    from repro.testbed.sites import PAPER_RTT_NS

    return ShardKey(
        aqm_family=canonical_aqm_family(config.aqm),
        n_flows=0 if pad else 2 * config.plan.flows_per_node,
        base_rtt_ns=int(PAPER_RTT_NS * config.delay_multiplier),
        duration_s=float(config.duration_s),
        warmup_s=float(config.warmup_s),
        fairness_interval_s=config.fairness_interval_s,
    )


def plan_shards(
    configs: Sequence[ExperimentConfig],
    *,
    pad: bool = False,
    max_shard: int = 0,
) -> List[List[int]]:
    """Group config indices into lock-step shards (insertion-ordered).

    ``max_shard > 0`` additionally splits each group into chunks of at
    most that many configs — a memory knob only: per-config results do
    not depend on shard composition.
    """
    groups: Dict[ShardKey, List[int]] = {}
    for i, config in enumerate(configs):
        groups.setdefault(shard_key(config, pad=pad), []).append(i)
    shards: List[List[int]] = []
    for members in groups.values():
        if max_shard and len(members) > max_shard:
            for lo in range(0, len(members), max_shard):
                shards.append(members[lo : lo + max_shard])
        else:
            shards.append(members)
    return shards


def shard_widths(
    configs: Sequence[ExperimentConfig], shard: Sequence[int]
) -> Tuple[List[int], int]:
    """Per-config flow counts and the padded row width for one shard."""
    widths = [2 * configs[i].plan.flows_per_node for i in shard]
    return widths, max(widths)
