"""The fluid integrator.

Time advances in fixed steps of ``base_rtt / steps_per_rtt``.  Each step:

1. every flow's send rate is computed from its window (``cwnd/RTT_eff``)
   or its pacing rate, clipped by the BBR inflight cap;
2. arrivals enter the AQM, which drops and serves per its law;
3. per-flow round accumulators collect delivered/lost packets, and flows
   whose round timer (one effective RTT) expired get a
   :class:`~repro.fluid.cca_rules.RoundInfo` callback.

Rates and queues are in **segments** (packets); the caller converts to
bits using the configured MSS.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.fluid.aqm_rules import FluidAqm
from repro.fluid.cca_rules import FluidCca, RoundInfo
from repro.fluid.noise import UniformTable, poisson_from_uniform

DEFAULT_STEPS_PER_RTT = 5


class FluidSimulation:
    """Integrate a set of flows over a single bottleneck."""

    def __init__(
        self,
        *,
        capacity_pps: float,
        base_rtt_s: float,
        aqm: FluidAqm,
        flows: Sequence[FluidCca],
        start_times_s: Optional[Sequence[float]] = None,
        steps_per_rtt: int = DEFAULT_STEPS_PER_RTT,
        arrival_rng: Optional[np.random.Generator] = None,
        burst_pkts: int = 4,
    ):
        if capacity_pps <= 0 or base_rtt_s <= 0:
            raise ValueError("capacity and base RTT must be positive")
        if len(flows) == 0:
            raise ValueError("need at least one flow")
        if aqm.n != len(flows):
            raise ValueError("AQM was sized for a different flow count")
        self.capacity = capacity_pps
        self.base_rtt = base_rtt_s
        self.aqm = aqm
        self.flows: List[FluidCca] = list(flows)
        self.n = len(flows)
        self.dt = base_rtt_s / steps_per_rtt
        self.now = 0.0
        # With an arrival RNG, per-step arrivals are Poisson-sampled around
        # the fluid rate in bursts of ``burst_pkts`` (ACK-clocked TCP sends
        # back-to-back runs) — the packet-level burstiness that makes small
        # buffers overflow (mean-field arrivals never would).  The variates
        # come from a positionally consumed uniform table through the
        # shared inverse-CDF transform, so the batched backend reproduces
        # them bit-for-bit (see repro.fluid.noise).
        self.arrival_rng = arrival_rng
        if burst_pkts < 1:
            raise ValueError(f"burst_pkts must be >= 1, got {burst_pkts}")
        self.burst_pkts = burst_pkts
        self._arrival_noise = (
            UniformTable(arrival_rng, self.n) if arrival_rng is not None else None
        )
        # Measurement-window bookkeeping (begin_measurement()).
        self._measure_start_s: Optional[float] = None
        self._measure_delivered: Optional[np.ndarray] = None

        starts = np.asarray(start_times_s if start_times_s is not None else np.zeros(self.n), dtype=float)
        if len(starts) != self.n:
            raise ValueError("start_times length mismatch")
        self.start_times = starts

        # Mirrors of per-flow CCA outputs (refreshed at round boundaries).
        self.cwnd = np.array([f.cwnd for f in self.flows])
        self.pacing = np.full(self.n, np.nan)
        self.cap = np.full(self.n, np.inf)

        # Round bookkeeping.
        self.next_round = starts + base_rtt_s
        self.round_delivered = np.zeros(self.n)
        self.round_lost = np.zeros(self.n)
        self.round_started_at = starts.copy()

        # Totals.
        self.delivered_total = np.zeros(self.n)
        self.dropped_total = np.zeros(self.n)

        # Passive per-step sampling seam (see set_sample_hook).
        self._sample_hook = None
        self._sample_every = 1
        self._sample_count = 0

    # -- one step ----------------------------------------------------------------

    def _rates(self, rtt_eff: np.ndarray, started: np.ndarray) -> np.ndarray:
        window_rate = self.cwnd / rtt_eff
        x = np.where(np.isnan(self.pacing), window_rate, self.pacing)
        # BBR inflight cap: wire inflight ~ x*base_rtt plus our queue share.
        capped = np.isfinite(self.cap)
        if capped.any():
            allowed = np.maximum(0.0, (self.cap - self.aqm.backlog) / self.base_rtt)
            x = np.where(capped, np.minimum(x, allowed), x)
        return np.where(started, x, 0.0)

    def step(self) -> None:
        """Advance one dt: rates, AQM, accumulators, due round_updates."""
        started = self.start_times <= self.now
        rtt_eff = self.base_rtt + self.aqm.flow_delay_s()
        x = self._rates(rtt_eff, started)
        arrivals = x * self.dt
        if self._arrival_noise is not None:
            b = self.burst_pkts
            u = self._arrival_noise.next_row()
            arrivals = poisson_from_uniform(arrivals / b, u) * b
        delivered, dropped = self.aqm.step(arrivals, self.dt, self.now)

        self.delivered_total += delivered
        self.dropped_total += dropped
        self.round_delivered += delivered
        self.round_lost += dropped
        self.now += self.dt

        due = started & (self.now >= self.next_round)
        if due.any():
            rtt_after = self.base_rtt + self.aqm.flow_delay_s()
            for i in np.nonzero(due)[0]:
                flow = self.flows[i]
                span = max(self.now - self.round_started_at[i], self.dt)
                info = RoundInfo(
                    now_s=self.now,
                    rtt_s=float(rtt_after[i]),
                    base_rtt_s=self.base_rtt,
                    delivered=float(self.round_delivered[i]),
                    lost=float(self.round_lost[i]),
                    delivery_rate_pps=float(self.round_delivered[i] / span),
                    inflight=float(x[i] * self.base_rtt + self.aqm.backlog[i]),
                )
                flow.round_update(info)
                self.cwnd[i] = flow.cwnd
                self.pacing[i] = flow.pacing_pps if flow.pacing_pps is not None else np.nan
                self.cap[i] = flow.inflight_cap
                self.round_delivered[i] = 0.0
                self.round_lost[i] = 0.0
                self.round_started_at[i] = self.now
                self.next_round[i] = self.now + float(rtt_after[i])

        if self._sample_hook is not None:
            self._sample_count += 1
            if self._sample_count % self._sample_every == 0:
                self._sample_hook(self)

    def set_sample_hook(self, hook, every_steps: int) -> None:
        """Install a read-only observer called every ``every_steps`` steps.

        The hook receives the simulation *after* the step completes (time
        already advanced, round updates applied).  It must only read
        state — the fairness probe contract that keeps sampled and
        unsampled integrations bit-identical.
        """
        if every_steps < 1:
            raise ValueError(f"every_steps must be >= 1, got {every_steps}")
        self._sample_hook = hook
        self._sample_every = every_steps
        self._sample_count = 0

    def run(self, duration_s: float) -> None:
        """Integrate until ``duration_s`` of model time has elapsed."""
        end = self.now + duration_s
        while self.now < end - 1e-12:
            self.step()

    # -- outputs -----------------------------------------------------------------

    def begin_measurement(self) -> None:
        """Mark the start of the measurement window (end of warmup).

        Delivery before this point — slow-start transients, staggered
        flow starts — is excluded from :attr:`measured_delivered` and
        :meth:`measured_throughput_pps`, matching the post-warmup
        convention the packet engine and ``analysis`` use.
        """
        self._measure_start_s = self.now
        self._measure_delivered = self.delivered_total.copy()

    @property
    def measured_delivered(self) -> np.ndarray:
        """Per-flow segments delivered since :meth:`begin_measurement`."""
        if self._measure_delivered is None:
            return self.delivered_total.copy()
        return self.delivered_total - self._measure_delivered

    def measured_throughput_pps(self) -> np.ndarray:
        """Per-flow delivery rate (segments/s) over the measurement window.

        Unlike :meth:`throughput_pps`, this excludes everything before
        :meth:`begin_measurement` — both the delivered packets and the
        elapsed time — so warmup cannot dilute (or inflate) the rate.
        """
        start = self._measure_start_s if self._measure_start_s is not None else 0.0
        window = self.now - start
        if window <= 0:
            return np.zeros(self.n)
        return self.measured_delivered / window

    def throughput_pps(self, duration_s: float) -> np.ndarray:
        """Per-flow delivery rate (segments/s) averaged over ``duration_s``.

        This divides the run's *total* delivery by the caller-supplied
        duration — if the run included a warmup, warmup traffic is
        counted and the result is NOT the steady-state rate.  Use
        :meth:`begin_measurement` + :meth:`measured_throughput_pps` for
        the post-warmup convention.
        """
        return self.delivered_total / duration_s
