"""Batched fluid backend: advance a whole shard of configs in lock-step.

Every per-flow quantity of the scalar integrator becomes a
``(n_configs, n_flows)`` matrix; the CCA round updates and AQM drop laws
become masked element-wise array ops over those blocks.  The scalar path
(:mod:`repro.fluid.model` + the rule classes) remains the **oracle**:
for every CCA x AQM cell the batched backend reproduces its per-flow
results bit-for-bit (``tests/fluid/test_batched_vs_scalar.py``), which
is what licenses using the fast path for the paper's 810 x 5 grid.

The bitwise contract rests on three properties:

1. all randomness is positionally consumed from per-config streams
   (:mod:`repro.fluid.noise`), so draws do not depend on batch
   composition;
2. every arithmetic expression is either IEEE-exact (``+ - * /``,
   comparisons) or routed through the same numpy kernel in both paths
   (``exp/log/sqrt/cbrt/power``) — the shared laws live in
   :mod:`repro.fluid.cca_rules` / :mod:`repro.fluid.aqm_rules`;
3. the rare per-lane draws of the BBR state machines (collapse lottery,
   cycle randomization) come from per-*flow* streams, so interleaving
   many configs cannot reorder any one lane's draw sequence.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.fluid.aqm_rules import (
    evict_fattest,
    red_drop_probability,
    red_ewma_gain,
    pie_probability_step,
    shared_queue_serve,
    waterfill_rows,
)
from repro.fluid.cca_rules import (
    BBR_CWND_GAIN,
    BBR_CYCLE,
    BBR_DRAIN_GAIN,
    BBR_HIGH_GAIN,
    BBR_RING,
    BBR2_BETA,
    BBR2_DRAIN_GAIN,
    BBR2_HEADROOM,
    BBR2_LOSS_THRESH,
    BBR2_STARTUP_GAIN,
    CUBIC_FRIENDLY_INC,
    INIT_CWND,
    RATE_FLOOR_PPS,
    aimd_backoff,
    bbr_bdp,
    cubic_epoch_k,
    cubic_epoch_origin,
    cubic_target,
    cubic_wmax_after_loss,
    htcp_adaptive_beta,
    htcp_alpha,
    htcp_bw_stable,
    hystart_exit_eta,
    slow_start_next,
)
from repro.fluid.model import DEFAULT_STEPS_PER_RTT
from repro.fluid.noise import BatchUniformTable, poisson_from_uniform
from repro.fluid.runner import (
    FluidGeometry,
    build_fluid_result,
    flow_cca_names,
    fluid_geometry,
)
from repro.fluid.state import (
    CCA_CODE,
    RATE_BASED_CODES,
    canonical_aqm_family,
    plan_shards,
    shard_key,
    shard_widths,
)
from repro.metrics.summary import ExperimentResult
from repro.sim.rng import RngStreams

# BBR state machine lane codes.
S_STARTUP, S_DRAIN, S_PROBE_BW, S_PROBE_RTT = 0, 1, 2, 3
P_DOWN, P_CRUISE, P_UP = 0, 1, 2
_CYCLE_ARR = np.asarray(BBR_CYCLE)

_RENO_BETA = 0.5


# --- batched AQMs ------------------------------------------------------------


class _BatchAqm:
    """Per-shard AQM state: one row of flow backlogs per config."""

    def __init__(self, limit: np.ndarray, capacity: np.ndarray, n_configs: int, width: int):
        self.limit = limit
        self.capacity = capacity
        self.backlog = np.zeros((n_configs, width))
        self.total_dropped = np.zeros(n_configs)

    def step(self, arrivals: np.ndarray, dt: float, now_s: float) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def flow_delay_s(self) -> np.ndarray:
        delay = self.backlog.sum(axis=1) / self.capacity
        return np.broadcast_to(delay[:, None], self.backlog.shape)

    def _serve(self, accepted: np.ndarray, dt: float) -> Tuple[np.ndarray, np.ndarray]:
        served, backlog, tail = shared_queue_serve(
            self.backlog, accepted, self.capacity * dt, self.limit
        )
        self.backlog = backlog
        self.total_dropped += tail.sum(axis=1)
        return served, tail


class _BatchFifo(_BatchAqm):
    def step(self, arrivals, dt, now_s):
        return self._serve(arrivals, dt)


class _BatchRed(_BatchAqm):
    def __init__(self, limit, capacity, n_configs, width, lottery, params: Sequence[dict]):
        super().__init__(limit, capacity, n_configs, width)
        self.lottery = lottery
        min_th, max_th, max_p, weight, gentle = [], [], [], [], []
        for c, p in enumerate(params):
            lim = float(limit[c])
            mn = p.get("min_th")
            mn = float(mn) if mn is not None else max(1.0, min(30.0, lim / 3.0))
            mx = p.get("max_th")
            mx = float(mx) if mx is not None else max(mn + 1.0, min(90.0, lim * 0.75))
            min_th.append(mn)
            max_th.append(mx)
            max_p.append(float(p.get("max_p", 0.02)))
            weight.append(float(p.get("weight", 0.002)))
            gentle.append(bool(p.get("gentle", True)))
        self.min_th = np.asarray(min_th)
        self.max_th = np.asarray(max_th)
        self.max_p = np.asarray(max_p)
        self.weight = np.asarray(weight)
        self.gentle = np.asarray(gentle)
        self.avg = np.zeros(n_configs)

    def step(self, arrivals, dt, now_s):
        u = self.lottery.next_block()
        n_arr = arrivals.sum(axis=1)
        exponent = np.where(n_arr > 0, n_arr, self.capacity * dt)
        w_eff = red_ewma_gain(self.weight, exponent)
        self.avg += w_eff * (self.backlog.sum(axis=1) - self.avg)
        p = red_drop_probability(self.avg, self.min_th, self.max_th, self.max_p, self.gentle)
        p_eff = np.minimum(1.0, 2.0 * p)
        # lam == 0 maps to 0 drops, so inactive-ramp rows need no gating.
        early = np.minimum(arrivals, poisson_from_uniform(arrivals * p_eff[:, None], u))
        self.total_dropped += early.sum(axis=1)
        served, tail = self._serve(arrivals - early, dt)
        return served, early + tail


class _BatchPie(_BatchAqm):
    TARGET_S = 0.015
    T_UPDATE_S = 0.015
    ALPHA = 0.125
    BETA = 1.25

    def __init__(self, limit, capacity, n_configs, width, lottery):
        super().__init__(limit, capacity, n_configs, width)
        self.lottery = lottery
        self.drop_prob = np.zeros(n_configs)
        self.qdelay_old_s = np.zeros(n_configs)
        self._since_update_s = 0.0

    def step(self, arrivals, dt, now_s):
        u = self.lottery.next_block()
        self._since_update_s += dt
        while self._since_update_s >= self.T_UPDATE_S:
            self._since_update_s -= self.T_UPDATE_S
            qdelay = self.backlog.sum(axis=1) / self.capacity
            self.drop_prob = pie_probability_step(
                self.drop_prob, qdelay, self.qdelay_old_s,
                self.TARGET_S, self.ALPHA, self.BETA,
            )
            self.qdelay_old_s = qdelay
        early = np.minimum(
            arrivals, poisson_from_uniform(arrivals * self.drop_prob[:, None], u)
        )
        self.total_dropped += early.sum(axis=1)
        served, tail = self._serve(arrivals - early, dt)
        return served, early + tail


class _BatchFqCodel(_BatchAqm):
    TARGET_S = 0.005
    INTERVAL_S = 0.100

    def __init__(self, limit, capacity, n_configs, width, n_real: Sequence[int]):
        super().__init__(limit, capacity, n_configs, width)
        self.n_real = [int(n) for n in n_real]
        self.above_since = np.full((n_configs, width), -1.0)
        self.count = np.zeros((n_configs, width))
        self.drop_credit = np.zeros((n_configs, width))

    def step(self, arrivals, dt, now_s):
        supply = self.backlog + arrivals
        served = waterfill_rows(supply, self.capacity * dt)
        backlog = supply - served

        active = backlog > 1e-9
        n_active = np.maximum(1, active.sum(axis=1))
        share_pps = self.capacity / n_active
        sojourn = backlog / share_pps[:, None]

        above = (sojourn > self.TARGET_S) & (backlog > 1.0)
        fresh = above & (self.above_since < 0)
        above_since = np.where(fresh, now_s, self.above_since)
        above_since = np.where(above, above_since, -1.0)
        count = np.where(above, self.count, np.floor(self.count / 2.0))
        credit = np.where(above, self.drop_credit, 0.0)

        dropping = above & (now_s - above_since >= self.INTERVAL_S)
        rate = np.sqrt(count + 1.0) / self.INTERVAL_S
        credit = np.where(dropping, credit + rate * dt, credit)
        drops = np.where(dropping, np.floor(credit), 0.0)
        credit = credit - drops
        drops = np.minimum(drops, backlog)
        count = count + drops
        backlog = backlog - drops

        # Shared memory limit: evict from the fattest flows.  Eviction is
        # done over each config's real columns so the argsort permutation
        # matches the scalar oracle's.
        excess = backlog.sum(axis=1) - self.limit
        for c in np.nonzero(excess > 1e-12)[0]:
            n = self.n_real[c]
            evict_fattest(
                backlog[c, :n], drops[c, :n], float(self.limit[c]), float(excess[c]), n
            )

        self.backlog = backlog
        self.above_since = above_since
        self.count = count
        self.drop_credit = credit
        self.total_dropped += drops.sum(axis=1)
        return served, drops

    def flow_delay_s(self) -> np.ndarray:
        active = self.backlog > 1e-9
        n_active = np.maximum(1, active.sum(axis=1))
        share_pps = self.capacity / n_active
        return self.backlog / share_pps[:, None]


# --- the batched integrator --------------------------------------------------


class BatchedFluidSimulation:
    """Lock-step integrator over one shard of compatible configs.

    All configs must share the shard key (AQM family, base RTT, duration,
    warmup — and flow count unless ``pad=True``); see
    :func:`repro.fluid.state.plan_shards`.
    """

    def __init__(self, configs: Sequence[ExperimentConfig], *, pad: bool = False):
        if not configs:
            raise ValueError("need at least one config")
        keys = {shard_key(c, pad=pad) for c in configs}
        if len(keys) > 1:
            raise ValueError(f"configs are not shard-compatible: {sorted(map(str, keys))}")
        self.configs = list(configs)
        self.pad = pad
        self.geoms: List[FluidGeometry] = [fluid_geometry(c) for c in configs]
        widths, width = shard_widths(configs, range(len(configs)))
        self.widths = widths
        C, W = len(configs), width
        self.C, self.W = C, W

        geom0 = self.geoms[0]
        self.base_rtt = geom0.base_rtt_s
        self.steps_per_rtt = DEFAULT_STEPS_PER_RTT
        self.dt = self.base_rtt / self.steps_per_rtt
        self.burst_pkts = 4
        self.now = 0.0

        self.capacity = np.asarray([g.capacity_pps for g in self.geoms])
        limit = np.asarray([g.limit_pkts for g in self.geoms])
        if (self.capacity <= 0).any() or (limit <= 0).any():
            raise ValueError("limit and capacity must be positive")

        # Per-config streams; same names the scalar runner uses.
        self._rngs = [RngStreams(c.seed) for c in configs]

        # Lane layout: CCA codes, active mask, start times (padded lanes
        # never start), per-lane draw streams created lazily on first use.
        from repro.cca.registry import canonical_cca_name

        self.cca_code = np.full((C, W), -1, dtype=np.int64)
        self.active = np.zeros((C, W), dtype=bool)
        starts = np.full((C, W), np.inf)
        for c, config in enumerate(configs):
            n = widths[c]
            names = flow_cca_names(config, n)
            self.cca_code[c, :n] = [CCA_CODE[canonical_cca_name(x)] for x in names]
            self.active[c, :n] = True
            starts[c, :n] = self._rngs[c].stream("flow-start").uniform(0.0, 0.1, size=n)
        self.start_times = starts
        self._codes_present = sorted(set(self.cca_code[self.active].tolist()))

        # Arrival noise: one positional uniform per (config, flow, step).
        chunk = max(8, min(512, 4_000_000 // max(1, C * W)))
        self._arrival_noise = BatchUniformTable(
            [r.stream("arrivals") for r in self._rngs], widths, W, chunk_steps=chunk
        )

        self.aqm = self._make_aqm(limit, chunk)

        # Shared CCA outputs.
        self.cwnd = np.full((C, W), INIT_CWND)
        self.ssthresh = np.full((C, W), np.inf)
        self.pacing = np.full((C, W), np.nan)
        self.cap = np.full((C, W), np.inf)

        # Round bookkeeping.
        self.next_round = starts + self.base_rtt
        self.round_delivered = np.zeros((C, W))
        self.round_lost = np.zeros((C, W))
        self.round_started_at = starts.copy()
        self.delivered_total = np.zeros((C, W))
        self.dropped_total = np.zeros((C, W))

        # Per-family state blocks (allocated only for present families).
        if CCA_CODE["cubic"] in self._codes_present:
            self.cu_w_max = np.zeros((C, W))
            self.cu_epoch = np.full((C, W), np.nan)
            self.cu_k = np.zeros((C, W))
            self.cu_origin = np.zeros((C, W))
            self.cu_w_est = np.zeros((C, W))
        if CCA_CODE["htcp"] in self._codes_present:
            self.ht_last_cong = np.full((C, W), np.nan)
            self.ht_rtt_min = np.full((C, W), np.inf)
            self.ht_rtt_max = np.zeros((C, W))
            self.ht_beta = np.full((C, W), 0.5)
            self.ht_max_bw = np.zeros((C, W))
            self.ht_old_max_bw = np.zeros((C, W))
            self.ht_modeswitch = np.zeros((C, W), dtype=bool)
        if RATE_BASED_CODES & set(self._codes_present):
            self.bb_state = np.zeros((C, W), dtype=np.int64)
            self.bb_ring = np.zeros((C, W, BBR_RING))
            self.bb_pos = np.zeros((C, W), dtype=np.int64)
            self.bb_min_rtt = np.full((C, W), np.inf)
            self.bb_min_rtt_stamp = np.zeros((C, W))
            self.bb_full_bw = np.zeros((C, W))
            self.bb_full_bw_count = np.zeros((C, W), dtype=np.int64)
            self.bb_cycle_index = np.full((C, W), 2, dtype=np.int64)
            self.bb_cycle_stamp = np.zeros((C, W))
            self.bb_probe_until = np.full((C, W), np.nan)
        if CCA_CODE["bbrv2"] in self._codes_present:
            self.b2_inflight_hi = np.full((C, W), np.inf)
            self.b2_phase = np.zeros((C, W), dtype=np.int64)
            self.b2_phase_stamp = np.zeros((C, W))

        # Lazily created per-lane draw generators (BBR lotteries).
        self._gen_cache: dict = {}

        # Measurement window.
        self._measure_delivered: Optional[np.ndarray] = None

        # Passive per-step sampling seam (see set_sample_hook).
        self._sample_hook = None
        self._sample_every = 1
        self._sample_count = 0

    # -- construction helpers --------------------------------------------------

    def _make_aqm(self, limit: np.ndarray, chunk: int) -> _BatchAqm:
        family = canonical_aqm_family(self.configs[0].aqm)
        C, W = self.C, self.W
        if family == "fifo":
            return _BatchFifo(limit, self.capacity, C, W)
        if family == "fq_codel":
            return _BatchFqCodel(limit, self.capacity, C, W, self.widths)
        lottery = BatchUniformTable(
            [r.stream("aqm") for r in self._rngs], self.widths, W, chunk_steps=chunk
        )
        if family == "red":
            params = [c.aqm_params for c in self.configs]
            return _BatchRed(limit, self.capacity, C, W, lottery, params)
        if family == "pie":
            return _BatchPie(limit, self.capacity, C, W, lottery)
        raise ValueError(f"unknown AQM family {family!r}")

    def _lane_gen(self, c: int, f: int) -> np.random.Generator:
        key = (c, f)
        gen = self._gen_cache.get(key)
        if gen is None:
            gen = self._rngs[c].stream(f"cca-flow{f}")
            self._gen_cache[key] = gen
        return gen

    # -- stepping --------------------------------------------------------------

    def _rates(self, rtt_eff: np.ndarray, started: np.ndarray) -> np.ndarray:
        window_rate = self.cwnd / rtt_eff
        x = np.where(np.isnan(self.pacing), window_rate, self.pacing)
        capped = np.isfinite(self.cap)
        if capped.any():
            allowed = np.maximum(0.0, (self.cap - self.aqm.backlog) / self.base_rtt)
            x = np.where(capped, np.minimum(x, allowed), x)
        return np.where(started, x, 0.0)

    def step(self) -> None:
        """Advance every config in the shard by one ``dt`` tick."""
        started = self.start_times <= self.now
        rtt_eff = self.base_rtt + self.aqm.flow_delay_s()
        x = self._rates(rtt_eff, started)
        arrivals = x * self.dt
        b = self.burst_pkts
        u = self._arrival_noise.next_block()
        arrivals = poisson_from_uniform(arrivals / b, u) * b
        delivered, dropped = self.aqm.step(arrivals, self.dt, self.now)

        self.delivered_total += delivered
        self.dropped_total += dropped
        self.round_delivered += delivered
        self.round_lost += dropped
        self.now += self.dt

        due = started & (self.now >= self.next_round)
        if due.any():
            self._round_updates(due, x)

        if self._sample_hook is not None:
            self._sample_count += 1
            if self._sample_count % self._sample_every == 0:
                self._sample_hook(self)

    def set_sample_hook(self, hook, every_steps: int) -> None:
        """Install a read-only observer called every ``every_steps`` steps.

        Same contract as the scalar integrator's hook: the observer runs
        after the step completes and must not mutate state or consume
        randomness, so sampled and unsampled shards stay bit-identical.
        """
        if every_steps < 1:
            raise ValueError(f"every_steps must be >= 1, got {every_steps}")
        self._sample_hook = hook
        self._sample_every = every_steps
        self._sample_count = 0

    def _round_updates(self, due: np.ndarray, x: np.ndarray) -> None:
        now = self.now
        rtt_after = self.base_rtt + self.aqm.flow_delay_s()
        ci, fi = np.nonzero(due)
        span = np.maximum(now - self.round_started_at[ci, fi], self.dt)
        delivered = self.round_delivered[ci, fi]
        lost = self.round_lost[ci, fi]
        delivery_rate = delivered / span
        inflight = x[ci, fi] * self.base_rtt + self.aqm.backlog[ci, fi]
        total = delivered + lost
        loss_rate = np.divide(lost, total, out=np.zeros_like(lost), where=total > 0)
        rtt = rtt_after[ci, fi]

        codes = self.cca_code[ci, fi]
        for code in self._codes_present:
            sel = codes == code
            if not sel.any():
                continue
            args = (
                ci[sel], fi[sel], now, rtt[sel], delivery_rate[sel],
                inflight[sel], loss_rate[sel], delivered[sel], lost[sel],
            )
            if code == CCA_CODE["reno"]:
                self._round_reno(*args)
            elif code == CCA_CODE["cubic"]:
                self._round_cubic(*args)
            elif code == CCA_CODE["htcp"]:
                self._round_htcp(*args)
            elif code == CCA_CODE["bbrv1"]:
                self._round_bbrv1(*args)
            else:
                self._round_bbrv2(*args)

        self.round_delivered[ci, fi] = 0.0
        self.round_lost[ci, fi] = 0.0
        self.round_started_at[ci, fi] = now
        self.next_round[ci, fi] = now + rtt

    # -- CCA kernels -----------------------------------------------------------
    #
    # Each kernel gathers the due lanes of its CCA into compact 1D arrays,
    # applies the scalar rule class's update (same expressions, element-
    # wise), and scatters the results back — so per-step cost scales with
    # how many lanes actually finished a round, not with the shard size.

    def _round_reno(self, ci, fi, now, rtt, rate, inflight, loss_rate, delivered, lost):
        cwnd = self.cwnd[ci, fi]
        ssth = self.ssthresh[ci, fi]
        loss = lost > 0
        slow = ~loss & (cwnd < ssth)
        ss_new = aimd_backoff(cwnd, _RENO_BETA)
        ssth = np.where(loss, ss_new, ssth)
        cwnd = np.where(
            loss, ss_new, np.where(slow, slow_start_next(cwnd, ssth), cwnd + 1.0)
        )
        self.ssthresh[ci, fi] = ssth
        self.cwnd[ci, fi] = cwnd

    def _round_cubic(self, ci, fi, now, rtt, rate, inflight, loss_rate, delivered, lost):
        cwnd = self.cwnd[ci, fi]
        ssth = self.ssthresh[ci, fi]
        w_max = self.cu_w_max[ci, fi]
        epoch = self.cu_epoch[ci, fi]
        k = self.cu_k[ci, fi]
        origin = self.cu_origin[ci, fi]
        w_est = self.cu_w_est[ci, fi]

        loss = lost > 0
        w_max = np.where(loss, cubic_wmax_after_loss(cwnd, w_max), w_max)
        ss_new = aimd_backoff(cwnd, 0.7)
        ssth = np.where(loss, ss_new, ssth)
        cwnd = np.where(loss, ss_new, cwnd)
        epoch = np.where(loss, np.nan, epoch)

        surv = ~loss
        in_ss = surv & (cwnd < ssth)
        eta = hystart_exit_eta(self.base_rtt)
        exit_ss = in_ss & (rtt >= self.base_rtt + eta) & (cwnd >= 16)
        ssth = np.where(exit_ss, cwnd, ssth)
        stay = in_ss & ~exit_ss
        cwnd = np.where(stay, slow_start_next(cwnd, ssth), cwnd)

        ca = surv & ~stay
        init = ca & np.isnan(epoch)
        epoch = np.where(init, now, epoch)
        k = np.where(init, cubic_epoch_k(cwnd, w_max), k)
        origin = np.where(init, cubic_epoch_origin(cwnd, w_max), origin)
        w_est = np.where(init, cwnd, w_est)
        with np.errstate(invalid="ignore"):
            t = now - epoch + rtt
            target = cubic_target(origin, k, t)
            inc = np.where(target > cwnd, target - cwnd, 0.01)
        cwnd = np.where(ca, cwnd + inc, cwnd)
        w_est = np.where(ca, w_est + CUBIC_FRIENDLY_INC, w_est)
        cwnd = np.where(ca & (w_est > cwnd), w_est, cwnd)

        self.cwnd[ci, fi] = cwnd
        self.ssthresh[ci, fi] = ssth
        self.cu_w_max[ci, fi] = w_max
        self.cu_epoch[ci, fi] = epoch
        self.cu_k[ci, fi] = k
        self.cu_origin[ci, fi] = origin
        self.cu_w_est[ci, fi] = w_est

    def _round_htcp(self, ci, fi, now, rtt, rate, inflight, loss_rate, delivered, lost):
        cwnd = self.cwnd[ci, fi]
        ssth = self.ssthresh[ci, fi]
        last_cong = self.ht_last_cong[ci, fi]
        rtt_min = np.minimum(self.ht_rtt_min[ci, fi], rtt)
        rtt_max = np.maximum(self.ht_rtt_max[ci, fi], rtt)
        beta = self.ht_beta[ci, fi]
        max_bw = np.maximum(self.ht_max_bw[ci, fi], rate)
        old_max_bw = self.ht_old_max_bw[ci, fi]
        modeswitch = self.ht_modeswitch[ci, fi]

        loss = lost > 0
        slow = ~loss & (cwnd < ssth)
        ca = ~loss & ~slow

        if loss.any():
            stable = htcp_bw_stable(max_bw, old_max_bw)
            adaptive = stable & modeswitch & (rtt_max > 0) & np.isfinite(rtt_min)
            beta_new = np.where(
                stable,
                np.where(adaptive, htcp_adaptive_beta(rtt_min, rtt_max), 0.5),
                0.5,
            )
            beta = np.where(loss, beta_new, beta)
            # Scalar rule: unstable resets the switch; stable arms (or
            # keeps) it whether or not the adaptive branch fired.
            modeswitch = np.where(loss, stable, modeswitch)
            old_max_bw = np.where(loss, max_bw, old_max_bw)
            max_bw = np.where(loss, 0.0, max_bw)
            ss_new = aimd_backoff(cwnd, beta)
            ssth = np.where(loss, ss_new, ssth)
            cwnd = np.where(loss, ss_new, cwnd)
            last_cong = np.where(loss, now, last_cong)
            rtt_min = np.where(loss, np.inf, rtt_min)
            rtt_max = np.where(loss, 0.0, rtt_max)

        cwnd = np.where(slow, slow_start_next(cwnd, ssth), cwnd)
        if ca.any():
            alpha = htcp_alpha(now - last_cong, beta)
            cwnd = np.where(ca, cwnd + alpha, cwnd)

        self.cwnd[ci, fi] = cwnd
        self.ssthresh[ci, fi] = ssth
        self.ht_last_cong[ci, fi] = last_cong
        self.ht_rtt_min[ci, fi] = rtt_min
        self.ht_rtt_max[ci, fi] = rtt_max
        self.ht_beta[ci, fi] = beta
        self.ht_max_bw[ci, fi] = max_bw
        self.ht_old_max_bw[ci, fi] = old_max_bw
        self.ht_modeswitch[ci, fi] = modeswitch

    def _round_bbrv1(self, ci, fi, now, rtt, rate, inflight, loss_rate, delivered, lost):
        cwnd = self.cwnd[ci, fi]
        pacing = self.pacing[ci, fi]
        cap = self.cap[ci, fi]
        state = self.bb_state[ci, fi]
        ring = self.bb_ring[ci, fi, :]
        pos = self.bb_pos[ci, fi]
        min_rtt = self.bb_min_rtt[ci, fi]
        min_stamp = self.bb_min_rtt_stamp[ci, fi]
        full_bw = self.bb_full_bw[ci, fi]
        full_cnt = self.bb_full_bw_count[ci, fi]
        cyc_idx = self.bb_cycle_index[ci, fi]
        cyc_stamp = self.bb_cycle_stamp[ci, fi]
        probe_until = self.bb_probe_until[ci, fi]

        # Rare RTO-like collapse lottery, drawn from each lane's own stream.
        for j in np.nonzero(loss_rate > 0.4)[0]:
            if self._lane_gen(int(ci[j]), int(fi[j])).random() < 0.03:
                full_bw[j] = 0.0
                full_cnt[j] = 0
                ring[j, :] = 0.0
                ring[j, pos[j]] = RATE_FLOOR_PPS
                pacing[j] = RATE_FLOOR_PPS
                state[j] = S_STARTUP

        upd = rtt < min_rtt
        min_rtt = np.where(upd, rtt, min_rtt)
        min_stamp = np.where(upd, now, min_stamp)
        push = rate > 0
        if push.any():
            jj = np.nonzero(push)[0]
            pos[jj] = (pos[jj] + 1) % BBR_RING
            ring[jj, pos[jj]] = rate[jj]
        bw = ring.max(axis=1)
        bdp = bbr_bdp(bw, min_rtt)

        st = state == S_STARTUP
        grew = st & (bw >= full_bw * 1.25)
        full_bw = np.where(grew, bw, full_bw)
        full_cnt = np.where(grew, 0, np.where(st, full_cnt + 1, full_cnt))
        state = np.where(st & (full_cnt >= 3), S_DRAIN, state)

        exit_d = (state == S_DRAIN) & (inflight <= bdp)
        if exit_d.any():
            for j in np.nonzero(exit_d)[0]:
                cyc_idx[j] = int(self._lane_gen(int(ci[j]), int(fi[j])).integers(2, 8))
            state = np.where(exit_d, S_PROBE_BW, state)
            cyc_stamp = np.where(exit_d, now, cyc_stamp)

        pb = state == S_PROBE_BW
        adv = pb & (now - cyc_stamp > np.maximum(min_rtt, 1e-3))
        cyc_idx = np.where(adv, (cyc_idx + 1) % len(BBR_CYCLE), cyc_idx)
        cyc_stamp = np.where(adv, now, cyc_stamp)
        to_pr = pb & (now - min_stamp > 10.0)
        state = np.where(to_pr, S_PROBE_RTT, state)
        probe_until = np.where(to_pr, now + 0.2, probe_until)

        exit_pr = (state == S_PROBE_RTT) & (now >= probe_until)
        min_stamp = np.where(exit_pr, now, min_stamp)
        state = np.where(exit_pr, S_PROBE_BW, state)
        cyc_stamp = np.where(exit_pr, now, cyc_stamp)

        gain = np.where(
            state == S_STARTUP, BBR_HIGH_GAIN,
            np.where(
                state == S_DRAIN, BBR_DRAIN_GAIN,
                np.where(state == S_PROBE_RTT, 1.0, _CYCLE_ARR[cyc_idx]),
            ),
        )
        cap_gain = np.where(
            (state == S_STARTUP) | (state == S_DRAIN), BBR_HIGH_GAIN,
            np.where(state == S_PROBE_RTT, 0.5, BBR_CWND_GAIN),
        )
        have_bw = bw > 0
        pacing = np.where(have_bw, np.maximum(RATE_FLOOR_PPS, gain * bw), np.nan)
        cap = np.where(have_bw, np.maximum(4.0, cap_gain * bdp), cap)
        cwnd = np.where(have_bw, cwnd, np.minimum(cwnd * 2.0, 1e9))

        self.cwnd[ci, fi] = cwnd
        self.pacing[ci, fi] = pacing
        self.cap[ci, fi] = cap
        self.bb_state[ci, fi] = state
        self.bb_ring[ci, fi, :] = ring
        self.bb_pos[ci, fi] = pos
        self.bb_min_rtt[ci, fi] = min_rtt
        self.bb_min_rtt_stamp[ci, fi] = min_stamp
        self.bb_full_bw[ci, fi] = full_bw
        self.bb_full_bw_count[ci, fi] = full_cnt
        self.bb_cycle_index[ci, fi] = cyc_idx
        self.bb_cycle_stamp[ci, fi] = cyc_stamp
        self.bb_probe_until[ci, fi] = probe_until

    def _round_bbrv2(self, ci, fi, now, rtt, rate, inflight, loss_rate, delivered, lost):
        cwnd = self.cwnd[ci, fi]
        cap = self.cap[ci, fi]
        state = self.bb_state[ci, fi]
        ring = self.bb_ring[ci, fi, :]
        pos = self.bb_pos[ci, fi]
        min_rtt = self.bb_min_rtt[ci, fi]
        min_stamp = self.bb_min_rtt_stamp[ci, fi]
        full_bw = self.bb_full_bw[ci, fi]
        full_cnt = self.bb_full_bw_count[ci, fi]
        probe_until = self.bb_probe_until[ci, fi]
        hi = self.b2_inflight_hi[ci, fi]
        phase = self.b2_phase[ci, fi]
        phase_stamp = self.b2_phase_stamp[ci, fi]

        upd = rtt < min_rtt
        min_rtt = np.where(upd, rtt, min_rtt)
        min_stamp = np.where(upd, now, min_stamp)
        push = rate > 0
        if push.any():
            jj = np.nonzero(push)[0]
            pos[jj] = (pos[jj] + 1) % BBR_RING
            ring[jj, pos[jj]] = rate[jj]
        bw = ring.max(axis=1)
        bdp = bbr_bdp(bw, min_rtt)

        high_loss = (loss_rate >= BBR2_LOSS_THRESH) & (lost >= 2)
        if high_loss.any():
            fin = np.isfinite(hi)
            base = np.where(fin, hi, np.maximum(inflight, bdp))
            new_hi = np.maximum(
                4.0, np.minimum(base, np.maximum(inflight, 4.0)) * BBR2_BETA
            )
            hi = np.where(high_loss, new_hi, hi)

        st = state == S_STARTUP
        grew = st & (bw >= full_bw * 1.25)
        full_bw = np.where(grew, bw, full_bw)
        full_cnt = np.where(grew, 0, np.where(st, full_cnt + 1, full_cnt))
        state = np.where(st & ((full_cnt >= 3) | high_loss), S_DRAIN, state)

        exit_d = (state == S_DRAIN) & (inflight <= bdp)
        state = np.where(exit_d, S_PROBE_BW, state)
        phase = np.where(exit_d, P_DOWN, phase)
        phase_stamp = np.where(exit_d, now, phase_stamp)

        pb = state == S_PROBE_BW
        # Snapshot the phase so the DOWN/CRUISE/UP arms stay elif-exclusive
        # within one round, like the scalar state machine.
        ph0 = phase.copy()
        fin = np.isfinite(hi)
        bound = np.where(fin, hi * (1 - BBR2_HEADROOM), np.inf)
        down = pb & (ph0 == P_DOWN)
        to_cruise = down & (inflight <= np.maximum(4.0, np.minimum(bdp, bound)))
        if to_cruise.any():
            for j in np.nonzero(to_cruise)[0]:
                phase_stamp[j] = now + float(
                    self._lane_gen(int(ci[j]), int(fi[j])).uniform(-0.5, 0.5)
                )
            phase = np.where(to_cruise, P_CRUISE, phase)
        cruise = pb & (ph0 == P_CRUISE)
        to_up = cruise & (now - phase_stamp > 2.5)
        phase = np.where(to_up, P_UP, phase)
        phase_stamp = np.where(to_up, now, phase_stamp)
        up = pb & (ph0 == P_UP)
        grow = up & np.isfinite(hi) & ~high_loss
        hi = np.where(grow, hi + np.maximum(1.0, delivered), hi)
        to_down = up & (
            high_loss | (now - phase_stamp > 4 * np.maximum(min_rtt, 1e-3))
        )
        phase = np.where(to_down, P_DOWN, phase)
        phase_stamp = np.where(to_down, now, phase_stamp)
        to_pr = pb & (now - min_stamp > 5.0)
        state = np.where(to_pr, S_PROBE_RTT, state)
        probe_until = np.where(to_pr, now + 0.2, probe_until)

        exit_pr = (state == S_PROBE_RTT) & (now >= probe_until)
        min_stamp = np.where(exit_pr, now, min_stamp)
        state = np.where(exit_pr, S_PROBE_BW, state)
        phase = np.where(exit_pr, P_DOWN, phase)
        phase_stamp = np.where(exit_pr, now, phase_stamp)

        gain = np.where(
            state == S_STARTUP, BBR2_STARTUP_GAIN,
            np.where(
                state == S_DRAIN, BBR2_DRAIN_GAIN,
                np.where(
                    state == S_PROBE_RTT, 1.0,
                    np.where(phase == P_DOWN, 0.9, np.where(phase == P_UP, 1.25, 1.0)),
                ),
            ),
        )
        cap_gain = np.where(state == S_PROBE_RTT, 0.5, 2.0)
        have_bw = bw > 0
        new_cap = np.maximum(4.0, cap_gain * bdp)
        fin = np.isfinite(hi)
        hi_eff = np.where(
            (phase == P_CRUISE) & (state == S_PROBE_BW), hi * (1 - BBR2_HEADROOM), hi
        )
        new_cap = np.where(fin, np.minimum(new_cap, np.maximum(4.0, hi_eff)), new_cap)
        pacing = np.where(have_bw, np.maximum(RATE_FLOOR_PPS, gain * bw), np.nan)
        cap = np.where(have_bw, new_cap, cap)
        cwnd = np.where(have_bw, cwnd, np.minimum(cwnd * 2.0, 1e9))

        self.cwnd[ci, fi] = cwnd
        self.pacing[ci, fi] = pacing
        self.cap[ci, fi] = cap
        self.bb_state[ci, fi] = state
        self.bb_ring[ci, fi, :] = ring
        self.bb_pos[ci, fi] = pos
        self.bb_min_rtt[ci, fi] = min_rtt
        self.bb_min_rtt_stamp[ci, fi] = min_stamp
        self.bb_full_bw[ci, fi] = full_bw
        self.bb_full_bw_count[ci, fi] = full_cnt
        self.bb_probe_until[ci, fi] = probe_until
        self.b2_inflight_hi[ci, fi] = hi
        self.b2_phase[ci, fi] = phase
        self.b2_phase_stamp[ci, fi] = phase_stamp

    # -- driving / outputs -----------------------------------------------------

    def run(self, duration_s: float) -> None:
        """Step the whole shard forward by ``duration_s`` simulated seconds."""
        end = self.now + duration_s
        while self.now < end - 1e-12:
            self.step()

    def begin_measurement(self) -> None:
        """Snapshot delivery counters; :attr:`measured_delivered` counts
        only what arrives after this call (post-warmup window)."""
        self._measure_delivered = self.delivered_total.copy()

    @property
    def measured_delivered(self) -> np.ndarray:
        if self._measure_delivered is None:
            return self.delivered_total.copy()
        return self.delivered_total - self._measure_delivered


# --- experiment-level entry points -------------------------------------------


def _run_shard(configs: Sequence[ExperimentConfig], *, pad: bool) -> List[ExperimentResult]:
    wall_start = time.perf_counter()
    sim = BatchedFluidSimulation(configs, pad=pad)
    config0 = configs[0]
    probes = None
    if config0.fairness_interval_s:
        # Shard members share the cadence (it is part of the shard key),
        # so one vectorized hook drives every row's probe.
        from repro.obs.fairness import attach_batched_fairness

        probes = attach_batched_fairness(sim)
    if config0.warmup_s > 0:
        sim.run(config0.warmup_s)
        sim.begin_measurement()
        sim.run(config0.duration_s - config0.warmup_s)
    else:
        sim.begin_measurement()
        sim.run(config0.duration_s)
    wall_each = (time.perf_counter() - wall_start) / len(configs)

    results: List[ExperimentResult] = []
    window = sim.measured_delivered
    for c, config in enumerate(configs):
        n = sim.widths[c]
        results.append(
            build_fluid_result(
                config,
                sim.geoms[c],
                delivered_window=window[c, :n],
                delivered_total=sim.delivered_total[c, :n],
                dropped_total=sim.dropped_total[c, :n],
                aqm_dropped=float(sim.aqm.total_dropped[c]),
                engine="fluid_batched",
                wallclock_s=wall_each,
                fairness=probes[c].to_dict() if probes is not None else None,
            )
        )
    return results


def run_fluid_batch(
    configs: Sequence[ExperimentConfig],
    *,
    pad: bool = False,
    max_shard: int = 0,
) -> List[ExperimentResult]:
    """Run many configs through the batched backend; results in input order.

    Configs are grouped into lock-step shards automatically; per-config
    results are independent of the grouping (and, with ``pad=False``,
    bit-identical to the scalar fluid engine).
    """
    results: List[Optional[ExperimentResult]] = [None] * len(configs)
    for shard in plan_shards(configs, pad=pad, max_shard=max_shard):
        shard_results = _run_shard([configs[i] for i in shard], pad=pad)
        for i, res in zip(shard, shard_results):
            results[i] = res
    return [r for r in results if r is not None]


def run_fluid_single(config: ExperimentConfig) -> ExperimentResult:
    """Run one config on the batched backend (a shard of one)."""
    return _run_shard([config], pad=False)[0]
