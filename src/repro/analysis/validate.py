"""Automated shape validation against the paper's qualitative claims.

``validate_claims`` takes a :class:`~repro.analysis.aggregate.ResultSet`
(any slice of the grid) and evaluates every paper claim that the data can
speak to, returning one :class:`ClaimResult` per claim — the machine-
readable version of DESIGN.md §4's shape-target list.  Claims whose
required cells are absent report ``skipped`` rather than failing, so the
validator works on partial sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.aggregate import CellStats, ResultSet


@dataclass
class ClaimResult:
    claim_id: str
    description: str
    passed: Optional[bool]  # None = skipped (insufficient data)
    detail: str = ""

    @property
    def skipped(self) -> bool:
        return self.passed is None


class _Checker:
    """Helper exposing cell lookups with a 'skip' escape hatch."""

    class Missing(Exception):
        pass

    def __init__(self, results: ResultSet):
        self.cells = results.cells()
        self.bandwidths = sorted({k[3] for k in self.cells})
        self.buffers = sorted({k[2] for k in self.cells})

    def cell(self, pair: Tuple[str, str], aqm: str, buf: float, bw: float) -> CellStats:
        stats = self.cells.get((pair, aqm, buf, bw))
        if stats is None:
            raise _Checker.Missing()
        return stats

    def cells_where(self, **conditions) -> List[CellStats]:
        out = []
        for (pair, aqm, buf, bw), stats in self.cells.items():
            if conditions.get("pair") not in (None, pair):
                continue
            if conditions.get("aqm") not in (None, aqm):
                continue
            if conditions.get("buf") not in (None, buf):
                continue
            if conditions.get("bw") not in (None, bw):
                continue
            out.append(stats)
        if not out:
            raise _Checker.Missing()
        return out


def _claim_fifo_equilibrium(c: _Checker) -> Tuple[bool, str]:
    """BBRv1 beats CUBIC in the smallest FIFO buffer, loses in the largest."""
    small_buf, large_buf = c.buffers[0], c.buffers[-1]
    if not (small_buf <= 1.0 and large_buf >= 8.0):
        raise _Checker.Missing()
    oks, details = [], []
    for bw in c.bandwidths:
        small = c.cell(("bbrv1", "cubic"), "fifo", small_buf, bw)
        large = c.cell(("bbrv1", "cubic"), "fifo", large_buf, bw)
        ok = small.sender1_bps > small.sender2_bps and large.sender2_bps > large.sender1_bps
        oks.append(ok)
        details.append(f"{bw / 1e6:.0f}Mbps:{'ok' if ok else 'FLIPPED'}")
    return all(oks), " ".join(details)


def _claim_red_starves_cubic(c: _Checker) -> Tuple[bool, str]:
    """Under RED, BBRv1 takes > 2x CUBIC's share everywhere."""
    cells = c.cells_where(pair=("bbrv1", "cubic"), aqm="red")
    bad = [x for x in cells if x.sender1_bps <= 2 * x.sender2_bps]
    return not bad, f"{len(cells) - len(bad)}/{len(cells)} cells dominated"


def _claim_red_worst_fairness(c: _Checker) -> Tuple[bool, str]:
    """Mean J(BBRv1 vs CUBIC) is lower under RED than under FIFO/FQ."""
    means = {}
    for aqm in ("red", "fifo", "fq_codel"):
        cells = c.cells_where(pair=("bbrv1", "cubic"), aqm=aqm)
        means[aqm] = sum(x.jain_index for x in cells) / len(cells)
    ok = means["red"] <= min(means["fifo"], means["fq_codel"]) + 1e-9
    return ok, " ".join(f"{k}={v:.3f}" for k, v in means.items())


def _claim_fq_codel_fair(c: _Checker) -> Tuple[bool, str]:
    """FQ_CODEL: mean J > 0.9 for every pair."""
    cells = c.cells_where(aqm="fq_codel")
    per_pair: Dict[Tuple[str, str], List[float]] = {}
    for x in cells:
        per_pair.setdefault(x.pair, []).append(x.jain_index)
    bad = {p: sum(v) / len(v) for p, v in per_pair.items() if sum(v) / len(v) <= 0.9}
    return not bad, f"{len(per_pair) - len(bad)}/{len(per_pair)} pairs fair" + (
        f"; worst {bad}" if bad else ""
    )


def _claim_fifo_full_utilization(c: _Checker) -> Tuple[bool, str]:
    """FIFO lets every CCA fill the link (intra-CCA).

    Mean utilization per (pair, bandwidth) must exceed 0.85 and no single
    cell may fall under 0.75 (short runs make the smallest-buffer cells a
    little noisy).
    """
    cells = [x for x in c.cells_where(aqm="fifo") if x.pair[0] == x.pair[1]]
    if not cells:
        raise _Checker.Missing()
    groups: Dict[Tuple, List[float]] = {}
    for x in cells:
        groups.setdefault((x.pair, x.bandwidth_bps), []).append(x.link_utilization)
    mean_bad = {k: sum(v) / len(v) for k, v in groups.items() if sum(v) / len(v) <= 0.85}
    cell_bad = [x for x in cells if x.link_utilization <= 0.75]
    ok = not mean_bad and not cell_bad
    return ok, (
        f"{len(groups) - len(mean_bad)}/{len(groups)} group means full; "
        f"{len(cells) - len(cell_bad)}/{len(cells)} cells above floor"
    )


def _claim_red_high_bw_degradation(c: _Checker) -> Tuple[bool, str]:
    """RED's loss-based utilization at the top tier trails the bottom tier."""
    lo_bw, hi_bw = c.bandwidths[0], c.bandwidths[-1]
    if hi_bw < 10 * lo_bw:
        raise _Checker.Missing()
    oks = []
    for cca in ("reno", "cubic"):
        lo = c.cells_where(pair=(cca, cca), aqm="red", bw=lo_bw)
        hi = c.cells_where(pair=(cca, cca), aqm="red", bw=hi_bw)
        lo_phi = sum(x.link_utilization for x in lo) / len(lo)
        hi_phi = sum(x.link_utilization for x in hi) / len(hi)
        oks.append(hi_phi < lo_phi + 0.02)
    return all(oks), f"checked reno/cubic {lo_bw / 1e6:.0f}->{hi_bw / 1e6:.0f} Mbps"


def _claim_retx_ordering(c: _Checker) -> Tuple[bool, str]:
    """BBRv1's retransmissions exceed every other CCA's, per AQM (intra)."""
    oks, details = [], []
    for aqm in ("fifo", "red", "fq_codel"):
        try:
            bbr1 = c.cells_where(pair=("bbrv1", "bbrv1"), aqm=aqm)
        except _Checker.Missing:
            continue
        bbr1_retx = sum(x.total_retransmits for x in bbr1) / len(bbr1)
        for cca in ("bbrv2", "htcp", "reno", "cubic"):
            try:
                other = c.cells_where(pair=(cca, cca), aqm=aqm)
            except _Checker.Missing:
                continue
            other_retx = sum(x.total_retransmits for x in other) / len(other)
            ok = bbr1_retx > other_retx
            oks.append(ok)
            if not ok:
                details.append(f"{aqm}:{cca} {other_retx:.0f} >= bbrv1 {bbr1_retx:.0f}")
    if not oks:
        raise _Checker.Missing()
    return all(oks), "; ".join(details) if details else f"{len(oks)} comparisons hold"


def _claim_retx_grow_with_bw(c: _Checker) -> Tuple[bool, str]:
    """RED/FQ_CODEL retransmissions at the top tier exceed the bottom tier."""
    lo_bw, hi_bw = c.bandwidths[0], c.bandwidths[-1]
    if hi_bw < 10 * lo_bw:
        raise _Checker.Missing()
    oks = []
    for aqm in ("red", "fq_codel"):
        for cca in ("cubic", "reno"):
            lo = c.cells_where(pair=(cca, cca), aqm=aqm, bw=lo_bw)
            hi = c.cells_where(pair=(cca, cca), aqm=aqm, bw=hi_bw)
            oks.append(
                sum(x.total_retransmits for x in hi) > sum(x.total_retransmits for x in lo)
            )
    return all(oks), f"{sum(oks)}/{len(oks)} (aqm x cca) growth checks hold"


def _claim_intra_cca_fair(c: _Checker) -> Tuple[bool, str]:
    """Intra-CCA pairs (other than BBRv1 under RED) share fairly."""
    cells = [
        x
        for x in c.cells_where()
        if x.pair[0] == x.pair[1] and not (x.pair[0] == "bbrv1" and x.aqm == "red")
    ]
    if not cells:
        raise _Checker.Missing()
    per_key: Dict[Tuple, List[float]] = {}
    for x in cells:
        per_key.setdefault((x.pair[0], x.aqm), []).append(x.jain_index)
    bad = {k: sum(v) / len(v) for k, v in per_key.items() if sum(v) / len(v) <= 0.85}
    return not bad, f"worst offenders: {bad}" if bad else f"{len(per_key)} (cca, aqm) groups fair"


CLAIMS: List[Tuple[str, str, Callable[[_Checker], Tuple[bool, str]]]] = [
    ("fifo-equilibrium", "FIFO: BBRv1 wins small buffers, CUBIC wins large ones", _claim_fifo_equilibrium),
    ("red-starves-cubic", "RED: BBRv1 dominates CUBIC at every cell", _claim_red_starves_cubic),
    ("red-worst-fairness", "RED gives the worst BBRv1-vs-CUBIC fairness", _claim_red_worst_fairness),
    ("fq-codel-fair", "FQ_CODEL: J ~ 1 for every pair", _claim_fq_codel_fair),
    ("fifo-full-utilization", "FIFO reaches (near-)full utilization", _claim_fifo_full_utilization),
    ("red-high-bw-degradation", "RED utilization degrades at high bandwidth", _claim_red_high_bw_degradation),
    ("retx-ordering", "BBRv1 retransmits more than every other CCA", _claim_retx_ordering),
    ("retx-grow-with-bw", "RED/FQ_CODEL retransmissions grow with bandwidth", _claim_retx_grow_with_bw),
    ("intra-cca-fair", "Intra-CCA sharing is fair (excl. BBRv1+RED)", _claim_intra_cca_fair),
]


def validate_claims(results: ResultSet) -> List[ClaimResult]:
    """Evaluate every claim the result set has data for."""
    checker = _Checker(results)
    out: List[ClaimResult] = []
    for claim_id, description, fn in CLAIMS:
        try:
            passed, detail = fn(checker)
        except _Checker.Missing:
            out.append(ClaimResult(claim_id, description, None, "insufficient data"))
            continue
        out.append(ClaimResult(claim_id, description, passed, detail))
    return out


def render_claims(claims: List[ClaimResult]) -> str:
    """ASCII report: one line per claim."""
    lines = []
    for c in claims:
        status = "SKIP" if c.skipped else ("PASS" if c.passed else "FAIL")
        lines.append(f"[{status}] {c.claim_id:<24s} {c.description}")
        if c.detail:
            lines.append(f"       {c.detail}")
    counts = (
        sum(1 for c in claims if c.passed is True),
        sum(1 for c in claims if c.passed is False),
        sum(1 for c in claims if c.skipped),
    )
    lines.append(f"\n{counts[0]} passed, {counts[1]} failed, {counts[2]} skipped")
    return "\n".join(lines)
