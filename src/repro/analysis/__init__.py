"""Analysis: aggregation, figure series, Table 3, report rendering."""

from repro.analysis.aggregate import ResultSet
from repro.analysis.convergence import convergence_time_s, jain_series
from repro.analysis.dataset import flows_table, intervals_table, runs_table, write_csv
from repro.analysis.export_figures import export_all_figures
from repro.analysis.parse_iperf import parse_iperf_doc, summarize_docs
from repro.analysis.sparkline import sparkline
from repro.analysis.table3 import PAPER_TABLE3, build_table3
from repro.analysis.validate import render_claims, validate_claims
from repro.analysis.figures import (
    fig2_series,
    fig3_series,
    fig7_series,
    fig8_series,
)

__all__ = [
    "ResultSet",
    "parse_iperf_doc",
    "summarize_docs",
    "build_table3",
    "PAPER_TABLE3",
    "fig2_series",
    "fig3_series",
    "fig7_series",
    "fig8_series",
    "validate_claims",
    "render_claims",
    "runs_table",
    "flows_table",
    "intervals_table",
    "write_csv",
    "sparkline",
    "export_all_figures",
    "convergence_time_s",
    "jain_series",
]
