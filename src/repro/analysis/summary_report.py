"""One-call full text report: everything the paper's evaluation shows.

``full_report(results)`` renders Table 3 (with the published values
alongside), the claim validation verdicts, the Figure 2 equilibrium
points, and the figure panels the result set has data for — the
reproduction's complete story in one string.
"""

from __future__ import annotations

from typing import List

from repro.analysis.aggregate import ResultSet
from repro.analysis.figures import (
    equilibrium_points,
    fig2_series,
    fig3_series,
    fig4_series,
    fig5_series,
    fig6_series,
    fig7_series,
    fig8_series,
)
from repro.analysis.report import (
    render_inter_panels,
    render_intra_metric_panels,
    render_jain_panels,
)
from repro.analysis.table3 import build_table3, render_table3
from repro.analysis.validate import render_claims, validate_claims


def _section(title: str, body: str) -> str:
    bar = "=" * 72
    return f"{bar}\n{title}\n{bar}\n{body}\n"


def full_report(results: ResultSet, *, include_figures: bool = True) -> str:
    """Render the complete evaluation report for ``results``."""
    if len(results) == 0:
        raise ValueError("no results to report on")
    parts: List[str] = []
    aqms = set(results.aqms())

    parts.append(_section("TABLE 3 — overall comparison (measured vs paper)",
                          render_table3(build_table3(results))))
    parts.append(_section("PAPER CLAIMS — automated shape validation",
                          render_claims(validate_claims(results))))

    if "fifo" in aqms:
        series = fig2_series(results, aqm="fifo")
        if "bbrv1-vs-cubic" in series:
            points = equilibrium_points(series, "bbrv1-vs-cubic")
            body = "\n".join(f"  {bw}: {buf:g} BDP" for bw, buf in points.items())
            parts.append(_section(
                "FIGURE 2 — BBRv1-vs-CUBIC equilibrium points (paper: 2 -> 3.5 BDP)", body
            ))
        if include_figures:
            parts.append(_section("FIGURE 2 — per-sender throughput, FIFO",
                                  render_inter_panels(series)))
            parts.append(_section("FIGURE 3 — Jain index, FIFO",
                                  render_jain_panels(fig3_series(results))))
    if include_figures and "red" in aqms:
        parts.append(_section("FIGURE 4 — per-sender throughput, RED",
                              render_inter_panels(fig4_series(results))))
        parts.append(_section("FIGURE 5 — Jain index, RED",
                              render_jain_panels(fig5_series(results))))
    if include_figures and "fq_codel" in aqms:
        parts.append(_section("FIGURE 6 — Jain index, FQ_CODEL",
                              render_jain_panels(fig6_series(results))))
    if include_figures:
        parts.append(_section("FIGURE 7 — link utilization, intra-CCA",
                              render_intra_metric_panels(fig7_series(results))))
        parts.append(_section("FIGURE 8 — retransmissions, intra-CCA",
                              render_intra_metric_panels(fig8_series(results), fmt="{:>10.0f}")))
    return "\n".join(parts)
