"""Plain-text report rendering for figure series.

Everything the benches print goes through here, so the regenerated
"figures" are stable, diff-able text blocks rather than images.
"""

from __future__ import annotations

from typing import Dict, List

from repro.units import format_rate


def render_inter_panels(series: Dict, *, unit: float = 1e6, unit_label: str = "Mbps") -> str:
    """Render Fig 2/4-style panels: throughput vs buffer per (pair, bw)."""
    lines: List[str] = []
    for pair_label, panels in series.items():
        cca1, _, cca2 = pair_label.partition("-vs-")
        for bw_label, panel in panels.items():
            lines.append(f"[{pair_label} @ {bw_label}]")
            lines.append(f"  {'buffer':>8s} {cca1:>12s} {cca2:>12s}")
            for buf, a, b in zip(panel["buffers"], panel["cca1_bps"], panel["cca2_bps"]):
                lines.append(
                    f"  {buf:>6.1f}x {a / unit:>10.2f} {b / unit:>10.2f}  {unit_label}"
                )
            lines.append("")
    return "\n".join(lines)


def render_jain_panels(series: Dict) -> str:
    """Render Fig 3/5/6-style panels: Jain index vs bandwidth."""
    lines: List[str] = []
    for kind in ("inter", "intra"):
        for buf_label, panel in series.get(kind, {}).items():
            lines.append(f"[{kind}-CCA, buffer={buf_label}]")
            bandwidths = panel["bandwidths"]
            header = "  " + "pair".ljust(18) + " ".join(
                format_rate(bw).rjust(10) for bw in bandwidths
            )
            lines.append(header)
            for name, values in panel.items():
                if name == "bandwidths":
                    continue
                row = "  " + name.ljust(18) + " ".join(f"{v:>10.3f}" for v in values)
                lines.append(row)
            lines.append("")
    return "\n".join(lines)


def render_intra_metric_panels(series: Dict, *, fmt: str = "{:>10.3f}") -> str:
    """Render Fig 7/8-style panels: a metric vs bandwidth per AQM/buffer."""
    lines: List[str] = []
    for aqm, bufs in series.items():
        for buf_label, panel in bufs.items():
            lines.append(f"[{aqm}, buffer={buf_label}]")
            bandwidths = panel["bandwidths"]
            lines.append(
                "  " + "cca".ljust(10) + " ".join(format_rate(bw).rjust(10) for bw in bandwidths)
            )
            for name, values in panel.items():
                if name == "bandwidths":
                    continue
                lines.append("  " + name.ljust(10) + " ".join(fmt.format(v) for v in values))
            lines.append("")
    return "\n".join(lines)
