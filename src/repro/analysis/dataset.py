"""ML dataset export.

The paper's fourth contribution is a shared dataset of experiment logs
"for developing, training, and testing TCP ML models".  This module turns
a :class:`~repro.analysis.aggregate.ResultSet` into flat, model-ready
tables:

- :func:`runs_table` — one row per run: the configuration features plus
  the outcome metrics (throughputs, Jain, utilization, retransmissions);
- :func:`flows_table` — one row per flow;
- :func:`intervals_table` — one row per (run, flow, interval) when runs
  were sampled with ``sample_interval_s`` (time-series training data);
- :func:`write_csv` — dump any of these to CSV with a stable header.

All tables are lists of dicts with scalar values only, so they load
directly into numpy/pandas/csv without adapters.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.analysis.aggregate import ResultSet

PathLike = Union[str, Path]

_CONFIG_FEATURES = (
    "aqm",
    "buffer_bdp",
    "bottleneck_bw_bps",
    "duration_s",
    "mss_bytes",
    "seed",
    "engine",
    "scale",
)


def _config_features(config: Dict[str, Any]) -> Dict[str, Any]:
    row = {key: config.get(key) for key in _CONFIG_FEATURES}
    pair = config.get("cca_pair", ("?", "?"))
    row["cca1"] = pair[0]
    row["cca2"] = pair[1]
    return row


def runs_table(results: ResultSet) -> List[Dict[str, Any]]:
    """One row per run."""
    rows = []
    for r in results.results:
        row = _config_features(r.config)
        row.update(
            sender1_bps=r.senders[0].throughput_bps,
            sender2_bps=r.senders[1].throughput_bps,
            sender1_retransmits=r.senders[0].retransmits,
            sender2_retransmits=r.senders[1].retransmits,
            jain_index=r.jain_index,
            link_utilization=r.link_utilization,
            total_retransmits=r.total_retransmits,
            bottleneck_drops=r.bottleneck_drops,
        )
        # Telemetry annotations (present when the run had --telemetry on);
        # scalar-only, so the CSV stays pandas-loadable either way.
        obs = r.extra.get("obs") if isinstance(r.extra, dict) else None
        if obs:
            row.update(
                obs_events_per_sec=obs.get("events_per_sec"),
                obs_peak_rss_kb=obs.get("peak_rss_kb"),
                obs_trace_events=obs.get("trace_events"),
            )
        rows.append(row)
    return rows


def flows_table(results: ResultSet) -> List[Dict[str, Any]]:
    """One row per flow per run."""
    rows = []
    for r in results.results:
        base = _config_features(r.config)
        for f in r.flows:
            row = dict(base)
            row.update(
                flow_id=f.flow_id,
                sender_node=f.sender_node,
                cca=f.cca,
                throughput_bps=f.throughput_bps,
                bytes_received=f.bytes_received,
                segments_sent=f.segments_sent,
                retransmits=f.retransmits,
                rto_count=f.rto_count,
                fast_recoveries=f.fast_recoveries,
            )
            rows.append(row)
    return rows


def intervals_table(results: ResultSet) -> List[Dict[str, Any]]:
    """One row per (run, flow, interval); needs sampled runs."""
    rows = []
    for r in results.results:
        series = r.extra.get("series_bps")
        if not series:
            continue
        base = _config_features(r.config)
        interval_s = r.extra.get("interval_s", 1.0)
        for flow_name, values in series.items():
            for index, bps in enumerate(values):
                row = dict(base)
                row.update(
                    flow=flow_name,
                    interval=index,
                    t_start_s=index * interval_s,
                    throughput_bps=bps,
                )
                rows.append(row)
    return rows


def write_csv(rows: List[Dict[str, Any]], path: PathLike) -> Path:
    """Write a table to CSV.  Header = union of keys, insertion-ordered."""
    if not rows:
        raise ValueError("nothing to write: the table is empty")
    header: List[str] = []
    for row in rows:
        for key in row:
            if key not in header:
                header.append(key)
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=header)
        writer.writeheader()
        writer.writerows(rows)
    return p
