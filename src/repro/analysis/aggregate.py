"""Result aggregation.

A :class:`ResultSet` wraps a list of :class:`ExperimentResult` records and
provides the grouping/averaging the paper applies: repetitions are
averaged per cell, and cells can be further averaged across buffers and
bandwidths (Table 3's Avg(...) columns).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.summary import ExperimentResult

CellKey = Tuple[Tuple[str, str], str, float, float]  # (pair, aqm, buffer, bw)


def cell_key(result: ExperimentResult) -> CellKey:
    """The (pair, aqm, buffer, bandwidth) grid coordinates of a result."""
    cfg = result.config
    return (
        tuple(cfg["cca_pair"]),
        cfg["aqm"],
        float(cfg["buffer_bdp"]),
        float(cfg["bottleneck_bw_bps"]),
    )


def _mean_std(values: List[float]) -> Tuple[float, float]:
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, var**0.5


@dataclass
class CellStats:
    """Per-cell averages (and sample stddevs) over repetitions."""

    key: CellKey
    runs: int
    jain_index: float
    link_utilization: float
    total_retransmits: float
    sender1_bps: float
    sender2_bps: float
    jain_index_std: float = 0.0
    link_utilization_std: float = 0.0
    total_retransmits_std: float = 0.0

    @property
    def pair(self) -> Tuple[str, str]:
        return self.key[0]

    @property
    def aqm(self) -> str:
        return self.key[1]

    @property
    def buffer_bdp(self) -> float:
        return self.key[2]

    @property
    def bandwidth_bps(self) -> float:
        return self.key[3]


class ResultSet:
    """A queryable collection of experiment results."""

    def __init__(self, results: Iterable[ExperimentResult]):
        self.results: List[ExperimentResult] = list(results)

    def __len__(self) -> int:
        return len(self.results)

    def filter(self, **conditions) -> "ResultSet":
        """Keep results whose config matches every condition exactly.

        ``cca_pair`` may be given as a tuple/list; other values compare
        with ``==`` against the stored config entry.
        """

        def match(r: ExperimentResult) -> bool:
            for k, v in conditions.items():
                got = r.config.get(k)
                if k == "cca_pair":
                    if tuple(got) != tuple(v):
                        return False
                elif got != v:
                    return False
            return True

        return ResultSet(r for r in self.results if match(r))

    def cells(self) -> Dict[CellKey, CellStats]:
        """Average repetitions within each (pair, aqm, buffer, bw) cell."""
        grouped: Dict[CellKey, List[ExperimentResult]] = defaultdict(list)
        for r in self.results:
            grouped[cell_key(r)].append(r)
        out: Dict[CellKey, CellStats] = {}
        for key, runs in grouped.items():
            n = len(runs)
            jain_mean, jain_std = _mean_std([r.jain_index for r in runs])
            util_mean, util_std = _mean_std([r.link_utilization for r in runs])
            retx_mean, retx_std = _mean_std([float(r.total_retransmits) for r in runs])
            out[key] = CellStats(
                key=key,
                runs=n,
                jain_index=jain_mean,
                link_utilization=util_mean,
                total_retransmits=retx_mean,
                sender1_bps=sum(r.senders[0].throughput_bps for r in runs) / n,
                sender2_bps=sum(r.senders[1].throughput_bps for r in runs) / n,
                jain_index_std=jain_std,
                link_utilization_std=util_std,
                total_retransmits_std=retx_std,
            )
        return out

    def mean(
        self,
        value: Callable[[CellStats], float],
        *,
        where: Optional[Callable[[CellStats], bool]] = None,
    ) -> float:
        """Average a per-cell statistic over (a filtered subset of) cells."""
        cells = [c for c in self.cells().values() if where is None or where(c)]
        if not cells:
            raise ValueError("no cells match the aggregation filter")
        return sum(value(c) for c in cells) / len(cells)

    def buffers(self) -> List[float]:
        """Distinct buffer sizes (BDP multiples) present, sorted."""
        return sorted({float(r.config["buffer_bdp"]) for r in self.results})

    def bandwidths(self) -> List[float]:
        """Distinct bottleneck bandwidths present, sorted."""
        return sorted({float(r.config["bottleneck_bw_bps"]) for r in self.results})

    def pairs(self) -> List[Tuple[str, str]]:
        """Distinct CCA pairs present, sorted."""
        return sorted({tuple(r.config["cca_pair"]) for r in self.results})

    def aqms(self) -> List[str]:
        """Distinct AQM names present, sorted."""
        return sorted({r.config["aqm"] for r in self.results})
