"""Per-figure data-series builders.

Each ``figN_series`` function reduces a :class:`ResultSet` to exactly the
series the corresponding paper figure plots.  The benches print these and
EXPERIMENTS.md records them; plotting is intentionally left to the caller
(series are plain dicts of lists).

- Figure 2 — per-sender throughput vs buffer size, FIFO, inter-CCA.
- Figure 3 — Jain index vs bandwidth at 2 and 16 BDP, FIFO (inter+intra).
- Figure 4 — like Fig 2 with RED.
- Figure 5 — like Fig 3 with RED.
- Figure 6 — like Fig 3 with FQ_CODEL.
- Figure 7 — link utilization, intra-CCA, per AQM at 2 and 16 BDP.
- Figure 8 — retransmissions, intra-CCA, per AQM at 2 and 16 BDP.

Figures 4/5/6 reuse the Fig-2/Fig-3 builders with a different ``aqm``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.aggregate import ResultSet
from repro.units import format_rate

InterSeries = Dict[str, Dict[str, Dict[str, List[float]]]]


def fig2_series(results: ResultSet, *, aqm: str = "fifo") -> InterSeries:
    """Per-sender throughput vs buffer size for each inter-CCA pair and BW.

    Returns ``{pair_label: {bw_label: {"buffers": [...], "cca1_bps": [...],
    "cca2_bps": [...]}}}`` — one panel per (pair, bw), matching the paper's
    (a)-(t) grid.
    """
    out: InterSeries = {}
    cells = results.filter(aqm=aqm).cells()
    keys = sorted(cells)
    for key in keys:
        (cca1, cca2), _, buf, bw = key
        if cca1 == cca2:
            continue
        stats = cells[key]
        pair_label = f"{cca1}-vs-{cca2}"
        bw_label = format_rate(bw)
        panel = out.setdefault(pair_label, {}).setdefault(
            bw_label, {"buffers": [], "cca1_bps": [], "cca2_bps": []}
        )
        panel["buffers"].append(buf)
        panel["cca1_bps"].append(stats.sender1_bps)
        panel["cca2_bps"].append(stats.sender2_bps)
    return out


def fig4_series(results: ResultSet) -> InterSeries:
    """Figure 4 = Figure 2 with RED."""
    return fig2_series(results, aqm="red")


def fig3_series(
    results: ResultSet, *, aqm: str = "fifo", buffers: Tuple[float, float] = (2.0, 16.0)
) -> Dict[str, Dict[str, Dict[str, List[float]]]]:
    """Jain index vs bandwidth at the two spotlight buffer sizes.

    Returns ``{"inter"|"intra": {buffer_label: {pair_label: [J per bw],
    "bandwidths": [...]}}}``.
    """
    cells = results.filter(aqm=aqm).cells()
    bandwidths = sorted({k[3] for k in cells})
    out: Dict[str, Dict[str, Dict[str, List[float]]]] = {"inter": {}, "intra": {}}
    for buf in buffers:
        buf_label = f"{buf:g}bdp"
        for kind in ("inter", "intra"):
            out[kind][buf_label] = {"bandwidths": [bw for bw in bandwidths]}
        pairs = sorted({k[0] for k in cells})
        for pair in pairs:
            kind = "intra" if pair[0] == pair[1] else "inter"
            series = []
            for bw in bandwidths:
                stats = cells.get((pair, aqm, buf, bw))
                series.append(stats.jain_index if stats else float("nan"))
            out[kind][buf_label][f"{pair[0]}-vs-{pair[1]}"] = series
    return out


def fig5_series(results: ResultSet, **kw) -> Dict:
    """Figure 5 = Figure 3 with RED."""
    return fig3_series(results, aqm="red", **kw)


def fig6_series(results: ResultSet, **kw) -> Dict:
    """Figure 6 = Figure 3 with FQ_CODEL."""
    return fig3_series(results, aqm="fq_codel", **kw)


def _intra_metric_series(
    results: ResultSet, metric: str, buffers: Tuple[float, float]
) -> Dict[str, Dict[str, Dict[str, List[float]]]]:
    cells = results.cells()
    bandwidths = sorted({k[3] for k in cells})
    aqms = sorted({k[1] for k in cells})
    out: Dict[str, Dict[str, Dict[str, List[float]]]] = {}
    for aqm in aqms:
        out[aqm] = {}
        for buf in buffers:
            buf_label = f"{buf:g}bdp"
            panel: Dict[str, List[float]] = {"bandwidths": [bw for bw in bandwidths]}
            pairs = sorted({k[0] for k in cells if k[0][0] == k[0][1]})
            for pair in pairs:
                series = []
                for bw in bandwidths:
                    stats = cells.get((pair, aqm, buf, bw))
                    series.append(getattr(stats, metric) if stats else float("nan"))
                panel[pair[0]] = series
            out[aqm][buf_label] = panel
    return out


def fig7_series(
    results: ResultSet, *, buffers: Tuple[float, float] = (2.0, 16.0)
) -> Dict[str, Dict[str, Dict[str, List[float]]]]:
    """Intra-CCA link utilization per AQM: ``{aqm: {buf: {cca: [phi per bw]}}}``."""
    return _intra_metric_series(results, "link_utilization", buffers)


def fig8_series(
    results: ResultSet, *, buffers: Tuple[float, float] = (2.0, 16.0)
) -> Dict[str, Dict[str, Dict[str, List[float]]]]:
    """Intra-CCA retransmissions per AQM: ``{aqm: {buf: {cca: [retx per bw]}}}``."""
    return _intra_metric_series(results, "total_retransmits", buffers)


def equilibrium_points(
    series: InterSeries, pair_label: str
) -> Dict[str, float]:
    """The buffer size where CCA1's advantage over CUBIC flips (Fig 2's
    "equilibrium point"), per bandwidth panel.

    Linear interpolation between the last buffer where CCA1 leads and the
    first where CCA2 does.  ``inf`` if CCA1 never loses the lead, ``0`` if
    it never has it.
    """
    out: Dict[str, float] = {}
    for bw_label, panel in series[pair_label].items():
        buffers = panel["buffers"]
        gaps = [a - b for a, b in zip(panel["cca1_bps"], panel["cca2_bps"])]
        if gaps[0] <= 0:
            out[bw_label] = 0.0
            continue
        crossing = None
        for i in range(1, len(gaps)):
            if gaps[i] <= 0:
                # Interpolate between buffers[i-1] (lead) and buffers[i].
                g0, g1 = gaps[i - 1], gaps[i]
                frac = g0 / (g0 - g1) if g0 != g1 else 0.0
                crossing = buffers[i - 1] + frac * (buffers[i] - buffers[i - 1])
                break
        out[bw_label] = crossing if crossing is not None else float("inf")
    return out
