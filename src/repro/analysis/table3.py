"""Table 3: overall performance comparison.

For every (CCA pair, AQM) combination the paper reports, averaged over all
buffer sizes, bandwidths, and repetitions:

- ``Avg(phi)``     — mean link utilization,
- ``Avg(RR)``      — mean retransmissions *relative to the CUBIC-vs-CUBIC
  run under the same AQM/buffer/bandwidth condition* (paper eq. 4), and
- ``Avg(J_index)`` — mean Jain fairness index.

:data:`PAPER_TABLE3` embeds the paper's published numbers so reports can
show paper-vs-measured side by side (EXPERIMENTS.md is generated from
exactly this comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.aggregate import CellStats, ResultSet

PairKey = Tuple[str, str, str]  # (cca1, cca2, aqm)

#: The paper's Table 3 (Avg(phi), Avg(RR), Avg(J_index)).
PAPER_TABLE3: Dict[PairKey, Tuple[float, float, float]] = {
    ("bbrv1", "bbrv1", "fifo"): (0.986, 23.164, 0.995),
    ("bbrv1", "cubic", "fifo"): (0.997, 14.916, 0.803),
    ("bbrv2", "bbrv2", "fifo"): (0.995, 1.141, 0.98),
    ("bbrv2", "cubic", "fifo"): (0.998, 1.823, 0.934),
    ("htcp", "htcp", "fifo"): (0.999, 2.493, 1.0),
    ("htcp", "cubic", "fifo"): (0.997, 1.624, 0.971),
    ("reno", "reno", "fifo"): (0.997, 1.235, 0.994),
    ("reno", "cubic", "fifo"): (0.998, 1.01, 0.847),
    ("cubic", "cubic", "fifo"): (0.995, 1.0, 0.997),
    ("bbrv1", "bbrv1", "red"): (0.938, 47.687, 0.938),
    ("bbrv1", "cubic", "red"): (0.94, 41.056, 0.522),
    ("bbrv2", "bbrv2", "red"): (0.903, 4.872, 0.999),
    ("bbrv2", "cubic", "red"): (0.901, 3.675, 0.722),
    ("htcp", "htcp", "red"): (0.794, 1.497, 0.999),
    ("htcp", "cubic", "red"): (0.796, 1.272, 0.979),
    ("reno", "reno", "red"): (0.738, 1.281, 1.0),
    ("reno", "cubic", "red"): (0.766, 1.136, 1.0),
    ("cubic", "cubic", "red"): (0.788, 1.0, 1.0),
    ("bbrv1", "bbrv1", "fq_codel"): (0.971, 24.468, 1.0),
    ("bbrv1", "cubic", "fq_codel"): (0.97, 13.986, 0.994),
    ("bbrv2", "bbrv2", "fq_codel"): (0.977, 4.386, 1.0),
    ("bbrv2", "cubic", "fq_codel"): (0.975, 2.312, 0.998),
    ("htcp", "htcp", "fq_codel"): (0.969, 1.135, 1.0),
    ("htcp", "cubic", "fq_codel"): (0.972, 1.057, 1.0),
    ("reno", "reno", "fq_codel"): (0.94, 0.852, 1.0),
    ("reno", "cubic", "fq_codel"): (0.96, 0.891, 0.998),
    ("cubic", "cubic", "fq_codel"): (0.974, 1.0, 1.0),
}


@dataclass
class Table3Row:
    cca1: str
    cca2: str
    aqm: str
    avg_utilization: float
    avg_rr: float
    avg_jain: float
    cells: int
    paper: Optional[Tuple[float, float, float]] = None

    @property
    def key(self) -> PairKey:
        return (self.cca1, self.cca2, self.aqm)


def build_table3(results: ResultSet) -> List[Table3Row]:
    """Compute Table 3 rows from a result set.

    Needs CUBIC-vs-CUBIC runs for every (AQM, buffer, bandwidth) condition
    present, since RR normalizes against them (conditions with a zero
    CUBIC baseline fall back to retransmits + 1 to stay finite).
    """
    cells = results.cells()
    # Baseline retransmissions per (aqm, buffer, bw).
    baseline: Dict[Tuple[str, float, float], float] = {}
    for key, stats in cells.items():
        pair, aqm, buf, bw = key
        if pair == ("cubic", "cubic"):
            baseline[(aqm, buf, bw)] = stats.total_retransmits

    grouped: Dict[PairKey, List[CellStats]] = {}
    for key, stats in cells.items():
        pair, aqm, _, _ = key
        grouped.setdefault((pair[0], pair[1], aqm), []).append(stats)

    rows: List[Table3Row] = []
    for (cca1, cca2, aqm), group in sorted(grouped.items(), key=lambda kv: (kv[0][2], kv[0][0], kv[0][1])):
        rr_values = []
        for stats in group:
            base = baseline.get((stats.aqm, stats.buffer_bdp, stats.bandwidth_bps))
            if base is None:
                continue
            denom = base if base > 0 else 1.0
            rr_values.append(stats.total_retransmits / denom)
        rows.append(
            Table3Row(
                cca1=cca1,
                cca2=cca2,
                aqm=aqm,
                avg_utilization=sum(s.link_utilization for s in group) / len(group),
                avg_rr=sum(rr_values) / len(rr_values) if rr_values else float("nan"),
                avg_jain=sum(s.jain_index for s in group) / len(group),
                cells=len(group),
                paper=PAPER_TABLE3.get((cca1, cca2, aqm)),
            )
        )
    return rows


def render_table3(rows: List[Table3Row], *, show_paper: bool = True) -> str:
    """ASCII rendering, paper values alongside when available."""
    header = f"{'CCA1 vs CCA2':<17s} {'AQM':<9s} {'Avg(phi)':>9s} {'Avg(RR)':>9s} {'Avg(J)':>7s}"
    if show_paper:
        header += f"   {'paper phi':>9s} {'paper RR':>9s} {'paper J':>8s}"
    lines = [header, "-" * len(header)]
    for row in rows:
        line = (
            f"{row.cca1 + ' vs ' + row.cca2:<17s} {row.aqm:<9s} "
            f"{row.avg_utilization:>9.3f} {row.avg_rr:>9.3f} {row.avg_jain:>7.3f}"
        )
        if show_paper:
            if row.paper:
                line += f"   {row.paper[0]:>9.3f} {row.paper[1]:>9.3f} {row.paper[2]:>8.3f}"
            else:
                line += "   " + " ".join(["-".rjust(w) for w in (9, 9, 8)])
        lines.append(line)
    return "\n".join(lines)
