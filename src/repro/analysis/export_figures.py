"""Export every figure's data series to CSV files.

The text reports are for reading; these flat files are for plotting
(matplotlib/gnuplot/a spreadsheet) or archiving beside the paper's
published dataset.  One file per figure, long-format rows.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Union

from repro.analysis.aggregate import ResultSet
from repro.analysis.figures import (
    fig2_series,
    fig3_series,
    fig4_series,
    fig5_series,
    fig6_series,
    fig7_series,
    fig8_series,
)

PathLike = Union[str, Path]


def _write(path: Path, header: List[str], rows: List[List]) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def _inter_rows(series: Dict) -> List[List]:
    rows = []
    for pair_label, panels in series.items():
        cca1, _, cca2 = pair_label.partition("-vs-")
        for bw_label, panel in panels.items():
            for buf, a, b in zip(panel["buffers"], panel["cca1_bps"], panel["cca2_bps"]):
                rows.append([cca1, cca2, bw_label, buf, a, b])
    return rows


def _jain_rows(series: Dict) -> List[List]:
    rows = []
    for kind, bufs in series.items():
        for buf_label, panel in bufs.items():
            bandwidths = panel["bandwidths"]
            for name, values in panel.items():
                if name == "bandwidths":
                    continue
                for bw, j in zip(bandwidths, values):
                    rows.append([kind, buf_label, name, bw, j])
    return rows


def _intra_metric_rows(series: Dict) -> List[List]:
    rows = []
    for aqm, bufs in series.items():
        for buf_label, panel in bufs.items():
            bandwidths = panel["bandwidths"]
            for cca, values in panel.items():
                if cca == "bandwidths":
                    continue
                for bw, v in zip(bandwidths, values):
                    rows.append([aqm, buf_label, cca, bw, v])
    return rows


def export_all_figures(results: ResultSet, out_dir: PathLike) -> Dict[str, Path]:
    """Write fig2.csv ... fig8.csv under ``out_dir``; returns the paths.

    Figures whose AQM slice is absent from ``results`` are skipped.
    """
    out = Path(out_dir)
    written: Dict[str, Path] = {}
    aqms = set(results.aqms())

    if "fifo" in aqms:
        written["fig2"] = _write(
            out / "fig2.csv",
            ["cca1", "cca2", "bandwidth", "buffer_bdp", "cca1_bps", "cca2_bps"],
            _inter_rows(fig2_series(results, aqm="fifo")),
        )
        written["fig3"] = _write(
            out / "fig3.csv",
            ["kind", "buffer", "pair", "bandwidth_bps", "jain_index"],
            _jain_rows(fig3_series(results)),
        )
    if "red" in aqms:
        written["fig4"] = _write(
            out / "fig4.csv",
            ["cca1", "cca2", "bandwidth", "buffer_bdp", "cca1_bps", "cca2_bps"],
            _inter_rows(fig4_series(results)),
        )
        written["fig5"] = _write(
            out / "fig5.csv",
            ["kind", "buffer", "pair", "bandwidth_bps", "jain_index"],
            _jain_rows(fig5_series(results)),
        )
    if "fq_codel" in aqms:
        written["fig6"] = _write(
            out / "fig6.csv",
            ["kind", "buffer", "pair", "bandwidth_bps", "jain_index"],
            _jain_rows(fig6_series(results)),
        )
    written["fig7"] = _write(
        out / "fig7.csv",
        ["aqm", "buffer", "cca", "bandwidth_bps", "link_utilization"],
        _intra_metric_rows(fig7_series(results)),
    )
    written["fig8"] = _write(
        out / "fig8.csv",
        ["aqm", "buffer", "cca", "bandwidth_bps", "retransmissions"],
        _intra_metric_rows(fig8_series(results)),
    )
    return written
