"""Short-term dynamics: per-interval fairness and convergence time.

The paper's introduction notes that "short-term dynamics of competing
high-speed TCP flows can have strong impacts on their long-term fairness"
(citing Molnar et al.).  Given a run sampled with ``sample_interval_s``,
these helpers compute the per-interval sender shares, the Jain-index time
series, and the *convergence time* — when fairness first reaches and then
holds a threshold.

Two API levels:

- the ``series_*`` functions operate on raw ``(times, values)`` series
  and are **engine-agnostic** — the fairness probe
  (:mod:`repro.obs.fairness`) feeds them samples from the packet DES,
  the scalar fluid integrator, and the batched fluid backend alike;
- the result-level wrappers (:func:`jain_series`,
  :func:`convergence_time_s`, :func:`fairness_half_life_s`) keep the
  original packet-sampled ``ExperimentResult`` workflow working on top
  of the same series math.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.metrics.fairness import jain_index
from repro.metrics.summary import ExperimentResult

#: Default Jain threshold a run must reach and hold to count as converged.
DEFAULT_CONVERGENCE_THRESHOLD = 0.9
#: Default number of consecutive samples the threshold must hold.
DEFAULT_HOLD_INTERVALS = 3
#: Default fractional drop (vs the previous sample) flagged as a
#: loss-synchronization instant in :func:`series_sync_loss_times`.
DEFAULT_SYNC_DROP_FRAC = 0.25
#: Previous-sample floor below which a drop is noise, not a sync event.
DEFAULT_SYNC_FLOOR = 0.5


# --- engine-agnostic series helpers -------------------------------------------


def series_convergence_time_s(
    times_s: Sequence[float],
    series: Sequence[float],
    *,
    threshold: float = DEFAULT_CONVERGENCE_THRESHOLD,
    hold_intervals: int = DEFAULT_HOLD_INTERVALS,
) -> Optional[float]:
    """First time the series reaches ``threshold`` and holds it.

    Returns the timestamp of the *first* sample of the earliest window of
    ``hold_intervals`` consecutive samples all >= ``threshold``; ``None``
    if no such window exists (including for an empty series).
    """
    if not 0 < threshold <= 1:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    if hold_intervals < 1:
        raise ValueError(f"hold_intervals must be >= 1, got {hold_intervals}")
    if len(times_s) != len(series):
        raise ValueError(
            f"times/series length mismatch: {len(times_s)} != {len(series)}"
        )
    run = 0
    for i, value in enumerate(series):
        run = run + 1 if value >= threshold else 0
        if run >= hold_intervals:
            return float(times_s[i - hold_intervals + 1])
    return None


def series_oscillation_count(
    series: Sequence[float],
    *,
    threshold: float = DEFAULT_CONVERGENCE_THRESHOLD,
) -> int:
    """Number of downward crossings of ``threshold``.

    Each crossing (sample >= threshold followed by sample < threshold) is
    one *fairness oscillation*: the run reached the fair regime and fell
    back out of it.  0 for series that never reach the threshold or never
    leave it.
    """
    if not 0 < threshold <= 1:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    count = 0
    for prev, cur in zip(series, series[1:]):
        if prev >= threshold and cur < threshold:
            count += 1
    return count


def series_sync_loss_times(
    times_s: Sequence[float],
    series: Sequence[float],
    *,
    drop_frac: float = DEFAULT_SYNC_DROP_FRAC,
    floor: float = DEFAULT_SYNC_FLOOR,
) -> List[float]:
    """Timestamps where the series drops by >= ``drop_frac`` in one sample.

    Applied to a utilization (φ) series this marks *loss-synchronization
    instants*: the global back-off events where many flows cut their
    windows together and the bottleneck goes briefly idle.  A drop only
    counts when the previous sample was at least ``floor`` — crashes from
    an already-idle link are startup noise, not synchronization.
    """
    if not 0 < drop_frac < 1:
        raise ValueError(f"drop_frac must be in (0, 1), got {drop_frac}")
    if len(times_s) != len(series):
        raise ValueError(
            f"times/series length mismatch: {len(times_s)} != {len(series)}"
        )
    out: List[float] = []
    for i in range(1, len(series)):
        prev, cur = series[i - 1], series[i]
        if prev >= floor and cur <= prev * (1.0 - drop_frac):
            out.append(float(times_s[i]))
    return out


# --- result-level wrappers (packet-sampled ExperimentResult) -------------------


def sender_interval_series(result: ExperimentResult) -> Dict[str, List[float]]:
    """Aggregate a sampled run's per-flow series into per-sender series.

    Raises ``ValueError`` when the per-flow series disagree in length —
    summing ragged series would silently mis-attribute the tail intervals
    to whichever flow was registered first.
    """
    series = result.extra.get("series_bps")
    if not series:
        raise ValueError("result was not sampled (set sample_interval_s)")
    lengths = {name: len(values) for name, values in series.items()}
    if len(set(lengths.values())) > 1:
        raise ValueError(
            f"per-flow series lengths differ, cannot aggregate: {lengths}"
        )
    flow_owner = {f"flow{f.flow_id}": f.sender_node for f in result.flows}
    out: Dict[str, List[float]] = {}
    for flow_name, values in series.items():
        node = flow_owner.get(flow_name)
        if node is None:
            continue
        acc = out.setdefault(node, [0.0] * len(values))
        for i, v in enumerate(values):
            acc[i] += v
    return out


def jain_series(result: ExperimentResult) -> List[float]:
    """Per-interval Jain index over the sender aggregates."""
    per_sender = sender_interval_series(result)
    nodes = sorted(per_sender)
    length = min(len(per_sender[n]) for n in nodes)
    return [
        jain_index([per_sender[n][i] for n in nodes]) for i in range(length)
    ]


def convergence_time_s(
    result: ExperimentResult,
    *,
    threshold: float = DEFAULT_CONVERGENCE_THRESHOLD,
    hold_intervals: int = DEFAULT_HOLD_INTERVALS,
) -> Optional[float]:
    """First time (seconds) the Jain series reaches ``threshold`` and holds
    it for ``hold_intervals`` consecutive samples; None if it never does."""
    series = jain_series(result)
    interval_s = float(result.extra.get("interval_s", 1.0))
    times = [(i + 1) * interval_s for i in range(len(series))]
    return series_convergence_time_s(
        times, series, threshold=threshold, hold_intervals=hold_intervals
    )


def fairness_half_life_s(result: ExperimentResult) -> Optional[float]:
    """Time until the unfairness gap halves: J reaching (1 + J0) / 2,
    where J0 is the first interval's index.  None if it never halves."""
    series = jain_series(result)
    if not series:
        return None
    target = (1.0 + series[0]) / 2.0
    interval_s = float(result.extra.get("interval_s", 1.0))
    for i, j in enumerate(series):
        if j >= target:
            return (i + 1) * interval_s
    return None
