"""Short-term dynamics: per-interval fairness and convergence time.

The paper's introduction notes that "short-term dynamics of competing
high-speed TCP flows can have strong impacts on their long-term fairness"
(citing Molnar et al.).  Given a run sampled with ``sample_interval_s``,
these helpers compute the per-interval sender shares, the Jain-index time
series, and the *convergence time* — when fairness first reaches and then
holds a threshold.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.metrics.fairness import jain_index
from repro.metrics.summary import ExperimentResult


def sender_interval_series(result: ExperimentResult) -> Dict[str, List[float]]:
    """Aggregate a sampled run's per-flow series into per-sender series."""
    series = result.extra.get("series_bps")
    if not series:
        raise ValueError("result was not sampled (set sample_interval_s)")
    flow_owner = {f"flow{f.flow_id}": f.sender_node for f in result.flows}
    out: Dict[str, List[float]] = {}
    for flow_name, values in series.items():
        node = flow_owner.get(flow_name)
        if node is None:
            continue
        acc = out.setdefault(node, [0.0] * len(values))
        for i, v in enumerate(values):
            acc[i] += v
    return out


def jain_series(result: ExperimentResult) -> List[float]:
    """Per-interval Jain index over the sender aggregates."""
    per_sender = sender_interval_series(result)
    nodes = sorted(per_sender)
    length = min(len(per_sender[n]) for n in nodes)
    return [
        jain_index([per_sender[n][i] for n in nodes]) for i in range(length)
    ]


def convergence_time_s(
    result: ExperimentResult,
    *,
    threshold: float = 0.9,
    hold_intervals: int = 3,
) -> Optional[float]:
    """First time (seconds) the Jain series reaches ``threshold`` and holds
    it for ``hold_intervals`` consecutive samples; None if it never does."""
    if not 0 < threshold <= 1:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    if hold_intervals < 1:
        raise ValueError(f"hold_intervals must be >= 1, got {hold_intervals}")
    series = jain_series(result)
    interval_s = float(result.extra.get("interval_s", 1.0))
    run = 0
    for i, j in enumerate(series):
        run = run + 1 if j >= threshold else 0
        if run >= hold_intervals:
            return (i - hold_intervals + 2) * interval_s
    return None


def fairness_half_life_s(result: ExperimentResult) -> Optional[float]:
    """Time until the unfairness gap halves: J reaching (1 + J0) / 2,
    where J0 is the first interval's index.  None if it never halves."""
    series = jain_series(result)
    if not series:
        return None
    target = (1.0 + series[0]) / 2.0
    interval_s = float(result.extra.get("interval_s", 1.0))
    for i, j in enumerate(series):
        if j >= target:
            return (i + 1) * interval_s
    return None
