"""Unicode sparklines for terminal reports.

Reports and examples embed small time series (per-interval throughput,
queue backlog); :func:`sparkline` renders them as a one-line bar chart,
the closest a text report gets to the paper's figures.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

BARS = "▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[float],
    *,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    width: Optional[int] = None,
) -> str:
    """Render ``values`` as a bar-per-sample string.

    ``lo``/``hi`` pin the scale (defaults: data min/max); ``width``
    downsamples long series by averaging fixed-size buckets.  NaNs render
    as spaces.
    """
    data = [float(v) for v in values]
    if not data:
        return ""
    if width is not None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if len(data) > width:
            bucket = len(data) / width
            data = [
                _mean(data[int(i * bucket):max(int(i * bucket) + 1, int((i + 1) * bucket))])
                for i in range(width)
            ]
    finite = [v for v in data if not math.isnan(v)]
    if not finite:
        return " " * len(data)
    lo_v = lo if lo is not None else min(finite)
    hi_v = hi if hi is not None else max(finite)
    if hi_v <= lo_v:
        return BARS[0] * len(data)
    span = hi_v - lo_v
    out = []
    for v in data:
        if math.isnan(v):
            out.append(" ")
            continue
        frac = (v - lo_v) / span
        idx = min(len(BARS) - 1, max(0, int(frac * len(BARS))))
        out.append(BARS[idx])
    return "".join(out)


def _mean(chunk: Sequence[float]) -> float:
    finite = [v for v in chunk if not math.isnan(v)]
    return sum(finite) / len(finite) if finite else float("nan")
