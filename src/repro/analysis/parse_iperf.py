"""Parsing iperf3 JSON documents (ours or the real tool's).

The paper publishes raw iperf3 logs plus parsing code; this module is that
parsing code for the simulator's logs — and it sticks to fields the real
``iperf3 --json`` output also carries, so it works on genuine logs too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List


@dataclass
class IperfSummary:
    """What one iperf3 run achieved."""

    host: str
    congestion: str
    num_streams: int
    duration_s: float
    total_bytes: int
    throughput_bps: float
    retransmits: int
    interval_bps: List[float] = field(default_factory=list)


def parse_iperf_doc(doc: Dict[str, Any]) -> IperfSummary:
    """Reduce one iperf3 JSON document to an :class:`IperfSummary`."""
    try:
        start = doc["start"]
        end = doc["end"]
        test = start.get("test_start", {})
        sum_recv = end["sum_received"]
        sum_sent = end.get("sum_sent", {})
    except KeyError as exc:
        raise ValueError(f"malformed iperf3 document: missing {exc}") from None
    intervals = [
        float(iv["sum"]["bits_per_second"]) for iv in doc.get("intervals", []) if "sum" in iv
    ]
    return IperfSummary(
        host=str(start.get("connecting_to", {}).get("host", "?")),
        congestion=str(test.get("congestion", "unknown")),
        num_streams=int(test.get("num_streams", 1)),
        duration_s=float(test.get("duration", 0.0)),
        total_bytes=int(sum_recv["bytes"]),
        throughput_bps=float(sum_recv["bits_per_second"]),
        retransmits=int(sum_sent.get("retransmits", 0)),
        interval_bps=intervals,
    )


def summarize_docs(docs: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate many per-process documents into per-host sender totals.

    The paper's per-sender throughput is the sum over the node's iperf3
    processes; this is that reduction.
    """
    per_host: Dict[str, Dict[str, float]] = {}
    for doc in docs:
        s = parse_iperf_doc(doc)
        agg = per_host.setdefault(
            s.host, {"throughput_bps": 0.0, "retransmits": 0, "streams": 0}
        )
        agg["throughput_bps"] += s.throughput_bps
        agg["retransmits"] += s.retransmits
        agg["streams"] += s.num_streams
    return per_host
