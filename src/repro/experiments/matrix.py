"""The full study grid (paper Table 1): 9 x 3 x 6 x 5 = 810 configurations.

``full_matrix`` enumerates every cell (optionally x repetitions with
distinct seeds); the figure/table benches slice it with the ``where``
filters.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.experiments.config import (
    PAPER_AQMS,
    PAPER_BANDWIDTHS_BPS,
    PAPER_BUFFER_BDPS,
    PAPER_CCA_PAIRS,
    PAPER_DURATION_S,
    ExperimentConfig,
)


def full_matrix(
    *,
    cca_pairs: Sequence[Tuple[str, str]] = PAPER_CCA_PAIRS,
    aqms: Sequence[str] = PAPER_AQMS,
    buffer_bdps: Sequence[float] = PAPER_BUFFER_BDPS,
    bandwidths_bps: Sequence[float] = PAPER_BANDWIDTHS_BPS,
    repetitions: int = 1,
    base_seed: int = 1,
    duration_s: float = PAPER_DURATION_S,
    engine: str = "packet",
    scale: float = 1.0,
    mss_bytes: int = 8900,
    where: Optional[Callable[[ExperimentConfig], bool]] = None,
    **overrides,
) -> List[ExperimentConfig]:
    """Enumerate the grid.  Seeds are unique per (cell, repetition)."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    configs: List[ExperimentConfig] = []
    cell = 0
    for pair in cca_pairs:
        for aqm in aqms:
            for bdp in buffer_bdps:
                for bw in bandwidths_bps:
                    cell += 1
                    for rep in range(repetitions):
                        cfg = ExperimentConfig(
                            cca_pair=pair,
                            aqm=aqm,
                            buffer_bdp=bdp,
                            bottleneck_bw_bps=bw,
                            duration_s=duration_s,
                            seed=base_seed + cell * 1000 + rep,
                            engine=engine,
                            scale=scale,
                            mss_bytes=mss_bytes,
                            **overrides,
                        )
                        if where is None or where(cfg):
                            configs.append(cfg)
    return configs


def iter_cells() -> Iterator[Tuple[Tuple[str, str], str, float, float]]:
    """Iterate the raw (pair, aqm, buffer, bandwidth) tuples of Table 1."""
    for pair in PAPER_CCA_PAIRS:
        for aqm in PAPER_AQMS:
            for bdp in PAPER_BUFFER_BDPS:
                for bw in PAPER_BANDWIDTHS_BPS:
                    yield (pair, aqm, bdp, bw)
