"""Content-addressed result cache with sharded stores and merge/compact.

The cache answers "has *any* store ever computed this configuration?" —
the dominant speedup once the what-if matrix grows past what one sweep
recomputes (ROADMAP item 2).  Results are keyed by a content address:

    key = sha256(salt + "\\n" + canonical JSON of config.to_dict())

``config.to_dict()`` already carries every outcome-determining field
(engine included), so two configs hash equal iff their runs are
bit-identical; the *salt* folds in the repro version, so a release that
changes simulation outcomes starts a fresh namespace instead of serving
stale results.  Each salt gets its own subdirectory:

    <root>/<salt-slug>/
        canonical.jsonl          # the merged, deduplicated store
        shards/<worker>.jsonl    # per-worker append-only shards

Both the canonical file and every shard are plain
:class:`~repro.experiments.storage.ResultStore` files — any existing
tool (``repro report``, ``repro export``, the drift detector) can read
them directly.  N workers write disjoint shards (one per
:class:`ResultCache` instance, named after the worker), so concurrent
producers never contend on a file; :meth:`ResultCache.merge` folds the
shards into the canonical store — deduplicating by key,
last-write-wins — and verifies on every collision that the cached and
recomputed results are **bit-identical** (modulo ``wallclock_s``, the
only nondeterministic field).  A mismatch raises
:class:`CacheConflictError` instead of silently papering over a
nondeterministic engine.

Results that carry telemetry side-channels (``extra["obs"]``) are never
cached: they embed run-log paths that a recompute would not reproduce.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro._version import __version__
from repro.experiments.config import ExperimentConfig
from repro.experiments.storage import ResultStore
from repro.metrics.summary import ExperimentResult

PathLike = Union[str, Path]


class CacheConflictError(ValueError):
    """Two results for one config key differ where they must be identical."""


def default_salt() -> str:
    """The default cache namespace: the repro release that computed results."""
    return f"repro-{__version__}"


def salt_slug(salt: str) -> str:
    """Filesystem-safe directory name for a salt string."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", salt)
    return slug or "default"


def config_key(config: ExperimentConfig, salt: str = "") -> str:
    """Content address of one configuration (full sha256 hex digest).

    Keyed on :meth:`ExperimentConfig.canonical_dict` — the same canonical
    form the scenario IR lowers to — so equivalent legacy and IR
    submissions collide on one cache entry.
    """
    blob = json.dumps(config.canonical_dict(), sort_keys=True)
    return hashlib.sha256(f"{salt}\n{blob}".encode("utf-8")).hexdigest()


def canonical_result_dict(result_dict: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic identity of a result: ``to_dict`` minus wall clock.

    ``wallclock_s`` is the only field that legitimately differs between a
    cached result and a fresh recompute of the same config; everything
    else — flow stats, fairness series, event counts — must match
    bit-for-bit.  Cache-equivalence checks and merge conflict detection
    both compare this form.
    """
    d = dict(result_dict)
    d.pop("wallclock_s", None)
    return d


def results_equivalent(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    """True iff two result dicts are bit-identical modulo ``wallclock_s``."""
    return json.dumps(canonical_result_dict(a), sort_keys=True) == json.dumps(
        canonical_result_dict(b), sort_keys=True
    )


def _cacheable(result_dict: Dict[str, Any]) -> bool:
    extra = result_dict.get("extra")
    return not (isinstance(extra, dict) and "obs" in extra)


class ResultCache:
    """Content-addressed get/put over a sharded on-disk result layout.

    One instance belongs to one *worker* (the shard it appends to); any
    number of instances — across processes or hosts sharing the
    filesystem — may read concurrently.  The in-memory index is built at
    construction from the canonical store plus every shard, and can be
    rebuilt with :meth:`refresh` to pick up other workers' appends.
    """

    def __init__(
        self,
        root: PathLike,
        *,
        salt: Optional[str] = None,
        worker: Optional[str] = None,
    ):
        self.root = Path(root)
        self.salt = default_salt() if salt is None else salt
        self.dir = self.root / salt_slug(self.salt)
        self.shards_dir = self.dir / "shards"
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        self.worker = worker if worker is not None else f"w{os.getpid()}"
        self.canonical = ResultStore(self.dir / "canonical.jsonl")
        self._shard: Optional[ResultStore] = None
        #: key -> full result dict (as stored, wallclock included).
        self._index: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.refresh()

    # -- identity -----------------------------------------------------------------

    def key_for(self, config: ExperimentConfig) -> str:
        """This cache's content address for ``config`` (salt included)."""
        return config_key(config, self.salt)

    def _key_of_dict(self, config_dict: Dict[str, Any]) -> str:
        return config_key(ExperimentConfig.from_dict(config_dict), self.salt)

    # -- layout -------------------------------------------------------------------

    @property
    def shard_path(self) -> Path:
        """This worker's append shard (created lazily on first put)."""
        return self.shards_dir / f"{self.worker}.jsonl"

    def shard_paths(self) -> List[Path]:
        """Every shard file currently on disk, in sorted (merge) order."""
        return sorted(self.shards_dir.glob("*.jsonl"))

    # -- index --------------------------------------------------------------------

    def refresh(self) -> int:
        """Rebuild the index from canonical + shards; returns entry count.

        Within the scan, later occurrences of a key overwrite earlier
        ones (canonical first, then shards in sorted order) — the same
        last-write-wins rule :meth:`merge` applies durably.
        """
        index: Dict[str, Dict[str, Any]] = {}
        for store in [self.canonical] + [ResultStore(p) for p in self.shard_paths()]:
            for _lineno, d in store.iter_dicts():
                index[self._key_of_dict(d["config"])] = d
        self._index = index
        return len(index)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, config: ExperimentConfig) -> bool:
        return self.key_for(config) in self._index

    # -- get / put / stats --------------------------------------------------------

    def get(self, config: ExperimentConfig) -> Optional[ExperimentResult]:
        """Cached result for ``config``, or None (counted as hit/miss)."""
        d = self._index.get(self.key_for(config))
        if d is None:
            self.misses += 1
            return None
        self.hits += 1
        return ExperimentResult.from_dict(d)

    def put(self, result: ExperimentResult) -> bool:
        """Record a computed result in this worker's shard.

        Returns True if the result was appended, False if the key was
        already present with an equivalent result (dedup) or the result
        is not cacheable (telemetry side-channels).  A key collision with
        a *different* result raises :class:`CacheConflictError`.
        """
        d = result.to_dict()
        if not _cacheable(d):
            return False
        key = self._key_of_dict(d["config"])
        have = self._index.get(key)
        if have is not None:
            if not results_equivalent(have, d):
                raise CacheConflictError(self._conflict_message(key, have, d))
            return False
        if self._shard is None:
            self._shard = ResultStore(self.shard_path)
        self._shard.append_dict(d)
        self._index[key] = d
        self.puts += 1
        return True

    def stats(self) -> Dict[str, Any]:
        """Counters + layout facts for CLI/metrics surfaces."""
        return {
            "salt": self.salt,
            "dir": str(self.dir),
            "entries": len(self._index),
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "shards": len(self.shard_paths()),
            "canonical_exists": self.canonical.path.exists(),
        }

    # -- merge / compact ----------------------------------------------------------

    def merge(self) -> Dict[str, int]:
        """Fold every shard into the canonical store and delete the shards.

        Dedup is by config key, last-write-wins (canonical, then shards
        in sorted filename order, then line order); every collision is
        checked for bit-identity modulo ``wallclock_s`` and a mismatch
        raises :class:`CacheConflictError`.  The canonical store is
        rewritten atomically (temp file + rename), sorted by key so the
        merged file is deterministic regardless of shard arrival order.

        Call this from a single owner while shard writers are quiescent
        (end of a sweep, a cron compaction); concurrent appenders to a
        shard being folded would lose their tail.
        """
        merged: Dict[str, Dict[str, Any]] = {}
        duplicates = 0
        for _lineno, d in self.canonical.iter_dicts():
            merged[self._key_of_dict(d["config"])] = d
        shard_files = self.shard_paths()
        for path in shard_files:
            for _lineno, d in ResultStore(path).iter_dicts():
                key = self._key_of_dict(d["config"])
                have = merged.get(key)
                if have is not None:
                    if not results_equivalent(have, d):
                        raise CacheConflictError(self._conflict_message(key, have, d))
                    duplicates += 1
                merged[key] = d  # last write wins
        tmp = self.canonical.path.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            for key in sorted(merged):
                fh.write(json.dumps(merged[key], sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.canonical.path)
        for path in shard_files:
            path.unlink()
        if self._shard is not None:
            self._shard.close()
            self._shard = None
        self._index = merged
        return {
            "entries": len(merged),
            "shards_folded": len(shard_files),
            "duplicates": duplicates,
        }

    def close(self) -> None:
        """Release the shard write handle (idempotent)."""
        if self._shard is not None:
            self._shard.close()
            self._shard = None

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _conflict_message(key: str, a: Dict[str, Any], b: Dict[str, Any]) -> str:
        label = ExperimentConfig.from_dict(a["config"]).label()
        fields = sorted(
            k
            for k in set(canonical_result_dict(a)) | set(canonical_result_dict(b))
            if canonical_result_dict(a).get(k) != canonical_result_dict(b).get(k)
        )
        return (
            f"cache conflict for {label} (key {key[:12]}): two results for "
            f"one config differ in {fields} — cached and recomputed results "
            "must be bit-identical (modulo wallclock_s)"
        )
