"""Filesystem work queue: N campaign processes pull shards safely.

The queue turns a config list into durable *tasks* that any number of
worker processes — on one host or on many sharing a filesystem — can
drain concurrently without coordination beyond atomic file creation:

    <queue>/
        tasks.jsonl        # the frozen task list (written once, atomically)
        claims/<id>.json   # O_CREAT|O_EXCL claim marker: exactly one winner
        done/<id>.json     # completion marker, written after results persist

A *task* is either one config (``kind="one"``) or a whole batched-fluid
lock-step shard (``kind="shard"``, planned by
:func:`repro.fluid.state.plan_shards`) that advances as one stacked
integration.  Task ids are content addresses of the member configs, so
re-creating a queue from the same config list resumes it instead of
duplicating work.

Claim protocol
--------------

- ``claim()`` walks the task list; for each task not yet done it tries
  to create ``claims/<id>.json`` with ``O_CREAT | O_EXCL`` — the
  filesystem guarantees exactly one process wins.
- A claim whose owner process is dead (same host, ``os.kill(pid, 0)``
  fails) and whose task has no done marker is *stale* — the worker was
  SIGKILLed mid-shard.  Reclaim races through ``os.rename`` of the stale
  claim (again: exactly one winner), then a fresh claim is created.
- ``complete()`` writes the done marker only after every result of the
  task has been flushed to the store, so a crash loses at most the
  in-flight task, never a completed one.

Workers stream results into a shared :class:`ResultStore` (line-atomic
O_APPEND) and their own :class:`~repro.experiments.cache.ResultCache`
shard.  On reclaim, a worker consults the store for the task's already-
persisted labels and re-runs **only the incomplete configs** — together
with the store's torn-write repair this makes SIGKILL-at-any-instant
resumable.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import traceback as _traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.experiments.cache import ResultCache
from repro.experiments.campaign import (
    CampaignResult,
    FailedRun,
    _append_failure,
    _run_batched_shard_safe,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.storage import ResultStore
from repro.metrics.summary import ExperimentResult

PathLike = Union[str, Path]


@dataclass
class QueueTask:
    """One durable unit of work: a config, or a batched-fluid shard."""

    task_id: str
    kind: str  # "one" | "shard"
    configs: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form, one ``tasks.jsonl`` line."""
        return {"task_id": self.task_id, "kind": self.kind, "configs": self.configs}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "QueueTask":
        """Rebuild a task from its :meth:`to_dict` form."""
        return cls(task_id=d["task_id"], kind=d["kind"], configs=d["configs"])


def task_id_for(config_dicts: Sequence[Dict[str, Any]]) -> str:
    """Content address of a task: hash of its member config dicts."""
    blob = json.dumps(list(config_dicts), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]


def plan_tasks(configs: Sequence[ExperimentConfig]) -> List[QueueTask]:
    """Shard a config list into queue tasks.

    ``fluid_batched`` configs group into lock-step shards (one stacked
    integration per task); everything else becomes one task per config.
    """
    batched = [c for c in configs if c.engine == "fluid_batched"]
    singles = [c for c in configs if c.engine != "fluid_batched"]
    tasks: List[QueueTask] = []
    if batched:
        from repro.fluid.state import plan_shards

        for shard in plan_shards(batched):
            dicts = [batched[i].to_dict() for i in shard]
            tasks.append(QueueTask(task_id_for(dicts), "shard", dicts))
    for cfg in singles:
        dicts = [cfg.to_dict()]
        tasks.append(QueueTask(task_id_for(dicts), "one", dicts))
    return tasks


class WorkQueue:
    """A durable task list plus the claim/done protocol over one directory."""

    def __init__(self, path: PathLike, tasks: List[QueueTask]):
        self.path = Path(path)
        self.claims_dir = self.path / "claims"
        self.done_dir = self.path / "done"
        self.claims_dir.mkdir(parents=True, exist_ok=True)
        self.done_dir.mkdir(parents=True, exist_ok=True)
        self.tasks = tasks
        self._by_id = {t.task_id: t for t in tasks}
        #: Tasks this instance reclaimed from a dead owner (for store dedup).
        self.reclaimed: set = set()

    # -- construction -------------------------------------------------------------

    @classmethod
    def create(
        cls, path: PathLike, configs: Sequence[ExperimentConfig]
    ) -> "WorkQueue":
        """Create a queue from ``configs``, or *join* an identical one.

        The task list is written atomically exactly once; a second
        process calling ``create`` with the same configs joins the
        existing queue.  Joining with a *different* task set raises — a
        queue directory holds one frozen sweep.
        """
        path = Path(path)
        tasks = plan_tasks(configs)
        tasks_file = path / "tasks.jsonl"
        if not tasks_file.exists():
            path.mkdir(parents=True, exist_ok=True)
            tmp = tasks_file.with_suffix(f".tmp.{os.getpid()}")
            with tmp.open("w", encoding="utf-8") as fh:
                for task in tasks:
                    fh.write(json.dumps(task.to_dict(), sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            try:
                # Atomic publish: link() fails if another creator already
                # won the race, and the join-and-verify path below then
                # checks we agree on the task set.
                os.link(tmp, tasks_file)
            except FileExistsError:
                pass
            finally:
                tmp.unlink(missing_ok=True)
        queue = cls.open(path)
        if {t.task_id for t in queue.tasks} != {t.task_id for t in tasks}:
            raise ValueError(
                f"{tasks_file} holds a different task set — a queue "
                "directory is one frozen sweep; use a fresh directory"
            )
        return queue

    @classmethod
    def open(cls, path: PathLike) -> "WorkQueue":
        """Join an existing queue directory."""
        path = Path(path)
        tasks_file = path / "tasks.jsonl"
        if not tasks_file.exists():
            raise FileNotFoundError(f"no task list at {tasks_file}")
        tasks = []
        with tasks_file.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    tasks.append(QueueTask.from_dict(json.loads(line)))
        return cls(path, tasks)

    # -- claim / complete ---------------------------------------------------------

    def _claim_path(self, task_id: str) -> Path:
        return self.claims_dir / f"{task_id}.json"

    def _done_path(self, task_id: str) -> Path:
        return self.done_dir / f"{task_id}.json"

    def is_done(self, task_id: str) -> bool:
        """True once the task's done marker exists (results persisted)."""
        return self._done_path(task_id).exists()

    def _try_claim(self, task_id: str) -> bool:
        """Atomically create the claim marker; False if somebody holds it."""
        try:
            fd = os.open(
                self._claim_path(task_id), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(
                {"pid": os.getpid(), "host": socket.gethostname()},
                fh,
                sort_keys=True,
            )
        return True

    def _claim_is_stale(self, task_id: str) -> bool:
        """A claim with a dead same-host owner and no done marker."""
        try:
            with self._claim_path(task_id).open("r", encoding="utf-8") as fh:
                claim = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return False  # mid-write or already reclaimed: not ours to judge
        if claim.get("host") != socket.gethostname():
            return False  # cross-host liveness is unknowable from here
        pid = claim.get("pid")
        if not isinstance(pid, int):
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except PermissionError:
            return False  # alive, owned by someone else
        return False

    def _try_reclaim(self, task_id: str) -> bool:
        """Steal a stale claim; exactly one contender wins the rename."""
        stale = self._claim_path(task_id)
        tombstone = self.claims_dir / f"{task_id}.stale.{os.getpid()}"
        try:
            os.rename(stale, tombstone)
        except OSError:
            return False
        return self._try_claim(task_id)

    def claim(self) -> Optional[QueueTask]:
        """Claim the next available task, or None when nothing is claimable.

        None does not mean *drained*: other workers may still hold live
        claims.  Check :meth:`drained` / :meth:`counts` for completion.
        """
        for task in self.tasks:
            if self.is_done(task.task_id):
                continue
            if self._try_claim(task.task_id):
                return task
            if self._claim_is_stale(task.task_id) and self._try_reclaim(task.task_id):
                self.reclaimed.add(task.task_id)
                return task
        return None

    def complete(self, task_id: str, *, results: int = 0, failures: int = 0) -> None:
        """Mark a task done (idempotent); call only after results persist."""
        tmp = self._done_path(task_id).with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump({"results": results, "failures": failures}, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._done_path(task_id))

    def release(self, task_id: str) -> None:
        """Drop this worker's claim so another worker can take the task."""
        self._claim_path(task_id).unlink(missing_ok=True)

    # -- accounting ---------------------------------------------------------------

    @property
    def drained(self) -> bool:
        """True when every task has a done marker."""
        return all(self.is_done(t.task_id) for t in self.tasks)

    def counts(self) -> Dict[str, int]:
        """Task-level progress: total / done / claimed / pending."""
        done = sum(1 for t in self.tasks if self.is_done(t.task_id))
        claimed = sum(
            1
            for t in self.tasks
            if not self.is_done(t.task_id) and self._claim_path(t.task_id).exists()
        )
        return {
            "tasks": len(self.tasks),
            "configs": sum(len(t.configs) for t in self.tasks),
            "done": done,
            "claimed": claimed,
            "pending": len(self.tasks) - done - claimed,
        }

    def __iter__(self) -> Iterator[QueueTask]:
        return iter(self.tasks)


def run_queue_worker(
    queue: WorkQueue,
    *,
    store: Optional[ResultStore] = None,
    cache: Optional[ResultCache] = None,
    progress=None,
    on_failure=None,
    run_fn=None,
) -> CampaignResult:
    """Drain tasks from ``queue`` until none are claimable.

    The existing campaign pool becomes "one consumer": any number of
    processes may run this against the same queue/store/cache root and
    the claim protocol keeps their work disjoint.  Per config: a cache
    hit skips the engine entirely; otherwise the engine runs (``run_fn``
    seam for tests), the result streams into the shared store and this
    worker's cache shard, and only then is the task marked done.

    On a *reclaimed* task (previous owner SIGKILLed mid-shard) the store
    is consulted first and configs whose labels already persisted are
    not re-appended — re-run covers only the incomplete configs.
    """
    run_fn = run_fn or run_experiment
    done = CampaignResult()
    finished = 0
    total = queue.counts()["configs"]

    def _persist(result: ExperimentResult, *, skip_store: bool = False) -> None:
        nonlocal finished
        finished += 1
        if store is not None and not skip_store:
            store.append(result)
        if cache is not None:
            cache.put(result)
        done.append(result)
        if progress is not None:
            progress(finished, total, result)

    def _persist_failure(failure: FailedRun) -> None:
        nonlocal finished
        finished += 1
        done.failures.append(failure)
        _append_failure(store, failure)
        if on_failure is not None:
            on_failure(finished, total, failure)

    while True:
        task = queue.claim()
        if task is None:
            break
        stored_labels: set = set()
        if task.task_id in queue.reclaimed and store is not None:
            task_labels = {
                ExperimentConfig.from_dict(d).label() for d in task.configs
            }
            stored_labels = store.completed_labels() & task_labels
        results = 0
        failures = 0
        if task.kind == "shard":
            todo = [
                d
                for d in task.configs
                if ExperimentConfig.from_dict(d).label() not in stored_labels
            ]
            cached, fresh = _take_cached(todo, cache)
            for result in cached:
                done.cache_hits += 1
                _persist(result)
                results += 1
            if fresh:
                for tagged in _run_batched_shard_safe(fresh)["many"]:
                    if "ok" in tagged:
                        done.engine_runs += 1
                        _persist(ExperimentResult.from_dict(tagged["ok"]))
                        results += 1
                    else:
                        done.engine_runs += 1
                        _persist_failure(FailedRun.from_dict(tagged["err"]))
                        failures += 1
        else:
            for config_dict in task.configs:
                cfg = ExperimentConfig.from_dict(config_dict)
                already_stored = cfg.label() in stored_labels
                cached = cache.get(cfg) if cache is not None else None
                if cached is not None:
                    done.cache_hits += 1
                    _persist(cached, skip_store=already_stored)
                    results += 1
                    continue
                if already_stored:
                    # Persisted by the dead owner but absent from the
                    # cache (crash between the two appends): recover the
                    # stored row instead of recomputing.
                    recovered = _stored_result(store, cfg)
                    if recovered is not None:
                        done.cache_hits += 1
                        _persist(recovered, skip_store=True)
                        results += 1
                        continue
                try:
                    result = run_fn(cfg)
                except Exception as exc:
                    done.engine_runs += 1
                    _persist_failure(
                        FailedRun(
                            config=config_dict,
                            label=cfg.label(),
                            error=repr(exc),
                            traceback=_traceback.format_exc(),
                        )
                    )
                    failures += 1
                    continue
                done.engine_runs += 1
                _persist(result)
                results += 1
        queue.complete(task.task_id, results=results, failures=failures)
    return done


def _take_cached(
    config_dicts: List[Dict[str, Any]], cache: Optional[ResultCache]
) -> Tuple[List[ExperimentResult], List[Dict[str, Any]]]:
    """Split shard members into (cached results, configs still to run)."""
    if cache is None:
        return [], list(config_dicts)
    cached: List[ExperimentResult] = []
    fresh: List[Dict[str, Any]] = []
    for d in config_dicts:
        hit = cache.get(ExperimentConfig.from_dict(d))
        if hit is not None:
            cached.append(hit)
        else:
            fresh.append(d)
    return cached, fresh


def _stored_result(
    store: Optional[ResultStore], cfg: ExperimentConfig
) -> Optional[ExperimentResult]:
    if store is None:
        return None
    label = cfg.label()
    for result in store:
        if ExperimentConfig.from_dict(result.config).label() == label:
            return result
    return None
