"""Experiment configuration (paper Tables 1 & 2).

An :class:`ExperimentConfig` pins one cell of the study: the CCA pair
(sender node 1's algorithm vs sender node 2's), the AQM, the buffer size
in BDP multiples, and the bottleneck bandwidth — plus run mechanics
(duration, seed, engine, scale).

:func:`flow_plan` reproduces Table 2's iperf3 scaling: the number of
iperf3 processes per node and parallel streams per process for each
bottleneck tier (flow counts are keyed to the *paper* bandwidth even when
the run itself is rate-scaled, so the flow-count/BW relationship the
paper studies is preserved).
"""

from __future__ import annotations

import contextlib
import threading
import warnings
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.cca.registry import canonical_cca_name
from repro.units import gbps, mbps

#: Paper Table 1 columns.
PAPER_BANDWIDTHS_BPS: Tuple[float, ...] = (mbps(100), mbps(500), gbps(1), gbps(10), gbps(25))
PAPER_BUFFER_BDPS: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0)
PAPER_AQMS: Tuple[str, ...] = ("fifo", "fq_codel", "red")
PAPER_CCA_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("bbrv1", "cubic"),
    ("bbrv2", "cubic"),
    ("htcp", "cubic"),
    ("reno", "cubic"),
    ("cubic", "cubic"),
    ("bbrv1", "bbrv1"),
    ("bbrv2", "bbrv2"),
    ("htcp", "htcp"),
    ("reno", "reno"),
)
PAPER_DURATION_S = 200.0
PAPER_REPETITIONS = 5


@dataclass(frozen=True)
class FlowPlan:
    """Table 2 row: iperf3 processes per node x parallel streams each."""

    processes_per_node: int
    streams_per_process: int

    @property
    def flows_per_node(self) -> int:
        return self.processes_per_node * self.streams_per_process

    @property
    def total_flows(self) -> int:
        return 2 * self.flows_per_node


#: Table 2, keyed by bottleneck bandwidth.
PAPER_FLOW_PLANS: Dict[float, FlowPlan] = {
    mbps(100): FlowPlan(1, 1),
    mbps(500): FlowPlan(5, 1),
    gbps(1): FlowPlan(10, 1),
    gbps(10): FlowPlan(10, 10),
    gbps(25): FlowPlan(25, 10),
}


def flow_plan(bottleneck_bw_bps: float) -> FlowPlan:
    """The Table 2 plan for a tier (nearest tier for off-grid bandwidths)."""
    if bottleneck_bw_bps <= 0:
        raise ValueError("bandwidth must be positive")
    exact = PAPER_FLOW_PLANS.get(bottleneck_bw_bps)
    if exact is not None:
        return exact
    nearest = min(PAPER_FLOW_PLANS, key=lambda bw: abs(bw - bottleneck_bw_bps) / bw)
    return PAPER_FLOW_PLANS[nearest]


#: Knobs whose *direct* construction is deprecated in favor of the typed
#: scenario IR sub-specs (repro.scenario; see docs/SCENARIO.md).  Maps
#: field name -> (is-set predicate, IR equivalent named in the warning).
_IR_SUPERSEDED_KNOBS: Tuple[Tuple[str, Callable[[Any], bool], str], ...] = (
    ("sample_interval_s", lambda v: v is not None, "Scenario.sampling.throughput_interval_s"),
    ("queue_monitor_interval_s", lambda v: v is not None, "Scenario.sampling.queue_interval_s"),
    ("fairness_interval_s", lambda v: v is not None, "Scenario.sampling.fairness_interval_s"),
    ("faults", lambda v: bool(v), "Scenario.faults"),
)

#: Fields omitted from the canonical dict when at their legacy-default
#: values, keeping config hashes, cache keys, stored results, and golden
#: fixtures byte-identical to the era before each field existed.
_CANONICAL_OMIT: Tuple[Tuple[str, Callable[[Any], bool]], ...] = (
    ("faults", lambda v: not v),
    ("fairness_interval_s", lambda v: v is None),
)

_legacy_depth = threading.local()


@contextlib.contextmanager
def legacy_construction() -> Iterator[None]:
    """Suppress IR-supersession warnings for one construction site.

    Internal paths that *re-materialize* configs — ``from_dict`` on stored
    results, the scenario compilers, campaign workers — are not the
    deprecated pattern; they wrap construction in this context so only
    user code building engine-specific knobs directly gets warned.
    """
    _legacy_depth.value = getattr(_legacy_depth, "value", 0) + 1
    try:
        yield
    finally:
        _legacy_depth.value -= 1


@dataclass
class ExperimentConfig:
    """One cell of the study grid (x one repetition via ``seed``)."""

    cca_pair: Tuple[str, str]
    aqm: str = "fifo"
    buffer_bdp: float = 2.0
    bottleneck_bw_bps: float = mbps(100)
    duration_s: float = PAPER_DURATION_S
    mss_bytes: int = 8900
    seed: int = 0
    engine: str = "packet"  # "packet" | "fluid" | "fluid_batched"
    scale: float = 1.0
    #: Override Table 2 (None = derive from the *unscaled* bandwidth).
    flows_per_node: Optional[int] = None
    warmup_s: float = 0.0
    ecn_mode: bool = False
    aqm_params: Dict[str, Any] = field(default_factory=dict)
    delay_multiplier: float = 1.0
    #: Per-sender access-delay stretch (packet engine; RTT unfairness).
    client_delay_multipliers: Tuple[float, float] = (1.0, 1.0)
    trunk_loss_rate: float = 0.0
    sample_interval_s: Optional[float] = None
    #: Sample the bottleneck queue (backlog/drops/RED avg) at this cadence
    #: (packet engine only; the paper's "detailed router logs" future work).
    queue_monitor_interval_s: Optional[float] = None
    #: Record fairness dynamics (Jain/φ/queue series, convergence time,
    #: sync-loss instants) at this simulated-time cadence.  Works on all
    #: three engines and never perturbs outcomes (see repro.obs.fairness).
    fairness_interval_s: Optional[float] = None
    #: Deterministic fault-injection timeline: a list of FaultSpec dicts
    #: (see repro.faults and docs/FAULTS.md).  Packet engine only.
    faults: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.cca_pair = (
            canonical_cca_name(self.cca_pair[0]),
            canonical_cca_name(self.cca_pair[1]),
        )
        if self.aqm not in ("fifo", "red", "fq_codel", "codel", "pie"):
            raise ValueError(f"unknown AQM {self.aqm!r}")
        if self.engine not in ("packet", "fluid", "fluid_batched"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.warmup_s < 0 or self.warmup_s >= self.duration_s:
            raise ValueError("warmup must be in [0, duration)")
        if self.flows_per_node is not None and self.flows_per_node < 1:
            raise ValueError("flows_per_node must be >= 1")
        if self.fairness_interval_s is not None and self.fairness_interval_s <= 0:
            raise ValueError("fairness_interval_s must be positive")
        if self.faults:
            from repro.faults.spec import normalize_faults

            if self.engine != "packet":
                raise ValueError("faults require the packet engine")
            # Validate every spec up front and pin the stable full-dict
            # form (what label() hashes and workers unpickle).
            self.faults = normalize_faults(self.faults)
        if not getattr(_legacy_depth, "value", 0):
            for knob, is_set, ir_equivalent in _IR_SUPERSEDED_KNOBS:
                if is_set(getattr(self, knob)):
                    warnings.warn(
                        f"ExperimentConfig.{knob} as a direct constructor "
                        f"argument is deprecated; declare it on the scenario "
                        f"IR instead ({ir_equivalent} — see docs/SCENARIO.md)",
                        DeprecationWarning,
                        stacklevel=3,
                    )

    @property
    def is_intra_cca(self) -> bool:
        """Both sender nodes run the same algorithm (intra-CCA experiment)."""
        return self.cca_pair[0] == self.cca_pair[1]

    @property
    def plan(self) -> FlowPlan:
        if self.flows_per_node is not None:
            return FlowPlan(self.flows_per_node, 1)
        return flow_plan(self.bottleneck_bw_bps)

    def label(self) -> str:
        """Compact id used in result stores and reports."""
        from repro.units import format_rate

        pair = f"{self.cca_pair[0]}-vs-{self.cca_pair[1]}"
        rate = format_rate(self.bottleneck_bw_bps).replace(" ", "")
        label = f"{pair}_{self.aqm}_{self.buffer_bdp:g}bdp_{rate}_seed{self.seed}"
        if self.faults:
            # Configs differing only in their fault timeline must not
            # collide in result stores / resume bookkeeping.
            import json
            import zlib

            digest = zlib.crc32(
                json.dumps(self.faults, sort_keys=True).encode("utf-8")
            )
            label += f"_faults{digest:08x}"
        return label

    def canonical_dict(self) -> Dict[str, Any]:
        """The one canonical JSON-ready form of this configuration.

        Every identity consumer — the content-addressed cache key, stored
        results, golden fixtures, and the scenario IR façade — derives
        from this dict.  Tuples become lists, and fields still at their
        legacy-default values (see ``_CANONICAL_OMIT``) are dropped so the
        serialized form stays byte-identical across releases that added
        those fields.
        """
        d = asdict(self)
        d["cca_pair"] = list(self.cca_pair)
        d["client_delay_multipliers"] = list(self.client_delay_multipliers)
        for key, at_default in _CANONICAL_OMIT:
            if key in d and at_default(d[key]):
                d.pop(key)
        return d

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (tuples become lists); inverse of from_dict."""
        return self.canonical_dict()

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ExperimentConfig":
        d = dict(d)
        d["cca_pair"] = tuple(d["cca_pair"])
        if "client_delay_multipliers" in d:
            d["client_delay_multipliers"] = tuple(d["client_delay_multipliers"])
        with legacy_construction():
            return cls(**d)
