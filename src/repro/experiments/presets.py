"""Run-scale presets.

The paper's full campaign (810 configs x 5 reps x 200 s at up to 25 Gbps)
is ~100 billion packet events — out of reach for a pure-Python DES.  The
presets trade scope for tractability along the axes DESIGN.md documents:

- ``paper-fluid``  — the full grid on the fluid engine (fast; the default
  source for EXPERIMENTS.md's Table 3 / figure-shape numbers).
- ``paper-fluid-batched`` — the same grid on the vectorized fluid
  backend; bit-identical results, one stacked integration per shard.
- ``scaled-des``   — the packet engine with every link rate divided by
  ``SCALE`` and a shortened duration.  BDP-in-packets stays ordered
  across tiers, so buffer-dependent phenomena keep their shape.
- ``smoke``        — a two-tier, seconds-long packet run for CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.experiments.config import ExperimentConfig
from repro.experiments.matrix import full_matrix
from repro.units import gbps, mbps

#: Rate divisor for the scaled DES preset.
SCALED_DES_SCALE = 250.0
SCALED_DES_DURATION_S = 15.0
SCALED_DES_MSS = 1500


@dataclass(frozen=True)
class Preset:
    name: str
    description: str
    build: Callable[[], List[ExperimentConfig]]


def _paper_fluid() -> List[ExperimentConfig]:
    return full_matrix(engine="fluid", repetitions=5)


def _paper_fluid_batched() -> List[ExperimentConfig]:
    """The paper grid on the vectorized fluid backend.

    Bit-identical results to ``paper-fluid`` (the cross-validation suite
    in ``tests/fluid/test_batched_vs_scalar.py`` enforces it); the
    campaign driver advances each lock-step shard of 270 configs as one
    stacked integration instead of 270 separate runs.
    """
    return full_matrix(engine="fluid_batched", repetitions=5)


def _scaled_des() -> List[ExperimentConfig]:
    return full_matrix(
        engine="packet",
        scale=SCALED_DES_SCALE,
        duration_s=SCALED_DES_DURATION_S,
        mss_bytes=SCALED_DES_MSS,
        repetitions=1,
    )


def _claims() -> List[ExperimentConfig]:
    """The smallest slice that exercises every paper claim in
    :mod:`repro.analysis.validate`: the BBRv1-vs-CUBIC pair plus all intra
    pairs, small/medium/large buffers, bottom/middle/top tiers."""
    return full_matrix(
        cca_pairs=(
            ("bbrv1", "cubic"),
            ("bbrv1", "bbrv1"),
            ("bbrv2", "bbrv2"),
            ("cubic", "cubic"),
            ("reno", "reno"),
            ("htcp", "htcp"),
        ),
        buffer_bdps=(0.5, 2.0, 16.0),
        bandwidths_bps=(mbps(100), gbps(1), gbps(25)),
        engine="fluid",
        duration_s=30.0,
        warmup_s=5.0,
    )


def _smoke() -> List[ExperimentConfig]:
    return full_matrix(
        cca_pairs=(("cubic", "cubic"), ("bbrv1", "cubic")),
        aqms=("fifo",),
        buffer_bdps=(2.0,),
        bandwidths_bps=(mbps(100),),
        engine="packet",
        scale=5.0,
        duration_s=5.0,
        mss_bytes=1500,
    )


def _chaos_smoke() -> List[ExperimentConfig]:
    """The smoke grid with the ``chaos`` fault profile layered on every
    cell: a mid-run link flap, a loss burst, and a bandwidth dip.  Used by
    the CI ``chaos-smoke`` job to exercise the fault path end to end."""
    import dataclasses

    from repro.experiments.config import legacy_construction
    from repro.faults.profiles import get_profile

    profile = get_profile("chaos-smoke")
    with legacy_construction():
        return [dataclasses.replace(cfg, faults=list(profile)) for cfg in _smoke()]


PRESETS: Dict[str, Preset] = {
    "paper-fluid": Preset("paper-fluid", "Full 810-config grid, fluid engine, 5 reps", _paper_fluid),
    "paper-fluid-batched": Preset(
        "paper-fluid-batched",
        "Full 810-config grid, batched fluid engine, 5 reps (bit-identical, faster)",
        _paper_fluid_batched,
    ),
    "scaled-des": Preset(
        "scaled-des",
        f"Full grid, packet engine, rates / {SCALED_DES_SCALE:g}, {SCALED_DES_DURATION_S:g}s",
        _scaled_des,
    ),
    "claims": Preset(
        "claims",
        "Minimal fluid slice covering every validate_claims check",
        _claims,
    ),
    "smoke": Preset("smoke", "Tiny packet-engine grid for CI", _smoke),
    "chaos-smoke": Preset(
        "chaos-smoke",
        "Smoke grid with the chaos-smoke fault profile on every cell",
        _chaos_smoke,
    ),
}


def get_preset(name: str) -> List[ExperimentConfig]:
    """Build the config list for the preset called ``name``."""
    try:
        return PRESETS[name].build()
    except KeyError:
        raise ValueError(f"unknown preset {name!r}; have {sorted(PRESETS)}") from None
