"""Experiment configuration, the 810-cell grid, runners, campaign driver,
and the sweep-service layers (content-addressed cache + work queue)."""

from repro.experiments.cache import ResultCache, config_key
from repro.experiments.config import ExperimentConfig, FlowPlan, flow_plan
from repro.experiments.matrix import full_matrix
from repro.experiments.presets import PRESETS, get_preset
from repro.experiments.queue import WorkQueue, run_queue_worker
from repro.experiments.runner import run_experiment

__all__ = [
    "ExperimentConfig",
    "FlowPlan",
    "flow_plan",
    "full_matrix",
    "run_experiment",
    "PRESETS",
    "get_preset",
    "ResultCache",
    "config_key",
    "WorkQueue",
    "run_queue_worker",
]
