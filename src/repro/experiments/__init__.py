"""Experiment configuration, the 810-cell grid, runners and campaign driver."""

from repro.experiments.config import ExperimentConfig, FlowPlan, flow_plan
from repro.experiments.matrix import full_matrix
from repro.experiments.presets import PRESETS, get_preset
from repro.experiments.runner import run_experiment

__all__ = [
    "ExperimentConfig",
    "FlowPlan",
    "flow_plan",
    "full_matrix",
    "run_experiment",
    "PRESETS",
    "get_preset",
]
