"""Run one experiment configuration and produce an :class:`ExperimentResult`.

The packet engine builds the paper's dumbbell, opens the Table 2 flow
complement (client1 -> server1 with ``cca_pair[0]``, client2 -> server2
with ``cca_pair[1]``), runs the clock for ``duration_s`` of simulated
time, and aggregates per-flow counters into per-sender statistics, Jain's
index, link utilization, and retransmission totals.  The fluid engine is
dispatched to :mod:`repro.fluid.runner`.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.cca.registry import make_cca
from repro.experiments.config import ExperimentConfig
from repro.faults.schedule import FaultSchedule
from repro.metrics.fairness import jain_index
from repro.metrics.queue_monitor import QueueMonitor
from repro.metrics.summary import ExperimentResult, FlowStats, SenderStats
from repro.metrics.timeseries import ThroughputSampler
from repro.metrics.utilization import link_utilization
from repro.obs.fairness import instrument_packet_fairness
from repro.obs.session import TelemetryOptions, TelemetrySession
from repro.obs.spans import CAT_RUN, NULL_SPAN_TRACER
from repro.tcp.connection import Connection, open_connection
from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
from repro.units import milliseconds, seconds

#: Start jitter span for flow launch, mimicking near-simultaneous iperf3
#: process spawns (and desynchronizing slow-start among parallel streams).
START_JITTER_NS = milliseconds(100)

#: Cadence (simulated time) of run-log progress records when telemetry is on.
PROGRESS_INTERVAL_NS = seconds(1)


def run_experiment(
    config: ExperimentConfig,
    telemetry: Optional[TelemetryOptions] = None,
) -> ExperimentResult:
    """Execute one configuration with the engine it names.

    ``telemetry``, when given, opens a :class:`TelemetrySession` around the
    run: manifest + metrics + summary records go to a JSONL run log, and a
    failure dumps the flight-recorder window.  Telemetry is deliberately
    *not* part of :class:`ExperimentConfig` — it never perturbs outcomes
    (every flow/queue statistic is bit-identical with it on or off; only
    ``events_processed`` additionally counts the sampler's timer events).
    """
    if config.engine in ("fluid", "fluid_batched"):
        if config.engine == "fluid":
            from repro.fluid.runner import run_fluid_experiment as fluid_run
        else:
            # One-config shard of the batched integrator — bit-identical
            # to the scalar path (see repro.fluid.batched), so campaign
            # fallbacks that run batched configs one at a time are exact.
            from repro.fluid.batched import run_fluid_single as fluid_run

        session = TelemetrySession.start(config, telemetry)
        if session is None:
            return fluid_run(config)
        try:
            with session.spans.span("run", CAT_RUN, label=config.label(),
                                    engine=config.engine, seed=config.seed):
                result = fluid_run(config)
        except Exception as exc:
            session.record_failure(exc)
            raise
        session.finish(result)
        return result
    return run_packet_experiment(config, telemetry=telemetry)


def run_packet_experiment(
    config: ExperimentConfig,
    telemetry: Optional[TelemetryOptions] = None,
) -> ExperimentResult:
    """Packet-level (discrete-event) execution of one configuration."""
    session = TelemetrySession.start(config, telemetry)
    if session is None:
        return _execute_packet(config, None)
    try:
        result = _execute_packet(config, session)
    except Exception as exc:
        session.record_failure(exc)
        raise
    session.finish(result)
    return result


def _execute_packet(
    config: ExperimentConfig, session: Optional[TelemetrySession]
) -> ExperimentResult:
    wall_start = time.perf_counter()
    # Span lifecycle: run -> setup / warmup / transfer / collect.  The
    # tracer is NULL (every call a no-op) unless --trace asked for spans,
    # and all spans are phase-granular — nothing here is per-packet.
    spans = session.spans if session is not None else NULL_SPAN_TRACER
    run_span = spans.start("run", CAT_RUN,
                           labels={"label": config.label(), "engine": "packet",
                                   "seed": config.seed})
    setup_span = spans.start("setup")
    dumbbell = build_dumbbell(
        DumbbellConfig(
            bottleneck_bw_bps=config.bottleneck_bw_bps,
            buffer_bdp=config.buffer_bdp,
            aqm=config.aqm,
            mss_bytes=config.mss_bytes,
            scale=config.scale,
            seed=config.seed,
            ecn_mode=config.ecn_mode,
            aqm_params=dict(config.aqm_params),
            delay_multiplier=config.delay_multiplier,
            client_delay_multipliers=config.client_delay_multipliers,
            trunk_loss_rate=config.trunk_loss_rate,
        )
    )
    net = dumbbell.network
    start_rng = net.rng.stream("flow-start")
    cca_rng = net.rng.stream("cca")

    plan = config.plan
    connections: List[List[Connection]] = [[], []]
    # Flow ids are pinned per experiment (1..2N in creation order) rather
    # than drawn from the process-global counter, so reruns of the same
    # config are bit-identical regardless of what ran earlier in the
    # process (flow-id-hashed AQMs like fq_codel see the same buckets).
    next_fid = 1
    for node_idx, cca_name in enumerate(config.cca_pair):
        client = dumbbell.clients[node_idx]
        server = dumbbell.servers[node_idx]
        for _ in range(plan.flows_per_node):
            conn = open_connection(
                client,
                server,
                make_cca(cca_name, cca_rng),
                mss=config.mss_bytes,
                flow_id=next_fid,
                ecn_enabled=config.ecn_mode,
            )
            next_fid += 1
            conn.start(delay_ns=int(start_rng.uniform(0, START_JITTER_NS)))
            connections[node_idx].append(conn)

    # Arm the fault timeline at a fixed point in the scheduling order —
    # before any telemetry-owned events — so event sequence numbers (the
    # same-instant tie-breakers) are identical with telemetry on or off.
    fault_schedule = None
    if config.faults:
        fault_schedule = FaultSchedule.from_config(
            config, rng=net.rng.stream("faults")
        )
        fault_schedule.arm(net.sim, dumbbell)

    if session is not None:
        senders = [conn.sender for conns in connections for conn in conns]
        session.instrument(dumbbell, senders)
        if fault_schedule is not None:
            session.attach_faults(fault_schedule)
        sim = net.sim

        def _progress() -> None:
            session.progress(sim.now / 1e9)
            sim.call_later(PROGRESS_INTERVAL_NS, _progress)

        sim.call_later(PROGRESS_INTERVAL_NS, _progress)

    # Snapshot byte counters at the warmup boundary so excluded-warmup
    # throughput only counts bytes delivered inside the measured window.
    warmup_bytes: dict = {}
    if config.warmup_s > 0:
        def _snapshot() -> None:
            for conns in connections:
                for conn in conns:
                    warmup_bytes[conn.flow_id] = conn.receiver.bytes_received

        net.sim.schedule(seconds(config.warmup_s), _snapshot)

    sampler = None
    if config.sample_interval_s:
        sampler = ThroughputSampler(net.sim, seconds(config.sample_interval_s))
        for node_idx, conns in enumerate(connections):
            for conn in conns:
                sampler.track(
                    f"flow{conn.flow_id}",
                    lambda r=conn.receiver: r.bytes_received,
                )
        sampler.start()

    queue_monitor = None
    if config.queue_monitor_interval_s:
        queue_monitor = QueueMonitor(
            net.sim, dumbbell.bottleneck_qdisc, seconds(config.queue_monitor_interval_s)
        )
        queue_monitor.start()

    fairness_sampler = instrument_packet_fairness(
        net.sim,
        dumbbell.bottleneck_qdisc,
        dumbbell.config.scaled_bottleneck_bps,
        [
            (conn.flow_id, node_idx, (lambda r=conn.receiver: r.bytes_received))
            for node_idx, conns in enumerate(connections)
            for conn in conns
        ],
        config.fairness_interval_s,
    )
    setup_span.close()

    # The event-loop phase is one wall-clock region; when spans are on and
    # a warmup window exists, a sim-scheduled boundary callback splits it
    # into warmup/transfer spans (the callback touches only the span
    # tracer, never simulation state, so outcomes are unchanged — same
    # class of telemetry event as the progress records above).
    phase_span = spans.start("warmup" if config.warmup_s > 0 else "transfer")
    if spans.enabled and 0 < config.warmup_s < config.duration_s:
        def _warmup_boundary() -> None:
            phase_span.close()
            spans.start("transfer")

        net.sim.schedule(seconds(config.warmup_s), _warmup_boundary)

    net.run(seconds(config.duration_s))
    current = spans.current
    if current is not None:
        current.close()  # transfer (or warmup, if the boundary never fired)

    with spans.span("collect"):
        # Flush the samplers' final partial intervals before reading them.
        if sampler is not None:
            sampler.stop()
        if fairness_sampler is not None:
            fairness_sampler.stop()
        for conns in connections:
            for conn in conns:
                conn.stop()
        result = _collect(
            config, dumbbell, connections, sampler, queue_monitor, warmup_bytes,
            wall_start, fault_schedule, fairness_sampler,
        )
    run_span.annotate(events=dumbbell.sim.events_processed)
    run_span.close()
    return result


def _collect(
    config, dumbbell, connections, sampler, queue_monitor, warmup_bytes,
    wall_start, fault_schedule=None, fairness_sampler=None,
) -> ExperimentResult:
    measured_s = config.duration_s - config.warmup_s
    flows: List[FlowStats] = []
    senders: List[SenderStats] = []
    for node_idx, conns in enumerate(connections):
        node_name = dumbbell.clients[node_idx].name
        cca_name = config.cca_pair[node_idx]
        node_bytes = 0
        node_retx = 0
        for conn in conns:
            rx = conn.receiver.bytes_received - warmup_bytes.get(conn.flow_id, 0)
            node_bytes += rx
            node_retx += conn.sender.retransmits
            flows.append(
                FlowStats(
                    flow_id=conn.flow_id,
                    sender_node=node_name,
                    cca=cca_name,
                    throughput_bps=rx * 8 / measured_s,
                    bytes_received=rx,
                    segments_sent=conn.sender.segments_sent,
                    retransmits=conn.sender.retransmits,
                    rto_count=conn.sender.rto_count,
                    fast_recoveries=conn.sender.fast_recoveries,
                )
            )
        senders.append(
            SenderStats(
                node=node_name,
                cca=cca_name,
                throughput_bps=node_bytes * 8 / measured_s,
                retransmits=node_retx,
                flows=len(conns),
            )
        )

    throughputs = [s.throughput_bps for s in senders]
    bottleneck_bps = dumbbell.config.scaled_bottleneck_bps
    qstats = dumbbell.bottleneck_qdisc.stats
    extra = {}
    if sampler is not None:
        extra["interval_s"] = config.sample_interval_s
        extra["series_bps"] = {k: list(v) for k, v in sampler.series.items()}
    if queue_monitor is not None:
        extra["queue_trace"] = queue_monitor.trace.to_dict()
        extra["queue_occupancy"] = queue_monitor.trace.occupancy(
            dumbbell.bottleneck_qdisc.limit_bytes
        )
    # Per-flow fairness (n = all flows) alongside the paper's per-sender
    # index — the "scaling capability" measure of contribution #2.
    extra["flow_jain_index"] = jain_index([f.throughput_bps for f in flows])
    if fairness_sampler is not None:
        extra["fairness"] = fairness_sampler.probe.to_dict()
    if fault_schedule is not None:
        # Deterministic audit trail of what was injected (simulated-time
        # stamps only, so it is golden-fixture comparable).
        extra["faults"] = {
            "injected": fault_schedule.injected,
            "applied": list(fault_schedule.applied),
        }

    return ExperimentResult(
        config=config.to_dict(),
        senders=senders,
        flows=flows,
        jain_index=jain_index(throughputs),
        link_utilization=link_utilization(throughputs, bottleneck_bps),
        total_retransmits=sum(s.retransmits for s in senders),
        total_throughput_bps=sum(throughputs),
        bottleneck_drops=qstats.dropped_total,
        duration_s=measured_s,
        engine="packet",
        events_processed=dumbbell.sim.events_processed,
        wallclock_s=time.perf_counter() - wall_start,
        extra=extra,
    )
