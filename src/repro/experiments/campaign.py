"""Campaign driver: run many configurations, optionally in parallel.

The paper's study is embarrassingly parallel across its 810 configurations;
:func:`run_campaign` fans the list over a process pool (simulations are
CPU-bound pure Python, so processes, not threads) and streams results into
a :class:`~repro.experiments.storage.ResultStore` as they complete, which
makes interrupted sweeps resumable.

Configs with ``engine == "fluid_batched"`` take a fast path in the plain
serial/pool modes: they are grouped into lock-step shards (see
:mod:`repro.fluid.state`) and each shard advances as **one** stacked
integration, with per-config rows recorded individually.  Telemetry and
hardened mode fall back to one run per config through
:func:`~repro.experiments.runner.run_experiment` — bit-identical, because
batched results do not depend on shard composition.  Fairness sampling
(``fairness_interval_s``) works on both paths: the batched fast path
drives one vectorized probe hook per shard, and the fallback samples
per-run (see :mod:`repro.obs.fairness`) — the recorded series are
identical either way.

A worker raising no longer aborts the pool: the exception is captured as a
:class:`FailedRun` row (with the traceback string), appended to a sibling
``<store>.failures.jsonl`` file, and counted in the returned
:class:`CampaignResult`.  Failed configs are *not* written to the result
store, so a resumed campaign retries them.

The *hardened* execution mode (any of ``timeout_s``, ``retries``, or a
custom ``worker_fn``) survives misbehaving workers, not just raising
ones: each config runs in its own watchdogged process, a worker that
outlives its per-run wall-clock deadline is killed and recorded as a
``timeout`` row, a worker that dies without reporting (segfault,
``os._exit``, OOM-kill) becomes a ``crash`` row, and every failure is
retried up to ``retries`` times with exponential backoff plus
deterministic per-label jitter before the config is declared dead.  See
docs/FAULTS.md for the full degradation semantics.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import random as _random
import sys
import time
import traceback as _traceback
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.storage import ResultStore
from repro.metrics.summary import ExperimentResult
from repro.obs.session import TelemetryOptions
from repro.obs.spans import CAT_CAMPAIGN, CAT_WORKER, NULL_SPAN_TRACER, SpanTracer

#: Watchdog poll cadence (wall-clock seconds) in hardened mode.
WATCHDOG_POLL_S = 0.02

#: Fractional jitter span added to each backoff delay (0.25 = up to +25%).
BACKOFF_JITTER_FRAC = 0.25


@dataclass
class FailedRun:
    """One configuration that failed instead of producing a result.

    ``kind`` distinguishes how it failed: ``error`` (the run raised),
    ``timeout`` (killed by the watchdog), or ``crash`` (the worker died
    without reporting).  ``attempts`` counts executions including
    retries.
    """

    config: Dict[str, Any]
    label: str
    error: str
    traceback: str
    kind: str = "error"
    attempts: int = 1

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form, one line of ``<store>.failures.jsonl``."""
        return {
            "config": self.config,
            "label": self.label,
            "error": self.error,
            "traceback": self.traceback,
            "kind": self.kind,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FailedRun":
        """Inverse of :meth:`to_dict` (tolerates pre-hardening rows)."""
        return cls(
            config=d["config"],
            label=d["label"],
            error=d["error"],
            traceback=d.get("traceback", ""),
            kind=d.get("kind", "error"),
            attempts=d.get("attempts", 1),
        )


class CampaignResult(List[ExperimentResult]):
    """Completion-ordered results plus the failures captured along the way.

    A plain list subclass so existing callers (``len``, iteration,
    indexing) keep working unchanged.
    """

    def __init__(self, results: Optional[Sequence[ExperimentResult]] = None):
        super().__init__(results or [])
        self.failures: List[FailedRun] = []
        #: Individual retry attempts performed (graceful-degradation accounting).
        self.retried = 0
        #: Results answered from the content-addressed cache (no engine run).
        self.cache_hits = 0
        #: Results taken from the resume store (no engine run).
        self.resumed = 0
        #: Configs actually handed to an engine this invocation (the number
        #: the CI cache-smoke job requires to be zero on a warm cache).
        self.engine_runs = 0

    def summary(self) -> Dict[str, int]:
        """Counts for campaign-end reporting: ok / failed / retried / total."""
        return {
            "ok": len(self),
            "failed": len(self.failures),
            "retried": self.retried,
            "total": len(self) + len(self.failures),
        }


def failures_path(store: ResultStore) -> Path:
    """Sibling JSONL file holding :class:`FailedRun` rows for ``store``.

    Kept out of the main store file, whose loader treats every line as an
    :class:`ExperimentResult`.
    """
    return store.path.with_suffix(".failures.jsonl")


def _append_failure(store: Optional[ResultStore], failure: FailedRun) -> None:
    if store is None:
        return
    path = failures_path(store)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(failure.to_dict(), sort_keys=True) + "\n")
        fh.flush()


def load_failures(store: ResultStore) -> List[FailedRun]:
    """Read the failure rows recorded alongside ``store`` (empty if none)."""
    path = failures_path(store)
    if not path.exists():
        return []
    rows: List[FailedRun] = []
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(FailedRun.from_dict(json.loads(line)))
    return rows


def _run_one(config_dict: dict) -> dict:
    """Pool worker: dict in, dict out (cheap to pickle)."""
    result = run_experiment(ExperimentConfig.from_dict(config_dict))
    return result.to_dict()


def _run_one_safe(payload: tuple) -> dict:
    """Exception-capturing pool worker: tagged ``ok``/``err`` dict out."""
    config_dict, telemetry_dict = payload
    telemetry = TelemetryOptions.from_dict(telemetry_dict) if telemetry_dict else None
    try:
        result = run_experiment(ExperimentConfig.from_dict(config_dict), telemetry)
        return {"ok": result.to_dict()}
    except Exception as exc:
        return {
            "err": FailedRun(
                config=config_dict,
                label=ExperimentConfig.from_dict(config_dict).label(),
                error=repr(exc),
                traceback=_traceback.format_exc(),
            ).to_dict()
        }


def _run_batched_shard_safe(config_dicts: List[dict]) -> dict:
    """Run one batched-fluid shard; tagged per-config rows under ``many``.

    The whole shard advances as one stacked integration.  If it raises,
    every member config gets its own ``err`` row so resume/retry treat
    them individually (results are independent of shard composition, so
    a rerun of the survivors alone is bit-identical).
    """
    configs = [ExperimentConfig.from_dict(d) for d in config_dicts]
    try:
        from repro.fluid.batched import run_fluid_batch

        results = run_fluid_batch(configs)
        return {"many": [{"ok": r.to_dict()} for r in results]}
    except Exception as exc:
        tb = _traceback.format_exc()
        return {
            "many": [
                {
                    "err": FailedRun(
                        config=d,
                        label=c.label(),
                        error=repr(exc),
                        traceback=tb,
                    ).to_dict()
                }
                for d, c in zip(config_dicts, configs)
            ]
        }


def _pool_entry_mixed(payload: tuple) -> dict:
    """Pool worker dispatching per-config runs and batched-fluid shards."""
    kind = payload[0]
    if kind == "one":
        return _run_one_safe((payload[1], payload[2]))
    return _run_batched_shard_safe(payload[1])


def _split_batched(
    configs: Sequence[ExperimentConfig], enabled: bool
) -> tuple:
    """Partition configs into batched-fluid shards and per-config rest.

    With ``enabled`` False (telemetry or hardened mode, which want one
    run/process per config) everything stays per-config — correct either
    way, because a one-config shard reproduces the shard member's rows
    bit-for-bit (batch-composition invariance).
    """
    batched = [c for c in configs if c.engine == "fluid_batched"] if enabled else []
    if not batched:
        return [], list(configs)
    from repro.fluid.state import plan_shards

    shards = [[batched[i] for i in s] for s in plan_shards(batched)]
    singles = [c for c in configs if c.engine != "fluid_batched"]
    return shards, singles


def _proc_entry(worker_fn: Callable[[tuple], dict], payload: tuple, conn) -> None:
    """Hardened-mode process body: run one config, ship the tagged dict back.

    Catches exceptions a *custom* ``worker_fn`` lets escape (the default
    :func:`_run_one_safe` already captures its own) so the parent always
    distinguishes "raised" from "died silently".
    """
    try:
        tagged = worker_fn(payload)
    except Exception:
        tagged = {
            "err": FailedRun(
                config=payload[0],
                label=ExperimentConfig.from_dict(payload[0]).label(),
                error=repr(sys.exc_info()[1]),
                traceback=_traceback.format_exc(),
            ).to_dict()
        }
    try:
        conn.send(tagged)
    finally:
        conn.close()


def _backoff_delay(label: str, attempt: int, backoff_s: float) -> float:
    """Exponential backoff with deterministic per-(label, attempt) jitter.

    Jitter decorrelates retry storms across a campaign without making
    reruns of the same campaign time differently: the jitter fraction is
    seeded from the label and attempt number, not wall clock.
    """
    base = backoff_s * (2.0 ** (attempt - 1))
    jitter = _random.Random(f"{label}:{attempt}").uniform(0.0, BACKOFF_JITTER_FRAC)
    return base * (1.0 + jitter)


def run_campaign(
    configs: Sequence[ExperimentConfig],
    *,
    store: Optional[ResultStore] = None,
    jobs: int = 1,
    resume: bool = True,
    progress: Optional[Callable[[int, int, ExperimentResult], None]] = None,
    on_failure: Optional[Callable[[int, int, FailedRun], None]] = None,
    telemetry: Optional[TelemetryOptions] = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 0.5,
    on_retry: Optional[Callable[[str, int, float, FailedRun], None]] = None,
    worker_fn: Optional[Callable[[tuple], dict]] = None,
    span_tracer: Optional[SpanTracer] = None,
    cache=None,
) -> CampaignResult:
    """Run every config; returns results in completion order.

    With ``store`` and ``resume``, configs whose label already exists in
    the store are skipped and their stored results returned instead.

    ``cache`` (a :class:`~repro.experiments.cache.ResultCache`) is the
    cross-sweep layer above resume: configs any store has ever computed
    are answered from the content-addressed cache without touching an
    engine, and every freshly computed result is put back.  Cache hits
    still flow through ``store``/``progress`` like computed results.
    Telemetry runs bypass the cache entirely (their results embed run-log
    side channels that a recompute would not reproduce).
    ``progress``/``on_failure`` fire per completed config with a shared
    ``finished`` count covering both outcomes.  ``telemetry`` is handed to
    every worker, giving each run its own JSONL run log.

    ``timeout_s`` arms the per-run watchdog, ``retries``/``backoff_s``
    bound the retry-with-backoff loop, and ``on_retry(label, attempt,
    delay_s, failure)`` fires per re-queue.  Any of these (or a custom
    ``worker_fn``, the chaos-test seam) switches execution to the
    hardened one-process-per-config mode; without them the original
    serial / ``mp.Pool`` paths run unchanged.

    ``span_tracer`` (usually :attr:`CampaignProgress.spans`, streaming
    into ``campaign.jsonl``) records the campaign-side timeline: one
    ``campaign`` root span, per-attempt ``worker`` spans with stable lane
    numbers in the serial/hardened modes, ``store`` spans around result
    persistence, and ``retry`` instant markers.  See docs/TRACING.md.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError(f"timeout_s must be positive, got {timeout_s}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")

    done = CampaignResult()
    todo: List[ExperimentConfig] = list(configs)
    if store is not None and resume:
        have = store.completed_labels()
        if have:
            wanted = {c.label() for c in todo}
            done.extend(
                r
                for r in store
                if ExperimentConfig.from_dict(r.config).label() in wanted
                and ExperimentConfig.from_dict(r.config).label() in have
            )
            todo = [c for c in todo if c.label() not in have]
            done.resumed = len(done)

    # Content-addressed cache layer: anything any store has seen skips
    # the engine.  Hits are replayed through the normal record path below
    # so store/progress/span accounting treat them like completions.
    cached_results: List[ExperimentResult] = []
    if cache is not None and telemetry is None:
        remaining: List[ExperimentConfig] = []
        for cfg in todo:
            hit = cache.get(cfg)
            if hit is not None:
                cached_results.append(hit)
            else:
                remaining.append(cfg)
        todo = remaining
        done.cache_hits = len(cached_results)

    total = len(todo) + len(cached_results)
    done.engine_runs = len(todo)
    finished = 0
    spans = span_tracer if span_tracer is not None else NULL_SPAN_TRACER

    def _record(result: ExperimentResult) -> None:
        nonlocal finished
        finished += 1
        if store is not None:
            with spans.span("store", label=ExperimentConfig.from_dict(result.config).label()):
                store.append(result)
        if cache is not None and telemetry is None:
            cache.put(result)  # dedups cached replays, records fresh runs
        done.append(result)
        if progress is not None:
            progress(finished, total, result)

    def _record_failure(failure: FailedRun) -> None:
        nonlocal finished
        finished += 1
        done.failures.append(failure)
        _append_failure(store, failure)
        if on_failure is not None:
            on_failure(finished, total, failure)

    telemetry_dict = telemetry.to_dict() if telemetry is not None else None

    hardened = timeout_s is not None or retries > 0 or worker_fn is not None
    serial = jobs == 1 or total <= 1
    mode = "hardened" if hardened else ("serial" if serial else "pool")
    root = spans.start(
        "campaign",
        CAT_CAMPAIGN,
        labels={"configs": total, "jobs": jobs, "mode": mode,
                "resumed": done.resumed, "cache_hits": len(cached_results)},
    )
    try:
        for cached in cached_results:
            _record(cached)
        if hardened:
            _run_hardened(
                todo,
                telemetry_dict,
                jobs=jobs,
                timeout_s=timeout_s,
                retries=retries,
                backoff_s=backoff_s,
                worker_fn=worker_fn or _run_one_safe,
                record=_record,
                record_failure=_record_failure,
                on_retry=on_retry,
                result=done,
                spans=spans,
                root=root,
            )
        elif serial:
            shards, singles = _split_batched(todo, telemetry is None)
            for shard_cfgs in shards:
                wspan = spans.start(
                    f"fluid-batched[{len(shard_cfgs)}]", CAT_WORKER, lane=0
                )
                for tagged in _run_batched_shard_safe(
                    [c.to_dict() for c in shard_cfgs]
                )["many"]:
                    if "ok" in tagged:
                        _record(ExperimentResult.from_dict(tagged["ok"]))
                    else:
                        _record_failure(FailedRun.from_dict(tagged["err"]))
                wspan.close()
            for cfg in singles:
                wspan = spans.start(cfg.label(), CAT_WORKER, lane=0)
                try:
                    result = run_experiment(cfg, telemetry)
                except Exception as exc:
                    wspan.annotate(status="error").close()
                    _record_failure(
                        FailedRun(
                            config=cfg.to_dict(),
                            label=cfg.label(),
                            error=repr(exc),
                            traceback=_traceback.format_exc(),
                        )
                    )
                    continue
                wspan.close()
                _record(result)
        else:
            # Pool mode observes completions only (the workers' own run
            # logs carry their run/phase spans), so the campaign timeline
            # records root + store spans and leaves worker lanes to the
            # Chrome-trace exporter's per-pid stitching.  Batched-fluid
            # configs ship as whole shards, one stacked integration per
            # worker invocation.
            ctx = mp.get_context("spawn" if sys.platform == "win32" else "fork")
            shards, singles = _split_batched(todo, telemetry is None)
            payloads = [("one", c.to_dict(), telemetry_dict) for c in singles]
            payloads += [
                ("shard", [c.to_dict() for c in shard]) for shard in shards
            ]
            with ctx.Pool(processes=jobs) as pool:
                for tagged in pool.imap_unordered(_pool_entry_mixed, payloads):
                    for row in tagged.get("many", [tagged]):
                        if "ok" in row:
                            _record(ExperimentResult.from_dict(row["ok"]))
                        else:
                            _record_failure(FailedRun.from_dict(row["err"]))
        return done
    finally:
        counts = done.summary()
        root.annotate(ok=counts["ok"], failed=counts["failed"],
                      retried=counts["retried"])
        spans.close_open()  # root + anything an exception left open


def _run_hardened(
    todo: Sequence[ExperimentConfig],
    telemetry_dict: Optional[dict],
    *,
    jobs: int,
    timeout_s: Optional[float],
    retries: int,
    backoff_s: float,
    worker_fn: Callable[[tuple], dict],
    record: Callable[[ExperimentResult], None],
    record_failure: Callable[[FailedRun], None],
    on_retry: Optional[Callable[[str, int, float, FailedRun], None]],
    result: CampaignResult,
    spans=NULL_SPAN_TRACER,
    root=None,
) -> None:
    """Watchdogged one-process-per-config executor (hardened mode).

    Each config gets a fresh process and a pipe; the parent polls for a
    tagged result, a silent death (``crash``), or a blown wall-clock
    deadline (``timeout`` — the process is killed).  Failures re-queue
    with exponential backoff until ``retries`` is exhausted, then become
    the :class:`FailedRun` row the campaign carries forward.

    Each launch opens a detached ``worker`` span on a stable worker-slot
    lane (slot indices are reused as they free up, so the Chrome trace
    shows exactly ``jobs`` worker lanes), closed with the attempt's
    outcome; each re-queue drops a ``retry`` instant marker.
    """
    ctx = mp.get_context("spawn" if sys.platform == "win32" else "fork")
    pending: deque = deque((cfg, 1) for cfg in todo)  # (config, attempt#)
    delayed: List[tuple] = []  # (ready_at_monotonic, config, attempt#)
    running: List[dict] = []
    free_lanes: List[int] = []  # released worker-slot indices, reused smallest-first
    next_lane = 0

    def _launch(cfg: ExperimentConfig, attempt: int) -> None:
        nonlocal next_lane
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_proc_entry,
            args=(worker_fn, (cfg.to_dict(), telemetry_dict), child_conn),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        if free_lanes:
            lane = free_lanes.pop(0)
        else:
            lane = next_lane
            next_lane += 1
        running.append(
            {
                "proc": proc,
                "conn": parent_conn,
                "cfg": cfg,
                "attempt": attempt,
                "deadline": (time.monotonic() + timeout_s) if timeout_s else None,
                "lane": lane,
                "span": spans.start(
                    cfg.label(), CAT_WORKER, parent=root, detached=True,
                    lane=lane, labels={"attempt": attempt},
                ),
            }
        )

    def _finish_span(entry: dict, outcome: str) -> None:
        entry["span"].annotate(outcome=outcome).close()
        free_lanes.append(entry["lane"])
        free_lanes.sort()

    def _resolve_failure(entry: dict, failure: FailedRun) -> None:
        attempt = entry["attempt"]
        failure.attempts = attempt
        if attempt <= retries:
            delay = _backoff_delay(failure.label, attempt, backoff_s)
            result.retried += 1
            if on_retry is not None:
                on_retry(failure.label, attempt, delay, failure)
            spans.instant("retry", CAT_WORKER, label=failure.label,
                          attempt=attempt, delay_s=delay, kind=failure.kind)
            delayed.append((time.monotonic() + delay, entry["cfg"], attempt + 1))
        else:
            record_failure(failure)

    def _failure(entry: dict, kind: str, error: str, traceback: str = "") -> FailedRun:
        cfg = entry["cfg"]
        return FailedRun(
            config=cfg.to_dict(),
            label=cfg.label(),
            error=error,
            traceback=traceback,
            kind=kind,
        )

    while pending or delayed or running:
        now = time.monotonic()
        if delayed:
            ready = [d for d in delayed if d[0] <= now]
            for item in ready:
                delayed.remove(item)
                pending.append((item[1], item[2]))
        while pending and len(running) < jobs:
            cfg, attempt = pending.popleft()
            _launch(cfg, attempt)
        progressed = False
        for entry in list(running):
            proc, conn = entry["proc"], entry["conn"]
            tagged = None
            finished = False
            if conn.poll():
                try:
                    tagged = conn.recv()
                except EOFError:
                    tagged = None  # died between connecting and sending
                finished = True
            elif not proc.is_alive():
                finished = True  # never reported: crash
            elif entry["deadline"] is not None and now >= entry["deadline"]:
                proc.terminate()
                proc.join()
                conn.close()
                running.remove(entry)
                progressed = True
                _finish_span(entry, "timeout")
                _resolve_failure(
                    entry,
                    _failure(
                        entry,
                        "timeout",
                        f"run exceeded the {timeout_s:g}s wall-clock timeout "
                        "and was killed by the watchdog",
                    ),
                )
                continue
            if not finished:
                continue
            proc.join()
            conn.close()
            running.remove(entry)
            progressed = True
            if tagged is None:
                _finish_span(entry, "crash")
                _resolve_failure(
                    entry,
                    _failure(
                        entry,
                        "crash",
                        f"worker died without reporting (exitcode {proc.exitcode})",
                    ),
                )
            elif "ok" in tagged:
                _finish_span(entry, "ok")
                record(ExperimentResult.from_dict(tagged["ok"]))
            else:
                failure = FailedRun.from_dict(tagged["err"])
                _finish_span(entry, failure.kind)
                _resolve_failure(entry, failure)
        if not progressed and (running or delayed):
            time.sleep(WATCHDOG_POLL_S)


def print_progress(finished: int, total: int, result: ExperimentResult) -> None:
    """A ready-made progress callback for CLI use."""
    cfg = ExperimentConfig.from_dict(result.config)
    print(
        f"[{finished}/{total}] {cfg.label()}: "
        f"J={result.jain_index:.3f} phi={result.link_utilization:.3f} "
        f"retx={result.total_retransmits} ({result.wallclock_s:.1f}s)",
        flush=True,
    )


def print_failure(finished: int, total: int, failure: FailedRun) -> None:
    """Failure-side companion to :func:`print_progress`."""
    print(
        f"[{finished}/{total}] {failure.label}: FAILED {failure.error}",
        file=sys.stderr,
        flush=True,
    )


class CampaignProgress:
    """Live campaign progress: events/sec, ETA, and optional JSONL feed.

    Wraps the plain print callbacks with wall-clock bookkeeping.  Pass the
    instance itself as ``progress=`` and its :meth:`failure` method as
    ``on_failure=``.  With ``log_path`` set, every completion also appends
    a ``campaign_progress`` record (see ``docs/OBSERVABILITY.md``) that
    ``repro obs tail`` renders.

    With ``log_path`` *and* ``spans=True``, :attr:`spans` is a live
    :class:`~repro.obs.spans.SpanTracer` streaming into the same
    ``campaign.jsonl`` — pass it to :func:`run_campaign` as
    ``span_tracer=`` to record the campaign-side timeline.
    """

    def __init__(
        self,
        log_path: Optional[Path] = None,
        *,
        quiet: bool = False,
        spans: bool = False,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self._clock = clock
        self._start = clock()
        self._events = 0
        self._failed = 0
        self._retried = 0
        self._quiet = quiet
        self._writer = None
        if log_path is not None:
            from repro.obs.runlog import RunLogWriter

            self._writer = RunLogWriter(log_path)
        #: Campaign-level span tracer (NULL unless spans were requested).
        self.spans = (
            SpanTracer(self._writer)
            if spans and self._writer is not None
            else NULL_SPAN_TRACER
        )

    def _eta_s(self, finished: int, total: int) -> float:
        elapsed = self._clock() - self._start
        if finished == 0 or finished >= total:
            return 0.0
        return elapsed / finished * (total - finished)

    def _emit(
        self,
        finished: int,
        total: int,
        label: str,
        result: Optional[ExperimentResult] = None,
    ) -> None:
        if self._writer is not None:
            elapsed = self._clock() - self._start
            extra = {}
            if result is not None:
                # Headline fairness alongside liveness, so a tailing
                # observer (or the sweep service of ROADMAP item 2) sees
                # the science stream by, not just the throughput.
                extra["jain"] = result.jain_index
                extra["phi"] = result.link_utilization
            self._writer.write(
                "campaign_progress",
                finished=finished,
                total=total,
                failed=self._failed,
                retried=self._retried,
                label=label,
                eta_s=self._eta_s(finished, total),
                events_per_sec=self._events / elapsed if elapsed > 0 else 0.0,
                **extra,
            )

    def __call__(self, finished: int, total: int, result: ExperimentResult) -> None:
        self._events += result.events_processed
        if not self._quiet:
            print_progress(finished, total, result)
            eta = self._eta_s(finished, total)
            if eta:
                print(f"    eta ~{eta:.0f}s", flush=True)
        self._emit(
            finished, total,
            ExperimentConfig.from_dict(result.config).label(),
            result,
        )

    def failure(self, finished: int, total: int, failure: FailedRun) -> None:
        """``on_failure`` companion callback to ``__call__``."""
        self._failed += 1
        if not self._quiet:
            print_failure(finished, total, failure)
        self._emit(finished, total, failure.label)

    def retry(self, label: str, attempt: int, delay_s: float, failure: FailedRun) -> None:
        """``on_retry`` companion: a failed run was re-queued with backoff."""
        self._retried += 1
        if not self._quiet:
            print(
                f"    retry #{attempt} for {label} in {delay_s:.2f}s "
                f"({failure.kind}: {failure.error})",
                file=sys.stderr,
                flush=True,
            )
        if self._writer is not None:
            self._writer.write(
                "campaign_retry",
                label=label,
                attempt=attempt,
                delay_s=delay_s,
                error=failure.error,
                kind=failure.kind,
            )

    def close(self) -> None:
        """Close the campaign.jsonl writer, if one was opened."""
        if self._writer is not None:
            self.spans.close_open()
            self._writer.close()
            self._writer = None
