"""Campaign driver: run many configurations, optionally in parallel.

The paper's study is embarrassingly parallel across its 810 configurations;
:func:`run_campaign` fans the list over a process pool (simulations are
CPU-bound pure Python, so processes, not threads) and streams results into
a :class:`~repro.experiments.storage.ResultStore` as they complete, which
makes interrupted sweeps resumable.

A worker raising no longer aborts the pool: the exception is captured as a
:class:`FailedRun` row (with the traceback string), appended to a sibling
``<store>.failures.jsonl`` file, and counted in the returned
:class:`CampaignResult`.  Failed configs are *not* written to the result
store, so a resumed campaign retries them.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import sys
import time
import traceback as _traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.storage import ResultStore
from repro.metrics.summary import ExperimentResult
from repro.obs.session import TelemetryOptions


@dataclass
class FailedRun:
    """One configuration that raised instead of producing a result."""

    config: Dict[str, Any]
    label: str
    error: str
    traceback: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form, one line of ``<store>.failures.jsonl``."""
        return {
            "config": self.config,
            "label": self.label,
            "error": self.error,
            "traceback": self.traceback,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FailedRun":
        """Inverse of :meth:`to_dict`."""
        return cls(
            config=d["config"],
            label=d["label"],
            error=d["error"],
            traceback=d.get("traceback", ""),
        )


class CampaignResult(List[ExperimentResult]):
    """Completion-ordered results plus the failures captured along the way.

    A plain list subclass so existing callers (``len``, iteration,
    indexing) keep working unchanged.
    """

    def __init__(self, results: Optional[Sequence[ExperimentResult]] = None):
        super().__init__(results or [])
        self.failures: List[FailedRun] = []

    def summary(self) -> Dict[str, int]:
        """Counts for campaign-end reporting: ok / failed / total."""
        return {
            "ok": len(self),
            "failed": len(self.failures),
            "total": len(self) + len(self.failures),
        }


def failures_path(store: ResultStore) -> Path:
    """Sibling JSONL file holding :class:`FailedRun` rows for ``store``.

    Kept out of the main store file, whose loader treats every line as an
    :class:`ExperimentResult`.
    """
    return store.path.with_suffix(".failures.jsonl")


def _append_failure(store: Optional[ResultStore], failure: FailedRun) -> None:
    if store is None:
        return
    path = failures_path(store)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(failure.to_dict(), sort_keys=True) + "\n")
        fh.flush()


def load_failures(store: ResultStore) -> List[FailedRun]:
    """Read the failure rows recorded alongside ``store`` (empty if none)."""
    path = failures_path(store)
    if not path.exists():
        return []
    rows: List[FailedRun] = []
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(FailedRun.from_dict(json.loads(line)))
    return rows


def _run_one(config_dict: dict) -> dict:
    """Pool worker: dict in, dict out (cheap to pickle)."""
    result = run_experiment(ExperimentConfig.from_dict(config_dict))
    return result.to_dict()


def _run_one_safe(payload: tuple) -> dict:
    """Exception-capturing pool worker: tagged ``ok``/``err`` dict out."""
    config_dict, telemetry_dict = payload
    telemetry = TelemetryOptions.from_dict(telemetry_dict) if telemetry_dict else None
    try:
        result = run_experiment(ExperimentConfig.from_dict(config_dict), telemetry)
        return {"ok": result.to_dict()}
    except Exception as exc:
        return {
            "err": FailedRun(
                config=config_dict,
                label=ExperimentConfig.from_dict(config_dict).label(),
                error=repr(exc),
                traceback=_traceback.format_exc(),
            ).to_dict()
        }


def run_campaign(
    configs: Sequence[ExperimentConfig],
    *,
    store: Optional[ResultStore] = None,
    jobs: int = 1,
    resume: bool = True,
    progress: Optional[Callable[[int, int, ExperimentResult], None]] = None,
    on_failure: Optional[Callable[[int, int, FailedRun], None]] = None,
    telemetry: Optional[TelemetryOptions] = None,
) -> CampaignResult:
    """Run every config; returns results in completion order.

    With ``store`` and ``resume``, configs whose label already exists in
    the store are skipped and their stored results returned instead.
    ``progress``/``on_failure`` fire per completed config with a shared
    ``finished`` count covering both outcomes.  ``telemetry`` is handed to
    every worker, giving each run its own JSONL run log.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")

    done = CampaignResult()
    todo: List[ExperimentConfig] = list(configs)
    if store is not None and resume:
        have = store.completed_labels()
        if have:
            wanted = {c.label() for c in todo}
            done.extend(
                r
                for r in store
                if ExperimentConfig.from_dict(r.config).label() in wanted
                and ExperimentConfig.from_dict(r.config).label() in have
            )
            todo = [c for c in todo if c.label() not in have]

    total = len(todo)
    finished = 0

    def _record(result: ExperimentResult) -> None:
        nonlocal finished
        finished += 1
        if store is not None:
            store.append(result)
        done.append(result)
        if progress is not None:
            progress(finished, total, result)

    def _record_failure(failure: FailedRun) -> None:
        nonlocal finished
        finished += 1
        done.failures.append(failure)
        _append_failure(store, failure)
        if on_failure is not None:
            on_failure(finished, total, failure)

    telemetry_dict = telemetry.to_dict() if telemetry is not None else None

    if jobs == 1 or total <= 1:
        for cfg in todo:
            try:
                result = run_experiment(cfg, telemetry)
            except Exception as exc:
                _record_failure(
                    FailedRun(
                        config=cfg.to_dict(),
                        label=cfg.label(),
                        error=repr(exc),
                        traceback=_traceback.format_exc(),
                    )
                )
                continue
            _record(result)
        return done

    ctx = mp.get_context("spawn" if sys.platform == "win32" else "fork")
    payloads = [(c.to_dict(), telemetry_dict) for c in todo]
    with ctx.Pool(processes=jobs) as pool:
        for tagged in pool.imap_unordered(_run_one_safe, payloads):
            if "ok" in tagged:
                _record(ExperimentResult.from_dict(tagged["ok"]))
            else:
                _record_failure(FailedRun.from_dict(tagged["err"]))
    return done


def print_progress(finished: int, total: int, result: ExperimentResult) -> None:
    """A ready-made progress callback for CLI use."""
    cfg = ExperimentConfig.from_dict(result.config)
    print(
        f"[{finished}/{total}] {cfg.label()}: "
        f"J={result.jain_index:.3f} phi={result.link_utilization:.3f} "
        f"retx={result.total_retransmits} ({result.wallclock_s:.1f}s)",
        flush=True,
    )


def print_failure(finished: int, total: int, failure: FailedRun) -> None:
    """Failure-side companion to :func:`print_progress`."""
    print(
        f"[{finished}/{total}] {failure.label}: FAILED {failure.error}",
        file=sys.stderr,
        flush=True,
    )


class CampaignProgress:
    """Live campaign progress: events/sec, ETA, and optional JSONL feed.

    Wraps the plain print callbacks with wall-clock bookkeeping.  Pass the
    instance itself as ``progress=`` and its :meth:`failure` method as
    ``on_failure=``.  With ``log_path`` set, every completion also appends
    a ``campaign_progress`` record (see ``docs/OBSERVABILITY.md``) that
    ``repro obs tail`` renders.
    """

    def __init__(
        self,
        log_path: Optional[Path] = None,
        *,
        quiet: bool = False,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self._clock = clock
        self._start = clock()
        self._events = 0
        self._failed = 0
        self._quiet = quiet
        self._writer = None
        if log_path is not None:
            from repro.obs.runlog import RunLogWriter

            self._writer = RunLogWriter(log_path)

    def _eta_s(self, finished: int, total: int) -> float:
        elapsed = self._clock() - self._start
        if finished == 0 or finished >= total:
            return 0.0
        return elapsed / finished * (total - finished)

    def _emit(self, finished: int, total: int, label: str) -> None:
        if self._writer is not None:
            elapsed = self._clock() - self._start
            self._writer.write(
                "campaign_progress",
                finished=finished,
                total=total,
                failed=self._failed,
                label=label,
                eta_s=self._eta_s(finished, total),
                events_per_sec=self._events / elapsed if elapsed > 0 else 0.0,
            )

    def __call__(self, finished: int, total: int, result: ExperimentResult) -> None:
        self._events += result.events_processed
        if not self._quiet:
            print_progress(finished, total, result)
            eta = self._eta_s(finished, total)
            if eta:
                print(f"    eta ~{eta:.0f}s", flush=True)
        self._emit(finished, total, ExperimentConfig.from_dict(result.config).label())

    def failure(self, finished: int, total: int, failure: FailedRun) -> None:
        """``on_failure`` companion callback to ``__call__``."""
        self._failed += 1
        if not self._quiet:
            print_failure(finished, total, failure)
        self._emit(finished, total, failure.label)

    def close(self) -> None:
        """Close the campaign.jsonl writer, if one was opened."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None
