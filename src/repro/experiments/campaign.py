"""Campaign driver: run many configurations, optionally in parallel.

The paper's study is embarrassingly parallel across its 810 configurations;
:func:`run_campaign` fans the list over a process pool (simulations are
CPU-bound pure Python, so processes, not threads) and streams results into
a :class:`~repro.experiments.storage.ResultStore` as they complete, which
makes interrupted sweeps resumable.
"""

from __future__ import annotations

import multiprocessing as mp
import sys
from typing import Callable, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.storage import ResultStore
from repro.metrics.summary import ExperimentResult


def _run_one(config_dict: dict) -> dict:
    """Pool worker: dict in, dict out (cheap to pickle)."""
    result = run_experiment(ExperimentConfig.from_dict(config_dict))
    return result.to_dict()


def run_campaign(
    configs: Sequence[ExperimentConfig],
    *,
    store: Optional[ResultStore] = None,
    jobs: int = 1,
    resume: bool = True,
    progress: Optional[Callable[[int, int, ExperimentResult], None]] = None,
) -> List[ExperimentResult]:
    """Run every config; returns results in completion order.

    With ``store`` and ``resume``, configs whose label already exists in
    the store are skipped and their stored results returned instead.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")

    done: List[ExperimentResult] = []
    todo: List[ExperimentConfig] = list(configs)
    if store is not None and resume:
        have = store.completed_labels()
        if have:
            wanted = {c.label() for c in todo}
            done = [
                r
                for r in store
                if ExperimentConfig.from_dict(r.config).label() in wanted
                and ExperimentConfig.from_dict(r.config).label() in have
            ]
            todo = [c for c in todo if c.label() not in have]

    total = len(todo)
    finished = 0

    def _record(result: ExperimentResult) -> None:
        nonlocal finished
        finished += 1
        if store is not None:
            store.append(result)
        done.append(result)
        if progress is not None:
            progress(finished, total, result)

    if jobs == 1 or total <= 1:
        for cfg in todo:
            _record(run_experiment(cfg))
        return done

    ctx = mp.get_context("spawn" if sys.platform == "win32" else "fork")
    with ctx.Pool(processes=jobs) as pool:
        for result_dict in pool.imap_unordered(_run_one, [c.to_dict() for c in todo]):
            _record(ExperimentResult.from_dict(result_dict))
    return done


def print_progress(finished: int, total: int, result: ExperimentResult) -> None:
    """A ready-made progress callback for CLI use."""
    cfg = ExperimentConfig.from_dict(result.config)
    print(
        f"[{finished}/{total}] {cfg.label()}: "
        f"J={result.jain_index:.3f} phi={result.link_utilization:.3f} "
        f"retx={result.total_retransmits} ({result.wallclock_s:.1f}s)",
        flush=True,
    )
