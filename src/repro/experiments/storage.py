"""JSONL result store.

One line per :class:`ExperimentResult`; append-only, so interrupted
campaigns resume by skipping configs whose label is already present.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, List, Set, Union

from repro.experiments.config import ExperimentConfig
from repro.metrics.summary import ExperimentResult

PathLike = Union[str, Path]


class ResultStore:
    """Append/load experiment results on disk."""

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, result: ExperimentResult) -> None:
        """Append one result as a JSON line (flushed immediately)."""
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(result.to_dict(), sort_keys=True))
            fh.write("\n")

    def __iter__(self) -> Iterator[ExperimentResult]:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield ExperimentResult.from_dict(json.loads(line))
                except (json.JSONDecodeError, KeyError) as exc:
                    raise ValueError(f"{self.path}:{lineno}: corrupt result line ({exc})") from None

    def load(self) -> List[ExperimentResult]:
        """Read every stored result into memory."""
        return list(self)

    def completed_labels(self) -> Set[str]:
        """Labels of configs already present (for campaign resume)."""
        labels: Set[str] = set()
        for result in self:
            labels.add(ExperimentConfig.from_dict(result.config).label())
        return labels

    def __len__(self) -> int:
        return sum(1 for _ in self)
