"""JSONL result store.

One line per :class:`ExperimentResult`; append-only, so interrupted
campaigns resume by skipping configs whose label is already present.

The write handle is opened once per campaign (O_APPEND mode) and kept
for the store's lifetime: each result is a single buffered write of the
complete line, flushed immediately.  That keeps appends atomic at the
line level even when several campaign processes share one results file —
O_APPEND positions every flushed write at the current end of file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterator, List, Optional, Set, Union

from repro.experiments.config import ExperimentConfig
from repro.metrics.summary import ExperimentResult

PathLike = Union[str, Path]


class ResultStore:
    """Append/load experiment results on disk."""

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[IO[str]] = None

    def append(self, result: ExperimentResult) -> None:
        """Append one result as a JSON line (flushed immediately)."""
        fh = self._fh
        if fh is None:
            fh = self._fh = self.path.open("a", encoding="utf-8")
        fh.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")
        fh.flush()

    def close(self) -> None:
        """Release the write handle (idempotent; reopened on next append)."""
        fh = self._fh
        if fh is not None:
            self._fh = None
            fh.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    def __iter__(self) -> Iterator[ExperimentResult]:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield ExperimentResult.from_dict(json.loads(line))
                except (json.JSONDecodeError, KeyError) as exc:
                    raise ValueError(f"{self.path}:{lineno}: corrupt result line ({exc})") from None

    def load(self) -> List[ExperimentResult]:
        """Read every stored result into memory."""
        return list(self)

    def completed_labels(self) -> Set[str]:
        """Labels of configs already present (for campaign resume)."""
        labels: Set[str] = set()
        for result in self:
            labels.add(ExperimentConfig.from_dict(result.config).label())
        return labels

    def __len__(self) -> int:
        return sum(1 for _ in self)
