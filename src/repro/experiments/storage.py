"""JSONL result store.

One line per :class:`ExperimentResult`; append-only, so interrupted
campaigns resume by skipping configs whose label is already present.

The write handle is opened once per campaign (O_APPEND mode) and kept
for the store's lifetime: each result is a single buffered write of the
complete line, flushed immediately.  That keeps appends atomic at the
line level even when several campaign processes share one results file —
O_APPEND positions every flushed write at the current end of file.

Torn writes
-----------

A process killed mid-append (SIGKILL, OOM, power loss) can leave a
*partial* final line.  That must not brick resume, so the store handles
it on both sides:

- **Read side**: a line that fails to parse as JSON is skipped with a
  :class:`TornWriteWarning` *iff* nothing but blank lines follows it —
  i.e. it is the torn tail of the file.  A malformed line anywhere else
  (or a well-formed JSON line that is not a result record) is real
  corruption and still raises ``ValueError``.
- **Write side**: opening the append handle first repairs a torn tail —
  the partial fragment is moved to a ``<store>.torn.jsonl`` sidecar (for
  forensics) and truncated from the store, so the next append cannot
  glue a fresh record onto the fragment and turn a recoverable torn tail
  into unrecoverable mid-file corruption.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import IO, Any, Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.experiments.config import ExperimentConfig
from repro.metrics.summary import ExperimentResult

PathLike = Union[str, Path]


class TornWriteWarning(UserWarning):
    """A partial trailing line (crash mid-append) was skipped or repaired."""


class ResultStore:
    """Append/load experiment results on disk."""

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[IO[str]] = None

    def append(self, result: ExperimentResult) -> None:
        """Append one result as a JSON line (flushed immediately)."""
        self.append_dict(result.to_dict())

    def append_dict(self, d: Dict[str, Any]) -> None:
        """Append one pre-serialized result dict (same line format)."""
        fh = self._fh
        if fh is None:
            self._repair_torn_tail()
            fh = self._fh = self.path.open("a", encoding="utf-8")
        fh.write(json.dumps(d, sort_keys=True) + "\n")
        fh.flush()

    def _repair_torn_tail(self) -> None:
        """Truncate a partial (newline-less) final line before appending.

        The fragment is preserved in ``<store>.torn.jsonl``.  Without this,
        the next O_APPEND write would concatenate onto the fragment and
        produce a corrupt line *mid-file* — unrecoverable by the read-side
        torn-tail skip.
        """
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size == 0:
            return
        with self.path.open("r+b") as fh:
            fh.seek(size - 1)
            if fh.read(1) == b"\n":
                return
            # Walk back to the last newline; everything after it is the
            # torn fragment.
            data = self.path.read_bytes()
            cut = data.rfind(b"\n") + 1  # 0 when the whole file is one fragment
            fragment = data[cut:]
            sidecar = self.path.with_suffix(".torn.jsonl")
            with sidecar.open("ab") as side:
                side.write(fragment + b"\n")
            fh.truncate(cut)
        warnings.warn(
            f"{self.path}: repaired torn trailing line before append "
            f"({len(fragment)} bytes moved to {sidecar.name})",
            TornWriteWarning,
            stacklevel=3,
        )

    def close(self) -> None:
        """Release the write handle (idempotent; reopened on next append)."""
        fh = self._fh
        if fh is not None:
            self._fh = None
            fh.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    def iter_dicts(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """Yield ``(lineno, result_dict)`` pairs with torn-tail tolerance.

        A JSON-undecodable line followed only by blank lines is the torn
        tail of a crashed append: it is skipped with a
        :class:`TornWriteWarning`.  An undecodable line followed by more
        content is corruption and raises ``ValueError``.
        """
        if not self.path.exists():
            return
        torn: Optional[Tuple[int, str]] = None
        with self.path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                if torn is not None:
                    bad_lineno, bad_err = torn
                    raise ValueError(
                        f"{self.path}:{bad_lineno}: corrupt result line "
                        f"({bad_err}) followed by more content — not a torn "
                        "trailing write"
                    )
                try:
                    yield lineno, json.loads(line)
                except json.JSONDecodeError as exc:
                    torn = (lineno, str(exc))
        if torn is not None:
            warnings.warn(
                f"{self.path}:{torn[0]}: skipping partial trailing line "
                f"(torn write from a crashed append): {torn[1]}",
                TornWriteWarning,
                stacklevel=2,
            )

    def __iter__(self) -> Iterator[ExperimentResult]:
        for lineno, d in self.iter_dicts():
            try:
                yield ExperimentResult.from_dict(d)
            except (KeyError, TypeError) as exc:
                raise ValueError(
                    f"{self.path}:{lineno}: corrupt result line ({exc!r})"
                ) from None

    def load(self) -> List[ExperimentResult]:
        """Read every stored result into memory."""
        return list(self)

    def completed_labels(self) -> Set[str]:
        """Labels of configs already present (for campaign resume)."""
        labels: Set[str] = set()
        for result in self:
            labels.add(ExperimentConfig.from_dict(result.config).label())
        return labels

    def __len__(self) -> int:
        return sum(1 for _ in self)
