"""Unit helpers shared across the simulator.

All simulator time is kept in **integer nanoseconds** and all link rates in
**bits per second**.  These helpers make experiment configuration read like
the paper ("62 ms RTT", "25 Gbps bottleneck", "2 x BDP buffer") while the
engine internals stay in integer arithmetic.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


def seconds(t: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(round(t * NS_PER_SEC))


def milliseconds(t: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(round(t * NS_PER_MS))


def microseconds(t: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return int(round(t * NS_PER_US))


def to_seconds(t_ns: int) -> float:
    """Convert integer nanoseconds back to float seconds."""
    return t_ns / NS_PER_SEC


# --- rate ------------------------------------------------------------------

KBPS = 1_000
MBPS = 1_000_000
GBPS = 1_000_000_000


def mbps(rate: float) -> float:
    """Convert megabits/second to bits/second."""
    return rate * MBPS


def gbps(rate: float) -> float:
    """Convert gigabits/second to bits/second."""
    return rate * GBPS


def tx_time_ns(size_bytes: int, rate_bps: float) -> int:
    """Serialization delay of ``size_bytes`` on a ``rate_bps`` link, in ns."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return max(1, int(round(size_bytes * 8 * NS_PER_SEC / rate_bps)))


# --- bandwidth-delay product (paper eq. 1) -----------------------------------


def bdp_bytes(bottleneck_bps: float, rtt_ns: int) -> int:
    """Bandwidth-delay product in bytes (paper's Equation 1).

    ``BDP = BW_bottleneck * RTT / 8`` with BW in bits/s and RTT in seconds.
    """
    if bottleneck_bps <= 0:
        raise ValueError(f"bottleneck bandwidth must be positive, got {bottleneck_bps}")
    if rtt_ns <= 0:
        raise ValueError(f"RTT must be positive, got {rtt_ns}")
    return max(1, int(round(bottleneck_bps * (rtt_ns / NS_PER_SEC) / 8)))


def bdp_packets(bottleneck_bps: float, rtt_ns: int, mtu_bytes: int) -> int:
    """Bandwidth-delay product expressed in MTU-sized packets (at least 1)."""
    if mtu_bytes <= 0:
        raise ValueError(f"MTU must be positive, got {mtu_bytes}")
    return max(1, bdp_bytes(bottleneck_bps, rtt_ns) // mtu_bytes)


def format_rate(rate_bps: float) -> str:
    """Human-readable rate string used in reports ("25 Gbps", "500 Mbps")."""
    if rate_bps >= GBPS:
        value = rate_bps / GBPS
        unit = "Gbps"
    elif rate_bps >= MBPS:
        value = rate_bps / MBPS
        unit = "Mbps"
    else:
        value = rate_bps / KBPS
        unit = "Kbps"
    text = f"{value:.10g}"
    return f"{text} {unit}"
