"""Command-line interface.

    repro run      --cca1 bbrv1 --cca2 cubic --aqm fifo --buffer 2 --bw 100M
    repro run      --scenario cell.json --engine fluid
    repro sweep    --preset scaled-des --out results.jsonl --jobs 4
    repro validate --scenario cell.json --engines packet,fluid
    repro scenario show cell.json
    repro report   --results results.jsonl --what table3
    repro matrix

Every experiment-shaped command parses its flags *into* a scenario IR
instance (repro.scenario; docs/SCENARIO.md) and compiles that for the
chosen engine — flags and ``--scenario`` documents share one code path.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro._version import __version__
from repro.analysis.aggregate import ResultSet
from repro.analysis.figures import (
    fig2_series,
    fig3_series,
    fig4_series,
    fig5_series,
    fig6_series,
    fig7_series,
    fig8_series,
)
from repro.analysis.report import (
    render_inter_panels,
    render_intra_metric_panels,
    render_jain_panels,
)
from repro.analysis.table3 import build_table3, render_table3
from repro.analysis.validate import render_claims, validate_claims
from repro.experiments.campaign import CampaignProgress, run_campaign
from repro.experiments.config import ExperimentConfig
from repro.experiments.matrix import full_matrix
from repro.experiments.presets import PRESETS, get_preset
from repro.experiments.runner import run_experiment
from repro.experiments.storage import ResultStore
from repro.obs.cli import add_obs_parser
from repro.obs.session import DEFAULT_TELEMETRY_DIR, TelemetryOptions
from repro.scenario import (
    AqmSpec,
    FlowSpec,
    SamplingSpec,
    Scenario,
    ScenarioError,
    TopologySpec,
    compile_scenario,
    render_validation_report,
    validate_scenario,
)
from repro.units import format_rate


def _telemetry_options(args: argparse.Namespace) -> Optional[TelemetryOptions]:
    """Build TelemetryOptions from run/sweep flags; None when telemetry is off.

    ``--trace`` / ``--profile`` imply ``--telemetry`` (spans and profiles
    stream into the same run log).
    """
    trace_dump = bool(getattr(args, "trace_dump", False))
    spans = bool(getattr(args, "trace", False))
    profile = bool(getattr(args, "profile", False))
    stride = int(getattr(args, "profile_stride", 1) or 1)
    if stride > 1:
        profile = True
    if not args.telemetry and not trace_dump and not spans and not profile:
        return None
    return TelemetryOptions(
        dir=args.telemetry_dir,
        trace_dump=trace_dump,
        spans=spans,
        profile=profile,
        profile_stride=stride,
    )


def parse_rate(text: str) -> float:
    """Parse '100M', '25G', '500000000' into bits/second."""
    text = text.strip()
    multiplier = 1.0
    if text and text[-1].upper() in "KMG":
        multiplier = {"K": 1e3, "M": 1e6, "G": 1e9}[text[-1].upper()]
        text = text[:-1]
    try:
        return float(text) * multiplier
    except ValueError:
        raise argparse.ArgumentTypeError(f"cannot parse rate {text!r}") from None


def _parse_faults(args: argparse.Namespace) -> list:
    """Compile ``--fault`` strings into validated FaultSpec dicts."""
    from repro.faults.spec import FaultSpec

    specs = []
    for text in getattr(args, "fault", None) or ():
        try:
            specs.append(FaultSpec.parse(text).to_dict())
        except ValueError as exc:
            raise SystemExit(f"repro: bad --fault {text!r}: {exc}")
    return specs


def _load_scenario_file(path: str) -> Scenario:
    """Read and validate a scenario IR document (JSON)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise SystemExit(f"repro: cannot read scenario {path!r}: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"repro: {path}: not valid JSON ({exc})")
    try:
        return Scenario.from_dict(doc)
    except ScenarioError as exc:
        raise SystemExit(f"repro: {path}: invalid scenario: {exc}")


def _scenario_from_args(args: argparse.Namespace) -> Scenario:
    """The one flags-to-IR path (run / validate / scenario show).

    With ``--scenario`` the document is authoritative and only the
    overlay flags (``--fairness``, ``--fault``) modify it; otherwise the
    cell flags assemble a scenario from scratch.
    """
    import dataclasses

    faults = _parse_faults(args)
    if getattr(args, "scenario", None):
        scenario = _load_scenario_file(args.scenario)
        if getattr(args, "fairness", None) is not None:
            scenario = dataclasses.replace(
                scenario,
                sampling=dataclasses.replace(
                    scenario.sampling, fairness_interval_s=args.fairness
                ),
            )
        if faults:
            scenario = dataclasses.replace(
                scenario, faults=tuple(scenario.faults) + tuple(faults)
            )
        return scenario
    try:
        return Scenario(
            topology=TopologySpec(
                bottleneck_bw_bps=args.bw,
                buffer_bdp=args.buffer,
                mss_bytes=args.mss,
                scale=args.scale,
            ),
            flows=(
                FlowSpec(cca=args.cca1, node=0, count=args.flows),
                FlowSpec(cca=args.cca2, node=1, count=args.flows),
            ),
            aqm=AqmSpec(name=args.aqm),
            faults=tuple(faults),
            duration_s=args.duration,
            seed=args.seed,
            sampling=SamplingSpec(fairness_interval_s=getattr(args, "fairness", None)),
        )
    except ScenarioError as exc:
        raise SystemExit(f"repro: invalid scenario flags: {exc}")


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    try:
        cfg = compile_scenario(scenario, args.engine.replace("-", "_"))
    except ScenarioError as exc:
        raise SystemExit(f"repro: {exc}")
    telemetry = _telemetry_options(args)
    result = run_experiment(cfg, telemetry)
    print(f"config      : {cfg.label()}")
    print(f"engine      : {result.engine}")
    for s in result.senders:
        print(f"  {s.node} ({s.cca}): {format_rate(s.throughput_bps)}  retx={s.retransmits}")
    print(f"jain index  : {result.jain_index:.4f}")
    print(f"utilization : {result.link_utilization:.4f}")
    print(f"retransmits : {result.total_retransmits}")
    print(f"drops       : {result.bottleneck_drops}")
    print(f"wallclock   : {result.wallclock_s:.2f}s")
    faults = result.extra.get("faults") if isinstance(result.extra, dict) else None
    if faults:
        print(f"faults      : {faults['injected']} mutations injected")
    fairness = result.extra.get("fairness") if isinstance(result.extra, dict) else None
    if fairness:
        conv = fairness.get("convergence_time_s")
        conv_text = f"{conv:.2f}s" if conv is not None else "never"
        print(
            f"fairness    : {fairness.get('samples', 0)} samples "
            f"@ {fairness.get('interval_s')}s, converged {conv_text}, "
            f"{fairness.get('oscillations', 0)} oscillations, "
            f"{len(fairness.get('sync_loss_t_s') or [])} sync losses"
        )
    obs = result.extra.get("obs") if isinstance(result.extra, dict) else None
    if obs:
        print(f"run log     : {obs['run_log']} ({obs['events_per_sec']:.0f} ev/s)")
        if "spans" in obs:
            print(f"spans       : {obs['spans']} recorded "
                  f"(export: repro obs trace {obs['run_log']})")
        if "profile_coverage" in obs:
            print(f"profile     : {100.0 * obs['profile_coverage']:.1f}% coverage, "
                  f"skew {obs['sim_wall_skew']:.2f}x "
                  f"(table: repro obs profile {obs['run_log']})")
    return 0


def _parse_seeds(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"repro: bad --seeds {text!r}: expected a comma list of integers")


def _sweep_scenario_configs(args: argparse.Namespace) -> List[ExperimentConfig]:
    """Compile a ``--scenario`` document (x ``--seeds``) for the sweep."""
    import dataclasses

    scenario = _load_scenario_file(args.scenario)
    engine = (args.engine or "packet").replace("-", "_")
    seeds = _parse_seeds(args.seeds) if args.seeds else [scenario.seed]
    try:
        return [
            compile_scenario(dataclasses.replace(scenario, seed=seed), engine)
            for seed in seeds
        ]
    except ScenarioError as exc:
        raise SystemExit(f"repro: {exc}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.config import legacy_construction

    if args.scenario:
        configs = _sweep_scenario_configs(args)
        if args.limit:
            configs = configs[: args.limit]
    else:
        configs = get_preset(args.preset)
        if args.limit:
            configs = configs[: args.limit]
        if args.engine:
            import dataclasses

            engine = args.engine.replace("-", "_")
            with legacy_construction():
                configs = [dataclasses.replace(cfg, engine=engine) for cfg in configs]
    if args.fault_profile:
        import dataclasses

        from repro.faults.profiles import get_profile

        profile = get_profile(args.fault_profile)
        with legacy_construction():
            configs = [dataclasses.replace(cfg, faults=list(profile)) for cfg in configs]
    if args.fairness is not None:
        import dataclasses

        with legacy_construction():
            configs = [
                dataclasses.replace(cfg, fairness_interval_s=args.fairness)
                for cfg in configs
            ]
    store = ResultStore(args.out) if args.out else None
    telemetry = _telemetry_options(args)
    cache = None
    if args.cache:
        from repro.experiments.cache import ResultCache

        cache = ResultCache(args.cache)
    if args.queue:
        return _sweep_via_queue(args, configs, store, cache)
    campaign_log = (
        Path(telemetry.dir) / "campaign.jsonl" if telemetry is not None else None
    )
    tracker = CampaignProgress(
        campaign_log,
        quiet=args.quiet,
        spans=telemetry is not None and telemetry.spans,
    )
    try:
        results = run_campaign(
            configs,
            store=store,
            jobs=args.jobs,
            resume=not args.no_resume,
            progress=tracker,
            on_failure=tracker.failure,
            telemetry=telemetry,
            timeout_s=args.timeout,
            retries=args.retries,
            on_retry=tracker.retry,
            span_tracer=tracker.spans,
            cache=cache,
        )
    finally:
        tracker.close()
    counts = results.summary()
    tail = ""
    if counts["failed"]:
        tail += f", {counts['failed']} FAILED"
    if counts.get("retried"):
        tail += f", {counts['retried']} retried"
    print(f"completed {counts['ok']} runs{tail}")
    if cache is not None:
        _finish_cache(cache, results, merge=not args.no_cache_merge)
    return 2 if counts["failed"] else 0


def _finish_cache(cache, results, *, merge: bool) -> None:
    """Report (and optionally compact) the sweep's cache interaction.

    The ``cache: ... engine runs`` line is machine-checked by the CI
    cache-smoke job: a warm-cache sweep must print ``0 engine runs``.
    """
    if merge:
        cache.merge()
    stats = cache.stats()
    print(
        f"cache: {results.cache_hits} hits, {results.engine_runs} engine runs, "
        f"{stats['entries']} entries ({stats['dir']})"
    )


def _sweep_via_queue(args, configs, store, cache) -> int:
    """Queue-mode sweep: create/join the work queue and drain as one worker."""
    from repro.experiments.campaign import print_failure, print_progress
    from repro.experiments.queue import WorkQueue, run_queue_worker

    queue = WorkQueue.create(args.queue, configs)
    results = run_queue_worker(
        queue,
        store=store,
        cache=cache,
        progress=None if args.quiet else print_progress,
        on_failure=None if args.quiet else print_failure,
    )
    counts = results.summary()
    remaining = queue.counts()
    tail = f", {counts['failed']} FAILED" if counts["failed"] else ""
    print(
        f"completed {counts['ok']} runs{tail} "
        f"(queue: {remaining['done']}/{remaining['tasks']} tasks done, "
        f"{remaining['claimed']} claimed elsewhere)"
    )
    if cache is not None:
        # Never auto-merge in queue mode: sibling workers may still be
        # appending to their shards (see docs/SERVICE.md).
        _finish_cache(cache, results, merge=False)
    return 2 if counts["failed"] else 0


def _cmd_report(args: argparse.Namespace) -> int:
    results = ResultSet(ResultStore(args.results).load())
    if len(results) == 0:
        print(f"no results in {args.results}", file=sys.stderr)
        return 1
    what = args.what
    if what == "table3":
        print(render_table3(build_table3(results)))
    elif what in ("fig2", "fig4"):
        series = fig2_series(results) if what == "fig2" else fig4_series(results)
        print(render_inter_panels(series))
    elif what in ("fig3", "fig5", "fig6"):
        builder = {"fig3": fig3_series, "fig5": fig5_series, "fig6": fig6_series}[what]
        print(render_jain_panels(builder(results)))
    elif what == "fig7":
        print(render_intra_metric_panels(fig7_series(results)))
    elif what == "fig8":
        print(render_intra_metric_panels(fig8_series(results), fmt="{:>10.0f}"))
    elif what == "claims":
        claims = validate_claims(results)
        print(render_claims(claims))
        if any(c.passed is False for c in claims):
            return 2
    elif what == "all":
        from repro.analysis.summary_report import full_report

        print(full_report(results))
    else:  # pragma: no cover - argparse choices guard this
        raise ValueError(what)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis.dataset import flows_table, intervals_table, runs_table, write_csv

    results = ResultSet(ResultStore(args.results).load())
    if len(results) == 0:
        print(f"no results in {args.results}", file=sys.stderr)
        return 1
    builder = {"runs": runs_table, "flows": flows_table, "intervals": intervals_table}[args.table]
    rows = builder(results)
    if not rows:
        print(f"no {args.table} rows available in {args.results}", file=sys.stderr)
        return 1
    path = write_csv(rows, args.out)
    print(f"wrote {len(rows)} rows to {path}")
    return 0


def _cmd_export_figures(args: argparse.Namespace) -> int:
    from repro.analysis.export_figures import export_all_figures

    results = ResultSet(ResultStore(args.results).load())
    if len(results) == 0:
        print(f"no results in {args.results}", file=sys.stderr)
        return 1
    written = export_all_figures(results, args.out_dir)
    for fig, path in sorted(written.items()):
        print(f"{fig}: {path}")
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    configs = full_matrix()
    print(f"full grid: {len(configs)} configurations (paper: 810)")
    print("presets:")
    for name, preset in PRESETS.items():
        print(f"  {name:<12s} {preset.description}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    engines = tuple(
        part.strip().replace("-", "_")
        for part in args.engines.split(",")
        if part.strip()
    )
    try:
        report = validate_scenario(scenario, engines)
    except ScenarioError as exc:
        raise SystemExit(f"repro: {exc}")
    print(render_validation_report(report, verbose=args.verbose))
    return 0 if report.clean else 2


def _cmd_scenario_show(args: argparse.Namespace) -> int:
    scenario = _load_scenario_file(args.scenario_file)
    engine = args.engine.replace("-", "_")
    print(scenario.canonical_json(indent=2))
    try:
        print(f"label     : {scenario.label(engine=engine)}")
        print(f"cache key : {scenario.cache_key(engine=engine, salt=args.salt)} "
              f"(engine={engine})")
    except ScenarioError as exc:
        print(f"cache key : n/a ({exc})")
    return 0


def _add_tracing_flags(parser: argparse.ArgumentParser) -> None:
    """Span/profiler/fairness flags shared by ``run`` and ``sweep``
    (docs/TRACING.md, docs/OBSERVABILITY.md)."""
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record hierarchical span records (Perfetto timeline via "
        "'repro obs trace'; implies --telemetry)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attach the event-loop self-profiler (table via "
        "'repro obs profile'; implies --telemetry)",
    )
    parser.add_argument(
        "--profile-stride",
        type=int,
        default=1,
        metavar="N",
        help="profile every N-th event instead of all (implies --profile)",
    )
    parser.add_argument(
        "--fairness",
        type=float,
        nargs="?",
        const=1.0,
        default=None,
        metavar="SEC",
        help="record fairness dynamics (Jain/phi/queue series, convergence, "
        "sync losses) every SEC simulated seconds (default 1.0; works on "
        "all engines, never perturbs outcomes — see docs/OBSERVABILITY.md)",
    )


def _add_cell_flags(parser: argparse.ArgumentParser) -> None:
    """One experiment cell, as flags or an IR document (run / validate)."""
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="FILE",
        help="scenario IR document (JSON; see docs/SCENARIO.md) — "
        "supersedes the cell flags below",
    )
    parser.add_argument("--cca1", default="bbrv1")
    parser.add_argument("--cca2", default="cubic")
    parser.add_argument("--aqm", default="fifo", choices=["fifo", "red", "fq_codel", "codel", "pie"])
    parser.add_argument("--buffer", type=float, default=2.0, help="queue length in BDP multiples")
    parser.add_argument("--bw", type=parse_rate, default=100e6, help="bottleneck rate, e.g. 100M, 25G")
    parser.add_argument("--duration", type=float, default=30.0)
    parser.add_argument("--mss", type=int, default=8900)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--scale", type=float, default=1.0, help="divide all link rates by this")
    parser.add_argument("--flows", type=int, default=None, help="flows per sender node (default: Table 2)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Elephants Sharing the Highway' (SC-W 2023)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a single experiment cell")
    _add_cell_flags(p_run)
    p_run.add_argument(
        "--engine", default="packet", choices=["packet", "fluid", "fluid-batched"]
    )
    p_run.add_argument("--telemetry", action="store_true", help="write a JSONL run log + manifest")
    p_run.add_argument("--telemetry-dir", default=DEFAULT_TELEMETRY_DIR, help="run log directory")
    p_run.add_argument(
        "--trace-dump",
        action="store_true",
        help="dump the flight-recorder window after the run (implies --telemetry)",
    )
    _add_tracing_flags(p_run)
    p_run.add_argument(
        "--fault",
        action="append",
        metavar="SPEC",
        help=(
            "inject a deterministic fault, e.g. 'link_flap,at=10,dur=1' or "
            "'loss_burst,at=5,dur=5,loss=0.01' (repeatable; see docs/FAULTS.md)"
        ),
    )
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser("sweep", help="run a preset campaign")
    p_sweep.add_argument("--preset", default="paper-fluid", choices=sorted(PRESETS))
    p_sweep.add_argument(
        "--scenario",
        default=None,
        metavar="FILE",
        help="sweep one scenario IR document instead of a preset "
        "(replicate with --seeds; engine from --engine)",
    )
    p_sweep.add_argument(
        "--seeds",
        default=None,
        metavar="LIST",
        help="comma list of seeds replicating the --scenario (e.g. 1,2,3)",
    )
    p_sweep.add_argument(
        "--engine",
        default=None,
        choices=["packet", "fluid", "fluid-batched"],
        help="override the preset's engine on every config "
        "(fluid-batched runs whole shards as one stacked integration)",
    )
    p_sweep.add_argument("--out", default="results.jsonl")
    p_sweep.add_argument("--jobs", type=int, default=1)
    p_sweep.add_argument("--limit", type=int, default=0, help="run only the first N configs")
    p_sweep.add_argument("--no-resume", action="store_true")
    p_sweep.add_argument("--quiet", action="store_true")
    p_sweep.add_argument(
        "--telemetry",
        action="store_true",
        help="per-run JSONL logs + live campaign.jsonl in --telemetry-dir",
    )
    p_sweep.add_argument("--telemetry-dir", default=DEFAULT_TELEMETRY_DIR, help="run log directory")
    _add_tracing_flags(p_sweep)
    p_sweep.add_argument(
        "--fault-profile",
        default=None,
        help="apply a named fault profile to every config (see repro.faults.profiles)",
    )
    p_sweep.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-run wall-clock deadline; hung workers are killed and recorded as failures",
    )
    p_sweep.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="re-run failed configs up to N times with exponential backoff",
    )
    p_sweep.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="content-addressed result cache root: configs any store has "
        "computed skip the engine, fresh results are recorded "
        "(see docs/SERVICE.md)",
    )
    p_sweep.add_argument(
        "--no-cache-merge",
        action="store_true",
        help="leave cache shards unfolded at sweep end (use when several "
        "sweeps share one cache concurrently)",
    )
    p_sweep.add_argument(
        "--queue",
        default=None,
        metavar="DIR",
        help="drain the sweep through a durable work queue: N processes "
        "pointing at one queue dir pull disjoint tasks and share the "
        "store safely (see docs/SERVICE.md)",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_report = sub.add_parser("report", help="render tables/figures from stored results")
    p_report.add_argument("--results", default="results.jsonl")
    p_report.add_argument(
        "--what",
        default="table3",
        choices=["table3", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "claims", "all"],
    )
    p_report.set_defaults(func=_cmd_report)

    p_export = sub.add_parser("export", help="export results as ML-ready CSV tables")
    p_export.add_argument("--results", default="results.jsonl")
    p_export.add_argument("--table", default="runs", choices=["runs", "flows", "intervals"])
    p_export.add_argument("--out", default="dataset.csv")
    p_export.set_defaults(func=_cmd_export)

    p_figs = sub.add_parser("export-figures", help="write fig2..fig8 series as CSV files")
    p_figs.add_argument("--results", default="results.jsonl")
    p_figs.add_argument("--out-dir", default="figures")
    p_figs.set_defaults(func=_cmd_export_figures)

    p_matrix = sub.add_parser("matrix", help="describe the experiment grid and presets")
    p_matrix.set_defaults(func=_cmd_matrix)

    p_validate = sub.add_parser(
        "validate",
        help="run one scenario on several engines and diff them under the "
        "declared tolerance policy (docs/SCENARIO.md)",
    )
    _add_cell_flags(p_validate)
    p_validate.add_argument(
        "--engines",
        default="packet,fluid",
        metavar="LIST",
        help="comma list of engines to cross-validate "
        "(packet, fluid, fluid-batched; default: packet,fluid)",
    )
    p_validate.add_argument(
        "--verbose", action="store_true", help="also print the tolerance bands"
    )
    p_validate.set_defaults(func=_cmd_validate)

    p_scenario = sub.add_parser("scenario", help="inspect scenario IR documents")
    scenario_sub = p_scenario.add_subparsers(dest="scenario_command", required=True)
    p_show = scenario_sub.add_parser(
        "show", help="pretty-print a scenario's canonical form and cache key"
    )
    p_show.add_argument("scenario_file", help="scenario IR document (JSON)")
    p_show.add_argument(
        "--engine",
        default="packet",
        choices=["packet", "fluid", "fluid-batched"],
        help="engine the cache key is computed for (keys are per-engine)",
    )
    p_show.add_argument(
        "--salt", default=None, help="cache salt (default: repro-<version>)"
    )
    p_show.set_defaults(func=_cmd_scenario_show)

    p_cache = sub.add_parser(
        "cache", help="inspect or compact a content-addressed result cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cstats = cache_sub.add_parser("stats", help="print cache layout stats as JSON")
    p_cstats.add_argument("cache_dir", help="cache root directory")
    p_cstats.set_defaults(func=_cmd_cache_stats)
    p_cmerge = cache_sub.add_parser(
        "merge", help="fold worker shards into the canonical store (dedup + verify)"
    )
    p_cmerge.add_argument("cache_dir", help="cache root directory")
    p_cmerge.set_defaults(func=_cmd_cache_merge)

    p_serve = sub.add_parser(
        "serve",
        help="serve fairness queries from the result cache over HTTP",
        add_help=False,  # repro.service owns the full flag set
    )
    p_serve.add_argument("serve_args", nargs=argparse.REMAINDER)
    p_serve.set_defaults(func=_cmd_serve)

    add_obs_parser(sub)

    p_bench = sub.add_parser(
        "bench",
        help="run the pinned-seed benchmark suite and gate on regressions",
        add_help=False,  # repro.bench.harness owns the full flag set
    )
    p_bench.add_argument("bench_args", nargs=argparse.REMAINDER)
    p_bench.set_defaults(func=_cmd_bench)
    return parser


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.harness import main as bench_main

    return bench_main(args.bench_args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import main as serve_main

    return serve_main(args.serve_args)


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.cache import ResultCache

    cache = ResultCache(args.cache_dir)
    print(json.dumps(cache.stats(), indent=2, sort_keys=True))
    return 0


def _cmd_cache_merge(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.cache import ResultCache

    cache = ResultCache(args.cache_dir)
    summary = cache.merge()
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # Dispatch ``bench`` before argparse: REMAINDER refuses a leading
    # option-like token (python/cpython#61252), which would reject
    # ``repro bench --list``.  The harness owns the whole flag set.
    if argv and argv[0] == "bench":
        from repro.bench.harness import main as bench_main

        return bench_main(argv[1:])
    # Same REMAINDER workaround for ``serve`` (repro.service owns its flags).
    if argv and argv[0] == "serve":
        from repro.service import main as serve_main

        return serve_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
