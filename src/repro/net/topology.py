"""Topology construction helpers.

:class:`Network` owns the simulator plus every node and link, and provides
``connect`` to wire two interfaces with a duplex link (two independent
unidirectional :class:`~repro.net.link.Link` objects, each with its own
queue discipline — exactly how `tc` configures each direction separately).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.aqm.base import QueueDiscipline
from repro.aqm.fifo import FifoQueue
from repro.net.interface import Interface
from repro.net.link import Link
from repro.net.node import Host, Node, Router
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams

# A deep default so un-shaped links (host NICs, the non-bottleneck hops)
# never drop: 256 MiB, far above any BDP used in the experiments.
DEFAULT_IFACE_BUFFER_BYTES = 256 * 1024 * 1024


class Network:
    """A simulator plus its nodes and links."""

    def __init__(self, sim: Optional[Simulator] = None, *, seed: int = 0):
        self.sim = sim if sim is not None else Simulator()
        self.rng = RngStreams(seed)
        self.nodes: Dict[str, Node] = {}
        self.links: Dict[str, Link] = {}

    # -- node management ----------------------------------------------------------

    def add_host(self, name: str) -> Host:
        """Create and register a host."""
        return self._add_node(Host(self.sim, name))

    def add_router(self, name: str) -> Router:
        """Create and register a router."""
        return self._add_node(Router(self.sim, name))

    def _add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def __getitem__(self, name: str) -> Node:
        return self.nodes[name]

    # -- wiring ------------------------------------------------------------------

    def connect(
        self,
        a: Interface,
        b: Interface,
        *,
        rate_bps: float,
        delay_ns: int,
        rate_ba_bps: Optional[float] = None,
        qdisc_a: Optional[QueueDiscipline] = None,
        qdisc_b: Optional[QueueDiscipline] = None,
        loss_rate: float = 0.0,
    ) -> Tuple[Link, Link]:
        """Create the duplex link a<->b.  Returns (link a->b, link b->a).

        ``rate_ba_bps`` lets the return direction run at a different speed
        (the bottleneck shaping in the paper applies to one direction only).
        """
        loss_rng = self.rng.stream(f"linkloss:{a.node.name}-{b.node.name}") if loss_rate else None
        link_ab = Link(
            self.sim,
            rate_bps,
            delay_ns,
            b.deliver,
            name=f"{a.node.name}->{b.node.name}",
            loss_rate=loss_rate,
            loss_rng=loss_rng,
        )
        link_ba = Link(
            self.sim,
            rate_ba_bps if rate_ba_bps is not None else rate_bps,
            delay_ns,
            a.deliver,
            name=f"{b.node.name}->{a.node.name}",
            loss_rate=loss_rate,
            loss_rng=loss_rng,
        )
        a.attach(link_ab, b, qdisc_a if qdisc_a is not None else FifoQueue(DEFAULT_IFACE_BUFFER_BYTES))
        b.attach(link_ba, a, qdisc_b if qdisc_b is not None else FifoQueue(DEFAULT_IFACE_BUFFER_BYTES))
        self.links[link_ab.name] = link_ab
        self.links[link_ba.name] = link_ba
        return link_ab, link_ba

    def run(self, until_ns: Optional[int] = None) -> None:
        """Run the simulation (delegates to the engine)."""
        self.sim.run(until_ns)
