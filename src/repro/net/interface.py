"""Network interfaces: the glue between nodes, queues, and links.

An :class:`Interface` owns one egress :class:`~repro.aqm.base.QueueDiscipline`
and one outbound :class:`~repro.net.link.Link`.  Arriving packets always go
through the discipline (so CoDel sees a truthful enqueue timestamp even
when the link is idle) and a dequeue loop keeps the link busy whenever the
queue is non-empty — the standard qdisc/driver split in Linux.

Hot-path notes: the enqueue/dequeue/transmit callables are prebound at
:meth:`Interface.attach` / :meth:`Interface.set_qdisc` time so the
per-packet path does two dict-free calls instead of chasing
``self.qdisc.enqueue`` attribute chains on every packet.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.aqm.base import QueueDiscipline
from repro.net.address import IPv4Address
from repro.net.link import Link
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


class Interface:
    """One attachment point of a node."""

    __slots__ = (
        "node",
        "name",
        "address",
        "link",
        "qdisc",
        "peer",
        "_busy",
        "_sim",
        "_enqueue",
        "_dequeue",
        "_transmit",
        "_pump_cb",
    )

    def __init__(self, node: "Node", name: str, address: Optional[IPv4Address] = None):
        self.node = node
        self.name = name
        self.address = address
        self.link: Optional[Link] = None
        self.qdisc: Optional[QueueDiscipline] = None
        self.peer: Optional["Interface"] = None
        self._busy = False
        self._sim = node.sim
        self._enqueue = None
        self._dequeue = None
        self._transmit = None
        self._pump_cb = self._pump

    def attach(self, link: Link, peer: "Interface", qdisc: QueueDiscipline) -> None:
        """Wire this interface to its outbound link / far-end interface."""
        self.link = link
        self.peer = peer
        self.qdisc = qdisc
        self._transmit = link.transmit
        self._enqueue = qdisc.enqueue
        self._dequeue = qdisc.dequeue

    def set_qdisc(self, qdisc: QueueDiscipline) -> None:
        """Replace the egress discipline (the `tc qdisc replace` analogue).

        Only allowed while the queue is idle — experiments reconfigure
        between runs, never mid-transfer.
        """
        if self.qdisc is not None and not self.qdisc.is_empty:
            raise RuntimeError(f"cannot replace a non-empty qdisc on {self}")
        self.qdisc = qdisc
        self._enqueue = qdisc.enqueue
        self._dequeue = qdisc.dequeue

    # -- fault hooks --------------------------------------------------------------

    def set_down(self, *, flush_queue: bool = False) -> None:
        """Down the egress link; optionally flush queued packets too.

        With ``flush_queue`` False (the default, matching an unplugged
        cable) the qdisc keeps queueing and the transmit loop keeps
        draining it into the dead link, where packets are dropped
        deterministically; with True, the backlog is discarded on the
        spot (a line-card reset rather than a cable pull).
        """
        if self.link is None:
            raise RuntimeError(f"interface {self} is not attached")
        self.link.set_down()
        if flush_queue and self.qdisc is not None:
            self.qdisc.flush(self._sim.now)

    def set_up(self) -> None:
        """Bring the egress link back up."""
        if self.link is None:
            raise RuntimeError(f"interface {self} is not attached")
        self.link.set_up()

    # -- datapath -----------------------------------------------------------------

    def send(self, pkt: Packet) -> None:
        """Egress entry point: enqueue, then kick the transmit loop."""
        if self.link is None or self.qdisc is None:
            raise RuntimeError(f"interface {self} is not attached")
        if self._enqueue(pkt, self._sim.now) and not self._busy:
            self._pump()

    def _pump(self) -> None:
        pkt = self._dequeue(self._sim.now)
        if pkt is None:
            self._busy = False
            return
        self._busy = True
        self._transmit(pkt, self._pump_cb)

    def deliver(self, pkt: Packet) -> None:
        """Ingress: a packet arrived from the link; hand it to the node."""
        self.node.receive(pkt, self)

    @property
    def is_busy(self) -> bool:
        return self._busy

    def telemetry(self) -> dict:
        """Egress-point snapshot: qdisc counters + link counters + state.

        Pull-based aggregation over counters the datapath already keeps —
        reading it costs nothing on the per-packet path.
        """
        out: dict = {"interface": f"{self.node.name}:{self.name}", "busy": self._busy}
        if self.qdisc is not None:
            stats = self.qdisc.stats
            out["queue"] = {
                "backlog_bytes": self.qdisc.bytes_queued,
                "backlog_packets": self.qdisc.packets_queued,
                "enqueued": stats.enqueued,
                "dequeued": stats.dequeued,
                "dropped_enqueue": stats.dropped_enqueue,
                "dropped_dequeue": stats.dropped_dequeue,
                "ecn_marked": stats.ecn_marked,
            }
        if self.link is not None:
            out["link"] = self.link.telemetry()
        return out

    def __repr__(self) -> str:  # pragma: no cover
        addr = f" {self.address}" if self.address is not None else ""
        return f"<Interface {self.node.name}:{self.name}{addr}>"
