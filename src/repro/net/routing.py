"""Static routing tables with longest-prefix match.

The paper installs static routes between its five subnets on the two
routing nodes; :class:`RoutingTable` is that mechanism.  Lookups are
longest-prefix-match with an exact-address result cache, since the
simulator routes every packet.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.address import IPv4Address, Subnet
from repro.net.interface import Interface


class RoutingTable:
    """Destination-subnet -> egress-interface mapping."""

    def __init__(self) -> None:
        # Sorted by prefix length, longest first, for first-match-wins LPM.
        self._routes: List[Tuple[Subnet, Interface]] = []
        self._cache: Dict[int, Interface] = {}

    def add_route(self, subnet: Subnet, via: Interface) -> None:
        """Install a route.  Re-adding a subnet replaces the old entry."""
        self._routes = [(s, i) for (s, i) in self._routes if s != subnet]
        self._routes.append((subnet, via))
        self._routes.sort(key=lambda entry: entry[0].prefix_len, reverse=True)
        self._cache.clear()

    def lookup(self, dst: IPv4Address) -> Optional[Interface]:
        """Longest-prefix match; None when no route covers ``dst``."""
        key = dst.value
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        for subnet, iface in self._routes:
            if dst in subnet:
                self._cache[key] = iface
                return iface
        return None

    @property
    def routes(self) -> List[Tuple[Subnet, Interface]]:
        return list(self._routes)

    def __len__(self) -> int:
        return len(self._routes)
