"""Nodes: hosts terminate TCP flows, routers forward packets.

A :class:`Host` keeps a flow-id dispatch table — arriving segments are
handed to the registered endpoint (a TCP sender for ACKs, a TCP receiver
for data).  A :class:`Router` enables packet forwarding via its static
:class:`~repro.net.routing.RoutingTable`, mirroring the paper's setup
("we enabled packet forwarding on the routing nodes and introduced static
routing rules from and to all subnets").
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

from repro.net.address import IPv4Address, Subnet
from repro.net.interface import Interface
from repro.net.packet import Packet, free_packet
from repro.net.routing import RoutingTable
from repro.sim.engine import Simulator


class FlowEndpoint(Protocol):
    """Anything that can consume packets addressed to it (TCP sender/receiver)."""

    def handle_packet(self, pkt: Packet) -> None:
        """Consume one packet addressed to this endpoint."""
        ...


class Node:
    """Common behaviour: named, owns interfaces."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.interfaces: Dict[str, Interface] = {}

    def add_interface(self, name: str, address: Optional[IPv4Address] = None) -> Interface:
        """Create and register a named interface on this node."""
        if name in self.interfaces:
            raise ValueError(f"{self.name} already has an interface {name!r}")
        iface = Interface(self, name, address)
        self.interfaces[name] = iface
        return iface

    def interface_for_address(self, address: IPv4Address) -> Optional[Interface]:
        """The local interface holding ``address``, if any."""
        for iface in self.interfaces.values():
            if iface.address == address:
                return iface
        return None

    def receive(self, pkt: Packet, iface: Optional[Interface] = None) -> None:
        """Handle a packet delivered by ``iface`` (optional; both node
        kinds dispatch on the packet alone)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}>"


class Host(Node):
    """An end system: packets terminate here, dispatched per flow id."""

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self._endpoints: Dict[int, FlowEndpoint] = {}
        # Prebound dict.get: stays valid because _endpoints is only ever
        # mutated in place.
        self._endpoint_for = self._endpoints.get
        self.packets_received = 0
        self.packets_unroutable = 0

    def register_endpoint(self, flow_id: int, endpoint: FlowEndpoint) -> None:
        """Bind a TCP endpoint to ``flow_id`` on this host."""
        if flow_id in self._endpoints:
            raise ValueError(f"flow {flow_id} already registered on {self.name}")
        self._endpoints[flow_id] = endpoint

    def unregister_endpoint(self, flow_id: int) -> None:
        """Remove a flow binding (idempotent)."""
        self._endpoints.pop(flow_id, None)

    def receive(self, pkt: Packet, iface: Optional[Interface] = None) -> None:
        self.packets_received += 1
        endpoint = self._endpoint_for(pkt.flow_id)
        if endpoint is None:
            self.packets_unroutable += 1
            return
        endpoint.handle_packet(pkt)
        # Every packet terminates here; endpoints never retain the object,
        # so it can be recycled for the next factory allocation.
        free_packet(pkt)

    def primary_interface(self) -> Interface:
        """The single data interface of a paper-style host (one NIC per node)."""
        if len(self.interfaces) != 1:
            raise RuntimeError(
                f"{self.name} has {len(self.interfaces)} interfaces; "
                "primary_interface() needs exactly one"
            )
        return next(iter(self.interfaces.values()))


class Router(Node):
    """A store-and-forward router with static routes."""

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self.routing_table = RoutingTable()
        # The table's exact-address result cache, shared by reference so the
        # per-packet fast path below skips a method call.  add_route()
        # clears it in place, which keeps this alias valid.
        self._route_cache = self.routing_table._cache
        self.packets_forwarded = 0
        self.packets_unroutable = 0

    def add_route(self, subnet: Subnet, via: Interface) -> None:
        """Install a static route out a local interface."""
        if via.node is not self:
            raise ValueError(f"route must egress a local interface, got {via}")
        self.routing_table.add_route(subnet, via)

    def receive(self, pkt: Packet, iface: Optional[Interface] = None) -> None:
        dst = pkt.dst
        egress = self._route_cache.get(dst.value)
        if egress is None:
            egress = self.routing_table.lookup(dst)
            if egress is None:
                self.packets_unroutable += 1
                return
        self.packets_forwarded += 1
        egress.send(pkt)
