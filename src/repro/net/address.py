"""Minimal IPv4-style addressing.

The paper applies its own Layer-3 plan with 5 subnets over FABRIC's L2
service and installs static routes on the two routers.  We mirror that:
addresses are 32-bit integers with dotted-quad parsing/formatting, and
:class:`Subnet` supports containment tests used by the static routing
tables in :mod:`repro.net.routing`.
"""

from __future__ import annotations

from typing import Iterator


class IPv4Address:
    """An immutable 32-bit address."""

    __slots__ = ("value",)

    def __init__(self, value):
        if isinstance(value, IPv4Address):
            self.value = value.value
        elif isinstance(value, int):
            if not 0 <= value <= 0xFFFFFFFF:
                raise ValueError(f"address out of range: {value}")
            self.value = value
        elif isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise ValueError(f"malformed IPv4 address: {value!r}")
            acc = 0
            for p in parts:
                octet = int(p)
                if not 0 <= octet <= 255:
                    raise ValueError(f"malformed IPv4 address: {value!r}")
                acc = (acc << 8) | octet
            self.value = acc
        else:
            raise TypeError(f"cannot build IPv4Address from {type(value).__name__}")

    def __int__(self) -> int:
        return self.value

    def __eq__(self, other) -> bool:
        if isinstance(other, IPv4Address):
            return self.value == other.value
        if isinstance(other, str):
            return self.value == IPv4Address(other).value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.value)

    def __lt__(self, other: "IPv4Address") -> bool:
        return self.value < other.value

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self.value + offset)

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 255}.{(v >> 16) & 255}.{(v >> 8) & 255}.{v & 255}"

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"


class Subnet:
    """A CIDR prefix, e.g. ``Subnet('10.0.1.0/24')``."""

    __slots__ = ("network", "prefix_len", "_mask")

    def __init__(self, cidr: str):
        try:
            addr_text, plen_text = cidr.split("/")
        except ValueError:
            raise ValueError(f"malformed CIDR: {cidr!r}") from None
        self.prefix_len = int(plen_text)
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {cidr!r}")
        self._mask = (0xFFFFFFFF << (32 - self.prefix_len)) & 0xFFFFFFFF if self.prefix_len else 0
        base = IPv4Address(addr_text).value
        self.network = base & self._mask

    def __contains__(self, addr) -> bool:
        return (IPv4Address(addr).value & self._mask) == self.network

    def hosts(self) -> Iterator[IPv4Address]:
        """Usable host addresses (network+1 .. broadcast-1 for /<=30)."""
        size = 1 << (32 - self.prefix_len)
        if size <= 2:
            yield IPv4Address(self.network)
            return
        for off in range(1, size - 1):
            yield IPv4Address(self.network + off)

    def address(self, host_index: int) -> IPv4Address:
        """The ``host_index``-th usable host address (1-based, like .1, .2 ...)."""
        size = 1 << (32 - self.prefix_len)
        if not 1 <= host_index <= max(1, size - 2):
            raise ValueError(f"host index {host_index} out of range for /{self.prefix_len}")
        return IPv4Address(self.network + host_index)

    def __eq__(self, other) -> bool:
        if isinstance(other, Subnet):
            return self.network == other.network and self.prefix_len == other.prefix_len
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.network, self.prefix_len))

    def __str__(self) -> str:
        return f"{IPv4Address(self.network)}/{self.prefix_len}"

    def __repr__(self) -> str:
        return f"Subnet('{self}')"
