"""The wire unit of the simulator.

One :class:`Packet` models one TCP segment (data or pure ACK).  Sequence
numbers count *segments*, not bytes: every data segment of a flow is
``mss`` bytes on the wire (the paper uses fixed jumbo 8900-byte packets),
so byte-level sequence arithmetic would add cost without changing any of
the dynamics under study.

Data segments carry the delivery-rate sampling fields BBR needs
(``delivered``/``delivered_time`` snapshots taken at transmission); ACKs
carry the cumulative ack, up to :data:`MAX_SACK_BLOCKS` SACK ranges, a
timestamp echo for RTT sampling, and the ECN-echo flag.

Hot-path notes: the factory functions (:func:`make_data_packet`,
:func:`make_ack_packet`) draw from a bounded freelist instead of
allocating, and assign every slot directly rather than going through
``Packet.__init__``'s keyword machinery.  :class:`~repro.net.node.Host`
returns consumed packets to the pool via :func:`free_packet` — a released
packet must never be retained, since the next factory call may recycle
and overwrite it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

ACK_SIZE_BYTES = 60
MAX_SACK_BLOCKS = 3


class Packet:
    """A single simulated segment."""

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "size",
        "is_ack",
        "seq",
        "ack",
        "sacks",
        "send_time",
        "ts_echo",
        "is_retx",
        "delivered",
        "delivered_time",
        "first_sent_time",
        "app_limited",
        "ecn_ect",
        "ecn_ce",
        "ecn_echo",
        "enqueue_time",
    )

    def __init__(
        self,
        flow_id: int,
        src,
        dst,
        size: int,
        *,
        is_ack: bool = False,
        seq: int = -1,
        ack: int = -1,
        sacks: Tuple[Tuple[int, int], ...] = (),
        send_time: int = 0,
        ts_echo: int = -1,
        is_retx: bool = False,
        ecn_ect: bool = False,
    ):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size
        self.is_ack = is_ack
        self.seq = seq
        self.ack = ack
        self.sacks = sacks
        self.send_time = send_time
        self.ts_echo = ts_echo
        self.is_retx = is_retx
        # BBR delivery-rate sampling snapshots (filled by the rate sampler).
        self.delivered = 0
        self.delivered_time = 0
        self.first_sent_time = 0
        self.app_limited = False
        # ECN code point: ECT(0) capable / CE marked / ECE echoed on ACKs.
        self.ecn_ect = ecn_ect
        self.ecn_ce = False
        self.ecn_echo = False
        # Set by queues at enqueue time; consumed by CoDel at dequeue time.
        self.enqueue_time = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_ack:
            return f"<ACK flow={self.flow_id} ack={self.ack} sacks={self.sacks}>"
        kind = "RETX" if self.is_retx else "DATA"
        return f"<{kind} flow={self.flow_id} seq={self.seq} size={self.size}>"


# --- freelist ----------------------------------------------------------------

#: Upper bound on pooled packets: enough for every packet in flight plus
#: every queued packet in any realistic run, while bounding memory held
#: by an idle pool.
_POOL_CAP = 8192
_pool: List[Packet] = []
_pool_pop = _pool.pop
_pool_append = _pool.append
_new_packet = Packet.__new__


def free_packet(pkt: Packet) -> None:
    """Return a fully consumed packet to the freelist.

    Callers guarantee no reference to ``pkt`` survives the call; the next
    :func:`make_data_packet` / :func:`make_ack_packet` may recycle it.
    """
    if len(_pool) < _POOL_CAP:
        _pool_append(pkt)


def pool_size() -> int:
    """Number of packets currently parked on the freelist (introspection)."""
    return len(_pool)


def make_data_packet(
    flow_id: int, src, dst, seq: int, mss: int, now: int, *, is_retx: bool = False, ecn_ect: bool = False
) -> Packet:
    """Build a data segment of ``mss`` wire bytes."""
    pkt = _pool_pop() if _pool else _new_packet(Packet)
    pkt.flow_id = flow_id
    pkt.src = src
    pkt.dst = dst
    pkt.size = mss
    pkt.is_ack = False
    pkt.seq = seq
    pkt.ack = -1
    pkt.sacks = ()
    pkt.send_time = now
    pkt.ts_echo = -1
    pkt.is_retx = is_retx
    pkt.delivered = 0
    pkt.delivered_time = 0
    pkt.first_sent_time = 0
    pkt.app_limited = False
    pkt.ecn_ect = ecn_ect
    pkt.ecn_ce = False
    pkt.ecn_echo = False
    pkt.enqueue_time = 0
    return pkt


def make_ack_packet(
    flow_id: int,
    src,
    dst,
    ack: int,
    now: int,
    *,
    sacks: Tuple[Tuple[int, int], ...] = (),
    ts_echo: int = -1,
    ecn_echo: bool = False,
) -> Packet:
    """Build a pure ACK."""
    pkt = _pool_pop() if _pool else _new_packet(Packet)
    pkt.flow_id = flow_id
    pkt.src = src
    pkt.dst = dst
    pkt.size = ACK_SIZE_BYTES
    pkt.is_ack = True
    pkt.seq = -1
    pkt.ack = ack
    pkt.sacks = sacks[:MAX_SACK_BLOCKS]
    pkt.send_time = now
    pkt.ts_echo = ts_echo
    pkt.is_retx = False
    pkt.delivered = 0
    pkt.delivered_time = 0
    pkt.first_sent_time = 0
    pkt.app_limited = False
    pkt.ecn_ect = False
    pkt.ecn_ce = False
    pkt.ecn_echo = ecn_echo
    pkt.enqueue_time = 0
    return pkt
