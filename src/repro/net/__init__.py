"""Network substrate: packets, links, interfaces, nodes, routing, topologies."""

from repro.net.address import IPv4Address, Subnet
from repro.net.link import Link
from repro.net.interface import Interface
from repro.net.node import Host, Node, Router
from repro.net.packet import ACK_SIZE_BYTES, Packet
from repro.net.topology import Network

__all__ = [
    "IPv4Address",
    "Subnet",
    "Link",
    "Interface",
    "Node",
    "Host",
    "Router",
    "Packet",
    "ACK_SIZE_BYTES",
    "Network",
]
