"""Unidirectional point-to-point links.

A :class:`Link` models serialization (``size * 8 / rate``) followed by
propagation delay.  The owning :class:`~repro.net.interface.Interface`
drives it: the link itself is just the timing + delivery piece, plus an
optional random-loss process used by the anomaly-injection experiments the
paper lists as future work.

Hot-path notes: serialization delays are memoized per packet size (real
traffic has a handful of distinct sizes — MSS-sized data and 60-byte
ACKs), and both timer hops push fire-and-forget heap entries directly
(the inline expansion of :meth:`~repro.sim.engine.Simulator.call_later`),
since link events are never cancelled.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, Optional

import numpy as np

from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.trace import NULL_TRACER
from repro.units import tx_time_ns


class Link:
    """One direction of a cable: fixed rate, fixed propagation delay."""

    __slots__ = (
        "sim",
        "rate_bps",
        "delay_ns",
        "deliver",
        "name",
        "loss_rate",
        "_loss_rng",
        "_tx_cache",
        "bytes_delivered",
        "packets_delivered",
        "packets_lost",
        "tracer",
    )

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        delay_ns: int,
        deliver: Callable[[Packet], None],
        *,
        name: str = "",
        loss_rate: float = 0.0,
        loss_rng: Optional[np.random.Generator] = None,
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if delay_ns < 0:
            raise ValueError(f"propagation delay must be >= 0, got {delay_ns}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        if loss_rate > 0.0 and loss_rng is None:
            raise ValueError("a loss_rng is required when loss_rate > 0")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay_ns = delay_ns
        self.deliver = deliver
        self.name = name
        self.loss_rate = loss_rate
        self._loss_rng = loss_rng
        self._tx_cache: dict = {}
        self.bytes_delivered = 0
        self.packets_delivered = 0
        self.packets_lost = 0
        # Flight-recorder hook; only consulted on the (rare) loss path.
        self.tracer = NULL_TRACER

    def tx_time(self, pkt: Packet) -> int:
        """Serialization delay for ``pkt`` in nanoseconds (memoized by size)."""
        size = pkt.size
        tx = self._tx_cache.get(size)
        if tx is None:
            tx = self._tx_cache[size] = tx_time_ns(size, self.rate_bps)
        return tx

    def transmit(self, pkt: Packet, on_tx_done: Callable[[], None]) -> None:
        """Serialize ``pkt``, then propagate it to the far end.

        ``on_tx_done`` fires when the last bit leaves the local interface
        (i.e. when the interface may start the next packet); delivery at the
        peer happens ``delay_ns`` later.

        Both timer hops push heap entries directly (the expansion of
        ``sim.call_later``): links schedule two events per packet per hop,
        making this the single busiest scheduling site in the simulator.
        """
        size = pkt.size
        tx = self._tx_cache.get(size)
        if tx is None:
            tx = self._tx_cache[size] = tx_time_ns(size, self.rate_bps)
        sim = self.sim
        seq = sim._seq
        sim._seq = seq + 1
        heappush(sim._heap, (sim.now + tx, seq, None, self._tx_done, (pkt, on_tx_done)))

    def _tx_done(self, pkt: Packet, on_tx_done: Callable[[], None]) -> None:
        if self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
            self.packets_lost += 1
            if self.tracer.enabled:
                self.tracer.record(
                    "link_loss", self.sim.now,
                    link=self.name, flow=pkt.flow_id, seq=pkt.seq,
                )
        else:
            sim = self.sim
            seq = sim._seq
            sim._seq = seq + 1
            heappush(sim._heap, (sim.now + self.delay_ns, seq, None, self._deliver, (pkt,)))
        on_tx_done()

    def _deliver(self, pkt: Packet) -> None:
        self.bytes_delivered += pkt.size
        self.packets_delivered += 1
        self.deliver(pkt)

    def telemetry(self) -> dict:
        """Delivery/loss counters for the observability layer (pull-based)."""
        return {
            "name": self.name,
            "rate_bps": self.rate_bps,
            "bytes_delivered": self.bytes_delivered,
            "packets_delivered": self.packets_delivered,
            "packets_lost": self.packets_lost,
        }
