"""Unidirectional point-to-point links.

A :class:`Link` models serialization (``size * 8 / rate``) followed by
propagation delay.  The owning :class:`~repro.net.interface.Interface`
drives it: the link itself is just the timing + delivery piece, plus an
optional random-loss process used by the anomaly-injection experiments the
paper lists as future work.

Links are *mutable at run time* through the ``set_*`` hooks (the
substrate of :mod:`repro.faults`): the rate, propagation delay, and loss
rate may change mid-run, and the link may be administratively downed.
Down semantics are explicit and deterministic: a packet is dropped at
whichever timer hop (serialization completion or propagation arrival)
fires while the link is down, and counted in ``packets_dropped_down``.
A flap shorter than the propagation delay therefore does *not* claw back
packets that already left the wire before the flap ended — the same
behaviour as pulling and re-seating a cable.

Hot-path notes: serialization delays are memoized per packet size (real
traffic has a handful of distinct sizes — MSS-sized data and 60-byte
ACKs), and both timer hops push fire-and-forget heap entries directly
(the inline expansion of :meth:`~repro.sim.engine.Simulator.call_later`),
since link events are never cancelled.  The fault hooks cost the fast
path one slot load (``up``) per timer hop and a single integer bump
(``packets_tx``) per packet — the in-flight count is derived, not
maintained — and everything else happens inside the setters.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, Optional

import numpy as np

from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.trace import NULL_TRACER
from repro.units import tx_time_ns


class Link:
    """One direction of a cable: fixed rate, fixed propagation delay."""

    __slots__ = (
        "sim",
        "rate_bps",
        "delay_ns",
        "deliver",
        "name",
        "up",
        "loss_rate",
        "_loss_rng",
        "_tx_cache",
        "bytes_delivered",
        "packets_delivered",
        "packets_lost",
        "packets_tx",
        "packets_dropped_down",
        "tracer",
    )

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        delay_ns: int,
        deliver: Callable[[Packet], None],
        *,
        name: str = "",
        loss_rate: float = 0.0,
        loss_rng: Optional[np.random.Generator] = None,
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if delay_ns < 0:
            raise ValueError(f"propagation delay must be >= 0, got {delay_ns}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        if loss_rate > 0.0 and loss_rng is None:
            raise ValueError("a loss_rng is required when loss_rate > 0")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay_ns = delay_ns
        self.deliver = deliver
        self.name = name
        self.up = True
        self.loss_rate = loss_rate
        self._loss_rng = loss_rng
        self._tx_cache: dict = {}
        self.bytes_delivered = 0
        self.packets_delivered = 0
        self.packets_lost = 0
        # Conservation counters: every packet handed to transmit() ends up
        # delivered, randomly lost, dropped-while-down, or still in flight.
        # in-flight is derived (tx - terminal outcomes) rather than
        # maintained, so the fast path pays one increment, not three.
        self.packets_tx = 0
        self.packets_dropped_down = 0
        # Flight-recorder hook; only consulted on the (rare) loss path.
        self.tracer = NULL_TRACER

    def tx_time(self, pkt: Packet) -> int:
        """Serialization delay for ``pkt`` in nanoseconds (memoized by size)."""
        size = pkt.size
        tx = self._tx_cache.get(size)
        if tx is None:
            tx = self._tx_cache[size] = tx_time_ns(size, self.rate_bps)
        return tx

    # -- run-time mutation hooks (the repro.faults substrate) ---------------------

    def set_down(self) -> None:
        """Administratively down the link.  Idempotent.

        Packets currently being serialized or propagating are *not*
        removed from the event heap; each is dropped deterministically at
        its next timer hop while the link remains down (see module
        docstring for the exact drain semantics).
        """
        self.up = False

    def set_up(self) -> None:
        """Bring the link back.  Idempotent; forwarding resumes immediately."""
        self.up = True

    def set_rate(self, rate_bps: float) -> None:
        """Change the serialization rate (e.g. a capacity-degradation step).

        Invalidates the memoized per-size serialization delays — without
        this, packets would keep serializing at the old rate.
        """
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        self.rate_bps = rate_bps
        self._tx_cache.clear()

    def set_delay(self, delay_ns: int) -> None:
        """Change the propagation delay (e.g. a reroute / delay spike).

        Applies to packets entering propagation after the change; packets
        already on the wire keep their original arrival time.
        """
        if delay_ns < 0:
            raise ValueError(f"propagation delay must be >= 0, got {delay_ns}")
        self.delay_ns = int(delay_ns)

    def set_loss_rate(
        self, loss_rate: float, rng: Optional[np.random.Generator] = None
    ) -> None:
        """Change the random-loss probability, validating the [0, 1) bound.

        The single sanctioned way to vary loss mid-run: direct attribute
        assignment would bypass both the upper-bound check and the
        RNG-presence check that :meth:`__init__` enforces.
        """
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        if rng is not None:
            self._loss_rng = rng
        if loss_rate > 0.0 and self._loss_rng is None:
            raise ValueError("a loss rng is required when loss_rate > 0; pass rng=")
        self.loss_rate = loss_rate

    # -- datapath -----------------------------------------------------------------

    def transmit(self, pkt: Packet, on_tx_done: Callable[[], None]) -> None:
        """Serialize ``pkt``, then propagate it to the far end.

        ``on_tx_done`` fires when the last bit leaves the local interface
        (i.e. when the interface may start the next packet); delivery at the
        peer happens ``delay_ns`` later.

        Both timer hops push heap entries directly (the expansion of
        ``sim.call_later``): links schedule two events per packet per hop,
        making this the single busiest scheduling site in the simulator.
        """
        size = pkt.size
        tx = self._tx_cache.get(size)
        if tx is None:
            tx = self._tx_cache[size] = tx_time_ns(size, self.rate_bps)
        self.packets_tx += 1
        sim = self.sim
        seq = sim._seq
        sim._seq = seq + 1
        heappush(sim._heap, (sim.now + tx, seq, None, self._tx_done, (pkt, on_tx_done)))

    def _tx_done(self, pkt: Packet, on_tx_done: Callable[[], None]) -> None:
        if not self.up:
            self.packets_dropped_down += 1
            if self.tracer.enabled:
                self.tracer.record(
                    "link_down_drop", self.sim.now,
                    link=self.name, point="serialize", flow=pkt.flow_id, seq=pkt.seq,
                )
        elif self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
            self.packets_lost += 1
            if self.tracer.enabled:
                self.tracer.record(
                    "link_loss", self.sim.now,
                    link=self.name, flow=pkt.flow_id, seq=pkt.seq,
                )
        else:
            sim = self.sim
            seq = sim._seq
            sim._seq = seq + 1
            heappush(sim._heap, (sim.now + self.delay_ns, seq, None, self._deliver, (pkt,)))
        on_tx_done()

    def _deliver(self, pkt: Packet) -> None:
        if not self.up:
            self.packets_dropped_down += 1
            if self.tracer.enabled:
                self.tracer.record(
                    "link_down_drop", self.sim.now,
                    link=self.name, point="propagate", flow=pkt.flow_id, seq=pkt.seq,
                )
            return
        self.bytes_delivered += pkt.size
        self.packets_delivered += 1
        self.deliver(pkt)

    @property
    def packets_in_flight(self) -> int:
        """Packets handed to :meth:`transmit` that have not yet reached a
        terminal outcome (delivered, randomly lost, or dropped-while-down).
        ``packets_tx == delivered + lost + dropped_down + in_flight`` holds
        by construction; the chaos property tests assert the stronger
        quiescence form (``in_flight == 0`` once the event heap drains)."""
        return (
            self.packets_tx
            - self.packets_delivered
            - self.packets_lost
            - self.packets_dropped_down
        )

    def telemetry(self) -> dict:
        """Delivery/loss counters for the observability layer (pull-based)."""
        return {
            "name": self.name,
            "rate_bps": self.rate_bps,
            "up": self.up,
            "bytes_delivered": self.bytes_delivered,
            "packets_delivered": self.packets_delivered,
            "packets_lost": self.packets_lost,
            "packets_tx": self.packets_tx,
            "packets_in_flight": self.packets_in_flight,
            "packets_dropped_down": self.packets_dropped_down,
        }
