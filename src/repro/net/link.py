"""Unidirectional point-to-point links.

A :class:`Link` models serialization (``size * 8 / rate``) followed by
propagation delay.  The owning :class:`~repro.net.interface.Interface`
drives it: the link itself is just the timing + delivery piece, plus an
optional random-loss process used by the anomaly-injection experiments the
paper lists as future work.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.units import tx_time_ns


class Link:
    """One direction of a cable: fixed rate, fixed propagation delay."""

    __slots__ = (
        "sim",
        "rate_bps",
        "delay_ns",
        "deliver",
        "name",
        "loss_rate",
        "_loss_rng",
        "bytes_delivered",
        "packets_delivered",
        "packets_lost",
    )

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        delay_ns: int,
        deliver: Callable[[Packet], None],
        *,
        name: str = "",
        loss_rate: float = 0.0,
        loss_rng: Optional[np.random.Generator] = None,
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if delay_ns < 0:
            raise ValueError(f"propagation delay must be >= 0, got {delay_ns}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        if loss_rate > 0.0 and loss_rng is None:
            raise ValueError("a loss_rng is required when loss_rate > 0")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay_ns = delay_ns
        self.deliver = deliver
        self.name = name
        self.loss_rate = loss_rate
        self._loss_rng = loss_rng
        self.bytes_delivered = 0
        self.packets_delivered = 0
        self.packets_lost = 0

    def tx_time(self, pkt: Packet) -> int:
        """Serialization delay for ``pkt`` in nanoseconds."""
        return tx_time_ns(pkt.size, self.rate_bps)

    def transmit(self, pkt: Packet, on_tx_done: Callable[[], None]) -> None:
        """Serialize ``pkt``, then propagate it to the far end.

        ``on_tx_done`` fires when the last bit leaves the local interface
        (i.e. when the interface may start the next packet); delivery at the
        peer happens ``delay_ns`` later.
        """
        tx = self.tx_time(pkt)
        self.sim.schedule(tx, self._tx_done, pkt, on_tx_done)

    def _tx_done(self, pkt: Packet, on_tx_done: Callable[[], None]) -> None:
        if self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
            self.packets_lost += 1
        else:
            self.sim.schedule(self.delay_ns, self._deliver, pkt)
        on_tx_done()

    def _deliver(self, pkt: Packet) -> None:
        self.bytes_delivered += pkt.size
        self.packets_delivered += 1
        self.deliver(pkt)
