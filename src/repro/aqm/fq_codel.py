"""FQ_CoDel — flow queueing with CoDel (RFC 8290).

Flows are hashed (with a seeded perturbation) into 1024 buckets, each with
its own FIFO and CoDel state.  A deficit-round-robin scheduler with a
one-MTU quantum serves the buckets; freshly active buckets sit on the
*new* list and are served before *old* ones (the "sparse flow" boost).
When the shared byte limit is exceeded, packets are dropped from the head
of the currently fattest bucket, which is what keeps any single flow from
monopolizing the buffer — the property behind the paper's near-perfect
FQ_CODEL fairness results.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

import numpy as np

from repro.aqm.base import QueueDiscipline
from repro.aqm.codel import DEFAULT_INTERVAL_NS, DEFAULT_TARGET_NS, CoDelController
from repro.net.packet import Packet

DEFAULT_FLOW_BUCKETS = 1024


class _FlowQueue:
    """One hash bucket: FIFO + CoDel state + DRR deficit."""

    __slots__ = ("packets", "bytes", "deficit", "codel", "active", "pop", "backlog")

    def __init__(self, codel: CoDelController):
        self.packets: Deque[Packet] = deque()
        self.bytes = 0
        self.deficit = 0
        self.codel = codel
        self.active = False  # on the new or old list
        # Bound at bucket creation by the owning FqCoDelQueue so the DRR
        # loop hands CoDel ready-made callables instead of fresh lambdas.
        self.pop = None
        self.backlog = None


class FqCoDelQueue(QueueDiscipline):
    """DRR over per-flow sub-queues, each policed by CoDel."""

    __slots__ = (
        "flows",
        "quantum",
        "target_ns",
        "interval_ns",
        "mtu_bytes",
        "_perturbation",
        "_buckets",
        "_new_list",
        "_old_list",
    )

    def __init__(
        self,
        limit_bytes: int,
        rng: Optional[np.random.Generator] = None,
        *,
        flows: int = DEFAULT_FLOW_BUCKETS,
        quantum_bytes: int = 1514,
        target_ns: int = DEFAULT_TARGET_NS,
        interval_ns: int = DEFAULT_INTERVAL_NS,
        mtu_bytes: int = 1500,
        ecn_mode: bool = False,
    ):
        super().__init__(limit_bytes, ecn_mode=ecn_mode)
        if flows <= 0:
            raise ValueError(f"flow bucket count must be positive, got {flows}")
        if quantum_bytes <= 0:
            raise ValueError(f"quantum must be positive, got {quantum_bytes}")
        self.flows = flows
        self.quantum = quantum_bytes
        self.target_ns = target_ns
        self.interval_ns = interval_ns
        self.mtu_bytes = mtu_bytes
        # Hash perturbation, as in the Linux implementation, so bucket
        # collisions differ between runs with different seeds.
        self._perturbation = int(rng.integers(0, 2**31)) if rng is not None else 0
        self._buckets: Dict[int, _FlowQueue] = {}
        self._new_list: Deque[int] = deque()
        self._old_list: Deque[int] = deque()

    # -- bucket helpers --------------------------------------------------------

    def _bucket_id(self, pkt: Packet) -> int:
        return (pkt.flow_id * 2654435761 + self._perturbation) % self.flows

    def _bucket(self, bid: int) -> _FlowQueue:
        fq = self._buckets.get(bid)
        if fq is None:
            fq = _FlowQueue(
                CoDelController(
                    target_ns=self.target_ns,
                    interval_ns=self.interval_ns,
                    mtu_bytes=self.mtu_bytes,
                )
            )
            packets = fq.packets

            def pop(packets=packets, fq=fq, self=self) -> Optional[Packet]:
                if not packets:
                    return None
                pkt = packets.popleft()
                size = pkt.size
                fq.bytes -= size
                self.bytes_queued -= size
                self.packets_queued -= 1
                return pkt

            fq.pop = pop
            fq.backlog = lambda fq=fq: fq.bytes
            self._buckets[bid] = fq
        return fq

    def _fattest_bucket(self) -> Optional[int]:
        best_id, best_bytes = None, -1
        for bid, fq in self._buckets.items():
            if fq.bytes > best_bytes:
                best_id, best_bytes = bid, fq.bytes
        return best_id

    def _drop_from_fattest(self) -> None:
        bid = self._fattest_bucket()
        if bid is None:
            return
        fq = self._buckets[bid]
        victim = fq.packets.popleft()
        fq.bytes -= victim.size
        self.bytes_queued -= victim.size
        self.packets_queued -= 1
        self.stats.dropped_enqueue += 1
        self.stats.bytes_dropped += victim.size
        if self.tracer.enabled:
            self.tracer.record(
                "queue_drop", victim.enqueue_time, point="evict",
                flow=victim.flow_id, seq=victim.seq, bucket=bid,
            )

    # -- discipline API -----------------------------------------------------------

    def enqueue(self, pkt: Packet, now: int) -> bool:
        """Hash into a bucket; evict from the fattest flow when over limit."""
        bid = (pkt.flow_id * 2654435761 + self._perturbation) % self.flows
        fq = self._buckets.get(bid)
        if fq is None:
            fq = self._bucket(bid)
        size = pkt.size
        stats = self.stats
        pkt.enqueue_time = now
        self.bytes_queued += size
        self.packets_queued += 1
        stats.enqueued += 1
        stats.bytes_enqueued += size
        fq.packets.append(pkt)
        fq.bytes += size
        if not fq.active:
            fq.active = True
            fq.deficit = self.quantum
            self._new_list.append(bid)
        # Over the shared limit: evict from the head of the fattest flow.
        # (The just-enqueued packet may itself be the victim if its flow is
        # the fattest — matching fq_codel_drop() in Linux.)
        while self.bytes_queued > self.limit_bytes:
            self._drop_from_fattest()
        return True

    def dequeue(self, now: int) -> Optional[Packet]:
        """DRR over new-then-old buckets, each policed by its CoDel."""
        while True:
            if self._new_list:
                from_new = True
                bid = self._new_list[0]
            elif self._old_list:
                from_new = False
                bid = self._old_list[0]
            else:
                return None
            fq = self._buckets[bid]

            if fq.deficit <= 0:
                fq.deficit += self.quantum
                # Exhausted quantum: rotate to the end of the old list.
                if from_new:
                    self._new_list.popleft()
                else:
                    self._old_list.popleft()
                self._old_list.append(bid)
                continue

            pkt = fq.codel.dequeue(
                now,
                fq.pop,
                self._on_codel_drop,
                fq.backlog,
                self._try_mark,
            )
            if pkt is None:
                # Bucket drained.  A new-list bucket gets one pass on the old
                # list (RFC 8290 §4.2); an old-list bucket goes inactive.
                if from_new:
                    self._new_list.popleft()
                    self._old_list.append(bid)
                else:
                    self._old_list.popleft()
                    fq.active = False
                continue

            fq.deficit -= pkt.size
            self.stats.dequeued += 1
            return pkt

    def _pop_from(self, fq: _FlowQueue) -> Optional[Packet]:
        if not fq.packets:
            return None
        pkt = fq.packets.popleft()
        fq.bytes -= pkt.size
        self.bytes_queued -= pkt.size
        self.packets_queued -= 1
        return pkt

    def _on_codel_drop(self, pkt: Packet) -> None:
        self.stats.dropped_dequeue += 1
        self.stats.bytes_dropped += pkt.size
        if self.tracer.enabled:
            # Stamped with the sojourn start (see CoDelQueue._on_codel_drop).
            self.tracer.record(
                "queue_drop", pkt.enqueue_time, point="codel",
                flow=pkt.flow_id, seq=pkt.seq,
            )

    @property
    def active_buckets(self) -> int:
        """Number of buckets currently on the new or old list."""
        return len(self._new_list) + len(self._old_list)
