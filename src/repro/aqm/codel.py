"""CoDel — Controlled Delay AQM (RFC 8289).

CoDel makes its drop decisions at *dequeue* time based on packet sojourn:
once the minimum sojourn over an ``interval`` (100 ms) exceeds ``target``
(5 ms), it enters the dropping state and drops at a rate that increases as
the square root of the drop count (the control law), until sojourn falls
back under target.

:class:`CoDelController` holds the state machine over an abstract packet
source so the same logic drives both the standalone :class:`CoDelQueue`
and each sub-queue of :class:`repro.aqm.fq_codel.FqCoDelQueue`.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Optional

from repro.aqm.base import QueueDiscipline
from repro.net.packet import Packet
from repro.units import milliseconds

DEFAULT_TARGET_NS = milliseconds(5)
DEFAULT_INTERVAL_NS = milliseconds(100)


class CoDelController:
    """RFC 8289 state machine, parameterized over a packet source.

    ``pop`` returns the next queued packet or None; ``on_drop`` is called
    for every packet CoDel discards (the owner updates its accounting);
    ``backlog_bytes`` lets CoDel skip dropping when fewer than one MTU is
    queued.
    """

    __slots__ = (
        "target_ns",
        "interval_ns",
        "mtu_bytes",
        "first_above_time",
        "drop_next",
        "count",
        "lastcount",
        "dropping",
    )

    def __init__(self, *, target_ns: int = DEFAULT_TARGET_NS, interval_ns: int = DEFAULT_INTERVAL_NS, mtu_bytes: int = 1500):
        if target_ns <= 0 or interval_ns <= 0:
            raise ValueError("CoDel target and interval must be positive")
        self.target_ns = target_ns
        self.interval_ns = interval_ns
        self.mtu_bytes = mtu_bytes
        self.first_above_time = 0
        self.drop_next = 0
        self.count = 0
        self.lastcount = 0
        self.dropping = False

    def control_law(self, t: int, count: int) -> int:
        """Next drop time: interval/sqrt(count) after ``t``."""
        return t + int(self.interval_ns / math.sqrt(max(1, count)))

    def _should_drop(self, pkt: Optional[Packet], now: int, backlog_bytes: int) -> bool:
        if pkt is None:
            self.first_above_time = 0
            return False
        sojourn = now - pkt.enqueue_time
        if sojourn < self.target_ns or backlog_bytes <= self.mtu_bytes:
            self.first_above_time = 0
            return False
        if self.first_above_time == 0:
            self.first_above_time = now + self.interval_ns
            return False
        return now >= self.first_above_time

    def dequeue(
        self,
        now: int,
        pop: Callable[[], Optional[Packet]],
        on_drop: Callable[[Packet], None],
        backlog_bytes: Callable[[], int],
        try_mark: Callable[[Packet], bool],
    ) -> Optional[Packet]:
        """Pop the next deliverable packet, applying CoDel's drop law."""
        pkt = pop()
        ok_to_drop = self._should_drop(pkt, now, backlog_bytes())
        if self.dropping:
            if not ok_to_drop:
                self.dropping = False
            else:
                while self.dropping and now >= self.drop_next:
                    self.count += 1
                    if try_mark(pkt):
                        self.drop_next = self.control_law(self.drop_next, self.count)
                        break
                    on_drop(pkt)
                    pkt = pop()
                    if not self._should_drop(pkt, now, backlog_bytes()):
                        self.dropping = False
                    else:
                        self.drop_next = self.control_law(self.drop_next, self.count)
        elif ok_to_drop:
            delta = self.count - self.lastcount
            self.count = 1
            # Resume at a higher rate if we were dropping recently.
            if delta > 1 and now - self.drop_next < 16 * self.interval_ns:
                self.count = delta
            if not try_mark(pkt):
                on_drop(pkt)
                pkt = pop()
            self.dropping = True
            self.lastcount = self.count
            self.drop_next = self.control_law(now, self.count)
        return pkt


class CoDelQueue(QueueDiscipline):
    """A single byte-limited queue managed by CoDel."""

    __slots__ = ("_queue", "controller")

    def __init__(
        self,
        limit_bytes: int,
        *,
        target_ns: int = DEFAULT_TARGET_NS,
        interval_ns: int = DEFAULT_INTERVAL_NS,
        mtu_bytes: int = 1500,
        ecn_mode: bool = False,
    ):
        super().__init__(limit_bytes, ecn_mode=ecn_mode)
        self._queue: deque[Packet] = deque()
        self.controller = CoDelController(
            target_ns=target_ns, interval_ns=interval_ns, mtu_bytes=mtu_bytes
        )

    def enqueue(self, pkt: Packet, now: int) -> bool:
        """Tail-drop at the byte limit; CoDel itself drops at dequeue."""
        size = pkt.size
        stats = self.stats
        if self.bytes_queued + size > self.limit_bytes:
            stats.dropped_enqueue += 1
            stats.bytes_dropped += size
            if self.tracer.enabled:
                self.tracer.record(
                    "queue_drop", now, point="tail", flow=pkt.flow_id, seq=pkt.seq
                )
            return False
        pkt.enqueue_time = now
        self.bytes_queued += size
        self.packets_queued += 1
        stats.enqueued += 1
        stats.bytes_enqueued += size
        self._queue.append(pkt)
        return True

    def _pop(self) -> Optional[Packet]:
        if not self._queue:
            return None
        pkt = self._queue.popleft()
        self.bytes_queued -= pkt.size
        self.packets_queued -= 1
        return pkt

    def _backlog(self) -> int:
        return self.bytes_queued

    def _on_codel_drop(self, pkt: Packet) -> None:
        # _pop already removed the packet from backlog accounting.
        self.stats.dropped_dequeue += 1
        self.stats.bytes_dropped += pkt.size
        if self.tracer.enabled:
            # No clock in scope here: stamp with the victim's enqueue time
            # (the sojourn start), which is what CoDel judged it by.
            self.tracer.record(
                "queue_drop", pkt.enqueue_time, point="codel",
                flow=pkt.flow_id, seq=pkt.seq,
            )

    def dequeue(self, now: int) -> Optional[Packet]:
        """Pop through the CoDel sojourn-based drop law."""
        pkt = self.controller.dequeue(
            now,
            self._pop,
            self._on_codel_drop,
            self._backlog,
            self._try_mark,
        )
        if pkt is not None:
            self.stats.dequeued += 1
        return pkt
