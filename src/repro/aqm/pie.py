"""PIE — Proportional Integral controller Enhanced (RFC 8033).

An extension beyond the paper's three AQMs: the paper closes by calling
for queue-management research that works "in a wide range of BW
scenarios, especially considering future Internet"; PIE is the IETF's
other standardized answer to bufferbloat and slots straight into the
same experiment grid (``aqm="pie"``).

The controller updates a drop probability every ``t_update`` (15 ms):

    p += alpha * (qdelay - target) + beta * (qdelay - qdelay_old)

with the RFC's auto-scaling of (alpha, beta) by the magnitude of ``p``,
departure-rate-based delay estimation, and the burst-allowance grace
period after idle.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.aqm.base import QueueDiscipline
from repro.net.packet import Packet
from repro.units import milliseconds

DEFAULT_TARGET_NS = milliseconds(15)
DEFAULT_T_UPDATE_NS = milliseconds(15)
DEFAULT_BURST_ALLOWANCE_NS = milliseconds(150)
ALPHA = 0.125  # per RFC 8033 §4.2 (Hz)
BETA = 1.25
MAX_PROB = 1.0


class PieQueue(QueueDiscipline):
    """A byte-limited queue managed by the PIE controller."""

    __slots__ = (
        "rng",
        "target_ns",
        "t_update_ns",
        "burst_allowance_ns",
        "_queue",
        "drop_prob",
        "qdelay_ns",
        "qdelay_old_ns",
        "_burst_left_ns",
        "_last_update_ns",
        "_depart_rate",
        "_measure_start_ns",
        "_measure_bytes",
    )

    def __init__(
        self,
        limit_bytes: int,
        rng: np.random.Generator,
        *,
        target_ns: int = DEFAULT_TARGET_NS,
        t_update_ns: int = DEFAULT_T_UPDATE_NS,
        burst_allowance_ns: int = DEFAULT_BURST_ALLOWANCE_NS,
        ecn_mode: bool = False,
    ):
        super().__init__(limit_bytes, ecn_mode=ecn_mode)
        if rng is None:
            raise ValueError("PIE requires a random generator")
        if target_ns <= 0 or t_update_ns <= 0:
            raise ValueError("target and t_update must be positive")
        self.rng = rng
        self.target_ns = target_ns
        self.t_update_ns = t_update_ns
        self.burst_allowance_ns = burst_allowance_ns

        self._queue: deque[Packet] = deque()
        self.drop_prob = 0.0
        self.qdelay_ns = 0
        self.qdelay_old_ns = 0
        self._burst_left_ns = burst_allowance_ns
        self._last_update_ns: Optional[int] = None
        # Departure-rate estimation (bytes/ns), seeded on first dequeues.
        self._depart_rate: Optional[float] = None
        self._measure_start_ns = 0
        self._measure_bytes = 0

    # -- controller ------------------------------------------------------------------

    def _maybe_update(self, now: int) -> None:
        if self._last_update_ns is None:
            self._last_update_ns = now
            return
        while now - self._last_update_ns >= self.t_update_ns:
            self._last_update_ns += self.t_update_ns
            self._update_probability()

    def _current_qdelay_ns(self) -> int:
        if self._depart_rate and self._depart_rate > 0:
            return int(self.bytes_queued / self._depart_rate)
        # No departures measured yet: fall back to the oldest packet's age.
        return 0

    def _update_probability(self) -> None:
        qdelay = self._current_qdelay_ns()
        # RFC 8033 auto-tuning: scale gains down when p is small.
        if self.drop_prob < 0.000001:
            scale = 1 / 2048
        elif self.drop_prob < 0.00001:
            scale = 1 / 512
        elif self.drop_prob < 0.0001:
            scale = 1 / 128
        elif self.drop_prob < 0.001:
            scale = 1 / 32
        elif self.drop_prob < 0.01:
            scale = 1 / 8
        elif self.drop_prob < 0.1:
            scale = 1 / 2
        else:
            scale = 1.0
        delta = scale * (
            ALPHA * (qdelay - self.target_ns) / 1e9
            + BETA * (qdelay - self.qdelay_old_ns) / 1e9
        )
        self.drop_prob = min(MAX_PROB, max(0.0, self.drop_prob + delta))
        # Exponential decay when the queue is idle (RFC §4.2 last rule).
        if qdelay == 0 and self.qdelay_old_ns == 0:
            self.drop_prob *= 0.98
        self.qdelay_old_ns = qdelay
        if self._burst_left_ns > 0:
            self._burst_left_ns = max(0, self._burst_left_ns - self.t_update_ns)

    def _should_drop(self, pkt: Packet) -> bool:
        if self._burst_left_ns > 0:
            return False
        # Safeguards from RFC 8033 §4.1: never drop when nearly empty.
        if self.qdelay_old_ns < self.target_ns // 2 and self.drop_prob < 0.2:
            return False
        if self.bytes_queued <= 2 * pkt.size:
            return False
        return self.rng.random() < self.drop_prob

    # -- discipline API -----------------------------------------------------------------

    def enqueue(self, pkt: Packet, now: int) -> bool:
        """Drop with the controller probability (after the burst allowance)."""
        # Inline _maybe_update's no-op fast path (controller not yet due).
        last = self._last_update_ns
        if last is None:
            self._last_update_ns = now
        elif now - last >= self.t_update_ns:
            self._maybe_update(now)
        size = pkt.size
        stats = self.stats
        if self.bytes_queued + size > self.limit_bytes:
            stats.dropped_enqueue += 1
            stats.bytes_dropped += size
            if self.tracer.enabled:
                self.tracer.record(
                    "queue_drop", now, point="tail", flow=pkt.flow_id, seq=pkt.seq
                )
            return False
        if self._should_drop(pkt):
            if not self._try_mark(pkt):
                stats.dropped_enqueue += 1
                stats.bytes_dropped += size
                if self.tracer.enabled:
                    self.tracer.record(
                        "queue_drop", now, point="early", flow=pkt.flow_id, seq=pkt.seq
                    )
                return False
        pkt.enqueue_time = now
        self.bytes_queued += size
        self.packets_queued += 1
        stats.enqueued += 1
        stats.bytes_enqueued += size
        self._queue.append(pkt)
        return True

    def dequeue(self, now: int) -> Optional[Packet]:
        """Pop FIFO-order; feeds the departure-rate estimator."""
        last = self._last_update_ns
        if last is None:
            self._last_update_ns = now
        elif now - last >= self.t_update_ns:
            self._maybe_update(now)
        if not self._queue:
            # Queue drained: re-arm the burst allowance.
            if self.drop_prob == 0.0:
                self._burst_left_ns = self.burst_allowance_ns
            return None
        pkt = self._queue.popleft()
        self.bytes_queued -= pkt.size
        self.packets_queued -= 1
        self.stats.dequeued += 1
        # Departure-rate measurement over ~100 ms windows.
        if self._measure_start_ns == 0:
            self._measure_start_ns = now
        self._measure_bytes += pkt.size
        elapsed = now - self._measure_start_ns
        if elapsed >= milliseconds(100):
            self._depart_rate = self._measure_bytes / elapsed
            self._measure_start_ns = now
            self._measure_bytes = 0
        return pkt
