"""Active Queue Management disciplines under study: FIFO, RED, FQ_CoDel.

Plain CoDel is included as the building block of FQ_CoDel.  All disciplines
share the :class:`~repro.aqm.base.QueueDiscipline` interface consumed by
:class:`repro.net.interface.Interface`.
"""

from repro.aqm.base import QueueDiscipline, QueueStats
from repro.aqm.codel import CoDelQueue
from repro.aqm.fifo import FifoQueue
from repro.aqm.fq_codel import FqCoDelQueue
from repro.aqm.pie import PieQueue
from repro.aqm.red import RedQueue
from repro.aqm.registry import AQM_NAMES, make_aqm

__all__ = [
    "QueueDiscipline",
    "QueueStats",
    "FifoQueue",
    "RedQueue",
    "CoDelQueue",
    "FqCoDelQueue",
    "PieQueue",
    "make_aqm",
    "AQM_NAMES",
]
