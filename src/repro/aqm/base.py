"""Queue-discipline interface.

An interface's egress buffer is a :class:`QueueDiscipline`.  The contract:

- ``enqueue(pkt, now)`` returns True if the packet was accepted.  A False
  return means the discipline dropped it *at enqueue time* (tail drop,
  RED's probabilistic drop, FQ_CoDel's fat-flow eviction) and already
  accounted for it in :attr:`stats`.
- ``dequeue(now)`` returns the next packet to serialize, or ``None`` when
  the queue is empty.  Disciplines may drop packets internally here too
  (CoDel drops at dequeue time based on sojourn).
- ``ecn_mode`` — when True the discipline marks ECT packets (sets
  ``pkt.ecn_ce``) instead of dropping them where the algorithm allows.

Buffer limits are expressed in **bytes**, matching how the paper sizes
queues (k x BDP bytes via `tc`).
"""

from __future__ import annotations

from typing import Optional

from repro.net.packet import Packet
from repro.sim.trace import NULL_TRACER


class QueueStats:
    """Counters every discipline maintains.

    A plain slotted class (not a dataclass): these counters are bumped on
    every enqueue/dequeue of every hop, and slot access keeps that cheap.
    """

    __slots__ = (
        "enqueued",
        "dequeued",
        "dropped_enqueue",
        "dropped_dequeue",
        "ecn_marked",
        "bytes_enqueued",
        "bytes_dropped",
        "flushed",
    )

    def __init__(self) -> None:
        self.enqueued = 0
        self.dequeued = 0
        self.dropped_enqueue = 0
        self.dropped_dequeue = 0
        self.ecn_marked = 0
        self.bytes_enqueued = 0
        self.bytes_dropped = 0
        # Packets discarded by an administrative flush() (a fault-injection
        # action, not an AQM decision).  Also counted in dropped_dequeue so
        # dropped_total and the conservation identity stay truthful.
        self.flushed = 0

    @property
    def dropped_total(self) -> int:
        return self.dropped_enqueue + self.dropped_dequeue

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{n}={getattr(self, n)}" for n in self.__slots__)
        return f"QueueStats({fields})"


class QueueDiscipline:
    """Abstract base.  Subclasses implement enqueue/dequeue."""

    __slots__ = ("limit_bytes", "ecn_mode", "bytes_queued", "packets_queued", "stats", "tracer")

    def __init__(self, limit_bytes: int, *, ecn_mode: bool = False):
        if limit_bytes <= 0:
            raise ValueError(f"queue limit must be positive, got {limit_bytes}")
        self.limit_bytes = int(limit_bytes)
        self.ecn_mode = ecn_mode
        self.bytes_queued = 0
        self.packets_queued = 0
        self.stats = QueueStats()
        # Flight-recorder hook; consulted only on drop paths, so disabled
        # tracing costs nothing on the accept/dequeue fast path.
        self.tracer = NULL_TRACER

    # -- required API -----------------------------------------------------------

    def enqueue(self, pkt: Packet, now: int) -> bool:
        """Accept or drop an arriving packet; True = accepted."""
        raise NotImplementedError

    def dequeue(self, now: int) -> Optional[Packet]:
        """Pop the next packet to serialize, or None when empty."""
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------------

    def _accept(self, pkt: Packet, now: int) -> None:
        pkt.enqueue_time = now
        self.bytes_queued += pkt.size
        self.packets_queued += 1
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += pkt.size

    def _account_dequeue(self, pkt: Packet) -> None:
        self.bytes_queued -= pkt.size
        self.packets_queued -= 1
        self.stats.dequeued += 1

    def _drop_enqueue(self, pkt: Packet, now: int = -1) -> None:
        self.stats.dropped_enqueue += 1
        self.stats.bytes_dropped += pkt.size
        if self.tracer.enabled:
            self.tracer.record(
                "queue_drop", now, point="enqueue", flow=pkt.flow_id, seq=pkt.seq
            )

    def _drop_dequeue(self, pkt: Packet, now: int = -1) -> None:
        # Packet was queued; remove its accounting and record the drop.
        self.bytes_queued -= pkt.size
        self.packets_queued -= 1
        self.stats.dropped_dequeue += 1
        self.stats.bytes_dropped += pkt.size
        if self.tracer.enabled:
            # now defaults to the packet's enqueue time when the drop site
            # has no clock in scope (good enough for post-mortems).
            self.tracer.record(
                "queue_drop",
                now if now >= 0 else pkt.enqueue_time,
                point="dequeue",
                flow=pkt.flow_id,
                seq=pkt.seq,
            )

    def _try_mark(self, pkt: Packet) -> bool:
        """ECN-mark instead of dropping, when enabled and the packet is ECT."""
        if self.ecn_mode and pkt.ecn_ect:
            pkt.ecn_ce = True
            self.stats.ecn_marked += 1
            return True
        return False

    def flush(self, now: int) -> int:
        """Discard every queued packet (the router queue-flush fault).

        Drains through :meth:`dequeue` so each discipline's internal state
        (CoDel intervals, FQ bucket backlogs, RED averages) is unwound by
        its own logic, then re-books each popped packet from "dequeued"
        to "dropped at dequeue" — the conservation identity
        ``enqueued == dequeued + dropped_dequeue + queued`` is preserved,
        with ``stats.flushed`` recording how many drops were administrative
        rather than algorithmic.  Returns the number of packets flushed.
        """
        stats = self.stats
        flushed = 0
        while True:
            pkt = self.dequeue(now)
            if pkt is None:
                break
            stats.dequeued -= 1
            stats.dropped_dequeue += 1
            stats.bytes_dropped += pkt.size
            stats.flushed += 1
            flushed += 1
            if self.tracer.enabled:
                self.tracer.record(
                    "queue_drop", now, point="flush", flow=pkt.flow_id, seq=pkt.seq
                )
        return flushed

    @property
    def is_empty(self) -> bool:
        return self.packets_queued == 0

    def __len__(self) -> int:
        return self.packets_queued
