"""Random Early Detection (Floyd & Jacobson 1993), with `tc red`-style knobs.

The average queue length is an EWMA of the instantaneous byte backlog,
updated at every enqueue.  Between ``min_th`` and ``max_th`` the drop
probability ramps from 0 to ``max_p``; the inter-drop ``count`` spreads
drops out (uniformization); above ``max_th`` the *gentle* variant ramps
from ``max_p`` to 1 between ``max_th`` and ``2*max_th`` instead of
force-dropping immediately.

When the queue goes idle, the average decays as if ``avpkt``-sized packets
had been draining at line rate — the standard idle-time correction, which
needs the link ``bandwidth_bps`` hint (`tc red` requires the same).

Default thresholds mirror common `tc red` guidance and are intentionally
*not* retuned per bandwidth tier: the paper attributes RED's poor
high-bandwidth behaviour to exactly these untouched internal parameters
(see §5.3), and the ablation bench re-runs the sweep with scaled ones.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.aqm.base import QueueDiscipline
from repro.net.packet import Packet
from repro.units import NS_PER_SEC


class RedQueue(QueueDiscipline):
    """Gentle RED with EWMA average queue and idle decay."""

    __slots__ = (
        "min_th",
        "max_th",
        "max_p",
        "weight",
        "avpkt",
        "bandwidth_bps",
        "gentle",
        "rng",
        "_queue",
        "avg",
        "_count",
        "_idle_since",
    )

    def __init__(
        self,
        limit_bytes: int,
        rng: np.random.Generator,
        *,
        min_th: Optional[int] = None,
        max_th: Optional[int] = None,
        max_p: float = 0.02,
        weight: float = 0.002,
        avpkt: int = 1000,
        bandwidth_bps: Optional[float] = None,
        gentle: bool = True,
        ecn_mode: bool = False,
    ):
        super().__init__(limit_bytes, ecn_mode=ecn_mode)
        if rng is None:
            raise ValueError("RED requires a random generator")
        # Classic `tc red` guidance: min ~ 30 avpkt, max ~ 90 avpkt — fixed
        # thresholds that are *not* retuned per bandwidth tier, which is the
        # paper's explanation for RED's poor high-bandwidth utilization
        # (§5.3).  Clamped when the configured buffer is smaller than that.
        if min_th is not None:
            self.min_th = int(min_th)
        else:
            self.min_th = max(avpkt, min(30 * avpkt, limit_bytes // 3))
        if max_th is not None:
            self.max_th = int(max_th)
        else:
            self.max_th = max(self.min_th + avpkt, min(90 * avpkt, limit_bytes * 3 // 4))
            # Degenerate buffers (~1 packet): squeeze both under the limit.
            self.max_th = min(self.max_th, limit_bytes)
            self.min_th = min(self.min_th, max(1, self.max_th - 1))
        if not self.min_th < self.max_th <= self.limit_bytes:
            raise ValueError(
                f"need min_th < max_th <= limit, got {self.min_th}/{self.max_th}/{self.limit_bytes}"
            )
        if not 0.0 < max_p <= 1.0:
            raise ValueError(f"max_p must be in (0, 1], got {max_p}")
        if not 0.0 < weight <= 1.0:
            raise ValueError(f"weight must be in (0, 1], got {weight}")
        self.max_p = max_p
        self.weight = weight
        self.avpkt = avpkt
        self.bandwidth_bps = bandwidth_bps
        self.gentle = gentle
        self.rng = rng

        self._queue: deque[Packet] = deque()
        self.avg = 0.0
        self._count = -1  # packets since last drop/mark while avg in ramp
        self._idle_since: Optional[int] = 0  # queue empty since (ns); None = busy

    # -- EWMA maintenance --------------------------------------------------------

    def _update_avg(self, now: int) -> None:
        if self._idle_since is not None and self.bandwidth_bps:
            # Idle decay: pretend `m` avpkt-sized packets drained while idle.
            idle_ns = max(0, now - self._idle_since)
            m = int(idle_ns * self.bandwidth_bps / (8 * self.avpkt * NS_PER_SEC))
            if m > 0:
                self.avg *= (1.0 - self.weight) ** m
            self._idle_since = None
        self.avg += self.weight * (self.bytes_queued - self.avg)

    # -- drop lottery -------------------------------------------------------------

    def _drop_probability(self) -> float:
        """Instantaneous drop probability ``p_b`` for the current average."""
        if self.avg < self.min_th:
            return 0.0
        if self.avg < self.max_th:
            return self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th)
        if self.gentle and self.avg < 2 * self.max_th:
            return self.max_p + (1.0 - self.max_p) * (self.avg - self.max_th) / self.max_th
        return 1.0

    def _should_drop(self) -> bool:
        p_b = self._drop_probability()
        if p_b <= 0.0:
            self._count = -1
            return False
        if p_b >= 1.0:
            self._count = 0
            return True
        self._count += 1
        # Uniformized inter-drop gap (Floyd/Jacobson eq. for p_a).
        denom = 1.0 - self._count * p_b
        p_a = 1.0 if denom <= 0.0 else min(1.0, p_b / denom)
        if self.rng.random() < p_a:
            self._count = 0
            return True
        return False

    # -- discipline API -------------------------------------------------------------

    def enqueue(self, pkt: Packet, now: int) -> bool:
        """EWMA update, probabilistic early drop/mark, then tail drop."""
        # Busy-queue fast path inlines the EWMA step; the idle-decay branch
        # of _update_avg only matters right after a drain.
        if self._idle_since is not None:
            self._update_avg(now)
        else:
            self.avg += self.weight * (self.bytes_queued - self.avg)
        size = pkt.size
        stats = self.stats
        if self.bytes_queued + size > self.limit_bytes:
            stats.dropped_enqueue += 1
            stats.bytes_dropped += size
            self._count = 0
            if self.tracer.enabled:
                self.tracer.record(
                    "queue_drop", now, point="tail", flow=pkt.flow_id, seq=pkt.seq
                )
            return False
        # No-drop regime (avg below min_th) short-circuits the lottery.
        if self.avg < self.min_th:
            self._count = -1
        elif self._should_drop():
            if self._try_mark(pkt):
                pass  # marked instead of dropped; fall through to accept
            else:
                stats.dropped_enqueue += 1
                stats.bytes_dropped += size
                if self.tracer.enabled:
                    self.tracer.record(
                        "queue_drop", now, point="early", flow=pkt.flow_id, seq=pkt.seq
                    )
                return False
        pkt.enqueue_time = now
        self.bytes_queued += size
        self.packets_queued += 1
        stats.enqueued += 1
        stats.bytes_enqueued += size
        self._queue.append(pkt)
        return True

    def dequeue(self, now: int) -> Optional[Packet]:
        """Pop in arrival order; tracks queue-idle onset for EWMA decay."""
        queue = self._queue
        if not queue:
            return None
        pkt = queue.popleft()
        self.bytes_queued -= pkt.size
        self.packets_queued -= 1
        self.stats.dequeued += 1
        if not queue:
            self._idle_since = now
        return pkt
