"""Factory mapping the paper's AQM names to queue disciplines."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.aqm.base import QueueDiscipline
from repro.aqm.codel import CoDelQueue
from repro.aqm.fifo import FifoQueue
from repro.aqm.fq_codel import FqCoDelQueue
from repro.aqm.pie import PieQueue
from repro.aqm.red import RedQueue

AQM_NAMES = ("fifo", "red", "fq_codel", "codel", "pie")


def make_aqm(
    name: str,
    limit_bytes: int,
    *,
    rng: Optional[np.random.Generator] = None,
    mtu_bytes: int = 1500,
    bandwidth_bps: Optional[float] = None,
    ecn_mode: bool = False,
    **kwargs,
) -> QueueDiscipline:
    """Build the AQM called ``name`` (one of :data:`AQM_NAMES`).

    ``kwargs`` are forwarded to the discipline constructor, so callers can
    override thresholds (used by the RED-tuning ablation).
    """
    key = name.lower()
    if key == "fifo":
        return FifoQueue(limit_bytes, ecn_mode=ecn_mode, **kwargs)
    if key == "red":
        if rng is None:
            raise ValueError("RED needs an rng (pass rng=...)")
        return RedQueue(
            limit_bytes,
            rng,
            avpkt=kwargs.pop("avpkt", mtu_bytes),
            bandwidth_bps=bandwidth_bps,
            ecn_mode=ecn_mode,
            **kwargs,
        )
    if key == "fq_codel":
        return FqCoDelQueue(
            limit_bytes,
            rng,
            quantum_bytes=kwargs.pop("quantum_bytes", mtu_bytes),
            mtu_bytes=mtu_bytes,
            ecn_mode=ecn_mode,
            **kwargs,
        )
    if key == "codel":
        return CoDelQueue(limit_bytes, mtu_bytes=mtu_bytes, ecn_mode=ecn_mode, **kwargs)
    if key == "pie":
        if rng is None:
            raise ValueError("PIE needs an rng (pass rng=...)")
        return PieQueue(limit_bytes, rng, ecn_mode=ecn_mode, **kwargs)
    raise ValueError(f"unknown AQM {name!r}; expected one of {AQM_NAMES}")
