"""FIFO / drop-tail: the paper's baseline AQM.

Packets are accepted until the byte limit is reached, then arriving packets
are dropped.  No dequeue-time logic, no per-flow state — exactly the
``pfifo``/``bfifo`` behaviour the paper configures with `tc`.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.aqm.base import QueueDiscipline
from repro.net.packet import Packet


class FifoQueue(QueueDiscipline):
    """Byte-limited drop-tail queue."""

    __slots__ = ("_queue",)

    def __init__(self, limit_bytes: int, *, ecn_mode: bool = False):
        super().__init__(limit_bytes, ecn_mode=ecn_mode)
        self._queue: deque[Packet] = deque()

    def enqueue(self, pkt: Packet, now: int) -> bool:
        """Accept unless the byte limit would be exceeded."""
        # Accounting inlined (vs the base-class helpers): FIFO guards every
        # edge interface, so this runs for every packet on every hop.
        size = pkt.size
        stats = self.stats
        if self.bytes_queued + size > self.limit_bytes:
            stats.dropped_enqueue += 1
            stats.bytes_dropped += size
            if self.tracer.enabled:
                self.tracer.record(
                    "queue_drop", now, point="tail", flow=pkt.flow_id, seq=pkt.seq
                )
            return False
        pkt.enqueue_time = now
        self.bytes_queued += size
        self.packets_queued += 1
        stats.enqueued += 1
        stats.bytes_enqueued += size
        self._queue.append(pkt)
        return True

    def dequeue(self, now: int) -> Optional[Packet]:
        """Pop in arrival order."""
        queue = self._queue
        if not queue:
            return None
        pkt = queue.popleft()
        self.bytes_queued -= pkt.size
        self.packets_queued -= 1
        self.stats.dequeued += 1
        return pkt
