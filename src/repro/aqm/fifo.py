"""FIFO / drop-tail: the paper's baseline AQM.

Packets are accepted until the byte limit is reached, then arriving packets
are dropped.  No dequeue-time logic, no per-flow state — exactly the
``pfifo``/``bfifo`` behaviour the paper configures with `tc`.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.aqm.base import QueueDiscipline
from repro.net.packet import Packet


class FifoQueue(QueueDiscipline):
    """Byte-limited drop-tail queue."""

    def __init__(self, limit_bytes: int, *, ecn_mode: bool = False):
        super().__init__(limit_bytes, ecn_mode=ecn_mode)
        self._queue: deque[Packet] = deque()

    def enqueue(self, pkt: Packet, now: int) -> bool:
        """Accept unless the byte limit would be exceeded."""
        if self.bytes_queued + pkt.size > self.limit_bytes:
            self._drop_enqueue(pkt)
            return False
        self._accept(pkt, now)
        self._queue.append(pkt)
        return True

    def dequeue(self, now: int) -> Optional[Packet]:
        """Pop in arrival order."""
        if not self._queue:
            return None
        pkt = self._queue.popleft()
        self._account_dequeue(pkt)
        return pkt
