"""Named fault profiles.

A profile is a reusable ``faults:`` block — the CLI's ``repro sweep
--fault-profile NAME`` stamps one onto every config of a campaign, and
presets reference them directly.  Times are chosen to land inside the
short scaled-DES / smoke run durations (15 s and 5 s respectively), so
every profile is observable on the tractable presets; for longer runs
they simply fire early in the transfer.
"""

from __future__ import annotations

from typing import Dict, List

from repro.faults.spec import normalize_faults

PROFILES: Dict[str, List[dict]] = {
    # Mid-run cable pull: down for 1 s, queue preserved (drains into the
    # dead link and is dropped deterministically).
    "flap": [dict(kind="link_flap", at_s=10.0, duration_s=1.0)],
    # The paper's "variable rates of packet loss" anomaly: a 1 % random
    # loss episode lasting 5 s.
    "loss-burst": [dict(kind="loss_burst", at_s=5.0, duration_s=5.0, loss_rate=0.01)],
    # A LAG-member failure: bottleneck capacity halves for 5 s.
    "degrade": [dict(kind="rate_drop", at_s=5.0, duration_s=5.0, rate_factor=0.5)],
    # A transient reroute: propagation delay triples for 3 s.
    "delay-spike": [dict(kind="delay_spike", at_s=5.0, duration_s=3.0, delay_factor=3.0)],
    # A line-card reset: the bottleneck backlog is discarded at t=8 s.
    "queue-flush": [dict(kind="queue_flush", at_s=8.0)],
    # Everything at once — the chaos scenario the campaign-hardening
    # layer is built to survive.
    "chaos": [
        dict(kind="loss_burst", at_s=3.0, duration_s=4.0, loss_rate=0.005),
        dict(kind="rate_drop", at_s=5.0, duration_s=5.0, rate_factor=0.5),
        dict(kind="link_flap", at_s=11.0, duration_s=0.5, flush=True),
    ],
    # ``chaos`` compressed into the 5 s smoke-preset window (CI job).
    "chaos-smoke": [
        dict(kind="loss_burst", at_s=1.0, duration_s=1.5, loss_rate=0.005),
        dict(kind="rate_drop", at_s=2.0, duration_s=1.5, rate_factor=0.5),
        dict(kind="link_flap", at_s=4.0, duration_s=0.3, flush=True),
    ],
}


def get_profile(name: str) -> List[dict]:
    """Return the normalized ``faults:`` block for a named profile."""
    try:
        return normalize_faults(PROFILES[name])
    except KeyError:
        raise ValueError(f"unknown fault profile {name!r}; have {sorted(PROFILES)}") from None
