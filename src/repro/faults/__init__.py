"""Deterministic, seeded fault injection (see docs/FAULTS.md).

Declarative :class:`FaultSpec` rows compile into a :class:`FaultSchedule`
of timed engine events that drive the run-time mutation hooks on
:class:`~repro.net.link.Link` / :class:`~repro.net.interface.Interface`.
All randomness (onset jitter, burst loss lotteries) comes from named
:class:`~repro.sim.rng.RngStreams`, so identical seeds yield
bit-identical schedules and bit-identical runs.
"""

from repro.faults.profiles import PROFILES, get_profile
from repro.faults.schedule import FaultEvent, FaultSchedule, FaultTarget, resolve_dumbbell_target
from repro.faults.spec import FAULT_KINDS, FaultSpec, normalize_faults

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "FaultSpec",
    "FaultTarget",
    "PROFILES",
    "get_profile",
    "normalize_faults",
    "resolve_dumbbell_target",
]
