"""Declarative fault specifications.

A :class:`FaultSpec` describes one impairment the way the paper's testbed
would experience it on a live WAN: a link flap, a transient loss burst, a
capacity-degradation step, a delay spike (reroute), or an administrative
router-queue flush.  Specs are plain data — validated, JSON-ready, and
hashable into the experiment label — and are compiled into timed engine
events by :mod:`repro.faults.schedule`.

Specs can come from three places, all converging on the same dict form:

- the ``faults:`` block of an :class:`~repro.experiments.config.ExperimentConfig`,
- a named profile (:mod:`repro.faults.profiles`), or
- the CLI's compact text form, e.g. ``loss_burst,at=5,dur=5,rate=0.01``
  (see :meth:`FaultSpec.parse`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Tuple

#: Fault kinds and the extra parameter each one uses.
FAULT_KINDS: Tuple[str, ...] = (
    "link_flap",    # link down at t, back up after duration (optional queue flush)
    "loss_burst",   # random loss at `loss_rate` for duration, then restore
    "rate_drop",    # rate *= rate_factor for duration, then restore
    "delay_spike",  # propagation delay *= delay_factor for duration, then restore
    "queue_flush",  # instantaneous: discard the egress queue backlog
)

#: Targets resolvable on the paper's dumbbell (see schedule.resolve_target).
KNOWN_TARGETS: Tuple[str, ...] = ("bottleneck", "reverse", "access1", "access2")

#: Aliases accepted in the CLI text form, mapping to canonical field names.
_PARSE_ALIASES = {
    "at": "at_s",
    "dur": "duration_s",
    "duration": "duration_s",
    "rate": "loss_rate",
    "loss": "loss_rate",
    "factor": "rate_factor",
    "delay": "delay_factor",
    "jitter": "jitter_s",
    "target": "target",
    "flush": "flush",
}

_FLOAT_FIELDS = ("at_s", "duration_s", "loss_rate", "rate_factor", "delay_factor", "jitter_s")


@dataclass(frozen=True)
class FaultSpec:
    """One declarative impairment.  Immutable and JSON-round-trippable."""

    kind: str
    at_s: float
    duration_s: float = 0.0
    target: str = "bottleneck"
    #: ``loss_burst``: the loss probability during the burst.
    loss_rate: float = 0.0
    #: ``rate_drop``: multiplier applied to the rate at fault onset.
    rate_factor: float = 1.0
    #: ``delay_spike``: multiplier applied to the delay at fault onset.
    delay_factor: float = 1.0
    #: ``link_flap``: also flush the egress queue when the link goes down.
    flush: bool = False
    #: Uniform start-time jitter span (drawn from the ``faults`` RNG
    #: stream, so identical seeds produce identical onset times).
    jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; have {FAULT_KINDS}")
        if self.at_s < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at_s}")
        if self.duration_s < 0:
            raise ValueError(f"fault duration must be >= 0, got {self.duration_s}")
        if self.jitter_s < 0:
            raise ValueError(f"fault jitter must be >= 0, got {self.jitter_s}")
        if not isinstance(self.target, str) or not self.target:
            raise ValueError("fault target must be a non-empty string")
        if self.kind == "loss_burst":
            if not 0.0 < self.loss_rate < 1.0:
                raise ValueError(
                    f"loss_burst needs loss_rate in (0, 1), got {self.loss_rate}"
                )
            if self.duration_s <= 0:
                raise ValueError("loss_burst needs a positive duration")
        if self.kind == "rate_drop":
            if not 0.0 < self.rate_factor <= 1.0:
                raise ValueError(
                    f"rate_drop needs rate_factor in (0, 1], got {self.rate_factor}"
                )
            if self.duration_s <= 0:
                raise ValueError("rate_drop needs a positive duration")
        if self.kind == "delay_spike":
            if self.delay_factor < 1.0:
                raise ValueError(
                    f"delay_spike needs delay_factor >= 1, got {self.delay_factor}"
                )
            if self.duration_s <= 0:
                raise ValueError("delay_spike needs a positive duration")
        if self.kind == "link_flap" and self.duration_s <= 0:
            raise ValueError("link_flap needs a positive duration")

    def to_dict(self) -> Dict[str, Any]:
        """Full-field dict (stable key set, so config hashes stay stable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultSpec":
        unknown = set(d) - {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        if unknown:
            raise ValueError(f"unknown fault spec fields {sorted(unknown)}")
        return cls(**d)

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI form: ``kind,key=value,...``.

        Keys accept short aliases (``at``, ``dur``, ``rate``, ``factor``,
        ``delay``, ``target``, ``flush``, ``jitter``).  Examples::

            link_flap,at=10,dur=2
            loss_burst,at=5,dur=5,rate=0.01,target=reverse
            rate_drop,at=5,dur=10,factor=0.5
            queue_flush,at=8
        """
        parts = [p.strip() for p in text.split(",") if p.strip()]
        if not parts:
            raise ValueError("empty fault spec")
        kind = parts[0]
        fields: Dict[str, Any] = {"kind": kind}
        for part in parts[1:]:
            if "=" not in part:
                raise ValueError(f"fault spec field {part!r} is not key=value")
            key, _, value = part.partition("=")
            field = _PARSE_ALIASES.get(key.strip(), key.strip())
            if field == "flush":
                fields[field] = value.strip().lower() in ("1", "true", "yes")
            elif field in _FLOAT_FIELDS:
                fields[field] = float(value)
            else:
                fields[field] = value.strip()
        if "at_s" not in fields:
            raise ValueError(f"fault spec {text!r} is missing at=<seconds>")
        return cls.from_dict(fields)


def normalize_faults(faults) -> list:
    """Validate a ``faults:`` block and return it in full-dict form.

    Accepts a sequence of dicts, :class:`FaultSpec` instances, or CLI
    strings; always returns a list of the stable ``to_dict`` form (what
    configs store, hash, and ship to campaign workers).
    """
    out = []
    for item in faults:
        if isinstance(item, FaultSpec):
            out.append(item.to_dict())
        elif isinstance(item, str):
            out.append(FaultSpec.parse(item).to_dict())
        elif isinstance(item, dict):
            out.append(FaultSpec.from_dict(item).to_dict())
        else:
            raise ValueError(f"cannot interpret fault spec {item!r}")
    return out
